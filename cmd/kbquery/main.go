// Command kbquery executes SQL against the generated medical knowledge
// base. With no arguments it reads statements from stdin, one per line.
//
//	kbquery "SELECT name FROM drug WHERE name LIKE 'A%' LIMIT 5"
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"ontoconv"
)

func main() {
	base, err := ontoconv.MedicalKB()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kb:", err)
		os.Exit(1)
	}
	run := func(sql string) {
		res, err := ontoconv.ExecSQL(base, sql)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Println(strings.Join(res.Columns, " | "))
		for _, row := range res.Strings() {
			fmt.Println(strings.Join(row, " | "))
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
	}
	if len(os.Args) > 1 {
		run(strings.Join(os.Args[1:], " "))
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Fprintln(os.Stderr, "enter SQL, one statement per line (tables: drug, indication, treats, dosage, …)")
	for {
		fmt.Fprint(os.Stderr, "sql> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "\\q" || line == "quit" {
			return
		}
		run(line)
	}
}
