package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeReplica mimics the mdxserver surface the router touches: /readyz,
// /chat, and the /session/state handoff pair. State is an opaque byte
// blob, exactly how the router must treat it.
type fakeReplica struct {
	name  string
	ready atomic.Bool
	srv   *httptest.Server

	mu       sync.Mutex
	state    map[string][]byte // ws\x00session -> dialogue state
	chats    map[string]int    // ws\x00session -> turns served here
	lastRID  string
	imported map[string][]byte // states received via PUT
}

func newFakeReplica(t *testing.T, name string) *fakeReplica {
	f := &fakeReplica{
		name:     name,
		state:    make(map[string][]byte),
		chats:    make(map[string]int),
		imported: make(map[string][]byte),
	}
	f.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !f.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("/chat", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ Session, Message string }
		body, _ := io.ReadAll(r.Body)
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		key := r.Header.Get("X-Workspace") + "\x00" + req.Session
		f.mu.Lock()
		f.chats[key]++
		if _, ok := f.state[key]; !ok {
			// First contact: this replica invents the session's state.
			f.state[key] = []byte("state:" + req.Session + "@" + f.name)
		}
		f.lastRID = r.Header.Get("X-Request-ID")
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]interface{}{
			"session": req.Session, "reply": "from " + f.name, "answered": true,
		})
	})
	mux.HandleFunc("/session/state", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			id := r.URL.Query().Get("session")
			key := r.Header.Get("X-Workspace") + "\x00" + id
			f.mu.Lock()
			st, ok := f.state[key]
			if ok && r.URL.Query().Get("evict") != "" {
				delete(f.state, key)
			}
			f.mu.Unlock()
			if !ok {
				http.Error(w, "unknown session", http.StatusNotFound)
				return
			}
			json.NewEncoder(w).Encode(map[string]interface{}{
				"session": id, "turns": 1, "state": st,
			})
		case http.MethodPut, http.MethodPost:
			var req struct {
				Session string `json:"session"`
				State   []byte `json:"state"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			key := r.Header.Get("X-Workspace") + "\x00" + req.Session
			f.mu.Lock()
			f.state[key] = req.State
			f.imported[key] = req.State
			f.mu.Unlock()
			fmt.Fprint(w, `{"status":"imported"}`)
		default:
			http.Error(w, "bad method", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/admin/reload", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"version":"v-test"}`)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) chatCount(ws, session string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.chats[ws+"\x00"+session]
}

func (f *fakeReplica) stateOf(ws, session string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.state[ws+"\x00"+session]
	return st, ok
}

func (f *fakeReplica) importedState(ws, session string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.imported[ws+"\x00"+session]
	return st, ok
}

// testRouter builds a router over the fakes with health already probed.
func testRouter(t *testing.T, fakes ...*fakeReplica) (*router, map[string]*fakeReplica) {
	urls := make([]string, len(fakes))
	byURL := make(map[string]*fakeReplica, len(fakes))
	for i, f := range fakes {
		urls[i] = f.srv.URL
		byURL[f.srv.URL] = f
	}
	rt, err := newRouter(urls, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	rt.checkHealth()
	return rt, byURL
}

func chatVia(t *testing.T, h http.Handler, ws, session string) *httptest.ResponseRecorder {
	t.Helper()
	body := fmt.Sprintf(`{"session":%q,"message":"precautions for Aspirin"}`, session)
	req := httptest.NewRequest(http.MethodPost, "/chat", bytes.NewReader([]byte(body)))
	if ws != "" {
		req.Header.Set("X-Workspace", ws)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestRouterPinsSessionsAndSpreadsLoad(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	rt, byURL := testRouter(t, fakes...)
	h := rt.Handler()

	const sessions, turns = 48, 3
	for i := 0; i < sessions; i++ {
		for turn := 0; turn < turns; turn++ {
			if rec := chatVia(t, h, "medical", fmt.Sprintf("pin%d", i)); rec.Code != http.StatusOK {
				t.Fatalf("chat status = %d: %s", rec.Code, rec.Body)
			}
		}
	}
	used := 0
	for _, f := range byURL {
		touched := false
		for i := 0; i < sessions; i++ {
			n := f.chatCount("medical", fmt.Sprintf("pin%d", i))
			if n != 0 && n != turns {
				t.Fatalf("session pin%d split across backends: %s saw %d/%d turns", i, f.name, n, turns)
			}
			touched = touched || n > 0
		}
		if touched {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("all sessions landed on %d backend(s); consistent hashing should spread them", used)
	}
}

func TestRouterMigratesSessionsOnMembershipChange(t *testing.T) {
	a, b, c := newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")
	c.ready.Store(false) // c joins later
	rt, byURL := testRouter(t, a, b, c)
	h := rt.Handler()

	const sessions = 60
	for i := 0; i < sessions; i++ {
		chatVia(t, h, "", fmt.Sprintf("mig%d", i))
	}

	c.ready.Store(true)
	rt.checkHealth()
	if got := rt.rebalances.Value(); got == 0 {
		t.Fatal("membership change did not count a rebalance")
	}

	for i := 0; i < sessions; i++ {
		if rec := chatVia(t, h, "", fmt.Sprintf("mig%d", i)); rec.Code != http.StatusOK {
			t.Fatalf("post-rebalance chat status = %d", rec.Code)
		}
	}

	migrated := 0
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("mig%d", i)
		imported, ok := c.importedState("", id)
		if !ok {
			continue
		}
		migrated++
		want := []byte("state:" + id)
		// The exported blob was minted by a or b on first chat.
		if !bytes.HasPrefix(imported, want) {
			t.Fatalf("session %s: imported state %q does not carry the original context", id, imported)
		}
		// Exactly one owner: the exporter evicted its copy.
		for _, f := range byURL {
			if f == c {
				continue
			}
			if _, still := f.stateOf("", id); still {
				t.Fatalf("session %s: old owner %s still holds state after handoff", id, f.name)
			}
		}
	}
	if migrated == 0 {
		t.Fatal("no session migrated to the joining backend; expected roughly a third")
	}
	if got := rt.handoffs.With("migrated").Value(); got != uint64(migrated) {
		t.Fatalf("handoffs{migrated} = %d, want %d", got, migrated)
	}
}

func TestRouterSurvivesBackendLoss(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	rt, byURL := testRouter(t, a, b)
	h := rt.Handler()

	const sessions = 40
	for i := 0; i < sessions; i++ {
		chatVia(t, h, "", fmt.Sprintf("loss%d", i))
	}
	// Find which fake owns which sessions, then kill a.
	a.ready.Store(false)
	rt.checkHealth()

	for i := 0; i < sessions; i++ {
		if rec := chatVia(t, h, "", fmt.Sprintf("loss%d", i)); rec.Code != http.StatusOK {
			t.Fatalf("chat after backend loss: status = %d", rec.Code)
		}
	}
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("loss%d", i)
		for _, f := range byURL {
			if f == a {
				continue
			}
			if n := f.chatCount("", id); n == 0 && a.chatCount("", id) > 0 {
				t.Fatalf("session %s: owned by dead backend and never re-routed", id)
			}
		}
	}
	if rt.handoffs.With("lost").Value() == 0 {
		t.Fatal("losing a backend with live sessions must count lost handoffs")
	}

	// Metrics reflect the loss.
	var buf bytes.Buffer
	rt.reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "mdx_router_backends_healthy 1") {
		t.Fatalf("metrics missing healthy-backend drop:\n%s", buf.String())
	}
}

func TestRouterReadyzTracksBackends(t *testing.T) {
	a := newFakeReplica(t, "a")
	a.ready.Store(false)
	rt, _ := testRouter(t, a)
	h := rt.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no healthy backends = %d, want 503", rec.Code)
	}
	if rec := chatVia(t, h, "", "s1"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("chat with no healthy backends = %d, want 503", rec.Code)
	}

	a.ready.Store(true)
	rt.checkHealth()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz with a healthy backend = %d, want 200", rec.Code)
	}
}

func TestRouterPropagatesRequestID(t *testing.T) {
	a := newFakeReplica(t, "a")
	rt, _ := testRouter(t, a)
	h := rt.Handler()

	body := []byte(`{"session":"rid1","message":"hi"}`)
	req := httptest.NewRequest(http.MethodPost, "/chat", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "rid-from-client")
	h.ServeHTTP(httptest.NewRecorder(), req)

	a.mu.Lock()
	got := a.lastRID
	a.mu.Unlock()
	if got != "rid-from-client" {
		t.Fatalf("backend saw X-Request-ID %q, want the client's", got)
	}
}

func TestRouterFansOutReload(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	rt, _ := testRouter(t, a, b)
	h := rt.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("reload fan-out status = %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Reloads []struct {
			Backend string `json:"backend"`
			Status  int    `json:"status"`
		} `json:"reloads"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Reloads) != 2 {
		t.Fatalf("reload reached %d backends, want 2", len(resp.Reloads))
	}
	for _, r := range resp.Reloads {
		if r.Status != http.StatusOK {
			t.Fatalf("backend %s reload status = %d", r.Backend, r.Status)
		}
	}
}
