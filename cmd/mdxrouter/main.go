// Command mdxrouter horizontally scales the conversation tier: it
// consistent-hashes sessions onto N mdxserver replicas, health-checks
// membership via each replica's /readyz, and migrates a session's
// dialogue state (GET/PUT /session/state) when a ring change moves its
// ownership — so adding, draining, or losing a replica rebalances load
// without dropping conversations whose owner is still alive.
//
//	mdxrouter -listen :8090 \
//	  -backend http://127.0.0.1:8080 \
//	  -backend http://127.0.0.1:8081 \
//	  -backend http://127.0.0.1:8082
//
// The router is stateless apart from its in-memory session→backend
// pinning: restarting it re-derives placement from the ring, and any
// sessions that land on a new owner are migrated on their next turn.
//
// Router-local endpoints: /healthz, /readyz (≥1 healthy backend),
// /metrics (mdx_router_requests_total{backend},
// mdx_router_rebalances_total, mdx_router_backends_healthy,
// mdx_router_handoffs_total{result}). Everything else proxies to the
// session's backend; /admin/reload fans out to every healthy replica.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"ontoconv/internal/obs"
)

// stringsFlag collects a repeatable -backend flag.
type stringsFlag []string

func (f *stringsFlag) String() string { return strings.Join(*f, ",") }

func (f *stringsFlag) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*f = append(*f, part)
		}
	}
	return nil
}

func main() {
	var backends stringsFlag
	listen := flag.String("listen", ":8090", "address to serve on")
	flag.Var(&backends, "backend", "mdxserver replica base URL (repeatable, or comma-separated)")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "backend /readyz probe interval")
	boundFactor := flag.Float64("bound", 1.25, "bounded-load factor c: new sessions skip backends above c x the mean in-flight load")
	accessLog := flag.Bool("access-log", true, "emit JSON access logs to stderr")
	flag.Parse()

	rt, err := newRouter(backends, log.Printf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rt.boundFactor = *boundFactor

	// Probe synchronously once so /readyz answers accurately from the
	// first request, then keep membership fresh in the background.
	healthy := rt.checkHealth()
	log.Printf("mdxrouter: %d/%d backend(s) healthy at startup", healthy, len(rt.backends))
	stop := rt.startHealthLoop(*healthEvery)
	defer stop()

	var handler http.Handler = rt.Handler()
	if *accessLog {
		handler = obs.AccessLog(os.Stderr, handler)
	}
	log.Printf("mdxrouter: listening on %s, routing %d backend(s)", *listen, len(rt.backends))
	if err := http.ListenAndServe(*listen, handler); err != nil {
		log.Fatal(err)
	}
}
