package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ontoconv/internal/obs"
	"ontoconv/internal/ring"
)

// maxBodyBytes caps how much of a request body the router buffers to
// extract the session ID; dialogue requests are a few hundred bytes.
const maxBodyBytes = 1 << 20

// backend is one mdxserver replica behind the router.
type backend struct {
	name     string // normalized base URL: ring member ID and metrics label
	base     *url.URL
	healthy  atomic.Bool
	inflight atomic.Int64
}

// router consistent-hashes sessions onto healthy mdxserver replicas and
// migrates a session's dialogue state when a ring change moves its
// ownership, so rebalancing loses no conversation context.
//
// Placement is sticky: a session keeps its backend until the ring
// generation changes (a replica joined, left, or failed health checks).
// New assignments use the bounded-load walk, so a replica already
// carrying well over its fair share of in-flight turns is skipped.
type router struct {
	backends []*backend
	byName   map[string]*backend

	// ring holds the healthy membership; gen counts rebuilds so owner
	// records can tell a stale assignment from a current one.
	ring atomic.Pointer[ring.Ring]
	gen  atomic.Uint64

	// owners maps session key -> *ownerRec; the per-record mutex
	// serializes routing (and any handoff) for one session without
	// stalling others.
	owners sync.Map

	// client carries every proxied and handoff request. One tuned
	// transport for all backends: the default MaxIdleConnsPerHost=2 would
	// reopen connections constantly under concurrent chatters.
	client      *http.Client
	boundFactor float64

	reg        *obs.Registry
	requests   *obs.CounterVec // mdx_router_requests_total{backend}
	rebalances *obs.Counter    // mdx_router_rebalances_total
	healthyG   *obs.Gauge      // mdx_router_backends_healthy
	handoffs   *obs.CounterVec // mdx_router_handoffs_total{result}

	logf func(format string, args ...interface{})
}

// ownerRec pins one session to its current backend.
type ownerRec struct {
	mu    sync.Mutex
	owner string // backend name; "" until first routed
	gen   uint64 // ring generation the assignment was made under
}

// newRouter builds a router over the given backend base URLs.
func newRouter(backendURLs []string, logf func(string, ...interface{})) (*router, error) {
	if len(backendURLs) == 0 {
		return nil, fmt.Errorf("mdxrouter: at least one -backend is required")
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	rt := &router{
		byName:      make(map[string]*backend),
		boundFactor: 1.25,
		reg:         obs.NewRegistry(),
		logf:        logf,
	}
	for _, raw := range backendURLs {
		u, err := url.Parse(strings.TrimRight(raw, "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("mdxrouter: bad backend URL %q", raw)
		}
		b := &backend{name: u.String(), base: u}
		if _, dup := rt.byName[b.name]; dup {
			continue
		}
		rt.backends = append(rt.backends, b)
		rt.byName[b.name] = b
	}
	rt.ring.Store(ring.New(nil, 0))
	rt.client = &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	rt.requests = rt.reg.CounterVec("mdx_router_requests_total",
		"Requests proxied, by backend.", "backend")
	rt.rebalances = rt.reg.Counter("mdx_router_rebalances_total",
		"Ring rebuilds caused by backend membership or health changes.")
	rt.healthyG = rt.reg.Gauge("mdx_router_backends_healthy",
		"Backends currently passing /readyz health checks.")
	rt.handoffs = rt.reg.CounterVec("mdx_router_handoffs_total",
		"Session state migrations on ring change, by result.", "result")
	return rt, nil
}

// checkHealth probes every backend's /readyz once and rebuilds the ring
// if the healthy set changed. Returns the healthy count.
func (rt *router) checkHealth() int {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodGet, b.base.String()+"/readyz", nil)
			if err != nil {
				b.healthy.Store(false)
				return
			}
			req.Header.Set("X-Request-ID", obs.NewRequestID())
			resp, err := rt.client.Do(req)
			if err != nil {
				b.healthy.Store(false)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			b.healthy.Store(resp.StatusCode == http.StatusOK)
		}(b)
	}
	wg.Wait()
	return rt.rebuildRing()
}

// rebuildRing recomputes the ring from the currently healthy backends.
// A no-op when membership is unchanged; otherwise the generation bumps
// and sessions re-route (with handoff) on their next turn.
func (rt *router) rebuildRing() int {
	names := make([]string, 0, len(rt.backends))
	for _, b := range rt.backends {
		if b.healthy.Load() {
			names = append(names, b.name)
		}
	}
	rt.healthyG.Set(int64(len(names)))
	cur := rt.ring.Load()
	if sameMembers(cur.Members(), names) {
		return len(names)
	}
	rt.ring.Store(ring.New(names, 0))
	rt.gen.Add(1)
	rt.rebalances.Inc()
	rt.logf("ring rebuilt: %d healthy backend(s): %s", len(names), strings.Join(names, ", "))
	return len(names)
}

func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[string]bool, len(a))
	for _, m := range a {
		in[m] = true
	}
	for _, m := range b {
		if !in[m] {
			return false
		}
	}
	return true
}

// startHealthLoop probes on a ticker until stop is called.
func (rt *router) startHealthLoop(every time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rt.checkHealth()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// overloaded is the bounded-load predicate: a backend is skipped for new
// assignments when its in-flight count exceeds boundFactor × the average
// across healthy backends (plus one, so idle rings never reject).
// Unhealthy backends are always skipped.
func (rt *router) overloaded(member string) bool {
	b := rt.byName[member]
	if b == nil || !b.healthy.Load() {
		return true
	}
	var total int64
	n := 0
	for _, bb := range rt.backends {
		if bb.healthy.Load() {
			total += bb.inflight.Load()
			n++
		}
	}
	if n <= 1 {
		return false
	}
	limit := int64(rt.boundFactor*float64(total)/float64(n)) + 1
	return b.inflight.Load() > limit
}

// route returns the backend that owns (ws, session), migrating the
// session's state first if a ring change moved its ownership.
func (rt *router) route(r *http.Request, ws, session string) (*backend, error) {
	key := ws + "\x00" + session
	ringNow := rt.ring.Load()
	if ringNow.Empty() {
		return nil, fmt.Errorf("no healthy backends")
	}
	genNow := rt.gen.Load()
	v, _ := rt.owners.LoadOrStore(key, &ownerRec{})
	rec := v.(*ownerRec)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.owner != "" && rec.gen == genNow {
		if b := rt.byName[rec.owner]; b != nil && b.healthy.Load() {
			return b, nil
		}
	}
	desired := ringNow.Pick(key, rt.overloaded)
	nb := rt.byName[desired]
	if nb == nil || desired == "" {
		return nil, fmt.Errorf("no healthy backends")
	}
	if rec.owner != "" && rec.owner != desired {
		//ontolint:ignore lockheld per-session owner lock: a session's turns must not race its own handoff, and no other session waits on this mutex
		rt.migrate(r, ws, session, rec.owner, desired)
	}
	rec.owner, rec.gen = desired, genNow
	return nb, nil
}

// migrate exports the session's dialogue state from its old backend
// (evicting it there) and imports it on the new one. A dead old owner
// means the state is gone — the session restarts fresh on the new
// backend; that is the cost of affinity without replication, and the
// handoffs{result="lost"} counter makes it visible.
func (rt *router) migrate(r *http.Request, ws, session, from, to string) {
	fb, tb := rt.byName[from], rt.byName[to]
	if fb == nil || tb == nil || !fb.healthy.Load() {
		rt.handoffs.With("lost").Inc()
		rt.logf("session %q: old owner %s gone; context lost", session, from)
		return
	}
	rid := obs.RequestID(r)
	if rid == "" {
		rid = obs.NewRequestID()
	}
	exportURL := fb.base.String() + "/session/state?evict=1&session=" + url.QueryEscape(session)
	req, err := http.NewRequest(http.MethodGet, exportURL, nil)
	if err != nil {
		rt.handoffs.With("error").Inc()
		return
	}
	req.Header.Set("X-Request-ID", rid)
	if ws != "" {
		req.Header.Set("X-Workspace", ws)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.handoffs.With("error").Inc()
		rt.logf("session %q: export from %s failed: %v", session, from, err)
		return
	}
	exported, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// The old owner never saw this session (e.g. it expired); nothing
		// to carry over.
		rt.handoffs.With("absent").Inc()
		return
	}
	if resp.StatusCode != http.StatusOK || err != nil {
		rt.handoffs.With("error").Inc()
		rt.logf("session %q: export from %s returned %d", session, from, resp.StatusCode)
		return
	}
	// The export response body ({"session","turns","state"}) is a valid
	// import request body — the importer ignores the extra fields.
	imp, err := http.NewRequest(http.MethodPut, tb.base.String()+"/session/state", bytes.NewReader(exported))
	if err != nil {
		rt.handoffs.With("error").Inc()
		return
	}
	imp.Header.Set("Content-Type", "application/json")
	imp.Header.Set("X-Request-ID", rid)
	if ws != "" {
		imp.Header.Set("X-Workspace", ws)
	}
	iresp, err := rt.client.Do(imp)
	if err != nil {
		rt.handoffs.With("error").Inc()
		rt.logf("session %q: import into %s failed: %v", session, to, err)
		return
	}
	_, _ = io.Copy(io.Discard, iresp.Body)
	_ = iresp.Body.Close()
	if iresp.StatusCode != http.StatusOK {
		rt.handoffs.With("error").Inc()
		rt.logf("session %q: import into %s returned %d", session, to, iresp.StatusCode)
		return
	}
	rt.handoffs.With("migrated").Inc()
	rt.logf("session %q: migrated %s -> %s", session, from, to)
}

// Handler returns the router's HTTP surface: its own health/metrics
// endpoints plus the catch-all session-affine proxy.
func (rt *router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		healthy := 0
		for _, b := range rt.backends {
			if b.healthy.Load() {
				healthy++
			}
		}
		if healthy == 0 {
			http.Error(w, "no healthy backends", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]interface{}{
			"status": "ready", "backends": healthy,
		})
	})
	mux.Handle("/metrics", rt.reg.Handler())
	mux.HandleFunc("/", rt.proxy)
	return mux
}

// proxy routes one request to its session's backend.
func (rt *router) proxy(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil && r.Method != http.MethodGet {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			http.Error(w, "bad request body", http.StatusBadRequest)
			return
		}
	}
	if strings.HasSuffix(r.URL.Path, "/admin/reload") {
		rt.fanoutReload(w, r, body)
		return
	}
	ws, session := identity(r, body)
	var b *backend
	var err error
	if session == "" {
		// Session-less routes (/trace/slow, /readyz warm-ups…): any
		// healthy backend; the path spreads them.
		name := rt.ring.Load().Pick(r.URL.Path, rt.overloaded)
		if b = rt.byName[name]; b == nil {
			err = fmt.Errorf("no healthy backends")
		}
	} else {
		b, err = rt.route(r, ws, session)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	rt.forward(w, r, b, body)
}

// identity extracts (workspace, session) from the request: the /w/<ws>/
// path prefix or X-Workspace header names the tenant; the session comes
// from the query string or the JSON body.
func identity(r *http.Request, body []byte) (ws, session string) {
	if rest, ok := strings.CutPrefix(r.URL.Path, "/w/"); ok {
		ws, _, _ = strings.Cut(rest, "/")
	} else {
		ws = r.Header.Get("X-Workspace")
	}
	session = r.URL.Query().Get("session")
	if session == "" && len(body) > 0 {
		var peek struct {
			Session string `json:"session"`
		}
		if json.Unmarshal(body, &peek) == nil {
			session = peek.Session
		}
	}
	return ws, session
}

// forward proxies the buffered request to the backend and streams the
// response back, propagating the correlation ID.
func (rt *router) forward(w http.ResponseWriter, r *http.Request, b *backend, body []byte) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	rt.requests.With(b.name).Inc()

	out := *b.base
	out.Path = strings.TrimRight(b.base.Path, "/") + r.URL.Path
	out.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, out.String(), bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	for k, vs := range r.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if id := obs.RequestID(r); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		http.Error(w, "backend unavailable: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer func() { _ = resp.Body.Close() }()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// fanoutReload broadcasts an /admin/reload to every healthy backend so a
// bundle rollout lands everywhere, and reports per-backend outcomes.
func (rt *router) fanoutReload(w http.ResponseWriter, r *http.Request, body []byte) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	type result struct {
		Backend string `json:"backend"`
		Status  int    `json:"status"`
		Body    string `json:"body"`
	}
	var (
		mu      sync.Mutex
		results []result
		wg      sync.WaitGroup
	)
	rid := obs.RequestID(r)
	for _, b := range rt.backends {
		if !b.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			out := *b.base
			out.Path = strings.TrimRight(b.base.Path, "/") + r.URL.Path
			req, err := http.NewRequest(http.MethodPost, out.String(), bytes.NewReader(body))
			if err != nil {
				return
			}
			if rid != "" {
				req.Header.Set("X-Request-ID", rid)
			}
			if ws := r.Header.Get("X-Workspace"); ws != "" {
				req.Header.Set("X-Workspace", ws)
			}
			res := result{Backend: b.name, Status: http.StatusBadGateway}
			if resp, err := rt.client.Do(req); err == nil {
				rb, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
				_ = resp.Body.Close()
				res.Status = resp.StatusCode
				res.Body = strings.TrimSpace(string(rb))
			}
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	status := http.StatusOK
	if len(results) == 0 {
		status = http.StatusServiceUnavailable
	}
	for _, res := range results {
		if res.Status != http.StatusOK {
			status = http.StatusBadGateway
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Backend < results[j].Backend })
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]interface{}{"reloads": results})
}
