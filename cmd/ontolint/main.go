// Command ontolint is the static-analysis suite for ontoconv. It checks
// correctness in the two places it lives for an ontology-bootstrapped
// conversation system: the Go source that emits the artifacts, and the
// bootstrapped workspace itself.
//
//	ontolint ./...                 lint the module's source (Layer 1)
//	ontolint -space space.json     lint a bootstrapped conversation space
//	                               (Layer 2); "-" reads stdin
//	ontolint -bundle mdx.bundle    verify a compiled workspace bundle's
//	                               manifest and lint the space it carries
//	ontolint -bootstrap            bootstrap the built-in MDX workspace
//	                               in-process and lint it
//	ontolint -run nondeterm,errdrop ./...   run a subset of analyzers
//	ontolint -json ./...           emit findings as a JSON report on
//	                               stdout (works with every mode)
//	ontolint -list                 list analyzers and space rules
//
// Suppress a source finding with a comment on (or directly above) the
// flagged line:
//
//	//ontolint:ignore lockheld per-session lock; serializing turns is the point
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/lint"
	"ontoconv/internal/medkb"
)

func main() {
	var (
		spaceFile  = flag.String("space", "", "lint a conversation-space JSON file instead of source (\"-\" for stdin)")
		bundleFile = flag.String("bundle", "", "verify a compiled workspace bundle and lint its space")
		bootstrap  = flag.Bool("bootstrap", false, "bootstrap the built-in MDX workspace and lint it")
		run        = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		jsonOut    = flag.Bool("json", false, "emit findings as a machine-readable JSON report on stdout")
		list       = flag.Bool("list", false, "list analyzers and space rules, then exit")
	)
	flag.Parse()
	emitJSON = *jsonOut

	switch {
	case *list:
		fmt.Println("source analyzers (Layer 1):")
		for _, a := range lint.Analyzers() {
			fmt.Printf("  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Println("space rules (Layer 2): dangling-intent dangling-entity unreachable-node template-slot dup-example synonym-collision empty-intent")
	case *bundleFile != "":
		os.Exit(lintBundle(*bundleFile))
	case *spaceFile != "" || *bootstrap:
		os.Exit(lintSpace(*spaceFile, *bootstrap))
	default:
		os.Exit(lintSource(flag.Args(), *run))
	}
}

// emitJSON switches every mode's finding output from human-readable
// lines to the lint.WriteJSON report (stdout stays parseable; banners
// and counts move to stderr).
var emitJSON bool

// report prints the findings in the selected format and returns the
// process exit code for them (0 clean, 1 findings).
func report(diags []lint.Diagnostic) int {
	if emitJSON {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "ontolint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ontolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// lintBundle opens a compiled workspace bundle (verifying its manifest
// hashes in the process) and lints the conversation space it carries.
func lintBundle(path string) int {
	b, err := bundle.OpenFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ontolint:", err)
		return 2
	}
	banner := os.Stdout
	if emitJSON {
		banner = os.Stderr
	}
	fmt.Fprintf(banner, "bundle %s: version %s, classifier %s, %d intents, %d entities, %d examples\n",
		path, b.Version(), b.Manifest.Classifier, b.Manifest.Intents, b.Manifest.Entities, b.Manifest.Examples)
	return report(lint.LintSpace(b.Space))
}

func lintSource(patterns []string, run string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := lint.Analyzers()
	if run != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ontolint: unknown analyzer %q (have %s)\n", name, strings.Join(lint.AnalyzerNames(), ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ontolint:", err)
		return 2
	}
	pkgs, err := lint.LoadModule(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ontolint:", err)
		return 2
	}
	return report(lint.RunAnalyzers(pkgs, analyzers))
}

func lintSpace(file string, bootstrap bool) int {
	var space *core.Space
	switch {
	case bootstrap:
		_, _, s, err := medkb.Bootstrap()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ontolint: bootstrap:", err)
			return 2
		}
		space = s
	case file == "-":
		s, err := core.ReadJSON(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ontolint:", err)
			return 2
		}
		space = s
	default:
		f, err := os.Open(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ontolint:", err)
			return 2
		}
		s, err := core.ReadJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ontolint:", err)
			return 2
		}
		space = s
	}
	return report(lint.LintSpace(space))
}
