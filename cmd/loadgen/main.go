// Command loadgen drives a running mdxserver with the usage study's
// traffic shape and gates the result against service-level objectives.
//
//	loadgen -target http://127.0.0.1:8080 -bundle mdx.bundle \
//	        -mode closed -workers 8 -warmup 5s -duration 30s \
//	        -out report.json -slo BENCH_load.json
//
// The utterance stream comes from the simulation's user model
// (internal/sim.Scripter): the Table-5 intent mix, elicitation
// follow-ups, misspellings, keyword-only queries, gibberish, abandoned
// requests. Interactions are multi-turn — a simulated user always waits
// for the reply before the next turn — and the load shape is set by how
// interactions arrive:
//
//   - closed (-workers N): N users in a loop, each starting the next
//     interaction the moment the previous one ends. Throughput is
//     whatever the server sustains; latency hides queueing (coordinated
//     omission), so closed mode measures capacity, not user experience.
//   - open (-rate R): interactions arrive on a fixed schedule regardless
//     of how slow the server is, up to -max-inflight concurrent
//     conversations (arrivals beyond the cap are dropped and reported,
//     never silently delayed). Open mode measures what users would feel
//     at a given offered load.
//
// Multi-tenant servers can be driven two ways. -workspace NAME sends all
// traffic through that workspace's routes (/w/NAME/chat). Repeating
// -tenant NAME=BUNDLE instead mixes tenants in one run: interactions
// round-robin across the named workspaces (closed mode assigns workers,
// open mode assigns arrivals), each drawing utterances from its own
// bundle's space, and the report carries a per-workspace breakdown next
// to the aggregate. The Table-5 intent mix only names intents the
// driven space defines; a space from another domain falls back to a
// uniform draw over its own task intents.
//
// Latency is measured client-side per turn into a lock-free log-linear
// histogram (internal/obs.QuantileHistogram, ≤1.6% relative quantile
// error). Turns completing during -warmup or after the measurement
// window are excluded. The run is deterministic per (space, seed) in
// closed mode: worker w draws from seed+w.
//
// -target repeats: one URL drives a single server (or cmd/mdxrouter
// fronting many); several URLs drive replicas directly, each session
// sticky to the target it started on.
//
// With -slo FILE the report is evaluated against the baseline's
// objectives and the exit status is 1 on any violation — the CI gate.
// A mixed-tenant report is gated by the baseline's "slo_multi_tenant"
// objectives when present (latency ceilings bind per workspace too).
// -router-slo FILE gates against a router baseline (BENCH_router.json):
// -router-phase picks the single- or multi-replica objectives, and in the
// multi phase -baseline-report REPORT additionally enforces the
// single-vs-multi throughput scaling ratio. -replay REPORT re-evaluates
// a previous run's report without generating load.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/medkb"
	"ontoconv/internal/obs"
	"ontoconv/internal/sim"
	"ontoconv/internal/slo"
)

// targetFlags collects the repeatable -target flag: the base URLs load is
// driven at. One target is the common case (a single mdxserver, or
// cmd/mdxrouter fronting many); several targets drive replicas directly,
// with sessions sticky to their target so each replica keeps its own
// conversations.
type targetFlags []string

func (t *targetFlags) String() string { return strings.Join(*t, ",") }

func (t *targetFlags) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*t = append(*t, strings.TrimRight(part, "/"))
		}
	}
	return nil
}

// tenantSpec is one -tenant flag: a workspace name and its bundle path.
type tenantSpec struct {
	name, path string
}

type tenantFlags []tenantSpec

func (t *tenantFlags) String() string {
	parts := make([]string, len(*t))
	for i, s := range *t {
		parts[i] = s.name + "=" + s.path
	}
	return strings.Join(parts, ",")
}

func (t *tenantFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want NAME=BUNDLE, got %q", v)
	}
	*t = append(*t, tenantSpec{name: name, path: path})
	return nil
}

func main() {
	var tenants tenantFlags
	var targets targetFlags
	var (
		bundlePath  = flag.String("bundle", "", "draw utterances from this compiled workspace bundle's space")
		spacePath   = flag.String("space", "", "draw utterances from this conversation-space JSON (see bootstrap -space)")
		workspaceWS = flag.String("workspace", "", "drive this workspace's routes (/w/NAME/chat) instead of the bare ones")
		mode        = flag.String("mode", "closed", "load shape: closed (N looping users) or open (fixed arrival rate)")
		workers     = flag.Int("workers", 8, "closed mode: concurrent simulated users")
		rate        = flag.Float64("rate", 50, "open mode: interaction arrivals per second")
		maxInflight = flag.Int("max-inflight", 256, "open mode: drop arrivals beyond this many concurrent interactions")
		duration    = flag.Duration("duration", 30*time.Second, "measurement window")
		warmup      = flag.Duration("warmup", 5*time.Second, "traffic before the window; excluded from the report")
		seed        = flag.Int64("seed", 2019, "base seed for the utterance stream")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		waitReady   = flag.Duration("wait-ready", 30*time.Second, "poll readiness this long before driving load")
		outPath     = flag.String("out", "", "write the JSON report here (default stdout)")
		sloPath     = flag.String("slo", "", "evaluate the report against this baseline's objectives; exit 1 on violation")
		replayPath  = flag.String("replay", "", "re-evaluate this existing report instead of generating load")
		routerSLO   = flag.String("router-slo", "", "evaluate against this router baseline (BENCH_router.json); exit 1 on violation")
		routerPhase = flag.String("router-phase", "single", "router baseline phase: single or multi (replica count behind the target)")
		baselineRep = flag.String("baseline-report", "", "multi phase: the single-replica report to ratio throughput against")
	)
	flag.Var(&tenants, "tenant", "mixed-tenant mode: NAME=BUNDLE, repeatable; round-robins interactions across workspaces")
	flag.Var(&targets, "target", "base URL under test (repeatable, or comma-separated; default http://127.0.0.1:8080); several URLs drive replicas directly with session stickiness")
	flag.Parse()
	if len(targets) == 0 {
		targets = targetFlags{"http://127.0.0.1:8080"}
	}

	if *replayPath != "" {
		os.Exit(replay(*replayPath, *sloPath, *routerSLO, *routerPhase, *baselineRep))
	}

	report := &slo.Report{
		Target:          strings.Join(targets, ","),
		Mode:            *mode,
		Seed:            *seed,
		WarmupSeconds:   warmup.Seconds(),
		DurationSeconds: duration.Seconds(),
	}
	tenantTargets, err := resolveTargets(tenants, *bundlePath, *spacePath, *workspaceWS, report)
	if err != nil {
		fatal(err)
	}
	// One tuned client for everything, readiness polling included: the
	// http.DefaultTransport defaults (MaxIdleConnsPerHost=2) would tear
	// down and re-dial connections constantly at high -workers.
	client := newLoadClient(*timeout, *workers+*maxInflight)
	for _, base := range targets {
		for _, tt := range tenantTargets {
			if err := waitForReady(client, base+tt.prefix, *waitReady); err != nil {
				fatal(err)
			}
		}
	}

	d := &driver{
		targets: targets,
		tenants: tenantTargets,
		seed:    *seed,
		client:  client,
	}
	switch *mode {
	case "closed":
		report.Workers = *workers
		d.runClosed(report, *workers, *warmup, *duration)
	case "open":
		report.RatePerSecond = *rate
		d.runOpen(report, *rate, *maxInflight, *warmup, *duration)
	default:
		fatal(fmt.Errorf("unknown -mode %q (closed or open)", *mode))
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	if out != os.Stdout {
		if err := out.Close(); err != nil {
			fatal(err)
		}
	}
	summarize(os.Stderr, report)
	os.Exit(gate(report, *sloPath, *routerSLO, *routerPhase, *baselineRep))
}

// replay re-evaluates an existing report against a baseline.
func replay(reportPath, sloPath, routerSLO, routerPhase, baselineRep string) int {
	report, err := readReport(reportPath)
	if err != nil {
		fatal(err)
	}
	summarize(os.Stderr, report)
	return gate(report, sloPath, routerSLO, routerPhase, baselineRep)
}

func readReport(path string) (*slo.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report slo.Report
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &report, nil
}

// gate prints violations and returns the process exit code: the -slo
// baseline's objectives, then the -router-slo baseline's phase objectives
// (plus the single-vs-multi throughput ratio when -baseline-report names
// the single-replica run).
func gate(report *slo.Report, sloPath, routerSLO, routerPhase, baselineRep string) int {
	code := 0
	if sloPath != "" {
		f, err := slo.LoadFile(sloPath)
		if err != nil {
			fatal(err)
		}
		spec := f.SpecFor(report)
		kind := ""
		if f.MultiTenant != nil && len(report.Workspaces) > 1 {
			kind = ", multi-tenant objectives"
		}
		violations := spec.Evaluate(report)
		if len(violations) == 0 {
			fmt.Fprintf(os.Stderr, "loadgen: within SLO (%s%s)\n", sloPath, kind)
		}
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "loadgen: SLO VIOLATION: %s\n", v)
			code = 1
		}
	}
	if routerSLO != "" {
		f, err := slo.LoadRouterFile(routerSLO)
		if err != nil {
			fatal(err)
		}
		var baseline *slo.Report
		if baselineRep != "" {
			if baseline, err = readReport(baselineRep); err != nil {
				fatal(err)
			}
		}
		violations, err := f.Evaluate(routerPhase, report, baseline)
		if err != nil {
			fatal(err)
		}
		if len(violations) == 0 {
			fmt.Fprintf(os.Stderr, "loadgen: within router SLO (%s, %s phase)\n", routerSLO, routerPhase)
		}
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "loadgen: ROUTER SLO VIOLATION: %s\n", v)
			code = 1
		}
	}
	return code
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(2)
}

// tenantTarget is one traffic destination: a route prefix and the
// conversation space its utterances are scripted from.
type tenantTarget struct {
	name   string // "" outside mixed/workspace mode
	prefix string // "" for bare routes, else "/w/<name>"
	space  *core.Space
}

// resolveTargets builds the destination set: the round-robin workspace
// list in mixed-tenant mode, otherwise one target from
// -bundle/-space/-workspace.
func resolveTargets(tenants tenantFlags, bundlePath, spacePath, workspace string, report *slo.Report) ([]*tenantTarget, error) {
	if len(tenants) > 0 {
		if bundlePath != "" || spacePath != "" || workspace != "" {
			return nil, fmt.Errorf("-tenant is mutually exclusive with -bundle, -space, and -workspace")
		}
		seen := map[string]bool{}
		targets := make([]*tenantTarget, 0, len(tenants))
		for _, ts := range tenants {
			if seen[ts.name] {
				return nil, fmt.Errorf("-tenant %q given twice", ts.name)
			}
			seen[ts.name] = true
			b, err := bundle.OpenFile(ts.path)
			if err != nil {
				return nil, err
			}
			targets = append(targets, &tenantTarget{
				name:   ts.name,
				prefix: "/w/" + ts.name,
				space:  b.Space,
			})
		}
		return targets, nil
	}
	space, err := loadSpace(bundlePath, spacePath)
	if err != nil {
		return nil, err
	}
	tt := &tenantTarget{space: space}
	if workspace != "" {
		tt.name = workspace
		tt.prefix = "/w/" + workspace
		report.Workspace = workspace
	}
	return []*tenantTarget{tt}, nil
}

// loadSpace resolves the conversation space the scripter draws from: a
// compiled bundle, a space JSON, or the built-in bootstrap corpus.
func loadSpace(bundlePath, spacePath string) (*core.Space, error) {
	switch {
	case bundlePath != "" && spacePath != "":
		return nil, fmt.Errorf("-bundle and -space are mutually exclusive")
	case bundlePath != "":
		b, err := bundle.OpenFile(bundlePath)
		if err != nil {
			return nil, err
		}
		return b.Space, nil
	case spacePath != "":
		data, err := os.ReadFile(spacePath)
		if err != nil {
			return nil, err
		}
		var space core.Space
		if err := json.Unmarshal(data, &space); err != nil {
			return nil, fmt.Errorf("%s: %w", spacePath, err)
		}
		return &space, nil
	default:
		_, _, space, err := medkb.Bootstrap()
		return space, err
	}
}

// usageFor narrows the Table-5 intent mix to the intents the driven space
// actually defines. A space sharing none of them (another domain's) gets
// nil: the scripter then draws uniformly over that space's task intents.
func usageFor(space *core.Space) []sim.IntentShare {
	var out []sim.IntentShare
	for _, s := range sim.MDXUsage() {
		if space.Intent(s.Intent) != nil {
			out = append(out, s)
		}
	}
	return out
}

// scripterFor builds a deterministic per-seed scripter over one space.
func scripterFor(space *core.Space, seed int64) *sim.Scripter {
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.Usage = usageFor(space)
	return sim.NewScripter(space, cfg)
}

// newLoadClient builds the one tuned HTTP client the whole run shares.
// conns sizes the idle pool to the worst-case concurrency so a turn never
// re-dials: with the http.DefaultTransport defaults (MaxIdleConnsPerHost
// = 2), every worker beyond two would close and reopen its connection on
// each turn, throttling closed-loop mode and polluting latency with
// handshakes.
func newLoadClient(timeout time.Duration, conns int) *http.Client {
	if conns < 2 {
		conns = 2
	}
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        conns,
			MaxIdleConnsPerHost: conns,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// waitForReady polls <base>/readyz until the server reports a live
// runtime (base includes the workspace prefix, so in multi-tenant mode
// this cold-starts the tenant before the measurement window). It uses
// the run's shared client, so the connections it opens are the ones the
// measurement reuses.
func waitForReady(client *http.Client, base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not ready after %s: %v", patience, err)
			}
			return fmt.Errorf("server not ready after %s", patience)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// driver fires scripted interactions at the targets. With several
// targets, a session stays on the target it started on (worker stickiness
// in closed mode, arrival stickiness in open mode) — replicas do not
// share session state unless a router migrates it.
type driver struct {
	targets []string
	tenants []*tenantTarget
	seed    int64
	client  *http.Client
}

// counters are one traffic source's tallies; windowed ones only count
// turns completing inside the measurement window.
type counters struct {
	interactions uint64
	turns        uint64
	answered     uint64
	errors       uint64
}

type chatRequest struct {
	Session string `json:"session"`
	Message string `json:"message"`
}

type chatResponse struct {
	Session  string `json:"session"`
	Reply    string `json:"reply"`
	Intent   string `json:"intent"`
	Answered bool   `json:"answered"`
	Closed   bool   `json:"closed"`
}

// turn posts one /chat turn to the tenant's routes on one target and
// returns the reply and client-observed latency.
func (d *driver) turn(base string, tt *tenantTarget, session, message string) (chatResponse, time.Duration, error) {
	body, err := json.Marshal(chatRequest{Session: session, Message: message})
	if err != nil {
		return chatResponse{}, 0, err
	}
	start := time.Now()
	resp, err := d.client.Post(base+tt.prefix+"/chat", "application/json", bytes.NewReader(body))
	if err != nil {
		return chatResponse{}, time.Since(start), err
	}
	//ontolint:ignore errdrop best-effort drain: the turn's verdict is the status/decode below
	defer resp.Body.Close()
	var out chatResponse
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return out, time.Since(start), fmt.Errorf("%s/chat status %d", tt.prefix, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, time.Since(start), fmt.Errorf("%s/chat decode: %w", tt.prefix, err)
	}
	return out, time.Since(start), nil
}

// interaction plays one script to completion against one tenant. Turn
// latencies completing inside [winStart, winEnd) are recorded into hist
// and cnt; the interaction itself is counted if its first turn lands in
// the window. sc is synchronized by mu when shared (open mode); nil mu
// means the caller owns the scripter (closed mode).
func (d *driver) interaction(sc *sim.Scripter, mu *sync.Mutex, base string, tt *tenantTarget, session string,
	hist *obs.QuantileHistogram, cnt *counters, winStart, winEnd time.Time) {
	lock := func() {
		if mu != nil {
			mu.Lock()
		}
	}
	unlock := func() {
		if mu != nil {
			mu.Unlock()
		}
	}
	lock()
	sp := sc.Next()
	unlock()
	if sp.Skip {
		return
	}
	counted := false
	utterance := sp.Utterance
	var last chatResponse
	for {
		resp, elapsed, err := d.turn(base, tt, session, utterance)
		now := time.Now()
		inWindow := now.After(winStart) && now.Before(winEnd)
		if err != nil {
			if inWindow {
				atomic.AddUint64(&cnt.errors, 1)
				if !counted {
					atomic.AddUint64(&cnt.interactions, 1)
				}
			}
			return
		}
		if inWindow {
			hist.Observe(elapsed.Seconds())
			atomic.AddUint64(&cnt.turns, 1)
			if !counted {
				atomic.AddUint64(&cnt.interactions, 1)
				counted = true
			}
		}
		last = resp
		lock()
		next, done := sc.React(sp, resp.Reply, resp.Answered, resp.Closed)
		unlock()
		if done {
			break
		}
		utterance = next
	}
	lock()
	rec := sc.Score(sp, last.Intent, last.Answered, last.Reply)
	unlock()
	if counted && rec.Answered {
		atomic.AddUint64(&cnt.answered, 1)
	}
}

// runClosed: N simulated users in a loop, one scripter per worker so the
// draw stream is deterministic per (seed, worker). In mixed-tenant mode
// worker w belongs to tenant w mod len(tenants); with several targets,
// worker w drives target w mod len(targets) for its whole run.
func (d *driver) runClosed(report *slo.Report, workers int, warmup, duration time.Duration) {
	winStart := time.Now().Add(warmup)
	winEnd := winStart.Add(duration)
	tenantHists := make([]*obs.QuantileHistogram, len(d.tenants))
	for i := range tenantHists {
		tenantHists[i] = &obs.QuantileHistogram{}
	}
	cnts := make([]counters, len(d.tenants))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ti := w % len(d.tenants)
		wg.Add(1)
		go func(w, ti int) {
			defer wg.Done()
			tt := d.tenants[ti]
			base := d.targets[w%len(d.targets)]
			sc := scripterFor(tt.space, d.seed+int64(w))
			for i := 0; time.Now().Before(winEnd); i++ {
				session := fmt.Sprintf("lg-w%d-i%d", w, i)
				d.interaction(sc, nil, base, tt, session, tenantHists[ti], &cnts[ti], winStart, winEnd)
			}
		}(w, ti)
	}
	wg.Wait()
	fill(report, d.tenants, tenantHists, cnts, duration)
}

// runOpen: interactions arrive on a fixed schedule, each played out in
// its own goroutine; arrival i goes to tenant i mod len(tenants). Each
// tenant shares one mutex-guarded scripter — the arrival process is the
// point here, not draw-order determinism.
func (d *driver) runOpen(report *slo.Report, rate float64, maxInflight int, warmup, duration time.Duration) {
	if rate <= 0 {
		fatal(fmt.Errorf("-rate must be positive in open mode"))
	}
	winStart := time.Now().Add(warmup)
	winEnd := winStart.Add(duration)
	scripters := make([]*sim.Scripter, len(d.tenants))
	mus := make([]sync.Mutex, len(d.tenants))
	tenantHists := make([]*obs.QuantileHistogram, len(d.tenants))
	for i, tt := range d.tenants {
		scripters[i] = scripterFor(tt.space, d.seed+int64(i))
		tenantHists[i] = &obs.QuantileHistogram{}
	}
	cnts := make([]counters, len(d.tenants))
	var inflight atomic.Int64
	var dropped uint64
	var wg sync.WaitGroup
	tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer tick.Stop()
	for i := 0; ; i++ {
		now := <-tick.C
		if now.After(winEnd) {
			break
		}
		if int(inflight.Load()) >= maxInflight {
			// An overloaded server does not slow arrivals down — the excess
			// is dropped and reported, keeping the offered rate honest.
			if now.After(winStart) {
				dropped++
			}
			continue
		}
		inflight.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer inflight.Add(-1)
			ti := i % len(d.tenants)
			d.interaction(scripters[ti], &mus[ti], d.targets[i%len(d.targets)], d.tenants[ti],
				fmt.Sprintf("lg-o%d", i), tenantHists[ti], &cnts[ti], winStart, winEnd)
		}(i)
	}
	wg.Wait()
	report.DroppedArrivals = dropped
	fill(report, d.tenants, tenantHists, cnts, duration)
}

// fill computes the report's derived fields from the raw tallies: the
// aggregate always, plus the per-workspace breakdown in mixed-tenant
// runs.
func fill(report *slo.Report, tenants []*tenantTarget, hists []*obs.QuantileHistogram, cnts []counters, duration time.Duration) {
	merged := &obs.QuantileHistogram{}
	var total counters
	for i := range tenants {
		merged.Merge(hists[i])
		total.interactions += atomic.LoadUint64(&cnts[i].interactions)
		total.turns += atomic.LoadUint64(&cnts[i].turns)
		total.answered += atomic.LoadUint64(&cnts[i].answered)
		total.errors += atomic.LoadUint64(&cnts[i].errors)
	}
	report.Interactions = total.interactions
	report.Turns = total.turns
	report.Answered = total.answered
	report.Errors = total.errors
	if total := report.Turns + report.Errors; total > 0 {
		report.ErrorRate = float64(report.Errors) / float64(total)
	}
	if duration > 0 {
		report.TurnsPerSecond = float64(report.Turns) / duration.Seconds()
	}
	report.TurnLatency = latency(merged)

	if len(tenants) > 1 {
		report.Workspaces = make(map[string]*slo.WorkspaceLoad, len(tenants))
		for i, tt := range tenants {
			wl := &slo.WorkspaceLoad{
				Interactions: atomic.LoadUint64(&cnts[i].interactions),
				Turns:        atomic.LoadUint64(&cnts[i].turns),
				Answered:     atomic.LoadUint64(&cnts[i].answered),
				Errors:       atomic.LoadUint64(&cnts[i].errors),
				TurnLatency:  latency(hists[i]),
			}
			if duration > 0 {
				wl.TurnsPerSecond = float64(wl.Turns) / duration.Seconds()
			}
			report.Workspaces[tt.name] = wl
		}
	}
}

func latency(h *obs.QuantileHistogram) slo.Latency {
	return slo.Latency{
		P50Seconds:  h.Quantile(0.5),
		P90Seconds:  h.Quantile(0.9),
		P99Seconds:  h.Quantile(0.99),
		P999Seconds: h.Quantile(0.999),
		MaxSeconds:  h.Max(),
		MeanSeconds: h.Mean(),
	}
}

func summarize(w io.Writer, r *slo.Report) {
	fmt.Fprintf(w, "loadgen: %s %s: %d interactions, %d turns (%d answered), %d errors",
		r.Mode, r.Target, r.Interactions, r.Turns, r.Answered, r.Errors)
	if r.DroppedArrivals > 0 {
		fmt.Fprintf(w, ", %d arrivals dropped", r.DroppedArrivals)
	}
	fmt.Fprintf(w, "\nloadgen: %.1f turns/s, latency p50 %.2fms p90 %.2fms p99 %.2fms p99.9 %.2fms max %.2fms\n",
		r.TurnsPerSecond,
		r.TurnLatency.P50Seconds*1e3, r.TurnLatency.P90Seconds*1e3,
		r.TurnLatency.P99Seconds*1e3, r.TurnLatency.P999Seconds*1e3,
		r.TurnLatency.MaxSeconds*1e3)
	for _, name := range sortedNames(r.Workspaces) {
		wl := r.Workspaces[name]
		fmt.Fprintf(w, "loadgen:   /w/%s: %d turns (%d answered), %d errors, %.1f turns/s, p50 %.2fms p99 %.2fms\n",
			name, wl.Turns, wl.Answered, wl.Errors, wl.TurnsPerSecond,
			wl.TurnLatency.P50Seconds*1e3, wl.TurnLatency.P99Seconds*1e3)
	}
}

func sortedNames(ws map[string]*slo.WorkspaceLoad) []string {
	if len(ws) == 0 {
		return nil
	}
	names := make([]string, 0, len(ws))
	for name := range ws {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
