// Command loadgen drives a running mdxserver with the usage study's
// traffic shape and gates the result against service-level objectives.
//
//	loadgen -target http://127.0.0.1:8080 -bundle mdx.bundle \
//	        -mode closed -workers 8 -warmup 5s -duration 30s \
//	        -out report.json -slo BENCH_load.json
//
// The utterance stream comes from the simulation's user model
// (internal/sim.Scripter): the Table-5 intent mix, elicitation
// follow-ups, misspellings, keyword-only queries, gibberish, abandoned
// requests. Interactions are multi-turn — a simulated user always waits
// for the reply before the next turn — and the load shape is set by how
// interactions arrive:
//
//   - closed (-workers N): N users in a loop, each starting the next
//     interaction the moment the previous one ends. Throughput is
//     whatever the server sustains; latency hides queueing (coordinated
//     omission), so closed mode measures capacity, not user experience.
//   - open (-rate R): interactions arrive on a fixed schedule regardless
//     of how slow the server is, up to -max-inflight concurrent
//     conversations (arrivals beyond the cap are dropped and reported,
//     never silently delayed). Open mode measures what users would feel
//     at a given offered load.
//
// Latency is measured client-side per turn into a lock-free log-linear
// histogram (internal/obs.QuantileHistogram, ≤1.6% relative quantile
// error). Turns completing during -warmup or after the measurement
// window are excluded. The run is deterministic per (space, seed) in
// closed mode: worker w draws from seed+w.
//
// With -slo FILE the report is evaluated against the baseline's
// objectives and the exit status is 1 on any violation — the CI gate.
// -replay REPORT re-evaluates a previous run's report without
// generating load.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/medkb"
	"ontoconv/internal/obs"
	"ontoconv/internal/sim"
	"ontoconv/internal/slo"
)

func main() {
	var (
		target      = flag.String("target", "http://127.0.0.1:8080", "base URL of the mdxserver under test")
		bundlePath  = flag.String("bundle", "", "draw utterances from this compiled workspace bundle's space")
		spacePath   = flag.String("space", "", "draw utterances from this conversation-space JSON (see bootstrap -space)")
		mode        = flag.String("mode", "closed", "load shape: closed (N looping users) or open (fixed arrival rate)")
		workers     = flag.Int("workers", 8, "closed mode: concurrent simulated users")
		rate        = flag.Float64("rate", 50, "open mode: interaction arrivals per second")
		maxInflight = flag.Int("max-inflight", 256, "open mode: drop arrivals beyond this many concurrent interactions")
		duration    = flag.Duration("duration", 30*time.Second, "measurement window")
		warmup      = flag.Duration("warmup", 5*time.Second, "traffic before the window; excluded from the report")
		seed        = flag.Int64("seed", 2019, "base seed for the utterance stream")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		waitReady   = flag.Duration("wait-ready", 30*time.Second, "poll /readyz this long before driving load")
		outPath     = flag.String("out", "", "write the JSON report here (default stdout)")
		sloPath     = flag.String("slo", "", "evaluate the report against this baseline's objectives; exit 1 on violation")
		replayPath  = flag.String("replay", "", "re-evaluate this existing report instead of generating load")
	)
	flag.Parse()

	if *replayPath != "" {
		os.Exit(replay(*replayPath, *sloPath))
	}

	space, err := loadSpace(*bundlePath, *spacePath)
	if err != nil {
		fatal(err)
	}
	if err := waitForReady(*target, *waitReady); err != nil {
		fatal(err)
	}

	d := &driver{
		target: *target,
		space:  space,
		seed:   *seed,
		client: &http.Client{
			Timeout: *timeout,
			Transport: &http.Transport{
				MaxIdleConns:        *workers + *maxInflight,
				MaxIdleConnsPerHost: *workers + *maxInflight,
			},
		},
	}
	report := &slo.Report{
		Target:          *target,
		Mode:            *mode,
		Seed:            *seed,
		WarmupSeconds:   warmup.Seconds(),
		DurationSeconds: duration.Seconds(),
	}
	switch *mode {
	case "closed":
		report.Workers = *workers
		d.runClosed(report, *workers, *warmup, *duration)
	case "open":
		report.RatePerSecond = *rate
		d.runOpen(report, *rate, *maxInflight, *warmup, *duration)
	default:
		fatal(fmt.Errorf("unknown -mode %q (closed or open)", *mode))
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	if out != os.Stdout {
		if err := out.Close(); err != nil {
			fatal(err)
		}
	}
	summarize(os.Stderr, report)
	os.Exit(gate(report, *sloPath))
}

// replay re-evaluates an existing report against a baseline.
func replay(reportPath, sloPath string) int {
	data, err := os.ReadFile(reportPath)
	if err != nil {
		fatal(err)
	}
	var report slo.Report
	if err := json.Unmarshal(data, &report); err != nil {
		fatal(fmt.Errorf("%s: %w", reportPath, err))
	}
	summarize(os.Stderr, &report)
	return gate(&report, sloPath)
}

// gate prints violations and returns the process exit code.
func gate(report *slo.Report, sloPath string) int {
	if sloPath == "" {
		return 0
	}
	spec, err := slo.Load(sloPath)
	if err != nil {
		fatal(err)
	}
	violations := spec.Evaluate(report)
	if len(violations) == 0 {
		fmt.Fprintf(os.Stderr, "loadgen: within SLO (%s)\n", sloPath)
		return 0
	}
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "loadgen: SLO VIOLATION: %s\n", v)
	}
	return 1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(2)
}

// loadSpace resolves the conversation space the scripter draws from: a
// compiled bundle, a space JSON, or the built-in bootstrap corpus.
func loadSpace(bundlePath, spacePath string) (*core.Space, error) {
	switch {
	case bundlePath != "" && spacePath != "":
		return nil, fmt.Errorf("-bundle and -space are mutually exclusive")
	case bundlePath != "":
		b, err := bundle.OpenFile(bundlePath)
		if err != nil {
			return nil, err
		}
		return b.Space, nil
	case spacePath != "":
		data, err := os.ReadFile(spacePath)
		if err != nil {
			return nil, err
		}
		var space core.Space
		if err := json.Unmarshal(data, &space); err != nil {
			return nil, fmt.Errorf("%s: %w", spacePath, err)
		}
		return &space, nil
	default:
		_, _, space, err := medkb.Bootstrap()
		return space, err
	}
}

// waitForReady polls /readyz until the server reports a live runtime.
func waitForReady(target string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		resp, err := client.Get(target + "/readyz")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not ready after %s: %v", patience, err)
			}
			return fmt.Errorf("server not ready after %s", patience)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// driver fires scripted interactions at the target.
type driver struct {
	target string
	space  *core.Space
	seed   int64
	client *http.Client
}

// counters are one traffic source's tallies; windowed ones only count
// turns completing inside the measurement window.
type counters struct {
	interactions uint64
	turns        uint64
	answered     uint64
	errors       uint64
}

type chatRequest struct {
	Session string `json:"session"`
	Message string `json:"message"`
}

type chatResponse struct {
	Session  string `json:"session"`
	Reply    string `json:"reply"`
	Intent   string `json:"intent"`
	Answered bool   `json:"answered"`
	Closed   bool   `json:"closed"`
}

// turn posts one /chat turn and returns the reply and client-observed
// latency.
func (d *driver) turn(session, message string) (chatResponse, time.Duration, error) {
	body, err := json.Marshal(chatRequest{Session: session, Message: message})
	if err != nil {
		return chatResponse{}, 0, err
	}
	start := time.Now()
	resp, err := d.client.Post(d.target+"/chat", "application/json", bytes.NewReader(body))
	if err != nil {
		return chatResponse{}, time.Since(start), err
	}
	//ontolint:ignore errdrop best-effort drain: the turn's verdict is the status/decode below
	defer resp.Body.Close()
	var out chatResponse
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return out, time.Since(start), fmt.Errorf("/chat status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, time.Since(start), fmt.Errorf("/chat decode: %w", err)
	}
	return out, time.Since(start), nil
}

// interaction plays one script to completion. Turn latencies completing
// inside [winStart, winEnd) are recorded into hist and cnt; the
// interaction itself is counted if its first turn lands in the window.
// sc is synchronized by mu when shared (open mode); nil mu means the
// caller owns the scripter (closed mode).
func (d *driver) interaction(sc *sim.Scripter, mu *sync.Mutex, session string,
	hist *obs.QuantileHistogram, cnt *counters, winStart, winEnd time.Time) {
	lock := func() {
		if mu != nil {
			mu.Lock()
		}
	}
	unlock := func() {
		if mu != nil {
			mu.Unlock()
		}
	}
	lock()
	sp := sc.Next()
	unlock()
	if sp.Skip {
		return
	}
	counted := false
	utterance := sp.Utterance
	var last chatResponse
	for {
		resp, elapsed, err := d.turn(session, utterance)
		now := time.Now()
		inWindow := now.After(winStart) && now.Before(winEnd)
		if err != nil {
			if inWindow {
				atomic.AddUint64(&cnt.errors, 1)
				if !counted {
					atomic.AddUint64(&cnt.interactions, 1)
				}
			}
			return
		}
		if inWindow {
			hist.Observe(elapsed.Seconds())
			atomic.AddUint64(&cnt.turns, 1)
			if !counted {
				atomic.AddUint64(&cnt.interactions, 1)
				counted = true
			}
		}
		last = resp
		lock()
		next, done := sc.React(sp, resp.Reply, resp.Answered, resp.Closed)
		unlock()
		if done {
			break
		}
		utterance = next
	}
	lock()
	rec := sc.Score(sp, last.Intent, last.Answered, last.Reply)
	unlock()
	if counted && rec.Answered {
		atomic.AddUint64(&cnt.answered, 1)
	}
}

// runClosed: N simulated users in a loop, one scripter per worker so the
// draw stream is deterministic per (seed, worker).
func (d *driver) runClosed(report *slo.Report, workers int, warmup, duration time.Duration) {
	winStart := time.Now().Add(warmup)
	winEnd := winStart.Add(duration)
	hists := make([]*obs.QuantileHistogram, workers)
	var cnt counters
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		hists[w] = &obs.QuantileHistogram{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := sim.DefaultConfig()
			cfg.Seed = d.seed + int64(w)
			sc := sim.NewScripter(d.space, cfg)
			for i := 0; time.Now().Before(winEnd); i++ {
				session := fmt.Sprintf("lg-w%d-i%d", w, i)
				d.interaction(sc, nil, session, hists[w], &cnt, winStart, winEnd)
			}
		}(w)
	}
	wg.Wait()
	merged := &obs.QuantileHistogram{}
	for _, h := range hists {
		merged.Merge(h)
	}
	fill(report, merged, &cnt, duration)
}

// runOpen: interactions arrive on a fixed schedule from one shared
// scripter (mutex-guarded — the arrival process is the point here, not
// draw-order determinism), each played out in its own goroutine.
func (d *driver) runOpen(report *slo.Report, rate float64, maxInflight int, warmup, duration time.Duration) {
	if rate <= 0 {
		fatal(fmt.Errorf("-rate must be positive in open mode"))
	}
	winStart := time.Now().Add(warmup)
	winEnd := winStart.Add(duration)
	cfg := sim.DefaultConfig()
	cfg.Seed = d.seed
	sc := sim.NewScripter(d.space, cfg)
	var mu sync.Mutex
	hist := &obs.QuantileHistogram{}
	var cnt counters
	var inflight atomic.Int64
	var dropped uint64
	var wg sync.WaitGroup
	tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer tick.Stop()
	for i := 0; ; i++ {
		now := <-tick.C
		if now.After(winEnd) {
			break
		}
		if int(inflight.Load()) >= maxInflight {
			// An overloaded server does not slow arrivals down — the excess
			// is dropped and reported, keeping the offered rate honest.
			if now.After(winStart) {
				dropped++
			}
			continue
		}
		inflight.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer inflight.Add(-1)
			d.interaction(sc, &mu, fmt.Sprintf("lg-o%d", i), hist, &cnt, winStart, winEnd)
		}(i)
	}
	wg.Wait()
	report.DroppedArrivals = dropped
	fill(report, hist, &cnt, duration)
}

// fill computes the report's derived fields from the raw tallies.
func fill(report *slo.Report, hist *obs.QuantileHistogram, cnt *counters, duration time.Duration) {
	report.Interactions = atomic.LoadUint64(&cnt.interactions)
	report.Turns = atomic.LoadUint64(&cnt.turns)
	report.Answered = atomic.LoadUint64(&cnt.answered)
	report.Errors = atomic.LoadUint64(&cnt.errors)
	if total := report.Turns + report.Errors; total > 0 {
		report.ErrorRate = float64(report.Errors) / float64(total)
	}
	if duration > 0 {
		report.TurnsPerSecond = float64(report.Turns) / duration.Seconds()
	}
	report.TurnLatency = slo.Latency{
		P50Seconds:  hist.Quantile(0.5),
		P90Seconds:  hist.Quantile(0.9),
		P99Seconds:  hist.Quantile(0.99),
		P999Seconds: hist.Quantile(0.999),
		MaxSeconds:  hist.Max(),
		MeanSeconds: hist.Mean(),
	}
}

func summarize(w io.Writer, r *slo.Report) {
	fmt.Fprintf(w, "loadgen: %s %s: %d interactions, %d turns (%d answered), %d errors",
		r.Mode, r.Target, r.Interactions, r.Turns, r.Answered, r.Errors)
	if r.DroppedArrivals > 0 {
		fmt.Fprintf(w, ", %d arrivals dropped", r.DroppedArrivals)
	}
	fmt.Fprintf(w, "\nloadgen: %.1f turns/s, latency p50 %.2fms p90 %.2fms p99 %.2fms p99.9 %.2fms max %.2fms\n",
		r.TurnsPerSecond,
		r.TurnLatency.P50Seconds*1e3, r.TurnLatency.P90Seconds*1e3,
		r.TurnLatency.P99Seconds*1e3, r.TurnLatency.P999Seconds*1e3,
		r.TurnLatency.MaxSeconds*1e3)
}
