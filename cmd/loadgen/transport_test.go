package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadClientDoesNotChurnConnections proves the tuned transport
// actually pools: 16 concurrent workers firing bursts of requests (far
// more requests than workers) must not dial more than one connection per
// worker. The http.DefaultTransport defaults this replaces
// (MaxIdleConnsPerHost=2) close and re-dial on nearly every request
// beyond two workers — the satellite bug this test pins down.
func TestLoadClientDoesNotChurnConnections(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"status":"ready"}`)
	}))
	defer srv.Close()

	const workers, perWorker = 16, 30
	client := newLoadClient(5*time.Second, workers)

	var dials, reuses atomic.Int64
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				reuses.Add(1)
			} else {
				dials.Add(1)
			}
		},
	}

	// Readiness polling shares the client, so its connection is part of
	// the pool the workers then reuse.
	if err := waitForReady(client, srv.URL, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req, err := http.NewRequest(http.MethodGet, srv.URL+"/readyz", nil)
				if err != nil {
					t.Error(err)
					return
				}
				req = req.WithContext(httptrace.WithClientTrace(req.Context(), trace))
				resp, err := client.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	total := workers * perWorker
	if got := dials.Load(); got > workers {
		t.Fatalf("transport churned: %d new connections for %d requests from %d workers (want <= %d)",
			got, total, workers, workers)
	}
	if got := reuses.Load(); got < int64(total-workers) {
		t.Fatalf("only %d/%d requests reused a pooled connection", got, total)
	}
}

// TestDefaultTransportWouldChurn documents why newLoadClient exists: the
// same burst through a DefaultTransport-shaped client dials far more than
// one connection per worker. If this ever stops failing for the default
// shape, the pool tuning can be retired.
func TestDefaultTransportWouldChurn(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	const workers, perWorker = 16, 30
	churny := &http.Client{
		Timeout: 5 * time.Second,
		// The stdlib defaults loadgen used to inherit for readiness polls.
		Transport: &http.Transport{MaxIdleConnsPerHost: 2},
	}

	var dials atomic.Int64
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if !info.Reused {
				dials.Add(1)
			}
		},
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
				req = req.WithContext(httptrace.WithClientTrace(req.Context(), trace))
				resp, err := churny.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if got := dials.Load(); got <= workers {
		t.Skipf("default-shaped transport only dialed %d times here; churn not reproducible on this scheduler", got)
	}
}
