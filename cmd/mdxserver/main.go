// Command mdxserver hosts Conversational MDX over HTTP (the deployment
// shape of §7: conversation interface as a hosted service).
//
//	mdxserver -addr :8080
//
//	curl -s localhost:8080/chat -d '{"session":"s1","message":"show me drugs that treat psoriasis"}'
//	curl -s localhost:8080/chat -d '{"session":"s1","message":"pediatric"}'
//	curl -s localhost:8080/feedback -d '{"session":"s1","thumbs":"up"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"ontoconv"
	"ontoconv/internal/agent"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	fmt.Println("bootstrapping conversation space …")
	base, _, space, err := ontoconv.MedicalBootstrap()
	if err != nil {
		log.Fatal(err)
	}
	ag, err := agent.New(space, base, agent.Options{})
	if err != nil {
		log.Fatal(err)
	}
	srv := agent.NewServer(ag)
	fmt.Printf("listening on %s (POST /chat, POST /feedback, GET /context, GET /healthz)\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
