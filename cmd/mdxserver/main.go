// Command mdxserver hosts Conversational MDX over HTTP (the deployment
// shape of §7: conversation interface as a hosted service).
//
//	mdxserver -addr :8080 [-bundle [NAME=]FILE]... [-workspace-cap N]
//	          [-debug] [-idle-ttl 30m] [-quiet]
//
//	curl -s localhost:8080/chat -d '{"session":"s1","message":"show me drugs that treat psoriasis"}'
//	curl -s localhost:8080/chat -d '{"session":"s1","message":"pediatric"}'
//	curl -s localhost:8080/feedback -d '{"session":"s1","thumbs":"up"}'
//	curl -s localhost:8080/trace?session=s1     # per-stage trace of the last turn
//	curl -s localhost:8080/metrics              # Prometheus text exposition
//	curl -s -X POST localhost:8080/admin/reload # hot-swap to the bundle on disk
//
// Without -bundle the server bootstraps the medical conversation space and
// trains the classifier in-process (slow cold start). With one bare
// -bundle FILE it deserializes a compiled workspace bundle produced by
// `bootstrap -out` instead — no retraining — and can hot-swap to a newer
// bundle at the same path via POST /admin/reload or SIGHUP.
//
// Repeating -bundle, or naming one (-bundle retail=retail.bundle), turns
// on multi-tenant serving: every bundle becomes a workspace reachable
// under /w/<name>/chat (or bare routes with an X-Workspace header), with
// per-tenant sessions, answer caches, and tenant-labeled metrics on one
// /metrics endpoint. A bare FILE is the workspace "default", which also
// answers the bare routes; the first -bundle is the default workspace.
// Agents are built lazily and -workspace-cap bounds how many stay
// resident at once (LRU eviction; 0 = all). Domains are recognized by
// the bundle's key concepts — Drug ⇒ the medical KB, Product ⇒ the
// retail KB — since bundles carry the conversation space but KBs are
// regenerated deterministically at load. SIGHUP reloads every workspace;
// POST /w/<name>/admin/reload reloads one.
//
// Every request is logged as one JSON line on stderr (method, path,
// session, status, duration, request_id). X-Request-ID headers are
// propagated (or minted) and echoed even under -quiet, so access-log
// lines, /trace/slow entries, and client records join on one key.
// -debug additionally mounts net/http/pprof under /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ontoconv"
	"ontoconv/internal/agent"
	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/obs"
	"ontoconv/internal/workspace"
)

// bundleSpec is one -bundle flag: an optional workspace name and a path.
type bundleSpec struct {
	name  string
	path  string
	named bool // true when the flag spelled NAME=PATH
}

// bundleFlags accumulates repeated -bundle flags.
type bundleFlags []bundleSpec

func (b *bundleFlags) String() string {
	parts := make([]string, len(*b))
	for i, s := range *b {
		parts[i] = s.name + "=" + s.path
	}
	return strings.Join(parts, ",")
}

func (b *bundleFlags) Set(v string) error {
	spec := bundleSpec{name: agent.DefaultWorkspace, path: v}
	if name, path, ok := strings.Cut(v, "="); ok {
		if name == "" || path == "" {
			return fmt.Errorf("want NAME=PATH or PATH, got %q", v)
		}
		spec = bundleSpec{name: name, path: path, named: true}
	}
	if spec.path == "" {
		return fmt.Errorf("empty bundle path")
	}
	*b = append(*b, spec)
	return nil
}

func main() {
	var bundles bundleFlags
	addr := flag.String("addr", ":8080", "listen address")
	flag.Var(&bundles, "bundle", "serve a compiled workspace bundle (see bootstrap -out); repeat or use NAME=PATH for multi-tenant serving")
	wsCap := flag.Int("workspace-cap", 0, "multi-tenant: max workspaces resident at once, LRU-evicting the rest (0 = all)")
	debug := flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
	idleTTL := flag.Duration("idle-ttl", agent.DefaultIdleTTL, "evict sessions idle longer than this (0 disables)")
	quiet := flag.Bool("quiet", false, "disable JSON request logging")
	flag.Parse()

	var srv *agent.Server
	switch {
	case len(bundles) == 0:
		srv = bootServer()
	case len(bundles) == 1 && !bundles[0].named:
		srv = singleBundleServer(bundles[0].path)
	default:
		srv = workspaceServer(bundles, *wsCap)
	}
	srv.SetIdleTTL(*idleTTL)
	// Idle sessions are reclaimed on a background tick, not only when
	// traffic happens to arrive.
	srv.StartSweeper(0)

	// AccessLog always wraps the handler — it owns request-ID minting and
	// propagation, which /trace/slow correlation relies on even when the
	// log lines themselves are discarded by -quiet.
	logDest := io.Writer(os.Stderr)
	if *quiet {
		logDest = io.Discard
	}
	handler := obs.AccessLog(logDest, srv.Handler())
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if *debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Println("pprof enabled at /debug/pprof/")
	}

	fmt.Printf("listening on %s (POST /chat, POST /feedback, POST /admin/reload, GET /context, GET /trace, GET /trace/slow, GET /metrics, GET /healthz, GET /readyz)\n", *addr)
	server := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(server.ListenAndServe())
}

// bootServer bootstraps the medical space in-process (no bundle; slow
// cold start) and serves it single-tenant.
func bootServer() *agent.Server {
	fmt.Println("bootstrapping conversation space …")
	base, _, space, err := ontoconv.MedicalBootstrap()
	if err != nil {
		log.Fatal(err)
	}
	ag, err := agent.New(space, base, agent.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return agent.NewServer(ag)
}

// singleBundleServer is the classic one-bundle deployment: a single agent
// cold-started from the bundle, with /admin/reload and SIGHUP hot swaps.
func singleBundleServer(path string) *agent.Server {
	start := time.Now()
	b, err := bundle.OpenFile(path)
	if err != nil {
		log.Fatal(err)
	}
	buildKB, domain, err := domainKB(b.Space)
	if err != nil {
		log.Fatal(err)
	}
	base, err := buildKB(b.Space)
	if err != nil {
		log.Fatal(err)
	}
	ag, err := agent.NewFromBundle(b, base, agent.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded bundle %s (version %s, domain %s, classifier %s) in %s — no retraining\n",
		path, b.Version(), domain, b.Manifest.Classifier, time.Since(start).Round(time.Millisecond))

	srv := agent.NewServer(ag)
	srv.SetReloader(func() (*bundle.Bundle, error) {
		return bundle.OpenFile(path)
	})
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if v, err := srv.Reload(); err != nil {
				fmt.Fprintln(os.Stderr, "reload (SIGHUP):", err)
			} else {
				fmt.Printf("reloaded bundle, serving version %s\n", v)
			}
		}
	}()
	return srv
}

// workspaceServer serves every -bundle as a tenant of one process. Agents
// are built lazily on first traffic; wsCap bounds residency.
func workspaceServer(bundles bundleFlags, wsCap int) *agent.Server {
	oreg := obs.NewRegistry()
	sources := make([]workspace.Source, 0, len(bundles))
	for _, spec := range bundles {
		path := spec.path
		// Probe the bundle once up front: fail fast on a bad path and pin
		// the KB domain before any traffic arrives.
		b, err := bundle.OpenFile(path)
		if err != nil {
			log.Fatal(err)
		}
		buildKB, domain, err := domainKB(b.Space)
		if err != nil {
			log.Fatalf("workspace %s: %v", spec.name, err)
		}
		fmt.Printf("workspace %s: bundle %s (version %s, domain %s, classifier %s)\n",
			spec.name, path, b.Version(), domain, b.Manifest.Classifier)
		sources = append(sources, workspace.Source{
			Name: spec.name,
			Open: func() (*bundle.Bundle, error) { return bundle.OpenFile(path) },
			KB:   buildKB,
		})
	}
	wreg, err := workspace.New(oreg, wsCap, sources...)
	if err != nil {
		log.Fatal(err)
	}
	srv := agent.NewWorkspaceServer(wreg, oreg)
	srv.SetDefaultWorkspace(bundles[0].name)

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			for _, name := range wreg.Workspaces() {
				if v, err := wreg.Reload(name); err != nil {
					fmt.Fprintf(os.Stderr, "reload (SIGHUP) %s: %v\n", name, err)
				} else {
					fmt.Printf("reloaded workspace %s, serving version %s\n", name, v)
				}
			}
		}
	}()

	residency := "all resident"
	if wsCap > 0 {
		residency = fmt.Sprintf("cap %d", wsCap)
	}
	fmt.Printf("multi-tenant: %d workspaces (%s), default %q — POST /w/<name>/chat\n",
		len(bundles), residency, bundles[0].name)
	return srv
}

// domainKB recognizes which deterministic KB generator a bundle's space
// belongs to by its key concepts. Bundles carry the trained conversation
// space but not the data; the KB is regenerated and indexed at load time.
func domainKB(space *core.Space) (func(*core.Space) (*kb.KB, error), string, error) {
	for _, key := range space.KeyConcepts {
		switch key {
		case "Drug":
			return indexedKB(ontoconv.MedicalKB), "medical", nil
		case "Product":
			return indexedKB(ontoconv.RetailKB), "retail", nil
		}
	}
	return nil, "", fmt.Errorf("no KB generator for key concepts %v (want Drug or Product)", space.KeyConcepts)
}

// indexedKB wraps a KB generator with the secondary-index build the
// serving fast path needs (see ontoconv.BuildKBIndexes).
func indexedKB(generate func() (*kb.KB, error)) func(*core.Space) (*kb.KB, error) {
	return func(space *core.Space) (*kb.KB, error) {
		base, err := generate()
		if err != nil {
			return nil, err
		}
		if _, err := ontoconv.BuildKBIndexes(base, space); err != nil {
			return nil, err
		}
		return base, nil
	}
}
