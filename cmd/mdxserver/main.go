// Command mdxserver hosts Conversational MDX over HTTP (the deployment
// shape of §7: conversation interface as a hosted service).
//
//	mdxserver -addr :8080 [-bundle FILE] [-debug] [-idle-ttl 30m] [-quiet]
//
//	curl -s localhost:8080/chat -d '{"session":"s1","message":"show me drugs that treat psoriasis"}'
//	curl -s localhost:8080/chat -d '{"session":"s1","message":"pediatric"}'
//	curl -s localhost:8080/feedback -d '{"session":"s1","thumbs":"up"}'
//	curl -s localhost:8080/trace?session=s1     # per-stage trace of the last turn
//	curl -s localhost:8080/metrics              # Prometheus text exposition
//	curl -s -X POST localhost:8080/admin/reload # hot-swap to the bundle on disk
//
// Without -bundle the server bootstraps the conversation space and trains
// the classifier in-process (slow cold start). With -bundle FILE it
// deserializes a compiled workspace bundle produced by `bootstrap -out`
// instead — no retraining — and can hot-swap to a newer bundle at the same
// path via POST /admin/reload or SIGHUP, without dropping sessions or
// in-flight turns.
//
// Every request is logged as one JSON line on stderr (method, path,
// session, status, duration, request_id). X-Request-ID headers are
// propagated (or minted) and echoed even under -quiet, so access-log
// lines, /trace/slow entries, and client records join on one key.
// -debug additionally mounts net/http/pprof under /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ontoconv"
	"ontoconv/internal/agent"
	"ontoconv/internal/bundle"
	"ontoconv/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	bundlePath := flag.String("bundle", "", "serve from a compiled workspace bundle (see bootstrap -out); enables /admin/reload and SIGHUP hot swaps")
	debug := flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
	idleTTL := flag.Duration("idle-ttl", agent.DefaultIdleTTL, "evict sessions idle longer than this (0 disables)")
	quiet := flag.Bool("quiet", false, "disable JSON request logging")
	flag.Parse()

	var ag *agent.Agent
	if *bundlePath != "" {
		start := time.Now()
		b, err := bundle.OpenFile(*bundlePath)
		if err != nil {
			log.Fatal(err)
		}
		base, err := ontoconv.MedicalKB()
		if err != nil {
			log.Fatal(err)
		}
		// The generated KB has no secondary indexes; derive them from the
		// bundle's space before serving so template plans get index scans.
		if _, err := ontoconv.BuildKBIndexes(base, b.Space); err != nil {
			log.Fatal(err)
		}
		ag, err = agent.NewFromBundle(b, base, agent.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded bundle %s (version %s, classifier %s) in %s — no retraining\n",
			*bundlePath, b.Version(), b.Manifest.Classifier, time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Println("bootstrapping conversation space …")
		base, _, space, err := ontoconv.MedicalBootstrap()
		if err != nil {
			log.Fatal(err)
		}
		ag, err = agent.New(space, base, agent.Options{})
		if err != nil {
			log.Fatal(err)
		}
	}
	srv := agent.NewServer(ag)
	srv.SetIdleTTL(*idleTTL)

	if *bundlePath != "" {
		srv.SetReloader(func() (*bundle.Bundle, error) {
			return bundle.OpenFile(*bundlePath)
		})
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if v, err := srv.Reload(); err != nil {
					fmt.Fprintln(os.Stderr, "reload (SIGHUP):", err)
				} else {
					fmt.Printf("reloaded bundle, serving version %s\n", v)
				}
			}
		}()
	}

	// AccessLog always wraps the handler — it owns request-ID minting and
	// propagation, which /trace/slow correlation relies on even when the
	// log lines themselves are discarded by -quiet.
	logDest := io.Writer(os.Stderr)
	if *quiet {
		logDest = io.Discard
	}
	handler := obs.AccessLog(logDest, srv.Handler())
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if *debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Println("pprof enabled at /debug/pprof/")
	}

	fmt.Printf("listening on %s (POST /chat, POST /feedback, POST /admin/reload, GET /context, GET /trace, GET /trace/slow, GET /metrics, GET /healthz, GET /readyz)\n", *addr)
	server := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(server.ListenAndServe())
}
