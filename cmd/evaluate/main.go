// Command evaluate regenerates every table and figure of the paper's
// evaluation section (§7) plus the ablations indexed in DESIGN.md.
//
//	evaluate                  # run everything
//	evaluate -exp table5      # one experiment: e1 table5 fig11 fig12
//	                          # a1 a2 a3 a4 a5
//	evaluate -n 50000         # usage-study size (default 20000)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ontoconv/internal/eval"
)

func main() {
	var (
		exp = flag.String("exp", "all", "experiment id: all, e1, table5, fig11, fig12, a1, a2, a3, a4, a5, a6")
		n   = flag.Int("n", 20000, "simulated interactions for the usage study")
	)
	flag.Parse()

	env, err := eval.NewEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	env.SimConfig.Interactions = *n
	w := os.Stdout

	want := func(id string) bool { return *exp == "all" || strings.EqualFold(*exp, id) }

	if want("e1") {
		eval.WriteE1(w, eval.E1(env))
		fmt.Fprintln(w)
	}
	if want("table5") {
		eval.WriteTable5(w, eval.Table5(env))
		fmt.Fprintln(w)
	}
	if want("fig11") || want("e3") {
		eval.WriteFig11(w, eval.Fig11(env))
		fmt.Fprintln(w)
	}
	if want("fig12") {
		eval.WriteFig12(w, eval.Fig12(env))
		fmt.Fprintln(w)
	}
	if want("a1") {
		eval.WriteAblationClassifier(w, eval.AblationClassifier(env))
		fmt.Fprintln(w)
	}
	if want("a2") {
		rows, err := eval.AblationTrainingSize(env, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "a2:", err)
			os.Exit(1)
		}
		eval.WriteAblationTrainingSize(w, rows)
		fmt.Fprintln(w)
	}
	if want("a3") {
		rows, err := eval.AblationSynonyms(env, 4000)
		if err != nil {
			fmt.Fprintln(os.Stderr, "a3:", err)
			os.Exit(1)
		}
		eval.WriteAblationSynonyms(w, rows)
		fmt.Fprintln(w)
	}
	if want("a4") {
		eval.WriteBaselineComparison(w, eval.CompareBaseline(env, 6000))
		fmt.Fprintln(w)
	}
	if want("a5") {
		eval.WriteAblationCentrality(w, eval.AblationCentrality(env))
		fmt.Fprintln(w)
	}
	if want("a6") {
		r, err := eval.AblationLogLearning(env, 4000)
		if err != nil {
			fmt.Fprintln(os.Stderr, "a6:", err)
			os.Exit(1)
		}
		eval.WriteLogLearning(w, r)
		fmt.Fprintln(w)
	}
}
