// Command mdxchat is an interactive REPL for Conversational MDX: it
// generates the synthetic medical knowledge base, bootstraps the
// conversation space from its ontology, trains the agent, and chats on
// stdin/stdout (paper §6.3).
//
// Special inputs: ":up" / ":down" press the feedback buttons on the last
// answer, ":context" dumps the conversation context, ":quit" exits.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"ontoconv"
)

func main() {
	fmt.Fprintln(os.Stderr, "bootstrapping conversation space from the MDX ontology …")
	base, _, space, err := ontoconv.MedicalBootstrap()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bootstrap:", err)
		os.Exit(1)
	}
	ag, err := ontoconv.NewAgent(space, base, ontoconv.AgentOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "agent:", err)
		os.Exit(1)
	}
	session := ontoconv.NewSession()
	fmt.Println("A:", ag.Greeting())
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("U: ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "":
			continue
		case ":quit", ":q":
			return
		case ":up":
			session.Feedback(true)
			fmt.Println("(thumbs up recorded)")
			continue
		case ":down":
			session.Feedback(false)
			fmt.Println("(thumbs down recorded)")
			continue
		case ":context":
			for e, v := range session.Ctx.Bindings() {
				fmt.Printf("  %s = %s\n", e, v)
			}
			fmt.Printf("  intent = %s\n", session.Ctx.Intent)
			continue
		}
		fmt.Println("A:", ag.Respond(session, line))
		if session.Closed() {
			return
		}
	}
}
