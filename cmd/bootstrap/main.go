// Command bootstrap runs the offline pipeline (paper §4, Figure 1a) over
// the MDX knowledge base and dumps the resulting artifacts: the ontology,
// the conversation space (intents, training examples, entities,
// templates), and the Dialogue Logic Table.
//
// Flags select the domain and the artifact:
//
//	-domain       which deployment to bootstrap: medkb (default) or retail
//	-scale N      multiply the generated medkb's size by N (deterministic;
//	              scale 100 reaches hundreds of thousands of rows)
//	-ontology     ontology JSON
//	-owl          ontology in OWL-functional-like text
//	-space        conversation space JSON (default)
//	-logictable   Dialogue Logic Table as text
//	-stats        summary counts
//	-out FILE     compile the workspace into a versioned bundle at FILE
//	              (trains the classifier offline; mdxserver -bundle FILE
//	              then cold-starts without retraining)
//	-phases-json  per-phase timing as JSON instead of the text summary
//	-no-timings   suppress the per-phase timing summary on stderr
//
// Every run times the offline pipeline phase by phase (KB generation,
// ontology curation, concept analysis, pattern extraction, example
// generation, template generation, entity extraction) and prints a
// structured summary to stderr; artifact output stays on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/dialogue"
	"ontoconv/internal/kb"
	"ontoconv/internal/medkb"
	"ontoconv/internal/obs"
	"ontoconv/internal/ontology"
	"ontoconv/internal/retailkb"
)

func main() {
	var (
		domain     = flag.String("domain", "medkb", "deployment to bootstrap: medkb or retail")
		scale      = flag.Int("scale", 1, "multiply the generated medkb's size (medkb domain only)")
		ontoJSON   = flag.Bool("ontology", false, "print the domain ontology as JSON")
		owl        = flag.Bool("owl", false, "print the ontology in OWL-functional-like text")
		spaceJSON  = flag.Bool("space", false, "print the conversation space as JSON")
		logicTable = flag.Bool("logictable", false, "print the Dialogue Logic Table")
		stats      = flag.Bool("stats", false, "print summary counts")
		out        = flag.String("out", "", "compile the workspace into a versioned bundle file")
		phasesJSON = flag.Bool("phases-json", false, "print per-phase bootstrap timing as JSON on stderr")
		noTimings  = flag.Bool("no-timings", false, "suppress the per-phase timing summary")
	)
	flag.Parse()
	if !*ontoJSON && !*owl && !*spaceJSON && !*logicTable && !*stats && *out == "" {
		*spaceJSON = true
	}

	phases := obs.NewPhaseLog()
	bootstrap := func(pl *obs.PhaseLog) (*kb.KB, *ontology.Ontology, *core.Space, error) {
		return medkb.BootstrapAt(pl, *scale)
	}
	switch *domain {
	case "medkb":
	case "retail":
		if *scale > 1 {
			fmt.Fprintln(os.Stderr, "bootstrap: -scale only applies to the medkb domain")
			os.Exit(2)
		}
		bootstrap = retailkb.BootstrapWithPhases
	default:
		fmt.Fprintf(os.Stderr, "bootstrap: unknown -domain %q (medkb or retail)\n", *domain)
		os.Exit(2)
	}
	_, onto, space, err := bootstrap(phases)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bootstrap:", err)
		os.Exit(1)
	}
	if *out != "" {
		done := phases.Phase("bundle compilation")
		b, err := bundle.Compile(space, bundle.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bootstrap:", err)
			os.Exit(1)
		}
		done(obs.C("artifacts", len(b.Manifest.Artifacts)))
		if err := b.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "bootstrap:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote bundle %s (version %s, %d intents, %d entities, %d examples)\n",
			*out, b.Version(), b.Manifest.Intents, b.Manifest.Entities, b.Manifest.Examples)
	}

	if !*noTimings {
		if *phasesJSON {
			enc := json.NewEncoder(os.Stderr)
			enc.SetIndent("", "  ")
			_ = enc.Encode(phases.Phases())
		} else {
			fmt.Fprint(os.Stderr, phases.Summary())
		}
	}

	if *out != "" && !*ontoJSON && !*owl && !*spaceJSON && !*logicTable && !*stats {
		return
	}

	switch {
	case *ontoJSON:
		if err := onto.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *owl:
		fmt.Print(onto.Functional())
	case *logicTable:
		fmt.Print(dialogue.BuildLogicTable(space).String())
	case *stats:
		s := onto.Stats()
		fmt.Printf("ontology: %d concepts, %d data properties, %d object properties, %d isA, %d unions\n",
			s.Concepts, s.DataProperties, s.ObjectProperties, s.IsA, s.Unions)
		counts := space.CountByKind()
		fmt.Printf("intents: %d total (%d lookup, %d direct-rel, %d indirect-rel, %d general, %d conversation-mgmt)\n",
			len(space.Intents),
			counts[core.LookupPattern], counts[core.DirectRelationPattern],
			counts[core.IndirectRelationPattern], counts[core.GeneralEntityPattern],
			counts[core.ConversationPattern])
		fmt.Printf("entities: %d; training examples: %d\n", len(space.Entities), len(space.AllExamples()))
		fmt.Printf("key concepts: %v\n", space.KeyConcepts)
	default:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(space); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
