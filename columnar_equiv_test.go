package ontoconv_test

import (
	"fmt"
	"testing"

	"ontoconv/internal/kb"
	"ontoconv/internal/medkb"
	"ontoconv/internal/sqlx"
)

// TestColumnarEquivalenceOnScaledMedKB is the end-to-end leg of the
// columnar differential oracle: on a 10x medkb (tens of thousands of
// rows, well past the partition threshold) every query in the battery
// must produce byte-identical results from the row interpreter, the
// default (vectorized, parallel) plan and the forced row-path plan.
// Run under -race in CI, this also exercises the partition-parallel
// scan and hash-build merges for data races.
func TestColumnarEquivalenceOnScaledMedKB(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled KB generation")
	}
	base, err := medkb.Generate(medkb.ScaledConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]string{
		{"adverse_effect", "drug_id"}, {"treats", "drug_id"},
		{"treats", "indication_id"}, {"drug", "name"}, {"indication", "name"},
	} {
		if err := base.Table(tc[0]).BuildIndex(tc[1]); err != nil {
			t.Fatal(err)
		}
	}
	base.FreezeColumns()

	queries := []string{
		// Cold vectorized scans over unindexed columns.
		"SELECT a.name FROM adverse_effect a WHERE a.severity = 'Severe' AND a.frequency = 'Common'",
		"SELECT d.name FROM drug d WHERE d.route = 'ORAL' AND d.name LIKE 'a%'",
		"SELECT COUNT(*) FROM dosage do WHERE do.age_group = 'pediatric' OR do.age_group IS NULL",
		// Joins crossing the hash-build parallel/serial boundary, with
		// build-side selection in play.
		"SELECT DISTINCT d.name FROM drug d INNER JOIN treats t ON t.drug_id = d.drug_id INNER JOIN indication i ON i.indication_id = t.indication_id WHERE i.name = 'psoriasis'",
		"SELECT d.name, a.name FROM drug d INNER JOIN adverse_effect a ON a.drug_id = d.drug_id WHERE a.severity = 'Severe' ORDER BY d.name LIMIT 25",
	}
	for _, sql := range queries {
		want, err := sqlx.Execute(base, sqlx.MustParse(sql))
		if err != nil {
			t.Fatalf("%q: interpreter: %v", sql, err)
		}
		for _, cfg := range []sqlx.PlanConfig{
			{},
			{NoColumnar: true},
			{NoParallel: true},
			{BuildSide: sqlx.BuildProbeKeys},
		} {
			plan, err := sqlx.PrepareConfig(base, sqlx.MustParse(sql), cfg)
			if err != nil {
				t.Fatalf("%q (%+v): Prepare: %v", sql, cfg, err)
			}
			got, err := plan.Exec(nil)
			if err != nil {
				t.Fatalf("%q (%+v): Exec: %v", sql, cfg, err)
			}
			if err := sameResult(want, got); err != nil {
				t.Fatalf("%q (%+v): %v", sql, cfg, err)
			}
		}
	}
}

func sameResult(a, b *sqlx.Result) error {
	if len(a.Columns) != len(b.Columns) || len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("shape differs: %dx%d vs %dx%d",
			len(a.Rows), len(a.Columns), len(b.Rows), len(b.Columns))
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return fmt.Errorf("column %d: %q vs %q", i, a.Columns[i], b.Columns[i])
		}
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !valueEqual(a.Rows[i][j], b.Rows[i][j]) {
				return fmt.Errorf("row %d col %d: %#v vs %#v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	return nil
}

func valueEqual(a, b kb.Value) bool { return a == b }
