// Benchmarks regenerating every table and figure of the paper's evaluation
// (§7) plus the DESIGN.md ablations. Each benchmark builds (or reuses) the
// full MDX environment and reports the paper-relevant quality numbers as
// custom metrics, so `go test -bench=. -benchmem` doubles as the
// experiment harness:
//
//	BenchmarkTable5IntentF1          — Table 5 (avg F1, per-intent F1)
//	BenchmarkFigure11SuccessRates    — E3 + Figure 11 (Eq. 1 success rates)
//	BenchmarkFigure12SMEJudged       — Figure 12 (user vs SME on 10% sample)
//	BenchmarkBootstrapMDX            — E1 (offline pipeline cost + counts)
//	BenchmarkAblation*               — A1, A2, A3, A5
//	BenchmarkBaselineKeywordSearch   — A4
//	Benchmark<component>             — micro-benchmarks of the substrates
package ontoconv_test

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"ontoconv"
	"ontoconv/internal/agent"
	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/eval"
	"ontoconv/internal/graph"
	"ontoconv/internal/kb"
	"ontoconv/internal/medkb"
	"ontoconv/internal/nlu"
	"ontoconv/internal/sim"
	"ontoconv/internal/sqlx"
)

var (
	benchOnce sync.Once
	benchEnv  *eval.Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *eval.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = eval.NewEnv()
		if benchErr == nil {
			benchEnv.SimConfig.Interactions = 4000
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// ---------------------------------------------------------------------------
// Tables and figures
// ---------------------------------------------------------------------------

// BenchmarkBootstrapMDX measures the complete offline process (E1): KB
// generation, ontology discovery + SME refinement, and conversation-space
// bootstrap.
func BenchmarkBootstrapMDX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, onto, space, err := medkb.Bootstrap()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			s := onto.Stats()
			b.ReportMetric(float64(s.Concepts), "concepts")
			b.ReportMetric(float64(s.DataProperties), "data-props")
			b.ReportMetric(float64(len(space.Intents)), "intents")
			b.ReportMetric(float64(len(space.AllExamples())), "examples")
		}
	}
}

// BenchmarkTable5IntentF1 reproduces Table 5: train on the stratified 80%
// split, score on the held-out 20%.
func BenchmarkTable5IntentF1(b *testing.B) {
	env := benchEnvironment(b)
	var r eval.Table5Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = eval.Table5(env)
	}
	b.ReportMetric(r.AvgF1, "avgF1(paper=0.85)")
	for _, row := range r.Rows[:3] {
		_ = row
	}
	b.ReportMetric(r.Eval.Accuracy, "accuracy")
}

// BenchmarkFigure11SuccessRates reproduces E3 + Figure 11: the simulated
// 7-month usage study scored with Eq. 1.
func BenchmarkFigure11SuccessRates(b *testing.B) {
	env := benchEnvironment(b)
	var overall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log := sim.Run(env.Agent, env.SimConfig)
		overall = log.OverallSuccessRate()
	}
	b.ReportMetric(overall*100, "success%(paper=96.3)")
}

// BenchmarkFigure12SMEJudged reproduces Figure 12: the 10% sample
// re-judged by SMEs vs user thumbs.
func BenchmarkFigure12SMEJudged(b *testing.B) {
	env := benchEnvironment(b)
	var s sim.SMESample
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log := sim.Run(env.Agent, env.SimConfig)
		s = log.SMEStats()
	}
	b.ReportMetric(s.UserSuccessRate*100, "user%(paper=97.9)")
	b.ReportMetric(s.SMESuccessRate*100, "sme%(paper=90.8)")
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

// BenchmarkAblationClassifierNB / LR: A1.
func BenchmarkAblationClassifierNB(b *testing.B) {
	benchClassifier(b, func() nlu.Classifier { return nlu.NewNaiveBayes(1.0) })
}

func BenchmarkAblationClassifierLR(b *testing.B) {
	benchClassifier(b, func() nlu.Classifier { return nlu.NewLogisticRegression() })
}

func benchClassifier(b *testing.B, mk func() nlu.Classifier) {
	env := benchEnvironment(b)
	var examples []nlu.Example
	for _, te := range env.Space.AllExamples() {
		examples = append(examples, nlu.Example{Text: te.Text, Intent: te.Intent})
	}
	train, test := nlu.TrainTestSplit(examples, 5)
	var f1 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := mk()
		if err := clf.Train(train); err != nil {
			b.Fatal(err)
		}
		f1 = nlu.Evaluate(clf, test).MacroF1
	}
	b.ReportMetric(f1, "macroF1")
}

// BenchmarkAblationTrainingSize sweeps the example budget (A2).
func BenchmarkAblationTrainingSize(b *testing.B) {
	env := benchEnvironment(b)
	var rows []eval.SizeAblation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.AblationTrainingSize(env, []int{5, 25, 50})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MacroF1, "F1@"+itoa(r.ExamplesPerIntent))
	}
}

// BenchmarkAblationSynonyms compares end-to-end success with and without
// the SME dictionaries (A3).
func BenchmarkAblationSynonyms(b *testing.B) {
	env := benchEnvironment(b)
	var rows []eval.SynonymAblation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.AblationSynonyms(env, 2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := "success%-with"
		if r.Variant == "without synonyms" {
			name = "success%-without"
		}
		b.ReportMetric(r.OverallSuccess*100, name)
	}
}

// BenchmarkBaselineKeywordSearch compares the conversation agent with the
// keyword baseline on the same workload (A4).
func BenchmarkBaselineKeywordSearch(b *testing.B) {
	env := benchEnvironment(b)
	var r eval.BaselineComparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = eval.CompareBaseline(env, 2000)
	}
	b.ReportMetric(r.AgentAccuracy*100, "agent-acc%")
	b.ReportMetric(r.BaselineAccuracy*100, "baseline-acc%")
}

// BenchmarkAblationLogLearning closes the usage-log feedback loop (A6):
// mine period-one failures, retrain, measure period two.
func BenchmarkAblationLogLearning(b *testing.B) {
	env := benchEnvironment(b)
	var r eval.LogLearningResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		r, err = eval.AblationLogLearning(env, 2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.BeforeAccuracy*100, "acc%-before")
	b.ReportMetric(r.AfterAccuracy*100, "acc%-after")
}

// BenchmarkAblationCentrality runs key-concept discovery under each
// centrality metric (A5).
func BenchmarkAblationCentrality(b *testing.B) {
	env := benchEnvironment(b)
	metrics := []graph.Metric{
		graph.MetricDegree, graph.MetricPageRank,
		graph.MetricBetweenness, graph.MetricCloseness,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range metrics {
			cfg := core.DefaultKeyConceptConfig()
			cfg.Metric = m
			core.AnalyzeConcepts(env.Onto, env.Base, cfg)
		}
	}
}

// ---------------------------------------------------------------------------
// Cold start: bundle load vs in-process retraining
// ---------------------------------------------------------------------------

// BenchmarkColdStartRetrainFromSpace measures the classic serving cold
// start: train the classifier, build the recognizer and dialogue tree
// from an already bootstrapped space (the KB and space are prebuilt and
// shared — only the agent construction is timed).
func BenchmarkColdStartRetrainFromSpace(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.New(env.Space, env.Base, agent.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartFromBundle measures the bundle serving cold start:
// read, verify, and decode a compiled bundle from memory and construct
// the agent from it — no retraining. The ratio to
// BenchmarkColdStartRetrainFromSpace is the offline/online split's
// payoff (tracked in BENCH_cold_start.json).
func BenchmarkColdStartFromBundle(b *testing.B) {
	env := benchEnvironment(b)
	compiled, err := bundle.Compile(env.Space, bundle.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compiled.Write(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := bundle.Open(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := agent.NewFromBundle(loaded, env.Base, agent.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Fused NLU inference + parallel offline pipeline (BENCH_nlu.json)
// ---------------------------------------------------------------------------

var (
	nluModelsOnce sync.Once
	nluBenchNB    *nlu.NaiveBayes
	nluBenchLR    *nlu.LogisticRegression
	nluModelsErr  error
)

// nluBenchModels trains both classifier families on the full MDX
// conversation space, once, so the predict benchmarks score against
// production-sized models rather than toy fixtures.
func nluBenchModels(b *testing.B) (*nlu.NaiveBayes, *nlu.LogisticRegression) {
	env := benchEnvironment(b)
	nluModelsOnce.Do(func() {
		var examples []nlu.Example
		for _, te := range env.Space.AllExamples() {
			examples = append(examples, nlu.Example{Text: te.Text, Intent: te.Intent})
		}
		nluBenchNB = nlu.NewNaiveBayes(1.0)
		if nluModelsErr = nluBenchNB.Train(examples); nluModelsErr != nil {
			return
		}
		nluBenchLR = nlu.NewLogisticRegression()
		nluModelsErr = nluBenchLR.Train(examples)
	})
	if nluModelsErr != nil {
		b.Fatal(nluModelsErr)
	}
	return nluBenchNB, nluBenchLR
}

const predictUtterance = "show me the dose adjustments for aspirin in children"

// BenchmarkPredictTopNB / LR measure the turn loop's NLU stage as
// agent.Respond now runs it: the fused tokenize/stem/lookup pass over
// pooled scratch, scored against the compiled weight matrix. The
// BENCH_nlu.json floor holds this at ≥3× the reference path with ~0
// allocs/op.
func BenchmarkPredictTopNB(b *testing.B) {
	nb, _ := nluBenchModels(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nlu.PredictTop(nb, predictUtterance)
	}
}

func BenchmarkPredictTopLR(b *testing.B) {
	_, lr := nluBenchModels(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nlu.PredictTop(lr, predictUtterance)
	}
}

// BenchmarkPredictReferenceNB / LR are the retained pre-optimization
// implementation (per-utterance token and feature slices, map-backed
// sparse vectors, per-label Dot) — the denominator of the speedup floor
// and the oracle of TestFusedPredictMatchesReference.
func BenchmarkPredictReferenceNB(b *testing.B) {
	nb, _ := nluBenchModels(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.PredictReference(predictUtterance)
	}
}

func BenchmarkPredictReferenceLR(b *testing.B) {
	_, lr := nluBenchModels(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr.PredictReference(predictUtterance)
	}
}

// benchBootstrapAt runs the complete offline bootstrap (KB generation,
// ontology discovery, conversation-space bootstrap) pinned to a worker
// width.
func benchBootstrapAt(b *testing.B, procs int) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := medkb.Bootstrap(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBootstrapParallel vs BenchmarkBootstrapSerial is the offline
// half of BENCH_nlu.json: identical artifacts (pinned by the
// determinism tests), wall-clock scaled by the worker pool. The ≥2×
// floor applies on 4 cores; on a single-core host the two are expected
// to coincide.
func BenchmarkBootstrapParallel(b *testing.B) { benchBootstrapAt(b, runtime.NumCPU()) }
func BenchmarkBootstrapSerial(b *testing.B)   { benchBootstrapAt(b, 1) }

// benchCompileAt compiles the workspace bundle (classifier training ∥
// recognizer ∥ logic table + tree, then parallel artifact sealing)
// pinned to a worker width.
func benchCompileAt(b *testing.B, procs int) {
	env := benchEnvironment(b)
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bundle.Compile(env.Space, bundle.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileParallel vs BenchmarkCompileSerial: bundle compilation
// wall-clock at full width vs one worker, same byte-identical output.
func BenchmarkCompileParallel(b *testing.B) { benchCompileAt(b, runtime.NumCPU()) }
func BenchmarkCompileSerial(b *testing.B)   { benchCompileAt(b, 1) }

// ---------------------------------------------------------------------------
// Component micro-benchmarks
// ---------------------------------------------------------------------------

// BenchmarkAgentRespond measures the online path: NLU + dialogue +
// template instantiation + SQL execution + NLG.
func BenchmarkAgentRespond(b *testing.B) {
	env := benchEnvironment(b)
	utterances := []string{
		"precautions for Aspirin",
		"show me drugs that treat psoriasis in children",
		"adverse effects of Ibuprofen",
		"dosage for Tazarotene for acne",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := agent.NewSession()
		env.Agent.Respond(s, utterances[i%len(utterances)])
	}
}

// BenchmarkIntentClassification measures one classifier prediction.
func BenchmarkIntentClassification(b *testing.B) {
	env := benchEnvironment(b)
	clf := env.Agent.Classifier()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.Predict("show me the dose adjustments for aspirin")
	}
}

// BenchmarkEntityRecognition measures the dictionary recognizer.
func BenchmarkEntityRecognition(b *testing.B) {
	env := benchEnvironment(b)
	rec := env.Agent.Recognizer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Recognize("what are the side effects of cogentin for psoriasis in children")
	}
}

// BenchmarkSQLThreeWayJoin measures the SQL engine on the treatment query.
func BenchmarkSQLThreeWayJoin(b *testing.B) {
	env := benchEnvironment(b)
	sql := `SELECT DISTINCT oDrug.name FROM drug oDrug
		INNER JOIN treats t ON t.drug_id = oDrug.drug_id
		INNER JOIN indication i ON i.indication_id = t.indication_id
		WHERE i.name = 'Psoriasis'`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlx.Exec(env.Base, sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOntologyGeneration measures data-driven ontology discovery.
func BenchmarkOntologyGeneration(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := medkb.Ontology(env.Base); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTemplateInstantiation measures template parameter binding.
func BenchmarkTemplateInstantiation(b *testing.B) {
	env := benchEnvironment(b)
	in := env.Space.Intent("Drugs That Treat Condition")
	if in == nil || in.Template == nil {
		b.Fatal("intent missing")
	}
	args := map[string]string{"Indication": "Psoriasis", "AgeGroup": "pediatric"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Template.Instantiate(args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMedicalKBGeneration measures synthetic KB generation.
func BenchmarkMedicalKBGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ontoconv.MedicalKB(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Per-turn fast path: compiled plans + answer cache (BENCH_turn.json)
// ---------------------------------------------------------------------------

var (
	turnOnce sync.Once
	turnUtts []string
	turnErr  error
)

// turnUtterances replays the E3 workload generator against a throwaway
// agent and keeps the opening utterances: a realistic mix of task
// requests, misspellings, keyword-style inputs, and gibberish.
func turnUtterances(b *testing.B) []string {
	env := benchEnvironment(b)
	turnOnce.Do(func() {
		probe, err := agent.New(env.Space, env.Base, agent.Options{})
		if err != nil {
			turnErr = err
			return
		}
		cfg := sim.DefaultConfig()
		cfg.Interactions = 512
		for _, in := range sim.Run(probe, cfg).Interactions {
			turnUtts = append(turnUtts, in.Utterance)
		}
	})
	if turnErr != nil {
		b.Fatal(turnErr)
	}
	return turnUtts
}

func benchTurn(b *testing.B, opts agent.Options) {
	env := benchEnvironment(b)
	utts := turnUtterances(b)
	a, err := agent.New(env.Space, env.Base, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := agent.NewSession()
		a.Respond(s, utts[i%len(utts)])
	}
}

// BenchmarkTurnE3 measures the steady-state turn loop on the E3 workload
// with the full fast path: precompiled plans plus a warm answer cache.
func BenchmarkTurnE3(b *testing.B) { benchTurn(b, agent.Options{}) }

// BenchmarkTurnE3NoCache isolates the planner's contribution: compiled
// plans, caching disabled.
func BenchmarkTurnE3NoCache(b *testing.B) { benchTurn(b, agent.Options{AnswerCache: -1}) }

// BenchmarkTurnE3Interpreted is the pre-optimization baseline: template
// re-instantiation plus the tree-walking interpreter every turn.
func BenchmarkTurnE3Interpreted(b *testing.B) {
	benchTurn(b, agent.Options{AnswerCache: -1, DisablePlans: true})
}

// benchExecuteSQL is the three-way treatment join whose pushed-down
// equality (indication.name) has a bootstrap-built secondary index.
const benchExecuteSQL = `SELECT DISTINCT oDrug.name FROM drug oDrug
	INNER JOIN treats t ON t.drug_id = oDrug.drug_id
	INNER JOIN indication i ON i.indication_id = t.indication_id
	WHERE i.name = 'Psoriasis'`

// benchExecuteScanSQL filters on drug.route, deliberately outside the
// derived index set, so the planner falls back to a filtered seq scan.
const benchExecuteScanSQL = `SELECT d.name FROM drug d WHERE d.route = 'ORAL'`

// BenchmarkExecutePlannedIndexed measures planned execution with the
// equality predicate answered by an index probe.
func BenchmarkExecutePlannedIndexed(b *testing.B) {
	env := benchEnvironment(b)
	if !env.Base.Table("indication").HasIndex("name") {
		b.Fatal("indication.name not indexed: bootstrap index derivation regressed")
	}
	plan, err := sqlx.PrepareSQL(env.Base, benchExecuteSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Exec(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteInterpretedIndexed runs the same statement through the
// tree-walking interpreter, which never consults indexes.
func BenchmarkExecuteInterpretedIndexed(b *testing.B) {
	env := benchEnvironment(b)
	stmt, err := sqlx.Parse(benchExecuteSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlx.Execute(env.Base, stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutePlannedScan measures the planner's no-index fallback:
// compiled predicate over a sequential scan.
func BenchmarkExecutePlannedScan(b *testing.B) {
	env := benchEnvironment(b)
	if env.Base.Table("drug").HasIndex("route") {
		b.Fatal("drug.route unexpectedly indexed: scan benchmark would probe instead")
	}
	plan, err := sqlx.PrepareSQL(env.Base, benchExecuteScanSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Exec(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteInterpretedScan is the interpreter on the same
// sequential-scan statement.
func BenchmarkExecuteInterpretedScan(b *testing.B) {
	env := benchEnvironment(b)
	stmt, err := sqlx.Parse(benchExecuteScanSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlx.Execute(env.Base, stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// The large-KB fixture for the columnar benchmarks: medkb at 100x scale
// (hundreds of thousands of rows), hot columns indexed, every table
// frozen. Built once per process.
var (
	largeKBOnce sync.Once
	largeKB     *kb.KB
	largeKBErr  error
)

// benchLargeKBSQL scans adverse_effect on two unindexed text columns —
// exactly the cold-scan shape the vectorized path targets.
const benchLargeKBSQL = `SELECT a.name FROM adverse_effect a WHERE a.severity = 'Severe' AND a.frequency = 'Common'`

func largeKBEnvironment(b *testing.B) *kb.KB {
	largeKBOnce.Do(func() {
		largeKB, largeKBErr = medkb.Generate(medkb.ScaledConfig(100))
		if largeKBErr != nil {
			return
		}
		largeKB.FreezeColumns()
	})
	if largeKBErr != nil {
		b.Fatal(largeKBErr)
	}
	return largeKB
}

// BenchmarkExecuteColumnarLargeKB measures the default plan on the 100x
// KB: vectorized predicate kernels over partition-parallel scans.
func BenchmarkExecuteColumnarLargeKB(b *testing.B) {
	base := largeKBEnvironment(b)
	plan, err := sqlx.PrepareSQL(base, benchLargeKBSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Exec(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutePlannedLargeKB is the same statement with columnar
// execution disabled: compiled row predicates over a sequential scan —
// the pre-columnar planner baseline.
func BenchmarkExecutePlannedLargeKB(b *testing.B) {
	base := largeKBEnvironment(b)
	plan, err := sqlx.PrepareConfig(base, sqlx.MustParse(benchLargeKBSQL), sqlx.PlanConfig{NoColumnar: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Exec(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteInterpretedLargeKB is the tree-walking interpreter on
// the same statement — the differential oracle's cost, for scale.
func BenchmarkExecuteInterpretedLargeKB(b *testing.B) {
	base := largeKBEnvironment(b)
	stmt := sqlx.MustParse(benchLargeKBSQL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlx.Execute(base, stmt); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
