package retailkb_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"ontoconv/internal/agent"
	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/retailkb"
)

var (
	once   sync.Once
	base   *kb.KB
	space  *core.Space
	ag     *agent.Agent
	setupE error
)

func fixture(t *testing.T) *agent.Agent {
	t.Helper()
	once.Do(func() {
		var err error
		base, _, space, err = retailkb.Bootstrap()
		if err != nil {
			setupE = err
			return
		}
		ag, setupE = agent.New(space, base, agent.Options{})
	})
	if setupE != nil {
		t.Fatal(setupE)
	}
	return ag
}

func TestBootstrapShape(t *testing.T) {
	fixture(t)
	keys := map[string]bool{}
	for _, k := range space.KeyConcepts {
		keys[k] = true
	}
	if !keys["Product"] {
		t.Fatalf("Product must be a key concept, got %v", space.KeyConcepts)
	}
	for _, want := range []string{
		"Reviews of Product",
		"Stores That Stock Product",
		"Shipping Options for Product",
		"Warranty of Product",
		"Promotions for Product",
		"Products by Brand",
		"PRODUCT_GENERAL",
	} {
		if space.Intent(want) == nil {
			t.Errorf("missing intent %q", want)
		}
	}
}

// TestRetailConversation drives the same agent runtime over the retail
// space: reviews, store availability, and a contextual follow-up.
func TestRetailConversation(t *testing.T) {
	a := fixture(t)
	s := agent.NewSession()

	r := a.Respond(s, "show me the reviews for Aurora Headphones")
	if last := s.LastTurn(); last == nil || !last.Answered {
		t.Fatalf("review request not answered; reply = %q", r)
	}
	if !strings.Contains(r, "stars") {
		t.Fatalf("review answer should list ratings, got %q", r)
	}

	r = a.Respond(s, "where can I buy the Solstice Speaker")
	if last := s.LastTurn(); last == nil || !last.Answered {
		t.Fatalf("store request not answered; reply = %q", r)
	}
	if last := s.LastTurn(); last.Intent != "Stores That Stock Product" {
		t.Fatalf("store request routed to %q; reply = %q", last.Intent, r)
	}

	// Context carry-over: same intent, new product.
	r = a.Respond(s, "what about the Pulse Fitness Watch?")
	if last := s.LastTurn(); last == nil || !last.Answered {
		t.Fatalf("follow-up not answered; reply = %q", r)
	}
}

// TestRetailBundleDeterminism pins the second tenant to the same
// content-addressing invariant as medkb: two independent
// bootstrap-and-compile runs produce byte-identical bundles.
func TestRetailBundleDeterminism(t *testing.T) {
	var runs [2]*bytes.Buffer
	var versions [2]string
	for i := range runs {
		_, _, sp, err := retailkb.Bootstrap()
		if err != nil {
			t.Fatalf("bootstrap run %d: %v", i+1, err)
		}
		b, err := bundle.Compile(sp, bundle.Options{})
		if err != nil {
			t.Fatalf("compile run %d: %v", i+1, err)
		}
		buf := &bytes.Buffer{}
		if err := b.Write(buf); err != nil {
			t.Fatal(err)
		}
		runs[i] = buf
		versions[i] = b.Version()
	}
	if versions[0] != versions[1] {
		t.Fatalf("bundle versions differ: %q vs %q", versions[0], versions[1])
	}
	if !bytes.Equal(runs[0].Bytes(), runs[1].Bytes()) {
		t.Fatal("retail bundle bytes differ across runs")
	}
}
