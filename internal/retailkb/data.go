// Package retailkb is a second synthetic conversation domain — products,
// brands, stores, inventory — built through the same domain-agnostic
// pipeline as the medical KB (paper §9: "Our techniques are domain
// agnostic, and can be applied to any KB"). It exists so multi-tenant
// serving always has a standing second tenant whose vocabulary, intents,
// and answers share nothing with medkb: cross-tenant leakage of sessions,
// caches, or classifier state shows up as wrong-domain answers in tests.
package retailkb

import (
	"fmt"
	"math/rand"

	"ontoconv/internal/kb"
)

// Config controls the size of the generated knowledge base. All generation
// is deterministic given Seed.
type Config struct {
	Products int
	Brands   int
	Stores   int
	Seed     int64
}

// DefaultConfig sizes the domain for CI: big enough that key-concept
// statistics and classifier training are meaningful, small enough that a
// tenant cold-start stays cheap next to medkb.
func DefaultConfig() Config {
	return Config{Products: 60, Brands: 12, Stores: 8, Seed: 7}
}

// seedProducts always exist so tests can script conversations against
// stable names.
var seedProducts = []struct{ name, brand, category string }{
	{"Aurora Headphones", "Northwind", "Audio"},
	{"Solstice Speaker", "Northwind", "Audio"},
	{"Peak Trail Backpack", "Summitline", "Outdoor"},
	{"Glacier Water Bottle", "Summitline", "Outdoor"},
	{"Ember Espresso Maker", "Casaluce", "Kitchen"},
	{"Drift Stand Mixer", "Casaluce", "Kitchen"},
	{"Pulse Fitness Watch", "Veloz", "Wearables"},
	{"Stride Running Shoes", "Veloz", "Footwear"},
	{"Quill Mechanical Keyboard", "Keystone Labs", "Computing"},
	{"Prism 4K Monitor", "Keystone Labs", "Computing"},
	{"Nimbus Desk Lamp", "Lumenara", "Home"},
	{"Halo Air Purifier", "Lumenara", "Home"},
}

var seedBrands = []struct{ name, country string }{
	{"Northwind", "SE"},
	{"Summitline", "CH"},
	{"Casaluce", "IT"},
	{"Veloz", "US"},
	{"Keystone Labs", "US"},
	{"Lumenara", "JP"},
}

var seedStores = []struct{ name, city, region string }{
	{"Harbor Square", "Seattle", "US-West"},
	{"Canal Street", "Amsterdam", "EU-North"},
	{"Midtown Arcade", "New York", "US-East"},
	{"Riverside Mall", "Lyon", "EU-South"},
}

var (
	productAdjs  = []string{"Atlas", "Breeze", "Cinder", "Dawn", "Echo", "Flint", "Grove", "Haven", "Ion", "Juniper", "Kite", "Lunar", "Meridian", "Nova", "Onyx", "Pioneer", "Quartz", "Ridge", "Sable", "Terra", "Umbra", "Vista", "Willow", "Zephyr"}
	productNouns = []string{"Blender", "Camera", "Charger", "Drone", "Grill", "Jacket", "Kettle", "Lantern", "Mouse", "Projector", "Router", "Scooter", "Tablet", "Telescope", "Tent", "Toaster", "Tripod", "Turntable", "Vacuum"}
	categories   = []string{"Audio", "Outdoor", "Kitchen", "Wearables", "Footwear", "Computing", "Home", "Photography", "Mobility"}
	cityNames    = []string{"Austin", "Berlin", "Chicago", "Dublin", "Geneva", "Kyoto", "Lisbon", "Madrid", "Oslo", "Porto", "Toronto", "Vienna"}
	regionNames  = []string{"US-West", "US-East", "EU-North", "EU-South", "APAC"}
	countryCodes = []string{"US", "DE", "FR", "JP", "KR", "SE", "IT", "CA"}

	stockStatuses  = []string{"In stock", "In stock", "Low stock", "Out of stock"}
	productStates  = []string{"Active", "Active", "Active", "Clearance", "Discontinued"}
	ratings        = []string{"5 stars", "4 stars", "4 stars", "3 stars", "2 stars"}
	reviewNotes    = []string{"Exceeded expectations.", "Solid build quality.", "Good value for the price.", "Battery life could be better.", "Would buy again."}
	warrantyTerms  = []string{"1 year limited", "2 years limited", "3 years limited", "90 days"}
	warrantyCovers = []string{"Parts and labor", "Parts only", "Manufacturing defects", "Full replacement"}
	shipMethods    = []string{"Standard ground", "Expedited", "Next-day air", "Store pickup"}
	promoKinds     = []string{"10% off", "15% off", "20% off", "Bundle deal", "Free shipping"}
	promoStates    = []string{"Active", "Active", "Scheduled", "Expired"}
)

func text(n string) kb.Column { return kb.Column{Name: n, Type: kb.TextCol} }
func req(n string) kb.Column  { return kb.Column{Name: n, Type: kb.TextCol, NotNull: true} }

// Generate builds and fills the retail knowledge base.
func Generate(cfg Config) (*kb.KB, error) {
	base := kb.New()
	tables := []kb.Schema{
		{
			Name:       "brand",
			Columns:    []kb.Column{req("brand_id"), req("name"), text("country")},
			PrimaryKey: "brand_id",
		},
		{
			Name: "store",
			Columns: []kb.Column{
				req("store_id"), req("name"), text("city"), text("region"),
			},
			PrimaryKey: "store_id",
		},
		{
			Name: "product",
			Columns: []kb.Column{
				req("product_id"), req("name"), req("brand_id"), text("category"),
				{Name: "price_usd", Type: kb.IntCol}, text("status"),
			},
			PrimaryKey: "product_id",
			ForeignKeys: []kb.ForeignKey{
				{Column: "brand_id", RefTable: "brand", RefColumn: "brand_id"},
			},
		},
		{
			Name: "inventory",
			Columns: []kb.Column{
				req("inv_id"), req("product_id"), req("store_id"),
				{Name: "stock_level", Type: kb.IntCol}, text("status"),
			},
			PrimaryKey: "inv_id",
			ForeignKeys: []kb.ForeignKey{
				{Column: "product_id", RefTable: "product", RefColumn: "product_id"},
				{Column: "store_id", RefTable: "store", RefColumn: "store_id"},
			},
		},
		{
			Name: "review",
			Columns: []kb.Column{
				req("review_id"), req("product_id"), text("rating"), text("summary"),
			},
			PrimaryKey: "review_id",
			ForeignKeys: []kb.ForeignKey{
				{Column: "product_id", RefTable: "product", RefColumn: "product_id"},
			},
		},
		{
			Name: "warranty",
			Columns: []kb.Column{
				req("warranty_id"), req("product_id"), text("duration"), text("coverage"),
			},
			PrimaryKey: "warranty_id",
			ForeignKeys: []kb.ForeignKey{
				{Column: "product_id", RefTable: "product", RefColumn: "product_id"},
			},
		},
		{
			Name: "shipping",
			Columns: []kb.Column{
				req("ship_id"), req("product_id"), text("method"),
				{Name: "days", Type: kb.IntCol},
			},
			PrimaryKey: "ship_id",
			ForeignKeys: []kb.ForeignKey{
				{Column: "product_id", RefTable: "product", RefColumn: "product_id"},
			},
		},
		{
			Name: "promotion",
			Columns: []kb.Column{
				req("promo_id"), req("product_id"), text("discount"), text("status"),
			},
			PrimaryKey: "promo_id",
			ForeignKeys: []kb.ForeignKey{
				{Column: "product_id", RefTable: "product", RefColumn: "product_id"},
			},
		},
	}
	for _, s := range tables {
		if _, err := base.CreateTable(s); err != nil {
			return nil, err
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))

	// Brands: the seeded ones plus generated fillers.
	brandIDs := make([]string, 0, cfg.Brands)
	for i, b := range seedBrands {
		id := fmt.Sprintf("BR%03d", i+1)
		brandIDs = append(brandIDs, id)
		base.Table("brand").MustInsert(kb.Row{id, b.name, b.country})
	}
	for i := len(seedBrands); i < cfg.Brands; i++ {
		id := fmt.Sprintf("BR%03d", i+1)
		name := productAdjs[rng.Intn(len(productAdjs))] + " " + []string{"Works", "Supply", "Goods", "Industries"}[rng.Intn(4)]
		brandIDs = append(brandIDs, id)
		base.Table("brand").MustInsert(kb.Row{id, name, countryCodes[rng.Intn(len(countryCodes))]})
	}

	// Stores.
	storeIDs := make([]string, 0, cfg.Stores)
	for i, s := range seedStores {
		id := fmt.Sprintf("ST%03d", i+1)
		storeIDs = append(storeIDs, id)
		base.Table("store").MustInsert(kb.Row{id, s.name, s.city, s.region})
	}
	for i := len(seedStores); i < cfg.Stores; i++ {
		id := fmt.Sprintf("ST%03d", i+1)
		name := cityNames[rng.Intn(len(cityNames))] + " " + []string{"Plaza", "Center", "Galleria", "Market"}[rng.Intn(4)]
		storeIDs = append(storeIDs, id)
		base.Table("store").MustInsert(kb.Row{id, name, cityNames[rng.Intn(len(cityNames))], regionNames[rng.Intn(len(regionNames))]})
	}

	// Products: seeds map to their seeded brands by name; fillers draw
	// names from the adjective/noun pools, deduplicated.
	brandByName := map[string]string{}
	for i, b := range seedBrands {
		brandByName[b.name] = fmt.Sprintf("BR%03d", i+1)
	}
	productIDs := make([]string, 0, cfg.Products)
	seen := map[string]bool{}
	insertProduct := func(i int, name, brandID, category string) {
		id := fmt.Sprintf("PR%03d", i+1)
		productIDs = append(productIDs, id)
		price := int64(15 + rng.Intn(485))
		base.Table("product").MustInsert(kb.Row{
			id, name, brandID, category, price,
			productStates[rng.Intn(len(productStates))],
		})
	}
	for i, p := range seedProducts {
		seen[p.name] = true
		insertProduct(i, p.name, brandByName[p.brand], p.category)
	}
	for i := len(seedProducts); i < cfg.Products; i++ {
		name := ""
		for {
			name = productAdjs[rng.Intn(len(productAdjs))] + " " + productNouns[rng.Intn(len(productNouns))]
			if !seen[name] {
				break
			}
		}
		seen[name] = true
		insertProduct(i, name, brandIDs[rng.Intn(len(brandIDs))], categories[rng.Intn(len(categories))])
	}

	// Per-product dependents.
	inv, rev, war, shp, prm := 0, 0, 0, 0, 0
	for _, pid := range productIDs {
		for _, sid := range storeIDs {
			if rng.Intn(3) == 0 {
				continue // not every product is stocked everywhere
			}
			inv++
			base.Table("inventory").MustInsert(kb.Row{
				fmt.Sprintf("IN%04d", inv), pid, sid,
				int64(rng.Intn(120)), stockStatuses[rng.Intn(len(stockStatuses))],
			})
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			rev++
			base.Table("review").MustInsert(kb.Row{
				fmt.Sprintf("RV%04d", rev), pid,
				ratings[rng.Intn(len(ratings))], reviewNotes[rng.Intn(len(reviewNotes))],
			})
		}
		war++
		base.Table("warranty").MustInsert(kb.Row{
			fmt.Sprintf("WA%04d", war), pid,
			warrantyTerms[rng.Intn(len(warrantyTerms))], warrantyCovers[rng.Intn(len(warrantyCovers))],
		})
		for i := 0; i < 1+rng.Intn(2); i++ {
			shp++
			base.Table("shipping").MustInsert(kb.Row{
				fmt.Sprintf("SH%04d", shp), pid,
				shipMethods[rng.Intn(len(shipMethods))], int64(1 + rng.Intn(7)),
			})
		}
		if rng.Intn(2) == 0 {
			prm++
			base.Table("promotion").MustInsert(kb.Row{
				fmt.Sprintf("PM%04d", prm), pid,
				promoKinds[rng.Intn(len(promoKinds))], promoStates[rng.Intn(len(promoStates))],
			})
		}
	}
	return base, nil
}
