package retailkb

import (
	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/medkb"
	"ontoconv/internal/obs"
	"ontoconv/internal/ontogen"
	"ontoconv/internal/ontology"
)

// Ontology builds the retail domain ontology: data-driven generation from
// the KB schema followed by light SME refinement (display labels and
// properties), mirroring the hybrid approach the paper deploys (§3).
func Ontology(base *kb.KB) (*ontology.Ontology, error) {
	o, err := ontogen.Generate(base, ontogen.DefaultConfig("retail"))
	if err != nil {
		return nil, err
	}
	// The inventory table is a pure product-store junction; SMEs collapse
	// it into a direct "stocked in" relationship, exactly as medkb
	// collapses its treats junction.
	if err := ontogen.CollapseJunction(o, "Inventory", "inventory", ontology.ObjectProperty{
		Name:    "stockedIn",
		From:    "Product",
		To:      "Store",
		Inverse: "stocks",
		Via: &ontology.JunctionTable{
			Table:      "inventory",
			FromColumn: "product_id",
			ToColumn:   "store_id",
			Properties: []string{"stock_level", "status"},
		},
		FromColumn: "product_id",
		ToColumn:   "store_id",
	}); err != nil {
		return nil, err
	}
	if err := ontogen.Refine(o, ontogen.Refinement{
		Inverses: map[string]string{
			"hasBrand": "makes",
		},
		DisplayProperties: map[string]string{
			"Review":    "rating",
			"Warranty":  "duration",
			"Shipping":  "method",
			"Promotion": "discount",
		},
	}); err != nil {
		return nil, err
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// BootstrapConfig is the retail bootstrap configuration: the generic
// pipeline plus the SME vocabulary a retail deployment would contribute
// (Tables 1-2 are medical; this is their retail analogue).
func BootstrapConfig(base *kb.KB) core.Config {
	cfg := core.DefaultConfig()
	cfg.KeyConcepts.MinKeep = 2
	cfg.KeyConcepts.MaxKeep = 3
	cfg.Entities = core.EntityConfig{
		ConceptSynonyms: map[string][]string{
			"Product":   {"item", "goods", "model"},
			"Brand":     {"manufacturer", "maker"},
			"Store":     {"shop", "outlet", "location"},
			"Review":    {"ratings", "stars", "feedback"},
			"Inventory": {"stock", "in stock", "on hand"},
			"Warranty":  {"guarantee", "coverage"},
			"Shipping":  {"delivery", "ship"},
			"Promotion": {"deal", "sale", "discount"},
		},
		ValueEntityMaxValues: 10,
	}
	cfg.Feedback = core.Feedback{
		Rename: map[string]string{
			"Shippings of Product":         "Shipping Options for Product",
			"Warranties of Product":        "Warranty of Product",
			"Stores of Product":            "Stores That Stock Product",
			"Products That HasBrand Brand": "Products by Brand",
			"Brands Makes Product":         "Brand of Product",
			"Promotions of Product":        "Promotions for Product",
		},
		GeneralEntityConcepts: []string{"Product"},
		PriorQueries: map[string][]string{
			// A retail deployment's user-log phrasings, the analogue of
			// the paper's Figure 8 SME-labelled prior queries.
			"Reviews of Product": {
				"show me the reviews for Aurora Headphones",
				"ratings for Pulse Fitness Watch",
				"what do people say about the Solstice Speaker",
				"customer feedback on Drift Stand Mixer",
			},
			"Stores That Stock Product": {
				"where can I buy the Solstice Speaker",
				"which stores stock Glacier Water Bottle",
				"where is the Ember Espresso Maker available",
				"find a store with Stride Running Shoes",
			},
			"Shipping Options for Product": {
				"how fast can you ship the Prism 4K Monitor",
				"delivery options for Quill Mechanical Keyboard",
				"shipping for Halo Air Purifier",
			},
			"Warranty of Product": {
				"warranty on the Nimbus Desk Lamp",
				"how long is the guarantee for Peak Trail Backpack",
			},
			"Promotions for Product": {
				"any deals on Aurora Headphones",
				"is the Pulse Fitness Watch on sale",
			},
		},
	}
	return cfg
}

// Bootstrap generates the KB (default size), builds the ontology, and runs
// the full retail bootstrap — the one-call entry point for the second
// tenant.
func Bootstrap() (*kb.KB, *ontology.Ontology, *core.Space, error) {
	return BootstrapWithPhases(nil)
}

// BootstrapWithPhases is Bootstrap with per-phase timing recorded into pl
// (nil for none).
func BootstrapWithPhases(pl *obs.PhaseLog) (*kb.KB, *ontology.Ontology, *core.Space, error) {
	done := pl.Phase("retailkb.generate")
	base, err := Generate(DefaultConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	rows := 0
	for _, name := range base.TableNames() {
		rows += base.Table(name).Len()
	}
	done(obs.C("tables", len(base.TableNames())), obs.C("rows", rows))

	done = pl.Phase("retailkb.ontology")
	o, err := Ontology(base)
	if err != nil {
		return nil, nil, nil, err
	}
	done(obs.C("concepts", len(o.Concepts)), obs.C("object_properties", len(o.ObjectProperties)))

	cfg := BootstrapConfig(base)
	cfg.Phases = pl
	space, err := core.Bootstrap(o, base, cfg)
	if err != nil {
		return nil, nil, nil, err
	}

	done = pl.Phase("retailkb.index")
	built, err := BuildIndexes(base, space)
	if err != nil {
		return nil, nil, nil, err
	}
	done(obs.C("indexes", built))
	return base, o, space, nil
}

// BuildIndexes builds the serving indexes for a retail KB; the index
// planner is domain agnostic, so this delegates to the shared
// implementation.
func BuildIndexes(base *kb.KB, space *core.Space) (int, error) {
	return medkb.BuildIndexes(base, space)
}
