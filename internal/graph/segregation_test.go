package graph

import (
	"reflect"
	"testing"
)

func TestSegregateLargestGap(t *testing.T) {
	c := Centrality{"big": 10, "alsobig": 9.5, "small": 1, "tiny": 0.5}
	got := Segregate(c, 1, 4)
	if !reflect.DeepEqual(got, []string{"big", "alsobig"}) {
		t.Fatalf("Segregate = %v, want the two above the gap", got)
	}
}

func TestSegregateMinKeep(t *testing.T) {
	// Largest gap is after the first element, but minKeep forces two.
	c := Centrality{"huge": 100, "mid": 5, "low": 4}
	got := Segregate(c, 2, 3)
	if len(got) < 2 {
		t.Fatalf("minKeep violated: %v", got)
	}
	if got[0] != "huge" {
		t.Fatalf("highest must come first: %v", got)
	}
}

func TestSegregateMaxKeepClamp(t *testing.T) {
	c := Centrality{"a": 3, "b": 2, "c": 1}
	got := Segregate(c, 1, 99)
	if len(got) > 3 {
		t.Fatalf("cannot keep more than exist: %v", got)
	}
}

func TestSegregateEmpty(t *testing.T) {
	if got := Segregate(Centrality{}, 1, 5); got != nil {
		t.Fatalf("empty centrality should yield nil, got %v", got)
	}
}

func TestSegregateAllEqual(t *testing.T) {
	c := Centrality{"a": 1, "b": 1, "c": 1, "d": 1}
	got := Segregate(c, 2, 3)
	if len(got) < 2 || len(got) > 3 {
		t.Fatalf("ties should keep within [min,max]: %v", got)
	}
}

func TestTopK(t *testing.T) {
	c := Centrality{"a": 1, "b": 3, "c": 2}
	if got := TopK(c, 2); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("TopK = %v", got)
	}
	if got := TopK(c, 10); len(got) != 3 {
		t.Fatalf("TopK over-count = %v", got)
	}
	if got := TopK(c, 0); len(got) != 0 {
		t.Fatalf("TopK(0) = %v", got)
	}
}
