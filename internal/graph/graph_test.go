package graph

import (
	"reflect"
	"testing"
	"testing/quick"
)

func buildDiamond() *Graph {
	// A -> B -> D, A -> C -> D
	g := New()
	g.AddEdge("A", "B", "ab")
	g.AddEdge("B", "D", "bd")
	g.AddEdge("A", "C", "ac")
	g.AddEdge("C", "D", "cd")
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	g.AddNode("x")
	g.AddNode("x")
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
	if !g.HasNode("x") || g.HasNode("y") {
		t.Fatal("HasNode gave wrong answers")
	}
}

func TestEdgesAndDegree(t *testing.T) {
	g := buildDiamond()
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if d := g.Degree("A"); d != 2 {
		t.Fatalf("Degree(A) = %d, want 2", d)
	}
	if d := g.Degree("D"); d != 2 {
		t.Fatalf("Degree(D) = %d, want 2", d)
	}
	if got := g.Neighbors("A"); !reflect.DeepEqual(got, []string{"B", "C"}) {
		t.Fatalf("Neighbors(A) = %v", got)
	}
	if es := g.EdgesBetween("A", "B"); len(es) != 1 || es[0].Label != "ab" {
		t.Fatalf("EdgesBetween(A,B) = %v", es)
	}
	if es := g.EdgesBetween("B", "A"); len(es) != 0 {
		t.Fatalf("EdgesBetween(B,A) = %v, want none (directed)", es)
	}
}

func TestMultiEdges(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", "r1")
	g.AddEdge("a", "b", "r2")
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (multigraph)", g.NumEdges())
	}
	if nb := g.Neighbors("a"); len(nb) != 1 {
		t.Fatalf("Neighbors dedupes: got %v", nb)
	}
}

func TestNodesInsertionOrder(t *testing.T) {
	g := New()
	for _, n := range []string{"z", "m", "a"} {
		g.AddNode(n)
	}
	if got := g.Nodes(); !reflect.DeepEqual(got, []string{"z", "m", "a"}) {
		t.Fatalf("Nodes = %v, want insertion order", got)
	}
}

func TestShortestPath(t *testing.T) {
	g := buildDiamond()
	p, ok := g.ShortestPath("A", "D")
	if !ok || len(p) != 2 {
		t.Fatalf("ShortestPath(A,D) = %v, %v; want 2 edges", p, ok)
	}
	if nodes := p.Nodes(); nodes[0] != "A" || nodes[2] != "D" {
		t.Fatalf("path nodes = %v", nodes)
	}
	if _, ok := g.ShortestPath("D", "A"); ok {
		t.Fatal("ShortestPath(D,A) should be unreachable in a DAG")
	}
	if p, ok := g.ShortestPath("A", "A"); !ok || len(p) != 0 {
		t.Fatalf("ShortestPath(A,A) = %v, %v; want empty, true", p, ok)
	}
	if _, ok := g.ShortestPath("A", "missing"); ok {
		t.Fatal("path to missing node should fail")
	}
}

func TestPathString(t *testing.T) {
	g := buildDiamond()
	p, _ := g.ShortestPath("A", "B")
	if got := p.String(); got != "A -ab-> B" {
		t.Fatalf("Path.String() = %q", got)
	}
	var empty Path
	if empty.String() != "" || empty.Nodes() != nil {
		t.Fatal("empty path should render empty")
	}
}

func TestPathsUpTo(t *testing.T) {
	g := buildDiamond()
	paths := g.PathsUpTo("A", "D", 3)
	if len(paths) != 2 {
		t.Fatalf("PathsUpTo found %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if len(p) != 2 {
			t.Fatalf("path %v has %d hops, want 2", p, len(p))
		}
	}
	if got := g.PathsUpTo("A", "D", 1); len(got) != 0 {
		t.Fatalf("maxHops=1 should find no path, got %v", got)
	}
}

func TestPathsUpToAvoidsCycles(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", "1")
	g.AddEdge("b", "a", "2")
	g.AddEdge("b", "c", "3")
	paths := g.PathsUpTo("a", "c", 10)
	if len(paths) != 1 {
		t.Fatalf("want exactly 1 simple path, got %d", len(paths))
	}
}

func TestReachable(t *testing.T) {
	g := buildDiamond()
	r := g.Reachable("A")
	for _, n := range []string{"B", "C", "D"} {
		if !r[n] {
			t.Fatalf("%s should be reachable from A", n)
		}
	}
	if len(g.Reachable("D")) != 0 {
		t.Fatal("nothing reachable from sink D")
	}
}

func TestUndirected(t *testing.T) {
	g := buildDiamond()
	u := g.Undirected()
	if _, ok := u.ShortestPath("D", "A"); !ok {
		t.Fatal("undirected view must connect D back to A")
	}
	// original untouched
	if _, ok := g.ShortestPath("D", "A"); ok {
		t.Fatal("Undirected must not mutate the receiver")
	}
}

// Property: a shortest path is never longer than any enumerated simple
// path.
func TestShortestPathIsMinimal(t *testing.T) {
	g := buildDiamond()
	g.AddEdge("A", "D", "ad") // now direct hop exists
	short, ok := g.ShortestPath("A", "D")
	if !ok || len(short) != 1 {
		t.Fatalf("direct edge should win: %v", short)
	}
	for _, p := range g.PathsUpTo("A", "D", 5) {
		if len(p) < len(short) {
			t.Fatalf("enumerated path %v shorter than shortest %v", p, short)
		}
	}
}

// Property (quick): on a random chain graph, the shortest path from the
// first to the last node has exactly n-1 edges.
func TestShortestPathChainProperty(t *testing.T) {
	f := func(rawLen uint8) bool {
		n := int(rawLen%20) + 2
		g := New()
		for i := 0; i+1 < n; i++ {
			g.AddEdge(nodeName(i), nodeName(i+1), "next")
		}
		p, ok := g.ShortestPath(nodeName(0), nodeName(n-1))
		return ok && len(p) == n-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func nodeName(i int) string { return string(rune('a'+i%26)) + string(rune('A'+i/26)) }
