package graph

import "sort"

// Centrality maps node IDs to a centrality score. Higher is more central.
type Centrality map[string]float64

// Ranked returns the node IDs sorted by descending score; ties broken by ID
// for determinism.
type ScoredNode struct {
	ID    string
	Score float64
}

// Ranked returns nodes ordered by descending centrality, ties broken by ID.
func (c Centrality) Ranked() []ScoredNode {
	out := make([]ScoredNode, 0, len(c))
	for id, s := range c {
		out = append(out, ScoredNode{ID: id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// DegreeCentrality returns the normalized total degree of every node:
// degree / (2 * |E|), so scores sum to 1 over the graph.
func DegreeCentrality(g *Graph) Centrality {
	c := make(Centrality, g.NumNodes())
	total := float64(2 * g.NumEdges())
	if total == 0 {
		total = 1
	}
	for _, n := range g.Nodes() {
		c[n] = float64(g.Degree(n)) / total
	}
	return c
}

// PageRank computes PageRank with the given damping factor over the directed
// graph, iterating until the L1 delta drops below tol or maxIter rounds.
// Dangling nodes distribute their mass uniformly.
func PageRank(g *Graph, damping float64, maxIter int, tol float64) Centrality {
	nodes := g.Nodes()
	n := len(nodes)
	if n == 0 {
		return Centrality{}
	}
	rank := make(Centrality, n)
	for _, id := range nodes {
		rank[id] = 1.0 / float64(n)
	}
	outDeg := make(map[string]int, n)
	for _, id := range nodes {
		outDeg[id] = len(g.Out(id))
	}
	for iter := 0; iter < maxIter; iter++ {
		next := make(Centrality, n)
		dangling := 0.0
		for _, id := range nodes {
			if outDeg[id] == 0 {
				dangling += rank[id]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for _, id := range nodes {
			next[id] = base
		}
		for _, id := range nodes {
			if outDeg[id] == 0 {
				continue
			}
			share := damping * rank[id] / float64(outDeg[id])
			for _, e := range g.Out(id) {
				next[e.To] += share
			}
		}
		delta := 0.0
		for _, id := range nodes {
			d := next[id] - rank[id]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		rank = next
		if delta < tol {
			break
		}
	}
	return rank
}

// Betweenness computes (unnormalized) betweenness centrality on the
// *undirected* view of g using Brandes' algorithm. Parallel edges between
// the same pair are collapsed.
func Betweenness(g *Graph) Centrality {
	u := g.Undirected()
	nodes := u.Nodes()
	adj := make(map[string][]string, len(nodes))
	for _, id := range nodes {
		seen := make(map[string]bool)
		for _, e := range u.Out(id) {
			if e.To != id && !seen[e.To] {
				seen[e.To] = true
				adj[id] = append(adj[id], e.To)
			}
		}
		sort.Strings(adj[id])
	}
	cb := make(Centrality, len(nodes))
	for _, id := range nodes {
		cb[id] = 0
	}
	for _, s := range nodes {
		// Brandes single-source shortest-path accumulation.
		var stack []string
		pred := make(map[string][]string)
		sigma := map[string]float64{s: 1}
		dist := map[string]int{s: 0}
		queue := []string{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range adj[v] {
				if _, ok := dist[w]; !ok {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					pred[w] = append(pred[w], v)
				}
			}
		}
		delta := make(map[string]float64)
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range pred[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				cb[w] += delta[w]
			}
		}
	}
	// Each undirected path counted twice (once per endpoint as source).
	for id := range cb {
		cb[id] /= 2
	}
	return cb
}

// Closeness computes harmonic closeness centrality on the undirected view:
// sum over reachable nodes of 1/d(u,v), which is well-defined on
// disconnected graphs.
func Closeness(g *Graph) Centrality {
	u := g.Undirected()
	nodes := u.Nodes()
	c := make(Centrality, len(nodes))
	for _, s := range nodes {
		dist := map[string]int{s: 0}
		queue := []string{s}
		sum := 0.0
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range u.Out(v) {
				if _, ok := dist[e.To]; !ok {
					dist[e.To] = dist[v] + 1
					sum += 1.0 / float64(dist[e.To])
					queue = append(queue, e.To)
				}
			}
		}
		c[s] = sum
	}
	return c
}

// Metric names a centrality measure selectable by the bootstrapper.
type Metric string

// Supported centrality metrics.
const (
	MetricDegree      Metric = "degree"
	MetricPageRank    Metric = "pagerank"
	MetricBetweenness Metric = "betweenness"
	MetricCloseness   Metric = "closeness"
)

// Compute evaluates the named metric with reasonable defaults.
func Compute(g *Graph, m Metric) Centrality {
	switch m {
	case MetricPageRank:
		return PageRank(g, 0.85, 100, 1e-9)
	case MetricBetweenness:
		return Betweenness(g)
	case MetricCloseness:
		return Closeness(g)
	default:
		return DegreeCentrality(g)
	}
}
