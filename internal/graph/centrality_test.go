package graph

import (
	"math"
	"testing"
	"testing/quick"
)

// star returns a hub with n spokes (hub -> spoke_i).
func star(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddEdge("hub", nodeName(i+1), "spoke")
	}
	return g
}

func TestDegreeCentralityStar(t *testing.T) {
	g := star(5)
	c := DegreeCentrality(g)
	if c["hub"] <= c[nodeName(1)] {
		t.Fatalf("hub centrality %v must exceed spoke %v", c["hub"], c[nodeName(1)])
	}
	sum := 0.0
	for _, v := range c {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("degree centralities sum to %v, want 1", sum)
	}
}

func TestDegreeCentralityEmpty(t *testing.T) {
	g := New()
	g.AddNode("lonely")
	c := DegreeCentrality(g)
	if c["lonely"] != 0 {
		t.Fatalf("isolated node centrality = %v, want 0", c["lonely"])
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := star(6)
	pr := PageRank(g, 0.85, 100, 1e-10)
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank sums to %v, want 1", sum)
	}
}

func TestPageRankSpokesGainFromHub(t *testing.T) {
	// In hub -> spokes, the spokes receive the hub's rank; with damping
	// the spokes end above the hub.
	g := star(4)
	pr := PageRank(g, 0.85, 100, 1e-10)
	if pr[nodeName(1)] <= pr["hub"] {
		t.Fatalf("spoke %v should out-rank the dangling-free hub %v", pr[nodeName(1)], pr["hub"])
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	g := New()
	n := 5
	for i := 0; i < n; i++ {
		g.AddEdge(nodeName(i), nodeName((i+1)%n), "next")
	}
	pr := PageRank(g, 0.85, 200, 1e-12)
	for i := 0; i < n; i++ {
		if math.Abs(pr[nodeName(i)]-1.0/float64(n)) > 1e-6 {
			t.Fatalf("cycle node rank %v, want uniform %v", pr[nodeName(i)], 1.0/float64(n))
		}
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	if pr := PageRank(New(), 0.85, 10, 1e-9); len(pr) != 0 {
		t.Fatalf("empty graph rank = %v", pr)
	}
}

func TestBetweennessPathGraph(t *testing.T) {
	// a - b - c: b lies on the single shortest path a..c.
	g := New()
	g.AddEdge("a", "b", "1")
	g.AddEdge("b", "c", "2")
	bc := Betweenness(g)
	if bc["b"] != 1 {
		t.Fatalf("betweenness(b) = %v, want 1", bc["b"])
	}
	if bc["a"] != 0 || bc["c"] != 0 {
		t.Fatalf("endpoints should be 0: %v", bc)
	}
}

func TestBetweennessStarHub(t *testing.T) {
	n := 5
	g := star(n)
	bc := Betweenness(g)
	// hub mediates all C(n,2) spoke pairs
	want := float64(n*(n-1)) / 2
	if math.Abs(bc["hub"]-want) > 1e-9 {
		t.Fatalf("betweenness(hub) = %v, want %v", bc["hub"], want)
	}
}

func TestClosenessPath(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", "1")
	g.AddEdge("b", "c", "2")
	cc := Closeness(g)
	// harmonic: b sees two nodes at distance 1 => 2.0; a sees 1 + 1/2.
	if math.Abs(cc["b"]-2.0) > 1e-9 {
		t.Fatalf("closeness(b) = %v, want 2", cc["b"])
	}
	if math.Abs(cc["a"]-1.5) > 1e-9 {
		t.Fatalf("closeness(a) = %v, want 1.5", cc["a"])
	}
}

func TestClosenessDisconnected(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", "1")
	g.AddNode("island")
	cc := Closeness(g)
	if cc["island"] != 0 {
		t.Fatalf("island closeness = %v, want 0", cc["island"])
	}
}

func TestComputeDispatch(t *testing.T) {
	g := star(3)
	for _, m := range []Metric{MetricDegree, MetricPageRank, MetricBetweenness, MetricCloseness} {
		c := Compute(g, m)
		if len(c) != g.NumNodes() {
			t.Fatalf("metric %s returned %d scores, want %d", m, len(c), g.NumNodes())
		}
	}
	// unknown metric falls back to degree
	if c := Compute(g, Metric("nope")); c["hub"] <= 0 {
		t.Fatal("unknown metric should fall back to degree")
	}
}

func TestRankedDeterministicTies(t *testing.T) {
	c := Centrality{"b": 1, "a": 1, "c": 0.5}
	r := c.Ranked()
	if r[0].ID != "a" || r[1].ID != "b" || r[2].ID != "c" {
		t.Fatalf("Ranked = %v, want ties broken by ID", r)
	}
}

// Property (quick): every centrality is non-negative on random star sizes.
func TestCentralityNonNegative(t *testing.T) {
	f := func(raw uint8) bool {
		g := star(int(raw%10) + 2)
		for _, m := range []Metric{MetricDegree, MetricPageRank, MetricBetweenness, MetricCloseness} {
			for _, v := range Compute(g, m) {
				if v < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
