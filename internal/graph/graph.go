// Package graph provides a small directed multigraph and the centrality
// analyses the conversation-space bootstrapper uses to identify key concepts
// in a domain ontology (paper §4.2.1).
//
// Nodes are identified by string IDs. Edges are directed and labelled;
// multiple edges may connect the same pair of nodes under different labels.
// All algorithms treat the graph as sparse.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a directed, labelled edge.
type Edge struct {
	From  string
	To    string
	Label string
}

// Graph is a directed multigraph over string node IDs.
// The zero value is not usable; call New.
type Graph struct {
	nodes map[string]bool
	out   map[string][]Edge
	in    map[string][]Edge
	order []string // insertion order, for deterministic iteration
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]bool),
		out:   make(map[string][]Edge),
		in:    make(map[string][]Edge),
	}
}

// AddNode inserts a node. Adding an existing node is a no-op.
func (g *Graph) AddNode(id string) {
	if g.nodes[id] {
		return
	}
	g.nodes[id] = true
	g.order = append(g.order, id)
}

// HasNode reports whether id is a node of g.
func (g *Graph) HasNode(id string) bool { return g.nodes[id] }

// AddEdge inserts a directed labelled edge, creating endpoints as needed.
func (g *Graph) AddEdge(from, to, label string) {
	g.AddNode(from)
	g.AddNode(to)
	e := Edge{From: from, To: to, Label: label}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
}

// Nodes returns all node IDs in insertion order.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// Out returns the outgoing edges of id.
func (g *Graph) Out(id string) []Edge { return g.out[id] }

// In returns the incoming edges of id.
func (g *Graph) In(id string) []Edge { return g.in[id] }

// Degree returns the total (in+out) degree of id.
func (g *Graph) Degree(id string) int { return len(g.out[id]) + len(g.in[id]) }

// Neighbors returns the distinct nodes adjacent to id in either direction,
// sorted for determinism.
func (g *Graph) Neighbors(id string) []string {
	seen := make(map[string]bool)
	for _, e := range g.out[id] {
		seen[e.To] = true
	}
	for _, e := range g.in[id] {
		seen[e.From] = true
	}
	delete(seen, id)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EdgesBetween returns all edges from a to b (directed).
func (g *Graph) EdgesBetween(a, b string) []Edge {
	var out []Edge
	for _, e := range g.out[a] {
		if e.To == b {
			out = append(out, e)
		}
	}
	return out
}

// Undirected returns an undirected view: for every directed edge a copy in
// the reverse direction is added (labels preserved). The receiver is not
// modified.
func (g *Graph) Undirected() *Graph {
	u := New()
	for _, n := range g.order {
		u.AddNode(n)
	}
	for _, es := range g.out {
		for _, e := range es {
			u.AddEdge(e.From, e.To, e.Label)
			u.AddEdge(e.To, e.From, e.Label)
		}
	}
	return u
}

// Path is a sequence of edges; Nodes() reconstructs the visited node IDs.
type Path []Edge

// Nodes returns the node sequence of p (len(p)+1 nodes), or nil for an
// empty path.
func (p Path) Nodes() []string {
	if len(p) == 0 {
		return nil
	}
	out := []string{p[0].From}
	for _, e := range p {
		out = append(out, e.To)
	}
	return out
}

// String renders the path as "A -l1-> B -l2-> C".
func (p Path) String() string {
	if len(p) == 0 {
		return ""
	}
	s := p[0].From
	for _, e := range p {
		s += fmt.Sprintf(" -%s-> %s", e.Label, e.To)
	}
	return s
}

// ShortestPath returns one shortest directed path from src to dst (BFS over
// edge count) and true, or nil and false if unreachable. src==dst yields an
// empty path and true.
func (g *Graph) ShortestPath(src, dst string) (Path, bool) {
	if !g.nodes[src] || !g.nodes[dst] {
		return nil, false
	}
	if src == dst {
		return Path{}, true
	}
	prev := make(map[string]Edge)
	visited := map[string]bool{src: true}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.out[cur] {
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			prev[e.To] = e
			if e.To == dst {
				return reconstruct(prev, src, dst), true
			}
			queue = append(queue, e.To)
		}
	}
	return nil, false
}

func reconstruct(prev map[string]Edge, src, dst string) Path {
	var rev Path
	for cur := dst; cur != src; {
		e := prev[cur]
		rev = append(rev, e)
		cur = e.From
	}
	// reverse
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathsUpTo returns all simple directed paths from src to dst with at most
// maxHops edges, in deterministic order. It is intended for the small
// ontology graphs used by the bootstrapper (tens of nodes), not for large
// graphs.
func (g *Graph) PathsUpTo(src, dst string, maxHops int) []Path {
	var out []Path
	if !g.nodes[src] || !g.nodes[dst] || maxHops <= 0 {
		return out
	}
	onPath := map[string]bool{src: true}
	var cur Path
	var dfs func(node string)
	dfs = func(node string) {
		if len(cur) >= maxHops {
			return
		}
		for _, e := range g.out[node] {
			if onPath[e.To] {
				continue
			}
			cur = append(cur, e)
			if e.To == dst {
				cp := make(Path, len(cur))
				copy(cp, cur)
				out = append(out, cp)
			} else {
				onPath[e.To] = true
				dfs(e.To)
				delete(onPath, e.To)
			}
			cur = cur[:len(cur)-1]
		}
	}
	dfs(src)
	return out
}

// Reachable returns the set of nodes reachable from src (excluding src
// unless it lies on a cycle back to itself), following directed edges.
func (g *Graph) Reachable(src string) map[string]bool {
	seen := make(map[string]bool)
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.out[cur] {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return seen
}
