package graph

// Segregate applies the "statistical segregation" step of key-concept
// discovery (paper §4.2.1, [25]): given centrality scores, it finds the
// largest relative gap in the sorted score sequence and returns the IDs
// above the gap — the nodes that "stand on their own".
//
// minKeep and maxKeep bound the cut: at least minKeep and at most maxKeep
// nodes are returned (clamped to the graph size). A gap is only considered
// between positions [minKeep, maxKeep].
func Segregate(c Centrality, minKeep, maxKeep int) []string {
	ranked := c.Ranked()
	n := len(ranked)
	if n == 0 {
		return nil
	}
	if minKeep < 1 {
		minKeep = 1
	}
	if maxKeep > n {
		maxKeep = n
	}
	if minKeep > maxKeep {
		minKeep = maxKeep
	}
	// Find the cut position k in [minKeep, maxKeep] maximizing the score
	// drop ranked[k-1].Score - ranked[k].Score (absolute gap). If all gaps
	// are zero the maximum allowed is kept.
	bestK, bestGap := maxKeep, -1.0
	for k := minKeep; k <= maxKeep && k < n; k++ {
		gap := ranked[k-1].Score - ranked[k].Score
		if gap > bestGap {
			bestGap = gap
			bestK = k
		}
	}
	if bestK > n {
		bestK = n
	}
	out := make([]string, 0, bestK)
	for i := 0; i < bestK; i++ {
		out = append(out, ranked[i].ID)
	}
	return out
}

// TopK returns the k highest-scoring node IDs (ties broken by ID).
func TopK(c Centrality, k int) []string {
	ranked := c.Ranked()
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, ranked[i].ID)
	}
	return out
}
