package nlu

import (
	"sort"
	"strings"
)

// Mention is one entity occurrence recognized in an utterance.
type Mention struct {
	Type    string // entity type, e.g. "Drug"
	Value   string // canonical value, e.g. "Benztropine Mesylate"
	Surface string // the text as the user wrote it, e.g. "cogentin"
	Start   int    // first token index (inclusive)
	End     int    // last token index (exclusive)
	// Fuzzy marks matches that required spelling tolerance.
	Fuzzy bool
	// Partial marks an ambiguous partial match (paper §6.1 "Partial
	// Entity Matching"): the user wrote a fragment ("Calcium") that is
	// contained in several canonical values; Candidates lists them and
	// Value holds the first. The dialogue layer asks the user to choose.
	Partial    bool
	Candidates []string
}

type dictEntry struct {
	entityType string
	canonical  string
}

// Recognizer is a dictionary-based entity recognizer with synonyms,
// longest-phrase matching, spelling tolerance, and partial matching.
type Recognizer struct {
	// phrases maps a normalized surface phrase to its entries. A surface
	// can name entities of several types ("fever" as Indication instance
	// vs. concept) — all are returned; disambiguation is the dialogue's
	// job via required-entity types.
	phrases map[string][]dictEntry
	// dispatch groups dictionary phrases by their first token, longest
	// first, so matchAt resolves the exact longest match by comparing
	// token texts directly — no per-turn key joining or re-normalization.
	dispatch map[string][]phraseRef
	// tokenIndex collects every distinct dictionary token for fuzzy
	// correction.
	tokenIndex map[string]bool
	// wordOfValue maps each canonical-value word (len>=4) to canonical
	// values containing it, for partial matching.
	wordOfValue map[string][]dictEntry
	maxLen      int
	// additions journals every Add call in order, so the dictionary can
	// be serialized and rebuilt behaviourally identical (see serialize.go).
	additions []dictAddition
}

// dictAddition is one journaled Add call.
type dictAddition struct {
	Type      string   `json:"type"`
	Canonical string   `json:"canonical"`
	Synonyms  []string `json:"synonyms,omitempty"`
}

// phraseRef is one dispatch entry: a normalized phrase split into tokens,
// plus the phrases-map key that yields its dictEntries.
type phraseRef struct {
	norm string
	toks []string
}

// NewRecognizer returns an empty recognizer.
func NewRecognizer() *Recognizer {
	return &Recognizer{
		phrases:     make(map[string][]dictEntry),
		dispatch:    make(map[string][]phraseRef),
		tokenIndex:  make(map[string]bool),
		wordOfValue: make(map[string][]dictEntry),
	}
}

// Add registers a canonical entity value and its synonyms under a type.
func (r *Recognizer) Add(entityType, canonical string, synonyms ...string) {
	r.additions = append(r.additions, dictAddition{
		Type: entityType, Canonical: canonical,
		Synonyms: append([]string(nil), synonyms...),
	})
	entry := dictEntry{entityType: entityType, canonical: canonical}
	surfaces := append([]string{canonical}, synonyms...)
	for _, s := range surfaces {
		norm := NormalizePhrase(s)
		if norm == "" {
			continue
		}
		if !r.hasEntry(norm, entry) {
			r.phrases[norm] = append(r.phrases[norm], entry)
			toks := strings.Split(norm, " ")
			r.addDispatch(norm, toks)
			if len(toks) > r.maxLen {
				r.maxLen = len(toks)
			}
			for _, t := range toks {
				r.tokenIndex[t] = true
			}
		}
	}
	// Partial-match index: each sufficiently long word of the canonical
	// value points back at it ("calcium" -> "Calcium Carbonate").
	canonToks := Words(canonical)
	if len(canonToks) > 1 {
		for _, t := range canonToks {
			if len(t) >= 4 && !r.hasPartial(t, entry) {
				r.wordOfValue[t] = append(r.wordOfValue[t], entry)
			}
		}
	}
}

// addDispatch registers a phrase in the first-token dispatch table,
// keeping each bucket longest-first (ties keep insertion order) and
// deduplicated by normalized phrase — two synonyms normalizing to the same
// surface share one entry.
func (r *Recognizer) addDispatch(norm string, toks []string) {
	bucket := r.dispatch[toks[0]]
	for _, ref := range bucket {
		if ref.norm == norm {
			return
		}
	}
	pos := len(bucket)
	for k, x := range bucket {
		if len(x.toks) < len(toks) {
			pos = k
			break
		}
	}
	bucket = append(bucket, phraseRef{})
	copy(bucket[pos+1:], bucket[pos:])
	bucket[pos] = phraseRef{norm: norm, toks: toks}
	r.dispatch[toks[0]] = bucket
}

func (r *Recognizer) hasEntry(norm string, e dictEntry) bool {
	for _, x := range r.phrases[norm] {
		if x == e {
			return true
		}
	}
	return false
}

func (r *Recognizer) hasPartial(tok string, e dictEntry) bool {
	for _, x := range r.wordOfValue[tok] {
		if x == e {
			return true
		}
	}
	return false
}

// Recognize scans the utterance and returns non-overlapping mentions,
// preferring (1) longer matches, (2) exact over fuzzy, (3) full over
// partial. Mentions are ordered by token position.
func (r *Recognizer) Recognize(text string) []Mention {
	toks := Tokenize(text)
	var out []Mention
	i := 0
	for i < len(toks) {
		m, adv := r.matchAt(toks, i)
		if adv == 0 {
			i++
			continue
		}
		out = append(out, m...)
		i += adv
	}
	return out
}

// matchAt tries to match a dictionary phrase starting at token i and
// returns the mentions plus how many tokens were consumed (0 = no match).
func (r *Recognizer) matchAt(toks []Token, i int) ([]Mention, int) {
	// 1. exact longest match via the first-token dispatch: candidates
	// share the span's first token and sit longest-first, so the first
	// full token-sequence match IS the longest exact match — no joined
	// lookup keys are built per turn.
	max := r.maxLen
	if rem := len(toks) - i; max > rem {
		max = rem
	}
	for _, ref := range r.dispatch[toks[i].Text] {
		n := len(ref.toks)
		if n > max {
			continue
		}
		matched := true
		for k := 1; k < n; k++ {
			if toks[i+k].Text != ref.toks[k] {
				matched = false
				break
			}
		}
		if matched {
			return mentionsFor(r.phrases[ref.norm], toks, i, n, false, ""), n
		}
	}
	// 2. fuzzy longest match: correct each token to the nearest
	// dictionary token within its budget, then retry exact lookup.
	for n := max; n >= 1; n-- {
		key, changed, ok := r.fuzzyKey(toks, i, n)
		if !ok || !changed {
			continue
		}
		if entries, hit := r.phrases[key]; hit {
			return mentionsFor(entries, toks, i, n, true, ""), n
		}
	}
	// 3. partial match on a single token ("calcium" -> candidates)
	t := toks[i].Text
	if entries, ok := r.wordOfValue[t]; ok {
		// group by type
		byType := map[string][]string{}
		var types []string
		for _, e := range entries {
			if len(byType[e.entityType]) == 0 {
				types = append(types, e.entityType)
			}
			byType[e.entityType] = append(byType[e.entityType], e.canonical)
		}
		var out []Mention
		for _, ty := range types {
			cands := byType[ty]
			sort.Strings(cands)
			out = append(out, Mention{
				Type:       ty,
				Value:      cands[0],
				Surface:    toks[i].Raw,
				Start:      i,
				End:        i + 1,
				Partial:    len(cands) > 1,
				Candidates: cands,
			})
		}
		return out, 1
	}
	return nil, 0
}

// commonEnglish lists frequent words that must never be fuzzy-corrected
// into dictionary terms ("never" is one edit from "fever").
var commonEnglish = map[string]bool{
	"never": true, "there": true, "their": true, "these": true, "those": true,
	"where": true, "when": true, "what": true, "which": true, "while": true,
	"about": true, "above": true, "after": true, "again": true, "before": true,
	"being": true, "below": true, "between": true, "every": true, "other": true,
	"under": true, "would": true, "could": true, "should": true, "think": true,
	"thing": true, "want": true, "need": true, "mean": true, "please": true,
	"show": true, "give": true, "tell": true, "find": true, "take": true,
	"make": true, "know": true, "right": true, "still": true, "first": true,
	"going": true, "thanks": true, "thank": true, "hello": true, "sorry": true,
	"okay": true, "maybe": true, "really": true, "options": true,
}

// fuzzyKey builds the lookup key for toks[i:i+n] with per-token fuzzy
// correction; reports whether any token changed and whether all tokens
// resolved.
func (r *Recognizer) fuzzyKey(toks []Token, i, n int) (key string, changed, ok bool) {
	parts := make([]string, n)
	for k := 0; k < n; k++ {
		t := toks[i+k].Text
		if r.tokenIndex[t] {
			parts[k] = t
			continue
		}
		if stopwords[t] || commonEnglish[t] {
			return "", false, false
		}
		budget := fuzzyBudget(len(t))
		if budget == 0 {
			return "", false, false
		}
		best, bestD := "", budget+1
		for cand := range r.tokenIndex {
			// The length gap lower-bounds the edit distance, so a candidate
			// whose gap exceeds the budget — or the best distance found so
			// far, which only tightens — can neither win nor tie; skip the
			// DamerauLevenshtein call outright.
			if gap := abs(len(cand) - len(t)); gap > budget || gap > bestD {
				continue
			}
			if d := DamerauLevenshtein(t, cand); d < bestD || (d == bestD && best != "" && cand < best) {
				best, bestD = cand, d
			}
		}
		if best == "" {
			return "", false, false
		}
		parts[k] = best
		changed = true
	}
	return strings.Join(parts, " "), changed, true
}

func mentionsFor(entries []dictEntry, toks []Token, i, n int, fuzzy bool, _ string) []Mention {
	surface := rawSpan(toks, i, n)
	out := make([]Mention, 0, len(entries))
	for _, e := range entries {
		out = append(out, Mention{
			Type:    e.entityType,
			Value:   e.canonical,
			Surface: surface,
			Start:   i,
			End:     i + n,
			Fuzzy:   fuzzy,
		})
	}
	return out
}

func rawSpan(toks []Token, i, n int) string {
	parts := make([]string, n)
	for k := 0; k < n; k++ {
		parts[k] = toks[i+k].Raw
	}
	return strings.Join(parts, " ")
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// MentionsOfType filters mentions by entity type.
func MentionsOfType(ms []Mention, entityType string) []Mention {
	var out []Mention
	for _, m := range ms {
		if m.Type == entityType {
			out = append(out, m)
		}
	}
	return out
}
