package nlu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	a := v.Add("alpha")
	b := v.Add("beta")
	if a == b {
		t.Fatal("distinct features share an index")
	}
	if v.Add("alpha") != a {
		t.Fatal("re-adding must return the same index")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Lookup("alpha") != a || v.Lookup("ghost") != -1 {
		t.Fatal("Lookup wrong")
	}
	if v.Feature(a) != "alpha" || v.Feature(b) != "beta" {
		t.Fatal("Feature reverse lookup wrong")
	}
}

func TestFitTFIDF(t *testing.T) {
	corpus := []string{
		"precautions for aspirin",
		"precautions for ibuprofen",
		"dosage for aspirin",
	}
	tf := FitTFIDF(corpus)
	// "precaution" appears in 2 docs, "dosage" in 1: dosage is rarer,
	// its IDF must be higher.
	pi := tf.Vocab.Lookup(Stem("precautions"))
	di := tf.Vocab.Lookup("dosage")
	if pi < 0 || di < 0 {
		t.Fatalf("features missing: %d %d", pi, di)
	}
	if tf.IDF[di] <= tf.IDF[pi] {
		t.Fatalf("IDF(dosage)=%v should exceed IDF(precaution)=%v", tf.IDF[di], tf.IDF[pi])
	}
}

func TestTransformL2Normalized(t *testing.T) {
	tf := FitTFIDF([]string{"a b c", "c d e", "e f g"})
	vec := tf.Transform("a b c")
	norm := 0.0
	for _, v := range vec.Val {
		norm += v * v
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("L2 norm = %v, want 1", norm)
	}
	// indices sorted
	for i := 1; i < len(vec.Idx); i++ {
		if vec.Idx[i] <= vec.Idx[i-1] {
			t.Fatal("indices not strictly increasing")
		}
	}
}

func TestTransformUnknownFeaturesDropped(t *testing.T) {
	tf := FitTFIDF([]string{"known words only"})
	vec := tf.Transform("totally novel input")
	if len(vec.Idx) != 0 {
		t.Fatalf("unknown features kept: %+v", vec)
	}
	if vec.Dot([]float64{1, 2, 3}) != 0 {
		t.Fatal("empty vector dot must be 0")
	}
}

func TestSparseVecDot(t *testing.T) {
	v := SparseVec{Idx: []int{0, 2}, Val: []float64{0.5, 2.0}}
	w := []float64{2, 99, 3}
	if got := v.Dot(w); math.Abs(got-7.0) > 1e-9 {
		t.Fatalf("Dot = %v, want 7", got)
	}
	// out-of-range indices are ignored, not panics
	v2 := SparseVec{Idx: []int{10}, Val: []float64{1}}
	if v2.Dot(w) != 0 {
		t.Fatal("out-of-range index should contribute 0")
	}
}

// Property (quick): TF-IDF vectors always have norm 0 or 1.
func TestTransformNormProperty(t *testing.T) {
	tf := FitTFIDF([]string{"alpha beta gamma", "beta gamma delta", "gamma delta epsilon"})
	f := func(words []string) bool {
		doc := ""
		for _, w := range words {
			doc += " " + w
		}
		vec := tf.Transform(doc)
		norm := 0.0
		for _, v := range vec.Val {
			norm += v * v
		}
		return norm == 0 || math.Abs(norm-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
