package nlu

import (
	"math"
	"testing"
)

// toyExamples is a tiny three-intent corpus.
func toyExamples() []Example {
	return []Example{
		{"show me the precautions for aspirin", "precautions"},
		{"give me precautions for ibuprofen", "precautions"},
		{"what are the precautions of tylenol", "precautions"},
		{"list precautions for benazepril", "precautions"},
		{"what drugs treat psoriasis", "treatment"},
		{"which drug treats fever", "treatment"},
		{"show me drugs that treat acne", "treatment"},
		{"medications that treat bronchitis", "treatment"},
		{"dosage for aspirin", "dosage"},
		{"give me the dosage for tylenol", "dosage"},
		{"what is the dosage of ibuprofen", "dosage"},
		{"aspirin dosing", "dosage"},
	}
}

func testClassifier(t *testing.T, c Classifier) {
	t.Helper()
	if err := c.Train(toyExamples()); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"precautions for naproxen":  "precautions",
		"what treats headache":      "treatment",
		"dosage for naproxen":       "dosage",
		"show me the precaution of": "precautions", // singular via stemming
	}
	for text, want := range cases {
		p := c.Predict(text)
		if p.Intent != want {
			t.Errorf("%T.Predict(%q) = %q (%.2f), want %q", c, text, p.Intent, p.Confidence, want)
		}
		if p.Confidence <= 0 || p.Confidence > 1 {
			t.Errorf("confidence %v out of range", p.Confidence)
		}
	}
}

func TestNaiveBayes(t *testing.T)         { testClassifier(t, NewNaiveBayes(1.0)) }
func TestLogisticRegression(t *testing.T) { testClassifier(t, NewLogisticRegression()) }

func TestPredictionScoresSumToOne(t *testing.T) {
	for _, c := range []Classifier{NewNaiveBayes(1.0), NewLogisticRegression()} {
		if err := c.Train(toyExamples()); err != nil {
			t.Fatal(err)
		}
		p := c.Predict("precautions for aspirin")
		sum := 0.0
		for _, s := range p.Scores {
			sum += s.Score
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%T scores sum to %v", c, sum)
		}
		// scores descending
		for i := 1; i < len(p.Scores); i++ {
			if p.Scores[i].Score > p.Scores[i-1].Score {
				t.Errorf("%T scores not sorted", c)
			}
		}
		if p.Scores[0].Intent != p.Intent || p.Scores[0].Score != p.Confidence {
			t.Errorf("%T top score inconsistent with prediction", c)
		}
	}
}

func TestTrainEmptyErrors(t *testing.T) {
	if err := NewNaiveBayes(1.0).Train(nil); err == nil {
		t.Fatal("NB empty train must error")
	}
	if err := NewLogisticRegression().Train(nil); err == nil {
		t.Fatal("LR empty train must error")
	}
}

func TestLabels(t *testing.T) {
	c := NewNaiveBayes(1.0)
	if err := c.Train(toyExamples()); err != nil {
		t.Fatal(err)
	}
	labels := c.Labels()
	if len(labels) != 3 || labels[0] != "dosage" {
		t.Fatalf("Labels = %v", labels)
	}
}

func TestPredictBeforeTrain(t *testing.T) {
	p := NewNaiveBayes(1.0).Predict("anything")
	if p.Intent != "" {
		t.Fatalf("untrained prediction = %+v", p)
	}
	p = NewLogisticRegression().Predict("anything")
	if p.Intent != "" {
		t.Fatalf("untrained prediction = %+v", p)
	}
}

func TestLogisticRegressionDeterministic(t *testing.T) {
	a, b := NewLogisticRegression(), NewLogisticRegression()
	if err := a.Train(toyExamples()); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(toyExamples()); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Predict("dosage for x"), b.Predict("dosage for x")
	if pa.Intent != pb.Intent || math.Abs(pa.Confidence-pb.Confidence) > 1e-12 {
		t.Fatalf("same seed must give identical models: %v vs %v", pa, pb)
	}
}

func TestUnknownWordsFallToPrior(t *testing.T) {
	// An utterance of entirely unseen words: NB should fall back to the
	// class prior, which is uniform here — top confidence near 1/3.
	c := NewNaiveBayes(1.0)
	if err := c.Train(toyExamples()); err != nil {
		t.Fatal(err)
	}
	p := c.Predict("zzz qqq www")
	if p.Confidence > 0.5 {
		t.Fatalf("unseen input should have low confidence, got %v", p.Confidence)
	}
}
