package nlu

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// ModelFormatVersion is the serialization format version of the trained
// NLU artifacts. It is bumped whenever the encoded shape changes in a way
// an older reader cannot decode; decoders reject any other version.
const ModelFormatVersion = 1

// The classifier kind tags stored in the envelope.
const (
	KindNaiveBayes         = "naive-bayes"
	KindLogisticRegression = "logistic-regression"
)

// Serialization is deliberately JSON-based: encoding/json marshals every
// map with sorted keys, so encoding is deterministic, and all state below
// is ordered slices — no map iteration touches the wire. Model parameters
// (the bulk of the payload) travel as base64-encoded raw little-endian
// float64 bits rather than decimal literals: exact to the bit by
// construction, a third the size, and decoded at memory speed instead of
// float-parsing speed — the fast server cold start depends on this.

// floatVec is a []float64 that marshals as a base64 string of raw
// little-endian IEEE-754 bits.
type floatVec []float64

func (v floatVec) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(f))
	}
	return json.Marshal(base64.StdEncoding.EncodeToString(buf))
}

func (v *floatVec) UnmarshalJSON(data []byte) error {
	// Fast path: a plain quoted string with no escapes. The base64
	// alphabet never needs JSON escaping, so this is the shape every
	// encoder (ours included) produces; re-running json.Unmarshal per row
	// would re-validate and re-unquote megabytes of weight data.
	var b64 []byte
	if len(data) >= 2 && data[0] == '"' && data[len(data)-1] == '"' &&
		bytes.IndexByte(data[1:len(data)-1], '\\') < 0 && bytes.IndexByte(data[1:len(data)-1], '"') < 0 {
		b64 = data[1 : len(data)-1]
	} else {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return fmt.Errorf("nlu: float vector is not a base64 string: %w", err)
		}
		b64 = []byte(s)
	}
	raw := make([]byte, base64.StdEncoding.DecodedLen(len(b64)))
	n, err := base64.StdEncoding.Decode(raw, b64)
	if err != nil {
		return fmt.Errorf("nlu: float vector: %w", err)
	}
	raw = raw[:n]
	if len(raw)%8 != 0 {
		return fmt.Errorf("nlu: float vector of %d bytes is not a multiple of 8", len(raw))
	}
	out := make(floatVec, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	*v = out
	return nil
}

// floatMat is a [][]float64 that marshals as an array of base64 rows.
type floatMat []floatVec

func matState(m [][]float64) floatMat {
	out := make(floatMat, len(m))
	for i, row := range m {
		out[i] = floatVec(row)
	}
	return out
}

func matFromState(m floatMat) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = []float64(row)
	}
	return out
}

type vocabularyState []string

func (v *Vocabulary) state() vocabularyState {
	return append([]string(nil), v.items...)
}

func vocabularyFromState(items vocabularyState) *Vocabulary {
	v := NewVocabulary()
	for _, it := range items {
		v.Add(it)
	}
	return v
}

type naiveBayesState struct {
	Alpha     float64         `json:"alpha"`
	Labels    []string        `json:"labels"`
	Vocab     vocabularyState `json:"vocab"`
	LogPrior  floatVec        `json:"logPrior"`
	LogLik    floatMat        `json:"logLik"`
	UnkLogLik floatVec        `json:"unkLogLik"`
}

type logisticState struct {
	Epochs  int             `json:"epochs"`
	Rate    float64         `json:"rate"`
	L2      float64         `json:"l2"`
	Seed    int64           `json:"seed"`
	Labels  []string        `json:"labels"`
	Vocab   vocabularyState `json:"vocab"`
	IDF     floatVec        `json:"idf"`
	Weights floatMat        `json:"weights"`
	Bias    floatVec        `json:"bias"`
}

type classifierEnvelope struct {
	Version    int              `json:"version"`
	Kind       string           `json:"kind"`
	NaiveBayes *naiveBayesState `json:"naiveBayes,omitempty"`
	Logistic   *logisticState   `json:"logistic,omitempty"`
}

// MarshalClassifier serializes a trained classifier into the versioned
// model format. Only the built-in NaiveBayes and LogisticRegression
// classifiers are supported.
func MarshalClassifier(c Classifier) ([]byte, error) {
	env := classifierEnvelope{Version: ModelFormatVersion}
	switch m := c.(type) {
	case *NaiveBayes:
		if m.vocab == nil {
			return nil, fmt.Errorf("nlu: marshal: naive bayes is untrained")
		}
		env.Kind = KindNaiveBayes
		env.NaiveBayes = &naiveBayesState{
			Alpha:     m.Alpha,
			Labels:    append([]string(nil), m.labels...),
			Vocab:     m.vocab.state(),
			LogPrior:  floatVec(m.logPrior),
			LogLik:    matState(m.logLik),
			UnkLogLik: floatVec(m.unkLogLik),
		}
	case *LogisticRegression:
		if m.tfidf == nil {
			return nil, fmt.Errorf("nlu: marshal: logistic regression is untrained")
		}
		env.Kind = KindLogisticRegression
		env.Logistic = &logisticState{
			Epochs:  m.Epochs,
			Rate:    m.Rate,
			L2:      m.L2,
			Seed:    m.Seed,
			Labels:  append([]string(nil), m.labels...),
			Vocab:   m.tfidf.Vocab.state(),
			IDF:     floatVec(m.tfidf.IDF),
			Weights: matState(m.w),
			Bias:    floatVec(m.b),
		}
	default:
		return nil, fmt.Errorf("nlu: marshal: unsupported classifier type %T", c)
	}
	return json.Marshal(env)
}

// UnmarshalClassifier decodes a classifier serialized with
// MarshalClassifier. The returned model predicts byte-identically to the
// one that was marshalled.
func UnmarshalClassifier(data []byte) (Classifier, error) {
	var env classifierEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("nlu: unmarshal classifier: %w", err)
	}
	if env.Version != ModelFormatVersion {
		return nil, fmt.Errorf("nlu: unsupported model format version %d (want %d)", env.Version, ModelFormatVersion)
	}
	switch env.Kind {
	case KindNaiveBayes:
		s := env.NaiveBayes
		if s == nil {
			return nil, fmt.Errorf("nlu: %s envelope missing payload", env.Kind)
		}
		if len(s.LogPrior) != len(s.Labels) || len(s.LogLik) != len(s.Labels) || len(s.UnkLogLik) != len(s.Labels) {
			return nil, fmt.Errorf("nlu: naive bayes state inconsistent: %d labels, %d priors, %d likelihood rows, %d unknown likelihoods",
				len(s.Labels), len(s.LogPrior), len(s.LogLik), len(s.UnkLogLik))
		}
		nb := NewNaiveBayes(s.Alpha)
		nb.vocab = vocabularyFromState(s.Vocab)
		nb.labels = s.Labels
		nb.labelIdx = make(map[string]int, len(s.Labels))
		for i, l := range s.Labels {
			nb.labelIdx[l] = i
		}
		for i, row := range s.LogLik {
			if len(row) != nb.vocab.Len() {
				return nil, fmt.Errorf("nlu: naive bayes likelihood row %d has %d features, vocab has %d", i, len(row), nb.vocab.Len())
			}
		}
		nb.logPrior = []float64(s.LogPrior)
		nb.logLik = matFromState(s.LogLik)
		nb.unkLogLik = []float64(s.UnkLogLik)
		nb.compile()
		return nb, nil
	case KindLogisticRegression:
		s := env.Logistic
		if s == nil {
			return nil, fmt.Errorf("nlu: %s envelope missing payload", env.Kind)
		}
		if len(s.Weights) != len(s.Labels) || len(s.Bias) != len(s.Labels) {
			return nil, fmt.Errorf("nlu: logistic state inconsistent: %d labels, %d weight rows, %d biases",
				len(s.Labels), len(s.Weights), len(s.Bias))
		}
		if len(s.IDF) != len(s.Vocab) {
			return nil, fmt.Errorf("nlu: logistic state inconsistent: %d vocab items, %d idf weights", len(s.Vocab), len(s.IDF))
		}
		lr := &LogisticRegression{Epochs: s.Epochs, Rate: s.Rate, L2: s.L2, Seed: s.Seed}
		lr.tfidf = &TFIDF{Vocab: vocabularyFromState(s.Vocab), IDF: []float64(s.IDF)}
		lr.labels = s.Labels
		lr.labelID = make(map[string]int, len(s.Labels))
		for i, l := range s.Labels {
			lr.labelID[l] = i
		}
		for i, row := range s.Weights {
			if len(row) != lr.tfidf.Vocab.Len() {
				return nil, fmt.Errorf("nlu: logistic weight row %d has %d features, vocab has %d", i, len(row), lr.tfidf.Vocab.Len())
			}
		}
		lr.w = matFromState(s.Weights)
		lr.b = []float64(s.Bias)
		lr.compile()
		return lr, nil
	default:
		return nil, fmt.Errorf("nlu: unknown classifier kind %q", env.Kind)
	}
}

// ClassifierKind returns the envelope tag for a classifier, or "" if the
// type has no serialization support.
func ClassifierKind(c Classifier) string {
	switch c.(type) {
	case *NaiveBayes:
		return KindNaiveBayes
	case *LogisticRegression:
		return KindLogisticRegression
	default:
		return ""
	}
}

type recognizerState struct {
	Version int            `json:"version"`
	Entries []dictAddition `json:"entries"`
}

// MarshalRecognizer serializes the dictionary as the ordered journal of
// Add calls that built it; replaying them reconstructs a recognizer with
// identical matching behaviour (entry order inside a phrase bucket is
// insertion order, which longest-match scanning preserves).
func MarshalRecognizer(r *Recognizer) ([]byte, error) {
	return json.Marshal(recognizerState{Version: ModelFormatVersion, Entries: r.additions})
}

// UnmarshalRecognizer rebuilds a recognizer serialized with
// MarshalRecognizer.
func UnmarshalRecognizer(data []byte) (*Recognizer, error) {
	var s recognizerState
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("nlu: unmarshal recognizer: %w", err)
	}
	if s.Version != ModelFormatVersion {
		return nil, fmt.Errorf("nlu: unsupported recognizer format version %d (want %d)", s.Version, ModelFormatVersion)
	}
	r := NewRecognizer()
	for _, e := range s.Entries {
		r.Add(e.Type, e.Canonical, e.Synonyms...)
	}
	return r, nil
}
