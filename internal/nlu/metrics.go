package nlu

import (
	"fmt"
	"sort"
	"strings"
)

// ClassMetrics holds per-intent evaluation results.
type ClassMetrics struct {
	Intent    string
	TP        int
	FP        int
	FN        int
	Support   int // number of test examples with this gold intent
	Precision float64
	Recall    float64
	F1        float64
}

// Evaluation aggregates classifier quality over a test set, the way the
// paper reports it (§7.1: per-intent F1 and the macro average, 0.85).
type Evaluation struct {
	Accuracy  float64
	MacroF1   float64
	MicroF1   float64
	PerIntent []ClassMetrics
	Confusion map[string]map[string]int // gold -> predicted -> count
}

// Evaluate runs the classifier over the test examples and scores it.
func Evaluate(c Classifier, test []Example) Evaluation {
	type counts struct{ tp, fp, fn, support int }
	byIntent := map[string]*counts{}
	conf := map[string]map[string]int{}
	correct := 0
	get := func(intent string) *counts {
		if byIntent[intent] == nil {
			byIntent[intent] = &counts{}
		}
		return byIntent[intent]
	}
	for _, ex := range test {
		pred := c.Predict(ex.Text).Intent
		if conf[ex.Intent] == nil {
			conf[ex.Intent] = map[string]int{}
		}
		conf[ex.Intent][pred]++
		get(ex.Intent).support++
		if pred == ex.Intent {
			correct++
			get(ex.Intent).tp++
		} else {
			get(ex.Intent).fn++
			get(pred).fp++
		}
	}
	ev := Evaluation{Confusion: conf}
	if len(test) > 0 {
		ev.Accuracy = float64(correct) / float64(len(test))
	}
	intents := make([]string, 0, len(byIntent))
	for intent := range byIntent {
		intents = append(intents, intent)
	}
	sort.Strings(intents)
	sumF1 := 0.0
	nWithSupport := 0
	tpAll, fpAll, fnAll := 0, 0, 0
	for _, intent := range intents {
		c := byIntent[intent]
		m := ClassMetrics{Intent: intent, TP: c.tp, FP: c.fp, FN: c.fn, Support: c.support}
		if c.tp+c.fp > 0 {
			m.Precision = float64(c.tp) / float64(c.tp+c.fp)
		}
		if c.tp+c.fn > 0 {
			m.Recall = float64(c.tp) / float64(c.tp+c.fn)
		}
		if m.Precision+m.Recall > 0 {
			m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		}
		ev.PerIntent = append(ev.PerIntent, m)
		if c.support > 0 {
			sumF1 += m.F1
			nWithSupport++
		}
		tpAll += c.tp
		fpAll += c.fp
		fnAll += c.fn
	}
	if nWithSupport > 0 {
		ev.MacroF1 = sumF1 / float64(nWithSupport)
	}
	if 2*tpAll+fpAll+fnAll > 0 {
		ev.MicroF1 = 2 * float64(tpAll) / float64(2*tpAll+fpAll+fnAll)
	}
	return ev
}

// IntentF1 returns the F1 of one intent, or 0 if absent.
func (e Evaluation) IntentF1(intent string) float64 {
	for _, m := range e.PerIntent {
		if m.Intent == intent {
			return m.F1
		}
	}
	return 0
}

// String renders the evaluation as an aligned text table.
func (e Evaluation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accuracy=%.3f macroF1=%.3f microF1=%.3f\n", e.Accuracy, e.MacroF1, e.MicroF1)
	fmt.Fprintf(&b, "%-40s %9s %7s %7s %7s\n", "intent", "support", "prec", "recall", "F1")
	for _, m := range e.PerIntent {
		if m.Support == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-40s %9d %7.3f %7.3f %7.3f\n", m.Intent, m.Support, m.Precision, m.Recall, m.F1)
	}
	return b.String()
}

// TrainTestSplit partitions examples per intent: for each intent, every
// holdOneIn-th example goes to the test set (deterministic, preserving the
// intent mix — the paper §7.1 "ensure that the distribution of the training
// and test sets are similar to the real intent statistics").
func TrainTestSplit(examples []Example, holdOneIn int) (train, test []Example) {
	if holdOneIn < 2 {
		holdOneIn = 2
	}
	seen := map[string]int{}
	for _, ex := range examples {
		seen[ex.Intent]++
		if seen[ex.Intent]%holdOneIn == 0 {
			test = append(test, ex)
		} else {
			train = append(train, ex)
		}
	}
	return train, test
}
