package nlu

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// syntheticCorpus is a deterministic ~300-example corpus, large enough
// that parallel featurization actually chunks across workers and the
// vocabulary exceeds the toy fixture's.
func syntheticCorpus() []Example {
	drugs := []string{
		"aspirin", "ibuprofen", "tylenol", "benazepril", "naproxen",
		"acitretin", "amoxicillin", "lisinopril", "metformin", "warfarin",
	}
	conds := []string{
		"psoriasis", "fever", "acne", "bronchitis", "hypertension",
		"migraine", "arthritis", "insomnia", "anxiety", "eczema",
	}
	var out []Example
	for i, d := range drugs {
		out = append(out,
			Example{fmt.Sprintf("show me the precautions for %s", d), "precautions"},
			Example{fmt.Sprintf("what are the precautions of %s please", d), "precautions"},
			Example{fmt.Sprintf("dosage for %s", d), "dosage"},
			Example{fmt.Sprintf("what is the recommended dosage of %s", d), "dosage"},
		)
		c := conds[i%len(conds)]
		out = append(out,
			Example{fmt.Sprintf("what drugs treat %s", c), "treatment"},
			Example{fmt.Sprintf("which medications help with %s", c), "treatment"},
			Example{fmt.Sprintf("does %s treat %s", d, c), "treatment"},
		)
	}
	for _, c := range conds {
		out = append(out,
			Example{fmt.Sprintf("tell me about %s", c), "overview"},
			Example{fmt.Sprintf("%s overview", c), "overview"},
		)
	}
	return out
}

// adversarialUtterances covers the tokenizer and scratch-path edge
// cases: empty input, stopword-only, unknown vocabulary, case folding,
// non-ASCII (the ToLower fallback), joiners, and inputs long enough to
// force scratch growth.
func adversarialUtterances() []string {
	return []string{
		"",
		"   ",
		"the of and a an",
		"precautions for aspirin",
		"PRECAUTIONS FOR ASPIRIN!!!",
		"what's the dosage of extended-release naproxen",
		"zzzz qqqq xxxxy unknownword",
		"aspirin",
		"dosage dosage dosage dosage",
		"Träumerei über die Dosierung",
		"co-trimoxazole 'quoted' tokens-with-joiners don't",
		"\ttabs\nand newlines dosage",
		strings.Repeat("precautions aspirin dosage treats psoriasis ", 40),
	}
}

// referencePredictor is satisfied by both concrete classifiers.
type referencePredictor interface {
	Classifier
	PredictReference(text string) Prediction
}

func trainedPair(t *testing.T) []referencePredictor {
	t.Helper()
	ex := append(toyExamples(), syntheticCorpus()...)
	nb := NewNaiveBayes(1.0)
	lr := NewLogisticRegression()
	for _, c := range []Classifier{nb, lr} {
		if err := c.Train(ex); err != nil {
			t.Fatal(err)
		}
	}
	return []referencePredictor{nb, lr}
}

// assertSamePrediction requires bit-identical predictions: intent,
// confidence, and the full score vector, compared with ==, not within a
// tolerance. The fused path reorders no floating-point operation, so
// exact equality is the contract.
func assertSamePrediction(t *testing.T, label, text string, got, want Prediction) {
	t.Helper()
	if got.Intent != want.Intent || got.Confidence != want.Confidence {
		t.Fatalf("%s(%q): fused (%q, %v) != reference (%q, %v)",
			label, text, got.Intent, got.Confidence, want.Intent, want.Confidence)
	}
	if len(got.Scores) != len(want.Scores) {
		t.Fatalf("%s(%q): %d scores, reference has %d", label, text, len(got.Scores), len(want.Scores))
	}
	for i := range got.Scores {
		if got.Scores[i] != want.Scores[i] {
			t.Fatalf("%s(%q): score[%d] fused %+v != reference %+v",
				label, text, i, got.Scores[i], want.Scores[i])
		}
	}
}

// TestFusedPredictMatchesReference is the differential pin the fused
// matrix path is built against: over every training text and every
// adversarial utterance, Predict (fused) and PredictReference (the
// retained per-feature map walk) must agree bit for bit.
func TestFusedPredictMatchesReference(t *testing.T) {
	texts := adversarialUtterances()
	for _, e := range append(toyExamples(), syntheticCorpus()...) {
		texts = append(texts, e.Text)
	}
	for _, c := range trainedPair(t) {
		label := fmt.Sprintf("%T", c)
		for _, text := range texts {
			assertSamePrediction(t, label, text, c.Predict(text), c.PredictReference(text))
		}
	}
}

// TestPredictTopMatchesPredict: the allocation-free top-1 entry point
// returns exactly Predict's winner and confidence.
func TestPredictTopMatchesPredict(t *testing.T) {
	for _, c := range trainedPair(t) {
		for _, text := range adversarialUtterances() {
			intent, conf := PredictTop(c, text)
			p := c.Predict(text)
			if intent != p.Intent || conf != p.Confidence {
				t.Fatalf("%T: PredictTop(%q) = (%q, %v), Predict = (%q, %v)",
					c, text, intent, conf, p.Intent, p.Confidence)
			}
		}
	}
}

// TestPredictTopFallback: a classifier without a compiled matrix (any
// implementation outside the two built-ins) routes through Predict.
type stubClassifier struct{}

func (stubClassifier) Train([]Example) error { return nil }
func (stubClassifier) Predict(string) Prediction {
	return Prediction{Intent: "stub", Confidence: 0.5}
}
func (stubClassifier) Labels() []string { return []string{"stub"} }

func TestPredictTopFallback(t *testing.T) {
	if intent, conf := PredictTop(stubClassifier{}, "anything"); intent != "stub" || conf != 0.5 {
		t.Fatalf("fallback PredictTop = (%q, %v)", intent, conf)
	}
}

// TestParallelTrainingBitIdentical is the offline half of the
// determinism contract: training fans featurization out over workers,
// and the serialized model must still be byte-identical at any width.
func TestParallelTrainingBitIdentical(t *testing.T) {
	ex := append(toyExamples(), syntheticCorpus()...)
	makers := []struct {
		name string
		mk   func() Classifier
	}{
		{"naive-bayes", func() Classifier { return NewNaiveBayes(1.0) }},
		{"logreg", func() Classifier { return NewLogisticRegression() }},
	}
	for _, m := range makers {
		var ref []byte
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			c := m.mk()
			err := c.Train(ex)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				t.Fatal(err)
			}
			data, err := MarshalClassifier(c)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = data
			} else if !bytes.Equal(ref, data) {
				t.Errorf("%s: model trained at GOMAXPROCS=%d differs from GOMAXPROCS=1", m.name, procs)
			}
		}
	}
}

// TestParallelTFIDFBitIdentical: the TF-IDF fit (parallel featurize +
// serial in-order reduce) produces an identical vocabulary and IDF
// vector at every worker width.
func TestParallelTFIDFBitIdentical(t *testing.T) {
	var corpus []string
	for _, e := range append(toyExamples(), syntheticCorpus()...) {
		corpus = append(corpus, e.Text)
	}
	var ref *TFIDF
	for _, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		tf := FitTFIDF(corpus)
		runtime.GOMAXPROCS(prev)
		if ref == nil {
			ref = tf
			continue
		}
		if !reflect.DeepEqual(ref, tf) {
			t.Errorf("TF-IDF fit at GOMAXPROCS=%d differs from GOMAXPROCS=1", procs)
		}
	}
}

// TestFuzzyKeyGuardMatchesBruteForce pins the length-gap early exit as
// behavior-preserving: over a seeded stream of typo'd and garbage
// tokens, fuzzyKey must pick exactly the candidate a guard-free scan
// picks, with the same tie-break (smallest distance, then
// lexicographically smallest candidate).
func TestFuzzyKeyGuardMatchesBruteForce(t *testing.T) {
	r := NewRecognizer()
	for _, v := range []string{
		"benazepril", "acitretin", "amoxicillin", "psoriasis",
		"bronchitis", "hypertension", "ibuprofen", "warfarin",
	} {
		r.Add("drug", v)
	}

	bruteBest := func(tok string) (string, int) {
		budget := fuzzyBudget(len(tok))
		best, bestD := "", budget+1
		for cand := range r.tokenIndex {
			if d := DamerauLevenshtein(tok, cand); d < bestD || (d == bestD && best != "" && cand < best) {
				best, bestD = cand, d
			}
		}
		return best, bestD
	}

	rng := rand.New(rand.NewSource(7))
	letters := "abcdefghijklmnopqrstuvwxyz"
	var vocab []string
	for cand := range r.tokenIndex {
		vocab = append(vocab, cand)
	}
	for trial := 0; trial < 500; trial++ {
		var tok string
		if trial%3 == 0 {
			// Random garbage of random length: mostly misses.
			n := 4 + rng.Intn(14)
			b := make([]byte, n)
			for i := range b {
				b[i] = letters[rng.Intn(len(letters))]
			}
			tok = string(b)
		} else {
			// A vocabulary word with 1-3 random edits: mostly hits.
			w := []byte(vocab[rng.Intn(len(vocab))])
			for e := 0; e <= rng.Intn(3); e++ {
				i := rng.Intn(len(w))
				switch rng.Intn(3) {
				case 0:
					w[i] = letters[rng.Intn(len(letters))]
				case 1:
					w = append(w[:i], w[i+1:]...)
				default:
					w = append(w[:i], append([]byte{letters[rng.Intn(len(letters))]}, w[i:]...)...)
				}
				if len(w) == 0 {
					w = []byte{'x'}
				}
			}
			tok = string(w)
		}
		if r.tokenIndex[tok] || stopwords[tok] || commonEnglish[tok] {
			continue // fuzzyKey never scans for these
		}
		wantBest, wantD := bruteBest(tok)
		toks := []Token{{Text: tok}}
		key, _, ok := r.fuzzyKey(toks, 0, 1)
		if fuzzyBudget(len(tok)) == 0 {
			if ok {
				t.Fatalf("%q: matched %q with a zero budget", tok, key)
			}
			continue
		}
		if wantBest == "" {
			if ok {
				t.Fatalf("%q: guard path matched %q, brute force found nothing within %d", tok, key, wantD-1)
			}
			continue
		}
		if !ok || key != wantBest {
			t.Fatalf("%q: guard path = (%q, %v), brute force = %q", tok, key, ok, wantBest)
		}
	}
}
