package nlu

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"ontoconv/internal/par"
)

// Prediction is a classifier output: the winning intent and its
// confidence in [0,1], plus the runner-up scores for diagnostics.
type Prediction struct {
	Intent     string
	Confidence float64
	// Scores holds the posterior for every intent, descending.
	Scores []IntentScore
}

// IntentScore pairs an intent with its posterior probability.
type IntentScore struct {
	Intent string
	Score  float64
}

// Classifier is the intent classification interface the conversation space
// trains during bootstrap and queries online.
type Classifier interface {
	// Train fits the model to the labelled examples.
	Train(examples []Example) error
	// Predict classifies one utterance.
	Predict(text string) Prediction
	// Labels returns the known intents, sorted.
	Labels() []string
}

// ---------------------------------------------------------------------------
// Multinomial naive Bayes
// ---------------------------------------------------------------------------

// NaiveBayes is a multinomial naive Bayes intent classifier with Laplace
// smoothing over unigram+bigram features. It is the fast baseline model.
type NaiveBayes struct {
	Alpha float64 // smoothing; 1.0 when zero

	vocab     *Vocabulary
	labels    []string
	labelIdx  map[string]int
	logPrior  []float64
	logLik    [][]float64 // [label][feature]
	unkLogLik []float64   // [label] log-likelihood of an unseen feature

	// mat is the compiled inference matrix: row-major [label][feature+1]
	// with the extra trailing column holding unkLogLik, so unknown features
	// index a real cell instead of branching (see fastpath.go). Built by
	// compile(); nil only for hand-assembled or untrained models.
	mat          []float64
	sortedLabels []string // Labels() result, cached at compile time
}

// NewNaiveBayes returns a classifier with Laplace smoothing alpha.
func NewNaiveBayes(alpha float64) *NaiveBayes {
	if alpha <= 0 {
		alpha = 1.0
	}
	return &NaiveBayes{Alpha: alpha}
}

// Train implements Classifier.
func (nb *NaiveBayes) Train(examples []Example) error {
	if len(examples) == 0 {
		return errors.New("nlu: no training examples")
	}
	// Feature extraction fans out across cores; the count accumulation
	// below reduces serially in example order, so label and vocabulary
	// indices (and therefore every smoothed log-likelihood) come out
	// bit-identical at any GOMAXPROCS.
	feats := make([][]string, len(examples))
	par.Do(len(examples), func(i int) { feats[i] = Featurize(examples[i].Text) })
	nb.vocab = NewVocabulary()
	nb.labelIdx = make(map[string]int)
	var counts [][]float64 // [label][feature]
	var total []float64    // [label] token count
	var docs []float64     // [label] doc count
	for xi, ex := range examples {
		li, ok := nb.labelIdx[ex.Intent]
		if !ok {
			li = len(nb.labels)
			nb.labelIdx[ex.Intent] = li
			nb.labels = append(nb.labels, ex.Intent)
			counts = append(counts, nil)
			total = append(total, 0)
			docs = append(docs, 0)
		}
		docs[li]++
		for _, f := range feats[xi] {
			fi := nb.vocab.Add(f)
			for fi >= len(counts[li]) {
				counts[li] = append(counts[li], 0)
			}
			counts[li][fi]++
			total[li]++
		}
	}
	nDocs := float64(len(examples))
	v := float64(nb.vocab.Len())
	nb.logPrior = make([]float64, len(nb.labels))
	nb.logLik = make([][]float64, len(nb.labels))
	nb.unkLogLik = make([]float64, len(nb.labels))
	for li := range nb.labels {
		nb.logPrior[li] = math.Log(docs[li] / nDocs)
		denom := total[li] + nb.Alpha*v
		row := make([]float64, nb.vocab.Len())
		for fi := range row {
			c := 0.0
			if fi < len(counts[li]) {
				c = counts[li][fi]
			}
			row[fi] = math.Log((c + nb.Alpha) / denom)
		}
		nb.logLik[li] = row
		nb.unkLogLik[li] = math.Log(nb.Alpha / denom)
	}
	nb.compile()
	return nil
}

// compile flattens the trained parameters into the dense inference matrix
// and caches the sorted label slice. Idempotent; called at the end of
// Train and after decode.
func (nb *NaiveBayes) compile() {
	nF := nb.vocab.Len()
	stride := nF + 1
	nb.mat = make([]float64, len(nb.labels)*stride)
	for li, row := range nb.logLik {
		copy(nb.mat[li*stride:], row)
		nb.mat[li*stride+nF] = nb.unkLogLik[li]
	}
	nb.sortedLabels = sortedCopy(nb.labels)
}

// Predict implements Classifier. It scores on the compiled matrix via the
// pooled fused path — bit-identical to PredictReference, which
// TestFusedPredictMatchesReference pins.
func (nb *NaiveBayes) Predict(text string) Prediction {
	if len(nb.labels) == 0 {
		return Prediction{}
	}
	if nb.mat == nil {
		return nb.PredictReference(text)
	}
	s := getScratch()
	s.fillWords(text)
	p := softmaxPrediction(nb.labels, nb.fusedLogits(s))
	putScratch(s)
	return p
}

// PredictReference is the original per-feature scoring path, retained as
// the differential-testing oracle for the compiled fast path.
func (nb *NaiveBayes) PredictReference(text string) Prediction {
	if len(nb.labels) == 0 {
		return Prediction{}
	}
	scores := make([]float64, len(nb.labels))
	copy(scores, nb.logPrior)
	for _, f := range Featurize(text) {
		fi := nb.vocab.Lookup(f)
		for li := range nb.labels {
			if fi >= 0 {
				scores[li] += nb.logLik[li][fi]
			} else {
				scores[li] += nb.unkLogLik[li]
			}
		}
	}
	return softmaxPrediction(nb.labels, scores)
}

// Labels implements Classifier. The returned slice is cached and shared;
// callers must not modify it.
func (nb *NaiveBayes) Labels() []string {
	if nb.sortedLabels != nil {
		return nb.sortedLabels
	}
	return sortedCopy(nb.labels)
}

// ---------------------------------------------------------------------------
// Softmax (multinomial logistic) regression
// ---------------------------------------------------------------------------

// LogisticRegression is a softmax-regression intent classifier over TF-IDF
// features, trained with mini-batchless SGD and L2 regularization. It is the
// Watson-Assistant-class model used in the experiments.
type LogisticRegression struct {
	Epochs int     // default 30
	Rate   float64 // initial learning rate, default 0.5
	L2     float64 // weight decay, default 1e-4
	Seed   int64   // shuffle seed, default 1

	tfidf   *TFIDF
	labels  []string
	labelID map[string]int
	w       [][]float64 // [label][feature]
	b       []float64   // [label]

	// wf is w flattened row-major into one contiguous block for the fused
	// inference path (fastpath.go). Built by compile(); nil only for
	// hand-assembled or untrained models.
	wf           []float64
	sortedLabels []string // Labels() result, cached at compile time
}

// NewLogisticRegression returns a classifier with the default
// hyperparameters used throughout the experiments.
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{Epochs: 30, Rate: 0.5, L2: 1e-4, Seed: 1}
}

// Train implements Classifier.
func (lr *LogisticRegression) Train(examples []Example) error {
	if len(examples) == 0 {
		return errors.New("nlu: no training examples")
	}
	if lr.Epochs <= 0 {
		lr.Epochs = 30
	}
	if lr.Rate <= 0 {
		lr.Rate = 0.5
	}
	// Featurize every example once, in parallel; the TF-IDF fit reduces
	// the shared features serially in corpus order and the per-example
	// transforms fan back out over index-disjoint slots. Both halves are
	// bit-identical to the serial pipeline at any GOMAXPROCS (and the
	// previous code re-featurized the whole corpus a second time here).
	feats := make([][]string, len(examples))
	par.Do(len(examples), func(i int) { feats[i] = Featurize(examples[i].Text) })
	lr.tfidf = fitTFIDFFeats(feats)
	lr.labelID = make(map[string]int)
	lr.labels = nil
	ys := make([]int, len(examples))
	for i, ex := range examples {
		li, ok := lr.labelID[ex.Intent]
		if !ok {
			li = len(lr.labels)
			lr.labelID[ex.Intent] = li
			lr.labels = append(lr.labels, ex.Intent)
		}
		ys[i] = li
	}
	xs := make([]SparseVec, len(examples))
	par.Do(len(examples), func(i int) { xs[i] = lr.tfidf.transformFeats(feats[i]) })
	nL, nF := len(lr.labels), lr.tfidf.Vocab.Len()
	lr.w = make([][]float64, nL)
	for i := range lr.w {
		lr.w[i] = make([]float64, nF)
	}
	lr.b = make([]float64, nL)
	rng := rand.New(rand.NewSource(lr.Seed))
	order := rng.Perm(len(examples))
	probs := make([]float64, nL)
	for epoch := 0; epoch < lr.Epochs; epoch++ {
		rate := lr.Rate / (1 + 0.1*float64(epoch))
		// reshuffle per epoch for SGD
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, i := range order {
			x, y := xs[i], ys[i]
			// forward
			maxz := math.Inf(-1)
			for li := 0; li < nL; li++ {
				probs[li] = x.Dot(lr.w[li]) + lr.b[li]
				if probs[li] > maxz {
					maxz = probs[li]
				}
			}
			sum := 0.0
			for li := 0; li < nL; li++ {
				probs[li] = math.Exp(probs[li] - maxz)
				sum += probs[li]
			}
			for li := 0; li < nL; li++ {
				probs[li] /= sum
			}
			// backward: grad = (p - 1{y}) * x, applied sparsely
			for li := 0; li < nL; li++ {
				g := probs[li]
				if li == y {
					g -= 1
				}
				if g == 0 {
					continue
				}
				wrow := lr.w[li]
				step := rate * g
				for k, fi := range x.Idx {
					wrow[fi] -= step * x.Val[k]
				}
				lr.b[li] -= step
			}
		}
		// weight decay applied once per epoch (cheaper than per-sample,
		// equivalent up to a rate rescaling)
		if lr.L2 > 0 {
			decay := 1 - lr.Rate*lr.L2
			for li := range lr.w {
				for fi := range lr.w[li] {
					lr.w[li][fi] *= decay
				}
			}
		}
	}
	lr.compile()
	return nil
}

// compile flattens the weight rows into one contiguous block and caches
// the sorted label slice. Idempotent; called at the end of Train and after
// decode.
func (lr *LogisticRegression) compile() {
	nF := lr.tfidf.Vocab.Len()
	lr.wf = make([]float64, len(lr.labels)*nF)
	for li, row := range lr.w {
		copy(lr.wf[li*nF:], row)
	}
	lr.sortedLabels = sortedCopy(lr.labels)
}

// Predict implements Classifier. It scores on the flattened weights via
// the pooled fused path — bit-identical to PredictReference, which
// TestFusedPredictMatchesReference pins.
func (lr *LogisticRegression) Predict(text string) Prediction {
	if len(lr.labels) == 0 {
		return Prediction{}
	}
	if lr.wf == nil {
		return lr.PredictReference(text)
	}
	s := getScratch()
	s.fillWords(text)
	p := softmaxPrediction(lr.labels, lr.fusedLogits(s))
	putScratch(s)
	return p
}

// PredictReference is the original Transform+Dot scoring path, retained as
// the differential-testing oracle for the compiled fast path.
func (lr *LogisticRegression) PredictReference(text string) Prediction {
	if len(lr.labels) == 0 {
		return Prediction{}
	}
	x := lr.tfidf.Transform(text)
	scores := make([]float64, len(lr.labels))
	for li := range lr.labels {
		scores[li] = x.Dot(lr.w[li]) + lr.b[li]
	}
	return softmaxPrediction(lr.labels, scores)
}

// Labels implements Classifier. The returned slice is cached and shared;
// callers must not modify it.
func (lr *LogisticRegression) Labels() []string {
	if lr.sortedLabels != nil {
		return lr.sortedLabels
	}
	return sortedCopy(lr.labels)
}

// ---------------------------------------------------------------------------

func softmaxPrediction(labels []string, logits []float64) Prediction {
	maxz := math.Inf(-1)
	for _, z := range logits {
		if z > maxz {
			maxz = z
		}
	}
	sum := 0.0
	probs := make([]float64, len(logits))
	for i, z := range logits {
		probs[i] = math.Exp(z - maxz)
		sum += probs[i]
	}
	p := Prediction{Scores: make([]IntentScore, len(labels))}
	for i := range labels {
		probs[i] /= sum
		p.Scores[i] = IntentScore{Intent: labels[i], Score: probs[i]}
	}
	sort.Slice(p.Scores, func(a, b int) bool {
		if p.Scores[a].Score != p.Scores[b].Score {
			return p.Scores[a].Score > p.Scores[b].Score
		}
		return p.Scores[a].Intent < p.Scores[b].Intent
	})
	p.Intent = p.Scores[0].Intent
	p.Confidence = p.Scores[0].Score
	return p
}

func sortedCopy(in []string) []string {
	out := make([]string, len(in))
	copy(out, in)
	sort.Strings(out)
	return out
}
