package nlu

import (
	"bytes"
	"strings"
	"testing"
)

func trainingExamples() []Example {
	return []Example{
		{"show me the precautions for aspirin", "Precautions of Drug"},
		{"precautions of ibuprofen", "Precautions of Drug"},
		{"what should I watch out for with cogentin", "Precautions of Drug"},
		{"dosage for amoxicillin", "Drug Dosage for Condition"},
		{"how much tazarotene should an adult take", "Drug Dosage for Condition"},
		{"dose of aspirin for headache", "Drug Dosage for Condition"},
		{"drugs that treat psoriasis", "Drugs That Treat Condition"},
		{"what treats acne", "Drugs That Treat Condition"},
		{"which medications help with fever", "Drugs That Treat Condition"},
	}
}

var probeUtterances = []string{
	"precautions for aspirin",
	"what is the dose of tazarotene",
	"show me drugs that treat psoriasis in children",
	"something entirely unrelated to medicine",
	"",
}

// assertIdenticalPredictions checks intent, confidence, and the full
// score vector are bit-identical between two classifiers.
func assertIdenticalPredictions(t *testing.T, want, got Classifier, texts []string) {
	t.Helper()
	for _, text := range texts {
		pw, pg := want.Predict(text), got.Predict(text)
		if pw.Intent != pg.Intent || pw.Confidence != pg.Confidence {
			t.Fatalf("Predict(%q): (%q, %v) != (%q, %v)", text, pg.Intent, pg.Confidence, pw.Intent, pw.Confidence)
		}
		if len(pw.Scores) != len(pg.Scores) {
			t.Fatalf("Predict(%q): %d scores != %d", text, len(pg.Scores), len(pw.Scores))
		}
		for i := range pw.Scores {
			if pw.Scores[i] != pg.Scores[i] {
				t.Fatalf("Predict(%q): score[%d] %v != %v", text, i, pg.Scores[i], pw.Scores[i])
			}
		}
	}
}

func TestNaiveBayesRoundTrip(t *testing.T) {
	nb := NewNaiveBayes(0.5)
	if err := nb.Train(trainingExamples()); err != nil {
		t.Fatal(err)
	}
	data, err := MarshalClassifier(nb)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := UnmarshalClassifier(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := loaded.(*NaiveBayes); !ok {
		t.Fatalf("loaded %T, want *NaiveBayes", loaded)
	}
	assertIdenticalPredictions(t, nb, loaded, probeUtterances)
}

func TestLogisticRegressionRoundTrip(t *testing.T) {
	lr := NewLogisticRegression()
	if err := lr.Train(trainingExamples()); err != nil {
		t.Fatal(err)
	}
	data, err := MarshalClassifier(lr)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := UnmarshalClassifier(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := loaded.(*LogisticRegression); !ok {
		t.Fatalf("loaded %T, want *LogisticRegression", loaded)
	}
	assertIdenticalPredictions(t, lr, loaded, probeUtterances)
}

func TestMarshalClassifierDeterministic(t *testing.T) {
	lr := NewLogisticRegression()
	if err := lr.Train(trainingExamples()); err != nil {
		t.Fatal(err)
	}
	a, err := MarshalClassifier(lr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalClassifier(lr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("MarshalClassifier is not deterministic")
	}
}

func TestMarshalUntrainedClassifier(t *testing.T) {
	if _, err := MarshalClassifier(NewNaiveBayes(1)); err == nil {
		t.Fatal("expected error marshalling untrained naive bayes")
	}
	if _, err := MarshalClassifier(NewLogisticRegression()); err == nil {
		t.Fatal("expected error marshalling untrained logistic regression")
	}
}

func TestUnmarshalClassifierRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"version":1,`,
		"bad version":     `{"version":99,"kind":"naive-bayes"}`,
		"unknown kind":    `{"version":1,"kind":"transformer"}`,
		"missing payload": `{"version":1,"kind":"naive-bayes"}`,
		// one prior for two labels ("AAAAAAAAAAA=" is one float64 of zero bits)
		"inconsistent": `{"version":1,"kind":"naive-bayes","naiveBayes":` +
			`{"alpha":1,"labels":["a","b"],"vocab":[],"logPrior":"AAAAAAAAAAA=","logLik":[""],"unkLogLik":""}}`,
		"numeric floats": `{"version":1,"kind":"naive-bayes","naiveBayes":` +
			`{"alpha":1,"labels":["a"],"vocab":[],"logPrior":[0],"logLik":[[]],"unkLogLik":[0]}}`,
		"bad base64": `{"version":1,"kind":"naive-bayes","naiveBayes":` +
			`{"alpha":1,"labels":["a"],"vocab":[],"logPrior":"!!!","logLik":[""],"unkLogLik":""}}`,
		"odd byte count": `{"version":1,"kind":"naive-bayes","naiveBayes":` +
			`{"alpha":1,"labels":["a"],"vocab":[],"logPrior":"AAAA","logLik":[""],"unkLogLik":""}}`,
	}
	for name, data := range cases {
		if _, err := UnmarshalClassifier([]byte(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRecognizerRoundTrip(t *testing.T) {
	r := NewRecognizer()
	r.Add("Drug", "Benztropine Mesylate", "cogentin")
	r.Add("Drug", "Calcium Carbonate")
	r.Add("Drug", "Calcium Citrate")
	r.Add("Indication", "Fever", "high temperature")
	data, err := MarshalRecognizer(r)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := UnmarshalRecognizer(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range []string{
		"precautions for cogentin",
		"is calcium safe",
		"cogentim and high temperature", // fuzzy + multiword synonym
	} {
		want := r.Recognize(text)
		got := loaded.Recognize(text)
		if len(want) != len(got) {
			t.Fatalf("Recognize(%q): %d mentions != %d", text, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if w.Type != g.Type || w.Value != g.Value || w.Start != g.Start || w.End != g.End ||
				w.Fuzzy != g.Fuzzy || w.Partial != g.Partial || strings.Join(w.Candidates, "|") != strings.Join(g.Candidates, "|") {
				t.Fatalf("Recognize(%q)[%d]: %+v != %+v", text, i, g, w)
			}
		}
	}
}

func TestUnmarshalRecognizerRejects(t *testing.T) {
	if _, err := UnmarshalRecognizer([]byte(`{"version":2,"entries":[]}`)); err == nil {
		t.Fatal("expected version error")
	}
	if _, err := UnmarshalRecognizer([]byte(`{`)); err == nil {
		t.Fatal("expected parse error")
	}
}
