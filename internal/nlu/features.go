package nlu

import (
	"math"
	"sort"

	"ontoconv/internal/par"
)

// Example is one labelled training utterance.
type Example struct {
	Text   string
	Intent string
}

// Vocabulary maps feature strings to dense indices.
type Vocabulary struct {
	index map[string]int
	items []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[string]int)}
}

// Add interns the feature and returns its index.
func (v *Vocabulary) Add(f string) int {
	if i, ok := v.index[f]; ok {
		return i
	}
	i := len(v.items)
	v.index[f] = i
	v.items = append(v.items, f)
	return i
}

// Lookup returns the index of f, or -1 if unknown.
func (v *Vocabulary) Lookup(f string) int {
	if i, ok := v.index[f]; ok {
		return i
	}
	return -1
}

// Len returns the vocabulary size.
func (v *Vocabulary) Len() int { return len(v.items) }

// Feature returns the feature string at index i.
func (v *Vocabulary) Feature(i int) string { return v.items[i] }

// Featurize extracts classifier features from an utterance: stemmed
// content-word unigrams plus adjacent-content-word bigrams. Bigrams let
// the classifier separate patterns like "dose adjustment" from "dosage";
// stemming collapses singular/plural so "precaution" matches training
// examples that said "precautions".
func Featurize(text string) []string {
	words := ContentWords(text)
	for i, w := range words {
		words[i] = Stem(w)
	}
	feats := make([]string, 0, 2*len(words))
	feats = append(feats, words...)
	for i := 0; i+1 < len(words); i++ {
		feats = append(feats, words[i]+"_"+words[i+1])
	}
	return feats
}

// Stem applies a light suffix stemmer: plural stripping followed by
// -ing/-ed collapsing, so "warnings", "warning" and "warn" coincide. It
// deliberately under-stems: classification only needs singular/plural and
// simple inflection variants to meet.
func Stem(w string) string {
	w = stripPlural(w)
	n := len(w)
	switch {
	case n > 5 && hasSuffix(w, "ing"):
		return w[:n-3]
	case n > 5 && hasSuffix(w, "ed"):
		return w[:n-2]
	default:
		return w
	}
}

func stripPlural(w string) string {
	n := len(w)
	switch {
	case n > 4 && hasSuffix(w, "ies"):
		return w[:n-3] + "y"
	case n > 4 && hasSuffix(w, "sses"):
		return w[:n-2]
	case n > 4 && (hasSuffix(w, "ches") || hasSuffix(w, "shes") || hasSuffix(w, "xes") || hasSuffix(w, "zes")):
		return w[:n-2]
	case n > 3 && hasSuffix(w, "s") && !hasSuffix(w, "ss") && !hasSuffix(w, "us") && !hasSuffix(w, "is"):
		return w[:n-1]
	default:
		return w
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// SparseVec is a sparse feature vector: sorted index/value pairs.
type SparseVec struct {
	Idx []int
	Val []float64
}

// Dot computes the dot product with a dense weight row.
func (s SparseVec) Dot(w []float64) float64 {
	sum := 0.0
	for k, i := range s.Idx {
		if i < len(w) {
			sum += s.Val[k] * w[i]
		}
	}
	return sum
}

// TFIDF builds term-frequency/inverse-document-frequency vectors over a
// corpus, L2-normalized. Unknown features at transform time are dropped.
type TFIDF struct {
	Vocab *Vocabulary
	IDF   []float64
}

// FitTFIDF learns the vocabulary and IDF weights from the corpus. Feature
// extraction (the dominant cost) fans out across cores with a deterministic
// reduction: each worker fills only its own document slots, and the
// vocabulary/document-frequency reduce then runs serially in corpus order,
// so the fitted model is bit-identical at any GOMAXPROCS.
func FitTFIDF(corpus []string) *TFIDF {
	feats := make([][]string, len(corpus))
	par.Do(len(corpus), func(i int) { feats[i] = Featurize(corpus[i]) })
	return fitTFIDFFeats(feats)
}

// fitTFIDFFeats is the serial in-order reduce over pre-extracted features:
// vocabulary indices follow first-encounter order across documents, exactly
// as the original single-pass fit assigned them.
func fitTFIDFFeats(featDocs [][]string) *TFIDF {
	v := NewVocabulary()
	df := []int{}
	for _, fs := range featDocs {
		seen := map[int]bool{}
		for _, f := range fs {
			i := v.Add(f)
			if i == len(df) {
				df = append(df, 0)
			}
			if !seen[i] {
				seen[i] = true
				df[i]++
			}
		}
	}
	n := float64(len(featDocs))
	idf := make([]float64, v.Len())
	for i := range idf {
		idf[i] = math.Log((n+1)/(float64(df[i])+1)) + 1
	}
	return &TFIDF{Vocab: v, IDF: idf}
}

// Transform converts one document into an L2-normalized TF-IDF vector.
func (t *TFIDF) Transform(doc string) SparseVec {
	return t.transformFeats(Featurize(doc))
}

// transformFeats vectorizes pre-extracted features; Train uses it to share
// one Featurize pass between the fit and the transform of each example.
func (t *TFIDF) transformFeats(feats []string) SparseVec {
	counts := map[int]float64{}
	for _, f := range feats {
		if i := t.Vocab.Lookup(f); i >= 0 {
			counts[i]++
		}
	}
	idx := make([]int, 0, len(counts))
	for i := range counts {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	val := make([]float64, len(idx))
	norm := 0.0
	for k, i := range idx {
		val[k] = counts[i] * t.IDF[i]
		norm += val[k] * val[k]
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for k := range val {
			val[k] /= norm
		}
	}
	return SparseVec{Idx: idx, Val: val}
}
