package nlu

import (
	"reflect"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	toks := Tokenize("Show me the Precautions for Benazepril?")
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.Text)
	}
	want := []string{"show", "me", "the", "precautions", "for", "benazepril"}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("Tokenize = %v", texts)
	}
	// spans point back into the source
	src := "Show me the Precautions for Benazepril?"
	for _, tk := range toks {
		if src[tk.Start:tk.End] != tk.Raw {
			t.Fatalf("span %d:%d = %q, want %q", tk.Start, tk.End, src[tk.Start:tk.End], tk.Raw)
		}
	}
}

func TestTokenizeJoiners(t *testing.T) {
	cases := map[string][]string{
		"y-site compatibility":  {"y-site", "compatibility"},
		"St John's Wort":        {"st", "john's", "wort"},
		"apply 0.05% gel":       {"apply", "0.05%", "gel"},
		"drug-drug interaction": {"drug-drug", "interaction"},
		"":                      nil,
		"  !!  ":                nil,
		"trailing- dash":        {"trailing", "dash"},
	}
	for in, want := range cases {
		got := Words(in)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Words(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestContentWords(t *testing.T) {
	got := ContentWords("show me the precautions for the drug")
	want := []string{"show", "precautions", "drug"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ContentWords = %v", got)
	}
}

func TestNormalizePhrase(t *testing.T) {
	if got := NormalizePhrase("  Black-Box   WARNING "); got != "black-box warning" {
		t.Fatalf("NormalizePhrase = %q", got)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"precautions":  "precaution",
		"pregnancies":  "pregnancy",
		"classes":      "class",
		"uses":         "use",
		"status":       "status",
		"pass":         "pass",
		"this":         "this",
		"dosing":       "dos",
		"adjusted":     "adjust",
		"drug":         "drug",
		"effects":      "effect",
		"interactions": "interaction",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemConsistentSingularPlural(t *testing.T) {
	pairs := [][2]string{
		{"precaution", "precautions"},
		{"warning", "warnings"},
		{"pregnancy", "pregnancies"},
		{"interaction", "interactions"},
	}
	for _, p := range pairs {
		if Stem(p[0]) != Stem(p[1]) {
			t.Errorf("Stem(%q)=%q != Stem(%q)=%q", p[0], Stem(p[0]), p[1], Stem(p[1]))
		}
	}
}

func TestFeaturizeBigrams(t *testing.T) {
	feats := Featurize("dose adjustment for aspirin")
	// stemmed unigrams + bigrams
	want := map[string]bool{
		"dose": true, "adjustment": true, "aspirin": true,
		"dose_adjustment": true, "adjustment_aspirin": true,
	}
	if len(feats) != len(want) {
		t.Fatalf("Featurize = %v", feats)
	}
	for _, f := range feats {
		if !want[f] {
			t.Fatalf("unexpected feature %q in %v", f, feats)
		}
	}
}
