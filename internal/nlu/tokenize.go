// Package nlu implements the natural-language-understanding substrate the
// conversation space runs on: tokenisation, feature extraction, intent
// classifiers with confidence scores, evaluation metrics, and a dictionary
// entity recogniser with synonym, fuzzy and partial matching.
//
// It is the stand-in for the classification half of IBM Watson Assistant
// (paper §2, §7): the conversation space uploads intents with training
// examples, a classifier is trained, and at runtime each utterance yields
// an intent with a confidence score plus the entities mentioned.
package nlu

import (
	"strings"
	"unicode"
)

// Token is one token with its source span.
type Token struct {
	Text  string // normalized (lowercased) text
	Raw   string // original surface form
	Start int    // byte offset in the original string
	End   int    // byte offset one past the token
}

// Tokenize splits text into lowercase word tokens. Alphanumeric runs are
// tokens; intra-word hyphens, apostrophes and periods (as in "y-site",
// "St John's", "0.05%") are kept inside the token; everything else is a
// separator.
func Tokenize(text string) []Token {
	var toks []Token
	i := 0
	n := len(text)
	for i < n {
		r := rune(text[i])
		if !isWordRune(r) {
			i++
			continue
		}
		start := i
		for i < n {
			c := rune(text[i])
			if isWordRune(c) {
				i++
				continue
			}
			// keep joiners when flanked by word runes
			if (c == '-' || c == '\'' || c == '.') && i+1 < n && isWordRune(rune(text[i+1])) {
				i += 2
				continue
			}
			break
		}
		raw := text[start:i]
		toks = append(toks, Token{Text: strings.ToLower(raw), Raw: raw, Start: start, End: i})
	}
	return toks
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '%'
}

// Words returns just the normalized token texts.
func Words(text string) []string {
	toks := Tokenize(text)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

// stopwords are excluded from classifier features (they carry no intent
// signal) but NOT from entity matching, where surface forms matter.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "for": true, "to": true,
	"in": true, "on": true, "at": true, "is": true, "are": true, "be": true,
	"and": true, "or": true, "me": true, "my": true, "i": true, "you": true,
	"it": true, "its": true, "with": true, "that": true, "this": true,
	"do": true, "does": true, "can": true, "please": true,
}

// ContentWords returns the normalized tokens with stopwords removed.
func ContentWords(text string) []string {
	var out []string
	for _, t := range Tokenize(text) {
		if !stopwords[t.Text] {
			out = append(out, t.Text)
		}
	}
	return out
}

// NormalizePhrase canonicalizes a dictionary phrase for matching: lowercase
// tokens joined by single spaces.
func NormalizePhrase(s string) string {
	return strings.Join(Words(s), " ")
}
