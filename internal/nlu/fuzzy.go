package nlu

// DamerauLevenshtein computes the optimal-string-alignment edit distance
// between two strings (insert, delete, substitute, adjacent transpose).
// The entity recogniser uses it to tolerate the "heavy misspellings" the
// paper's SMEs observed in real user input (§7.2).
func DamerauLevenshtein(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m { // transposition
					m = v
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// fuzzyBudget returns the edit-distance tolerance for a word of the given
// length: exact for short words (to avoid "acne"/"ache" style collisions),
// 1 edit for medium words, 2 for long ones.
func fuzzyBudget(n int) int {
	switch {
	case n < 5:
		return 0
	case n < 10:
		return 1
	default:
		return 2
	}
}
