package nlu

import (
	"reflect"
	"testing"
	"testing/quick"
)

func medicalRecognizer() *Recognizer {
	r := NewRecognizer()
	r.Add("Drug", "Aspirin", "Bayer Aspirin", "Acetylsalicylic Acid")
	r.Add("Drug", "Benztropine Mesylate", "Cogentin")
	r.Add("Drug", "Calcium Carbonate", "Tums")
	r.Add("Drug", "Calcium Citrate")
	r.Add("Drug", "Tazarotene", "Tazorac")
	r.Add("Indication", "Psoriasis")
	r.Add("Indication", "Plaque Psoriasis")
	r.Add("AgeGroup", "pediatric", "children", "kids")
	r.Add("Concepts", "AdverseEffect", "adverse effects", "side effects")
	return r
}

func TestRecognizeExact(t *testing.T) {
	r := medicalRecognizer()
	ms := r.Recognize("show me the precautions for Aspirin")
	if len(ms) != 1 || ms[0].Type != "Drug" || ms[0].Value != "Aspirin" {
		t.Fatalf("mentions = %+v", ms)
	}
	if ms[0].Surface != "Aspirin" || ms[0].Fuzzy || ms[0].Partial {
		t.Fatalf("mention detail = %+v", ms[0])
	}
}

func TestRecognizeSynonymMapsToCanonical(t *testing.T) {
	r := medicalRecognizer()
	ms := r.Recognize("what are the side effects of cogentin")
	var drug, concept *Mention
	for i := range ms {
		switch ms[i].Type {
		case "Drug":
			drug = &ms[i]
		case "Concepts":
			concept = &ms[i]
		}
	}
	if drug == nil || drug.Value != "Benztropine Mesylate" {
		t.Fatalf("cogentin not resolved: %+v", ms)
	}
	if concept == nil || concept.Value != "AdverseEffect" {
		t.Fatalf("side effects not resolved: %+v", ms)
	}
}

func TestRecognizeLongestMatchWins(t *testing.T) {
	r := medicalRecognizer()
	ms := r.Recognize("dosing for plaque psoriasis please")
	if len(ms) != 1 || ms[0].Value != "Plaque Psoriasis" {
		t.Fatalf("longest match failed: %+v", ms)
	}
}

func TestRecognizeFuzzyMisspelling(t *testing.T) {
	r := medicalRecognizer()
	// one edit: "asprin"
	ms := r.Recognize("precautions for asprin")
	found := false
	for _, m := range ms {
		if m.Type == "Drug" && m.Value == "Aspirin" && m.Fuzzy {
			found = true
		}
	}
	if !found {
		t.Fatalf("misspelling not recovered: %+v", ms)
	}
	// two edits on a long word: "tazaroten" -> missing e (1 edit, len 9 -> budget 1)
	ms = r.Recognize("dosage for tazaroten")
	found = false
	for _, m := range ms {
		if m.Value == "Tazarotene" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tazaroten not recovered: %+v", ms)
	}
}

func TestRecognizeShortWordsNotFuzzy(t *testing.T) {
	r := medicalRecognizer()
	// "kid" vs "kids": short words get no fuzz budget; "kid" itself is
	// not in the dictionary.
	ms := r.Recognize("for a kip")
	for _, m := range ms {
		if m.Fuzzy {
			t.Fatalf("short word fuzzed: %+v", m)
		}
	}
}

func TestRecognizePartialCandidates(t *testing.T) {
	r := medicalRecognizer()
	ms := r.Recognize("calcium")
	if len(ms) != 1 {
		t.Fatalf("mentions = %+v", ms)
	}
	m := ms[0]
	if !m.Partial || m.Type != "Drug" {
		t.Fatalf("partial = %+v", m)
	}
	if !reflect.DeepEqual(m.Candidates, []string{"Calcium Carbonate", "Calcium Citrate"}) {
		t.Fatalf("candidates = %v", m.Candidates)
	}
}

func TestRecognizeSingleCandidatePartialNotAmbiguous(t *testing.T) {
	r := medicalRecognizer()
	ms := r.Recognize("benztropine")
	if len(ms) != 1 {
		t.Fatalf("mentions = %+v", ms)
	}
	if ms[0].Partial {
		t.Fatalf("single-candidate partial should resolve: %+v", ms[0])
	}
	if ms[0].Value != "Benztropine Mesylate" {
		t.Fatalf("resolved to %q", ms[0].Value)
	}
}

func TestRecognizeNonOverlapping(t *testing.T) {
	r := medicalRecognizer()
	ms := r.Recognize("does Aspirin help psoriasis in children")
	if len(ms) != 3 {
		t.Fatalf("mentions = %+v", ms)
	}
	// ordered by position, non-overlapping
	for i := 1; i < len(ms); i++ {
		if ms[i].Start < ms[i-1].End {
			t.Fatalf("overlap: %+v", ms)
		}
	}
}

func TestRecognizeMultiTypeSurface(t *testing.T) {
	r := NewRecognizer()
	r.Add("Indication", "Fever")
	r.Add("Finding", "Fever")
	ms := r.Recognize("fever")
	if len(ms) != 2 {
		t.Fatalf("both readings expected: %+v", ms)
	}
}

func TestRecognizeEmpty(t *testing.T) {
	r := medicalRecognizer()
	if ms := r.Recognize(""); ms != nil {
		t.Fatalf("empty input = %+v", ms)
	}
	if ms := r.Recognize("nothing known here at all"); ms != nil {
		t.Fatalf("no-match input = %+v", ms)
	}
}

func TestAddIdempotent(t *testing.T) {
	r := NewRecognizer()
	r.Add("Drug", "Aspirin", "Bayer")
	r.Add("Drug", "Aspirin", "Bayer")
	ms := r.Recognize("bayer")
	if len(ms) != 1 {
		t.Fatalf("duplicate dictionary entries: %+v", ms)
	}
}

func TestMentionsOfType(t *testing.T) {
	r := medicalRecognizer()
	ms := r.Recognize("Aspirin for psoriasis")
	drugs := MentionsOfType(ms, "Drug")
	if len(drugs) != 1 || drugs[0].Value != "Aspirin" {
		t.Fatalf("MentionsOfType = %+v", drugs)
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "xyz", 3},
		{"kitten", "sitting", 3},
		{"aspirin", "asprin", 1},
		{"ab", "ba", 1}, // transposition
		{"abcd", "acbd", 1},
		{"ca", "abc", 3}, // OSA distance
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DL(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Properties (quick): symmetry, identity, bound by max length.
func TestDamerauLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true
		}
		d1, d2 := DamerauLevenshtein(a, b), DamerauLevenshtein(b, a)
		if d1 != d2 {
			return false
		}
		if DamerauLevenshtein(a, a) != 0 {
			return false
		}
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		return d1 <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzyBudget(t *testing.T) {
	if fuzzyBudget(4) != 0 || fuzzyBudget(5) != 1 || fuzzyBudget(9) != 1 || fuzzyBudget(10) != 2 {
		t.Fatal("fuzzy budgets wrong")
	}
}
