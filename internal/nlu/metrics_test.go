package nlu

import (
	"math"
	"strings"
	"testing"
)

// fixedClassifier predicts from a lookup table.
type fixedClassifier map[string]string

func (f fixedClassifier) Train([]Example) error { return nil }
func (f fixedClassifier) Predict(text string) Prediction {
	return Prediction{Intent: f[text], Confidence: 1}
}
func (f fixedClassifier) Labels() []string { return nil }

func TestEvaluateHandComputed(t *testing.T) {
	// gold: a a a b b ; predictions: a a b b a
	clf := fixedClassifier{
		"t1": "a", "t2": "a", "t3": "b",
		"t4": "b", "t5": "a",
	}
	test := []Example{
		{"t1", "a"}, {"t2", "a"}, {"t3", "a"},
		{"t4", "b"}, {"t5", "b"},
	}
	ev := Evaluate(clf, test)
	if math.Abs(ev.Accuracy-0.6) > 1e-9 {
		t.Fatalf("accuracy = %v, want 0.6", ev.Accuracy)
	}
	// class a: tp=2 fp=1 fn=1 -> P=2/3 R=2/3 F1=2/3
	var a, b ClassMetrics
	for _, m := range ev.PerIntent {
		switch m.Intent {
		case "a":
			a = m
		case "b":
			b = m
		}
	}
	if math.Abs(a.Precision-2.0/3) > 1e-9 || math.Abs(a.Recall-2.0/3) > 1e-9 || math.Abs(a.F1-2.0/3) > 1e-9 {
		t.Fatalf("class a = %+v", a)
	}
	// class b: tp=1 fp=1 fn=1 -> P=R=F1=0.5
	if math.Abs(b.F1-0.5) > 1e-9 {
		t.Fatalf("class b = %+v", b)
	}
	wantMacro := (2.0/3 + 0.5) / 2
	if math.Abs(ev.MacroF1-wantMacro) > 1e-9 {
		t.Fatalf("macroF1 = %v, want %v", ev.MacroF1, wantMacro)
	}
	// micro-F1 equals accuracy in single-label classification
	if math.Abs(ev.MicroF1-ev.Accuracy) > 1e-9 {
		t.Fatalf("microF1 = %v, accuracy = %v", ev.MicroF1, ev.Accuracy)
	}
	if ev.Confusion["a"]["b"] != 1 || ev.Confusion["b"]["a"] != 1 {
		t.Fatalf("confusion = %v", ev.Confusion)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	ev := Evaluate(fixedClassifier{}, nil)
	if ev.Accuracy != 0 || ev.MacroF1 != 0 {
		t.Fatalf("empty evaluation = %+v", ev)
	}
}

func TestIntentF1Lookup(t *testing.T) {
	clf := fixedClassifier{"x": "a"}
	ev := Evaluate(clf, []Example{{"x", "a"}})
	if ev.IntentF1("a") != 1 {
		t.Fatalf("IntentF1(a) = %v", ev.IntentF1("a"))
	}
	if ev.IntentF1("ghost") != 0 {
		t.Fatal("missing intent should be 0")
	}
}

func TestEvaluationString(t *testing.T) {
	clf := fixedClassifier{"x": "a"}
	ev := Evaluate(clf, []Example{{"x", "a"}})
	s := ev.String()
	if !strings.Contains(s, "accuracy=1.000") || !strings.Contains(s, "a") {
		t.Fatalf("String() = %q", s)
	}
}

func TestTrainTestSplitStratified(t *testing.T) {
	var examples []Example
	for i := 0; i < 50; i++ {
		examples = append(examples, Example{Text: "a" + string(rune(i)), Intent: "A"})
	}
	for i := 0; i < 10; i++ {
		examples = append(examples, Example{Text: "b" + string(rune(i)), Intent: "B"})
	}
	train, test := TrainTestSplit(examples, 5)
	if len(train)+len(test) != 60 {
		t.Fatalf("split sizes %d+%d", len(train), len(test))
	}
	countIntent := func(xs []Example, intent string) int {
		n := 0
		for _, x := range xs {
			if x.Intent == intent {
				n++
			}
		}
		return n
	}
	if got := countIntent(test, "A"); got != 10 {
		t.Fatalf("test A = %d, want every 5th of 50", got)
	}
	if got := countIntent(test, "B"); got != 2 {
		t.Fatalf("test B = %d, want 2", got)
	}
}

func TestTrainTestSplitMinimum(t *testing.T) {
	examples := []Example{{"a", "x"}, {"b", "x"}, {"c", "x"}, {"d", "x"}}
	train, test := TrainTestSplit(examples, 0) // clamped to 2
	if len(test) != 2 || len(train) != 2 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
}
