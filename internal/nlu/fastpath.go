package nlu

import (
	"math"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"unicode/utf8"
)

// This file is the compiled inference fast path. The trained classifiers
// keep their sparse, map-backed training representation, but at the end of
// Train (and after decode) compile() flattens the weights into one dense
// row-major matrix per model, and Predict/PredictTop score an utterance by
// walking contiguous rows with a fused tokenize→stem→vocab-lookup pass that
// borrows all working memory from a sync.Pool. The contract, pinned by
// TestFusedPredictMatchesReference, is bit-identical output: every
// floating-point addition happens in exactly the order the reference path
// (PredictReference) performs it.

// span locates one stemmed content word inside scratch.buf.
type span struct {
	off, n int32
}

// scratch is the per-call working set of the fused path: a flat byte
// buffer holding every lowered+stemmed content word, the feature-id list,
// and dense accumulators. All slices are length-reset and reused; counts
// is kept all-zero between uses (entries touched during a transform are
// re-zeroed before the scratch is returned to the pool).
type scratch struct {
	buf    []byte    // flat storage for lowered, stemmed content words
	words  []span    // one span per content word, in utterance order
	feat   []byte    // bigram key assembly buffer
	ids    []int32   // feature ids in Featurize order (NB: unknown -> nF)
	idx    []int32   // touched feature indices (LR transform)
	val    []float64 // TF-IDF values aligned with idx
	counts []float64 // dense term counts, all-zero invariant between uses
	logits []float64
	probs  []float64
}

var (
	scratchPool sync.Pool
	scratchGets atomic.Uint64
	scratchNews atomic.Uint64
)

func getScratch() *scratch {
	scratchGets.Add(1)
	if v := scratchPool.Get(); v != nil {
		return v.(*scratch)
	}
	scratchNews.Add(1)
	return &scratch{}
}

func putScratch(s *scratch) { scratchPool.Put(s) }

// ScratchStats reports cumulative fused-path scratch usage: how many times
// a scratch was checked out and how many checkouts had to allocate a fresh
// one (pool miss). Exposed as gauges on the agent metrics registry.
func ScratchStats() (gets, allocs uint64) {
	return scratchGets.Load(), scratchNews.Load()
}

// growF returns s resized to n, reallocating only when capacity is short.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// fillWords runs the fused equivalent of ContentWords+Stem: one pass over
// the utterance that tokenizes exactly like Tokenize (same byte-wise word
// runes and joiner handling), lowercases into s.buf, drops stopwords, and
// stems in place. It produces the same word sequence Featurize sees,
// without the intermediate []Token or []string.
func (s *scratch) fillWords(text string) {
	s.buf = s.buf[:0]
	s.words = s.words[:0]
	i, n := 0, len(text)
	for i < n {
		if !isWordRune(rune(text[i])) {
			i++
			continue
		}
		start := i
		for i < n {
			c := rune(text[i])
			if isWordRune(c) {
				i++
				continue
			}
			if (c == '-' || c == '\'' || c == '.') && i+1 < n && isWordRune(rune(text[i+1])) {
				i += 2
				continue
			}
			break
		}
		raw := text[start:i]
		off := len(s.buf)
		ascii := true
		for j := 0; j < len(raw); j++ {
			if raw[j] >= utf8.RuneSelf {
				ascii = false
				break
			}
		}
		if ascii {
			for j := 0; j < len(raw); j++ {
				c := raw[j]
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				}
				s.buf = append(s.buf, c)
			}
		} else {
			// Rare non-ASCII token: defer to strings.ToLower so the result
			// matches Tokenize byte for byte.
			s.buf = append(s.buf, strings.ToLower(raw)...)
		}
		if stopwords[string(s.buf[off:])] {
			s.buf = s.buf[:off]
			continue
		}
		wl := stemBytes(s.buf[off:])
		s.buf = s.buf[:off+wl]
		s.words = append(s.words, span{off: int32(off), n: int32(wl)})
	}
}

// stemBytes applies Stem (stripPlural then -ing/-ed collapsing) in place
// and returns the stemmed length. The only rewrite ("ies" -> "y") happens
// inside the word's own storage, so the flat buffer stays contiguous.
func stemBytes(w []byte) int {
	n := len(w)
	switch {
	case n > 4 && bytesSuffix(w[:n], "ies"):
		w[n-3] = 'y'
		n -= 2
	case n > 4 && bytesSuffix(w[:n], "sses"):
		n -= 2
	case n > 4 && (bytesSuffix(w[:n], "ches") || bytesSuffix(w[:n], "shes") || bytesSuffix(w[:n], "xes") || bytesSuffix(w[:n], "zes")):
		n -= 2
	case n > 3 && bytesSuffix(w[:n], "s") && !bytesSuffix(w[:n], "ss") && !bytesSuffix(w[:n], "us") && !bytesSuffix(w[:n], "is"):
		n--
	}
	switch {
	case n > 5 && bytesSuffix(w[:n], "ing"):
		n -= 3
	case n > 5 && bytesSuffix(w[:n], "ed"):
		n -= 2
	}
	return n
}

func bytesSuffix(w []byte, suf string) bool {
	if len(w) < len(suf) {
		return false
	}
	return string(w[len(w)-len(suf):]) == suf
}

// lookupBytes is Lookup without the string allocation: the string(f)
// conversion used directly as a map key does not escape.
func (v *Vocabulary) lookupBytes(f []byte) int {
	if i, ok := v.index[string(f)]; ok {
		return i
	}
	return -1
}

// bigram assembles the "w1_w2" feature key for words k and k+1 in s.feat.
func (s *scratch) bigram(k int) []byte {
	w1, w2 := s.words[k], s.words[k+1]
	s.feat = append(s.feat[:0], s.buf[w1.off:w1.off+w1.n]...)
	s.feat = append(s.feat, '_')
	s.feat = append(s.feat, s.buf[w2.off:w2.off+w2.n]...)
	return s.feat
}

// fusedLogits scores the words already in s against the compiled NB
// matrix. Unknown features resolve to the sentinel column nF, which holds
// unkLogLik, so the per-label addition sequence (prior, then every feature
// in Featurize order) is exactly the reference path's.
func (nb *NaiveBayes) fusedLogits(s *scratch) []float64 {
	nF := nb.vocab.Len()
	s.ids = s.ids[:0]
	for _, w := range s.words {
		fi := nb.vocab.lookupBytes(s.buf[w.off : w.off+w.n])
		if fi < 0 {
			fi = nF
		}
		s.ids = append(s.ids, int32(fi))
	}
	for k := 0; k+1 < len(s.words); k++ {
		fi := nb.vocab.lookupBytes(s.bigram(k))
		if fi < 0 {
			fi = nF
		}
		s.ids = append(s.ids, int32(fi))
	}
	nL := len(nb.labels)
	s.logits = growF(s.logits, nL)
	stride := nF + 1
	for li := 0; li < nL; li++ {
		row := nb.mat[li*stride : (li+1)*stride]
		z := nb.logPrior[li]
		for _, id := range s.ids {
			z += row[id]
		}
		s.logits[li] = z
	}
	return s.logits
}

// fusedLogits scores the words already in s against the flattened LR
// weights, reproducing TFIDF.Transform (dense counts, ascending-index
// TF-IDF, L2 normalization) and the ascending-index dot product bit for
// bit.
func (lr *LogisticRegression) fusedLogits(s *scratch) []float64 {
	v := lr.tfidf.Vocab
	nF := v.Len()
	if cap(s.counts) < nF {
		s.counts = make([]float64, nF)
	}
	counts := s.counts[:nF]
	s.idx = s.idx[:0]
	for _, w := range s.words {
		if fi := v.lookupBytes(s.buf[w.off : w.off+w.n]); fi >= 0 {
			if counts[fi] == 0 {
				s.idx = append(s.idx, int32(fi))
			}
			counts[fi]++
		}
	}
	for k := 0; k+1 < len(s.words); k++ {
		if fi := v.lookupBytes(s.bigram(k)); fi >= 0 {
			if counts[fi] == 0 {
				s.idx = append(s.idx, int32(fi))
			}
			counts[fi]++
		}
	}
	slices.Sort(s.idx)
	s.val = growF(s.val, len(s.idx))
	norm := 0.0
	for k, fi := range s.idx {
		x := counts[fi] * lr.tfidf.IDF[fi]
		s.val[k] = x
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for k := range s.val {
			s.val[k] /= norm
		}
	}
	// Restore the all-zero invariant before the scratch goes back to the
	// pool.
	for _, fi := range s.idx {
		counts[fi] = 0
	}
	nL := len(lr.labels)
	s.logits = growF(s.logits, nL)
	for li := 0; li < nL; li++ {
		row := lr.wf[li*nF : (li+1)*nF]
		sum := 0.0
		for k, fi := range s.idx {
			sum += s.val[k] * row[fi]
		}
		s.logits[li] = sum + lr.b[li]
	}
	return s.logits
}

// softmaxTop is softmaxPrediction minus the Scores slice: same maxz scan,
// same exponentiation and normalization order, and the same winner — the
// highest posterior, ties broken toward the lexicographically smaller
// intent (what the reference sort puts at Scores[0]).
func softmaxTop(labels []string, logits []float64, s *scratch) (string, float64) {
	s.probs = growF(s.probs, len(logits))
	probs := s.probs
	maxz := math.Inf(-1)
	for _, z := range logits {
		if z > maxz {
			maxz = z
		}
	}
	sum := 0.0
	for i, z := range logits {
		probs[i] = math.Exp(z - maxz)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	best := 0
	for i := 1; i < len(probs); i++ {
		if probs[i] > probs[best] || (probs[i] == probs[best] && labels[i] < labels[best]) {
			best = i
		}
	}
	return labels[best], probs[best]
}

// PredictTop classifies one utterance and returns only the winning intent
// and its confidence — the pair agent.Respond actually consumes. On the
// built-in classifiers' compiled fast path it performs no per-call heap
// allocation; for any other Classifier it falls back to Predict. The
// result is bit-identical to Predict(text).Intent / .Confidence.
func PredictTop(c Classifier, text string) (string, float64) {
	switch m := c.(type) {
	case *NaiveBayes:
		if m.mat != nil && len(m.labels) > 0 {
			s := getScratch()
			s.fillWords(text)
			intent, conf := softmaxTop(m.labels, m.fusedLogits(s), s)
			putScratch(s)
			return intent, conf
		}
	case *LogisticRegression:
		if m.wf != nil && len(m.labels) > 0 {
			s := getScratch()
			s.fillWords(text)
			intent, conf := softmaxTop(m.labels, m.fusedLogits(s), s)
			putScratch(s)
			return intent, conf
		}
	}
	p := c.Predict(text)
	return p.Intent, p.Confidence
}
