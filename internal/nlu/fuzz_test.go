package nlu

import (
	"strings"
	"testing"
)

// FuzzTokenize drives the tokenizer with arbitrary byte strings and checks
// the span invariants every downstream consumer relies on: the entity
// recognizer slices the original utterance with Start/End, and the
// classifier assumes Text is the lowercased surface form.
//
// testdata/fuzz/FuzzTokenize holds the checked-in seed corpus; CI runs a
// short -fuzztime smoke over it.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"Show me the precautions for Aspirin?",
		"y-site compatibility of St John's wort",
		"0.05% solution, 10mg/kg",
		"  weird   spacing\tand\nnewlines  ",
		"drug--interaction -- comment-ish",
		"café naïve Über MIXED case",
		"trailing joiners a- b' c.",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		toks := Tokenize(text)
		prevEnd := 0
		for i, tok := range toks {
			if tok.Start < 0 || tok.End > len(text) || tok.Start >= tok.End {
				t.Fatalf("token %d has invalid span [%d,%d) in %d-byte input %q", i, tok.Start, tok.End, len(text), text)
			}
			if tok.Start < prevEnd {
				t.Fatalf("token %d span [%d,%d) overlaps previous end %d in %q", i, tok.Start, tok.End, prevEnd, text)
			}
			prevEnd = tok.End
			if got := text[tok.Start:tok.End]; got != tok.Raw {
				t.Fatalf("token %d Raw %q does not match its span slice %q in %q", i, tok.Raw, got, text)
			}
			if want := strings.ToLower(tok.Raw); tok.Text != want {
				t.Fatalf("token %d Text %q is not the lowercased Raw %q", i, tok.Text, want)
			}
		}
		// The derived views must agree with the token stream.
		words := Words(text)
		if len(words) != len(toks) {
			t.Fatalf("Words returned %d entries for %d tokens in %q", len(words), len(toks), text)
		}
		for i, w := range words {
			if w != toks[i].Text {
				t.Fatalf("Words[%d] = %q, token Text = %q in %q", i, w, toks[i].Text, text)
			}
		}
		if got, want := len(ContentWords(text)), len(words); got > want {
			t.Fatalf("ContentWords grew the token stream: %d > %d in %q", got, want, text)
		}
	})
}
