package dialogue

import "testing"

func TestNCFCatalogWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range NCFCatalog() {
		if p.ID == "" || p.Name == "" || p.Example == "" {
			t.Errorf("incomplete pattern %+v", p)
		}
		if seen[p.ID] {
			t.Errorf("duplicate pattern ID %s", p.ID)
		}
		seen[p.ID] = true
		if p.Level != SequenceLevel && p.Level != ConversationLevel {
			t.Errorf("pattern %s has bad level %q", p.ID, p.Level)
		}
	}
}

func TestNCFDefinitionRequestRepair(t *testing.T) {
	// the pattern the paper spells out (§5.2, B2.5.0) must be present
	// and wired
	for _, p := range NCFCatalog() {
		if p.ID == "B2.5.0" {
			if p.Name != "Definition Request Repair" || p.Action != ActDefine {
				t.Fatalf("B2.5.0 = %+v", p)
			}
			return
		}
	}
	t.Fatal("B2.5.0 missing from the catalog")
}

func TestImplementedNCFAllWired(t *testing.T) {
	impl := ImplementedNCF()
	if len(impl) == 0 {
		t.Fatal("no implemented patterns")
	}
	for _, p := range impl {
		if p.Action == "" {
			t.Errorf("unwired pattern leaked: %+v", p)
		}
	}
	// both levels must be represented
	levels := map[NCFLevel]bool{}
	for _, p := range impl {
		levels[p.Level] = true
	}
	if !levels[SequenceLevel] || !levels[ConversationLevel] {
		t.Fatal("both management levels must have implemented patterns")
	}
}
