package dialogue

import (
	"strings"
	"testing"

	"ontoconv/internal/core"
	"ontoconv/internal/sqlx"
)

// testSpace builds a small synthetic conversation space without running
// the bootstrap pipeline.
func testSpace() *core.Space {
	tpl := sqlx.MustTemplate("SELECT p.description FROM precaution p INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.name = <@Drug>")
	dosageTpl := sqlx.MustTemplate("SELECT ds.description FROM dosage ds INNER JOIN drug d ON ds.drug_id = d.drug_id WHERE d.name = <@Drug> AND ds.age_group = <@AgeGroup>")
	return &core.Space{
		Intents: []core.Intent{
			{
				Name: "Precautions of Drug", Kind: core.LookupPattern,
				Examples: []string{"show me the precautions for Aspirin"},
				Template: tpl,
				Required: []core.EntitySpec{
					{Entity: "Drug", Param: "Drug", Elicitation: "For which drug?"},
				},
				Response:      "Here are the precautions for {{Drug}}:",
				AnswerConcept: "Precaution",
			},
			{
				Name: "Drug Dosage", Kind: core.IndirectRelationPattern,
				Examples: []string{"dosage for Aspirin"},
				Template: dosageTpl,
				Required: []core.EntitySpec{
					{Entity: "Drug", Param: "Drug", Elicitation: "For which drug?"},
					{Entity: "AgeGroup", Param: "AgeGroup", Elicitation: "Adult or pediatric?"},
				},
				Response:      "Here is the dosage for {{Drug}}:",
				AnswerConcept: "Dosage",
			},
			{
				Name: "DRUG_GENERAL", Kind: core.GeneralEntityPattern,
				Examples:      []string{"Aspirin"},
				AnswerConcept: "Drug",
				Response:      "Would you like to see more?",
			},
		},
		Entities: []core.EntityDef{
			{Name: "Drug", Kind: "instance", Values: []core.EntityValue{{Value: "Aspirin"}}},
			{Name: "AgeGroup", Kind: "value", Values: []core.EntityValue{{Value: "adult"}, {Value: "pediatric"}}},
		},
	}
}

func withCM() *core.Space {
	s := testSpace()
	s.Intents = append(s.Intents, core.ConversationManagementIntents()...)
	return s
}

func TestBuildLogicTable(t *testing.T) {
	space := testSpace()
	table := BuildLogicTable(space)
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	row := table.Row("Precautions of Drug")
	if row == nil {
		t.Fatal("row missing")
	}
	if row.Example != "show me the precautions for Aspirin" {
		t.Fatalf("example = %q", row.Example)
	}
	if row.Elicitation["Drug"] != "For which drug?" {
		t.Fatalf("elicitation = %v", row.Elicitation)
	}
	if table.Row("Ghost") != nil {
		t.Fatal("missing row must be nil")
	}
}

func TestLogicTableDefaultElicitation(t *testing.T) {
	space := testSpace()
	space.Intents[0].Required[0].Elicitation = ""
	table := BuildLogicTable(space)
	if got := table.Row("Precautions of Drug").Elicitation["Drug"]; got != "Which drug?" {
		t.Fatalf("default elicitation = %q", got)
	}
}

func TestLogicTableString(t *testing.T) {
	s := BuildLogicTable(testSpace()).String()
	for _, want := range []string{"Intent", "Precautions of Drug", "Drug, AgeGroup"} {
		if !strings.Contains(s, want) {
			t.Errorf("table rendering missing %q", want)
		}
	}
}

func TestBuildTreeSlotFilling(t *testing.T) {
	space := testSpace()
	tree := BuildTree(space, BuildLogicTable(space))

	bound := map[string]bool{}
	isBound := func(e string) bool { return bound[e] }

	// nothing bound: first elicitation is the drug
	n := tree.Match("Drug Dosage", isBound)
	if n.Action != ActElicit || n.EntityToElicit != "Drug" {
		t.Fatalf("node = %+v", n)
	}
	// drug bound: next is the age group (declaration order)
	bound["Drug"] = true
	n = tree.Match("Drug Dosage", isBound)
	if n.Action != ActElicit || n.EntityToElicit != "AgeGroup" {
		t.Fatalf("node = %+v", n)
	}
	if n.Response != "Adult or pediatric?" {
		t.Fatalf("elicitation = %q", n.Response)
	}
	// all bound: answer
	bound["AgeGroup"] = true
	n = tree.Match("Drug Dosage", isBound)
	if n.Action != ActAnswer {
		t.Fatalf("node = %+v", n)
	}
}

func TestBuildTreeFallback(t *testing.T) {
	space := testSpace()
	tree := BuildTree(space, BuildLogicTable(space))
	n := tree.Match("Unknown Intent", func(string) bool { return false })
	if n != tree.Fallback {
		t.Fatalf("node = %+v", n)
	}
}

func TestBuildTreeConversationManagementActions(t *testing.T) {
	space := withCM()
	tree := BuildTree(space, BuildLogicTable(space))
	cases := map[string]Action{
		"CM Goodbye":                  ActGoodbye,
		"CM Repeat Request":           ActRepeat,
		"CM Definition Request":       ActDefine,
		"CM Abort":                    ActAbort,
		"CM Yes":                      ActAffirm,
		"CM No":                       ActDeny,
		"CM Appreciation":             ActCheckAnything,
		"CM Greeting":                 ActStatic,
		"CM Help":                     ActStatic,
		"CM Positive Acknowledgement": ActCheckAnything,
	}
	none := func(string) bool { return false }
	for intent, want := range cases {
		n := tree.Match(intent, none)
		if n.Action != want {
			t.Errorf("%s action = %s, want %s", intent, n.Action, want)
		}
	}
	// general entity intent -> propose
	if n := tree.Match("DRUG_GENERAL", none); n.Action != ActPropose {
		t.Fatalf("DRUG_GENERAL = %+v", n)
	}
}

func TestTreeNodeCount(t *testing.T) {
	space := withCM()
	tree := BuildTree(space, BuildLogicTable(space))
	// 2 task intents (1+1 elicitation each + answer) + general + 14 CM
	// + fallback
	want := 1 + (1 + 1 + 1) + (1 + 2 + 1) + 1 + 14
	if got := tree.NodeCount(); got != want {
		t.Fatalf("NodeCount = %d, want %d", got, want)
	}
}

func TestContextBindings(t *testing.T) {
	c := NewContext()
	if c.Bound("Drug") {
		t.Fatal("empty context should bind nothing")
	}
	c.NextTurn()
	c.Bind("Drug", "Aspirin")
	if v, ok := c.Value("Drug"); !ok || v != "Aspirin" {
		t.Fatalf("Value = %q %v", v, ok)
	}
	c.Bind("Drug", "Ibuprofen") // overwrite
	if v, _ := c.Value("Drug"); v != "Ibuprofen" {
		t.Fatalf("overwrite failed: %q", v)
	}
	c.Bind("AgeGroup", "adult")
	if got := c.Entities(); len(got) != 2 || got[0] != "AgeGroup" {
		t.Fatalf("Entities = %v", got)
	}
	b := c.Bindings()
	if b["Drug"] != "Ibuprofen" || b["AgeGroup"] != "adult" {
		t.Fatalf("Bindings = %v", b)
	}
	c.Unbind("AgeGroup")
	if c.Bound("AgeGroup") {
		t.Fatal("Unbind failed")
	}
}

func TestContextClearTask(t *testing.T) {
	c := NewContext()
	c.Intent = "X"
	c.Bind("Drug", "Aspirin")
	c.Proposal = &Proposal{Intent: "Y"}
	c.Choice = &Choice{Entity: "Drug"}
	c.ClearTask()
	if c.Intent != "" || c.Bound("Drug") || c.Proposal != nil || c.Choice != nil {
		t.Fatalf("ClearTask incomplete: %+v", c)
	}
}

func TestContextTurnTracking(t *testing.T) {
	c := NewContext()
	c.NextTurn()
	c.NextTurn()
	if c.Turn != 2 {
		t.Fatalf("Turn = %d", c.Turn)
	}
}
