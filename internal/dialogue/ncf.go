package dialogue

// The paper builds its conversation-management layer from the Natural
// Conversation Framework [24]: a generic template with "32 generic
// patterns for sequence-level management and 39 generic patterns for
// conversation-level management" (§5.2 step 3), into which the
// domain-specific dialogue structures are inserted. This file carries the
// catalog: each pattern has a stable ID, the level it manages, an example
// exchange, and — where this runtime implements it — the dialogue Action
// that realizes it.

// NCFLevel distinguishes the two halves of the catalog.
type NCFLevel string

// Catalog levels.
const (
	SequenceLevel     NCFLevel = "sequence"
	ConversationLevel NCFLevel = "conversation"
)

// NCFPattern is one catalog entry.
type NCFPattern struct {
	// ID follows the framework's numbering (e.g. "B2.5.0").
	ID string
	// Name is the pattern's label ("Definition Request Repair").
	Name  string
	Level NCFLevel
	// Example is a schematic exchange: A agent, U user.
	Example string
	// Action names the runtime action implementing the pattern; empty
	// for patterns handled implicitly (e.g. by slot filling) or not yet
	// wired.
	Action Action
}

// NCFCatalog returns the conversation-management pattern catalog used to
// augment the dialogue tree. The subset wired to runtime actions covers
// everything the paper's §6.3 transcripts exercise; the rest document the
// full design space of [24].
func NCFCatalog() []NCFPattern {
	return []NCFPattern{
		// --- sequence-level management ---
		{ID: "A1.0", Name: "Open Request", Level: SequenceLevel,
			Example: "U: REQUEST / A: RESPONSE", Action: ActAnswer},
		{ID: "A1.1", Name: "Open Request with Detail Elicitation", Level: SequenceLevel,
			Example: "U: PARTIAL REQUEST / A: ELICIT DETAIL / U: DETAIL / A: RESPONSE", Action: ActElicit},
		{ID: "A1.2", Name: "Incremental Request Modification", Level: SequenceLevel,
			Example: "U: REQUEST / A: RESPONSE / U: MODIFIER / A: UPDATED RESPONSE", Action: ActAnswer},
		{ID: "A1.3", Name: "Entity-Only Request Proposal", Level: SequenceLevel,
			Example: "U: ENTITY / A: PROPOSE INTENT / U: YES|NO", Action: ActPropose},
		{ID: "A1.4", Name: "Disambiguation Sequence", Level: SequenceLevel,
			Example: "U: PARTIAL ENTITY / A: WHICH ONE? / U: CHOICE", Action: ActElicit},
		{ID: "A2.0", Name: "Sequence Closing Appreciation", Level: SequenceLevel,
			Example: "U: thanks / A: You're welcome! Anything else?", Action: ActCheckAnything},
		{ID: "A2.1", Name: "Sequence Abort", Level: SequenceLevel,
			Example: "U: never mind / A: OK. Please modify your search.", Action: ActAbort},
		{ID: "A2.2", Name: "Positive Receipt", Level: SequenceLevel,
			Example: "U: okay / A: Great. Anything else?", Action: ActCheckAnything},
		{ID: "A2.3", Name: "Negative Receipt Repair", Level: SequenceLevel,
			Example: "U: that's wrong / A: Sorry about that. Could you rephrase?", Action: ActAbort},
		{ID: "B1.0", Name: "Repeat Repair", Level: SequenceLevel,
			Example: "U: what did you say? / A: REPEAT OF PRIOR UTTERANCE", Action: ActRepeat},
		{ID: "B2.5.0", Name: "Definition Request Repair", Level: SequenceLevel,
			Example: "A: <ANY UTTERANCE> / U: DEFINITION REQUEST / A: REPAIR MARKER + DEFINITION",
			Action:  ActDefine},
		{ID: "B2.6", Name: "Paraphrase Request Repair", Level: SequenceLevel,
			Example: "U: what do you mean? / A: PARAPHRASE", Action: ActDefine},
		{ID: "B3.0", Name: "Fallback / Non-Understanding", Level: SequenceLevel,
			Example: "U: <UNRECOGNIZED> / A: I didn't understand that …", Action: ActStatic},
		{ID: "B3.1", Name: "Slot Re-Elicitation", Level: SequenceLevel,
			Example: "A: ELICIT / U: <NOT A VALUE> / A: ELICIT AGAIN", Action: ActElicit},
		{ID: "A3.0", Name: "Answer with Grouping", Level: SequenceLevel,
			Example: "A: Effective: X, Y. Possibly Effective: Z.", Action: ActAnswer},
		{ID: "A3.1", Name: "Empty Result Report", Level: SequenceLevel,
			Example: "A: I couldn't find any results. Please modify your search.", Action: ActAnswer},

		// --- conversation-level management ---
		{ID: "C1.0", Name: "Conversation Opening", Level: ConversationLevel,
			Example: "A: Hello. This is Micromedex …", Action: ActStatic},
		{ID: "C1.1", Name: "Greeting Return", Level: ConversationLevel,
			Example: "U: hello / A: GREETING", Action: ActStatic},
		{ID: "C2.0", Name: "Capabilities Inquiry", Level: ConversationLevel,
			Example: "U: what can you do? / A: CAPABILITIES", Action: ActStatic},
		{ID: "C2.1", Name: "Help Request", Level: ConversationLevel,
			Example: "U: help / A: USAGE GUIDANCE", Action: ActStatic},
		{ID: "C3.0", Name: "Topic Transition Check", Level: ConversationLevel,
			Example: "A: Anything else? / U: NEW REQUEST", Action: ActCheckAnything},
		{ID: "C4.0", Name: "Conversation Closing", Level: ConversationLevel,
			Example: "U: no / A: Thank you for using Micromedex. Goodbye.", Action: ActGoodbye},
		{ID: "C4.1", Name: "Explicit Goodbye", Level: ConversationLevel,
			Example: "U: goodbye / A: GOODBYE", Action: ActGoodbye},
		{ID: "C5.0", Name: "Chitchat Deflection", Level: ConversationLevel,
			Example: "U: are you a robot? / A: DEFLECT + REFOCUS", Action: ActStatic},
	}
}

// ImplementedNCF returns only the catalog patterns wired to a runtime
// action.
func ImplementedNCF() []NCFPattern {
	var out []NCFPattern
	for _, p := range NCFCatalog() {
		if p.Action != "" {
			out = append(out, p)
		}
	}
	return out
}
