package dialogue

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Snapshot format: dialogue state is small and fully explicit — a handful
// of entity bindings, the active intent, a pending proposal or choice, the
// repair state — so it serializes into a compact, versioned byte record
// that shards and replicas can hand to each other. The encoding is
// deterministic (map entries sorted by key) and self-delimiting, with a
// byte-identical round-trip guarantee: Restore(Snapshot(c)).Snapshot() ==
// Snapshot(c), and a restored context drives subsequent turns exactly as
// the original would.
//
// Layout (all integers unsigned varints, all strings length-prefixed):
//
//	magic "OCDS"            | format tag
//	version byte            | SnapshotVersion
//	turn                    | Context.Turn
//	intent, lastResponse    | strings
//	flags byte              | bit0 closed, bit1 proposal present, bit2 choice present
//	bindings: n, then n × (entity, value, turn) sorted by entity
//	proposal (if present): intent, alternatives (n + strings, order kept),
//	                       assume (n + key/value pairs sorted by key)
//	choice (if present):   entity, candidates (n + strings, order kept)
//
// Trailing bytes, truncation, or an unknown version are errors: a record
// either restores exactly or not at all.

// SnapshotVersion is the current snapshot format version. Restore rejects
// records written by a future format.
const SnapshotVersion = 1

// snapshotMagic tags a byte record as a dialogue-context snapshot.
const snapshotMagic = "OCDS"

const (
	flagClosed   = 1 << 0
	flagProposal = 1 << 1
	flagChoice   = 1 << 2
)

// Snapshot serializes the full conversation context. The result is
// deterministic: two contexts with equal state produce identical bytes.
func (c *Context) Snapshot() []byte {
	// Typical contexts are a few bindings and short strings; 256 bytes
	// avoids regrowth without padding the record.
	buf := make([]byte, 0, 256)
	buf = append(buf, snapshotMagic...)
	buf = append(buf, SnapshotVersion)
	buf = binary.AppendUvarint(buf, uint64(c.Turn))
	buf = appendString(buf, c.Intent)
	buf = appendString(buf, c.LastResponse)
	var flags byte
	if c.Closed {
		flags |= flagClosed
	}
	if c.Proposal != nil {
		flags |= flagProposal
	}
	if c.Choice != nil {
		flags |= flagChoice
	}
	buf = append(buf, flags)

	ents := make([]string, 0, len(c.ents))
	for e := range c.ents {
		ents = append(ents, e)
	}
	sort.Strings(ents)
	buf = binary.AppendUvarint(buf, uint64(len(ents)))
	for _, e := range ents {
		b := c.ents[e]
		buf = appendString(buf, b.Entity)
		buf = appendString(buf, b.Value)
		buf = binary.AppendUvarint(buf, uint64(b.Turn))
	}

	if p := c.Proposal; p != nil {
		buf = appendString(buf, p.Intent)
		buf = binary.AppendUvarint(buf, uint64(len(p.Alternatives)))
		for _, alt := range p.Alternatives {
			buf = appendString(buf, alt)
		}
		keys := make([]string, 0, len(p.Assume))
		for k := range p.Assume {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf = binary.AppendUvarint(buf, uint64(len(keys)))
		for _, k := range keys {
			buf = appendString(buf, k)
			buf = appendString(buf, p.Assume[k])
		}
	}

	if ch := c.Choice; ch != nil {
		buf = appendString(buf, ch.Entity)
		buf = binary.AppendUvarint(buf, uint64(len(ch.Candidates)))
		for _, cand := range ch.Candidates {
			buf = appendString(buf, cand)
		}
	}
	return buf
}

// Restore deserializes a snapshot into a fresh Context. The record must
// parse completely: truncated, trailing, or version-mismatched input is
// rejected, never partially applied.
func Restore(data []byte) (*Context, error) {
	d := &decoder{data: data}
	if string(d.bytes(len(snapshotMagic))) != snapshotMagic {
		return nil, fmt.Errorf("dialogue: not a context snapshot")
	}
	if v := d.byte(); d.err == nil && v != SnapshotVersion {
		return nil, fmt.Errorf("dialogue: unsupported snapshot version %d (want %d)", v, SnapshotVersion)
	}
	c := NewContext()
	c.Turn = int(d.uvarint())
	c.Intent = d.string()
	c.LastResponse = d.string()
	flags := d.byte()
	c.Closed = flags&flagClosed != 0

	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		entity := d.string()
		value := d.string()
		turn := int(d.uvarint())
		c.ents[entity] = Binding{Entity: entity, Value: value, Turn: turn}
	}

	if flags&flagProposal != 0 {
		p := &Proposal{Intent: d.string(), Assume: map[string]string{}}
		nAlt := d.count()
		for i := 0; i < nAlt && d.err == nil; i++ {
			p.Alternatives = append(p.Alternatives, d.string())
		}
		nAssume := d.count()
		for i := 0; i < nAssume && d.err == nil; i++ {
			k := d.string()
			p.Assume[k] = d.string()
		}
		c.Proposal = p
	}

	if flags&flagChoice != 0 {
		ch := &Choice{Entity: d.string()}
		nCand := d.count()
		for i := 0; i < nCand && d.err == nil; i++ {
			ch.Candidates = append(ch.Candidates, d.string())
		}
		c.Choice = ch
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("dialogue: snapshot has %d trailing bytes", len(d.data)-d.pos)
	}
	return c, nil
}

// appendString appends a varint length prefix and the string bytes.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder is a cursor over a snapshot record; the first error sticks and
// every later read returns zero values.
type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("dialogue: "+format, args...)
	}
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.pos+n > len(d.data) {
		d.fail("snapshot truncated at byte %d", d.pos)
		return nil
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *decoder) byte() byte {
	b := d.bytes(1)
	if len(b) != 1 {
		return 0
	}
	return b[0]
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("snapshot has a malformed varint at byte %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

// count reads a collection length and bounds it by the bytes remaining, so
// a corrupt length cannot allocate unboundedly.
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.data)-d.pos) {
		d.fail("snapshot count %d exceeds remaining %d bytes", v, len(d.data)-d.pos)
		return 0
	}
	return int(v)
}

func (d *decoder) string() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	return string(d.bytes(n))
}
