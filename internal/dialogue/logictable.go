// Package dialogue implements the dialogue structure of the conversation
// space (paper §5): the Dialogue Logic Table generated from the
// bootstrapped artifacts, the dialogue tree built from it (slot filling
// over required entities, conditioned responses), the conversation-
// management augmentation, and the persistent conversation context that
// lets users build and incrementally modify a query across turns.
package dialogue

import (
	"fmt"
	"strings"

	"ontoconv/internal/core"
)

// LogicRow is one row of the Dialogue Logic Table (paper Table 3):
// everything a designer — or the automated tree builder — needs to specify
// the conversation flow for one intent.
type LogicRow struct {
	Intent      string            `json:"intent"`
	Example     string            `json:"example"`
	Required    []core.EntitySpec `json:"required,omitempty"`
	Elicitation map[string]string `json:"elicitation,omitempty"`
	Optional    []core.EntitySpec `json:"optional,omitempty"`
	Response    string            `json:"response"`
}

// LogicTable is the full Dialogue Logic Table.
type LogicTable struct {
	Rows []LogicRow `json:"rows"`
}

// BuildLogicTable derives the table from a bootstrapped space (step 1 of
// §5.2): one row per intent, with elicitation templates populated from the
// intent's required entities.
func BuildLogicTable(space *core.Space) *LogicTable {
	t := &LogicTable{}
	for _, in := range space.Intents {
		row := LogicRow{
			Intent:      in.Name,
			Required:    in.Required,
			Optional:    in.Optional,
			Response:    in.Response,
			Elicitation: map[string]string{},
		}
		if len(in.Examples) > 0 {
			row.Example = in.Examples[0]
		}
		for _, r := range in.Required {
			el := r.Elicitation
			if el == "" {
				el = fmt.Sprintf("Which %s?", strings.ToLower(r.Entity))
			}
			row.Elicitation[r.Entity] = el
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Row returns the row for the named intent, or nil.
func (t *LogicTable) Row(intent string) *LogicRow {
	for i := range t.Rows {
		if t.Rows[i].Intent == intent {
			return &t.Rows[i]
		}
	}
	return nil
}

// String renders the table as aligned text for SME review.
func (t *LogicTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s | %-44s | %-28s | %s\n", "Intent", "Example", "Required", "Response")
	b.WriteString(strings.Repeat("-", 140) + "\n")
	for _, r := range t.Rows {
		var req []string
		for _, e := range r.Required {
			req = append(req, e.Entity)
		}
		ex := r.Example
		if len(ex) > 42 {
			ex = ex[:42] + ".."
		}
		resp := r.Response
		if len(resp) > 48 {
			resp = resp[:48] + ".."
		}
		fmt.Fprintf(&b, "%-36s | %-44s | %-28s | %s\n", r.Intent, ex, strings.Join(req, ", "), resp)
	}
	return b.String()
}
