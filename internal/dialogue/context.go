package dialogue

import (
	"sort"
)

// Binding is one entity value held in the conversation context.
type Binding struct {
	Entity string // entity type ("Drug", "AgeGroup")
	Value  string // canonical value
	Turn   int    // turn the value was last set
}

// Proposal is a pending agent proposal awaiting yes/no (the DRUG_GENERAL
// flow of §6.3: "Would you like to see the precautions of benztropine
// mesylate?").
type Proposal struct {
	// Intent to trigger if the user accepts.
	Intent string
	// Remaining alternative intents to propose on rejection.
	Alternatives []string
	// Entity bindings the proposal assumes.
	Assume map[string]string
}

// Choice is a pending partial-entity disambiguation (§6.1: base "Calcium"
// -> pick a salt).
type Choice struct {
	Entity     string
	Candidates []string
}

// Context is the persistent conversation context (§4.1, §5.2): intents and
// entities from prior turns are remembered across the interaction, so
// users can build a query over multiple utterances and modify it
// incrementally.
type Context struct {
	Turn   int
	Intent string // active task intent ("" when none)
	ents   map[string]Binding
	// LastResponse supports the repeat repair; LastAnswer the definition
	// repair scope.
	LastResponse string
	Proposal     *Proposal
	Choice       *Choice
	Closed       bool
}

// NewContext returns an empty context.
func NewContext() *Context {
	return &Context{ents: make(map[string]Binding)}
}

// Bind sets an entity value at the current turn.
func (c *Context) Bind(entity, value string) {
	c.ents[entity] = Binding{Entity: entity, Value: value, Turn: c.Turn}
}

// Bound reports whether the entity has a value.
func (c *Context) Bound(entity string) bool {
	_, ok := c.ents[entity]
	return ok
}

// Value returns the entity's value and whether it is bound.
func (c *Context) Value(entity string) (string, bool) {
	b, ok := c.ents[entity]
	return b.Value, ok
}

// Unbind removes an entity binding.
func (c *Context) Unbind(entity string) { delete(c.ents, entity) }

// Entities returns the bound entity types, sorted.
func (c *Context) Entities() []string {
	out := make([]string, 0, len(c.ents))
	for e := range c.ents {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Bindings returns a copy of all bindings keyed by entity type.
func (c *Context) Bindings() map[string]string {
	out := make(map[string]string, len(c.ents))
	for e, b := range c.ents {
		out[e] = b.Value
	}
	return out
}

// ClearTask drops the active intent, its entity bindings, and any pending
// proposal/choice (the "never mind" abort, §5.2 step 3). The context
// object itself survives: a new request starts fresh.
func (c *Context) ClearTask() {
	c.Intent = ""
	c.ents = make(map[string]Binding)
	c.Proposal = nil
	c.Choice = nil
}

// NextTurn advances the turn counter.
func (c *Context) NextTurn() { c.Turn++ }
