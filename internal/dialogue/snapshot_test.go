package dialogue

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// fullContext builds a context exercising every serialized field.
func fullContext() *Context {
	c := NewContext()
	c.Turn = 7
	c.Intent = "Drug Dosage for Condition"
	c.LastResponse = "Adult or pediatric?"
	c.Closed = false
	c.ents["Drug"] = Binding{Entity: "Drug", Value: "Aspirin", Turn: 3}
	c.ents["Condition"] = Binding{Entity: "Condition", Value: "Psoriasis", Turn: 5}
	c.ents["AgeGroup"] = Binding{Entity: "AgeGroup", Value: "Adult", Turn: 7}
	c.Proposal = &Proposal{
		Intent:       "Precautions of Drug",
		Alternatives: []string{"Uses of Drug", "Adverse Effects of Drug"},
		Assume:       map[string]string{"Drug": "Benztropine Mesylate"},
	}
	c.Choice = &Choice{Entity: "Drug", Candidates: []string{"Calcium Carbonate", "Calcium Citrate"}}
	return c
}

func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	cases := map[string]*Context{
		"empty": NewContext(),
		"full":  fullContext(),
		"closed": func() *Context {
			c := NewContext()
			c.Turn = 2
			c.Closed = true
			c.LastResponse = "Thank you for using Micromedex. Goodbye."
			return c
		}(),
	}
	for name, c := range cases {
		snap := c.Snapshot()
		restored, err := Restore(snap)
		if err != nil {
			t.Fatalf("%s: Restore: %v", name, err)
		}
		again := restored.Snapshot()
		if !bytes.Equal(snap, again) {
			t.Fatalf("%s: round trip not byte-identical:\n %x\n %x", name, snap, again)
		}
		if !reflect.DeepEqual(normalize(c), normalize(restored)) {
			t.Fatalf("%s: restored context differs:\n%+v\n%+v", name, c, restored)
		}
	}
}

// normalize maps a context to a comparable shape (nil and empty maps
// unified).
func normalize(c *Context) map[string]interface{} {
	m := map[string]interface{}{
		"turn":   c.Turn,
		"intent": c.Intent,
		"last":   c.LastResponse,
		"closed": c.Closed,
		"ents":   c.Bindings(),
		"turns":  map[string]int{},
	}
	for e, b := range c.ents {
		m["turns"].(map[string]int)[e] = b.Turn
	}
	if c.Proposal != nil {
		assume := map[string]string{}
		for k, v := range c.Proposal.Assume {
			assume[k] = v
		}
		m["proposal"] = []interface{}{c.Proposal.Intent, append([]string{}, c.Proposal.Alternatives...), assume}
	}
	if c.Choice != nil {
		m["choice"] = []interface{}{c.Choice.Entity, append([]string{}, c.Choice.Candidates...)}
	}
	return m
}

// TestSnapshotDeterministicAcrossInsertionOrder proves the encoding does
// not depend on map insertion order.
func TestSnapshotDeterministicAcrossInsertionOrder(t *testing.T) {
	mk := func(order []string) *Context {
		c := NewContext()
		c.Turn = 4
		for i, e := range order {
			c.ents[e] = Binding{Entity: e, Value: "v-" + e, Turn: i}
		}
		c.Proposal = &Proposal{Intent: "X", Assume: map[string]string{}}
		for _, e := range order {
			c.Proposal.Assume[e] = "a-" + e
		}
		return c
	}
	base := []string{"Drug", "Condition", "AgeGroup", "Route", "Population"}
	want := mk(base).Snapshot()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		order := append([]string{}, base...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		// Re-stamp turns by canonical name so only insertion order varies.
		c := NewContext()
		c.Turn = 4
		for _, e := range order {
			for i, canon := range base {
				if canon == e {
					c.ents[e] = Binding{Entity: e, Value: "v-" + e, Turn: i}
				}
			}
		}
		c.Proposal = &Proposal{Intent: "X", Assume: map[string]string{}}
		for _, e := range order {
			c.Proposal.Assume[e] = "a-" + e
		}
		if got := c.Snapshot(); !bytes.Equal(got, want) {
			t.Fatalf("snapshot depends on insertion order %v", order)
		}
	}
}

func TestRestoreRejectsCorruptInput(t *testing.T) {
	snap := fullContext().Snapshot()
	if _, err := Restore(nil); err == nil {
		t.Fatal("Restore(nil) succeeded")
	}
	if _, err := Restore([]byte("XXXX")); err == nil {
		t.Fatal("Restore accepted a wrong magic")
	}
	bad := append([]byte{}, snap...)
	bad[4] = SnapshotVersion + 1
	if _, err := Restore(bad); err == nil {
		t.Fatal("Restore accepted a future version")
	}
	for cut := 1; cut < len(snap); cut++ {
		if _, err := Restore(snap[:cut]); err == nil {
			t.Fatalf("Restore accepted a record truncated at %d/%d bytes", cut, len(snap))
		}
	}
	if _, err := Restore(append(append([]byte{}, snap...), 0x00)); err == nil {
		t.Fatal("Restore accepted trailing bytes")
	}
}

// TestRestoreBoundsCorruptCounts: a length prefix larger than the record
// must error, not allocate.
func TestRestoreBoundsCorruptCounts(t *testing.T) {
	c := NewContext()
	c.ents["Drug"] = Binding{Entity: "Drug", Value: "Aspirin", Turn: 1}
	snap := c.Snapshot()
	// The binding-count varint sits right after magic+version+turn+two
	// empty strings+flags; flip it to a huge value.
	idx := len(snapshotMagic) + 1 /*version*/ + 1 /*turn*/ + 1 + 1 /*empty strings*/ + 1 /*flags*/
	bad := append([]byte{}, snap...)
	bad[idx] = 0xFF // multi-byte varint start; guaranteed to disagree with the payload
	if _, err := Restore(bad); err == nil {
		t.Fatal("Restore accepted a corrupt count")
	}
}

// TestSnapshotFuzzRoundTrip round-trips randomized contexts.
func TestSnapshotFuzzRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2019))
	words := []string{"", "a", "Drug", "Adult or pediatric?", "ünïcode £", "x\x00y", "long-" + string(bytes.Repeat([]byte{'z'}, 300))}
	pick := func() string { return words[rng.Intn(len(words))] }
	for trial := 0; trial < 500; trial++ {
		c := NewContext()
		c.Turn = rng.Intn(1 << 16)
		c.Intent = pick()
		c.LastResponse = pick()
		c.Closed = rng.Intn(2) == 0
		for i := rng.Intn(6); i > 0; i-- {
			e := pick() + itoa(i)
			c.ents[e] = Binding{Entity: e, Value: pick(), Turn: rng.Intn(100)}
		}
		if rng.Intn(2) == 0 {
			p := &Proposal{Intent: pick(), Assume: map[string]string{}}
			for i := rng.Intn(4); i > 0; i-- {
				p.Alternatives = append(p.Alternatives, pick())
			}
			for i := rng.Intn(4); i > 0; i-- {
				p.Assume[pick()+itoa(i)] = pick()
			}
			c.Proposal = p
		}
		if rng.Intn(2) == 0 {
			ch := &Choice{Entity: pick()}
			for i := rng.Intn(5); i > 0; i-- {
				ch.Candidates = append(ch.Candidates, pick())
			}
			c.Choice = ch
		}
		snap := c.Snapshot()
		restored, err := Restore(snap)
		if err != nil {
			t.Fatalf("trial %d: Restore: %v", trial, err)
		}
		if again := restored.Snapshot(); !bytes.Equal(snap, again) {
			t.Fatalf("trial %d: round trip not byte-identical", trial)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
