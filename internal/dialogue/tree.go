package dialogue

import (
	"fmt"

	"ontoconv/internal/core"
)

// Action tells the agent runtime what a matched node does.
type Action string

// Node actions.
const (
	// ActElicit prompts the user for a missing required entity.
	ActElicit Action = "elicit"
	// ActAnswer instantiates the intent's query template and answers.
	ActAnswer Action = "answer"
	// ActStatic replies with the node's fixed response text.
	ActStatic Action = "static"
	// ActRepeat re-issues the agent's previous response.
	ActRepeat Action = "repeat"
	// ActDefine answers a definition request from the glossary.
	ActDefine Action = "define"
	// ActAbort clears the pending request.
	ActAbort Action = "abort"
	// ActGoodbye closes the conversation.
	ActGoodbye Action = "goodbye"
	// ActPropose starts the entity-only proposal flow (DRUG_GENERAL).
	ActPropose Action = "propose"
	// ActAffirm handles "yes" in context (accepting a proposal).
	ActAffirm Action = "affirm"
	// ActDeny handles "no" in context (rejecting a proposal).
	ActDeny Action = "deny"
	// ActCheckAnything acknowledges and checks for a further topic.
	ActCheckAnything Action = "check-anything-else"
)

// Node is one dialogue-tree node (§5.1): a set of conditions, a response,
// and children evaluated in order. A node matches when its Intent equals
// the active intent (empty matches any) and its entity conditions hold
// against the conversation context.
type Node struct {
	ID string
	// Intent condition; empty matches any intent.
	Intent string
	// RequireEntity must be bound in context for the node to match.
	RequireEntity string
	// AbsentEntity must NOT be bound for the node to match (slot
	// elicitation nodes).
	AbsentEntity string
	// Action and response payload.
	Action   Action
	Response string
	// EntityToElicit names the entity an ActElicit node asks for.
	EntityToElicit string
	Children       []*Node
}

// Tree is the dialogue tree: an ordered list of top-level nodes plus a
// default fallback (§5.1 "DEFAULT").
type Tree struct {
	Roots    []*Node
	Fallback *Node
}

// BuildTree compiles the logic table into a dialogue tree (step 2 of
// §5.2) and augments it with conversation-management nodes (step 3).
// Intents with query templates get one elicitation child per required
// entity (in declaration order — "slot filling") and a final answer node.
func BuildTree(space *core.Space, table *LogicTable) *Tree {
	t := &Tree{}
	for _, in := range space.Intents {
		row := table.Row(in.Name)
		if row == nil {
			continue
		}
		node := &Node{ID: "intent:" + in.Name, Intent: in.Name}
		switch in.Kind {
		case core.ConversationPattern:
			node.Action = cmAction(in.Name)
			node.Response = in.Response
		case core.GeneralEntityPattern:
			node.Action = ActPropose
			node.Response = in.Response
		default:
			for _, req := range in.Required {
				node.Children = append(node.Children, &Node{
					ID:             fmt.Sprintf("elicit:%s:%s", in.Name, req.Entity),
					AbsentEntity:   req.Entity,
					Action:         ActElicit,
					EntityToElicit: req.Entity,
					Response:       row.Elicitation[req.Entity],
				})
			}
			node.Children = append(node.Children, &Node{
				ID:       "answer:" + in.Name,
				Action:   ActAnswer,
				Response: in.Response,
			})
		}
		t.Roots = append(t.Roots, node)
	}
	t.Fallback = &Node{
		ID:       "default",
		Action:   ActStatic,
		Response: "I didn't understand that. You can ask about drugs, conditions they treat, dosing, interactions, and more — or say \"help\".",
	}
	return t
}

// cmAction maps the 14 generic intents onto runtime actions.
func cmAction(intent string) Action {
	switch intent {
	case "CM Goodbye":
		return ActGoodbye
	case "CM Repeat Request":
		return ActRepeat
	case "CM Definition Request", "CM Paraphrase Request":
		return ActDefine
	case "CM Abort", "CM Negative Acknowledgement":
		return ActAbort
	case "CM Yes":
		return ActAffirm
	case "CM No":
		return ActDeny
	case "CM Appreciation", "CM Positive Acknowledgement":
		return ActCheckAnything
	default:
		return ActStatic
	}
}

// Match walks the tree for the active intent and context and returns the
// matched node: the intent's root if it is a leaf action, the first
// matching child otherwise, or the fallback.
func (t *Tree) Match(intent string, bound func(entity string) bool) *Node {
	for _, root := range t.Roots {
		if root.Intent != intent {
			continue
		}
		if len(root.Children) == 0 {
			return root
		}
		for _, ch := range root.Children {
			if ch.RequireEntity != "" && !bound(ch.RequireEntity) {
				continue
			}
			if ch.AbsentEntity != "" && bound(ch.AbsentEntity) {
				continue
			}
			return ch
		}
		return t.Fallback
	}
	return t.Fallback
}

// NodeCount returns the total number of nodes (diagnostics).
func (t *Tree) NodeCount() int {
	n := 1 // fallback
	var walk func(*Node)
	walk = func(nd *Node) {
		n++
		for _, c := range nd.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return n
}
