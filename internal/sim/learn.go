package sim

import "sort"

// MineFailures extracts the §9 "lessons learned" feedback signal from a
// usage log: utterances of objectively-failed interactions whose intended
// intent is known, grouped by that intent. Feeding these back as
// SME-labelled training examples (core.AugmentFromPriorQueries) closes the
// loop the paper names as future work — "learning from the system usage
// logs, and using that as a feedback to further improve the system".
//
// maxPerIntent caps the examples mined per intent (0 = unlimited).
// Utterances are deduplicated and returned in first-seen order.
func MineFailures(log *Log, maxPerIntent int) map[string][]string {
	out := map[string][]string{}
	seen := map[string]map[string]bool{}
	for _, r := range log.Interactions {
		if r.Correct || r.Expected == "" || r.Utterance == "" {
			continue
		}
		if maxPerIntent > 0 && len(out[r.Expected]) >= maxPerIntent {
			continue
		}
		if seen[r.Expected] == nil {
			seen[r.Expected] = map[string]bool{}
		}
		if seen[r.Expected][r.Utterance] {
			continue
		}
		seen[r.Expected][r.Utterance] = true
		out[r.Expected] = append(out[r.Expected], r.Utterance)
	}
	return out
}

// FailureIntents returns the intents with mined failures, sorted by
// failure count descending (ties by name), for reporting.
func FailureIntents(mined map[string][]string) []string {
	names := make([]string, 0, len(mined))
	for n := range mined {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if len(mined[names[i]]) != len(mined[names[j]]) {
			return len(mined[names[i]]) > len(mined[names[j]])
		}
		return names[i] < names[j]
	})
	return names
}
