// Package sim simulates the paper's 7-month production usage study
// (§7.2): a population of clinician users issuing requests against the
// conversation agent with realistic linguistic variation and noise —
// misspellings, keyword-only queries, meaningless input, ignored
// follow-ups, accidental feedback presses — plus the thumbs-up/down user
// feedback model and the stricter SME judgement used for Figure 12.
//
// All randomness is seeded; a (workload, seed) pair reproduces the same
// interaction log bit-for-bit.
package sim

import (
	"math/rand"
	"sort"

	"ontoconv/internal/agent"
	"ontoconv/internal/core"
)

// IntentShare fixes one intent's share of the workload.
type IntentShare struct {
	Intent string
	Weight float64
}

// MDXUsage returns the intent mix of Table 5: the top-10 intents cover 75%
// of interactions; the remainder is spread across the other task intents.
func MDXUsage() []IntentShare {
	return []IntentShare{
		{"Drug Dosage for Condition", 0.15},
		{"Administration of Drug", 0.12},
		{"IV Compatibility of Drug", 0.11},
		{"Drugs That Treat Condition", 0.10},
		{"Uses of Drug", 0.09},
		{"Adverse Effects of Drug", 0.05},
		{"Drug-Drug Interactions", 0.04},
		{"DRUG_GENERAL", 0.04},
		{"Dose Adjustments for Drug", 0.03},
		{"Regulatory Status for Drug", 0.02},
	}
}

// Config tunes the simulation.
type Config struct {
	// Interactions is the number of simulated requests.
	Interactions int
	// Usage fixes shares for named intents; the remaining probability
	// mass is spread uniformly over the space's other task intents.
	Usage []IntentShare
	// Seed drives all randomness.
	Seed int64

	// MisspellWordProb is the per-word probability of one random edit.
	MisspellWordProb float64
	// GibberishProb is the per-interaction probability of a meaningless
	// utterance ("apfjhd", §7.2).
	GibberishProb float64
	// KeywordStyleProb drops the utterance to bare keywords.
	KeywordStyleProb float64
	// SlotAnswerProb is the chance the user answers an elicitation
	// instead of abandoning (the SMEs observed users not answering
	// follow-ups, §7.2).
	SlotAnswerProb float64

	// NegativeFeedbackProb: a dissatisfied user presses thumbs-down.
	NegativeFeedbackProb float64
	// PositiveFeedbackProb: a satisfied user presses thumbs-up ("rarely
	// used", §7.2).
	PositiveFeedbackProb float64
	// AccidentalNegativeProb: thumbs-down pressed by mistake on a good
	// answer (still counted negative, as the paper does).
	AccidentalNegativeProb float64

	// SMESampleRate is the fraction of interactions re-judged by SMEs
	// (≈10%, §7.2).
	SMESampleRate float64
}

// DefaultConfig returns the calibration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Interactions:     20000,
		Usage:            MDXUsage(),
		Seed:             2019,
		MisspellWordProb: 0.015,
		GibberishProb:    0.012,
		KeywordStyleProb: 0.18,
		SlotAnswerProb:   0.97,
		// §7.2: users under-report failures — the paper's 10% sample has
		// 97.9% success by thumbs but only 90.8% by SME judgement, i.e.
		// roughly a third of failures draw a thumbs-down.
		NegativeFeedbackProb:   0.35,
		PositiveFeedbackProb:   0.05,
		AccidentalNegativeProb: 0.004,
		SMESampleRate:          0.10,
	}
}

// Interaction is one logged request.
type Interaction struct {
	// Expected is the intent the simulated user had in mind ("" for
	// gibberish).
	Expected string
	// Detected is the intent the agent routed to on the answering (or
	// final) turn.
	Detected string
	// Utterance is the opening user input.
	Utterance string
	// Turns is the number of user turns the request took.
	Turns int
	// Answered marks interactions where a KB answer was produced.
	Answered bool
	// Correct marks objectively successful interactions (right intent,
	// request completed) — the ground truth the SME judge sees.
	Correct bool
	// Negative marks interactions that received a thumbs-down.
	Negative bool
	// SMEJudged marks membership in the 10% SME sample.
	SMEJudged bool
	// SMENegative is the SME verdict on sampled interactions.
	SMENegative bool
}

// Log is a full simulated usage log.
type Log struct {
	Interactions []Interaction
}

// Run simulates the usage study against the agent: a Scripter draws the
// interaction plans and plays each against a fresh session.
func Run(ag *agent.Agent, cfg Config) *Log {
	if cfg.Interactions <= 0 {
		cfg.Interactions = 20000
	}
	sc := NewScripter(ag.Space(), cfg)
	log := &Log{Interactions: make([]Interaction, 0, cfg.Interactions)}
	for i := 0; i < cfg.Interactions; i++ {
		log.Interactions = append(log.Interactions, sc.Interact(ag))
	}
	return log
}

// userModel generates utterances and reacts to agent replies.
type userModel struct {
	space *core.Space
	rng   *rand.Rand
	cfg   Config
	// task intents eligible for the long tail
	tail []string
	// cumulative distribution over (intent, weight)
	dist []IntentShare
	// per-entity-type value lists (canonical + synonyms as variants)
	values map[string][]valueVariant
	// surface forms for each answer concept (from the Concepts entity)
	conceptSurface map[string][]string
}

type valueVariant struct {
	canonical string
	surface   string
}

func newUserModel(space *core.Space, rng *rand.Rand, cfg Config) *userModel {
	u := &userModel{
		space: space, rng: rng, cfg: cfg,
		values:         map[string][]valueVariant{},
		conceptSurface: map[string][]string{},
	}
	named := map[string]bool{}
	total := 0.0
	for _, s := range cfg.Usage {
		named[s.Intent] = true
		total += s.Weight
	}
	for _, in := range space.Intents {
		if in.Kind == core.ConversationPattern || named[in.Name] {
			continue
		}
		if in.Kind == core.GeneralEntityPattern && !named[in.Name] {
			continue
		}
		u.tail = append(u.tail, in.Name)
	}
	sort.Strings(u.tail)
	u.dist = append([]IntentShare(nil), cfg.Usage...)
	if rest := 1 - total; rest > 0 && len(u.tail) > 0 {
		per := rest / float64(len(u.tail))
		for _, name := range u.tail {
			u.dist = append(u.dist, IntentShare{Intent: name, Weight: per})
		}
	}
	for _, def := range space.Entities {
		if def.Kind == "concept" && def.Name == "Concepts" {
			for _, v := range def.Values {
				surfaces := append([]string{}, v.Synonyms...)
				u.conceptSurface[v.Value] = surfaces
			}
			continue
		}
		if def.Kind != "instance" && def.Kind != "value" {
			continue
		}
		for _, v := range def.Values {
			u.values[def.Name] = append(u.values[def.Name], valueVariant{v.Value, v.Value})
			for _, syn := range v.Synonyms {
				u.values[def.Name] = append(u.values[def.Name], valueVariant{v.Value, syn})
			}
		}
	}
	return u
}

func (u *userModel) pickIntent() string {
	r := u.rng.Float64()
	acc := 0.0
	for _, s := range u.dist {
		acc += s.Weight
		if r < acc {
			return s.Intent
		}
	}
	return u.dist[len(u.dist)-1].Intent
}

func (u *userModel) pickValue(entity string) (valueVariant, bool) {
	vs := u.values[entity]
	if len(vs) == 0 {
		return valueVariant{}, false
	}
	return vs[u.rng.Intn(len(vs))], true
}

// missingEntity returns the first required entity of the intent the user
// has not provided yet.
func (u *userModel) missingEntity(in *core.Intent, provided map[string]string) string {
	for _, req := range in.Required {
		if _, ok := provided[req.Entity]; !ok {
			return req.Entity
		}
	}
	return ""
}

func (u *userModel) applyFeedback(rec *Interaction) {
	if rec.Correct {
		if u.rng.Float64() < u.cfg.AccidentalNegativeProb {
			rec.Negative = true // pressed by mistake; still counted (§7.2)
		}
	} else {
		if u.rng.Float64() < u.cfg.NegativeFeedbackProb {
			rec.Negative = true
		}
	}
	if u.rng.Float64() < u.cfg.SMESampleRate {
		rec.SMEJudged = true
		rec.SMENegative = !rec.Correct
	}
}

func gibberish(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	n := 4 + rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
