package sim_test

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"ontoconv/internal/agent"
	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/medkb"
	"ontoconv/internal/sim"
)

var (
	once   sync.Once
	ag     *agent.Agent
	base   *kb.KB
	space  *core.Space
	setupE error
)

func fixture(t *testing.T) *agent.Agent {
	t.Helper()
	once.Do(func() {
		var err error
		base, _, space, err = medkb.Bootstrap()
		if err != nil {
			setupE = err
			return
		}
		ag, setupE = agent.New(space, base, agent.Options{})
	})
	if setupE != nil {
		t.Fatal(setupE)
	}
	return ag
}

func smallConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Interactions = 1200
	return cfg
}

func TestRunDeterministic(t *testing.T) {
	a := fixture(t)
	cfg := smallConfig()
	l1 := sim.Run(a, cfg)
	l2 := sim.Run(a, cfg)
	if len(l1.Interactions) != len(l2.Interactions) {
		t.Fatalf("sizes differ: %d vs %d", len(l1.Interactions), len(l2.Interactions))
	}
	for i := range l1.Interactions {
		if !reflect.DeepEqual(l1.Interactions[i], l2.Interactions[i]) {
			t.Fatalf("interaction %d differs:\n%+v\n%+v", i, l1.Interactions[i], l2.Interactions[i])
		}
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	a := fixture(t)
	cfg := smallConfig()
	l1 := sim.Run(a, cfg)
	cfg.Seed++
	l2 := sim.Run(a, cfg)
	same := true
	for i := range l1.Interactions {
		if l1.Interactions[i].Utterance != l2.Interactions[i].Utterance {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestUsageDistributionApproximatesTable5(t *testing.T) {
	a := fixture(t)
	cfg := smallConfig()
	cfg.Interactions = 3000
	log := sim.Run(a, cfg)
	shares := map[string]float64{}
	for _, st := range log.PerIntent() {
		shares[st.Intent] = st.Share
	}
	for _, want := range sim.MDXUsage() {
		got := shares[want.Intent]
		if math.Abs(got-want.Weight) > 0.03 {
			t.Errorf("%s share = %.3f, want ≈ %.3f", want.Intent, got, want.Weight)
		}
	}
}

func TestSuccessRatesInPaperRange(t *testing.T) {
	a := fixture(t)
	cfg := smallConfig()
	cfg.Interactions = 3000
	log := sim.Run(a, cfg)
	overall := log.OverallSuccessRate()
	// paper: 96.3%; the reproduction must land in the mid-90s
	if overall < 0.90 || overall > 0.995 {
		t.Fatalf("overall success = %.3f, outside the plausible band", overall)
	}
	for _, st := range log.TopN(10) {
		if st.SuccessRate < 0.85 {
			t.Errorf("%s success = %.3f, implausibly low (n=%d)", st.Intent, st.SuccessRate, st.Interactions)
		}
	}
}

func TestSMESampleProperties(t *testing.T) {
	a := fixture(t)
	cfg := smallConfig()
	cfg.Interactions = 3000
	log := sim.Run(a, cfg)
	s := log.SMEStats()
	frac := float64(s.Size) / float64(len(log.Interactions))
	if math.Abs(frac-cfg.SMESampleRate) > 0.02 {
		t.Fatalf("SME sample fraction = %.3f, want ≈ %.2f", frac, cfg.SMESampleRate)
	}
	// SMEs judge objectively: stricter than (or equal to) user thumbs
	// (paper: 90.8% vs 97.9%)
	if s.SMESuccessRate > s.UserSuccessRate+1e-9 {
		t.Fatalf("SME success %.3f should not exceed user-reported %.3f",
			s.SMESuccessRate, s.UserSuccessRate)
	}
}

func TestEquationOneArithmetic(t *testing.T) {
	log := &sim.Log{Interactions: []sim.Interaction{
		{Expected: "A", Negative: false},
		{Expected: "A", Negative: true},
		{Expected: "A", Negative: false},
		{Expected: "B", Negative: false},
	}}
	if got := log.OverallSuccessRate(); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("Eq.1 = %v, want 0.75", got)
	}
	per := log.PerIntent()
	if per[0].Intent != "A" || per[0].Interactions != 3 || per[0].Negatives != 1 {
		t.Fatalf("per-intent = %+v", per[0])
	}
	if math.Abs(per[0].SuccessRate-2.0/3) > 1e-9 {
		t.Fatalf("A success = %v", per[0].SuccessRate)
	}
	if per[0].Share != 0.75 {
		t.Fatalf("A share = %v", per[0].Share)
	}
}

func TestAttributionFallsBackToDetected(t *testing.T) {
	log := &sim.Log{Interactions: []sim.Interaction{
		{Expected: "", Detected: "X"},
		{Expected: "", Detected: ""},
	}}
	per := log.PerIntent()
	names := map[string]bool{}
	for _, st := range per {
		names[st.Intent] = true
	}
	if !names["X"] || !names["(unrecognized)"] {
		t.Fatalf("attribution = %v", per)
	}
}

func TestTopN(t *testing.T) {
	log := &sim.Log{Interactions: []sim.Interaction{
		{Expected: "A"}, {Expected: "A"}, {Expected: "B"},
	}}
	top := log.TopN(1)
	if len(top) != 1 || top[0].Intent != "A" {
		t.Fatalf("TopN = %+v", top)
	}
}

func TestBaselineWorseThanAgent(t *testing.T) {
	a := fixture(t)
	cfg := smallConfig()
	cfg.Interactions = 1500
	alog := sim.Run(a, cfg)
	kw := agent.NewKeywordAgent(space, base)
	blog := sim.RunBaseline(kw, space, cfg)
	acc := func(l *sim.Log) float64 {
		c := 0
		for _, r := range l.Interactions {
			if r.Correct {
				c++
			}
		}
		return float64(c) / float64(len(l.Interactions))
	}
	if acc(blog) >= acc(alog) {
		t.Fatalf("baseline accuracy %.3f must trail the agent %.3f", acc(blog), acc(alog))
	}
	if blog.OverallSuccessRate() >= alog.OverallSuccessRate() {
		t.Fatalf("baseline success %.3f must trail the agent %.3f",
			blog.OverallSuccessRate(), alog.OverallSuccessRate())
	}
}

func TestSMEStatsEmptyLog(t *testing.T) {
	log := &sim.Log{}
	s := log.SMEStats()
	if s.Size != 0 || s.SMESuccessRate != 0 {
		t.Fatalf("empty SME stats = %+v", s)
	}
	if log.OverallSuccessRate() != 0 {
		t.Fatal("empty overall should be 0")
	}
}
