package sim

import (
	"strings"

	"ontoconv/internal/core"
)

// leadIns are user phrasings, deliberately wider than the bootstrap
// phrase lists so classification is tested on unseen variation.
var leadIns = []string{
	"show me", "give me", "what are the", "tell me the", "can I see",
	"do you have", "pull up", "I need the", "looking for", "find",
	"list the", "what's the", "need", "get me the",
}

var treatTemplates = []string{
	"show me drugs that treat %s",
	"what treats %s",
	"which drugs treat %s",
	"what drug treats %s",
	"medications that treat %s",
	"treatment options for %s",
	"what can I give for %s",
	"how do I treat %s",
}

var dosageTemplates = []string{
	"dosage for %s",
	"%s dosing",
	"%s dose",
	"what is the dosage for %s",
	"how should I dose %s",
	"give me the dosage for %s",
}

// composeUtterance builds the opening utterance for an intent and returns
// the entities it explicitly provides.
func (u *userModel) composeUtterance(in *core.Intent) (string, map[string]string) {
	provided := map[string]string{}
	var utterance string
	switch {
	case in.Kind == core.GeneralEntityPattern:
		if v, ok := u.pickValue(in.AnswerConcept); ok {
			provided[in.AnswerConcept] = v.canonical
			utterance = v.surface
		}
	case in.Kind == core.DirectRelationPattern:
		utterance = u.composeRelation(in, provided)
	case in.Kind == core.IndirectRelationPattern:
		utterance = u.composeIndirect(in, provided)
	default:
		utterance = u.composeLookup(in, provided)
	}
	return u.noisy(utterance), provided
}

// composeLookup renders "show me the precautions for Aspirin" style
// requests, sometimes omitting the key entity (triggering elicitation) and
// sometimes in bare keyword style.
func (u *userModel) composeLookup(in *core.Intent, provided map[string]string) string {
	concept := u.conceptPhrase(in)
	key, hasKey := u.firstInstanceRequired(in)
	var keyV valueVariant
	include := false
	if hasKey {
		if v, ok := u.pickValue(key); ok {
			keyV = v
			include = u.rng.Float64() < 0.85
		}
	}
	if include {
		provided[key] = keyV.canonical
		if u.rng.Float64() < u.cfg.KeywordStyleProb {
			if u.rng.Intn(2) == 0 {
				return keyV.surface + " " + concept
			}
			return concept + " " + keyV.surface
		}
		lead := leadIns[u.rng.Intn(len(leadIns))]
		conn := " for "
		if u.rng.Intn(3) == 0 {
			conn = " of "
		}
		return lead + " " + concept + conn + keyV.surface
	}
	lead := leadIns[u.rng.Intn(len(leadIns))]
	return lead + " " + concept
}

// composeRelation renders treatment-style requests.
func (u *userModel) composeRelation(in *core.Intent, provided map[string]string) string {
	key, ok := u.firstInstanceRequired(in)
	if !ok {
		return u.composeLookup(in, provided)
	}
	v, ok := u.pickValue(key)
	if !ok {
		return u.composeLookup(in, provided)
	}
	provided[key] = v.canonical
	t := treatTemplates[u.rng.Intn(len(treatTemplates))]
	utterance := strings.Replace(t, "%s", v.surface, 1)
	// Optionally mention the age group up front ("… in children").
	if ag, hasAG := u.valueRequired(in); hasAG && u.rng.Float64() < 0.3 {
		if av, got := u.pickValue(ag); got {
			provided[ag] = av.canonical
			if u.rng.Intn(2) == 0 {
				utterance += " in " + av.surface
			} else {
				utterance += " for " + av.surface
			}
		}
	}
	return utterance
}

// composeIndirect renders dosage-style requests over two key concepts.
func (u *userModel) composeIndirect(in *core.Intent, provided map[string]string) string {
	var drugV, indV valueVariant
	var drugE, indE string
	n := 0
	for _, req := range in.Required {
		if u.entityKind(req.Entity) != "instance" {
			continue
		}
		if n == 0 {
			drugE = req.Entity
		} else if n == 1 {
			indE = req.Entity
		}
		n++
	}
	if drugE == "" {
		return u.composeLookup(in, provided)
	}
	dv, ok := u.pickValue(drugE)
	if !ok {
		return u.composeLookup(in, provided)
	}
	drugV = dv
	provided[drugE] = drugV.canonical
	t := dosageTemplates[u.rng.Intn(len(dosageTemplates))]
	utterance := strings.Replace(t, "%s", drugV.surface, 1)
	if indE != "" && u.rng.Float64() < 0.45 {
		if iv, got := u.pickValue(indE); got {
			indV = iv
			provided[indE] = indV.canonical
			utterance += " for " + indV.surface
		}
	}
	if ag, hasAG := u.valueRequired(in); hasAG && u.rng.Float64() < 0.25 {
		if av, got := u.pickValue(ag); got {
			provided[ag] = av.canonical
			utterance += " " + av.surface
		}
	}
	return utterance
}

// conceptPhrase picks a surface form for the intent's answer concept: its
// label-derived phrase from the intent name, or a domain synonym.
func (u *userModel) conceptPhrase(in *core.Intent) string {
	surfaces := append([]string(nil), u.conceptSurface[in.AnswerConcept]...)
	// the phrase embedded in the intent name ("Adverse Effects of Drug")
	name := in.Name
	for _, sep := range []string{" of ", " for ", " That "} {
		if i := strings.Index(name, sep); i > 0 {
			surfaces = append(surfaces, strings.ToLower(name[:i]))
			break
		}
	}
	if len(surfaces) == 0 {
		surfaces = []string{strings.ToLower(name)}
	}
	return surfaces[u.rng.Intn(len(surfaces))]
}

// firstInstanceRequired returns the first required entity backed by KB
// instances.
func (u *userModel) firstInstanceRequired(in *core.Intent) (string, bool) {
	for _, req := range in.Required {
		if u.entityKind(req.Entity) == "instance" {
			return req.Entity, true
		}
	}
	return "", false
}

// valueRequired returns the first required value entity (AgeGroup).
func (u *userModel) valueRequired(in *core.Intent) (string, bool) {
	for _, req := range in.Required {
		if u.entityKind(req.Entity) == "value" {
			return req.Entity, true
		}
	}
	return "", false
}

func (u *userModel) entityKind(entity string) string {
	if def := u.space.Entity(entity); def != nil {
		return def.Kind
	}
	return ""
}

// noisy injects misspellings: with per-word probability, one random
// character edit (delete, substitute, transpose or insert).
func (u *userModel) noisy(utterance string) string {
	if utterance == "" {
		return utterance
	}
	words := strings.Fields(utterance)
	for i, w := range words {
		if len(w) < 5 || u.rng.Float64() >= u.cfg.MisspellWordProb {
			continue
		}
		words[i] = misspell(w, u.rng)
	}
	return strings.Join(words, " ")
}

func misspell(w string, rng interface{ Intn(int) int }) string {
	b := []byte(w)
	pos := 1 + rng.Intn(len(b)-2)
	switch rng.Intn(4) {
	case 0: // delete
		return string(append(b[:pos], b[pos+1:]...))
	case 1: // substitute
		b[pos] = byte('a' + rng.Intn(26))
		return string(b)
	case 2: // transpose
		b[pos-1], b[pos] = b[pos], b[pos-1]
		return string(b)
	default: // insert
		out := make([]byte, 0, len(b)+1)
		out = append(out, b[:pos]...)
		out = append(out, byte('a'+rng.Intn(26)))
		out = append(out, b[pos:]...)
		return string(out)
	}
}
