package sim

import (
	"math/rand"
	"sort"

	"ontoconv/internal/agent"
	"ontoconv/internal/core"
)

// IntentStats aggregates one intent's interactions.
type IntentStats struct {
	Intent       string
	Interactions int
	Negatives    int
	SuccessRate  float64 // Eq. 1: (interactions - negatives) / interactions
	Share        float64 // fraction of all interactions
	Correct      int     // objectively correct (ground truth)
	Accuracy     float64 // Correct / Interactions
}

// attributionIntent returns the intent an interaction is counted under:
// the intent the user intended when known (gibberish has none and falls
// back to what the agent detected, or "(unrecognized)").
func attributionIntent(r Interaction) string {
	if r.Expected != "" {
		return r.Expected
	}
	if r.Detected != "" {
		return r.Detected
	}
	return "(unrecognized)"
}

// OverallSuccessRate computes Eq. 1 over the whole log.
func (l *Log) OverallSuccessRate() float64 {
	if len(l.Interactions) == 0 {
		return 0
	}
	neg := 0
	for _, r := range l.Interactions {
		if r.Negative {
			neg++
		}
	}
	return float64(len(l.Interactions)-neg) / float64(len(l.Interactions))
}

// PerIntent aggregates success rates per intent, descending by usage.
func (l *Log) PerIntent() []IntentStats {
	agg := map[string]*IntentStats{}
	var order []string
	for _, r := range l.Interactions {
		key := attributionIntent(r)
		st, ok := agg[key]
		if !ok {
			st = &IntentStats{Intent: key}
			agg[key] = st
			order = append(order, key)
		}
		st.Interactions++
		if r.Negative {
			st.Negatives++
		}
		if r.Correct {
			st.Correct++
		}
	}
	total := len(l.Interactions)
	out := make([]IntentStats, 0, len(order))
	for _, k := range order {
		st := agg[k]
		st.SuccessRate = float64(st.Interactions-st.Negatives) / float64(st.Interactions)
		st.Accuracy = float64(st.Correct) / float64(st.Interactions)
		if total > 0 {
			st.Share = float64(st.Interactions) / float64(total)
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Interactions != out[j].Interactions {
			return out[i].Interactions > out[j].Interactions
		}
		return out[i].Intent < out[j].Intent
	})
	return out
}

// TopN returns the N most-used intents' stats.
func (l *Log) TopN(n int) []IntentStats {
	all := l.PerIntent()
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// SMESample holds the Figure 12 comparison on the re-judged sample.
type SMESample struct {
	Size int
	// UserSuccessRate: Eq. 1 on the sample with user thumbs as the
	// negative signal (the paper reports 97.9%).
	UserSuccessRate float64
	// SMESuccessRate: Eq. 1 with SME verdicts (the paper reports 90.8%).
	SMESuccessRate float64
	// PerIntent success (SME verdicts) for the sample's top intents.
	PerIntent []IntentStats
}

// SMEStats evaluates the SME-judged sample.
func (l *Log) SMEStats() SMESample {
	s := SMESample{}
	agg := map[string]*IntentStats{}
	userNeg, smeNeg := 0, 0
	for _, r := range l.Interactions {
		if !r.SMEJudged {
			continue
		}
		s.Size++
		if r.Negative {
			userNeg++
		}
		if r.SMENegative {
			smeNeg++
		}
		key := attributionIntent(r)
		st, ok := agg[key]
		if !ok {
			st = &IntentStats{Intent: key}
			agg[key] = st
		}
		st.Interactions++
		if r.SMENegative {
			st.Negatives++
		}
		if r.Correct {
			st.Correct++
		}
	}
	if s.Size == 0 {
		return s
	}
	s.UserSuccessRate = float64(s.Size-userNeg) / float64(s.Size)
	s.SMESuccessRate = float64(s.Size-smeNeg) / float64(s.Size)
	for _, st := range agg {
		st.SuccessRate = float64(st.Interactions-st.Negatives) / float64(st.Interactions)
		st.Accuracy = float64(st.Correct) / float64(st.Interactions)
		st.Share = float64(st.Interactions) / float64(s.Size)
		s.PerIntent = append(s.PerIntent, *st)
	}
	sort.Slice(s.PerIntent, func(i, j int) bool {
		if s.PerIntent[i].Interactions != s.PerIntent[j].Interactions {
			return s.PerIntent[i].Interactions > s.PerIntent[j].Interactions
		}
		return s.PerIntent[i].Intent < s.PerIntent[j].Intent
	})
	return s
}

// RunBaseline replays the same seeded workload against the keyword-search
// baseline (single-shot: no slot filling, no context) and returns its log.
// Correctness requires the baseline to answer with the intended intent on
// the first utterance.
func RunBaseline(base *agent.KeywordAgent, space *core.Space, cfg Config) *Log {
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := newUserModel(space, rng, cfg)
	log := &Log{}
	for i := 0; i < cfg.Interactions; i++ {
		rec := Interaction{}
		if u.rng.Float64() < cfg.GibberishProb {
			rec.Utterance = gibberish(u.rng)
			_, rec.Detected = base.Respond(rec.Utterance)
			rec.Turns = 1
			u.applyFeedback(&rec)
			log.Interactions = append(log.Interactions, rec)
			continue
		}
		intent := u.pickIntent()
		in := u.space.Intent(intent)
		if in == nil {
			continue
		}
		rec.Expected = intent
		utterance, _ := u.composeUtterance(in)
		rec.Utterance = utterance
		rec.Turns = 1
		reply, detected := base.Respond(utterance)
		rec.Detected = detected
		rec.Answered = detected != "" && reply != "No results found."
		rec.Correct = rec.Answered && detected == intent
		u.applyFeedback(&rec)
		log.Interactions = append(log.Interactions, rec)
	}
	return log
}
