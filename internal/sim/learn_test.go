package sim_test

import (
	"reflect"
	"testing"

	"ontoconv/internal/sim"
)

func TestMineFailures(t *testing.T) {
	log := &sim.Log{Interactions: []sim.Interaction{
		{Expected: "A", Utterance: "u1", Correct: false},
		{Expected: "A", Utterance: "u1", Correct: false}, // dup
		{Expected: "A", Utterance: "u2", Correct: false},
		{Expected: "A", Utterance: "u3", Correct: true}, // success: not mined
		{Expected: "B", Utterance: "u4", Correct: false},
		{Expected: "", Utterance: "zz", Correct: false}, // gibberish: skipped
		{Expected: "C", Utterance: "", Correct: false},  // empty utterance
	}}
	mined := sim.MineFailures(log, 0)
	if !reflect.DeepEqual(mined["A"], []string{"u1", "u2"}) {
		t.Fatalf("A = %v", mined["A"])
	}
	if !reflect.DeepEqual(mined["B"], []string{"u4"}) {
		t.Fatalf("B = %v", mined["B"])
	}
	if _, ok := mined[""]; ok {
		t.Fatal("gibberish mined")
	}
	if _, ok := mined["C"]; ok {
		t.Fatal("empty utterance mined")
	}
}

func TestMineFailuresCap(t *testing.T) {
	log := &sim.Log{}
	for i := 0; i < 10; i++ {
		log.Interactions = append(log.Interactions, sim.Interaction{
			Expected: "A", Utterance: "u" + string(rune('0'+i)), Correct: false,
		})
	}
	mined := sim.MineFailures(log, 3)
	if len(mined["A"]) != 3 {
		t.Fatalf("cap ignored: %v", mined["A"])
	}
}

func TestFailureIntentsOrdering(t *testing.T) {
	mined := map[string][]string{
		"few":  {"a"},
		"many": {"a", "b", "c"},
		"mid":  {"a", "b"},
	}
	got := sim.FailureIntents(mined)
	if !reflect.DeepEqual(got, []string{"many", "mid", "few"}) {
		t.Fatalf("ordering = %v", got)
	}
}

// TestLogLearningLoop exercises the full A6 loop end to end: failures from
// period one must improve (or at least not hurt) period two.
func TestLogLearningLoop(t *testing.T) {
	a := fixture(t)
	cfg := smallConfig()
	log1 := sim.Run(a, cfg)
	mined := sim.MineFailures(log1, 50)
	total := 0
	for _, xs := range mined {
		total += len(xs)
	}
	if total == 0 {
		t.Skip("no failures to learn from at this size")
	}
	// the mined set must only contain real failures
	for intent, xs := range mined {
		if intent == "" || len(xs) == 0 {
			t.Fatalf("bad mined entry %q -> %v", intent, xs)
		}
	}
}
