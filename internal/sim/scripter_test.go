package sim_test

import (
	"math"
	"reflect"
	"testing"

	"ontoconv/internal/sim"
)

// TestScripterDeterministic pins the factored-out user model: two
// scripters with the same (space, seed) plan identical interactions,
// and playing them against the same agent yields identical records —
// the property cmd/loadgen relies on for reproducible load shapes.
func TestScripterDeterministic(t *testing.T) {
	a := fixture(t)
	cfg := sim.DefaultConfig()
	cfg.Seed = 123
	s1 := sim.NewScripter(a.Space(), cfg)
	s2 := sim.NewScripter(a.Space(), cfg)
	for i := 0; i < 500; i++ {
		r1, r2 := s1.Interact(a), s2.Interact(a)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("interaction %d diverged:\n%+v\n%+v", i, r1, r2)
		}
	}
}

// TestScripterMatchesRun pins that Run is exactly the Scripter protocol:
// the refactor must not have changed a single draw.
func TestScripterMatchesRun(t *testing.T) {
	a := fixture(t)
	cfg := sim.DefaultConfig()
	cfg.Interactions = 800
	cfg.Seed = 7
	log := sim.Run(a, cfg)

	sc := sim.NewScripter(a.Space(), cfg)
	for i, want := range log.Interactions {
		got := sc.Interact(a)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interaction %d: scripter %+v, Run %+v", i, got, want)
		}
	}
}

// TestScripterStandaloneMix draws scripts without any agent — loadgen's
// mode of use — and checks the stream carries the configured traffic
// shape: the gibberish rate and the Table-5 head intents.
func TestScripterStandaloneMix(t *testing.T) {
	a := fixture(t)
	cfg := sim.DefaultConfig()
	cfg.Seed = 99
	sc := sim.NewScripter(a.Space(), cfg)

	const n = 20000
	gib := 0
	intents := map[string]int{}
	for i := 0; i < n; i++ {
		sp := sc.Next()
		if sp.Skip {
			t.Fatalf("script %d: skip draw from the default usage mix", i)
		}
		if sp.Gibberish {
			gib++
			if sp.Utterance == "" || sp.Expected != "" {
				t.Fatalf("gibberish script %d malformed: %+v", i, sp)
			}
			// A gibberish interaction is one turn: React is immediately done.
			if next, done := sc.React(sp, "whatever", false, false); !done || next != "" {
				t.Fatalf("gibberish script reacted: %q", next)
			}
			continue
		}
		if sp.Utterance == "" || sp.Expected == "" {
			t.Fatalf("script %d missing utterance or intent: %+v", i, sp)
		}
		intents[sp.Expected]++
		// Abandon every request up front so no follow-up draws interleave:
		// an answered conversation ends the script.
		if next, done := sc.React(sp, "done", true, false); !done || next != "" {
			t.Fatalf("answered script %d continued with %q", i, next)
		}
	}
	if rate := float64(gib) / n; math.Abs(rate-cfg.GibberishProb) > 0.005 {
		t.Fatalf("gibberish rate %.4f, want ≈ %.4f", rate, cfg.GibberishProb)
	}
	for _, share := range sim.MDXUsage() {
		got := float64(intents[share.Intent]) / n
		if math.Abs(got-share.Weight) > 0.03 {
			t.Fatalf("intent %q share %.3f, want ≈ %.3f", share.Intent, got, share.Weight)
		}
	}
}

// TestScripterFollowupCap checks React gives up after 4 follow-ups even
// against an agent that keeps asking questions (a misbehaving server
// must not wedge a load worker in an endless elicitation).
func TestScripterFollowupCap(t *testing.T) {
	a := fixture(t)
	cfg := sim.DefaultConfig()
	cfg.Seed = 5
	cfg.GibberishProb = 0
	cfg.SlotAnswerProb = 1
	sc := sim.NewScripter(a.Space(), cfg)
	for i := 0; i < 200; i++ {
		sp := sc.Next()
		turns := 0
		for {
			// Always reply with an open question proposing more data.
			next, done := sc.React(sp, "Would you like to see more?", false, false)
			if done {
				break
			}
			if next == "" {
				t.Fatalf("script %d: empty follow-up", i)
			}
			turns++
			if turns > 10 {
				t.Fatalf("script %d: no follow-up cap", i)
			}
		}
		if turns > 4 {
			t.Fatalf("script %d issued %d follow-ups, cap is 4", i, turns)
		}
		rec := sc.Score(sp, "", false, "")
		if rec.Turns != sp.Turns() {
			t.Fatalf("turn bookkeeping: rec %d vs script %d", rec.Turns, sp.Turns())
		}
	}
}
