package sim

import (
	"math/rand"
	"strings"

	"ontoconv/internal/agent"
	"ontoconv/internal/core"
)

// Scripter is the user model factored out of Run so the utterance stream
// can be drawn without an in-process agent: cmd/loadgen drives a running
// mdxserver over HTTP with exactly the traffic shape of the usage study —
// the Table-5 intent mix, elicitation follow-ups, misspellings, keyword
// queries, gibberish, and abandoned requests.
//
// The protocol per interaction:
//
//	sp := sc.Next()                 // opening utterance (skip if sp.Skip)
//	reply := send(sp.Utterance)     // agent turn 1
//	for {
//	    next, done := sc.React(sp, reply, answered, closed)
//	    if done { break }
//	    reply = send(next)
//	}
//	rec := sc.Score(sp, detectedIntent, answered, finalReply)
//
// A Scripter is NOT goroutine-safe: all draws come from one seeded
// stream, so a (space, Config) pair replays the same conversation plan
// bit-for-bit. Concurrent drivers use one Scripter per worker with
// distinct seeds.
type Scripter struct {
	u *userModel
}

// NewScripter builds a scripter over the ontology space. Only the noise,
// feedback and usage-mix fields of cfg apply; Interactions is ignored
// (the caller decides how many scripts to draw).
func NewScripter(space *core.Space, cfg Config) *Scripter {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Scripter{u: newUserModel(space, rng, cfg)}
}

// Script is one planned interaction: the opening utterance plus the
// private state React needs to play the rest of the conversation.
type Script struct {
	// Expected is the intent the simulated user has in mind ("" for
	// gibberish).
	Expected string
	// Utterance is the opening user input.
	Utterance string
	// Gibberish marks meaningless input (§7.2's "apfjhd").
	Gibberish bool
	// Skip marks a degenerate draw (the usage mix named an intent the
	// space does not define): nothing to send, score as-is.
	Skip bool

	in        *core.Intent
	provided  map[string]string
	turns     int
	followups int
}

// Turns reports how many user turns the script has issued so far.
func (sp *Script) Turns() int { return sp.turns }

// Next draws the next interaction's opening move.
func (sc *Scripter) Next() *Script {
	u := sc.u
	sp := &Script{}
	if u.rng.Float64() < u.cfg.GibberishProb {
		sp.Gibberish = true
		sp.Utterance = gibberish(u.rng)
		sp.turns = 1
		return sp
	}
	intent := u.pickIntent()
	in := u.space.Intent(intent)
	if in == nil {
		sp.Skip = true
		return sp
	}
	sp.Expected = intent
	sp.in = in
	sp.Utterance, sp.provided = u.composeUtterance(in)
	sp.turns = 1
	return sp
}

// React consumes the agent's reply to the script's previous utterance
// and returns the user's next one, or done=true when the user walks away
// — satisfied, abandoned (§7.2's unanswered follow-ups), or out of
// patience (at most 4 follow-up turns).
func (sc *Scripter) React(sp *Script, reply string, answered, closed bool) (string, bool) {
	u := sc.u
	if sp.Gibberish || sp.Skip || sp.followups >= 4 {
		return "", true
	}
	if answered || closed {
		return "", true
	}
	if strings.HasPrefix(reply, "Would you like to see") {
		// Proposal flow (DRUG_GENERAL): accept half the time.
		sp.followups++
		sp.turns++
		if u.rng.Float64() < 0.5 {
			return "yes", false
		}
		return "no", false
	}
	missing := u.missingEntity(sp.in, sp.provided)
	if missing == "" || !strings.Contains(reply, "?") {
		return "", true
	}
	if u.rng.Float64() > u.cfg.SlotAnswerProb {
		return "", true // user abandons the follow-up (§7.2 SME observation)
	}
	v, ok := u.pickValue(missing)
	if !ok {
		return "", true
	}
	sp.provided[missing] = v.canonical
	sp.followups++
	sp.turns++
	return u.noisy(v.surface), false
}

// Score closes the interaction: correctness against the user's actual
// goal, then the thumbs and SME feedback models.
func (sc *Scripter) Score(sp *Script, detected string, answered bool, finalReply string) Interaction {
	u := sc.u
	rec := Interaction{}
	if sp.Skip {
		return rec
	}
	rec.Expected = sp.Expected
	rec.Utterance = sp.Utterance
	rec.Turns = sp.turns
	rec.Detected = detected
	rec.Answered = answered
	if sp.Gibberish {
		rec.Correct = false
		u.applyFeedback(&rec)
		return rec
	}
	switch sp.in.Kind {
	case core.GeneralEntityPattern:
		// Correct when the agent either answered a proposed lookup or
		// made a proposal the user declined.
		rec.Correct = answered || detected == sp.Expected ||
			strings.HasPrefix(finalReply, "Would you like") || finalReply == "OK. Please modify your search."
	default:
		rec.Correct = answered && detected == sp.Expected
	}
	u.applyFeedback(&rec)
	return rec
}

// Interact plays one full script against an in-process agent in a fresh
// session — the Run loop's body, also usable on its own.
func (sc *Scripter) Interact(ag *agent.Agent) Interaction {
	sp := sc.Next()
	if sp.Skip {
		return sc.Score(sp, "", false, "")
	}
	s := agent.NewSession()
	reply := ag.Respond(s, sp.Utterance)
	for {
		last := s.LastTurn()
		next, done := sc.React(sp, reply, last.Answered, s.Closed())
		if done {
			break
		}
		reply = ag.Respond(s, next)
	}
	last := s.LastTurn()
	return sc.Score(sp, last.Intent, last.Answered, last.Agent)
}
