// Package workspace hosts many conversation domains in one process: a
// registry maps tenant names to content-addressed bundles and to lazily
// constructed, LRU-resident agents. The paper's system is deployed as one
// hosted service per knowledge base (§7); the sealed bundle format makes a
// domain a portable artifact, so one server can load N of them and keep
// only the hot ones resident.
//
// Residency discipline: an evicted tenant keeps its sessions (they live in
// the HTTP server) and its metric bundle (created once per tenant,
// partitioned by a tenant label on a shared registry); only the agent —
// classifier, KB indexes, compiled plans — is released. A later request
// re-admits the tenant by rebuilding from its bundle source. In-flight
// turns hold their own *agent.Agent reference, so eviction never yanks a
// runtime out from under an active turn.
package workspace

import (
	"fmt"
	"sort"
	"sync"

	"ontoconv/internal/agent"
	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/obs"
)

// Source describes one tenant: how to read its bundle and how to
// materialize the knowledge base the bundle's query plans execute against
// (the KB is regenerated deterministically, not shipped in the bundle).
type Source struct {
	// Name is the tenant name (the <tenant> in /w/<tenant>/chat).
	Name string
	// Open reads the tenant's bundle — typically bundle.OpenFile on a
	// path, re-read on every (re)build and reload so edits are picked up.
	Open func() (*bundle.Bundle, error)
	// KB builds the indexed knowledge base for the bundle's space.
	KB func(space *core.Space) (*kb.KB, error)
	// Options configures the tenant's agent. Options.Metrics is
	// overwritten by the registry with the tenant's labeled bundle.
	Options agent.Options
}

// tenant is one registered workspace.
type tenant struct {
	src     Source
	metrics *agent.Metrics // created on first build, kept forever

	// buildMu serializes construction and reload per tenant so N
	// concurrent cold-starts produce exactly one build (singleflight).
	buildMu sync.Mutex

	// ag and lastUse are guarded by Registry.mu. ag == nil means not
	// resident.
	ag      *agent.Agent
	lastUse uint64
}

// Registry resolves tenant names to agents with bounded residency.
// It implements agent.WorkspaceResolver.
type Registry struct {
	reg *obs.Registry
	cap int

	resident  *obs.Gauge
	evictions *obs.Counter
	builds    *obs.CounterVec // workspace

	mu      sync.Mutex
	tenants map[string]*tenant
	clock   uint64 // logical LRU clock; bumped on every touch
}

// New builds a registry over the given sources. cap bounds how many
// tenants stay resident at once (<= 0 means unbounded); metrics land on
// reg, which the serving layer also exposes.
func New(reg *obs.Registry, cap int, sources ...Source) (*Registry, error) {
	r := &Registry{
		reg: reg,
		cap: cap,
		resident: reg.Gauge("mdx_workspace_resident",
			"Workspaces currently holding a constructed agent."),
		evictions: reg.Counter("mdx_workspace_evictions_total",
			"Workspace agents released by the LRU residency cap."),
		builds: reg.CounterVec("mdx_workspace_builds_total",
			"Agent constructions by workspace (cold starts and re-admissions).",
			"workspace"),
		tenants: make(map[string]*tenant),
	}
	for _, src := range sources {
		if src.Name == "" {
			return nil, fmt.Errorf("workspace: source with empty name")
		}
		if src.Open == nil || src.KB == nil {
			return nil, fmt.Errorf("workspace %q: Open and KB are required", src.Name)
		}
		if _, ok := r.tenants[src.Name]; ok {
			return nil, fmt.Errorf("workspace %q registered twice", src.Name)
		}
		r.tenants[src.Name] = &tenant{src: src}
	}
	return r, nil
}

// Workspaces lists the registered tenant names, sorted.
func (r *Registry) Workspaces() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Resident reports whether the tenant currently holds a constructed agent
// (tests and admin introspection).
func (r *Registry) Resident(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[name]
	return ok && t.ag != nil
}

// Resolve returns the tenant's agent, constructing it on first use or
// after eviction. Concurrent cold-starts of one tenant build exactly once;
// distinct tenants build in parallel.
func (r *Registry) Resolve(name string) (*agent.Agent, error) {
	r.mu.Lock()
	t, ok := r.tenants[name]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", agent.ErrUnknownWorkspace, name)
	}
	if t.ag != nil {
		r.clock++
		t.lastUse = r.clock
		ag := t.ag
		r.mu.Unlock()
		return ag, nil
	}
	r.mu.Unlock()

	t.buildMu.Lock()
	defer t.buildMu.Unlock()
	// Another goroutine may have finished the build while we waited.
	r.mu.Lock()
	if t.ag != nil {
		r.clock++
		t.lastUse = r.clock
		ag := t.ag
		r.mu.Unlock()
		return ag, nil
	}
	r.mu.Unlock()

	ag, err := r.build(t)
	if err != nil {
		return nil, err
	}
	r.admit(t, ag)
	return ag, nil
}

// build constructs the tenant's agent from its source. Called with
// t.buildMu held and r.mu released: construction is slow (KB generation,
// index builds) and must not block other tenants.
func (r *Registry) build(t *tenant) (*agent.Agent, error) {
	name := t.src.Name
	b, err := t.src.Open()
	if err != nil {
		return nil, fmt.Errorf("workspace %q: open bundle: %w", name, err)
	}
	base, err := t.src.KB(b.Space)
	if err != nil {
		return nil, fmt.Errorf("workspace %q: build KB: %w", name, err)
	}
	opts := t.src.Options
	if t.metrics == nil {
		// One labeled bundle per tenant for the process lifetime, so
		// counters survive eviction and rebuild.
		t.metrics = agent.NewTenantMetricsOn(r.reg, name)
	}
	opts.Metrics = t.metrics
	ag, err := agent.NewFromBundle(b, base, opts)
	if err != nil {
		return nil, fmt.Errorf("workspace %q: %w", name, err)
	}
	r.builds.With(name).Inc()
	return ag, nil
}

// admit installs a freshly built agent and enforces the residency cap.
func (r *Registry) admit(t *tenant, ag *agent.Agent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t.ag = ag
	r.clock++
	t.lastUse = r.clock
	r.evictOverCapLocked(t)
	r.resident.Set(int64(r.residentCountLocked()))
}

// evictOverCapLocked releases least-recently-used agents until the
// resident count fits the cap, never evicting the just-admitted tenant.
// Eviction only drops the registry's reference: turns already holding the
// agent finish on it, and the tenant's sessions and metrics live on.
func (r *Registry) evictOverCapLocked(keep *tenant) {
	if r.cap <= 0 {
		return
	}
	for r.residentCountLocked() > r.cap {
		var victim *tenant
		victimName := ""
		for name, t := range r.tenants {
			if t.ag == nil || t == keep {
				continue
			}
			// Ties on lastUse cannot happen (clock is strictly
			// increasing), but compare names anyway so victim choice is
			// deterministic under any future clock change.
			if victim == nil || t.lastUse < victim.lastUse ||
				(t.lastUse == victim.lastUse && name < victimName) {
				victim, victimName = t, name
			}
		}
		if victim == nil {
			return // only the protected tenant is resident
		}
		victim.ag = nil
		r.evictions.Inc()
	}
}

func (r *Registry) residentCountLocked() int {
	n := 0
	for _, t := range r.tenants {
		if t.ag != nil {
			n++
		}
	}
	return n
}

// Reload hot-swaps the tenant onto a freshly opened bundle and returns the
// new live version. A resident tenant swaps atomically via InstallBundle
// (in-flight turns finish on the old generation); a non-resident one is
// built and admitted.
func (r *Registry) Reload(name string) (string, error) {
	r.mu.Lock()
	t, ok := r.tenants[name]
	r.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("%w: %q", agent.ErrUnknownWorkspace, name)
	}

	t.buildMu.Lock()
	defer t.buildMu.Unlock()
	r.mu.Lock()
	ag := t.ag
	r.mu.Unlock()
	if ag == nil {
		ag, err := r.build(t)
		if err != nil {
			return "", err
		}
		r.admit(t, ag)
		return ag.Version(), nil
	}
	b, err := t.src.Open()
	if err != nil {
		t.metrics.Reloads.With("error").Inc()
		return "", fmt.Errorf("workspace %q: reload: %w", name, err)
	}
	if err := ag.InstallBundle(b); err != nil {
		return "", fmt.Errorf("workspace %q: %w", name, err)
	}
	return ag.Version(), nil
}
