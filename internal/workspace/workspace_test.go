package workspace_test

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ontoconv/internal/agent"
	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/obs"
	"ontoconv/internal/retailkb"
	"ontoconv/internal/workspace"
)

// The retail domain bootstraps in milliseconds, so every registry test
// cold-starts real agents; the bundle is compiled once and re-opened from
// bytes per build, like re-reading a file.
var (
	once        sync.Once
	bundleBytes []byte
	setupE      error
)

func bundleBlob(t *testing.T) []byte {
	t.Helper()
	once.Do(func() {
		_, _, space, err := retailkb.Bootstrap()
		if err != nil {
			setupE = err
			return
		}
		b, err := bundle.Compile(space, bundle.Options{})
		if err != nil {
			setupE = err
			return
		}
		buf := &bytes.Buffer{}
		if err := b.Write(buf); err != nil {
			setupE = err
			return
		}
		bundleBytes = buf.Bytes()
	})
	if setupE != nil {
		t.Fatal(setupE)
	}
	return bundleBytes
}

// source builds a tenant source over the shared retail bundle, counting
// bundle opens so tests can assert construction counts.
func source(t *testing.T, name string, opens *atomic.Int64) workspace.Source {
	blob := bundleBlob(t)
	return workspace.Source{
		Name: name,
		Open: func() (*bundle.Bundle, error) {
			if opens != nil {
				opens.Add(1)
			}
			return bundle.Open(bytes.NewReader(blob))
		},
		KB: func(space *core.Space) (*kb.KB, error) {
			base, err := retailkb.Generate(retailkb.DefaultConfig())
			if err != nil {
				return nil, err
			}
			if _, err := retailkb.BuildIndexes(base, space); err != nil {
				return nil, err
			}
			return base, nil
		},
	}
}

func TestSingleflightColdStart(t *testing.T) {
	var opens atomic.Int64
	reg, err := workspace.New(obs.NewRegistry(), 0, source(t, "r1", &opens))
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	agents := make([]*agent.Agent, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ag, err := reg.Resolve("r1")
			if err != nil {
				t.Error(err)
				return
			}
			agents[i] = ag
		}(i)
	}
	wg.Wait()
	if got := opens.Load(); got != 1 {
		t.Fatalf("%d concurrent cold-starts opened the bundle %d times, want exactly 1", n, got)
	}
	for i := 1; i < n; i++ {
		if agents[i] != agents[0] {
			t.Fatalf("goroutine %d got a different agent instance", i)
		}
	}
}

func TestLRUEvictionAndReadmission(t *testing.T) {
	var opensA, opensB atomic.Int64
	oreg := obs.NewRegistry()
	reg, err := workspace.New(oreg, 1, source(t, "a", &opensA), source(t, "b", &opensB))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Resolve("a"); err != nil {
		t.Fatal(err)
	}
	if !reg.Resident("a") {
		t.Fatal("a not resident after Resolve")
	}
	if _, err := reg.Resolve("b"); err != nil {
		t.Fatal(err)
	}
	if reg.Resident("a") || !reg.Resident("b") {
		t.Fatalf("cap=1: want b resident and a evicted; a=%v b=%v",
			reg.Resident("a"), reg.Resident("b"))
	}
	// Re-admission rebuilds a and evicts b.
	if _, err := reg.Resolve("a"); err != nil {
		t.Fatal(err)
	}
	if !reg.Resident("a") || reg.Resident("b") {
		t.Fatal("re-admission did not evict b")
	}
	if got := opensA.Load(); got != 2 {
		t.Fatalf("a built %d times, want 2 (cold start + re-admission)", got)
	}

	var sb strings.Builder
	oreg.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "mdx_workspace_resident 1") {
		t.Errorf("exposition missing mdx_workspace_resident 1\n%s", out)
	}
	if !strings.Contains(out, "mdx_workspace_evictions_total 2") {
		t.Errorf("exposition missing mdx_workspace_evictions_total 2\n%s", out)
	}
}

// TestEvictionNeverDropsAgentMidTurn: a turn holds its agent reference
// across an eviction and finishes on it.
func TestEvictionNeverDropsAgentMidTurn(t *testing.T) {
	reg, err := workspace.New(obs.NewRegistry(), 1, source(t, "a", nil), source(t, "b", nil))
	if err != nil {
		t.Fatal(err)
	}
	agA, err := reg.Resolve("a")
	if err != nil {
		t.Fatal(err)
	}
	// Force a's eviction mid-"turn".
	if _, err := reg.Resolve("b"); err != nil {
		t.Fatal(err)
	}
	if reg.Resident("a") {
		t.Fatal("a should be evicted")
	}
	s := agent.NewSession()
	r := agA.Respond(s, "show me the reviews for Aurora Headphones")
	if last := s.LastTurn(); last == nil || !last.Answered {
		t.Fatalf("held agent failed after eviction; reply = %q", r)
	}
}

func TestReloadResidentAndNot(t *testing.T) {
	var opens atomic.Int64
	reg, err := workspace.New(obs.NewRegistry(), 1, source(t, "a", &opens), source(t, "b", nil))
	if err != nil {
		t.Fatal(err)
	}
	// Non-resident reload builds and admits.
	v, err := reg.Reload("a")
	if err != nil {
		t.Fatal(err)
	}
	if v == "" || !reg.Resident("a") {
		t.Fatalf("non-resident reload: version=%q resident=%v", v, reg.Resident("a"))
	}
	// Resident reload swaps in place (one extra open, no re-admission).
	v2, err := reg.Reload("a")
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v {
		t.Fatalf("same bundle reload changed version %q -> %q", v, v2)
	}
	if got := opens.Load(); got != 2 {
		t.Fatalf("opens = %d, want 2 (build + in-place reload)", got)
	}
	if _, err := reg.Reload("zzz"); !errors.Is(err, agent.ErrUnknownWorkspace) {
		t.Fatalf("unknown reload error = %v", err)
	}
}

func TestUnknownWorkspace(t *testing.T) {
	reg, err := workspace.New(obs.NewRegistry(), 0, source(t, "a", nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Resolve("nope"); !errors.Is(err, agent.ErrUnknownWorkspace) {
		t.Fatalf("error = %v, want ErrUnknownWorkspace", err)
	}
	if ws := reg.Workspaces(); len(ws) != 1 || ws[0] != "a" {
		t.Fatalf("Workspaces() = %v", ws)
	}
}

// TestChatRacesEvictionAndReload hammers one registry from three sides —
// turns on tenant a, cold-starts of tenant b forcing a's eviction, and
// reloads of a — under cap=1. Run with -race; correctness here is "no
// race, no error, every turn answered".
func TestChatRacesEvictionAndReload(t *testing.T) {
	reg, err := workspace.New(obs.NewRegistry(), 1, source(t, "a", nil), source(t, "b", nil))
	if err != nil {
		t.Fatal(err)
	}
	const iters = 25
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			ag, err := reg.Resolve("a")
			if err != nil {
				t.Error(err)
				return
			}
			s := agent.NewSession()
			ag.Respond(s, "show me the reviews for Aurora Headphones")
			if last := s.LastTurn(); last == nil || !last.Answered {
				t.Error("turn on a went unanswered during eviction/reload churn")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := reg.Resolve("b"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := reg.Reload("a"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
