// Package ontogen implements data-driven ontology discovery from a
// relational knowledge base (paper §3 "Ontology Creation", approach 2, and
// reference [18]): it infers concepts from tables, data properties from
// columns, object properties from foreign keys, isA relationships from
// subtype tables that share the parent's primary key, unionOf relationships
// from disjoint exhaustive subtype families, and categorical attributes
// from distinct-value statistics.
//
// The hybrid approach the paper actually deploys (§3, approach 3) is
// obtained by post-editing the generated ontology — see Refine.
package ontogen

import (
	"fmt"
	"sort"
	"strings"

	"ontoconv/internal/kb"
	"ontoconv/internal/obs"
	"ontoconv/internal/ontology"
)

// Config tunes the discovery heuristics.
type Config struct {
	// CategoricalMaxDistinct is the largest distinct-value count a column
	// may have and still be considered categorical.
	CategoricalMaxDistinct int
	// CategoricalMaxRatio is the largest distinct/non-null ratio a column
	// may have and still be considered categorical.
	CategoricalMaxRatio float64
	// Name names the generated ontology.
	Name string
	// Phases, when non-nil, receives per-pass durations and counts.
	Phases *obs.PhaseLog
}

// DefaultConfig returns the thresholds used throughout the reproduction.
func DefaultConfig(name string) Config {
	return Config{
		CategoricalMaxDistinct: 64,
		CategoricalMaxRatio:    0.5,
		Name:                   name,
	}
}

// Generate builds an ontology from the KB's schema and data statistics.
func Generate(base *kb.KB, cfg Config) (*ontology.Ontology, error) {
	o := ontology.New(cfg.Name)

	// Pass 1: concepts with data properties (FK columns excluded — they
	// become object properties).
	done := cfg.Phases.Phase("ontogen.concepts")
	for _, name := range base.TableNames() {
		t := base.Table(name)
		fkCols := make(map[string]bool)
		for _, fk := range t.Schema.ForeignKeys {
			fkCols[strings.ToLower(fk.Column)] = true
		}
		c := ontology.Concept{
			Name:     ConceptName(name),
			Table:    name,
			TableKey: t.Schema.PrimaryKey,
		}
		for _, col := range t.Schema.Columns {
			if fkCols[strings.ToLower(col.Name)] {
				continue
			}
			if strings.EqualFold(col.Name, t.Schema.PrimaryKey) {
				continue // surrogate keys are not domain properties
			}
			dp := ontology.DataProperty{
				Name: col.Name,
				Type: dataType(col.Type),
			}
			st := t.Stats(col.Name)
			dp.Categorical = st.Categorical(cfg.CategoricalMaxDistinct, cfg.CategoricalMaxRatio)
			c.DataProperties = append(c.DataProperties, dp)
			if c.DisplayProperty == "" && strings.EqualFold(col.Name, "name") {
				c.DisplayProperty = col.Name
			}
		}
		if c.DisplayProperty == "" {
			for _, dp := range c.DataProperties {
				if dp.Type == ontology.String {
					c.DisplayProperty = dp.Name
					break
				}
			}
		}
		if err := o.AddConcept(c); err != nil {
			return nil, err
		}
	}

	nprops := 0
	for _, c := range o.Concepts {
		nprops += len(c.DataProperties)
	}
	done(obs.C("concepts", len(o.Concepts)), obs.C("data_properties", nprops))

	// Pass 2: object properties and isA from foreign keys.
	done = cfg.Phases.Phase("ontogen.relationships")
	for _, name := range base.TableNames() {
		t := base.Table(name)
		for _, fk := range t.Schema.ForeignKeys {
			child := ConceptName(name)
			parent := ConceptName(fk.RefTable)
			if strings.EqualFold(fk.Column, t.Schema.PrimaryKey) {
				// Subtype table: shares the parent's primary key.
				if err := o.AddIsA(child, parent); err != nil {
					return nil, err
				}
				continue
			}
			op := ontology.ObjectProperty{
				Name:       relationName(fk.Column, parent),
				From:       child,
				To:         parent,
				FromColumn: fk.Column,
				ToColumn:   fk.RefColumn,
				Functional: true, // FK: each child row references one parent
			}
			if err := o.AddObjectProperty(op); err != nil {
				return nil, err
			}
		}
	}

	done(obs.C("object_properties", len(o.ObjectProperties)), obs.C("isa", len(o.IsARelations)))

	// Pass 3: unions — an isA family where the children exactly partition
	// the parent's primary keys (mutually exclusive and exhaustive).
	done = cfg.Phases.Phase("ontogen.unions")
	detectUnions(base, o)
	done(obs.C("unions", len(o.Unions)))

	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func detectUnions(base *kb.KB, o *ontology.Ontology) {
	parents := make(map[string][]string)
	for _, r := range o.IsARelations {
		parents[r.Parent] = append(parents[r.Parent], r.Child)
	}
	// Unions are appended in parent order; iterate sorted so the emitted
	// ontology is byte-reproducible.
	parentNames := make([]string, 0, len(parents))
	for p := range parents {
		parentNames = append(parentNames, p)
	}
	sort.Strings(parentNames)
	for _, parent := range parentNames {
		children := parents[parent]
		if len(children) < 2 {
			continue
		}
		pc := o.Concept(parent)
		if pc == nil || pc.Table == "" {
			continue
		}
		pt := base.Table(pc.Table)
		if pt == nil || pt.Schema.PrimaryKey == "" {
			continue
		}
		pki := pt.Schema.ColumnIndex(pt.Schema.PrimaryKey)
		counts := make(map[kb.Value]int, pt.Len())
		for _, row := range pt.Rows {
			counts[row[pki]] = 0
		}
		ok := true
		for _, childName := range children {
			cc := o.Concept(childName)
			ct := base.Table(cc.Table)
			if ct == nil || ct.Schema.PrimaryKey == "" {
				ok = false
				break
			}
			cki := ct.Schema.ColumnIndex(ct.Schema.PrimaryKey)
			for _, row := range ct.Rows {
				n, exists := counts[row[cki]]
				if !exists {
					ok = false // child instance outside the parent
					break
				}
				counts[row[cki]] = n + 1
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		for _, n := range counts {
			if n != 1 { // not exhaustive (0) or not disjoint (>1)
				ok = false
				break
			}
		}
		if ok {
			// Errors impossible here: all members validated above.
			_ = o.AddUnion(parent, children...)
		}
	}
}

// Refine applies SME edits to a generated ontology (the "hybrid approach",
// paper §3): rename relation inverses, set display properties, and mark
// extra categorical attributes. Unknown targets are reported as errors so
// SME files stay in sync with the schema.
type Refinement struct {
	// Inverses maps object-property name -> inverse surface form
	// ("treats" -> "is treated by").
	Inverses map[string]string
	// Labels maps concept name -> human label override.
	Labels map[string]string
	// DisplayProperties maps concept name -> property used to render
	// instances.
	DisplayProperties map[string]string
}

// Refine applies the refinement in place. Maps are walked in sorted key
// order so that which error surfaces first is deterministic.
func Refine(o *ontology.Ontology, r Refinement) error {
	for _, name := range sortedKeys(r.Inverses) {
		inv := r.Inverses[name]
		found := false
		for i := range o.ObjectProperties {
			if o.ObjectProperties[i].Name == name {
				o.ObjectProperties[i].Inverse = inv
				found = true
			}
		}
		if !found {
			return fmt.Errorf("ontogen: refine: no object property %q", name)
		}
	}
	for _, name := range sortedKeys(r.Labels) {
		c := o.Concept(name)
		if c == nil {
			return fmt.Errorf("ontogen: refine: no concept %q", name)
		}
		c.Label = r.Labels[name]
	}
	for _, name := range sortedKeys(r.DisplayProperties) {
		dp := r.DisplayProperties[name]
		c := o.Concept(name)
		if c == nil {
			return fmt.Errorf("ontogen: refine: no concept %q", name)
		}
		if prop := o.Property(name, dp); prop == nil {
			return fmt.Errorf("ontogen: refine: concept %q has no property %q", name, dp)
		}
		c.DisplayProperty = dp
	}
	return nil
}

// CollapseJunction removes the concept generated for a pure many-to-many
// junction table and replaces it (and its two outgoing object properties)
// with one direct relationship between the endpoints. This is the kind of
// semantic correction the paper's SMEs apply to the generated ontology
// (§3, approach 3), and it is domain agnostic: medkb collapses its treats
// junction, retailkb its inventory junction.
func CollapseJunction(o *ontology.Ontology, conceptName, table string, direct ontology.ObjectProperty) error {
	found := false
	kept := o.Concepts[:0]
	for _, c := range o.Concepts {
		if c.Name == conceptName && c.Table == table {
			found = true
			continue
		}
		kept = append(kept, c)
	}
	if !found {
		return fmt.Errorf("ontogen: junction concept %q not found", conceptName)
	}
	o.Concepts = kept
	rels := o.ObjectProperties[:0]
	for _, p := range o.ObjectProperties {
		if p.From == conceptName || p.To == conceptName {
			continue
		}
		rels = append(rels, p)
	}
	o.ObjectProperties = rels
	// Rebuild the concept index (we mutated the slice directly).
	rebuilt := ontology.New(o.Name)
	for _, c := range o.Concepts {
		if err := rebuilt.AddConcept(c); err != nil {
			return err
		}
	}
	for _, p := range o.ObjectProperties {
		if err := rebuilt.AddObjectProperty(p); err != nil {
			return err
		}
	}
	rebuilt.IsARelations = o.IsARelations
	rebuilt.Unions = o.Unions
	if err := rebuilt.AddObjectProperty(direct); err != nil {
		return err
	}
	*o = *rebuilt
	return nil
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ConceptName converts a table name like "drug_food_interaction" into a
// concept name "DrugFoodInteraction".
func ConceptName(table string) string {
	parts := strings.FieldsFunc(table, func(r rune) bool { return r == '_' || r == '-' || r == ' ' })
	var b strings.Builder
	for _, p := range parts {
		if p == "" {
			continue
		}
		b.WriteString(strings.ToUpper(p[:1]))
		b.WriteString(p[1:])
	}
	return b.String()
}

// relationName derives an object-property name from an FK column name:
// "treats_id" -> "treats"; "drug_id" -> "hasDrug" style fallback when the
// stripped name equals the referenced concept.
func relationName(column, refConcept string) string {
	n := strings.TrimSuffix(strings.ToLower(column), "_id")
	n = strings.TrimSuffix(n, "id")
	n = strings.Trim(n, "_")
	if n == "" || strings.EqualFold(ConceptName(n), refConcept) {
		return "has" + refConcept
	}
	// re-camel multi-word FK names: "black_box" -> "blackBox"
	parts := strings.Split(n, "_")
	out := parts[0]
	for _, p := range parts[1:] {
		if p == "" {
			continue
		}
		out += strings.ToUpper(p[:1]) + p[1:]
	}
	return out
}

func dataType(ct kb.ColumnType) ontology.DataType {
	switch ct {
	case kb.IntCol:
		return ontology.Integer
	case kb.FloatCol:
		return ontology.Float
	case kb.BoolCol:
		return ontology.Boolean
	default:
		return ontology.String
	}
}
