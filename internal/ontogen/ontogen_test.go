package ontogen

import (
	"reflect"
	"testing"

	"ontoconv/internal/kb"
)

// subtypeKB builds person(base) with employee/customer subtypes plus an
// order table: employee+customer partition person (union), order
// references customer (object property).
func subtypeKB(t *testing.T, exhaustive bool) *kb.KB {
	t.Helper()
	k := kb.New()
	mk := func(s kb.Schema) *kb.Table {
		tab, err := k.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	person := mk(kb.Schema{
		Name: "person",
		Columns: []kb.Column{
			{Name: "person_id", Type: kb.TextCol, NotNull: true},
			{Name: "name", Type: kb.TextCol, NotNull: true},
			{Name: "status", Type: kb.TextCol},
		},
		PrimaryKey: "person_id",
	})
	employee := mk(kb.Schema{
		Name: "employee",
		Columns: []kb.Column{
			{Name: "person_id", Type: kb.TextCol, NotNull: true},
			{Name: "badge", Type: kb.TextCol},
		},
		PrimaryKey:  "person_id",
		ForeignKeys: []kb.ForeignKey{{Column: "person_id", RefTable: "person", RefColumn: "person_id"}},
	})
	customer := mk(kb.Schema{
		Name: "customer",
		Columns: []kb.Column{
			{Name: "person_id", Type: kb.TextCol, NotNull: true},
			{Name: "tier", Type: kb.TextCol},
		},
		PrimaryKey:  "person_id",
		ForeignKeys: []kb.ForeignKey{{Column: "person_id", RefTable: "person", RefColumn: "person_id"}},
	})
	order := mk(kb.Schema{
		Name: "purchase",
		Columns: []kb.Column{
			{Name: "purchase_id", Type: kb.TextCol, NotNull: true},
			{Name: "customer_id", Type: kb.TextCol, NotNull: true},
			{Name: "amount", Type: kb.FloatCol},
		},
		PrimaryKey:  "purchase_id",
		ForeignKeys: []kb.ForeignKey{{Column: "customer_id", RefTable: "person", RefColumn: "person_id"}},
	})
	for i := 0; i < 10; i++ {
		id := string(rune('A' + i))
		person.MustInsert(kb.Row{id, "Person " + id, []string{"active", "inactive"}[i%2]})
		if i%2 == 0 {
			employee.MustInsert(kb.Row{id, "badge-" + id})
		} else if exhaustive || i < 7 {
			customer.MustInsert(kb.Row{id, []string{"gold", "silver"}[i%2]})
		}
	}
	order.MustInsert(kb.Row{"O1", "B", 10.0})
	return k
}

func TestGenerateConceptsAndProperties(t *testing.T) {
	k := subtypeKB(t, true)
	o, err := Generate(k, DefaultConfig("shop"))
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := o.ConceptNames(); !reflect.DeepEqual(got, []string{"Person", "Employee", "Customer", "Purchase"}) {
		t.Fatalf("concepts = %v", got)
	}
	p := o.Concept("Person")
	// person_id is the surrogate key -> excluded; name, status remain
	if len(p.DataProperties) != 2 {
		t.Fatalf("Person properties = %+v", p.DataProperties)
	}
	if p.DisplayProperty != "name" {
		t.Fatalf("display = %q", p.DisplayProperty)
	}
	if p.Table != "person" || p.TableKey != "person_id" {
		t.Fatalf("table mapping = %q %q", p.Table, p.TableKey)
	}
}

func TestGenerateCategoricalDetection(t *testing.T) {
	k := subtypeKB(t, true)
	o, err := Generate(k, DefaultConfig("shop"))
	if err != nil {
		t.Fatal(err)
	}
	status := o.Property("Person", "status")
	if status == nil || !status.Categorical {
		t.Fatalf("status should be categorical: %+v", status)
	}
	name := o.Property("Person", "name")
	if name == nil || name.Categorical {
		t.Fatalf("name should not be categorical: %+v", name)
	}
}

func TestGenerateIsAFromSharedPK(t *testing.T) {
	k := subtypeKB(t, true)
	o, _ := Generate(k, DefaultConfig("shop"))
	if got := o.Parents("Employee"); !reflect.DeepEqual(got, []string{"Person"}) {
		t.Fatalf("Employee parents = %v", got)
	}
	if got := o.Parents("Customer"); !reflect.DeepEqual(got, []string{"Person"}) {
		t.Fatalf("Customer parents = %v", got)
	}
}

func TestGenerateUnionWhenExhaustive(t *testing.T) {
	k := subtypeKB(t, true)
	o, _ := Generate(k, DefaultConfig("shop"))
	if got := o.UnionOf("Person"); !reflect.DeepEqual(got, []string{"Customer", "Employee"}) {
		t.Fatalf("union = %v", got)
	}
}

func TestGenerateNoUnionWhenNotExhaustive(t *testing.T) {
	k := subtypeKB(t, false) // some persons have no subtype row
	o, _ := Generate(k, DefaultConfig("shop"))
	if o.UnionOf("Person") != nil {
		t.Fatal("non-exhaustive children must stay plain isA")
	}
	if len(o.Parents("Employee")) != 1 {
		t.Fatal("isA must still be detected")
	}
}

func TestGenerateObjectPropertyFromFK(t *testing.T) {
	k := subtypeKB(t, true)
	o, _ := Generate(k, DefaultConfig("shop"))
	rels := o.RelationsFrom("Purchase")
	if len(rels) != 1 {
		t.Fatalf("Purchase relations = %v", rels)
	}
	r := rels[0]
	if r.To != "Person" || r.FromColumn != "customer_id" || r.ToColumn != "person_id" {
		t.Fatalf("relation = %+v", r)
	}
	if r.Name != "customer" {
		t.Fatalf("relation name = %q (derived from customer_id)", r.Name)
	}
	if !r.Functional {
		t.Fatal("FK relations are functional")
	}
}

func TestRefine(t *testing.T) {
	k := subtypeKB(t, true)
	o, _ := Generate(k, DefaultConfig("shop"))
	err := Refine(o, Refinement{
		Inverses:          map[string]string{"customer": "made"},
		Labels:            map[string]string{"Purchase": "Order"},
		DisplayProperties: map[string]string{"Employee": "badge"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.RelationsFrom("Purchase")[0].Inverse != "made" {
		t.Fatal("inverse not applied")
	}
	if o.Concept("Purchase").Label != "Order" {
		t.Fatal("label not applied")
	}
	if o.Concept("Employee").DisplayProperty != "badge" {
		t.Fatal("display property not applied")
	}
}

func TestRefineErrors(t *testing.T) {
	k := subtypeKB(t, true)
	o, _ := Generate(k, DefaultConfig("shop"))
	if err := Refine(o, Refinement{Inverses: map[string]string{"ghost": "x"}}); err == nil {
		t.Fatal("unknown relation must error")
	}
	if err := Refine(o, Refinement{Labels: map[string]string{"Ghost": "x"}}); err == nil {
		t.Fatal("unknown concept must error")
	}
	if err := Refine(o, Refinement{DisplayProperties: map[string]string{"Person": "ghost"}}); err == nil {
		t.Fatal("unknown property must error")
	}
}

func TestConceptName(t *testing.T) {
	cases := map[string]string{
		"drug":                  "Drug",
		"drug_food_interaction": "DrugFoodInteraction",
		"iv_compatibility":      "IvCompatibility",
		"med procedure":         "MedProcedure",
	}
	for in, want := range cases {
		if got := ConceptName(in); got != want {
			t.Errorf("ConceptName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRelationName(t *testing.T) {
	cases := []struct{ col, ref, want string }{
		{"drug_id", "Drug", "hasDrug"},
		{"treats_id", "Indication", "treats"},
		{"other_drug_id", "Drug", "otherDrug"},
		{"class_id", "DrugClass", "class"},
	}
	for _, c := range cases {
		if got := relationName(c.col, c.ref); got != c.want {
			t.Errorf("relationName(%q,%q) = %q, want %q", c.col, c.ref, got, c.want)
		}
	}
}
