package kb

import (
	"fmt"
	"testing"
)

func freezeFixture(t testing.TB) *Table {
	t.Helper()
	k := New()
	tab, err := k.CreateTable(Schema{
		Name: "f",
		Columns: []Column{
			{Name: "id", Type: TextCol, NotNull: true},
			{Name: "txt", Type: TextCol},
			{Name: "i", Type: IntCol},
			{Name: "f", Type: FloatCol},
			{Name: "b", Type: BoolCol},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestFreezeTypedVectors(t *testing.T) {
	tab := freezeFixture(t)
	tab.MustInsert(Row{"a", "hello", int64(7), 2.5, true})
	tab.MustInsert(Row{"b", nil, nil, nil, nil})
	tab.MustInsert(Row{"c", "world", int64(-3), float64(9), false})
	tab.Freeze()

	cs := tab.ColumnSet()
	if cs == nil || cs.Len() != 3 {
		t.Fatalf("ColumnSet = %v", cs)
	}
	txt := cs.Col(1)
	if txt.Strs == nil || txt.Nums != nil || txt.Bools != nil {
		t.Fatal("text column must freeze into Strs")
	}
	if txt.Strs[0] != "hello" || !txt.Null(1) || txt.Strs[2] != "world" {
		t.Fatalf("Strs = %v (null1=%v)", txt.Strs, txt.Null(1))
	}
	iv := cs.Col(2)
	if iv.Nums[0] != 7 || !iv.Null(1) || iv.Nums[2] != -3 {
		t.Fatalf("int Nums = %v", iv.Nums)
	}
	fv := cs.Col(3)
	if fv.Nums[0] != 2.5 || !fv.Null(1) || fv.Nums[2] != 9 {
		t.Fatalf("float Nums = %v", fv.Nums)
	}
	bv := cs.Col(4)
	if !bv.Bools[0] || !bv.Null(1) || bv.Bools[2] {
		t.Fatalf("Bools = %v", bv.Bools)
	}
	if id := cs.Col(0); id.HasNulls() {
		t.Fatal("NOT NULL column grew a null bitmap")
	}
}

func TestFreezeCoercesIntWidths(t *testing.T) {
	// Insert accepts int, int64 and (for FloatCol) int64 alike; the
	// frozen vector must apply the same float64 coercion sqlx's
	// compareValues uses, regardless of the boxed width.
	tab := freezeFixture(t)
	tab.MustInsert(Row{"a", nil, int(5), int64(11), nil})
	tab.Freeze()
	cs := tab.ColumnSet()
	if got := cs.Col(2).Nums[0]; got != 5 {
		t.Fatalf("int -> %v", got)
	}
	if got := cs.Col(3).Nums[0]; got != 11 {
		t.Fatalf("int64 in FloatCol -> %v", got)
	}
}

func TestInsertInvalidatesColumnSet(t *testing.T) {
	tab := freezeFixture(t)
	tab.MustInsert(Row{"a", "x", nil, nil, nil})
	tab.Freeze()
	if tab.ColumnSet() == nil {
		t.Fatal("Freeze left no ColumnSet")
	}
	tab.MustInsert(Row{"b", "y", nil, nil, nil})
	if tab.ColumnSet() != nil {
		t.Fatal("Insert must drop the stale ColumnSet")
	}
	tab.Freeze()
	if cs := tab.ColumnSet(); cs == nil || cs.Len() != 2 {
		t.Fatal("re-Freeze after Insert must cover the new row")
	}
}

func TestFreezeColumnsFreezesEveryTable(t *testing.T) {
	k := New()
	for _, name := range []string{"t1", "t2"} {
		tab, err := k.CreateTable(Schema{
			Name:       name,
			Columns:    []Column{{Name: "id", Type: TextCol, NotNull: true}},
			PrimaryKey: "id",
		})
		if err != nil {
			t.Fatal(err)
		}
		tab.MustInsert(Row{name + "-row"})
	}
	k.FreezeColumns()
	for _, name := range k.TableNames() {
		if k.Table(name).ColumnSet() == nil {
			t.Fatalf("table %s not frozen", name)
		}
	}
}

// TestLookupIndexedZeroAlloc pins the posting-list aliasing contract:
// an indexed Lookup returns the stored slice itself — zero allocations,
// read-only for the caller.
func TestLookupIndexedZeroAlloc(t *testing.T) {
	tab := freezeFixture(t)
	for i := 0; i < 64; i++ {
		tab.MustInsert(Row{fmt.Sprintf("r%02d", i), fmt.Sprintf("g%d", i%4), nil, nil, nil})
	}
	if err := tab.BuildIndex("txt"); err != nil {
		t.Fatal(err)
	}
	var got []int
	allocs := testing.AllocsPerRun(100, func() {
		got = tab.Lookup("txt", "g1")
	})
	if allocs != 0 {
		t.Fatalf("indexed Lookup allocated %.1f times per call, want 0", allocs)
	}
	if len(got) != 16 {
		t.Fatalf("posting list has %d entries, want 16", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("posting list positions must be strictly ascending")
		}
	}
}

func BenchmarkLookupIndexed(b *testing.B) {
	tab := freezeFixture(b)
	for i := 0; i < 4096; i++ {
		tab.MustInsert(Row{fmt.Sprintf("r%04d", i), fmt.Sprintf("g%d", i%16), nil, nil, nil})
	}
	if err := tab.BuildIndex("txt"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plist := tab.Lookup("txt", "g7"); len(plist) == 0 {
			b.Fatal("empty posting list")
		}
	}
}
