package kb

import "strings"

// Columnar projection of a table's row store. The planner's vectorized
// scan path (internal/sqlx) evaluates pushed-down predicates over these
// typed vectors in batches instead of boxing every cell through a
// Value interface; projection always goes back to the original Rows, so
// results carry exactly the same boxed values as the row interpreter.
//
// A ColumnSet is built once, after loading, by Freeze (the medkb
// bootstrapper freezes every table at BuildIndexes time) and is immutable
// afterwards: Insert invalidates it, mirroring the KB contract that loads
// never race with reads.

// ColVec is one frozen column. Exactly one of Strs, Nums and Bools is
// non-nil, chosen by the column's declared type:
//
//   - TextCol  -> Strs
//   - IntCol and FloatCol -> Nums, every value coerced to float64 — the
//     same coercion sqlx's compareValues applies, so vectorized numeric
//     comparisons are bit-equivalent to the row interpreter
//   - BoolCol  -> Bools
//
// NULL cells store the zero value and set their bit in the null bitmap.
type ColVec struct {
	Strs  []string
	Nums  []float64
	Bools []bool

	nulls []uint64 // 1 bit per row; nil when the column has no NULLs
}

// Null reports whether row i is NULL in this column.
func (v *ColVec) Null(i int) bool {
	return v.nulls != nil && v.nulls[i>>6]&(1<<uint(i&63)) != 0
}

// HasNulls reports whether any row is NULL in this column.
func (v *ColVec) HasNulls() bool { return v.nulls != nil }

// ColumnSet is the frozen columnar projection of one table, aligned with
// the schema's column order.
type ColumnSet struct {
	n    int
	cols []ColVec
}

// Len returns the frozen row count.
func (cs *ColumnSet) Len() int { return cs.n }

// Col returns the vector of column ordinal i.
func (cs *ColumnSet) Col(i int) *ColVec { return &cs.cols[i] }

// Freeze builds (or rebuilds) the table's columnar projection from the
// current rows. Values are assumed to satisfy the schema's types — Insert
// enforces that — so the projection is lossless for predicate purposes.
func (t *Table) Freeze() {
	n := len(t.Rows)
	cs := &ColumnSet{n: n, cols: make([]ColVec, len(t.Schema.Columns))}
	for ci, c := range t.Schema.Columns {
		v := &cs.cols[ci]
		setNull := func(i int) {
			if v.nulls == nil {
				v.nulls = make([]uint64, (n+63)/64)
			}
			v.nulls[i>>6] |= 1 << uint(i&63)
		}
		switch c.Type {
		case TextCol:
			v.Strs = make([]string, n)
			for i, row := range t.Rows {
				if s, ok := row[ci].(string); ok {
					v.Strs[i] = s
				} else {
					setNull(i)
				}
			}
		case IntCol, FloatCol:
			v.Nums = make([]float64, n)
			for i, row := range t.Rows {
				switch x := row[ci].(type) {
				case int64:
					v.Nums[i] = float64(x)
				case int:
					v.Nums[i] = float64(x)
				case float64:
					v.Nums[i] = x
				default:
					setNull(i)
				}
			}
		case BoolCol:
			v.Bools = make([]bool, n)
			for i, row := range t.Rows {
				if b, ok := row[ci].(bool); ok {
					v.Bools[i] = b
				} else {
					setNull(i)
				}
			}
		}
	}
	t.cols = cs
}

// ColumnSet returns the frozen columnar projection, or nil when the table
// has not been frozen (or has been mutated since). The set is shared and
// read-only.
func (t *Table) ColumnSet() *ColumnSet { return t.cols }

// FreezeColumns freezes the columnar projection of every table. The
// bootstrapper calls it once, after loading and index builds, before the
// first read.
func (k *KB) FreezeColumns() {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, name := range k.order {
		k.tables[strings.ToLower(name)].Freeze()
	}
}
