package kb

import (
	"testing"
)

func statsTable(t *testing.T) *Table {
	t.Helper()
	k := New()
	tab, err := k.CreateTable(Schema{
		Name: "s",
		Columns: []Column{
			{Name: "id", Type: TextCol, NotNull: true},
			{Name: "category", Type: TextCol},
			{Name: "free_text", Type: TextCol},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"a", "b", "a", "a", "c", "b", "a", nil1(), "a", "b"}
	for i, c := range cats {
		var cv Value
		if c != "" {
			cv = c
		}
		tab.MustInsert(Row{id(i), cv, "unique text " + id(i)})
	}
	return tab
}

func nil1() string { return "" }

func id(i int) string { return string(rune('A' + i)) }

func TestColumnStats(t *testing.T) {
	tab := statsTable(t)
	st := tab.Stats("category")
	if st.Rows != 10 || st.NonNull != 9 || st.Distinct != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TopValues[0].Value != "a" || st.TopValues[0].Count != 5 {
		t.Fatalf("top value = %+v", st.TopValues[0])
	}
	if !st.Categorical(10, 0.5) {
		t.Fatal("3 distinct over 9 non-null should be categorical")
	}
	if st.Categorical(2, 0.5) {
		t.Fatal("maxDistinct bound should reject")
	}
	if st.Categorical(10, 0.1) {
		t.Fatal("ratio bound should reject")
	}
}

func TestStatsFreeTextNotCategorical(t *testing.T) {
	tab := statsTable(t)
	st := tab.Stats("free_text")
	if st.Distinct != 10 {
		t.Fatalf("distinct = %d", st.Distinct)
	}
	if st.Categorical(64, 0.5) {
		t.Fatal("all-unique column must not be categorical")
	}
}

func TestStatsMissingColumn(t *testing.T) {
	tab := statsTable(t)
	st := tab.Stats("ghost")
	if st.NonNull != 0 || st.Distinct != 0 {
		t.Fatalf("missing column stats = %+v", st)
	}
	if st.Categorical(10, 1.0) {
		t.Fatal("empty stats can never be categorical")
	}
}

func TestStatsTopValuesCap(t *testing.T) {
	k := New()
	tab, _ := k.CreateTable(Schema{Name: "t", Columns: []Column{{Name: "v", Type: IntCol}}})
	for i := 0; i < 30; i++ {
		tab.MustInsert(Row{int64(i % 15)})
	}
	st := tab.Stats("v")
	if len(st.TopValues) != 10 {
		t.Fatalf("TopValues capped at 10, got %d", len(st.TopValues))
	}
}

func TestAllStats(t *testing.T) {
	k := New()
	for _, n := range []string{"t1", "t2"} {
		tab, _ := k.CreateTable(Schema{Name: n, Columns: []Column{
			{Name: "a", Type: TextCol}, {Name: "b", Type: IntCol},
		}})
		tab.MustInsert(Row{"x", int64(1)})
	}
	all := k.AllStats()
	if len(all) != 4 {
		t.Fatalf("AllStats returned %d entries, want 4", len(all))
	}
	if all[0].Table != "t1" || all[0].Column != "a" {
		t.Fatalf("AllStats order wrong: %+v", all[0])
	}
}
