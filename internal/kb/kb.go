// Package kb implements the relational knowledge-base substrate: typed
// tables with primary/foreign keys, in-memory row storage, secondary
// indexes, and the column statistics the ontology generator and the
// bootstrapper consume (paper §2: "the knowledge base (stored in Db2 on
// Cloud)" — replaced here by an embedded store).
package kb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ColumnType enumerates column types.
type ColumnType string

// Supported column types.
const (
	TextCol  ColumnType = "text"
	IntCol   ColumnType = "int"
	FloatCol ColumnType = "float"
	BoolCol  ColumnType = "bool"
)

// Value is a cell value: string, int64, float64, bool, or nil.
type Value interface{}

// Column describes one column of a table.
type Column struct {
	Name string
	Type ColumnType
	// NotNull marks the column as required.
	NotNull bool
}

// ForeignKey declares that Column references RefTable.RefColumn.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Schema describes one table.
type Schema struct {
	Name        string
	Columns     []Column
	PrimaryKey  string
	ForeignKeys []ForeignKey
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column definition, or nil.
func (s *Schema) Column(name string) *Column {
	if i := s.ColumnIndex(name); i >= 0 {
		return &s.Columns[i]
	}
	return nil
}

// Row is one tuple, positionally aligned with the schema's columns.
type Row []Value

// Table is a table plus its rows and indexes.
type Table struct {
	Schema Schema
	Rows   []Row

	pkIndex map[Value]int              // PK value -> row position
	indexes map[string]map[Value][]int // column name (lower) -> value -> positions
	cols    *ColumnSet                 // frozen columnar projection (nil until Freeze)
}

// KB is a set of tables. It is safe for concurrent readers once loading is
// complete; loads must not race with reads.
type KB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string
}

// New returns an empty knowledge base.
func New() *KB {
	return &KB{tables: make(map[string]*Table)}
}

// CreateTable registers a table with the given schema.
func (k *KB) CreateTable(s Schema) (*Table, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, ok := k.tables[key]; ok {
		return nil, fmt.Errorf("kb: table %q already exists", s.Name)
	}
	if s.PrimaryKey != "" && s.ColumnIndex(s.PrimaryKey) < 0 {
		return nil, fmt.Errorf("kb: table %q: primary key %q is not a column", s.Name, s.PrimaryKey)
	}
	for _, fk := range s.ForeignKeys {
		if s.ColumnIndex(fk.Column) < 0 {
			return nil, fmt.Errorf("kb: table %q: foreign key column %q is not a column", s.Name, fk.Column)
		}
	}
	t := &Table{
		Schema:  s,
		pkIndex: make(map[Value]int),
		indexes: make(map[string]map[Value][]int),
	}
	k.tables[key] = t
	k.order = append(k.order, s.Name)
	return t, nil
}

// Table returns the named table (case-insensitive), or nil.
func (k *KB) Table(name string) *Table {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.tables[strings.ToLower(name)]
}

// TableNames returns table names in creation order.
func (k *KB) TableNames() []string {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]string, len(k.order))
	copy(out, k.order)
	return out
}

// Insert appends a row after type- and constraint-checking it.
func (t *Table) Insert(row Row) error {
	if len(row) != len(t.Schema.Columns) {
		return fmt.Errorf("kb: %s: row has %d values, want %d", t.Schema.Name, len(row), len(t.Schema.Columns))
	}
	for i, c := range t.Schema.Columns {
		v := row[i]
		if v == nil {
			if c.NotNull {
				return fmt.Errorf("kb: %s: column %q is NOT NULL", t.Schema.Name, c.Name)
			}
			continue
		}
		if err := checkType(v, c.Type); err != nil {
			return fmt.Errorf("kb: %s.%s: %w", t.Schema.Name, c.Name, err)
		}
	}
	if pk := t.Schema.PrimaryKey; pk != "" {
		i := t.Schema.ColumnIndex(pk)
		v := row[i]
		if v == nil {
			return fmt.Errorf("kb: %s: primary key %q is nil", t.Schema.Name, pk)
		}
		if _, dup := t.pkIndex[v]; dup {
			return fmt.Errorf("kb: %s: duplicate primary key %v", t.Schema.Name, v)
		}
		t.pkIndex[v] = len(t.Rows)
	}
	pos := len(t.Rows)
	t.Rows = append(t.Rows, row)
	for col, idx := range t.indexes {
		ci := t.Schema.ColumnIndex(col)
		idx[row[ci]] = append(idx[row[ci]], pos)
	}
	t.cols = nil // the frozen columnar projection no longer covers all rows
	return nil
}

// MustInsert is Insert that panics on error; for generated data sets.
func (t *Table) MustInsert(row Row) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// ByPK returns the row with the given primary-key value.
func (t *Table) ByPK(v Value) (Row, bool) {
	i, ok := t.pkIndex[v]
	if !ok {
		return nil, false
	}
	return t.Rows[i], true
}

// BuildIndex creates (or rebuilds) a secondary hash index on the column.
func (t *Table) BuildIndex(column string) error {
	ci := t.Schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("kb: %s: no column %q", t.Schema.Name, column)
	}
	idx := make(map[Value][]int)
	for pos, row := range t.Rows {
		idx[row[ci]] = append(idx[row[ci]], pos)
	}
	t.indexes[strings.ToLower(column)] = idx
	return nil
}

// HasIndex reports whether the column has a secondary index.
func (t *Table) HasIndex(column string) bool {
	_, ok := t.indexes[strings.ToLower(column)]
	return ok
}

// IndexOn returns the column's secondary index (value -> ascending row
// positions), when one exists. The map is shared and must be treated as
// read-only; it lets the query planner probe join columns directly.
func (t *Table) IndexOn(column string) (map[Value][]int, bool) {
	idx, ok := t.indexes[strings.ToLower(column)]
	return idx, ok
}

// IndexedColumns returns the sorted (lowercased) names of the columns that
// have secondary indexes.
func (t *Table) IndexedColumns() []string {
	out := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the positions of rows whose column equals v, using a
// secondary index when available and a scan otherwise.
//
// Aliasing contract: when the column is indexed, the returned slice IS
// the stored posting list — no defensive copy is made, so an indexed
// probe on the serving hot path costs zero allocations (pinned by
// TestLookupIndexedZeroAlloc / BenchmarkLookupIndexed). Callers must
// treat the result as read-only, exactly as with IndexOn; the planner
// (internal/sqlx) iterates it and never mutates or retains it past the
// query. Only the unindexed fallback allocates a fresh slice.
func (t *Table) Lookup(column string, v Value) []int {
	if idx, ok := t.indexes[strings.ToLower(column)]; ok {
		return idx[v]
	}
	ci := t.Schema.ColumnIndex(column)
	if ci < 0 {
		return nil
	}
	var out []int
	for pos, row := range t.Rows {
		if row[ci] == v {
			out = append(out, pos)
		}
	}
	return out
}

// Len returns the row count.
func (t *Table) Len() int { return len(t.Rows) }

// Values returns all values of the column, nulls skipped.
func (t *Table) Values(column string) []Value {
	ci := t.Schema.ColumnIndex(column)
	if ci < 0 {
		return nil
	}
	out := make([]Value, 0, len(t.Rows))
	for _, row := range t.Rows {
		if row[ci] != nil {
			out = append(out, row[ci])
		}
	}
	return out
}

// DistinctStrings returns the sorted distinct non-null string values of the
// column (non-string columns yield their fmt rendering).
func (t *Table) DistinctStrings(column string) []string {
	ci := t.Schema.ColumnIndex(column)
	if ci < 0 {
		return nil
	}
	set := make(map[string]bool)
	for _, row := range t.Rows {
		if row[ci] == nil {
			continue
		}
		set[toString(row[ci])] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func toString(v Value) string {
	switch x := v.(type) {
	case string:
		return x
	default:
		return fmt.Sprint(v)
	}
}

func checkType(v Value, ct ColumnType) error {
	switch ct {
	case TextCol:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("want text, got %T", v)
		}
	case IntCol:
		switch v.(type) {
		case int64, int:
		default:
			return fmt.Errorf("want int, got %T", v)
		}
	case FloatCol:
		switch v.(type) {
		case float64, int64, int:
		default:
			return fmt.Errorf("want float, got %T", v)
		}
	case BoolCol:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("want bool, got %T", v)
		}
	default:
		return fmt.Errorf("unknown column type %q", ct)
	}
	return nil
}

// ValidateForeignKeys checks that every non-null FK value resolves to a
// primary key of the referenced table.
func (k *KB) ValidateForeignKeys() error {
	k.mu.RLock()
	defer k.mu.RUnlock()
	var errs []string
	for _, name := range k.order {
		t := k.tables[strings.ToLower(name)]
		for _, fk := range t.Schema.ForeignKeys {
			ref := k.tables[strings.ToLower(fk.RefTable)]
			if ref == nil {
				errs = append(errs, fmt.Sprintf("%s.%s references missing table %s", name, fk.Column, fk.RefTable))
				continue
			}
			if !strings.EqualFold(ref.Schema.PrimaryKey, fk.RefColumn) {
				errs = append(errs, fmt.Sprintf("%s.%s references %s.%s which is not its primary key", name, fk.Column, fk.RefTable, fk.RefColumn))
				continue
			}
			ci := t.Schema.ColumnIndex(fk.Column)
			for _, row := range t.Rows {
				if row[ci] == nil {
					continue
				}
				if _, ok := ref.pkIndex[row[ci]]; !ok {
					errs = append(errs, fmt.Sprintf("%s.%s value %v has no match in %s.%s", name, fk.Column, row[ci], fk.RefTable, fk.RefColumn))
					break
				}
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("kb: foreign key violations: %s", strings.Join(errs, "; "))
	}
	return nil
}
