package kb

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func drugSchema() Schema {
	return Schema{
		Name: "drug",
		Columns: []Column{
			{Name: "drug_id", Type: TextCol, NotNull: true},
			{Name: "name", Type: TextCol, NotNull: true},
			{Name: "class", Type: TextCol},
			{Name: "year", Type: IntCol},
			{Name: "half_life", Type: FloatCol},
			{Name: "otc", Type: BoolCol},
		},
		PrimaryKey: "drug_id",
	}
}

func newDrugKB(t *testing.T) (*KB, *Table) {
	t.Helper()
	k := New()
	tab, err := k.CreateTable(drugSchema())
	if err != nil {
		t.Fatal(err)
	}
	return k, tab
}

func TestCreateTableDuplicate(t *testing.T) {
	k, _ := newDrugKB(t)
	if _, err := k.CreateTable(drugSchema()); err == nil {
		t.Fatal("duplicate table must error")
	}
	// case-insensitive
	s := drugSchema()
	s.Name = "DRUG"
	if _, err := k.CreateTable(s); err == nil {
		t.Fatal("case-insensitive duplicate must error")
	}
}

func TestCreateTableBadConstraints(t *testing.T) {
	k := New()
	s := drugSchema()
	s.PrimaryKey = "ghost"
	if _, err := k.CreateTable(s); err == nil {
		t.Fatal("primary key must be a column")
	}
	s = drugSchema()
	s.ForeignKeys = []ForeignKey{{Column: "ghost", RefTable: "x", RefColumn: "y"}}
	if _, err := k.CreateTable(s); err == nil {
		t.Fatal("FK column must exist")
	}
}

func TestInsertTypeChecking(t *testing.T) {
	_, tab := newDrugKB(t)
	ok := Row{"D1", "Aspirin", "NSAID", int64(1899), 0.25, true}
	if err := tab.Insert(ok); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		row  Row
	}{
		{"wrong arity", Row{"D2", "X"}},
		{"null not-null", Row{"D2", nil, "c", int64(1), 1.0, true}},
		{"text type", Row{"D2", 42, "c", int64(1), 1.0, true}},
		{"int type", Row{"D2", "N", "c", "1999", 1.0, true}},
		{"bool type", Row{"D2", "N", "c", int64(1), 1.0, "yes"}},
		{"nil pk", Row{nil, "N", "c", int64(1), 1.0, true}},
		{"dup pk", Row{"D1", "N", "c", int64(1), 1.0, true}},
	}
	for _, c := range cases {
		if err := tab.Insert(c.row); err == nil {
			t.Errorf("%s: insert should fail", c.name)
		}
	}
	if tab.Len() != 1 {
		t.Fatalf("failed inserts must not append; len=%d", tab.Len())
	}
}

func TestIntAndFloatCoercion(t *testing.T) {
	_, tab := newDrugKB(t)
	// plain int accepted for IntCol; int for FloatCol too
	if err := tab.Insert(Row{"D1", "A", nil, 7, 3, false}); err != nil {
		t.Fatal(err)
	}
}

func TestByPK(t *testing.T) {
	_, tab := newDrugKB(t)
	tab.MustInsert(Row{"D1", "Aspirin", nil, nil, nil, nil})
	row, ok := tab.ByPK("D1")
	if !ok || row[1] != "Aspirin" {
		t.Fatalf("ByPK = %v, %v", row, ok)
	}
	if _, ok := tab.ByPK("missing"); ok {
		t.Fatal("missing PK found")
	}
}

func TestLookupWithAndWithoutIndex(t *testing.T) {
	_, tab := newDrugKB(t)
	tab.MustInsert(Row{"D1", "Aspirin", "NSAID", nil, nil, nil})
	tab.MustInsert(Row{"D2", "Ibuprofen", "NSAID", nil, nil, nil})
	tab.MustInsert(Row{"D3", "Prednisone", "Steroid", nil, nil, nil})
	scan := tab.Lookup("class", "NSAID")
	if err := tab.BuildIndex("class"); err != nil {
		t.Fatal(err)
	}
	indexed := tab.Lookup("class", "NSAID")
	if !reflect.DeepEqual(scan, indexed) || len(indexed) != 2 {
		t.Fatalf("scan %v vs indexed %v", scan, indexed)
	}
	// index maintained on subsequent insert
	tab.MustInsert(Row{"D4", "Naproxen", "NSAID", nil, nil, nil})
	if got := tab.Lookup("class", "NSAID"); len(got) != 3 {
		t.Fatalf("index not maintained: %v", got)
	}
	if err := tab.BuildIndex("ghost"); err == nil {
		t.Fatal("indexing a missing column must error")
	}
	if got := tab.Lookup("ghost", "x"); got != nil {
		t.Fatalf("lookup on missing column = %v", got)
	}
}

func TestValuesAndDistinct(t *testing.T) {
	_, tab := newDrugKB(t)
	tab.MustInsert(Row{"D1", "A", "c1", nil, nil, nil})
	tab.MustInsert(Row{"D2", "B", nil, nil, nil, nil})
	tab.MustInsert(Row{"D3", "C", "c1", nil, nil, nil})
	tab.MustInsert(Row{"D4", "D", "c2", nil, nil, nil})
	if got := tab.Values("class"); len(got) != 3 {
		t.Fatalf("Values skips nulls: %v", got)
	}
	if got := tab.DistinctStrings("class"); !reflect.DeepEqual(got, []string{"c1", "c2"}) {
		t.Fatalf("DistinctStrings = %v", got)
	}
}

func TestForeignKeyValidation(t *testing.T) {
	k, drugs := newDrugKB(t)
	brands, err := k.CreateTable(Schema{
		Name: "brand",
		Columns: []Column{
			{Name: "brand_id", Type: TextCol, NotNull: true},
			{Name: "drug_id", Type: TextCol},
		},
		PrimaryKey:  "brand_id",
		ForeignKeys: []ForeignKey{{Column: "drug_id", RefTable: "drug", RefColumn: "drug_id"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	drugs.MustInsert(Row{"D1", "Aspirin", nil, nil, nil, nil})
	brands.MustInsert(Row{"B1", "D1"})
	brands.MustInsert(Row{"B2", nil}) // null FK is allowed
	if err := k.ValidateForeignKeys(); err != nil {
		t.Fatalf("valid FKs rejected: %v", err)
	}
	brands.MustInsert(Row{"B3", "GHOST"})
	err = k.ValidateForeignKeys()
	if err == nil || !strings.Contains(err.Error(), "GHOST") {
		t.Fatalf("dangling FK not caught: %v", err)
	}
}

func TestForeignKeyToNonPK(t *testing.T) {
	k := New()
	if _, err := k.CreateTable(Schema{
		Name:       "a",
		Columns:    []Column{{Name: "id", Type: TextCol}, {Name: "other", Type: TextCol}},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateTable(Schema{
		Name:        "b",
		Columns:     []Column{{Name: "id", Type: TextCol}, {Name: "a_ref", Type: TextCol}},
		PrimaryKey:  "id",
		ForeignKeys: []ForeignKey{{Column: "a_ref", RefTable: "a", RefColumn: "other"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.ValidateForeignKeys(); err == nil {
		t.Fatal("FK referencing a non-PK column must be flagged")
	}
}

func TestTableNamesOrder(t *testing.T) {
	k := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := k.CreateTable(Schema{Name: n, Columns: []Column{{Name: "id", Type: TextCol}}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := k.TableNames(); !reflect.DeepEqual(got, []string{"zeta", "alpha", "mid"}) {
		t.Fatalf("TableNames = %v, want creation order", got)
	}
	if k.Table("ALPHA") == nil {
		t.Fatal("table lookup should be case-insensitive")
	}
}

func TestSchemaColumnLookup(t *testing.T) {
	s := drugSchema()
	if s.ColumnIndex("NAME") != 1 {
		t.Fatal("column lookup should be case-insensitive")
	}
	if s.ColumnIndex("ghost") != -1 {
		t.Fatal("missing column should be -1")
	}
	if c := s.Column("year"); c == nil || c.Type != IntCol {
		t.Fatalf("Column(year) = %v", c)
	}
}

// Property (quick): every inserted PK is retrievable via ByPK with the
// same row contents.
func TestInsertByPKProperty(t *testing.T) {
	f := func(ids []string) bool {
		k := New()
		tab, err := k.CreateTable(Schema{
			Name:       "t",
			Columns:    []Column{{Name: "id", Type: TextCol, NotNull: true}, {Name: "v", Type: IntCol}},
			PrimaryKey: "id",
		})
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		for i, id := range ids {
			if id == "" || seen[id] {
				continue
			}
			seen[id] = true
			if err := tab.Insert(Row{id, int64(i)}); err != nil {
				return false
			}
		}
		for id := range seen {
			if _, ok := tab.ByPK(id); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
