package kb

import (
	"sort"
	"strings"
)

// ColumnStats summarizes one column's data distribution. The ontology
// generator uses these to infer categorical attributes (paper §4.2.1:
// "we gather data statistics ... to find those that can be identified as
// categorical attributes based on their number of distinct data values").
type ColumnStats struct {
	Table    string
	Column   string
	Rows     int
	NonNull  int
	Distinct int
	// DistinctRatio is Distinct/NonNull (0 when the column is empty).
	DistinctRatio float64
	// TopValues holds up to 10 most frequent values with counts,
	// most-frequent first (ties broken by value for determinism).
	TopValues []ValueCount
}

// ValueCount pairs a rendered value with its frequency.
type ValueCount struct {
	Value string
	Count int
}

// Categorical reports whether the column behaves like a categorical
// attribute: few distinct values relative to rows, and at least one
// repeated value. maxDistinct bounds the absolute distinct count and
// maxRatio the distinct/non-null ratio.
func (s ColumnStats) Categorical(maxDistinct int, maxRatio float64) bool {
	if s.NonNull == 0 {
		return false
	}
	return s.Distinct <= maxDistinct && s.DistinctRatio <= maxRatio
}

// Stats computes statistics for one column.
func (t *Table) Stats(column string) ColumnStats {
	st := ColumnStats{Table: t.Schema.Name, Column: column, Rows: len(t.Rows)}
	ci := t.Schema.ColumnIndex(column)
	if ci < 0 {
		return st
	}
	counts := make(map[string]int)
	for _, row := range t.Rows {
		if row[ci] == nil {
			continue
		}
		st.NonNull++
		counts[toString(row[ci])]++
	}
	st.Distinct = len(counts)
	if st.NonNull > 0 {
		st.DistinctRatio = float64(st.Distinct) / float64(st.NonNull)
	}
	type kv struct {
		v string
		c int
	}
	all := make([]kv, 0, len(counts))
	for v, c := range counts {
		all = append(all, kv{v, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].v < all[j].v
	})
	n := len(all)
	if n > 10 {
		n = 10
	}
	for _, e := range all[:n] {
		st.TopValues = append(st.TopValues, ValueCount{Value: e.v, Count: e.c})
	}
	return st
}

// DistinctEstimate returns the number of distinct values in the column
// as observed by its secondary index, or 0 when the column is not
// indexed (callers must treat 0 as "unknown"). Unlike Stats this is
// O(1): the query planner consults it on every Prepare to estimate scan
// selectivity and pick hash-join build sides, and cannot afford a full
// column pass per template at large KB scales.
func (t *Table) DistinctEstimate(column string) int {
	if idx, ok := t.indexes[strings.ToLower(column)]; ok {
		return len(idx)
	}
	return 0
}

// AllStats computes statistics for every column of every table, in
// deterministic order.
func (k *KB) AllStats() []ColumnStats {
	var out []ColumnStats
	for _, name := range k.TableNames() {
		t := k.Table(name)
		for _, c := range t.Schema.Columns {
			out = append(out, t.Stats(c.Name))
		}
	}
	return out
}
