package slo

import (
	"encoding/json"
	"fmt"
	"os"
)

// ShardStoreGate records the session-store microbenchmark objective: the
// striped store's minimum speedup over the global-map baseline in
// BenchmarkSessionLookup{Striped,Global} (ns/op ratio at 16 concurrent
// chatters over 10k live sessions). CI enforces it on multi-core runners;
// the ratio is meaningless on a single core, where no two chatters ever
// truly contend.
type ShardStoreGate struct {
	MinSpeedup float64 `json:"min_speedup,omitempty"`
}

// RouterFile is the on-disk router baseline (BENCH_router.json): floors
// for a single-replica run and a multi-replica run driven through
// cmd/mdxrouter, the horizontal-scaling ratio the two must exhibit, and
// the shard-store microbenchmark gate. Same provenance header as File.
type RouterFile struct {
	Description string `json:"description,omitempty"`
	CPU         string `json:"cpu,omitempty"`
	Go          string `json:"go,omitempty"`
	Date        string `json:"date,omitempty"`
	// SingleReplica gates the router-fronting-one-replica run — the
	// baseline the scaling ratio divides by.
	SingleReplica Spec `json:"slo_single_replica"`
	// MultiReplica gates the router-fronting-three-replicas run.
	MultiReplica Spec `json:"slo_three_replica"`
	// MinThroughputRatio floors multi-replica turns/s over single-replica
	// turns/s. Zero disables. This is the gate that proves adding
	// replicas adds capacity instead of just adding hops.
	MinThroughputRatio float64        `json:"min_throughput_ratio,omitempty"`
	ShardStore         ShardStoreGate `json:"shard_store,omitempty"`
}

// LoadRouterFile reads a router baseline file whole.
func LoadRouterFile(path string) (RouterFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RouterFile{}, err
	}
	var f RouterFile
	if err := json.Unmarshal(data, &f); err != nil {
		return RouterFile{}, fmt.Errorf("slo: %s: %w", path, err)
	}
	if f.SingleReplica == (Spec{}) && f.MultiReplica == (Spec{}) {
		return RouterFile{}, fmt.Errorf("slo: %s: no objectives under \"slo_single_replica\" or \"slo_three_replica\"", path)
	}
	return f, nil
}

// Evaluate gates a router-phase report. phase is "single" or "multi",
// picking the spec; with a non-nil single-replica baseline report, the
// multi phase additionally checks the throughput ratio.
func (f RouterFile) Evaluate(phase string, r *Report, baseline *Report) ([]Violation, error) {
	var spec Spec
	switch phase {
	case "single":
		spec = f.SingleReplica
	case "multi":
		spec = f.MultiReplica
	default:
		return nil, fmt.Errorf("slo: unknown router phase %q (single or multi)", phase)
	}
	out := spec.Evaluate(r)
	if phase == "multi" && baseline != nil && f.MinThroughputRatio > 0 {
		if baseline.TurnsPerSecond <= 0 {
			return nil, fmt.Errorf("slo: baseline report has no throughput to ratio against")
		}
		ratio := r.TurnsPerSecond / baseline.TurnsPerSecond
		if ratio < f.MinThroughputRatio {
			out = append(out, Violation{"router_throughput_ratio", f.MinThroughputRatio, ratio})
		}
	}
	return out, nil
}
