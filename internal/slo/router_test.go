package slo

import (
	"os"
	"path/filepath"
	"testing"
)

func writeRouterBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_router.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRouterFile(t *testing.T) {
	path := writeRouterBaseline(t, `{
		"description": "test",
		"slo_single_replica": {"min_turn_throughput": 10},
		"slo_three_replica": {"min_turn_throughput": 20, "max_error_rate": 0.01},
		"min_throughput_ratio": 2.0,
		"shard_store": {"min_speedup": 3.0}
	}`)
	f, err := LoadRouterFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.SingleReplica.MinTurnThroughput != 10 || f.MultiReplica.MinTurnThroughput != 20 {
		t.Fatalf("specs misparsed: %+v", f)
	}
	if f.MinThroughputRatio != 2.0 || f.ShardStore.MinSpeedup != 3.0 {
		t.Fatalf("gates misparsed: %+v", f)
	}

	if _, err := LoadRouterFile(writeRouterBaseline(t, `{"description":"empty"}`)); err == nil {
		t.Fatal("baseline with no objectives must be rejected")
	}
}

func TestRouterEvaluatePhases(t *testing.T) {
	f := RouterFile{
		SingleReplica:      Spec{MinTurnThroughput: 10},
		MultiReplica:       Spec{MinTurnThroughput: 20},
		MinThroughputRatio: 2.0,
	}
	single := &Report{TurnsPerSecond: 15}
	multi := &Report{TurnsPerSecond: 45}

	if v, err := f.Evaluate("single", single, nil); err != nil || len(v) != 0 {
		t.Fatalf("single phase: violations %v, err %v", v, err)
	}
	if v, err := f.Evaluate("multi", multi, single); err != nil || len(v) != 0 {
		t.Fatalf("multi phase at 3x: violations %v, err %v", v, err)
	}

	// Ratio below the floor: multi runs at only 1.2x single.
	slow := &Report{TurnsPerSecond: 18}
	v, err := f.Evaluate("multi", slow, single)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, viol := range v {
		if viol.Name == "router_throughput_ratio" {
			found = true
			if viol.Actual >= f.MinThroughputRatio {
				t.Fatalf("ratio violation actual %g >= limit", viol.Actual)
			}
		}
	}
	if !found {
		t.Fatalf("1.2x scaling passed a 2x ratio floor: %v", v)
	}

	// Spec floors still bind without a baseline.
	if v, _ := f.Evaluate("multi", &Report{TurnsPerSecond: 5}, nil); len(v) == 0 {
		t.Fatal("multi spec floor ignored without baseline")
	}
	if _, err := f.Evaluate("weird", single, nil); err == nil {
		t.Fatal("unknown phase accepted")
	}
	if _, err := f.Evaluate("multi", multi, &Report{}); err == nil {
		t.Fatal("zero-throughput baseline accepted for ratio")
	}
}
