// Package slo defines service-level objectives for the conversation
// service and evaluates load-test reports against them. A Spec is a set
// of ceilings and floors — tail-latency ceilings, an error-rate ceiling,
// a throughput floor — with zero meaning "not gated", so a baseline file
// only constrains what it spells out. cmd/loadgen produces the Report,
// BENCH_load.json carries the checked-in Spec, and CI fails the build on
// any Violation.
package slo

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Spec is a set of service-level objectives. The zero value of any field
// disables that objective.
type Spec struct {
	// MaxTurnP50Seconds caps the median /chat turn latency.
	MaxTurnP50Seconds float64 `json:"max_turn_p50_seconds,omitempty"`
	// MaxTurnP99Seconds caps the 99th-percentile /chat turn latency.
	MaxTurnP99Seconds float64 `json:"max_turn_p99_seconds,omitempty"`
	// MaxErrorRate caps errors/turns: transport failures, non-200
	// statuses, and malformed responses.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
	// MinTurnThroughput floors completed turns per second.
	MinTurnThroughput float64 `json:"min_turn_throughput,omitempty"`
}

// Latency summarizes one latency distribution, in seconds.
type Latency struct {
	P50Seconds  float64 `json:"p50_seconds"`
	P90Seconds  float64 `json:"p90_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	P999Seconds float64 `json:"p999_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
}

// Report is a load run's result: the configuration echo plus measured
// traffic, errors, throughput, and the turn-latency distribution
// (measured client-side, so it includes network and queueing — what a
// user would feel, not what the server admits to).
type Report struct {
	Target          string  `json:"target"`
	Mode            string  `json:"mode"`
	Workers         int     `json:"workers,omitempty"`
	RatePerSecond   float64 `json:"rate_per_second,omitempty"`
	Seed            int64   `json:"seed"`
	WarmupSeconds   float64 `json:"warmup_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
	// Workspace echoes a single-workspace run (-workspace): all traffic
	// went to /w/<name>/ routes.
	Workspace string `json:"workspace,omitempty"`

	Interactions uint64 `json:"interactions"`
	Turns        uint64 `json:"turns"`
	Answered     uint64 `json:"answered"`
	Errors       uint64 `json:"errors"`
	// DroppedArrivals counts open-mode arrivals shed at -max-inflight:
	// offered load the server never saw (reported, never silently
	// delayed, to avoid coordinated omission).
	DroppedArrivals uint64  `json:"dropped_arrivals,omitempty"`
	ErrorRate       float64 `json:"error_rate"`
	TurnsPerSecond  float64 `json:"turns_per_second"`
	TurnLatency     Latency `json:"turn_latency"`
	// Workspaces breaks a mixed-tenant run down per workspace; the
	// top-level figures aggregate across all of them.
	Workspaces map[string]*WorkspaceLoad `json:"workspaces,omitempty"`
}

// WorkspaceLoad is one workspace's share of a mixed-tenant run.
type WorkspaceLoad struct {
	Interactions   uint64  `json:"interactions"`
	Turns          uint64  `json:"turns"`
	Answered       uint64  `json:"answered"`
	Errors         uint64  `json:"errors"`
	TurnsPerSecond float64 `json:"turns_per_second"`
	TurnLatency    Latency `json:"turn_latency"`
}

// Violation is one breached objective.
type Violation struct {
	Name   string  `json:"name"`
	Limit  float64 `json:"limit"`
	Actual float64 `json:"actual"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %g breaches limit %g", v.Name, v.Actual, v.Limit)
}

// Evaluate checks the report against every enabled objective and returns
// the breaches, in declaration order. An empty slice means the run is
// within SLO.
func (s Spec) Evaluate(r *Report) []Violation {
	var out []Violation
	if s.MaxTurnP50Seconds > 0 && r.TurnLatency.P50Seconds > s.MaxTurnP50Seconds {
		out = append(out, Violation{"turn_p50_seconds", s.MaxTurnP50Seconds, r.TurnLatency.P50Seconds})
	}
	if s.MaxTurnP99Seconds > 0 && r.TurnLatency.P99Seconds > s.MaxTurnP99Seconds {
		out = append(out, Violation{"turn_p99_seconds", s.MaxTurnP99Seconds, r.TurnLatency.P99Seconds})
	}
	if s.MaxErrorRate > 0 && r.ErrorRate > s.MaxErrorRate {
		out = append(out, Violation{"error_rate", s.MaxErrorRate, r.ErrorRate})
	}
	if s.MinTurnThroughput > 0 && r.TurnsPerSecond < s.MinTurnThroughput {
		out = append(out, Violation{"turns_per_second", s.MinTurnThroughput, r.TurnsPerSecond})
	}
	// Latency ceilings also bind per workspace in mixed-tenant runs: the
	// aggregate must not hide one tenant's tail behind another's volume.
	// Throughput and error-rate objectives stay aggregate-only (the mix
	// decides how turns split, not the server).
	for _, name := range sortedWorkspaces(r.Workspaces) {
		w := r.Workspaces[name]
		if s.MaxTurnP50Seconds > 0 && w.TurnLatency.P50Seconds > s.MaxTurnP50Seconds {
			out = append(out, Violation{"workspace[" + name + "].turn_p50_seconds",
				s.MaxTurnP50Seconds, w.TurnLatency.P50Seconds})
		}
		if s.MaxTurnP99Seconds > 0 && w.TurnLatency.P99Seconds > s.MaxTurnP99Seconds {
			out = append(out, Violation{"workspace[" + name + "].turn_p99_seconds",
				s.MaxTurnP99Seconds, w.TurnLatency.P99Seconds})
		}
	}
	return out
}

func sortedWorkspaces(ws map[string]*WorkspaceLoad) []string {
	if len(ws) == 0 {
		return nil
	}
	names := make([]string, 0, len(ws))
	for name := range ws {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// File is the on-disk baseline shape (BENCH_load.json): free-form
// provenance fields plus the gating spec under "slo". A baseline may
// carry a second, usually looser, spec under "slo_multi_tenant" for runs
// that split one server across several workspaces (cold-start rebuilds
// and cache splits cost tail latency and throughput there).
type File struct {
	Description string `json:"description,omitempty"`
	CPU         string `json:"cpu,omitempty"`
	Go          string `json:"go,omitempty"`
	Date        string `json:"date,omitempty"`
	Spec        Spec   `json:"slo"`
	MultiTenant *Spec  `json:"slo_multi_tenant,omitempty"`
}

// LoadFile reads a baseline file whole.
func LoadFile(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("slo: %s: %w", path, err)
	}
	if f.Spec == (Spec{}) {
		return File{}, fmt.Errorf("slo: %s: no objectives under \"slo\"", path)
	}
	return f, nil
}

// Load reads a baseline file and returns its primary spec.
func Load(path string) (Spec, error) {
	f, err := LoadFile(path)
	return f.Spec, err
}

// SpecFor picks the spec that applies to a report: the multi-tenant
// objectives when the run drove more than one workspace and the baseline
// defines them, the primary objectives otherwise.
func (f File) SpecFor(r *Report) Spec {
	if f.MultiTenant != nil && len(r.Workspaces) > 1 {
		return *f.MultiTenant
	}
	return f.Spec
}
