package slo

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func passingReport() *Report {
	return &Report{
		TurnLatency: Latency{
			P50Seconds: 0.004,
			P99Seconds: 0.040,
		},
		Turns:          1000,
		Errors:         0,
		ErrorRate:      0,
		TurnsPerSecond: 250,
	}
}

func TestEvaluateWithinSLO(t *testing.T) {
	spec := Spec{
		MaxTurnP50Seconds: 0.05,
		MaxTurnP99Seconds: 0.5,
		MaxErrorRate:      0.01,
		MinTurnThroughput: 50,
	}
	if v := spec.Evaluate(passingReport()); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestEvaluateEveryObjective(t *testing.T) {
	spec := Spec{
		MaxTurnP50Seconds: 0.001,
		MaxTurnP99Seconds: 0.010,
		MaxErrorRate:      0.0001,
		MinTurnThroughput: 10000,
	}
	r := passingReport()
	r.ErrorRate = 0.5
	v := spec.Evaluate(r)
	if len(v) != 4 {
		t.Fatalf("violations = %v, want all 4", v)
	}
	wantNames := []string{"turn_p50_seconds", "turn_p99_seconds", "error_rate", "turns_per_second"}
	for i, name := range wantNames {
		if v[i].Name != name {
			t.Fatalf("violation %d = %q, want %q", i, v[i].Name, name)
		}
		if v[i].String() == "" || !strings.Contains(v[i].String(), name) {
			t.Fatalf("violation string %q", v[i].String())
		}
	}
}

// TestEvaluateZeroDisables pins the gating semantics: an objective left
// at zero never fires, so a minimal baseline gates only what it names.
func TestEvaluateZeroDisables(t *testing.T) {
	r := passingReport()
	r.ErrorRate = 1
	r.TurnsPerSecond = 0.001
	r.TurnLatency.P50Seconds = 100
	r.TurnLatency.P99Seconds = 100
	if v := (Spec{}).Evaluate(r); len(v) != 0 {
		t.Fatalf("empty spec produced violations: %v", v)
	}
	one := Spec{MaxTurnP99Seconds: 1}
	v := one.Evaluate(r)
	if len(v) != 1 || v[0].Name != "turn_p99_seconds" {
		t.Fatalf("single-objective spec = %v", v)
	}
}

func TestLoadBaselineFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_load.json")
	body := `{
  "description": "test baseline",
  "slo": {"max_turn_p99_seconds": 0.25, "max_error_rate": 0.01, "min_turn_throughput": 20}
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.MaxTurnP99Seconds != 0.25 || spec.MaxErrorRate != 0.01 || spec.MinTurnThroughput != 20 {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.MaxTurnP50Seconds != 0 {
		t.Fatalf("unnamed objective not zero: %+v", spec)
	}
}

// TestEvaluatePerWorkspaceLatency pins the mixed-tenant semantics:
// latency ceilings bind each workspace individually (aggregate volume
// must not mask one tenant's tail), while throughput and error-rate
// objectives stay aggregate-only.
func TestEvaluatePerWorkspaceLatency(t *testing.T) {
	spec := Spec{
		MaxTurnP99Seconds: 0.5,
		MinTurnThroughput: 50,
	}
	r := passingReport()
	r.Workspaces = map[string]*WorkspaceLoad{
		"default": {Turns: 990, TurnsPerSecond: 247, TurnLatency: Latency{P99Seconds: 0.040}},
		"retail":  {Turns: 10, TurnsPerSecond: 3, TurnLatency: Latency{P99Seconds: 2.0}},
	}
	v := spec.Evaluate(r)
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the retail p99 breach", v)
	}
	if v[0].Name != "workspace[retail].turn_p99_seconds" {
		t.Fatalf("violation = %q", v[0].Name)
	}
}

func TestSpecForSelectsMultiTenantObjectives(t *testing.T) {
	f := File{
		Spec:        Spec{MaxTurnP99Seconds: 0.5},
		MultiTenant: &Spec{MaxTurnP99Seconds: 1.5},
	}
	single := passingReport()
	if got := f.SpecFor(single); got.MaxTurnP99Seconds != 0.5 {
		t.Fatalf("single-tenant report got spec %+v", got)
	}
	mixed := passingReport()
	mixed.Workspaces = map[string]*WorkspaceLoad{"a": {}, "b": {}}
	if got := f.SpecFor(mixed); got.MaxTurnP99Seconds != 1.5 {
		t.Fatalf("mixed-tenant report got spec %+v", got)
	}
	// Without a multi-tenant section the primary spec gates everything.
	f.MultiTenant = nil
	if got := f.SpecFor(mixed); got.MaxTurnP99Seconds != 0.5 {
		t.Fatalf("fallback spec %+v", got)
	}
}

func TestLoadFileCarriesMultiTenantSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	body := `{
  "slo": {"max_turn_p99_seconds": 0.25},
  "slo_multi_tenant": {"max_turn_p99_seconds": 0.75, "min_turn_throughput": 10}
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.MultiTenant == nil || f.MultiTenant.MaxTurnP99Seconds != 0.75 || f.MultiTenant.MinTurnThroughput != 10 {
		t.Fatalf("multi-tenant spec = %+v", f.MultiTenant)
	}
}

func TestLoadRejectsEmptyAndMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "ghost.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(path, []byte(`{"description": "no slo key"}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("baseline without objectives accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{`), 0o644)
	if _, err := Load(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
