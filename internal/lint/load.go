package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// stdlibImporter chains the compiler export-data importer with a
// source-parsing fallback, so the loader works both on machines with
// prebuilt stdlib export data and on machines with only GOROOT sources
// (Go ≥ 1.20 stopped shipping stdlib .a files).
type stdlibImporter struct {
	fset *token.FileSet
	gc   types.Importer
	src  types.Importer
	memo map[string]*types.Package
}

func newStdlibImporter(fset *token.FileSet) *stdlibImporter {
	return &stdlibImporter{
		fset: fset,
		gc:   importer.Default(),
		memo: map[string]*types.Package{},
	}
}

func (si *stdlibImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.memo[path]; ok {
		return pkg, nil
	}
	pkg, err := si.gc.Import(path)
	if err != nil {
		if si.src == nil {
			si.src = importer.ForCompiler(si.fset, "source", nil)
		}
		pkg, err = si.src.Import(path)
		if err != nil {
			return nil, fmt.Errorf("lint: import %q: %w", path, err)
		}
	}
	si.memo[path] = pkg
	return pkg, nil
}

// moduleImporter resolves module-internal imports from already-checked
// packages and everything else through the stdlib chain.
type moduleImporter struct {
	module string
	done   map[string]*types.Package
	stdlib *stdlibImporter
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == mi.module || strings.HasPrefix(path, mi.module+"/") {
		pkg, ok := mi.done[path]
		if !ok {
			return nil, fmt.Errorf("lint: internal package %q not yet checked (import cycle?)", path)
		}
		return pkg, nil
	}
	return mi.stdlib.Import(path)
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return abs, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// LoadModule parses and type-checks every package of the module rooted at
// root whose import path matches one of the patterns. Patterns follow go
// tool syntax reduced to what ontolint needs: "./..." (everything),
// "./dir/..." (a subtree), or "./dir" (one package). Packages are
// returned topologically sorted (dependencies first). Test files are
// excluded: the analyzers target the shipping code.
func LoadModule(root string, patterns []string) ([]*Package, error) {
	root, module, err := FindModule(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type parsed struct {
		dir   string
		path  string
		files []*ast.File
		deps  []string
	}
	byPath := map[string]*parsed{}
	var order []string
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{dir: dir, path: path, files: files}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ip == module || strings.HasPrefix(ip, module+"/") {
					p.deps = append(p.deps, ip)
				}
			}
		}
		byPath[path] = p
		order = append(order, path)
	}
	sort.Strings(order)

	// Topological sort over module-internal imports.
	var topo []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %q", path)
		case 2:
			return nil
		}
		state[path] = 1
		p := byPath[path]
		deps := append([]string(nil), p.deps...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := byPath[d]; !ok {
				return fmt.Errorf("lint: %q imports %q, which is not in the module", path, d)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = 2
		topo = append(topo, path)
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	// Type-check in dependency order.
	imp := &moduleImporter{module: module, done: map[string]*types.Package{}, stdlib: newStdlibImporter(fset)}
	var pkgs []*Package
	for _, path := range topo {
		p := byPath[path]
		pkg, err := check(fset, path, p.files, imp)
		if err != nil {
			return nil, err
		}
		imp.done[path] = pkg.Types
		pkg.Dir = p.dir
		pkgs = append(pkgs, pkg)
	}

	// Filter down to the requested patterns, preserving topo order.
	want := func(path string) bool {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, module), "/")
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			switch {
			case pat == "..." || pat == "" || pat == ".":
				return true
			case strings.HasSuffix(pat, "/..."):
				prefix := strings.TrimSuffix(pat, "/...")
				if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					return true
				}
			case rel == strings.TrimSuffix(pat, "/"):
				return true
			}
		}
		return false
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []*Package
	for _, pkg := range pkgs {
		if want(pkg.Path) {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// CheckDir parses and type-checks a single directory of Go files as the
// given import path, resolving imports from the standard library only.
// Golden tests use it to run analyzers over known-bad snippets while
// impersonating an analyzer-scoped package path.
func CheckDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, err := check(fset, importPath, files, newStdlibImporter(fset))
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

// check type-checks one package.
func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// parseDir parses every non-test Go file in dir (build-tag-free module, so
// no constraint evaluation is needed).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// packageDirs lists every directory under root that can hold a package,
// skipping VCS metadata, testdata trees and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
