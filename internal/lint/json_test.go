package lint

import (
	"go/token"
	"strings"
	"testing"
)

// TestWriteJSONGolden pins the -json encoding byte for byte: CI consumes
// this format as a build artifact, so any change must be deliberate.
func TestWriteJSONGolden(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/agent/respond.go", Line: 21, Column: 9},
			Analyzer: "genpin",
			Message:  "a pinned *runtime generation escapes the turn",
		},
		{
			Pos:      token.Position{Filename: "internal/core/keyconcepts.go", Line: 99, Column: 3},
			Analyzer: "dettaint",
			Message:  "nondeterminism from map iteration order flows into artifact sink (Space).WriteJSON",
		},
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, diags); err != nil {
		t.Fatal(err)
	}
	want := `{
  "count": 2,
  "findings": [
    {
      "file": "internal/agent/respond.go",
      "line": 21,
      "column": 9,
      "analyzer": "genpin",
      "message": "a pinned *runtime generation escapes the turn"
    },
    {
      "file": "internal/core/keyconcepts.go",
      "line": 99,
      "column": 3,
      "analyzer": "dettaint",
      "message": "nondeterminism from map iteration order flows into artifact sink (Space).WriteJSON"
    }
  ]
}
`
	if sb.String() != want {
		t.Errorf("WriteJSON encoding drifted:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestWriteJSONEmpty: a clean run must yield an empty array, not null.
func TestWriteJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"count\": 0,\n  \"findings\": []\n}\n"
	if sb.String() != want {
		t.Errorf("empty report drifted:\ngot:\n%q\nwant:\n%q", sb.String(), want)
	}
}
