package lint_test

import (
	"testing"

	"ontoconv/internal/lint"
)

// TestLoadModulePatterns exercises the stdlib-only loader end to end: it
// must find the enclosing module from a package directory, type-check it
// with dependencies ordered before dependents, and honor go-style
// pattern filtering.
func TestLoadModulePatterns(t *testing.T) {
	pkgs, err := lint.LoadModule(".", []string{"./internal/lint"})
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "ontoconv/internal/lint" {
		t.Fatalf("pattern ./internal/lint selected %v", paths(pkgs))
	}

	pkgs, err = lint.LoadModule(".", []string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.Path] = true
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Fatalf("package %s loaded without type information", p.Path)
		}
	}
	for _, want := range []string{"ontoconv/internal/core", "ontoconv/internal/sqlx", "ontoconv/internal/agent"} {
		if !seen[want] {
			t.Fatalf("pattern ./internal/... missed %s; got %v", want, paths(pkgs))
		}
	}
	if seen["ontoconv/cmd/ontolint"] {
		t.Fatalf("pattern ./internal/... leaked cmd packages")
	}
}

// TestModuleLintClean is the self-hosting regression test: the repository
// must stay free of findings from its own analyzers. This is the same
// invariant CI enforces with `go run ./cmd/ontolint ./...`.
func TestModuleLintClean(t *testing.T) {
	pkgs, err := lint.LoadModule(".", []string{"./..."})
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	diags := lint.RunAnalyzers(pkgs, nil)
	for _, d := range diags {
		t.Errorf("finding: %s", d.String())
	}
}

func paths(pkgs []*lint.Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}
