package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ontoconv/internal/lint"
)

// Golden tests: each analyzer runs over a testdata package of known-bad
// (and deliberately-benign) snippets. Lines that must produce a
// diagnostic carry a `//want:<analyzer>` marker; the test fails on any
// missing or unexpected finding, so both detection and false-positive
// regressions are caught.

var wantMarker = regexp.MustCompile(`//want:([a-z]+)`)

func analyzerByName(t *testing.T, name string) *lint.Analyzer {
	t.Helper()
	for _, a := range lint.Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// runGolden type-checks testdata/src/<name> under the import path the
// analyzer is scoped to and diffs findings against the //want markers.
func runGolden(t *testing.T, name, importPath string) {
	t.Helper()
	runGoldenDir(t, name, name, importPath)
}

// runGoldenDir is runGolden with an explicit fixture directory, for
// analyzers with more than one fixture package (the interprocedural
// lockheld/errdrop cases live apart from the intra-function ones).
func runGoldenDir(t *testing.T, name, dirName, importPath string) {
	t.Helper()
	a := analyzerByName(t, name)
	if a.Match != nil && !a.Match(importPath) {
		t.Fatalf("analyzer %s is out of scope for %s; golden test would be vacuous", name, importPath)
	}

	dir := filepath.Join("testdata", "src", dirName)
	pkg, err := lint.CheckDir(dir, importPath)
	if err != nil {
		t.Fatalf("CheckDir(%s): %v", dir, err)
	}

	want := map[string]bool{} // "file:line"
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantMarker.FindAllStringSubmatch(line, -1) {
				if m[1] != name {
					t.Fatalf("%s:%d: marker %q does not match analyzer %q", e.Name(), i+1, m[0], name)
				}
				want[fmt.Sprintf("%s:%d", e.Name(), i+1)] = true
			}
		}
	}
	if len(want) == 0 {
		t.Fatalf("no //want:%s markers in %s; golden test would prove nothing", name, dir)
	}

	got := map[string]bool{}
	var diags []lint.Diagnostic
	for _, d := range lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a}) {
		got[fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)] = true
		diags = append(diags, d)
	}

	var missing, extra []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing)+len(extra) > 0 {
		var all []string
		for _, d := range diags {
			all = append(all, d.String())
		}
		t.Errorf("%s: missing findings at %v, unexpected findings at %v\nall diagnostics:\n  %s",
			name, missing, extra, strings.Join(all, "\n  "))
	}
}

func TestGoldenNonDeterm(t *testing.T) { runGolden(t, "nondeterm", "ontoconv/internal/core") }
func TestGoldenSQLBuild(t *testing.T)  { runGolden(t, "sqlbuild", "ontoconv/internal/agent") }
func TestGoldenLockHeld(t *testing.T)  { runGolden(t, "lockheld", "ontoconv/internal/agent") }
func TestGoldenErrDrop(t *testing.T)   { runGolden(t, "errdrop", "ontoconv/internal/core") }

func TestGoldenParaGoroutine(t *testing.T) {
	runGolden(t, "paragoroutine", "ontoconv/internal/core")
}

// TestParaGoroutineScope pins the parallel-pipeline packages into the
// analyzer's watch set: the fused NLU trainer, the bundle compiler, and
// the pool itself all fan out over goroutines, and an unsynchronized
// shared write in any of them silently breaks the byte-identical-bundle
// guarantee. The serving-side agent package stays out of scope — its
// concurrency (sessions, reloads) is mutex-based by design and belongs
// to lockheld.
func TestParaGoroutineScope(t *testing.T) {
	a := analyzerByName(t, "paragoroutine")
	for _, path := range []string{
		"ontoconv/internal/par",
		"ontoconv/internal/nlu",
		"ontoconv/internal/bundle",
		"ontoconv/internal/core",
		"ontoconv/internal/medkb",
	} {
		if !a.Match(path) {
			t.Errorf("paragoroutine does not cover %s; parallel closures there are unchecked", path)
		}
	}
	if a.Match("ontoconv/internal/agent") {
		t.Error("paragoroutine unexpectedly in scope for internal/agent")
	}
}

// TestAnalyzerScope proves scoped analyzers stay silent outside their
// package set: the same known-bad nondeterm snippets produce nothing when
// the package impersonates a path off the artifact-emission path.
func TestAnalyzerScope(t *testing.T) {
	a := analyzerByName(t, "nondeterm")
	if a.Match("ontoconv/internal/sim") {
		t.Fatalf("nondeterm unexpectedly in scope for internal/sim")
	}
	pkg, err := lint.CheckDir(filepath.Join("testdata", "src", "nondeterm"), "ontoconv/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a}); len(diags) != 0 {
		t.Fatalf("out-of-scope package produced findings: %v", diags)
	}
}

// TestPlannerInScope pins the query-planner package into the analyzers
// that must watch it: compiled plans are emission artifacts (a map-order
// dependency in Prepare would make plans differ run over run), and
// Plan.Exec is KB execution that must never run under a serving-path
// mutex (the answer cache's lock discipline depends on lockheld seeing
// sqlx calls as blocking).
func TestPlannerInScope(t *testing.T) {
	if !analyzerByName(t, "nondeterm").Match("ontoconv/internal/sqlx") {
		t.Error("nondeterm does not cover internal/sqlx; plan compilation order unchecked")
	}
	if !analyzerByName(t, "lockheld").Match("ontoconv/internal/agent") {
		t.Error("lockheld does not cover internal/agent; cache lock discipline unchecked")
	}
	if !analyzerByName(t, "errdrop").Match("ontoconv/internal/sqlx") {
		t.Error("errdrop does not cover internal/sqlx")
	}
}

// TestSuppressionDirective proves //ontolint:ignore silences exactly the
// annotated line: the suppressed twin of a flagged pattern (present in the
// nondeterm snippets) must not appear in the diagnostics.
func TestSuppressionDirective(t *testing.T) {
	pkg, err := lint.CheckDir(filepath.Join("testdata", "src", "nondeterm"), "ontoconv/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{analyzerByName(t, "nondeterm")})
	for _, d := range diags {
		line, err := snippetLine(d.Pos.Filename, d.Pos.Line-1)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(line, "ontolint:ignore") {
			t.Errorf("diagnostic survived a suppression directive: %s", d)
		}
	}
}

func snippetLine(file string, n int) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	lines := strings.Split(string(data), "\n")
	if n < 1 || n > len(lines) {
		return "", nil
	}
	return lines[n-1], nil
}
