package dataflow_test

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ontoconv/internal/lint"
	"ontoconv/internal/lint/dataflow"
)

func loadCallgraph(t *testing.T) *dataflow.Graph {
	t.Helper()
	pkg, err := lint.CheckDir(filepath.Join("testdata", "src", "callgraph"), "ontoconv/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	return dataflow.Build([]*dataflow.Pkg{{
		Path:  pkg.Path,
		Fset:  pkg.Fset,
		Files: pkg.Files,
		Types: pkg.Types,
		Info:  pkg.Info,
	}})
}

// TestEdgeListDeterminism: two independent loads of the same package
// must yield byte-identical edge lists. Every interprocedural
// diagnostic ultimately orders itself by this graph, so this is the
// determinism anchor for the whole engine.
func TestEdgeListDeterminism(t *testing.T) {
	a := loadCallgraph(t).EdgeList()
	b := loadCallgraph(t).EdgeList()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("edge lists differ between loads:\nfirst:\n  %s\nsecond:\n  %s",
			strings.Join(a, "\n  "), strings.Join(b, "\n  "))
	}
	if len(a) == 0 {
		t.Fatal("callgraph fixture produced no edges")
	}
}

// TestCHAFanOut: an interface dispatch resolves to every implementation
// declared in the analyzed packages, marked dynamic; the closure-routed
// call is attributed to the enclosing function as a static edge.
func TestCHAFanOut(t *testing.T) {
	edges := loadCallgraph(t).EdgeList()
	joined := strings.Join(edges, "\n")
	for _, want := range []string{
		"Copy -> (memStore).Put [dynamic]",
		"Copy -> (nullStore).Put [dynamic]",
		"Copy -> (memStore).Get [dynamic]",
		"Copy -> (nullStore).Get [dynamic]",
		"Fill -> (memStore).Put",
		"Fill -> callgraph.each",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("edge list missing %q:\n  %s", want, strings.Join(edges, "\n  "))
		}
	}
}

// TestSCCOrder: Tarjan must emit callees before callers (reverse
// topological order), which is what the summary fixpoint relies on.
func TestSCCOrder(t *testing.T) {
	g := loadCallgraph(t)
	seen := map[string]int{}
	for i, comp := range g.SCCs() {
		for _, n := range comp {
			seen[n.Func.Name()] = i
		}
	}
	// Fill calls each; each's component must come first.
	if seen["each"] >= seen["Fill"] {
		t.Errorf("callee each (scc %d) not emitted before caller Fill (scc %d)", seen["each"], seen["Fill"])
	}
}
