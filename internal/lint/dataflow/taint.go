package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The taint engine answers "can a value produced *here* reach a call
// *there*, through any chain of helpers?" for a client-defined set of
// sources and sinks. Each analyzed function gets a summary — which
// sources flow to its results, which parameters flow to its results,
// which parameters reach a sink inside it or below it — and summaries
// propagate bottom-up over the call graph's SCC condensation until
// fixpoint. Within one body the analysis is flow-insensitive and
// field-insensitive: a variable that is ever tainted stays tainted, and
// taint on any part of a composite taints the whole. Both choices trade
// precision for a lattice that provably terminates (taint only grows)
// and stays deterministic; clients narrow the noise with a type Filter
// (genpin) or sink scoping (dettaint).

// Spec configures one taint analysis.
type Spec struct {
	// Noun opens every message: "nondeterminism", "a pinned *runtime
	// generation".
	Noun string
	// Sources produce taint.
	Sources []Source
	// Sinks are calls tainted values must not reach.
	Sinks []Sink
	// Filter, when non-nil, restricts which static types carry taint:
	// an expression whose type fails the filter drops its taint. genpin
	// uses this to track only values that can hold a *runtime.
	Filter func(t types.Type) bool
	// EscapeSink, when non-empty, treats stores into memory that
	// outlives the function — fields of parameters, package variables —
	// as sinks, described by this noun phrase.
	EscapeSink string
	// GoCaptureSink, when non-empty, treats a spawned goroutine's use
	// of a tainted value (captured or passed) as a sink.
	GoCaptureSink string
}

// Source is one taint origin.
type Source struct {
	// Kind names the source class in messages ("time.Now" chains name
	// the concrete function; Kind is the fallback).
	Kind string
	// Call reports whether calling fn (yielding result type) produces
	// this taint. nil for MapAppend sources.
	Call func(fn *types.Func, result types.Type) bool
	// MapAppend marks the map-iteration-order source: taint injected at
	// appends executed inside a map-range body, the interprocedural
	// extension of nondeterm's collect-then-sort rule.
	MapAppend bool
}

// Sink is one forbidden destination.
type Sink struct {
	// Name describes the sink in messages ("artifact write os.WriteFile").
	Name string
	// Call returns the sensitive parameter indexes (receiver is index 0
	// when present; nil means all) and whether fn is this sink.
	Call func(fn *types.Func) ([]int, bool)
}

// Finding is one source-reaches-sink diagnostic.
type Finding struct {
	Pos      token.Pos
	Position token.Position
	PkgPath  string
	Message  string
}

// Analyze runs the taint analysis over the graph and returns findings
// sorted by position. The same graph can be analyzed under several
// specs; per-spec state lives in this call, not on the graph.
func Analyze(g *Graph, spec *Spec) []Finding {
	e := &engine{g: g, spec: spec, mapSrc: -1, states: map[*Node]*funcState{}}
	for i, s := range spec.Sources {
		if s.MapAppend {
			e.mapSrc = i
		}
	}
	for _, n := range g.List {
		e.states[n] = newFuncState(e, n)
	}
	// Bottom-up over the condensation: callee summaries are final
	// before any caller reads them; cyclic components iterate.
	for _, comp := range g.SCCs() {
		for pass := 0; pass < 32; pass++ {
			grew := false
			for _, n := range comp {
				st := e.states[n]
				st.grew = false
				(&walker{e: e, n: n, st: st}).walk()
				grew = grew || st.grew
			}
			if !grew {
				break
			}
		}
	}
	// Report pass: environments and summaries are stable; one more walk
	// per function emits the findings.
	var out []Finding
	for _, n := range g.List {
		w := &walker{e: e, n: n, st: e.states[n], findings: &out}
		w.walk()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Message < b.Message
	})
	var dedup []Finding
	for _, f := range out {
		if len(dedup) == 0 || dedup[len(dedup)-1].Position != f.Position || dedup[len(dedup)-1].Message != f.Message {
			dedup = append(dedup, f)
		}
	}
	return dedup
}

// taint is one lattice value: a set of source classes and a set of
// formal parameters, plus (for sources) the witness call chain.
type taint struct {
	src uint32
	par uint32
	via map[int]string // source index -> "helper → origin" chain
}

func (t taint) empty() bool { return t.src == 0 && t.par == 0 }

func (t taint) union(o taint) taint {
	out := taint{src: t.src | o.src, par: t.par | o.par, via: t.via}
	if len(o.via) > 0 {
		merged := make(map[int]string, len(t.via)+len(o.via))
		for k, v := range t.via {
			merged[k] = v
		}
		for k, v := range o.via {
			if _, ok := merged[k]; !ok {
				merged[k] = v
			}
		}
		out.via = merged
	}
	return out
}

func (t taint) withVia(i int, chain string) taint {
	out := taint{src: t.src | 1<<i, par: t.par, via: map[int]string{i: chain}}
	for k, v := range t.via {
		if _, ok := out.via[k]; !ok {
			out.via[k] = v
		}
	}
	return out
}

// chain returns the witness for source bit i, falling back to the
// source's Kind.
func (e *engine) chain(t taint, i int) string {
	if c, ok := t.via[i]; ok {
		return c
	}
	return e.spec.Sources[i].Kind
}

type engine struct {
	g      *Graph
	spec   *Spec
	mapSrc int
	states map[*Node]*funcState
}

// funcState is the engine's per-function memory: the variable
// environment and the exported summary. All fields only grow, which is
// what makes the SCC fixpoint terminate.
type funcState struct {
	params   []*types.Var
	paramIdx map[types.Object]int
	env      map[types.Object]taint
	// sorted marks variables that are ever passed to a sort.* or
	// slices.* call in this function: the collect-then-sort idiom
	// sanitizes the map-order source.
	sorted map[types.Object]bool
	// result is the summary's flow-to-result lattice value: src bits =
	// sources reaching any result, par bits = parameters reaching any
	// result.
	result taint
	// paramSinks maps a parameter index to the sink chains it reaches
	// ("(Bundle).WriteFile", "emit → os.WriteFile").
	paramSinks map[int][]string
	grew       bool
}

const maxParamSinkChains = 4

func newFuncState(e *engine, n *Node) *funcState {
	st := &funcState{
		paramIdx:   map[types.Object]int{},
		env:        map[types.Object]taint{},
		sorted:     map[types.Object]bool{},
		paramSinks: map[int][]string{},
	}
	sig := n.Func.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		st.params = append(st.params, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		st.params = append(st.params, sig.Params().At(i))
	}
	for i, p := range st.params {
		st.paramIdx[p] = i
		if i >= 32 {
			break
		}
		if e.spec.Filter != nil && !e.spec.Filter(p.Type()) {
			continue
		}
		st.env[p] = taint{par: 1 << i}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := Callee(n.Pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || (fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			// Root identifier, so sort.Strings(an.AllDependents)
			// sanitizes stores into an's fields too (the analysis is
			// field-insensitive on the store side as well).
			if id := rootIdentExpr(Unparen(arg)); id != nil {
				if obj := n.Pkg.Info.ObjectOf(id); obj != nil {
					st.sorted[obj] = true
				}
			}
		}
		return true
	})
	return st
}

func (st *funcState) merge(obj types.Object, t taint) {
	if t.empty() {
		return
	}
	old := st.env[obj]
	next := old.union(t)
	if next.src != old.src || next.par != old.par {
		st.grew = true
	}
	st.env[obj] = next
}

func (st *funcState) mergeResult(t taint) {
	old := st.result
	next := old.union(t)
	if next.src != old.src || next.par != old.par {
		st.grew = true
	}
	st.result = next
}

func (st *funcState) addParamSink(i int, desc string) {
	for _, d := range st.paramSinks[i] {
		if d == desc {
			return
		}
	}
	if len(st.paramSinks[i]) >= maxParamSinkChains {
		return
	}
	st.paramSinks[i] = append(st.paramSinks[i], desc)
	st.grew = true
}

// walker runs one pass over one function body. With findings nil it
// only updates the environment and summary; with findings set it also
// emits diagnostics (environments are stable by then).
type walker struct {
	e          *engine
	n          *Node
	st         *funcState
	inMapRange int
	findings   *[]Finding
}

func (w *walker) walk() { w.stmts(w.n.Decl.Body.List) }

func (w *walker) typeOf(e ast.Expr) types.Type { return w.n.Pkg.Info.TypeOf(e) }

func (w *walker) objectOf(id *ast.Ident) types.Object { return w.n.Pkg.Info.ObjectOf(id) }

// emit records one source-reaches-sink finding (report pass only) and,
// when the tainted value is parameter-derived, extends the summary so
// callers see the sink through this function.
func (w *walker) emit(sinkDesc string, t taint, pos token.Pos) {
	if t.empty() {
		return
	}
	for i := 0; i < len(w.e.spec.Sources); i++ {
		if t.src&(1<<i) == 0 {
			continue
		}
		if w.findings != nil {
			msg := fmt.Sprintf("%s from %s flows into %s", w.e.spec.Noun, w.e.chain(t, i), sinkDesc)
			*w.findings = append(*w.findings, Finding{
				Pos:      pos,
				Position: w.n.Pkg.Fset.Position(pos),
				PkgPath:  w.n.Pkg.Path,
				Message:  msg,
			})
		}
	}
	for i := 0; i < len(w.st.params) && i < 32; i++ {
		if t.par&(1<<i) != 0 {
			w.st.addParamSink(i, sinkDesc)
		}
	}
}

// ---- statements ----

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ExprStmt:
		w.eval(s.X)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					switch {
					case len(vs.Values) == len(vs.Names):
						w.store(name, w.eval(vs.Values[i]))
					case len(vs.Values) == 1:
						w.store(name, w.eval(vs.Values[0]))
					}
				}
			}
		}
	case *ast.ReturnStmt:
		w.returnStmt(s)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.eval(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.eval(s.Cond)
		}
		w.stmt(s.Post)
		w.stmt(s.Body)
	case *ast.RangeStmt:
		w.rangeStmt(s)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.eval(s.Tag)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					w.eval(e)
				}
				w.stmts(cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		w.typeSwitch(s)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				w.stmt(cl.Comm)
				w.stmts(cl.Body)
			}
		}
	case *ast.GoStmt:
		w.goStmt(s)
	case *ast.DeferStmt:
		w.eval(s.Call)
	case *ast.SendStmt:
		w.eval(s.Chan)
		w.eval(s.Value)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

func (w *walker) returnStmt(s *ast.ReturnStmt) {
	if len(s.Results) == 0 {
		// Naked return: the named results carry the flow.
		if res := w.n.Decl.Type.Results; res != nil {
			for _, field := range res.List {
				for _, name := range field.Names {
					if obj := w.objectOf(name); obj != nil {
						w.st.mergeResult(w.st.env[obj])
					}
				}
			}
		}
		return
	}
	for _, r := range s.Results {
		w.st.mergeResult(w.eval(r))
	}
}

func (w *walker) rangeStmt(s *ast.RangeStmt) {
	t := w.eval(s.X)
	overMap := false
	if xt := w.typeOf(s.X); xt != nil {
		_, overMap = xt.Underlying().(*types.Map)
	}
	if s.Value != nil {
		w.store(s.Value, t)
	}
	if s.Key != nil && overMap {
		w.store(s.Key, t)
	}
	if overMap {
		w.inMapRange++
		w.stmt(s.Body)
		w.inMapRange--
		return
	}
	w.stmt(s.Body)
}

func (w *walker) typeSwitch(s *ast.TypeSwitchStmt) {
	w.stmt(s.Init)
	var subject taint
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				subject = w.eval(ta.X)
			}
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			subject = w.eval(ta.X)
		}
	}
	for _, cc := range s.Body.List {
		cl, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if obj := w.n.Pkg.Info.Implicits[cl]; obj != nil {
			w.st.merge(obj, w.filterObj(obj, subject))
		}
		w.stmts(cl.Body)
	}
}

func (w *walker) goStmt(s *ast.GoStmt) {
	if w.e.spec.GoCaptureSink != "" {
		if lit, ok := Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(node ast.Node) bool {
				id, ok := node.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := w.objectOf(id).(*types.Var)
				if !ok || v.IsField() || (v.Pos() >= lit.Pos() && v.Pos() <= lit.End()) {
					return true
				}
				w.emit(w.e.spec.GoCaptureSink, w.st.env[v], id.Pos())
				return true
			})
		} else {
			for _, arg := range s.Call.Args {
				w.emit(w.e.spec.GoCaptureSink, w.eval(arg), arg.Pos())
			}
		}
	}
	w.eval(s.Call)
}

func (w *walker) assign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		t := w.eval(s.Rhs[0])
		for _, lhs := range s.Lhs {
			w.store(lhs, w.filterExpr(lhs, t))
		}
		return
	}
	for i := range s.Lhs {
		if i < len(s.Rhs) {
			w.store(s.Lhs[i], w.eval(s.Rhs[i]))
		}
	}
}

// store routes taint into an assignment target. A plain identifier
// accumulates it; a store through a selector, index, or dereference
// whose base is a parameter or package variable is an escape (when the
// spec tracks escapes) because the written memory outlives the call;
// otherwise the taint folds into the base variable, so a locally built
// composite stays tainted as a whole.
func (w *walker) store(lhs ast.Expr, t taint) {
	if t.empty() {
		return
	}
	switch l := Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := w.objectOf(l)
		if obj == nil {
			return
		}
		t = w.sanitizeSorted(obj, t)
		if w.e.spec.EscapeSink != "" && isPackageVar(obj) {
			w.emit(fmt.Sprintf("%s (a store into package variable %s)", w.e.spec.EscapeSink, l.Name), t, lhs.Pos())
			return
		}
		w.st.merge(obj, t)
	case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
		root := rootIdentExpr(l)
		if root == nil {
			if w.e.spec.EscapeSink != "" {
				w.emit(fmt.Sprintf("%s (a store into %s)", w.e.spec.EscapeSink, types.ExprString(lhs)), t, lhs.Pos())
			}
			return
		}
		obj := w.objectOf(root)
		if obj == nil {
			return
		}
		if w.e.spec.EscapeSink != "" {
			if _, isParam := w.st.paramIdx[obj]; isParam || isPackageVar(obj) {
				w.emit(fmt.Sprintf("%s (a store into %s)", w.e.spec.EscapeSink, types.ExprString(lhs)), t, lhs.Pos())
				return
			}
		}
		t = w.sanitizeSorted(obj, t)
		w.st.merge(obj, t)
	}
}

// sanitizeSorted clears the map-order source when storing into a
// variable this function later sorts: the collect-then-sort idiom.
func (w *walker) sanitizeSorted(obj types.Object, t taint) taint {
	if w.e.mapSrc >= 0 && w.st.sorted[obj] {
		t.src &^= 1 << w.e.mapSrc
	}
	return t
}

func isPackageVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && v.Parent() == v.Pkg().Scope()
}

// ---- expressions ----

func (w *walker) eval(e ast.Expr) taint {
	return w.filterExpr(e, w.evalRaw(e))
}

// filterExpr drops taint that the spec's type filter rejects for this
// expression's static type.
func (w *walker) filterExpr(e ast.Expr, t taint) taint {
	if t.empty() || w.e.spec.Filter == nil {
		return t
	}
	typ := w.typeOf(e)
	if typ == nil || w.e.spec.Filter(typ) {
		return t
	}
	return taint{}
}

func (w *walker) filterObj(obj types.Object, t taint) taint {
	if t.empty() || w.e.spec.Filter == nil {
		return t
	}
	if w.e.spec.Filter(obj.Type()) {
		return t
	}
	return taint{}
}

func (w *walker) evalRaw(e ast.Expr) taint {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := w.objectOf(e); obj != nil {
			return w.st.env[obj]
		}
	case *ast.CallExpr:
		return w.call(e)
	case *ast.SelectorExpr:
		// Qualified reference (pkg.X) or field/method selection: either
		// way the base expression's taint is the value's taint.
		if obj := w.objectOf(e.Sel); obj != nil {
			if _, isPkg := w.objectOf(baseIdent(e.X)).(*types.PkgName); isPkg {
				return w.st.env[obj]
			}
		}
		return w.evalRaw(e.X)
	case *ast.ParenExpr:
		return w.evalRaw(e.X)
	case *ast.StarExpr:
		return w.eval(e.X)
	case *ast.UnaryExpr:
		return w.eval(e.X)
	case *ast.BinaryExpr:
		return w.eval(e.X).union(w.eval(e.Y))
	case *ast.IndexExpr:
		return w.eval(e.X).union(w.eval(e.Index))
	case *ast.IndexListExpr:
		return w.eval(e.X)
	case *ast.SliceExpr:
		return w.eval(e.X)
	case *ast.TypeAssertExpr:
		return w.eval(e.X)
	case *ast.CompositeLit:
		var t taint
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.union(w.eval(kv.Value))
				continue
			}
			t = t.union(w.eval(el))
		}
		return t
	case *ast.KeyValueExpr:
		return w.eval(e.Value)
	case *ast.FuncLit:
		// The closure's effects on captured state happen in the
		// enclosing frame: walk its body in the same environment.
		saved := w.inMapRange
		w.inMapRange = 0
		w.stmts(e.Body.List)
		w.inMapRange = saved
		return taint{}
	}
	return taint{}
}

// call evaluates one call expression: argument taints, source
// production, sink checks, and callee-summary application.
func (w *walker) call(call *ast.CallExpr) taint {
	fn := Callee(w.n.Pkg.Info, call)
	if fn == nil {
		return w.opaqueCall(call)
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		// Interface dispatch: CHA edges serve reachability, but for
		// value flow the conservative argument union stands in for the
		// unknown concrete method.
		return w.opaqueCall(call)
	}
	argT := w.paramTaints(fn, call)

	var t taint
	resType := w.typeOf(call)
	for i, src := range w.e.spec.Sources {
		if src.Call != nil && src.Call(fn, resType) {
			t = t.withVia(i, ShortName(fn))
		}
	}
	for _, sink := range w.e.spec.Sinks {
		idxs, ok := sink.Call(fn)
		if !ok {
			continue
		}
		if idxs == nil {
			for i := range argT {
				w.emit(sink.Name, argT[i], call.Pos())
			}
			continue
		}
		for _, i := range idxs {
			if i < len(argT) {
				w.emit(sink.Name, argT[i], call.Pos())
			}
		}
	}
	if cn := w.e.g.NodeOf(fn); cn != nil && cn.Decl != nil {
		sum := w.e.states[cn]
		for i := 0; i < len(w.e.spec.Sources); i++ {
			if sum.result.src&(1<<i) != 0 {
				t = t.withVia(i, ShortName(fn)+" → "+w.e.chain(sum.result, i))
			}
		}
		for j := range argT {
			if j < 32 && sum.result.par&(1<<j) != 0 {
				t = t.union(argT[j])
			}
		}
		for j, descs := range sum.paramSinks {
			if j >= len(argT) {
				continue
			}
			for _, desc := range descs {
				w.emit(ShortName(fn)+" → "+desc, argT[j], call.Pos())
			}
		}
		return t
	}
	// External callee without a body: assume arguments flow to results.
	for i := range argT {
		t = t.union(argT[i])
	}
	return t
}

// opaqueCall handles builtins, conversions, and calls through function
// values: no summary, so arguments conservatively flow to the result.
func (w *walker) opaqueCall(call *ast.CallExpr) taint {
	fun := Unparen(call.Fun)
	if tv, ok := w.n.Pkg.Info.Types[fun]; ok && tv.IsType() {
		var t taint
		for _, a := range call.Args {
			t = t.union(w.eval(a))
		}
		return t
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := w.objectOf(id).(*types.Builtin); ok {
			return w.builtin(b.Name(), call)
		}
	}
	t := w.eval(call.Fun)
	for _, a := range call.Args {
		t = t.union(w.eval(a))
	}
	return t
}

func (w *walker) builtin(name string, call *ast.CallExpr) taint {
	switch name {
	case "append":
		var t taint
		for _, a := range call.Args {
			t = t.union(w.eval(a))
		}
		if w.e.mapSrc >= 0 && w.inMapRange > 0 {
			t = t.withVia(w.e.mapSrc, "map iteration order")
		}
		return t
	case "copy":
		if len(call.Args) == 2 {
			w.store(call.Args[0], w.eval(call.Args[1]))
		}
		return taint{}
	case "min", "max":
		var t taint
		for _, a := range call.Args {
			t = t.union(w.eval(a))
		}
		return t
	default:
		// len, cap, delete, make, new, clear, close, panic, print…:
		// evaluate arguments for their call effects, yield no taint.
		for _, a := range call.Args {
			w.eval(a)
		}
		return taint{}
	}
}

// paramTaints evaluates a call's arguments and maps them onto the
// callee's formal parameters: receiver first, variadic arguments folded
// into the last parameter.
func (w *walker) paramTaints(fn *types.Func, call *ast.CallExpr) []taint {
	sig := fn.Type().(*types.Signature)
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	if n == 0 {
		for _, a := range call.Args {
			w.eval(a)
		}
		return nil
	}
	out := make([]taint, n)
	var exprs []ast.Expr
	if sig.Recv() != nil {
		if sel, ok := Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if w.n.Pkg.Info.Selections[sel] != nil {
				exprs = append(exprs, sel.X)
			}
		}
		// Method expressions (T.M)(x, …) already pass the receiver
		// first in call.Args.
	}
	exprs = append(exprs, call.Args...)
	for i, e := range exprs {
		j := i
		if j >= n {
			j = n - 1
		}
		out[j] = out[j].union(w.eval(e))
	}
	return out
}

func baseIdent(e ast.Expr) *ast.Ident {
	id, _ := Unparen(e).(*ast.Ident)
	return id
}

// rootIdentExpr unwraps selectors, indexes, stars and parens down to
// the base identifier, or nil when the base is not an identifier.
func rootIdentExpr(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// CanReach reports whether a value of type t can transitively hold a
// value of the named type target (directly, behind a pointer, inside a
// struct field, slice, array, map, or channel). genpin's type filter is
// built on this.
//
// Interface types deliberately do NOT count as reaching: dynamically an
// `any` can hold anything, but treating it so makes every container
// with an interface field (container/list, caches, error wrappers) a
// carrier and drowns the analysis in false positives. The direct escape
// `field = rt` is still caught regardless of the field's interface
// type, because the filter applies to the stored *value's* static type;
// what is lost is re-extraction through a round-trip into `any`.
func CanReach(t types.Type, target *types.Named) bool {
	seen := map[types.Type]bool{}
	var walk func(t types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			if named.Obj() == target.Obj() {
				return true
			}
			return walk(named.Underlying())
		}
		switch u := t.(type) {
		case *types.Pointer:
			return walk(u.Elem())
		case *types.Slice:
			return walk(u.Elem())
		case *types.Array:
			return walk(u.Elem())
		case *types.Chan:
			return walk(u.Elem())
		case *types.Map:
			return walk(u.Key()) || walk(u.Elem())
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
			return false
		case *types.TypeParam:
			return true
		default:
			return false
		}
	}
	return walk(t)
}

// Qualified renders "pkgpath.Name" for matching tables.
func Qualified(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// MatchFuncs builds a Source/Sink matcher from "pkgpath.Name" and
// "pkgpath.Recv.Name" entries.
func MatchFuncs(entries ...string) func(fn *types.Func) bool {
	set := map[string]bool{}
	for _, e := range entries {
		set[e] = true
	}
	return func(fn *types.Func) bool {
		if fn.Pkg() == nil {
			return false
		}
		if set[Qualified(fn)] {
			return true
		}
		if recv := receiverName(fn); recv != "" {
			return set[fn.Pkg().Path()+"."+recv+"."+fn.Name()]
		}
		return false
	}
}

func receiverName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
