// Package callgraph exercises CHA resolution and edge-order
// determinism: one interface with two implementations (every dispatch
// fans out to both), plus calls routed through a closure.
package callgraph

type Store interface {
	Get(k string) string
	Put(k, v string)
}

type memStore struct{ m map[string]string }

func (s *memStore) Get(k string) string { return s.m[k] }
func (s *memStore) Put(k, v string)     { s.m[k] = v }

type nullStore struct{}

func (nullStore) Get(string) string  { return "" }
func (nullStore) Put(string, string) {}

// Copy dispatches through the interface: CHA resolves each call to both
// implementations.
func Copy(dst, src Store, keys []string) {
	for _, k := range keys {
		dst.Put(k, src.Get(k))
	}
}

// Fill routes the Put through a closure; the call is attributed to Fill.
func Fill(s *memStore, keys []string) {
	each(keys, func(k string) { s.Put(k, k) })
}

func each(keys []string, f func(string)) {
	for _, k := range keys {
		f(k)
	}
}
