package dataflow

import (
	"go/types"
	"strings"
)

// Reach answers "can this function, through any call chain, land in a
// callee matching match?" for every analyzed function at once. The
// result maps each reaching function to a shortest witness chain
// rendered as "f → g → pkg.Sink"; functions that cannot reach a match
// are absent. Interprocedural lockheld and errdrop are built on this:
// match selects KB-execution and IO entry points, and the chain string
// becomes the diagnostic's explanation.
//
// Chains are deterministic: ties between equal-length chains resolve to
// the first qualifying edge in the graph's fixed edge order.
func (g *Graph) Reach(match func(fn *types.Func) bool) map[*types.Func]string {
	// depth[n] is the length of the shortest chain from n to a matching
	// callee; via[n] is the first edge (in edge order) achieving it.
	depth := map[*Node]int{}
	via := map[*Node]*Edge{}

	// Seed: direct calls to a matching callee.
	for _, n := range g.List {
		for _, e := range n.Calls {
			if match(e.Callee.Func) {
				depth[n] = 1
				via[n] = e
				break
			}
		}
	}

	// Relax to fixpoint. The module graph is small; simple rounds in
	// fixed node order keep the result order-independent of map state.
	for changed := true; changed; {
		changed = false
		for _, n := range g.List {
			for _, e := range n.Calls {
				if e.Callee.Decl == nil {
					continue
				}
				d, ok := depth[e.Callee]
				if !ok {
					continue
				}
				if cur, ok := depth[n]; !ok || d+1 < cur {
					depth[n] = d + 1
					via[n] = e
					changed = true
				}
			}
		}
	}

	out := map[*types.Func]string{}
	for n, first := range via {
		var parts []string
		e := first
		for {
			parts = append(parts, ShortName(e.Caller.Func))
			next, ok := via[e.Callee]
			if !ok || match(e.Callee.Func) {
				parts = append(parts, ShortName(e.Callee.Func))
				break
			}
			e = next
		}
		out[n.Func] = strings.Join(parts, " → ")
	}
	return out
}
