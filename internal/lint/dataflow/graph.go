// Package dataflow is ontolint's interprocedural layer: a call graph
// built by class-hierarchy analysis (CHA) over type-checked packages,
// and a summary-based taint engine propagated to fixpoint over the
// graph's strongly connected components. The per-function analyzers in
// internal/lint see one body at a time; this package is how a fact about
// a helper ("returns a wall-clock value", "stores its parameter into a
// struct field", "transitively reaches file IO") becomes visible at
// every call site of that helper.
//
// Like the rest of ontolint it is standard-library only: go/ast and
// go/types supply syntax and semantics, and everything else — graph
// construction, SCC condensation, the taint lattice — is built here.
// All outputs are deterministically ordered: nodes follow declaration
// order of the packages as loaded, edges follow source order within each
// body, and CHA fan-out edges are sorted by implementing package and
// type, so two loads of the same module produce byte-identical edge
// lists (see EdgeList).
package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Pkg is one type-checked package handed to the graph builder. It
// mirrors internal/lint.Package structurally; dataflow keeps its own
// type so the dependency points from lint to dataflow only.
type Pkg struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Node is one function in the call graph: a declared function or method
// of an analyzed package (Decl non-nil), or an external callee — stdlib
// or bodyless — reached by an edge (Decl nil).
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl // nil for external callees
	Pkg  *Pkg          // nil for external callees

	// Calls are the out-edges in deterministic order: source order for
	// static calls, (package, type) order within each CHA fan-out.
	Calls []*Edge
}

// Edge is one call: caller invokes callee at Site.
type Edge struct {
	Caller *Node
	Callee *Node
	// Site is the call expression (its Pos is the diagnostic anchor).
	Site *ast.CallExpr
	// Dynamic marks a CHA-resolved interface dispatch: the edge is one
	// of possibly many conservative targets, not a proven direct call.
	Dynamic bool
}

// Graph is the whole-program call graph.
type Graph struct {
	Pkgs []*Pkg
	// List holds every node with a body, in deterministic order
	// (package load order, then declaration order).
	List []*Node
	// nodes indexes every node, internal and external, by canonical
	// *types.Func (generic origin).
	nodes map[*types.Func]*Node
	// sccs caches the condensation (scc.go).
	sccs [][]*Node
}

// Build constructs the call graph for the given packages. Interface
// method calls fan out, CHA-style, to every method of every named type
// declared in the analyzed packages whose type (or pointer type)
// implements the interface; calls through function values produce no
// edges (see EdgeList's doc for the soundness trade-off).
func Build(pkgs []*Pkg) *Graph {
	g := &Graph{Pkgs: pkgs, nodes: map[*types.Func]*Node{}}

	// Pass 1: a node per declared function, in deterministic order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Func: canonical(fn), Decl: fd, Pkg: pkg}
				g.nodes[n.Func] = n
				g.List = append(g.List, n)
			}
		}
	}

	impls := collectImplementations(pkgs)

	// Pass 2: edges, in source order per body. Calls inside function
	// literals are attributed to the enclosing declared function: the
	// closure runs with the enclosing frame's values, so for summary
	// purposes its calls belong to that frame.
	for _, n := range g.List {
		caller := n
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := Callee(caller.Pkg.Info, call)
			if fn == nil {
				return true
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				for _, impl := range impls.resolve(fn) {
					g.addEdge(caller, impl, call, true)
				}
				return true
			}
			g.addEdge(caller, canonical(fn), call, false)
			return true
		})
	}
	return g
}

func (g *Graph) addEdge(caller *Node, callee *types.Func, site *ast.CallExpr, dynamic bool) {
	to, ok := g.nodes[callee]
	if !ok {
		to = &Node{Func: callee}
		g.nodes[callee] = to
	}
	caller.Calls = append(caller.Calls, &Edge{Caller: caller, Callee: to, Site: site, Dynamic: dynamic})
}

// NodeOf returns the graph node for fn (or its generic origin), or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[canonical(fn)]
}

// canonical maps an instantiated generic function or method to its
// origin, so one node stands for every instantiation.
func canonical(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// Callee resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and calls through function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// implTable supports CHA resolution: every named type declared in the
// analyzed packages, in deterministic (package, name) order.
type implTable struct {
	named []*types.Named
	memo  map[*types.Func][]*types.Func
}

func collectImplementations(pkgs []*Pkg) *implTable {
	t := &implTable{memo: map[*types.Func][]*types.Func{}}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			t.named = append(t.named, named)
		}
	}
	return t
}

// resolve returns the concrete methods an interface method call can
// dispatch to, among the analyzed packages' named types.
func (t *implTable) resolve(ifaceMethod *types.Func) []*types.Func {
	key := canonical(ifaceMethod)
	if out, ok := t.memo[key]; ok {
		return out
	}
	iface, ok := key.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	var out []*types.Func
	if ok {
		for _, named := range t.named {
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
				continue
			}
			sel := types.NewMethodSet(ptr).Lookup(key.Pkg(), key.Name())
			if sel == nil {
				continue
			}
			if m, ok := sel.Obj().(*types.Func); ok {
				out = append(out, canonical(m))
			}
		}
	}
	t.memo[key] = out
	return out
}

// ShortName renders a function compactly for chains and messages:
// "pkg.Fn" for package functions, "(Type).Method" for methods of
// analyzed packages, "pkg.Type.Method" for external methods.
func ShortName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := types.TypeString(t, func(p *types.Package) string { return "" })
		return fmt.Sprintf("(%s).%s", name, fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// EdgeList renders every edge of every analyzed function as
// "file:line: caller -> callee [dynamic]" lines, sorted. Two loads of
// the same module must produce identical lists; the determinism test
// pins this, because every interprocedural diagnostic ultimately orders
// itself by this graph. Calls through function *values* are absent by
// construction — that is the engine's one soundness hole, shared with
// CHA tools generally, and the reason paragoroutine separately flags
// captured function values in concurrent closures.
func (g *Graph) EdgeList() []string {
	var out []string
	for _, n := range g.List {
		for _, e := range n.Calls {
			pos := n.Pkg.Fset.Position(e.Site.Pos())
			line := fmt.Sprintf("%s:%d: %s -> %s", pos.Filename, pos.Line, ShortName(n.Func), ShortName(e.Callee.Func))
			if e.Dynamic {
				line += " [dynamic]"
			}
			out = append(out, line)
		}
	}
	sort.Strings(out)
	return out
}
