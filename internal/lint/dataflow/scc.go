package dataflow

// SCCs returns the strongly connected components of the call graph in
// reverse topological order: every component is emitted after the
// components it calls into, which is exactly the order the summary
// engine wants (callee summaries are final before a caller reads them).
// Tarjan's algorithm yields this order natively, and its traversal
// follows Node.List and Edge order, so the condensation is as
// deterministic as the graph itself.
func (g *Graph) SCCs() [][]*Node {
	if g.sccs != nil {
		return g.sccs
	}
	type state struct {
		index, lowlink int
		onStack        bool
	}
	states := map[*Node]*state{}
	var stack []*Node
	next := 0

	var strongconnect func(n *Node)
	strongconnect = func(n *Node) {
		st := &state{index: next, lowlink: next}
		next++
		states[n] = st
		stack = append(stack, n)
		st.onStack = true

		for _, e := range n.Calls {
			m := e.Callee
			if m.Decl == nil {
				continue // external: no summary, no cycle through it
			}
			ms, seen := states[m]
			switch {
			case !seen:
				strongconnect(m)
				if l := states[m].lowlink; l < st.lowlink {
					st.lowlink = l
				}
			case ms.onStack:
				if ms.index < st.lowlink {
					st.lowlink = ms.index
				}
			}
		}

		if st.lowlink == st.index {
			var comp []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[m].onStack = false
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			g.sccs = append(g.sccs, comp)
		}
	}

	for _, n := range g.List {
		if _, seen := states[n]; !seen {
			strongconnect(n)
		}
	}
	return g.sccs
}
