package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// emissionPaths are the packages on the artifact-emission path: everything
// they produce (ontology, conversation space, logic table, templates) must
// be byte-reproducible run over run, because the paper's whole pipeline is
// "generate artifacts offline, upload, serve" — a nondeterministic
// bootstrap breaks artifact diffing, caching and CI golden files.
var emissionPaths = pathMatcher(
	"ontoconv",
	"ontoconv/internal/core",
	"ontoconv/internal/ontogen",
	"ontoconv/internal/medkb",
	"ontoconv/internal/ontology",
	"ontoconv/internal/dialogue",
	"ontoconv/internal/kb",
	"ontoconv/internal/nlq",
	"ontoconv/internal/sqlx",
)

// NonDetermAnalyzer flags `range` over a map whose iteration order can
// leak into generated artifacts. Two shapes are recognized as safe:
//
//   - order-insensitive bodies: only per-key map writes, commutative
//     numeric accumulation (x++, x += n), constant stores, deletes, and
//     sorts of values indexed by the range key;
//   - collect-then-sort: every slice appended to inside the loop is passed
//     to a sort.* call later in the same function.
//
// Everything else — appending without a subsequent sort, returning from
// inside the loop (first-match selection), calling functions with
// unknowable effects — is reported.
var NonDetermAnalyzer = &Analyzer{
	Name:  "nondeterm",
	Doc:   "unsorted map iteration on an artifact-emission path",
	Match: emissionPaths,
	Run:   runNonDeterm,
}

func runNonDeterm(p *Pass) {
	funcDecls(p.Files, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(p, fd, rs)
			return true
		})
	})
}

// checkMapRange classifies one map-range statement.
func checkMapRange(p *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	keyName, valueName := "", ""
	if id, ok := rs.Key.(*ast.Ident); ok {
		keyName = id.Name
	}
	if id, ok := rs.Value.(*ast.Ident); ok {
		valueName = id.Name
	}
	c := &rangeClassifier{pass: p, keyName: keyName, valueName: valueName}
	c.stmts(rs.Body.List)
	if c.verdict != "" {
		p.Reportf(rs.For, "iteration over map %s is order-dependent (%s); sort the keys first",
			types.ExprString(rs.X), c.verdict)
		return
	}
	// Collect-then-sort: every appended-to slice must be sorted after the
	// loop, inside this function.
	if len(c.appends) == 0 {
		return
	}
	sorted := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if fn := calleeFunc(p.Info, call); fn != nil && fn.Pkg() != nil &&
			(fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices") && len(call.Args) > 0 {
			sorted[types.ExprString(call.Args[0])] = true
		}
		return true
	})
	for _, target := range c.appends {
		if !sorted[target.expr] {
			p.Reportf(target.pos, "%s is appended to in map-iteration order and never sorted; output order is nondeterministic", target.expr)
		}
	}
}

// rangeClassifier walks a map-range body deciding whether its effects are
// independent of iteration order.
type rangeClassifier struct {
	pass      *Pass
	keyName   string
	valueName string
	verdict   string // non-empty: definitely order-dependent, with reason
	appends   []appendTarget
}

type appendTarget struct {
	expr string
	pos  token.Pos
}

func (c *rangeClassifier) fail(reason string) {
	if c.verdict == "" {
		c.verdict = reason
	}
}

func (c *rangeClassifier) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *rangeClassifier) stmt(s ast.Stmt) {
	if c.verdict != "" {
		return
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IncDecStmt:
		// x++ / x-- accumulate commutatively.
	case *ast.DeclStmt:
		// local declarations are per-iteration state
	case *ast.ExprStmt:
		c.exprStmt(s)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.stmts(s.Body.List)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.ForStmt:
		c.stmts(s.Body.List)
	case *ast.RangeStmt:
		// Nested ranges: over a map is its own finding (handled by the
		// outer walk); over slices, classify the body in this context.
		c.stmts(s.Body.List)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cl.Body)
			}
		}
	case *ast.BranchStmt:
		// continue / break only skip work per key
	case *ast.ReturnStmt:
		c.fail("returns from inside the loop, selecting an arbitrary element")
	default:
		c.fail("statement with order-dependent effects")
	}
}

// assign classifies one assignment inside the loop body.
func (c *rangeClassifier) assign(s *ast.AssignStmt) {
	// x = append(x, ...) is collect-then-sort material.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 && s.Tok == token.ASSIGN {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 &&
				types.ExprString(call.Args[0]) == types.ExprString(s.Lhs[0]) {
				// Appending into the range value itself (per-key posting
				// lists: idx[k] = append(idx[k], …) where idx is the
				// value variable) touches a distinct structure per key.
				if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok {
					if base, ok := ix.X.(*ast.Ident); ok && (base.Name == c.valueName || base.Name == c.keyName) {
						return
					}
				}
				c.appends = append(c.appends, appendTarget{expr: types.ExprString(s.Lhs[0]), pos: s.Pos()})
				return
			}
		}
	}
	switch s.Tok {
	case token.DEFINE:
		return // new per-iteration variables
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation — but only for numeric types; string
		// concatenation via += is order-dependent.
		for _, lhs := range s.Lhs {
			if t := c.pass.TypeOf(lhs); t != nil {
				if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsNumeric == 0 {
					c.fail("non-numeric compound assignment accumulates in iteration order")
					return
				}
			}
		}
		return
	}
	for _, lhs := range s.Lhs {
		if !c.benignStore(lhs, s) {
			return
		}
	}
}

// benignStore reports whether a plain `=` store is order-independent:
// writes keyed by the range key (map[k] = v), blank discards of
// call-free values, or constant stores (idempotent across iterations).
func (c *rangeClassifier) benignStore(lhs ast.Expr, s *ast.AssignStmt) bool {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		// `_ = f(...)` exists only for f's side effects; those effects
		// happen in iteration order.
		for _, r := range s.Rhs {
			var called ast.Expr
			ast.Inspect(r, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && called == nil {
					called = call.Fun
				}
				return true
			})
			if called != nil {
				c.fail("discards the result of " + types.ExprString(called) + ", called for its side effects in iteration order")
				return false
			}
		}
		return true
	}
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if t := c.pass.TypeOf(ix.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return true // keyed map write: one slot per iteration
			}
		}
	}
	// Constant stores like found = true are idempotent.
	allConst := true
	for _, r := range s.Rhs {
		if tv, ok := c.pass.Info.Types[r]; !ok || tv.Value == nil {
			allConst = false
		}
	}
	if allConst {
		return true
	}
	c.fail("assignment to " + types.ExprString(lhs) + " depends on iteration order")
	return false
}

// exprStmt classifies a bare call inside the loop body.
func (c *rangeClassifier) exprStmt(s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		c.fail("expression with order-dependent effects")
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "delete", "println", "print", "panic":
			return
		}
	}
	// sort.X(m[k]) — sorting a value keyed by the range key is
	// per-iteration work.
	if fn := calleeFunc(c.pass.Info, call); fn != nil && fn.Pkg() != nil &&
		(fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices") && len(call.Args) > 0 {
		if ix, ok := call.Args[0].(*ast.IndexExpr); ok {
			if id, ok := ix.Index.(*ast.Ident); ok && id.Name == c.keyName {
				return
			}
		}
	}
	c.fail("calls " + types.ExprString(call.Fun) + ", whose effects may depend on iteration order")
}
