// Package lint is ontoconv's from-scratch static-analysis suite. It has
// two layers mirroring where correctness lives in an ontology-bootstrapped
// conversation system (paper §4): Layer 1 analyzes the Go source that
// *emits* the conversation-space artifacts (determinism of generation,
// templated SQL discipline, lock hygiene on the serving path, dropped
// errors), and Layer 2 statically validates a *bootstrapped workspace*
// itself — intents, entities, dialogue logic table, dialogue tree and SQL
// templates — before it is served (see space.go).
//
// Layer 1 is built on the standard library only: go/parser for syntax and
// go/types for semantic facts. There is no dependency on
// golang.org/x/tools; the loader in load.go type-checks the module with a
// topological import walk and a stdlib importer chain.
//
// A diagnostic can be suppressed by placing a comment of the form
//
//	//ontolint:ignore <analyzer> <reason>
//
// on the flagged line or on the line immediately above it. The reason is
// mandatory by convention: suppressions document why the pattern is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	if d.Pos.Filename == "" {
		return fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one source-level check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-line description.
	Doc string
	// Match reports whether the analyzer applies to a package import
	// path. A nil Match applies everywhere.
	Match func(path string) bool
	// Run inspects one type-checked package and reports findings.
	Run func(p *Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Mod exposes whole-module interprocedural facts (call graph, taint
	// findings, transitive-IO chains) shared across packages.
	Mod *Module

	analyzer *Analyzer
	suppress map[string]map[int]bool // filename -> suppressed lines
	out      *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an ontolint:ignore comment
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	lines := p.suppress[position.Filename]
	if lines[position.Line] || lines[position.Line-1] {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Pos:      position,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Analyzers returns the full Layer-1 suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NonDetermAnalyzer,
		SQLBuildAnalyzer,
		LockHeldAnalyzer,
		ErrDropAnalyzer,
		ParaGoroutineAnalyzer,
		DetTaintAnalyzer,
		GenPinAnalyzer,
	}
}

// AnalyzerNames returns the names of every registered analyzer, sorted.
func AnalyzerNames() []string {
	var out []string
	for _, a := range Analyzers() {
		out = append(out, a.Name)
	}
	sort.Strings(out)
	return out
}

// RunAnalyzers applies the given analyzers (nil means all) to the loaded
// packages and returns the findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	if analyzers == nil {
		analyzers = Analyzers()
	}
	mod := NewModule(pkgs)
	var out []Diagnostic
	for _, pkg := range pkgs {
		supp := suppressions(pkg)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Mod:      mod,
				analyzer: a,
				suppress: supp[a.Name],
				out:      &out,
			}
			a.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// suppressions scans a package's comments for ontolint:ignore directives
// and returns analyzer -> filename -> line lookup tables.
func suppressions(pkg *Package) map[string]map[string]map[int]bool {
	out := map[string]map[string]map[int]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "ontolint:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "ontolint:ignore"))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				name := fields[0]
				pos := pkg.Fset.Position(c.Pos())
				byFile, ok := out[name]
				if !ok {
					byFile = map[string]map[int]bool{}
					out[name] = byFile
				}
				lines, ok := byFile[pos.Filename]
				if !ok {
					lines = map[int]bool{}
					byFile[pos.Filename] = lines
				}
				lines[pos.Line] = true
				// A directive inside a multi-line call expression covers
				// the whole expression: diagnostics anchor at the call's
				// opening line, which for a wrapped argument list is not
				// the comment's line.
				markEnclosingCall(pkg, f, c.Pos(), lines)
			}
		}
	}
	return out
}

// markEnclosingCall marks every line spanned by the innermost call
// expression containing pos, so a suppression written next to one
// argument of a wrapped call suppresses the call itself.
func markEnclosingCall(pkg *Package, f *ast.File, pos token.Pos, lines map[int]bool) {
	var innermost *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || n.End() < pos {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			innermost = call // descent order: the last hit is innermost
		}
		return true
	})
	if innermost == nil {
		return
	}
	start := pkg.Fset.Position(innermost.Pos()).Line
	end := pkg.Fset.Position(innermost.End()).Line
	for l := start; l <= end; l++ {
		lines[l] = true
	}
}
