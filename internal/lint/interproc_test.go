package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ontoconv/internal/lint"
)

func snippetFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return strings.Split(string(data), "\n"), nil
}

func TestGoldenDetTaint(t *testing.T) { runGolden(t, "dettaint", "ontoconv/internal/core") }

func TestGoldenGenPin(t *testing.T) { runGolden(t, "genpin", "ontoconv/internal/agent") }

func TestGoldenLockHeldInterproc(t *testing.T) {
	runGoldenDir(t, "lockheld", "lockheldx", "ontoconv/internal/agent")
}

func TestGoldenErrDropInterproc(t *testing.T) {
	runGoldenDir(t, "errdrop", "errdropx", "ontoconv/internal/core")
}

// TestDettaintCatchesCrossFunctionTaint is the acceptance case for the
// interprocedural engine: a wall-clock read in a helper, an artifact
// write in its caller. nondeterm's per-function view provably misses
// it; dettaint must connect the two and name the chain.
func TestDettaintCatchesCrossFunctionTaint(t *testing.T) {
	pkg, err := lint.CheckDir(filepath.Join("testdata", "src", "crossfunc"), "ontoconv/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	pkgs := []*lint.Package{pkg}

	if diags := lint.RunAnalyzers(pkgs, []*lint.Analyzer{analyzerByName(t, "nondeterm")}); len(diags) != 0 {
		t.Errorf("nondeterm unexpectedly sees the helper-routed taint: %v", diags)
	}

	diags := lint.RunAnalyzers(pkgs, []*lint.Analyzer{analyzerByName(t, "dettaint")})
	if len(diags) != 1 {
		t.Fatalf("dettaint: want exactly 1 finding, got %d: %v", len(diags), diags)
	}
	wantLine := 0
	data, err := snippetFile(filepath.Join("testdata", "src", "crossfunc", "crossfunc.go"))
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range data {
		if strings.Contains(line, "os.WriteFile") {
			wantLine = i + 1
		}
	}
	d := diags[0]
	if base := filepath.Base(d.Pos.Filename); base != "crossfunc.go" || d.Pos.Line != wantLine {
		t.Errorf("finding at %s:%d, want crossfunc.go:%d (the os.WriteFile call)", base, d.Pos.Line, wantLine)
	}
	for _, needle := range []string{"stamp", "time.Now", "os.WriteFile"} {
		if !strings.Contains(d.Message, needle) {
			t.Errorf("message %q does not name %q; the witness chain must be explicit", d.Message, needle)
		}
	}
}

// TestLockHeldTransitiveChain pins the retrofit's message: the witness
// chain from the held region to the IO leaf must be spelled out.
func TestLockHeldTransitiveChain(t *testing.T) {
	pkg, err := lint.CheckDir(filepath.Join("testdata", "src", "lockheldx"), "ontoconv/internal/agent")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{analyzerByName(t, "lockheld")})
	if len(diags) != 1 {
		t.Fatalf("want 1 finding, got %d: %v", len(diags), diags)
	}
	msg := diags[0].Message
	for _, needle := range []string{"transitively", "loadSnapshot", "os.ReadFile", "s.mu"} {
		if !strings.Contains(msg, needle) {
			t.Errorf("message %q does not mention %q", msg, needle)
		}
	}
}

// TestErrDropTransitiveChain pins the errdrop annotation: a dropped
// error from an IO-reaching helper names what failure is swallowed.
func TestErrDropTransitiveChain(t *testing.T) {
	pkg, err := lint.CheckDir(filepath.Join("testdata", "src", "errdropx"), "ontoconv/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{analyzerByName(t, "errdrop")})
	if len(diags) != 1 {
		t.Fatalf("want 1 finding, got %d: %v", len(diags), diags)
	}
	msg := diags[0].Message
	for _, needle := range []string{"transitively performs KB/IO work", "persist", "os.WriteFile"} {
		if !strings.Contains(msg, needle) {
			t.Errorf("message %q does not mention %q", msg, needle)
		}
	}
}

// TestSuppressionMultiLineCall is the regression test for directive
// placement inside a wrapped call: the diagnostic anchors at the call's
// opening line, the comment sits lines below, and the suppression must
// still apply.
func TestSuppressionMultiLineCall(t *testing.T) {
	pkg, err := lint.CheckDir(filepath.Join("testdata", "src", "errdrop"), "ontoconv/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{analyzerByName(t, "errdrop")})
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "multiline.go" {
			t.Errorf("directive inside the wrapped call did not suppress: %s", d)
		}
	}
}
