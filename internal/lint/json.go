package lint

import (
	"encoding/json"
	"io"
)

// jsonFinding is the stable machine-readable form of one diagnostic.
// Field names and order are pinned by TestWriteJSONGolden: CI tooling
// parses this, so changes here are breaking.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

// WriteJSON renders diagnostics as an indented JSON report followed by a
// newline. A clean run produces an empty findings array, never null, so
// consumers can index unconditionally.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	report := jsonReport{Count: len(diags), Findings: make([]jsonFinding, 0, len(diags))}
	for _, d := range diags {
		report.Findings = append(report.Findings, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}
