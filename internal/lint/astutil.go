package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathMatcher returns a Match function accepting exactly the given import
// paths. A trailing "/..." in an entry matches the whole subtree.
func pathMatcher(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, want := range paths {
			if sub, ok := strings.CutSuffix(want, "/..."); ok {
				if p == sub || strings.HasPrefix(p, sub+"/") {
					return true
				}
			} else if p == want {
				return true
			}
		}
		return false
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (function, method, or qualified selector), or nil for builtins,
// conversions and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// funcDecls yields every function declaration with a body in the pass's
// files.
func funcDecls(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// receiverTypeName returns the name of a method's receiver type (without
// pointer), or "" for plain functions.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// callDropsError reports whether the call returns an error (alone or as
// the last element of a tuple).
func callDropsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return t != nil && isErrorType(t)
	}
}
