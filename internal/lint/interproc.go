package lint

import (
	"go/types"

	"ontoconv/internal/lint/dataflow"
)

// Module holds the whole-module interprocedural facts — call graph,
// taint findings, transitive-IO reachability — computed once per
// RunAnalyzers invocation and shared by every analyzer through
// Pass.Mod. Analyzers stay per-package: dettaint and genpin just emit
// the precomputed findings that land in their package, which keeps
// Match scoping and ontolint:ignore suppression working unchanged.
type Module struct {
	graph    *dataflow.Graph
	detTaint map[string][]dataflow.Finding // package path -> findings
	genPin   map[string][]dataflow.Finding
	ioReach  map[*types.Func]string // func -> witness chain to KB/IO work
}

// NewModule builds the call graph over the loaded packages and runs the
// interprocedural analyses to fixpoint.
func NewModule(pkgs []*Package) *Module {
	dpkgs := make([]*dataflow.Pkg, len(pkgs))
	for i, p := range pkgs {
		dpkgs[i] = &dataflow.Pkg{Path: p.Path, Fset: p.Fset, Files: p.Files, Types: p.Types, Info: p.Info}
	}
	g := dataflow.Build(dpkgs)
	m := &Module{
		graph:    g,
		detTaint: map[string][]dataflow.Finding{},
		genPin:   map[string][]dataflow.Finding{},
	}
	for _, f := range dataflow.Analyze(g, detTaintSpec()) {
		m.detTaint[f.PkgPath] = append(m.detTaint[f.PkgPath], f)
	}
	if spec := genPinSpec(pkgs); spec != nil {
		for _, f := range dataflow.Analyze(g, spec) {
			m.genPin[f.PkgPath] = append(m.genPin[f.PkgPath], f)
		}
	}
	m.ioReach = g.Reach(transitivelyBlocking)
	return m
}

// DetTaint returns the dettaint findings for one package path.
func (m *Module) DetTaint(path string) []dataflow.Finding {
	if m == nil {
		return nil
	}
	return m.detTaint[path]
}

// GenPin returns the genpin findings for one package path.
func (m *Module) GenPin(path string) []dataflow.Finding {
	if m == nil {
		return nil
	}
	return m.genPin[path]
}

// IOChain returns the witness chain by which fn transitively reaches KB
// execution or IO ("fn → helper → kb.Scan"), or "" when it provably
// does not (within CHA's soundness limits).
func (m *Module) IOChain(fn *types.Func) string {
	if m == nil || fn == nil {
		return ""
	}
	n := m.graph.NodeOf(fn)
	if n == nil {
		return ""
	}
	return m.ioReach[n.Func]
}

// ---- dettaint configuration ----

// detTaintSpec defines nondeterminism sources and artifact-emission
// sinks. The source set mirrors nondeterm's intra-function rules; the
// sinks are the writers every offline artifact funnels through.
func detTaintSpec() *dataflow.Spec {
	wallClock := dataflow.MatchFuncs("time.Now", "time.Since", "time.Until")
	env := dataflow.MatchFuncs("os.Getenv", "os.LookupEnv", "os.Environ")
	sched := dataflow.MatchFuncs("runtime.GOMAXPROCS", "runtime.NumCPU", "runtime.NumGoroutine")
	return &dataflow.Spec{
		Noun: "nondeterminism",
		Sources: []dataflow.Source{
			{Kind: "the wall clock", Call: func(fn *types.Func, _ types.Type) bool { return wallClock(fn) }},
			{Kind: "math/rand global state", Call: func(fn *types.Func, _ types.Type) bool { return globalRand(fn) }},
			{Kind: "the process environment", Call: func(fn *types.Func, _ types.Type) bool { return env(fn) }},
			{Kind: "scheduler state", Call: func(fn *types.Func, _ types.Type) bool { return sched(fn) }},
			{Kind: "map iteration order", MapAppend: true},
		},
		Sinks: []dataflow.Sink{
			artifactSink("artifact sink (Bundle).Write", "ontoconv/internal/bundle.Bundle.Write"),
			artifactSink("artifact sink (Bundle).WriteFile", "ontoconv/internal/bundle.Bundle.WriteFile"),
			artifactSink("artifact sink bundle.Compile", "ontoconv/internal/bundle.Compile"),
			artifactSink("artifact sink (Space).WriteJSON", "ontoconv/internal/core.Space.WriteJSON"),
			artifactSink("artifact sink os.WriteFile", "os.WriteFile"),
			artifactSink("artifact sink os.Create", "os.Create"),
		},
	}
}

// globalRand matches math/rand's package-level functions, whose shared
// unseeded source is nondeterministic. Methods on an explicitly seeded
// *rand.Rand (the medkb synthesizer's idiom) are excluded: their
// receiver carries the seed.
func globalRand(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "Seed":
		return false
	}
	return true
}

func artifactSink(name string, entries ...string) dataflow.Sink {
	match := dataflow.MatchFuncs(entries...)
	return dataflow.Sink{
		Name: name,
		Call: func(fn *types.Func) ([]int, bool) { return nil, match(fn) },
	}
}

// ---- genpin configuration ----

// genPinSpec defines the generation-pinning analysis: a *runtime
// obtained from the agent's atomic.Pointer must stay within the turn
// that loaded it. Taint is restricted to types that can transitively
// hold a *runtime, so plain strings and ints derived from a generation
// do not count as escapes. Returns nil when no analyzed package
// declares the agent runtime type (nothing to track).
func genPinSpec(pkgs []*Package) *dataflow.Spec {
	var runtimeNamed *types.Named
	for _, p := range pkgs {
		if p.Path != "ontoconv/internal/agent" {
			continue
		}
		if tn, ok := p.Types.Scope().Lookup("runtime").(*types.TypeName); ok {
			runtimeNamed, _ = tn.Type().(*types.Named)
		}
	}
	if runtimeNamed == nil {
		return nil
	}
	return &dataflow.Spec{
		Noun: "a pinned *runtime generation",
		Sources: []dataflow.Source{
			{
				Kind: "Agent.rt.Load",
				Call: func(fn *types.Func, result types.Type) bool {
					return fn.Name() == "Load" && isAgentRuntimePtr(result)
				},
			},
		},
		Filter: func(t types.Type) bool {
			return dataflow.CanReach(t, runtimeNamed)
		},
		EscapeSink:    "memory that outlives the turn",
		GoCaptureSink: "a spawned goroutine that may outlive the turn",
	}
}

func isAgentRuntimePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "runtime" && obj.Pkg() != nil && obj.Pkg().Path() == "ontoconv/internal/agent"
}

// ---- transitive lock/IO configuration ----

// transitivelyBlocking matches the call-graph leaves that count as KB
// execution or IO for the interprocedural lockheld/errdrop retrofits.
// The os list is file IO only — unlike lockBlockingPkgs' blanket "os",
// reachability would otherwise paint half the module via os.Getenv.
func transitivelyBlocking(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "ontoconv/internal/kb", "ontoconv/internal/sqlx", "net", "database/sql":
		return true
	case "net/http":
		// Accessors like (*Request).Context are not IO; only the calls
		// that actually hit the network or block on a listener count.
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head", "RoundTrip",
			"ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS", "Shutdown":
			return true
		}
	case "os":
		switch fn.Name() {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile", "ReadDir",
			"Stat", "Remove", "RemoveAll", "Mkdir", "MkdirAll", "Rename":
			return true
		}
	}
	return false
}
