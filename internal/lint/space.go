package lint

import (
	"fmt"
	"sort"
	"strings"

	"ontoconv/internal/core"
	"ontoconv/internal/dialogue"
	"ontoconv/internal/nlu"
)

// Layer 2: the conversation-space linter. The paper's SMEs sanity-check
// the bootstrapped artifacts by hand (§4.2.2, §5.2 — reviewing the
// Dialogue Logic Table, pruning patterns, fixing intent confusion);
// LintSpace runs the same checks statically so a broken generated
// workspace fails CI instead of a user turn. Rule names (used in
// diagnostics and suppression-free: space findings are always real):
//
//	dangling-intent    logic-table rows / tree roots referencing intents
//	                   that do not exist, and intents missing a row
//	dangling-entity    entity specs or response placeholders referencing
//	                   undeclared entities or unbound parameters
//	unreachable-node   dialogue-tree nodes shadowed by an earlier sibling
//	template-slot      SQL templates with unbound, shadowed or unknown
//	                   parameter slots
//	dup-example        training examples duplicated across intents
//	                   (classifier confusion, §4.6)
//	synonym-collision  one surface form naming two values of an entity
//	empty-intent       intents with no training examples
//
// LintSpace validates a space against the dialogue artifacts derived from
// it; LintSpaceArtifacts accepts an explicit logic table and tree so
// SME-edited tables can be checked against the space they claim to serve.

// LintSpace builds the dialogue logic table and tree exactly as the agent
// does at startup and validates the full workspace.
func LintSpace(space *core.Space) []Diagnostic {
	table := dialogue.BuildLogicTable(space)
	tree := dialogue.BuildTree(space, table)
	return LintSpaceArtifacts(space, table, tree)
}

// LintSpaceArtifacts validates a conversation space together with its
// dialogue logic table and compiled dialogue tree.
func LintSpaceArtifacts(space *core.Space, table *dialogue.LogicTable, tree *dialogue.Tree) []Diagnostic {
	var out []Diagnostic
	report := func(rule, format string, args ...interface{}) {
		out = append(out, Diagnostic{Analyzer: rule, Message: fmt.Sprintf(format, args...)})
	}
	lintIntentRefs(space, table, tree, report)
	lintTreeReachability(tree, report)
	lintTemplateSlots(space, report)
	lintExamples(space, report)
	lintSynonyms(space, report)
	return out
}

type spaceReport func(rule, format string, args ...interface{})

// lintIntentRefs cross-checks intent references between the space, the
// logic table and the tree, plus entity references from intent specs and
// response placeholders.
func lintIntentRefs(space *core.Space, table *dialogue.LogicTable, tree *dialogue.Tree, report spaceReport) {
	intents := map[string]bool{}
	for _, in := range space.Intents {
		intents[in.Name] = true
	}
	entities := map[string]bool{}
	for _, e := range space.Entities {
		entities[e.Name] = true
	}

	rowFor := map[string]bool{}
	for _, row := range table.Rows {
		if !intents[row.Intent] {
			report("dangling-intent", "logic table row references unknown intent %q", row.Intent)
		}
		rowFor[row.Intent] = true
	}
	for _, in := range space.Intents {
		if !rowFor[in.Name] {
			report("dangling-intent", "intent %q has no logic table row; the dialogue cannot reach it", in.Name)
		}
	}
	for _, root := range tree.Roots {
		if root.Intent != "" && !intents[root.Intent] {
			report("dangling-intent", "dialogue-tree node %s references unknown intent %q", root.ID, root.Intent)
		}
	}

	for _, in := range space.Intents {
		params := map[string]bool{}
		for _, spec := range append(append([]core.EntitySpec(nil), in.Required...), in.Optional...) {
			if !entities[spec.Entity] {
				report("dangling-entity", "intent %q: entity spec %q has no entity definition", in.Name, spec.Entity)
			}
			params[spec.Param] = true
		}
		for _, ph := range placeholders(in.Response) {
			if !params[ph] {
				report("dangling-entity", "intent %q: response placeholder {{%s}} is bound by no entity spec and will render empty", in.Name, ph)
			}
		}
	}
}

// placeholders extracts {{Name}} markers from a response template.
func placeholders(s string) []string {
	var out []string
	for {
		i := strings.Index(s, "{{")
		if i < 0 {
			return out
		}
		j := strings.Index(s[i:], "}}")
		if j < 0 {
			return out
		}
		out = append(out, s[i+2:i+j])
		s = s[i+j+2:]
	}
}

// lintTreeReachability flags dialogue-tree nodes that can never match: a
// sibling shadowed by an earlier, strictly-more-general sibling, and
// duplicate roots for one intent (Match stops at the first).
func lintTreeReachability(tree *dialogue.Tree, report spaceReport) {
	seenRoot := map[string]string{}
	for _, root := range tree.Roots {
		if first, dup := seenRoot[root.Intent]; dup {
			report("unreachable-node", "tree node %s is unreachable: %s already handles intent %q", root.ID, first, root.Intent)
			continue
		}
		seenRoot[root.Intent] = root.ID
		for i, child := range root.Children {
			for _, earlier := range root.Children[:i] {
				if shadows(earlier, child) {
					report("unreachable-node", "tree node %s is unreachable: sibling %s matches every context it matches", child.ID, earlier.ID)
					break
				}
			}
		}
	}
}

// shadows reports whether node a matches every context node b matches. A
// condition of a must be implied by b's conditions: an empty condition on
// a is always implied; otherwise it must be b's identical condition.
func shadows(a, b *dialogue.Node) bool {
	if a.RequireEntity != "" && a.RequireEntity != b.RequireEntity {
		return false
	}
	if a.AbsentEntity != "" && a.AbsentEntity != b.AbsentEntity {
		return false
	}
	return true
}

// lintTemplateSlots checks every intent's SQL template parameters against
// its entity specs: each parameter bound exactly once, no spec binding a
// parameter the template does not declare.
func lintTemplateSlots(space *core.Space, report spaceReport) {
	for _, in := range space.Intents {
		if in.Template == nil {
			continue
		}
		declared := map[string]bool{}
		for _, p := range in.Template.Params {
			declared[p] = true
		}
		bound := map[string]int{}
		specs := append(append([]core.EntitySpec(nil), in.Required...), in.Optional...)
		for _, spec := range specs {
			bound[spec.Param]++
			if !declared[spec.Param] {
				report("template-slot", "intent %q: entity %q binds parameter %q, which the SQL template does not declare", in.Name, spec.Entity, spec.Param)
			}
		}
		var params []string
		for p := range declared {
			params = append(params, p)
		}
		sort.Strings(params)
		for _, p := range params {
			switch n := bound[p]; {
			case n == 0:
				report("template-slot", "intent %q: template parameter <@%s> is bound by no entity spec; instantiation will always fail", in.Name, p)
			case n > 1:
				report("template-slot", "intent %q: template parameter <@%s> is bound by %d entity specs; later bindings shadow earlier ones", in.Name, p, n)
			}
		}
	}
}

// lintExamples flags training examples that appear under more than one
// intent (after surface normalization): the classifier sees contradictory
// labels, the exact intent-confusion problem §4.6 measures.
func lintExamples(space *core.Space, report spaceReport) {
	first := map[string]string{}
	reported := map[string]bool{}
	for _, in := range space.Intents {
		if len(in.Examples) == 0 {
			report("empty-intent", "intent %q has no training examples; the classifier can never predict it", in.Name)
		}
		for _, ex := range in.Examples {
			key := nlu.NormalizePhrase(ex)
			if key == "" {
				continue
			}
			owner, ok := first[key]
			if !ok {
				first[key] = in.Name
				continue
			}
			if owner != in.Name && !reported[key] {
				reported[key] = true
				report("dup-example", "training example %q appears under intents %q and %q; labels contradict", ex, owner, in.Name)
			}
		}
	}
}

// lintSynonyms flags surface forms that name two different values of the
// same entity: recognition becomes an arbitrary pick between them.
func lintSynonyms(space *core.Space, report spaceReport) {
	for _, def := range space.Entities {
		surface := map[string]string{} // normalized surface -> value
		for _, v := range def.Values {
			forms := append([]string{v.Value}, v.Synonyms...)
			for _, f := range forms {
				key := nlu.NormalizePhrase(f)
				if key == "" {
					continue
				}
				if prev, ok := surface[key]; ok && prev != v.Value {
					report("synonym-collision", "entity %q: surface form %q names both value %q and value %q", def.Name, f, prev, v.Value)
					continue
				}
				surface[key] = v.Value
			}
		}
	}
}
