package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeldAnalyzer flags KB-execution and IO calls made while a sync
// mutex is held, in the serving packages. This is the exact bug class
// fixed by hand in the observability PR: holding the server-wide session
// lock across Agent.Respond (which executes structured queries against
// the KB) serializes every user onto one mutex. A deliberate hold — such
// as the per-session lock that serializes turns within one conversation —
// is documented with an ontolint:ignore comment.
//
// The check is interprocedural: a helper that merely *transitively*
// reaches KB execution or file IO is also flagged, with the witness
// chain from the module call graph in the message.
var LockHeldAnalyzer = &Analyzer{
	Name:  "lockheld",
	Doc:   "mutex held across KB-execute or IO calls on the serving path",
	Match: pathMatcher("ontoconv/internal/agent", "ontoconv/cmd/..."),
	Run:   runLockHeld,
}

// lockBlockingPkgs are packages whose calls do KB execution, network or
// file IO: work that must not run under a contended mutex.
var lockBlockingPkgs = map[string]bool{
	"ontoconv/internal/kb":   true,
	"ontoconv/internal/sqlx": true,
	"net/http":               true,
	"net":                    true,
	"os":                     true,
	"database/sql":           true,
}

// lockBlockingMethods are in-module entry points known to reach KB
// execution regardless of their defining package.
var lockBlockingMethods = map[string]bool{
	"Respond": true,
}

// lockRegion is a span of one function during which a given mutex
// expression is held.
type lockRegion struct {
	expr       string // receiver expression, e.g. "s.mu"
	start, end token.Pos
}

func runLockHeld(p *Pass) {
	funcDecls(p.Files, func(fd *ast.FuncDecl) {
		regions := lockRegions(p, fd)
		if len(regions) == 0 {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil {
				return true
			}
			direct := blockingCallee(fn)
			chain := ""
			if !direct {
				chain = p.Mod.IOChain(fn)
				if chain == "" {
					return true
				}
			}
			for _, reg := range regions {
				if call.Pos() > reg.start && call.Pos() < reg.end {
					if direct {
						p.Reportf(call.Pos(), "%s called while %s is held; KB/IO work under a mutex blocks every other holder",
							fn.Name(), reg.expr)
					} else {
						p.Reportf(call.Pos(), "%s transitively reaches KB/IO work (%s) while %s is held; move the call outside the critical section",
							fn.Name(), chain, reg.expr)
					}
					return true
				}
			}
			return true
		})
	})
}

func blockingCallee(fn *types.Func) bool {
	if fn.Pkg() != nil && lockBlockingPkgs[fn.Pkg().Path()] {
		return true
	}
	return lockBlockingMethods[fn.Name()]
}

// lockRegions finds the held spans of every sync.Mutex / sync.RWMutex in
// one function: from each Lock/RLock call to the first matching
// Unlock/RUnlock on the same receiver expression, or to the function end
// when the unlock is deferred (or missing).
func lockRegions(p *Pass, fd *ast.FuncDecl) []lockRegion {
	type event struct {
		expr   string
		pos    token.Pos
		unlock bool
	}
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch n := n.(type) {
		case *ast.DeferStmt:
			call, deferred = n.Call, true
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		}
		if call == nil {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		switch fn.Name() {
		case "Lock", "RLock":
			events = append(events, event{expr: types.ExprString(sel.X), pos: call.Pos()})
		case "Unlock", "RUnlock":
			if !deferred {
				events = append(events, event{expr: types.ExprString(sel.X), pos: call.Pos(), unlock: true})
			}
			// A deferred unlock releases at return: the region runs to
			// the function end, which is the default below.
		}
		return true
	})

	var regions []lockRegion
	for i, ev := range events {
		if ev.unlock {
			continue
		}
		end := fd.Body.End()
		for _, later := range events[i+1:] {
			if later.unlock && later.expr == ev.expr {
				end = later.pos
				break
			}
		}
		regions = append(regions, lockRegion{expr: ev.expr, start: ev.pos, end: end})
	}
	return regions
}
