package lint

// DetTaintAnalyzer is the interprocedural extension of nondeterm: a
// nondeterministic value — wall clock, unseeded math/rand, process
// environment, scheduler state, map-iteration order — must not flow,
// through any chain of helper calls, into an artifact-emission sink
// (bundle compile/write, space serialization, file creation). nondeterm
// sees one body at a time and misses exactly the helper-routed case;
// dettaint's findings come from the module-wide summary engine in
// internal/lint/dataflow and each message carries the witness chain.
var DetTaintAnalyzer = &Analyzer{
	Name: "dettaint",
	Doc:  "nondeterministic value flows through call chains into an artifact-emission sink",
	Match: pathMatcher(
		"ontoconv",
		"ontoconv/internal/core",
		"ontoconv/internal/ontogen",
		"ontoconv/internal/medkb",
		"ontoconv/internal/ontology",
		"ontoconv/internal/dialogue",
		"ontoconv/internal/kb",
		"ontoconv/internal/nlq",
		"ontoconv/internal/sqlx",
		"ontoconv/internal/bundle",
		"ontoconv/cmd/...",
	),
	Run: func(p *Pass) {
		for _, f := range p.Mod.DetTaint(p.Path) {
			p.Reportf(f.Pos, "%s", f.Message)
		}
	},
}
