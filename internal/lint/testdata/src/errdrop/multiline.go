package errdrop

import "os"

// multilineSuppressed drops the write error deliberately. The directive
// sits on an inner line of the wrapped call: it must suppress the whole
// expression, whose diagnostic anchors at the opening line (regression
// fixture for the multi-line suppression fix).
func multilineSuppressed(path string) {
	os.WriteFile(
		path,
		//ontolint:ignore errdrop fixture: reviewed drop; a directive inside a wrapped call covers the whole expression
		[]byte("x"),
		0o644,
	)
}
