// Package errdrop is a golden-test fixture: silently dropped errors
// (flagged) next to the allowed conventions (not flagged).
package errdrop

import (
	"fmt"
	"os"
	"strings"
)

// flush drops errors at statement level in three positions.
func flush(f *os.File) {
	f.Sync()         //want:errdrop
	defer f.Close()  //want:errdrop
	go persist("/x") //want:errdrop
}

func persist(path string) error {
	return os.WriteFile(path, nil, 0o644)
}

// reviewed discards explicitly: a visible, reviewed decision.
func reviewed(f *os.File) {
	_ = f.Sync()
}

// allowed exercises the nil-by-contract and terminal-output allowlist.
func allowed() string {
	fmt.Println("bootstrap done")
	var b strings.Builder
	b.WriteString("ok")
	fmt.Fprintf(os.Stderr, "%d findings\n", 0)
	return b.String()
}

// handled checks the error: the normal path.
func handled(path string) error {
	if err := persist(path); err != nil {
		return err
	}
	return nil
}
