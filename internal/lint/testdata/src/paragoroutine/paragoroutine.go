// Package paragoroutine is a golden-test fixture: concurrent closures
// writing shared state (flagged) next to the slot-indexed ordered-merge
// pattern, mutex-guarded sections, and channel handoffs (benign).
package paragoroutine

import "sync"

// pool stands in for the module's par worker pool: the analyzer matches
// the par.Do call shape syntactically when type information cannot reach
// the real package.
type pool struct{}

func (pool) Do(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

var par pool

// sharedMapWrite: map writes from workers race even on distinct keys.
func sharedMapWrite(keys []string) map[string]int {
	out := make(map[string]int)
	par.Do(len(keys), func(i int) {
		out[keys[i]] = i //want:paragoroutine
	})
	return out
}

// sharedAppend: append reallocates the backing array; concurrent appends
// lose elements and order nondeterministically.
func sharedAppend(n int) []int {
	var out []int
	par.Do(n, func(i int) {
		out = append(out, i) //want:paragoroutine
	})
	return out
}

// sharedScalar: compound stores to a captured scalar race.
func sharedScalar(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			total += i //want:paragoroutine
		}(i)
	}
	wg.Wait()
	return total
}

// capturedIndex: the slot index lives outside the closure, so exclusive
// slot ownership cannot be proven.
func capturedIndex(vals []int) {
	j := 0
	par.Do(len(vals), func(i int) {
		vals[j] = i //want:paragoroutine
	})
	_ = j
}

// capturedFn: a captured function value hides its writes from the
// analysis.
func capturedFn(fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn(0) //want:paragoroutine
	}()
	wg.Wait()
}

// slotWrites: each task owns slot i exclusively and the caller merges in
// index order afterwards — the module's ordered-merge idiom.
func slotWrites(texts []string) []int {
	out := make([]int, len(texts))
	par.Do(len(texts), func(i int) {
		out[i] = len(texts[i])
	})
	return out
}

// slotPointer: a task-owned pointer into the slot array is the same
// ownership story spelled with a struct.
func slotPointer(n int) []struct{ v, w int } {
	slots := make([]struct{ v, w int }, n)
	par.Do(n, func(i int) {
		s := &slots[i]
		s.v = i
		s.w = i * i
	})
	return slots
}

// lockedWrites: mutex-guarded shared state is synchronized; lock
// discipline itself is the lockheld analyzer's job.
func lockedWrites(n int) map[int]bool {
	var mu sync.Mutex
	seen := make(map[int]bool)
	par.Do(n, func(i int) {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
	})
	return seen
}

// channelHandoff: results flow through a channel — synchronization by
// construction, no shared writes.
func channelHandoff(n int) []int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) { ch <- i * i }(i)
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, <-ch)
	}
	return out
}
