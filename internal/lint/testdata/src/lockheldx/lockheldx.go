// Package lockheldx is a golden-test fixture for the interprocedural
// lockheld retrofit: the blocking work hides behind a helper, so only
// the call-graph reachability check can connect the held mutex to the
// file IO.
package lockheldx

import (
	"os"
	"sync"
)

type store struct {
	mu    sync.Mutex
	cache map[string][]byte
}

// loadSnapshot does the file IO; it takes no lock itself.
func loadSnapshot(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// refreshLocked holds the mutex across a helper that transitively reads
// a file.
func (s *store) refreshLocked(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := loadSnapshot(path) //want:lockheld
	if err != nil {
		return err
	}
	s.cache[path] = data
	return nil
}

// refreshUnlocked reads first and locks only around the store: benign.
func (s *store) refreshUnlocked(path string) error {
	data, err := loadSnapshot(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.cache[path] = data
	s.mu.Unlock()
	return nil
}
