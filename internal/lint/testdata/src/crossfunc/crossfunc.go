// Package crossfunc pins the acceptance case for the interprocedural
// engine: the helper hides the wall clock from nondeterm's per-function
// view, and only dettaint connects it to the artifact write in the
// caller. TestDettaintCatchesCrossFunctionTaint asserts both analyzers'
// outputs over this package.
package crossfunc

import (
	"os"
	"strconv"
	"time"
)

// stamp returns a wall-clock value; its caller, not it, touches IO.
func stamp() int64 { return time.Now().UnixNano() }

// WriteManifest embeds the helper's nondeterminism in an artifact.
func WriteManifest(path string) error {
	return os.WriteFile(path, []byte(strconv.FormatInt(stamp(), 10)), 0o644) //want:dettaint
}
