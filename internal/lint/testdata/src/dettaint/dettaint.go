// Package dettaint is a golden-test fixture for the interprocedural
// determinism analysis: nondeterministic values routed through helper
// calls into artifact writes (flagged), next to seeded and sorted twins
// that must stay silent.
package dettaint

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// stamp hides the wall clock behind a helper: the per-function nondeterm
// analyzer cannot see it from the caller's body.
func stamp() int64 { return time.Now().UnixNano() }

// writeStamped routes the helper's nondeterminism into an artifact.
func writeStamped(path string) error {
	header := fmt.Sprintf("generated at %d", stamp())
	return os.WriteFile(path, []byte(header), 0o644) //want:dettaint
}

// writeDirect has source and sink in one body.
func writeDirect(path string) error {
	payload := []byte(time.Now().String())
	return os.WriteFile(path, payload, 0o644) //want:dettaint
}

// emit wraps the sink: taint reports land at emit's call sites.
func emit(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// pick draws from math/rand's shared unseeded source.
func pick(rows []string) string {
	return rows[rand.Intn(len(rows))]
}

// writePicked combines a source helper with a sink helper.
func writePicked(path string, rows []string) error {
	return emit(path, []byte(pick(rows))) //want:dettaint
}

// seededPick uses an explicitly seeded generator: deterministic, benign.
func seededPick(rows []string) string {
	r := rand.New(rand.NewSource(42))
	return rows[r.Intn(len(rows))]
}

func writeSeeded(path string, rows []string) error {
	return emit(path, []byte(seededPick(rows)))
}

// collectKeys appends under map iteration without sorting: the slice
// order is nondeterministic.
func collectKeys(set map[string]bool) []string {
	var keys []string
	for k := range set {
		keys = append(keys, k)
	}
	return keys
}

func writeKeys(path string, set map[string]bool) error {
	return emit(path, []byte(strings.Join(collectKeys(set), ","))) //want:dettaint
}

// collectSorted is the benign twin: collect, then sort.
func collectSorted(set map[string]bool) []string {
	var keys []string
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeSortedKeys(path string, set map[string]bool) error {
	return emit(path, []byte(strings.Join(collectSorted(set), ",")))
}

// workers leaks scheduler state.
func workers() int { return runtime.GOMAXPROCS(0) }

func writeWorkers(path string) error {
	return emit(path, []byte(fmt.Sprintf("workers=%d", workers()))) //want:dettaint
}

// configDir reads the process environment.
func configDir() string { return os.Getenv("ONTOCONV_DIR") }

func writeConfig(path string) error {
	return emit(path, []byte(configDir())) //want:dettaint
}
