// Package genpin is a golden-test fixture for generation pinning: a
// *runtime loaded from the agent's atomic pointer must not outlive the
// turn. Escapes through fields, globals, helpers, and goroutines are
// flagged; values merely derived from a generation are not.
package genpin

import "sync/atomic"

type runtime struct {
	version string
}

type Agent struct {
	rt atomic.Pointer[runtime]
}

type session struct {
	last *runtime // a field that would pin a generation past the turn
	note string
}

var current *runtime

// pin loads the live generation: the taint source, one helper deep.
func (a *Agent) pin() *runtime { return a.rt.Load() }

// keepGlobal parks a generation in a package variable.
func (a *Agent) keepGlobal() {
	current = a.pin() //want:genpin
}

// keepField stores the generation into session state.
func (a *Agent) keepField(s *session) {
	rt := a.pin()
	s.last = rt //want:genpin
}

// stash hides the escape one call away.
func stash(s *session, rt *runtime) {
	s.last = rt
}

// keepViaHelper escapes through the helper: flagged at the call site.
func (a *Agent) keepViaHelper(s *session) {
	stash(s, a.pin()) //want:genpin
}

// spawn captures the pinned generation in a goroutine that can outlive
// the turn that loaded it.
func (a *Agent) spawn(done chan struct{}) {
	rt := a.pin()
	go func() {
		_ = rt.version //want:genpin
		close(done)
	}()
}

// respond uses the generation only within the turn. The string stored
// into the session is derived data, not a generation reference: benign.
func (a *Agent) respond(s *session) string {
	rt := a.pin()
	s.note = rt.version
	return rt.version
}
