// Package lockheld is a golden-test fixture: blocking work under a held
// mutex (flagged) next to hand-over-hand patterns that release first.
package lockheld

import (
	"net/http"
	"os"
	"sync"
)

type server struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	cache map[string][]byte
}

// fetchLocked holds the lock across a network round-trip.
func (s *server) fetchLocked(url string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := http.Get(url) //want:lockheld
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// readLocked holds the lock across file IO even though it unlocks inline.
func (s *server) readLocked(path string) ([]byte, error) {
	s.mu.Lock()
	data, err := os.ReadFile(path) //want:lockheld
	s.mu.Unlock()
	return data, err
}

// readThenRelease does the blocking read after releasing: benign.
func (s *server) readThenRelease(path string) ([]byte, error) {
	s.mu.Lock()
	cached := s.cache[path]
	s.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	return os.ReadFile(path)
}

// rlockHeld flags read locks the same way as write locks.
func (s *server) rlockHeld(path string) ([]byte, error) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return os.ReadFile(path) //want:lockheld
}

type responder struct{ mu sync.Mutex }

// Respond stands in for the agent entry point that reaches KB execution.
func (r *responder) Respond(q string) string { return q }

// handleLocked calls the KB-reaching entry point under the lock.
func handleLocked(r *responder, q string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Respond(q) //want:lockheld
}

// intentional documents a deliberate hold with a suppression.
func (s *server) intentional(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//ontolint:ignore lockheld fixture: hold is deliberate, read must be atomic with the lock
	return os.ReadFile(path)
}
