// Package nondeterm is a golden-test fixture: map-iteration shapes the
// nondeterm analyzer must flag, next to benign twins it must not.
package nondeterm

import "sort"

// emitUnsorted leaks map order into its output slice.
func emitUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //want:nondeterm
	}
	return out
}

// firstMatch returns an arbitrary element of the map.
func firstMatch(m map[string]string) string {
	for _, v := range m { //want:nondeterm
		if v != "" {
			return v
		}
	}
	return ""
}

// sideEffects calls a function in iteration order and discards its result.
func sideEffects(m map[string]int) {
	for k := range m { //want:nondeterm
		_ = register(k)
	}
}

func register(string) error { return nil }

// concatOrder accumulates a string in iteration order (non-numeric +=).
func concatOrder(m map[string]string) string {
	s := ""
	for _, v := range m { //want:nondeterm
		s += v
	}
	return s
}

// emitSorted is the collect-then-sort idiom: benign.
func emitSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// count accumulates commutatively: benign.
func count(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// invert writes one map slot per key: benign.
func invert(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// sortEach sorts a value indexed by the range key: benign per-key work.
func sortEach(m map[string][]string) {
	for k := range m {
		sort.Strings(m[k])
	}
}

// postingLists appends into the range value's own slot: benign.
func postingLists(idx map[string]map[string][]int, rows []string) {
	for _, byVal := range idx {
		for i, r := range rows {
			byVal[r] = append(byVal[r], i)
		}
	}
}

// suppressed is the flagged pattern under an ignore directive: silent.
func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//ontolint:ignore nondeterm fixture: output order deliberately unspecified
		out = append(out, k)
	}
	return out
}
