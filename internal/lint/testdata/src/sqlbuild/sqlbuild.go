// Package sqlbuild is a golden-test fixture: SQL assembled by string
// formatting (flagged) next to benign string work (not flagged).
package sqlbuild

import "fmt"

// sprintfSQL interpolates a dynamic value into a SQL skeleton.
func sprintfSQL(name string) string {
	return fmt.Sprintf("SELECT description FROM precaution WHERE drug = '%s'", name) //want:sqlbuild
}

// fprintfSQL streams the same hazard through a writer.
func fprintfSQL(w writer, name string) {
	fmt.Fprintf(w, "SELECT name FROM drug WHERE name = '%s'", name) //want:sqlbuild
}

type writer interface{ Write([]byte) (int, error) }

// concatSQL splices a dynamic value into SQL with +.
func concatSQL(name string) string {
	return "SELECT name FROM drug WHERE name = '" + name + "'" //want:sqlbuild
}

// staticSQL is a constant statement: templates are built from these.
func staticSQL() string {
	return "SELECT name FROM drug WHERE class = 'NSAID'"
}

// sprintfStatic has a SQL-looking format but no dynamic arguments.
func sprintfStatic() string {
	return fmt.Sprintf("SELECT count(*) FROM drug WHERE salt IS NOT NULL")
}

// sprintfProse formats ordinary prose: not SQL.
func sprintfProse(name string) string {
	return fmt.Sprintf("no results for %s; choose another drug", name)
}

// concatProse concatenates ordinary prose: not SQL.
func concatProse(a, b string) string {
	return "precautions for " + a + " and " + b
}
