// Package errdropx is a golden-test fixture for the interprocedural
// errdrop annotation: the dropped error comes from a helper that
// transitively writes a file, and the diagnostic names the chain.
package errdropx

import "os"

// persist hides the file write one level down.
func persist(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// flush drops persist's error: flagged, with the IO chain in the message.
func flush(path string, data []byte) {
	persist(path, data) //want:errdrop
}

// flushChecked propagates it: benign.
func flushChecked(path string, data []byte) error {
	return persist(path, data)
}
