// This module is deliberately tainted: a wall-clock read in a helper
// flows into an artifact write in main. CI builds ontolint against it
// and asserts a nonzero exit, proving the lint gate can actually fail.
// The module path impersonates ontoconv so the root package lands in
// dettaint's emission scope; go tooling ignores testdata directories,
// so the outer module never sees this package.
package main

import (
	"os"
	"time"
)

// stamp hides the nondeterminism one call away from the sink.
func stamp() string { return time.Now().String() }

func main() {
	if err := os.WriteFile("artifact.txt", []byte(stamp()), 0o644); err != nil {
		panic(err)
	}
}
