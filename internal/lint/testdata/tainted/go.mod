module ontoconv

go 1.22
