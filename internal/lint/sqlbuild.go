package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// SQLBuildAnalyzer enforces the paper's templated-SQL design (§4.4): every
// structured query is a sqlx.Template with <@Param> markers, instantiated
// through the parser — never assembled by string formatting. Dynamic SQL
// built with fmt.Sprintf or string concatenation outside internal/sqlx is
// an injection hazard and bypasses template validation, so it is flagged
// wherever it appears.
var SQLBuildAnalyzer = &Analyzer{
	Name: "sqlbuild",
	Doc:  "SQL assembled via Sprintf/concatenation outside the sqlx template layer",
	Match: func(path string) bool {
		return path != "ontoconv/internal/sqlx"
	},
	Run: runSQLBuild,
}

// sqlPattern matches text that reads like a SQL statement skeleton.
var sqlPattern = regexp.MustCompile(`(?i)\b(select|insert|update|delete)\b.*\b(from|into|set|where)\b`)

var sprintfFamily = map[string]bool{
	"fmt.Sprintf": true, "fmt.Sprint": true, "fmt.Sprintln": true,
	"fmt.Appendf": true, "fmt.Fprintf": true,
}

func runSQLBuild(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkSprintfSQL(p, n)
			case *ast.BinaryExpr:
				if checkConcatSQL(p, n) {
					return false // don't re-report nested sub-concats
				}
			}
			return true
		})
	}
}

// checkSprintfSQL flags fmt.Sprintf-family calls whose format string looks
// like SQL and that interpolate at least one dynamic argument.
func checkSprintfSQL(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil || !sprintfFamily[fn.Pkg().Name()+"."+fn.Name()] {
		return
	}
	for i, arg := range call.Args {
		lit := stringLiteral(arg)
		if lit == "" || !sqlPattern.MatchString(lit) {
			continue
		}
		if len(call.Args) > i+1 { // dynamic parts follow the format
			p.Reportf(call.Pos(), "SQL assembled with %s.%s; build a sqlx.Template with <@Param> markers instead",
				fn.Pkg().Name(), fn.Name())
			return
		}
	}
}

// checkConcatSQL flags `+` chains mixing SQL-looking literals with dynamic
// string operands. It reports true when it handled (and reported) the
// whole chain.
func checkConcatSQL(p *Pass, be *ast.BinaryExpr) bool {
	if be.Op != token.ADD {
		return false
	}
	if t := p.TypeOf(be); t == nil || !isStringType(t) {
		return false
	}
	var static strings.Builder
	dynamic := false
	var flatten func(e ast.Expr)
	flatten = func(e ast.Expr) {
		if b, ok := unparen(e).(*ast.BinaryExpr); ok && b.Op == token.ADD {
			flatten(b.X)
			flatten(b.Y)
			return
		}
		if lit := stringLiteral(e); lit != "" {
			static.WriteString(lit)
			return
		}
		if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
			// named string constant: static, but unknown text
			return
		}
		dynamic = true
	}
	flatten(be)
	if dynamic && sqlPattern.MatchString(static.String()) {
		p.Reportf(be.Pos(), "SQL assembled by string concatenation; build a sqlx.Template with <@Param> markers instead")
		return true
	}
	return false
}

// stringLiteral returns the value of a string literal expression, or "".
func stringLiteral(e ast.Expr) string {
	bl, ok := unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return ""
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return ""
	}
	return s
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
