package lint

// GenPinAnalyzer enforces generation pinning across the agent's atomic
// hot swap: a turn loads one *runtime via Agent.rt.Load() and must use
// only that generation until it returns. A pinned pointer that escapes
// the turn — stored into a struct field, a package variable, session
// state, or captured by a spawned goroutine — would let one turn
// straddle an InstallBundle swap and mix two ontologies' answers. The
// analysis is interprocedural (a helper that squirrels the pointer away
// is caught at its call site) and type-filtered: only values whose type
// can transitively hold a *runtime count, so strings and counters
// derived from a generation are not escapes.
var GenPinAnalyzer = &Analyzer{
	Name:  "genpin",
	Doc:   "a *runtime generation pinned from Agent.rt escapes the turn",
	Match: pathMatcher("ontoconv/internal/agent", "ontoconv/cmd/..."),
	Run: func(p *Pass) {
		for _, f := range p.Mod.GenPin(p.Path) {
			p.Reportf(f.Pos, "%s", f.Message)
		}
	},
}
