package lint

import (
	"go/ast"
)

// ErrDropAnalyzer flags calls whose error result is silently discarded on
// the serve and bootstrap paths. A dropped error during bootstrap means a
// corrupted artifact ships without failing the build; a dropped error
// while serving means a user turn silently degrades. Explicitly assigning
// to the blank identifier (`_ = f()`) is treated as a reviewed decision
// and not reported.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "discarded error return on a serve or bootstrap path",
	Match: pathMatcher(
		"ontoconv",
		"ontoconv/internal/agent",
		"ontoconv/internal/core",
		"ontoconv/internal/ontogen",
		"ontoconv/internal/medkb",
		"ontoconv/internal/kb",
		"ontoconv/internal/dialogue",
		"ontoconv/internal/nlq",
		"ontoconv/internal/sqlx",
		"ontoconv/internal/obs",
		"ontoconv/cmd/...",
	),
	Run: runErrDrop,
}

// errDropAllowed are callees whose returned error is always nil by
// contract (strings.Builder, bytes.Buffer) or conventionally unchecked
// terminal output (fmt printing).
func errDropAllowed(pkgPath, recv, name string) bool {
	switch pkgPath {
	case "fmt":
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	case "strings":
		return recv == "Builder"
	case "bytes":
		return recv == "Buffer"
	}
	return false
}

func runErrDrop(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			if !callDropsError(p.Info, call) {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil {
				p.Reportf(call.Pos(), "error result discarded; handle it or assign to _ explicitly")
				return true
			}
			pkgPath := ""
			if fn.Pkg() != nil {
				pkgPath = fn.Pkg().Path()
			}
			recv := receiverTypeName(fn)
			if errDropAllowed(pkgPath, recv, fn.Name()) {
				return true
			}
			// A dropped error from a callee that transitively performs
			// IO is worse than a cosmetic one: name the chain so the
			// reader sees what failure is being swallowed.
			if chain := p.Mod.IOChain(fn); chain != "" {
				p.Reportf(call.Pos(), "error result of %s is discarded and it transitively performs KB/IO work (%s); handle it or assign to _ explicitly",
					fn.Name(), chain)
				return true
			}
			p.Reportf(call.Pos(), "error result of %s is discarded; handle it or assign to _ explicitly", fn.Name())
			return true
		})
	}
}
