package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// parallelPaths are the packages where offline work fans out over
// goroutines: the artifact-emission path plus the NLU trainer, the
// bundle compiler, and the worker pool itself. A shared-state write from
// a concurrent closure in any of them is a data race at best and a
// GOMAXPROCS-dependent artifact at worst, so the safe shape — each task
// writes only slots indexed by its own parameter, merged serially in
// fixed order afterwards — is enforced statically.
var parallelPaths = pathMatcher(
	"ontoconv",
	"ontoconv/internal/core",
	"ontoconv/internal/ontogen",
	"ontoconv/internal/medkb",
	"ontoconv/internal/ontology",
	"ontoconv/internal/dialogue",
	"ontoconv/internal/kb",
	"ontoconv/internal/nlq",
	"ontoconv/internal/sqlx",
	"ontoconv/internal/nlu",
	"ontoconv/internal/bundle",
	"ontoconv/internal/par",
)

// ParaGoroutineAnalyzer flags concurrent closures — function literals
// launched by a `go` statement or handed to par.Do — that write captured
// state without a provable ownership story. Recognized as safe:
//
//   - slot writes s[i] = v where s is a captured slice and every variable
//     in the index expression is the closure's own (the ordered-merge
//     pattern par.Do is built around);
//   - writes through pointers or structs the closure itself declared,
//     including the s := &slots[i] form;
//   - closures that acquire a sync mutex anywhere in their body (lock
//     discipline itself is the lockheld analyzer's job);
//   - channel operations, which are synchronization by construction.
//
// Everything else — map writes (racy even on distinct keys), appends to
// captured slices, stores to captured scalars, writes at captured
// indexes, and calls through captured function values whose effects this
// analysis cannot see — is reported.
var ParaGoroutineAnalyzer = &Analyzer{
	Name:  "paragoroutine",
	Doc:   "unsynchronized shared-state write in a concurrent bootstrap/compile closure",
	Match: parallelPaths,
	Run:   runParaGoroutine,
}

func runParaGoroutine(p *Pass) {
	funcDecls(p.Files, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkConcurrentLit(p, lit)
				}
			case *ast.CallExpr:
				if isParDo(p, n) {
					for _, arg := range n.Args {
						if lit, ok := unparen(arg).(*ast.FuncLit); ok {
							checkConcurrentLit(p, lit)
						}
					}
				}
			}
			return true
		})
	})
}

// isParDo reports whether a call launches closures through the
// deterministic worker pool. Resolution is semantic when type
// information reaches the real package and falls back to the syntactic
// par.Do shape (golden fixtures impersonate the pool with a local value).
func isParDo(p *Pass, call *ast.CallExpr) bool {
	if fn := calleeFunc(p.Info, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "ontoconv/internal/par" && fn.Name() == "Do" {
		return true
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "par"
}

// checkConcurrentLit inspects one concurrently-running closure for
// writes to captured state.
func checkConcurrentLit(p *Pass, lit *ast.FuncLit) {
	if litHoldsLock(p, lit) {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Nested launches are analyzed at their own site.
			if _, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				return false
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWrite(p, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(p, lit, n.X)
		case *ast.CallExpr:
			if isParDo(p, n) {
				return false
			}
			checkFuncValueCall(p, lit, n)
		}
		return true
	})
}

// checkWrite classifies one assignment target inside a concurrent
// closure.
func checkWrite(p *Pass, lit *ast.FuncLit, lhs ast.Expr) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		if capturedVar(p, lit, lhs) {
			p.Reportf(lhs.Pos(), "concurrent closure writes captured variable %s; give each task an index-disjoint slot and merge in order, or guard it with a mutex", lhs.Name)
		}
	case *ast.IndexExpr:
		root := rootIdent(lhs.X)
		if root == nil || !capturedVar(p, lit, root) {
			return
		}
		if t := p.TypeOf(lhs.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				p.Reportf(lhs.Pos(), "concurrent closure writes shared map %s; map writes race even on distinct keys — fill per-task slots and merge in order, or guard the map with a mutex", root.Name)
				return
			}
		}
		if !indexLocal(p, lit, lhs.Index) {
			p.Reportf(lhs.Pos(), "concurrent closure writes %s at an index that is not task-local; slot ownership cannot be proven — index with the closure's own parameter", types.ExprString(lhs))
		}
	case *ast.StarExpr:
		if root := rootIdent(lhs.X); root != nil && capturedVar(p, lit, root) {
			p.Reportf(lhs.Pos(), "concurrent closure writes through captured pointer %s; slot ownership cannot be proven", root.Name)
		}
	case *ast.SelectorExpr:
		if root := rootIdent(lhs.X); root != nil && capturedVar(p, lit, root) {
			p.Reportf(lhs.Pos(), "concurrent closure writes field %s of captured %s; take a task-owned pointer (s := &slots[i]) or guard it with a mutex", lhs.Sel.Name, root.Name)
		}
	}
}

// checkFuncValueCall flags calls through captured function *values*: the
// analysis cannot see their bodies, so their writes are unaccounted for.
// Named functions and methods resolve through calleeFunc and are not
// function values; the one legitimate site (the pool invoking its work
// callback) documents itself with an ontolint:ignore.
func checkFuncValueCall(p *Pass, lit *ast.FuncLit, call *ast.CallExpr) {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := objOf(p, id).(*types.Var)
	if !ok || v.IsField() {
		return
	}
	if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
		return
	}
	if !capturedVar(p, lit, id) {
		return
	}
	p.Reportf(call.Pos(), "concurrent closure calls captured function value %s, whose writes this analysis cannot see; pass results through per-task slots", id.Name)
}

// litHoldsLock reports whether the closure acquires a sync mutex
// anywhere in its body. Lock discipline is flow-sensitive and belongs to
// the lockheld analyzer; here a Lock call is taken as evidence the
// author synchronized the shared state, and the closure is left alone.
func litHoldsLock(p *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(p.Info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync" && (fn.Name() == "Lock" || fn.Name() == "RLock") {
				found = true
			}
		}
		return !found
	})
	return found
}

// indexLocal reports whether every variable in an index expression is
// declared inside the closure (parameters included): only then does the
// slot-ownership argument hold.
func indexLocal(p *Pass, lit *ast.FuncLit, idx ast.Expr) bool {
	local := true
	ast.Inspect(idx, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := objOf(p, id).(*types.Var); ok && !v.IsField() {
				if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
					local = false
				}
			}
		}
		return local
	})
	return local
}

// capturedVar reports whether an identifier resolves to a variable
// declared outside the closure (a true capture, fields excluded).
func capturedVar(p *Pass, lit *ast.FuncLit, id *ast.Ident) bool {
	v, ok := objOf(p, id).(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

// objOf resolves an identifier to its object through either the use or
// the definition map.
func objOf(p *Pass, id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// rootIdent unwraps selectors, indexes, stars and parens down to the
// base identifier of an expression, or nil if the base is not an
// identifier (a call result, say).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}
