package lint_test

import (
	"os"
	"strings"
	"testing"

	"ontoconv/internal/core"
	"ontoconv/internal/dialogue"
	"ontoconv/internal/lint"
	"ontoconv/internal/sqlx"
)

// cleanSpace builds a minimal workspace that every space rule accepts: one
// lookup intent with a bound template, one conversation-management intent,
// and one entity dictionary with collision-free synonyms.
func cleanSpace(t *testing.T) *core.Space {
	t.Helper()
	tmpl, err := sqlx.NewTemplate("SELECT description FROM precaution WHERE drug = <@Drug>")
	if err != nil {
		t.Fatal(err)
	}
	return &core.Space{
		Intents: []core.Intent{
			{
				Name:     "Precautions of Drug",
				Kind:     core.LookupPattern,
				Examples: []string{"show me precautions for aspirin", "precautions of tylenol"},
				Template: tmpl,
				Required: []core.EntitySpec{{Entity: "Drug", Param: "Drug", Elicitation: "For which drug?"}},
				Response: "Precautions for {{Drug}}:",
			},
			{
				Name:     "GREETING",
				Kind:     core.ConversationPattern,
				Examples: []string{"hello", "good morning"},
				Response: "Hello! Ask me about a drug.",
			},
		},
		Entities: []core.EntityDef{
			{Name: "Drug", Kind: "instance", Concept: "Drug", Values: []core.EntityValue{
				{Value: "Aspirin", Synonyms: []string{"ASA"}},
				{Value: "Tylenol", Synonyms: []string{"acetaminophen"}},
			}},
		},
	}
}

func findRule(diags []lint.Diagnostic, rule, substr string) bool {
	for _, d := range diags {
		if d.Analyzer == rule && strings.Contains(d.Message, substr) {
			return true
		}
	}
	return false
}

func wantRule(t *testing.T, diags []lint.Diagnostic, rule, substr string) {
	t.Helper()
	if !findRule(diags, rule, substr) {
		t.Errorf("missing %s finding containing %q; got %v", rule, substr, diags)
	}
}

func TestSpaceCleanFixture(t *testing.T) {
	if diags := lint.LintSpace(cleanSpace(t)); len(diags) != 0 {
		t.Fatalf("clean fixture produced findings: %v", diags)
	}
}

func TestSpaceDanglingIntent(t *testing.T) {
	space := cleanSpace(t)
	table := dialogue.BuildLogicTable(space)
	tree := dialogue.BuildTree(space, table)

	// A row for an intent that does not exist (stale SME-edited table).
	table.Rows = append(table.Rows, dialogue.LogicRow{Intent: "Ghost"})
	// A tree node routing to an unknown intent.
	tree.Roots = append(tree.Roots, &dialogue.Node{ID: "intent:Phantom", Intent: "Phantom"})
	diags := lint.LintSpaceArtifacts(space, table, tree)
	wantRule(t, diags, "dangling-intent", `unknown intent "Ghost"`)
	wantRule(t, diags, "dangling-intent", `unknown intent "Phantom"`)

	// An intent with no logic-table row is unreachable by the dialogue.
	table.Rows = table.Rows[:1]
	diags = lint.LintSpaceArtifacts(space, table, tree)
	wantRule(t, diags, "dangling-intent", "has no logic table row")
}

func TestSpaceDanglingEntity(t *testing.T) {
	space := cleanSpace(t)
	in := space.Intent("Precautions of Drug")
	in.Optional = append(in.Optional, core.EntitySpec{Entity: "AgeGroup", Param: "Drug"})
	in.Response = "Precautions for {{Drug}} in {{Zone}}:"
	diags := lint.LintSpace(space)
	wantRule(t, diags, "dangling-entity", `entity spec "AgeGroup" has no entity definition`)
	wantRule(t, diags, "dangling-entity", "placeholder {{Zone}}")
}

func TestSpaceUnreachableNode(t *testing.T) {
	space := cleanSpace(t)
	table := dialogue.BuildLogicTable(space)
	tree := dialogue.BuildTree(space, table)

	// Duplicate root for an intent: Match stops at the first.
	tree.Roots = append(tree.Roots, &dialogue.Node{ID: "intent:GREETING#2", Intent: "GREETING"})
	// A condition-free sibling placed before a conditioned one shadows it.
	tree.Roots[0].Children = []*dialogue.Node{
		{ID: "catchall"},
		{ID: "with-drug", RequireEntity: "Drug"},
	}
	diags := lint.LintSpaceArtifacts(space, table, tree)
	wantRule(t, diags, "unreachable-node", "intent:GREETING#2 is unreachable")
	wantRule(t, diags, "unreachable-node", "with-drug is unreachable: sibling catchall")
}

func TestSpaceTemplateSlots(t *testing.T) {
	space := cleanSpace(t)
	in := space.Intent("Precautions of Drug")
	tmpl, err := sqlx.NewTemplate("SELECT description FROM precaution WHERE drug = <@Drug> AND age_group = <@AgeGroup>")
	if err != nil {
		t.Fatal(err)
	}
	in.Template = tmpl
	in.Optional = append(in.Optional,
		core.EntitySpec{Entity: "Drug", Param: "Drug"},  // second binding of Drug
		core.EntitySpec{Entity: "Drug", Param: "Brand"}, // undeclared parameter
	)
	diags := lint.LintSpace(space)
	wantRule(t, diags, "template-slot", "<@AgeGroup> is bound by no entity spec")
	wantRule(t, diags, "template-slot", "<@Drug> is bound by 2 entity specs")
	wantRule(t, diags, "template-slot", `parameter "Brand", which the SQL template does not declare`)
}

func TestSpaceDupAndEmptyExamples(t *testing.T) {
	space := cleanSpace(t)
	// Same utterance labelled with both intents, up to surface noise.
	space.Intents[0].Examples = append(space.Intents[0].Examples, "Hello!")
	space.Intents = append(space.Intents, core.Intent{
		Name: "FAREWELL", Kind: core.ConversationPattern, Response: "Bye!",
	})
	diags := lint.LintSpace(space)
	wantRule(t, diags, "dup-example", `appears under intents "Precautions of Drug" and "GREETING"`)
	wantRule(t, diags, "empty-intent", `intent "FAREWELL" has no training examples`)
}

func TestSpaceSynonymCollision(t *testing.T) {
	space := cleanSpace(t)
	space.Entities[0].Values = append(space.Entities[0].Values,
		core.EntityValue{Value: "Paracetamol", Synonyms: []string{"Acetaminophen"}})
	diags := lint.LintSpace(space)
	wantRule(t, diags, "synonym-collision", `names both value "Tylenol" and value "Paracetamol"`)
}

// TestSpaceJSONFixture lints a corrupted workspace through the same
// ReadJSON path the ontolint CLI uses, proving the file-level entry point
// surfaces the planted defects.
func TestSpaceJSONFixture(t *testing.T) {
	f, err := os.Open("testdata/space/corrupt_space.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	space, err := core.ReadJSON(f)
	if err != nil {
		t.Fatalf("fixture must pass core validation (lint finds what Validate cannot): %v", err)
	}
	diags := lint.LintSpace(space)
	wantRule(t, diags, "template-slot", "bound by no entity spec")
	wantRule(t, diags, "dup-example", "labels contradict")
	wantRule(t, diags, "synonym-collision", "surface form")
	wantRule(t, diags, "empty-intent", "no training examples")
}
