package core

// DefaultGreeting is the conversation-opening line of the MDX deployment
// (§6.3 line 01). It is the single source for both the CM Greeting intent
// response and the agent's default greeting.
const DefaultGreeting = "Hello. This is Micromedex. If this is your first time, just ask for help. How can I help you today?"

// ConversationManagementIntents returns the 14 domain-independent intents
// the MDX deployment layers around the KB intents (§5.2 step 3, §6.1):
// generic actions users take to manage the interaction itself, drawn from
// the Natural Conversation Framework's sequence- and conversation-level
// pattern catalog [24]. They carry no query template; the dialogue tree
// answers them directly.
func ConversationManagementIntents() []Intent {
	mk := func(name, response string, examples ...string) Intent {
		return Intent{
			Name:     name,
			Kind:     ConversationPattern,
			Examples: examples,
			Response: response,
		}
	}
	return []Intent{
		mk("CM Greeting",
			DefaultGreeting,
			"hello", "hi", "hey there", "good morning", "good afternoon", "hi there",
			"greetings", "hello agent", "hey", "good evening", "hello there", "hiya",
			"morning", "hi assistant", "hello micromedex", "good day", "yo", "hey assistant"),
		mk("CM Goodbye",
			"Thank you for using Micromedex. Goodbye.",
			"goodbye", "bye", "see you later", "bye bye", "that's all, goodbye",
			"I'm done, bye", "exit", "quit", "see ya", "talk to you later",
			"catch you later", "that will be all, bye", "signing off", "farewell",
			"later", "I have to go now", "bye for now", "goodnight"),
		mk("CM Appreciation",
			"You're welcome! Anything else?",
			"thanks", "thank you", "thanks a lot", "thank you so much", "great, thanks",
			"perfect thank you", "awesome thanks", "much appreciated", "thanks so much",
			"cheers", "thank you kindly", "that was helpful, thanks", "appreciate it",
			"many thanks", "thanks for the help", "thank you very much", "thx", "ty"),
		mk("CM Help",
			"You can ask me about drugs and the conditions they treat, dosing, interactions, adverse effects, and more. For example: \"show me drugs that treat psoriasis\".",
			"help", "I need help", "what can I ask", "how does this work", "help me",
			"instructions please", "how do I use this", "what do I do",
			"I am lost", "can you help me", "show me how to use this", "help please",
			"I don't know what to ask", "give me some guidance", "how do I search",
			"what are my options here", "walk me through this", "need assistance"),
		mk("CM Capabilities",
			"I answer drug reference questions: treatments for conditions, dosage, interactions, precautions, adverse effects, and other drug attributes.",
			"what can you do", "what are your capabilities", "what do you know",
			"what kind of questions can you answer", "tell me what you can do",
			"what topics do you cover", "what are you able to answer",
			"what information do you have", "what is in your database",
			"what kind of data do you cover", "what can I search for",
			"which questions do you support", "what do you offer", "describe your features"),
		mk("CM Repeat Request",
			"Let me repeat that.",
			"what did you say", "can you repeat that", "say that again", "repeat please",
			"sorry, what was that", "come again", "pardon", "repeat that last answer",
			"say it again please", "I missed that", "one more time", "could you repeat",
			"sorry I didn't catch that", "what was that again", "please say that again"),
		mk("CM Definition Request",
			"Here is the definition.",
			"what do you mean by effective", "what does contraindication mean",
			"define black box warning", "what do you mean", "what does that term mean",
			"can you define that", "what is the meaning of efficacy",
			"what does adverse effect mean", "define precaution", "what is a dose adjustment",
			"explain the term contraindication", "meaning of pharmacokinetics",
			"what does pediatric mean here", "define drug interaction", "what is efficacy"),
		mk("CM Paraphrase Request",
			"Let me put that another way.",
			"what do you mean by that", "can you rephrase that", "I don't understand",
			"can you say that differently", "I didn't get that", "please explain",
			"I am confused by that answer", "could you put that more simply",
			"explain that differently", "I don't follow", "can you clarify",
			"that was unclear", "simplify that please", "can you elaborate"),
		mk("CM Positive Acknowledgement",
			"Great. Anything else?",
			"okay", "ok", "got it", "sounds good", "alright", "understood", "that works",
			"cool", "makes sense", "fine", "good", "great", "perfect", "very well",
			"noted", "all right then", "okay got it", "roger that"),
		mk("CM Negative Acknowledgement",
			"Sorry about that. Could you rephrase your question?",
			"that's wrong", "that is not what I asked", "no that's not right", "incorrect",
			"that doesn't help", "wrong answer", "this is not helpful",
			"that's not what I meant", "you misunderstood me", "not what I was looking for",
			"that answer is wrong", "this is incorrect", "you got that wrong",
			"that misses the point", "bad answer"),
		mk("CM Abort",
			"OK. Please modify your search.",
			"never mind", "nevermind", "forget it", "cancel", "stop", "let's start over",
			"abort", "skip it", "drop it", "forget that question", "cancel that",
			"start over please", "reset", "scratch that", "leave it", "ignore that"),
		mk("CM Yes",
			"Okay.",
			"yes", "yeah", "yep", "sure", "correct", "that's right", "yes please",
			"affirmative", "definitely", "absolutely", "indeed", "yup", "of course",
			"exactly", "right", "certainly", "sure thing", "that is correct"),
		mk("CM No",
			"OK. Please modify your search.",
			"no", "nope", "no thanks", "not really", "negative", "no thank you", "nah",
			"not at all", "definitely not", "I don't think so", "no that's all",
			"nothing else", "no more questions", "that's everything", "no I'm good"),
		mk("CM Chitchat",
			"I'm doing well and ready to help with drug reference questions.",
			"how are you", "who are you", "are you a robot", "what's your name",
			"tell me a joke", "how is your day", "are you human", "where are you from",
			"who made you", "how old are you", "do you sleep", "are you real",
			"what are you", "are you an AI", "do you like your job"),
	}
}

// Definitions holds the glossary the Definition Request Repair pattern
// (B2.5.0, §5.2) answers from. Keys are lowercase terms.
var Definitions = map[string]string{
	"effective":         "Effective is the capacity for beneficial change (or therapeutic effect) of a given intervention.",
	"efficacy":          "Efficacy is the ability of a drug to produce the desired therapeutic effect.",
	"contraindication":  "A contraindication is a condition or factor that makes a particular treatment inadvisable.",
	"contra indication": "A contraindication is a condition or factor that makes a particular treatment inadvisable.",
	"black box warning": "A black box warning is the strongest warning the FDA requires on prescription drug labeling, indicating a significant risk of serious or life-threatening adverse effects.",
	"adverse effect":    "An adverse effect is an undesired harmful effect resulting from a medication.",
	"side effect":       "A side effect is a secondary, typically undesirable effect of a drug.",
	"precaution":        "A precaution is a measure taken in advance to avert possible harm when using a drug.",
	"indication":        "An indication is a valid reason (condition or disease) to use a certain drug.",
	"dosage":            "Dosage is the size, frequency, and number of doses of a drug to be given.",
	"dose adjustment":   "A dose adjustment is a modification of drug dosing, e.g. for renal or hepatic impairment.",
	"drug interaction":  "A drug interaction is a change in a drug's effect caused by another substance such as a drug, food, or lab reagent.",
	"iv compatibility":  "IV compatibility describes whether two intravenous preparations can be administered together without degradation or precipitation.",
	"pharmacokinetics":  "Pharmacokinetics describes how the body absorbs, distributes, metabolizes and excretes a drug.",
	"pediatric":         "Pediatric refers to patients under 18 years of age.",
	"adult":             "Adult refers to patients 18 years of age or older.",
}
