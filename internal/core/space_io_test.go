package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpaceJSONRoundTrip(t *testing.T) {
	space := bootstrapped(t)
	var buf bytes.Buffer
	if err := space.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Intents) != len(space.Intents) {
		t.Fatalf("intents %d vs %d", len(back.Intents), len(space.Intents))
	}
	if len(back.Entities) != len(space.Entities) {
		t.Fatalf("entities %d vs %d", len(back.Entities), len(space.Entities))
	}
	// templates survive with their parameters
	orig := space.Intent("Precautions of Drug")
	got := back.Intent("Precautions of Drug")
	if got == nil || got.Template == nil || got.Template.SQL != orig.Template.SQL {
		t.Fatalf("template lost: %+v", got)
	}
	// a round-tripped template still instantiates
	if _, err := got.Template.Instantiate(map[string]string{"Drug": "Aspirin"}); err != nil {
		t.Fatal(err)
	}
	// completion metadata survives
	if len(back.Completion.DependentsOfKey) == 0 {
		t.Fatal("completion metadata lost")
	}
}

func TestReadJSONRejectsBroken(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad")); err == nil {
		t.Fatal("malformed JSON must error")
	}
	// duplicate intent names
	dup := `{"intents":[{"name":"A","kind":"lookup","examples":["x"]},{"name":"A","kind":"lookup","examples":["y"]}],"entities":[],"completion":{"dependentsOfKey":{},"keysOfDependent":{}}}`
	if _, err := ReadJSON(strings.NewReader(dup)); err == nil {
		t.Fatal("duplicate intents must be rejected")
	}
}

func TestValidateRequiredParamMismatch(t *testing.T) {
	space := bootstrapped(t)
	broken := *space
	broken.Intents = append([]Intent(nil), space.Intents...)
	for i := range broken.Intents {
		if broken.Intents[i].Template != nil && len(broken.Intents[i].Required) > 0 {
			cp := broken.Intents[i]
			cp.Required = append([]EntitySpec(nil), cp.Required...)
			cp.Required[0].Param = "Ghost"
			broken.Intents[i] = cp
			break
		}
	}
	if err := broken.Validate(); err == nil {
		t.Fatal("param mismatch must fail validation")
	}
}
