package core

import (
	"strings"
	"testing"
)

func TestConversationManagementIntentCount(t *testing.T) {
	cms := ConversationManagementIntents()
	// the paper's deployment adds exactly 14 (§6.1)
	if len(cms) != 14 {
		t.Fatalf("CM intents = %d, want 14", len(cms))
	}
	seen := map[string]bool{}
	for _, in := range cms {
		if in.Kind != ConversationPattern {
			t.Errorf("%s kind = %s", in.Name, in.Kind)
		}
		if seen[in.Name] {
			t.Errorf("duplicate CM intent %s", in.Name)
		}
		seen[in.Name] = true
		if len(in.Examples) < 8 {
			t.Errorf("%s has only %d examples; the classifier needs more", in.Name, len(in.Examples))
		}
		if in.Response == "" {
			t.Errorf("%s has no response", in.Name)
		}
		if in.Template != nil {
			t.Errorf("%s must not carry a query template", in.Name)
		}
	}
}

func TestCMExamplesDistinctAcrossIntents(t *testing.T) {
	owner := map[string]string{}
	for _, in := range ConversationManagementIntents() {
		for _, ex := range in.Examples {
			if prev, dup := owner[ex]; dup {
				t.Errorf("example %q appears in both %s and %s", ex, prev, in.Name)
			}
			owner[ex] = in.Name
		}
	}
}

func TestDefinitionsGlossary(t *testing.T) {
	// the transcript's definition (§6.3 line 09) must be present verbatim
	def, ok := Definitions["effective"]
	if !ok || !strings.HasPrefix(def, "Effective is the capacity for beneficial change") {
		t.Fatalf("effective = %q", def)
	}
	for term, text := range Definitions {
		if term != strings.ToLower(term) {
			t.Errorf("glossary key %q must be lowercase", term)
		}
		if len(text) < 20 {
			t.Errorf("definition of %q too short: %q", term, text)
		}
	}
}
