package core

import (
	"fmt"
	"sort"

	"ontoconv/internal/kb"
	"ontoconv/internal/nlq"
	"ontoconv/internal/obs"
	"ontoconv/internal/ontogen"
	"ontoconv/internal/ontology"
	"ontoconv/internal/par"
)

// Config collects every knob of the offline bootstrapping process
// (Figure 1a). Zero values select the defaults used by the experiments.
type Config struct {
	KeyConcepts       KeyConceptConfig
	Phrases           Phrases
	ExamplesPerIntent int
	Seed              int64
	Entities          EntityConfig
	Feedback          Feedback
	// IncludeConversationManagement appends the 14 generic intents.
	IncludeConversationManagement bool
	// Phases, when non-nil, receives per-step durations and artifact
	// counts of the offline pipeline.
	Phases *obs.PhaseLog
}

// DefaultConfig returns the configuration used throughout the
// reproduction.
func DefaultConfig() Config {
	return Config{
		KeyConcepts:       DefaultKeyConceptConfig(),
		Phrases:           DefaultPhrases(),
		ExamplesPerIntent: 36,
		Seed:              7,
		Entities: EntityConfig{
			ValueEntityMaxValues: 10,
		},
		IncludeConversationManagement: true,
	}
}

// Bootstrap runs the complete offline process of §4 over an ontology and
// its knowledge base: concept analysis, pattern extraction, SME structural
// feedback, training-example generation, template generation, entity
// extraction, general-entity and conversation-management intents, SME
// renames and prior-query augmentation, and query-completion metadata.
func Bootstrap(o *ontology.Ontology, base *kb.KB, cfg Config) (*Space, error) {
	if cfg.ExamplesPerIntent <= 0 {
		cfg.ExamplesPerIntent = 36
	}
	if cfg.KeyConcepts.MaxKeep == 0 {
		cfg.KeyConcepts = DefaultKeyConceptConfig()
	}
	if len(cfg.Phrases.Lookup) == 0 {
		cfg.Phrases = DefaultPhrases()
	}

	// 1. key and dependent concepts (§4.2.1)
	done := cfg.Phases.Phase("concept_analysis")
	an := AnalyzeConcepts(o, base, cfg.KeyConcepts)
	done(obs.C("key_concepts", len(an.KeyConcepts)), obs.C("dependents", len(an.AllDependents)))
	if len(an.KeyConcepts) == 0 {
		return nil, fmt.Errorf("core: no key concepts identified")
	}

	// 2. query patterns -> intents (§4.2.1)
	done = cfg.Phases.Phase("pattern_extraction")
	intents := ExtractPatterns(o, an)
	done(obs.C("intents", len(intents)))
	if len(intents) == 0 {
		return nil, fmt.Errorf("core: no query patterns extracted")
	}

	// 3. SME structural feedback (§4.2.2)
	done = cfg.Phases.Phase("sme_structural_feedback")
	intents, err := applyStructural(intents, cfg.Feedback)
	done(obs.C("intents", len(intents)))
	if err != nil {
		return nil, err
	}

	// 4. training examples (§4.3.1)
	done = cfg.Phases.Phase("training_examples")
	surfaces := ConceptSurfaces(o, cfg.Entities.ConceptSynonyms)
	GenerateExamples(intents, base, o, cfg.Phrases, surfaces, cfg.ExamplesPerIntent, cfg.Seed)
	nexamples := 0
	for i := range intents {
		nexamples += len(intents[i].intent.Examples)
	}
	done(obs.C("examples", nexamples), obs.C("workers", par.Workers(len(intents))))

	// 5. structured query templates via the NLQ service (§4.4). The NLQ
	// service is read-only after New, and each worker writes only its own
	// intent, so templates build in parallel; errors reduce in intent
	// order, preserving which one is reported.
	done = cfg.Phases.Phase("query_templates")
	svc := nlq.New(o)
	valueEntityName := func(concept, property string) string {
		return ontogen.ConceptName(property)
	}
	terrs := make([]error, len(intents))
	par.Do(len(intents), func(i int) {
		terrs[i] = buildTemplate(svc, o, &intents[i], valueEntityName)
	})
	for _, err := range terrs {
		if err != nil {
			return nil, err
		}
	}
	done(obs.C("templates", len(intents)), obs.C("workers", par.Workers(len(intents))))

	space := &Space{
		KeyConcepts:       an.KeyConcepts,
		DependentConcepts: an.AllDependents,
	}
	for _, in := range intents {
		space.Intents = append(space.Intents, in.intent)
	}

	// 6. entity extraction (§4.5)
	done = cfg.Phases.Phase("entity_extraction")
	entCfg := cfg.Entities
	if entCfg.InstanceEntityConcepts == nil {
		entCfg.InstanceEntityConcepts = an.KeyConcepts
	}
	space.Entities = ExtractEntities(o, base, an, entCfg)
	nvalues := 0
	for _, def := range space.Entities {
		nvalues += len(def.Values)
	}
	done(obs.C("entities", len(space.Entities)), obs.C("values", nvalues))

	// 7. general entity intents (§6.1 DRUG_GENERAL)
	done = cfg.Phases.Phase("general_and_cm_intents")
	for _, concept := range cfg.Feedback.GeneralEntityConcepts {
		if o.Concept(concept) == nil {
			return nil, fmt.Errorf("core: general-entity intent for unknown concept %q", concept)
		}
		examples := GenerateGeneralEntityExamples(concept, base, o, cfg.ExamplesPerIntent, cfg.Seed+int64(len(concept)))
		space.Intents = append(space.Intents, Intent{
			Name:          fmt.Sprintf("%s_GENERAL", upper(concept)),
			Kind:          GeneralEntityPattern,
			Examples:      examples,
			AnswerConcept: concept,
			Response:      fmt.Sprintf("Would you like to see more about this %s?", lowerFirst(o.Concept(concept).Label)),
		})
	}

	// 8. conversation management intents (§5.2 step 3)
	if cfg.IncludeConversationManagement {
		space.Intents = append(space.Intents, ConversationManagementIntents()...)
	}
	done(obs.C("intents", len(space.Intents)))

	// 9. SME renames and prior-query augmentation
	done = cfg.Phases.Phase("sme_rename_augment")
	if err := applyRename(space, cfg.Feedback.Rename); err != nil {
		return nil, err
	}
	if err := AugmentFromPriorQueries(space, cfg.Feedback.PriorQueries); err != nil {
		return nil, err
	}
	done(obs.C("prior_queries", len(cfg.Feedback.PriorQueries)))

	// 10. query-completion metadata (§4.2.1, end)
	done = cfg.Phases.Phase("completion_meta")
	space.Completion = buildCompletionMeta(an)
	done(obs.C("examples", len(space.AllExamples())))
	return space, nil
}

// buildCompletionMeta creates the two association lists of §4.2.1 that the
// dialogue uses to complete partial queries.
func buildCompletionMeta(an ConceptAnalysis) CompletionMeta {
	meta := CompletionMeta{
		DependentsOfKey: make(map[string][]string, len(an.KeyConcepts)),
		KeysOfDependent: make(map[string][]string),
	}
	for _, key := range an.KeyConcepts {
		deps := append([]string(nil), an.Dependents[key]...)
		meta.DependentsOfKey[key] = deps
		for _, d := range deps {
			meta.KeysOfDependent[d] = append(meta.KeysOfDependent[d], key)
		}
	}
	for d := range meta.KeysOfDependent {
		sort.Strings(meta.KeysOfDependent[d])
	}
	return meta
}

func upper(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}
