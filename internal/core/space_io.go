package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the conversation space as indented JSON — the
// artifact bundle the paper uploads to Watson Assistant ("Uploading the
// artifacts, including training and test data for intent training,
// triggers the natural language classifier to train the model", §7).
func (s *Space) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON loads a conversation space previously written with WriteJSON
// and validates its internal references.
func ReadJSON(r io.Reader) (*Space, error) {
	var s Space
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decode space: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the space's internal consistency: unique intent names,
// required entities bound to template parameters, and entity references
// resolving to declared entity definitions.
func (s *Space) Validate() error {
	names := map[string]bool{}
	entityDefs := map[string]bool{}
	for _, e := range s.Entities {
		entityDefs[e.Name] = true
	}
	for _, in := range s.Intents {
		if in.Name == "" {
			return fmt.Errorf("core: intent with empty name")
		}
		if names[in.Name] {
			return fmt.Errorf("core: duplicate intent %q", in.Name)
		}
		names[in.Name] = true
		if in.Template != nil {
			params := map[string]bool{}
			for _, p := range in.Template.Params {
				params[p] = true
			}
			for _, req := range in.Required {
				if !params[req.Param] {
					return fmt.Errorf("core: intent %q: required param %q not in template", in.Name, req.Param)
				}
				if !entityDefs[req.Entity] {
					return fmt.Errorf("core: intent %q: required entity %q has no definition", in.Name, req.Entity)
				}
			}
		}
	}
	return nil
}
