package core

import "strings"

// Pluralize applies simple English pluralization to the last word of a
// label ("Precaution" -> "Precautions", "Dose Adjustment" ->
// "Dose Adjustments", "Efficacy" -> "Efficacies").
func Pluralize(label string) string {
	words := strings.Fields(label)
	if len(words) == 0 {
		return label
	}
	last := words[len(words)-1]
	words[len(words)-1] = pluralWord(last)
	return strings.Join(words, " ")
}

func pluralWord(w string) string {
	lw := strings.ToLower(w)
	switch {
	case strings.HasSuffix(lw, "ss"):
		return w + "es"
	case strings.HasSuffix(lw, "s"):
		// already plural-looking ("Uses", "Pharmacokinetics") or a mass
		// noun ("Status"); leave unchanged
		return w
	case strings.HasSuffix(lw, "x") || strings.HasSuffix(lw, "ch") ||
		strings.HasSuffix(lw, "sh") || strings.HasSuffix(lw, "z"):
		return w + "es"
	case strings.HasSuffix(lw, "y") && len(w) > 1 && !isVowel(lw[len(lw)-2]):
		return w[:len(w)-1] + "ies"
	default:
		return w + "s"
	}
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// Slot renders a pattern placeholder for a concept: "<@Drug>".
func Slot(concept string) string { return "<@" + concept + ">" }

// lowerFirst lowercases the first rune of s.
func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

// lowerLabel lowercases a concept label for use mid-sentence.
func lowerLabel(s string) string { return strings.ToLower(s) }

// pluralVerb de-conjugates a third-person-singular relation name for a
// plural subject: "treats" -> "treat", "causes" -> "cause".
func pluralVerb(v string) string {
	switch v {
	case "is":
		return "are"
	case "has":
		return "have"
	case "does":
		return "do"
	}
	switch {
	case strings.HasSuffix(v, "sses") || strings.HasSuffix(v, "xes") ||
		strings.HasSuffix(v, "ches") || strings.HasSuffix(v, "shes") ||
		strings.HasSuffix(v, "zes"):
		return v[:len(v)-2]
	case strings.HasSuffix(v, "ies"):
		return v[:len(v)-3] + "y"
	case len(v) > 2 && strings.HasSuffix(v, "s") && !strings.HasSuffix(v, "ss"):
		return v[:len(v)-1]
	default:
		return v
	}
}

// titleCase uppercases the first letter of every word.
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}
