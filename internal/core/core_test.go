package core

import (
	"strings"
	"sync"
	"testing"

	"ontoconv/internal/graph"
	"ontoconv/internal/kb"
	"ontoconv/internal/ontogen"
	"ontoconv/internal/ontology"
)

// miniKB builds a compact medical-shaped KB directly (drug, indication,
// treats junction, precaution, risk + union children) so core tests do
// not depend on the medkb package (which itself depends on core).
func miniKB(t *testing.T) (*kb.KB, *ontology.Ontology) {
	t.Helper()
	k := kb.New()
	mk := func(s kb.Schema) *kb.Table {
		tab, err := k.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	drug := mk(kb.Schema{
		Name: "drug",
		Columns: []kb.Column{
			{Name: "drug_id", Type: kb.TextCol, NotNull: true},
			{Name: "name", Type: kb.TextCol, NotNull: true},
			{Name: "route", Type: kb.TextCol},
		},
		PrimaryKey: "drug_id",
	})
	ind := mk(kb.Schema{
		Name: "indication",
		Columns: []kb.Column{
			{Name: "indication_id", Type: kb.TextCol, NotNull: true},
			{Name: "name", Type: kb.TextCol, NotNull: true},
		},
		PrimaryKey: "indication_id",
	})
	treats := mk(kb.Schema{
		Name: "treats",
		Columns: []kb.Column{
			{Name: "t_id", Type: kb.TextCol, NotNull: true},
			{Name: "drug_id", Type: kb.TextCol, NotNull: true},
			{Name: "indication_id", Type: kb.TextCol, NotNull: true},
		},
		PrimaryKey: "t_id",
		ForeignKeys: []kb.ForeignKey{
			{Column: "drug_id", RefTable: "drug", RefColumn: "drug_id"},
			{Column: "indication_id", RefTable: "indication", RefColumn: "indication_id"},
		},
	})
	symptom := mk(kb.Schema{
		Name: "symptom",
		Columns: []kb.Column{
			{Name: "symptom_id", Type: kb.TextCol, NotNull: true},
			{Name: "indication_id", Type: kb.TextCol, NotNull: true},
			{Name: "name", Type: kb.TextCol},
		},
		PrimaryKey:  "symptom_id",
		ForeignKeys: []kb.ForeignKey{{Column: "indication_id", RefTable: "indication", RefColumn: "indication_id"}},
	})
	dosage := mk(kb.Schema{
		Name: "dosage",
		Columns: []kb.Column{
			{Name: "dosage_id", Type: kb.TextCol, NotNull: true},
			{Name: "drug_id", Type: kb.TextCol, NotNull: true},
			{Name: "indication_id", Type: kb.TextCol, NotNull: true},
			{Name: "description", Type: kb.TextCol},
			{Name: "age_group", Type: kb.TextCol},
		},
		PrimaryKey: "dosage_id",
		ForeignKeys: []kb.ForeignKey{
			{Column: "drug_id", RefTable: "drug", RefColumn: "drug_id"},
			{Column: "indication_id", RefTable: "indication", RefColumn: "indication_id"},
		},
	})
	prec := mk(kb.Schema{
		Name: "precaution",
		Columns: []kb.Column{
			{Name: "precaution_id", Type: kb.TextCol, NotNull: true},
			{Name: "drug_id", Type: kb.TextCol, NotNull: true},
			{Name: "category", Type: kb.TextCol},
			{Name: "description", Type: kb.TextCol},
		},
		PrimaryKey:  "precaution_id",
		ForeignKeys: []kb.ForeignKey{{Column: "drug_id", RefTable: "drug", RefColumn: "drug_id"}},
	})
	risk := mk(kb.Schema{
		Name: "risk",
		Columns: []kb.Column{
			{Name: "risk_id", Type: kb.TextCol, NotNull: true},
			{Name: "drug_id", Type: kb.TextCol, NotNull: true},
			{Name: "description", Type: kb.TextCol},
		},
		PrimaryKey:  "risk_id",
		ForeignKeys: []kb.ForeignKey{{Column: "drug_id", RefTable: "drug", RefColumn: "drug_id"}},
	})
	contra := mk(kb.Schema{
		Name: "contra_indication",
		Columns: []kb.Column{
			{Name: "risk_id", Type: kb.TextCol, NotNull: true},
			{Name: "reason", Type: kb.TextCol},
		},
		PrimaryKey:  "risk_id",
		ForeignKeys: []kb.ForeignKey{{Column: "risk_id", RefTable: "risk", RefColumn: "risk_id"}},
	})
	bbw := mk(kb.Schema{
		Name: "black_box_warning",
		Columns: []kb.Column{
			{Name: "risk_id", Type: kb.TextCol, NotNull: true},
			{Name: "warning_text", Type: kb.TextCol},
		},
		PrimaryKey:  "risk_id",
		ForeignKeys: []kb.ForeignKey{{Column: "risk_id", RefTable: "risk", RefColumn: "risk_id"}},
	})

	drugs := []string{"Aspirin", "Ibuprofen", "Tazarotene", "Benazepril"}
	for i, n := range drugs {
		drug.MustInsert(kb.Row{dID(i), n, []string{"ORAL", "TOPICAL"}[i%2]})
	}
	inds := []string{"Fever", "Psoriasis", "Hypertension"}
	for i, n := range inds {
		ind.MustInsert(kb.Row{iID(i), n})
		symptom.MustInsert(kb.Row{"S" + iID(i), iID(i), []string{"Chills", "Itching"}[i%2]})
	}
	pairs := [][2]int{{0, 0}, {1, 0}, {2, 1}, {3, 2}}
	for i, p := range pairs {
		treats.MustInsert(kb.Row{tID(i), dID(p[0]), iID(p[1])})
		for _, ag := range []string{"adult", "pediatric"} {
			dosage.MustInsert(kb.Row{"DS" + tID(i) + ag, dID(p[0]), iID(p[1]), "10 mg daily (" + ag + ")", ag})
		}
	}
	for i := range drugs {
		prec.MustInsert(kb.Row{pID(i), dID(i), []string{"Hepatic", "Renal"}[i%2], "Use with caution."})
		risk.MustInsert(kb.Row{rID(i), dID(i), "A risk."})
		if i%2 == 0 {
			contra.MustInsert(kb.Row{rID(i), "Pregnancy"})
		} else {
			bbw.MustInsert(kb.Row{rID(i), "Serious events"})
		}
	}

	o, err := ontogen.Generate(k, ontogen.DefaultConfig("mini"))
	if err != nil {
		t.Fatal(err)
	}
	// SME: collapse the junction like the MDX ontology does. The test
	// rebuilds it by hand since collapseJunction lives in medkb.
	rebuilt := ontology.New("mini")
	for _, c := range o.Concepts {
		if c.Name == "Treats" {
			continue
		}
		rebuilt.MustAddConcept(c)
	}
	for _, p := range o.ObjectProperties {
		if p.From == "Treats" || p.To == "Treats" {
			continue
		}
		rebuilt.MustAddObjectProperty(p)
	}
	rebuilt.IsARelations = o.IsARelations
	rebuilt.Unions = o.Unions
	rebuilt.MustAddObjectProperty(ontology.ObjectProperty{
		Name: "treats", From: "Drug", To: "Indication", Inverse: "is treated by",
		FromColumn: "drug_id", ToColumn: "indication_id",
		Via: &ontology.JunctionTable{Table: "treats", FromColumn: "drug_id", ToColumn: "indication_id"},
	})
	if err := rebuilt.Validate(); err != nil {
		t.Fatal(err)
	}
	return k, rebuilt
}

func dID(i int) string { return "D" + string(rune('0'+i)) }
func iID(i int) string { return "I" + string(rune('0'+i)) }
func tID(i int) string { return "T" + string(rune('0'+i)) }
func pID(i int) string { return "P" + string(rune('0'+i)) }
func rID(i int) string { return "R" + string(rune('0'+i)) }

var (
	miniOnce sync.Once
	miniK    *kb.KB
	miniO    *ontology.Ontology
)

func miniFixture(t *testing.T) (*kb.KB, *ontology.Ontology) {
	t.Helper()
	miniOnce.Do(func() {
		miniK, miniO = miniKB(t)
	})
	if miniK == nil {
		t.Skip("fixture failed earlier")
	}
	return miniK, miniO
}

// ---------------------------------------------------------------------------
// key concepts
// ---------------------------------------------------------------------------

func TestAnalyzeConceptsKeysAndDependents(t *testing.T) {
	k, o := miniFixture(t)
	an := AnalyzeConcepts(o, k, DefaultKeyConceptConfig())
	hasKey := map[string]bool{}
	for _, kc := range an.KeyConcepts {
		hasKey[kc] = true
	}
	if !hasKey["Drug"] || !hasKey["Indication"] {
		t.Fatalf("key concepts = %v, want Drug and Indication", an.KeyConcepts)
	}
	// Union parent Risk must never be key.
	if hasKey["Risk"] {
		t.Fatalf("union parent Risk must be dependent, keys = %v", an.KeyConcepts)
	}
	deps := an.Dependents["Drug"]
	wantDeps := map[string]bool{"Precaution": true, "Risk": true}
	for d := range wantDeps {
		found := false
		for _, x := range deps {
			if x == d {
				found = true
			}
		}
		if !found {
			t.Errorf("Drug dependents %v missing %s", deps, d)
		}
	}
}

func TestAnalyzeConceptsCentralityExposed(t *testing.T) {
	k, o := miniFixture(t)
	an := AnalyzeConcepts(o, k, DefaultKeyConceptConfig())
	if an.Centrality["Drug"] <= an.Centrality["Precaution"] {
		t.Fatalf("Drug centrality %v should dominate Precaution %v",
			an.Centrality["Drug"], an.Centrality["Precaution"])
	}
}

func TestAnalyzeConceptsMetricConfigurable(t *testing.T) {
	k, o := miniFixture(t)
	for _, m := range []graph.Metric{graph.MetricPageRank, graph.MetricBetweenness, graph.MetricCloseness} {
		cfg := DefaultKeyConceptConfig()
		cfg.Metric = m
		an := AnalyzeConcepts(o, k, cfg)
		if len(an.KeyConcepts) == 0 {
			t.Errorf("metric %s found no key concepts", m)
		}
	}
}

// ---------------------------------------------------------------------------
// patterns
// ---------------------------------------------------------------------------

func analyzed(t *testing.T) (*kb.KB, *ontology.Ontology, ConceptAnalysis) {
	k, o := miniFixture(t)
	return k, o, AnalyzeConcepts(o, k, DefaultKeyConceptConfig())
}

func TestExtractPatternsLookup(t *testing.T) {
	_, o, an := analyzed(t)
	intents := ExtractPatterns(o, an)
	var prec *extractedIntent
	for i := range intents {
		if intents[i].intent.Name == "Precautions of Drug" {
			prec = &intents[i]
		}
	}
	if prec == nil {
		t.Fatal("Precautions of Drug intent missing")
	}
	if prec.intent.Kind != LookupPattern || prec.answer != "Precaution" {
		t.Fatalf("intent = %+v", prec.intent)
	}
	p := prec.intent.Patterns[0]
	if !strings.Contains(p.Text, "<#Precaution>") || !strings.Contains(p.Text, "<@Drug>") {
		t.Fatalf("pattern = %q", p.Text)
	}
}

func TestExtractPatternsUnionAugmentation(t *testing.T) {
	_, o, an := analyzed(t)
	intents := ExtractPatterns(o, an)
	for _, in := range intents {
		if in.intent.Name != "Risks of Drug" {
			continue
		}
		// base pattern + one per union child = 3 (paper Figure 4)
		if len(in.intent.Patterns) != 3 {
			t.Fatalf("union patterns = %d, want 3: %+v", len(in.intent.Patterns), in.intent.Patterns)
		}
		seen := map[string]bool{}
		for _, p := range in.intent.Patterns {
			seen[p.DependentConcept] = true
		}
		if !seen["ContraIndication"] || !seen["BlackBoxWarning"] {
			t.Fatalf("children not covered: %+v", in.intent.Patterns)
		}
		return
	}
	t.Fatal("Risks of Drug intent missing")
}

func TestExtractPatternsDirectRelation(t *testing.T) {
	_, o, an := analyzed(t)
	intents := ExtractPatterns(o, an)
	var fwd, inv *extractedIntent
	for i := range intents {
		switch intents[i].intent.Name {
		case "Drugs That Treats Indication":
			fwd = &intents[i]
		case "Indications Is Treated By Drug":
			inv = &intents[i]
		}
	}
	if fwd == nil || inv == nil {
		names := []string{}
		for _, in := range intents {
			names = append(names, in.intent.Name)
		}
		t.Fatalf("relationship intents missing; have %v", names)
	}
	if fwd.answer != "Drug" || fwd.filters[0].concept != "Indication" {
		t.Fatalf("forward grounding = %+v", fwd)
	}
	if inv.answer != "Indication" || inv.filters[0].concept != "Drug" {
		t.Fatalf("inverse grounding = %+v", inv)
	}
	if !inv.intent.Patterns[0].Inverse {
		t.Fatal("inverse pattern not marked")
	}
}

func TestExtractPatternsDeterministic(t *testing.T) {
	_, o, an := analyzed(t)
	a := ExtractPatterns(o, an)
	b := ExtractPatterns(o, an)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].intent.Name != b[i].intent.Name {
			t.Fatalf("order differs at %d: %q vs %q", i, a[i].intent.Name, b[i].intent.Name)
		}
	}
}

// ---------------------------------------------------------------------------
// text helpers
// ---------------------------------------------------------------------------

func TestPluralize(t *testing.T) {
	cases := map[string]string{
		"Precaution":       "Precautions",
		"Dose Adjustment":  "Dose Adjustments",
		"Efficacy":         "Efficacies",
		"Uses":             "Uses",
		"Pharmacokinetics": "Pharmacokinetics",
		"Status":           "Status",
		"Class":            "Classes",
		"Risk":             "Risks",
		"Brand":            "Brands",
		"":                 "",
	}
	for in, want := range cases {
		if got := Pluralize(in); got != want {
			t.Errorf("Pluralize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPluralVerb(t *testing.T) {
	cases := map[string]string{
		"treats": "treat", "causes": "cause", "has": "have",
		"carries": "carry", "is": "are", "interacts": "interact",
		"passes": "pass",
	}
	for in, want := range cases {
		if got := pluralVerb(in); got != want {
			t.Errorf("pluralVerb(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSlotAndTitle(t *testing.T) {
	if Slot("Drug") != "<@Drug>" {
		t.Fatal("Slot format")
	}
	if titleCase("is treated by") != "Is Treated By" {
		t.Fatalf("titleCase = %q", titleCase("is treated by"))
	}
	if lowerFirst("Drug Name") != "drug Name" {
		t.Fatal("lowerFirst")
	}
}
