package core

import (
	"sort"

	"ontoconv/internal/kb"
	"ontoconv/internal/ontogen"
	"ontoconv/internal/ontology"
)

// EntityConfig tunes entity extraction (§4.5).
type EntityConfig struct {
	// ConceptSynonyms maps concept name -> surface synonyms (Table 2).
	ConceptSynonyms map[string][]string
	// InstanceSynonyms maps concept -> instance value -> synonyms
	// (brand names, base+salt descriptions, §6.1).
	InstanceSynonyms map[string]map[string][]string
	// ValueSynonyms maps value-entity name -> value -> synonyms
	// ("pediatric" -> children, kids, …).
	ValueSynonyms map[string]map[string][]string
	// ValueEntityMaxValues caps the distinct count for a categorical
	// property to become a value entity (e.g. age_group with 2).
	ValueEntityMaxValues int
	// InstanceEntityConcepts forces instance extraction for these
	// concepts even when their display property is not categorical.
	InstanceEntityConcepts []string
}

// ExtractEntities populates the conversation-space entities (§4.5):
//  1. every ontology concept as a value of the "Concepts" entity, plus a
//     grouping entity for each union/inheritance parent (Table 1);
//  2. instance entities for key concepts and categorical dependent
//     concepts, values pulled from the KB;
//  3. value entities for small categorical data properties;
//  4. synonyms merged in from the SME dictionaries.
func ExtractEntities(o *ontology.Ontology, base *kb.KB, an ConceptAnalysis, cfg EntityConfig) []EntityDef {
	var defs []EntityDef

	// 1a. all concepts under one "Concepts" entity. Surface forms cover
	// the label, its plural (Table 1 lists "Precautions"), and the SME
	// synonym dictionary.
	conceptDef := EntityDef{Name: "Concepts", Kind: "concept"}
	for _, c := range o.Concepts {
		v := EntityValue{Value: c.Name}
		label := c.Label
		if label == "" {
			label = c.Name
		}
		if label != c.Name {
			v.Synonyms = append(v.Synonyms, label)
		}
		if pl := Pluralize(label); pl != label && pl != c.Name {
			v.Synonyms = append(v.Synonyms, pl)
		}
		v.Synonyms = append(v.Synonyms, cfg.ConceptSynonyms[c.Name]...)
		conceptDef.Values = append(conceptDef.Values, v)
	}
	defs = append(defs, conceptDef)

	// 1b. grouping entities for union and inheritance parents
	for _, u := range o.Unions {
		def := EntityDef{Name: u.Parent, Kind: "concept", Concept: u.Parent}
		for _, ch := range u.Children {
			def.Values = append(def.Values, EntityValue{Value: ch, Synonyms: cfg.ConceptSynonyms[ch]})
		}
		defs = append(defs, def)
	}
	isUnionParent := map[string]bool{}
	for _, u := range o.Unions {
		isUnionParent[u.Parent] = true
	}
	parents := map[string][]string{}
	for _, r := range o.IsARelations {
		parents[r.Parent] = append(parents[r.Parent], r.Child)
	}
	parentNames := make([]string, 0, len(parents))
	for p := range parents {
		parentNames = append(parentNames, p)
	}
	sort.Strings(parentNames)
	for _, p := range parentNames {
		if isUnionParent[p] {
			continue // already covered by the union grouping
		}
		def := EntityDef{Name: p, Kind: "concept", Concept: p}
		children := parents[p]
		sort.Strings(children)
		for _, ch := range children {
			def.Values = append(def.Values, EntityValue{Value: ch, Synonyms: cfg.ConceptSynonyms[ch]})
		}
		defs = append(defs, def)
	}

	// 2. instance entities
	forced := map[string]bool{}
	for _, c := range cfg.InstanceEntityConcepts {
		forced[c] = true
	}
	candidates := append([]string(nil), an.KeyConcepts...)
	candidates = append(candidates, an.AllDependents...)
	seenInstanceDef := map[string]bool{}
	for _, name := range candidates {
		if seenInstanceDef[name] {
			continue
		}
		seenInstanceDef[name] = true
		c := o.Concept(name)
		if c == nil || c.Table == "" || c.DisplayProperty == "" {
			continue
		}
		isKeyC := false
		for _, k := range an.KeyConcepts {
			if k == name {
				isKeyC = true
			}
		}
		dp := o.Property(name, c.DisplayProperty)
		if !isKeyC && !forced[name] && (dp == nil || !dp.Categorical) {
			continue
		}
		t := base.Table(c.Table)
		if t == nil {
			continue
		}
		def := EntityDef{Name: name, Kind: "instance", Concept: name}
		for _, v := range t.DistinctStrings(c.DisplayProperty) {
			def.Values = append(def.Values, EntityValue{Value: v, Synonyms: cfg.InstanceSynonyms[name][v]})
		}
		if len(def.Values) > 0 {
			defs = append(defs, def)
		}
	}

	// 3. value entities from small categorical properties
	maxVals := cfg.ValueEntityMaxValues
	if maxVals <= 0 {
		maxVals = 10
	}
	valueDefs := map[string]*EntityDef{}
	var valueOrder []string
	conceptsOfInterest := append(append([]string(nil), an.KeyConcepts...), an.AllDependents...)
	seenConcept := map[string]bool{}
	for _, name := range conceptsOfInterest {
		if seenConcept[name] {
			continue
		}
		seenConcept[name] = true
		c := o.Concept(name)
		if c == nil || c.Table == "" {
			continue
		}
		t := base.Table(c.Table)
		if t == nil {
			continue
		}
		for _, p := range c.DataProperties {
			if !p.Categorical || p.Name == c.DisplayProperty {
				continue
			}
			vals := t.DistinctStrings(p.Name)
			if len(vals) < 2 || len(vals) > maxVals {
				continue
			}
			defName := ontogen.ConceptName(p.Name)
			def, ok := valueDefs[defName]
			if !ok {
				def = &EntityDef{Name: defName, Kind: "value", Concept: name, Property: p.Name}
				valueDefs[defName] = def
				valueOrder = append(valueOrder, defName)
			}
			existing := map[string]bool{}
			for _, v := range def.Values {
				existing[v.Value] = true
			}
			for _, v := range vals {
				if !existing[v] {
					def.Values = append(def.Values, EntityValue{Value: v, Synonyms: cfg.ValueSynonyms[defName][v]})
				}
			}
		}
	}
	sort.Strings(valueOrder)
	for _, n := range valueOrder {
		def := valueDefs[n]
		sort.Slice(def.Values, func(i, j int) bool { return def.Values[i].Value < def.Values[j].Value })
		defs = append(defs, *def)
	}
	return defs
}
