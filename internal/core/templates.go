package core

import (
	"fmt"
	"strings"

	"ontoconv/internal/nlq"
	"ontoconv/internal/ontology"
)

// buildTemplate generates the structured query template for one extracted
// intent via the NLQ service (§4.4) and wires up the intent's required
// entity specs with elicitation prompts (Table 3).
func buildTemplate(svc *nlq.Service, o *ontology.Ontology, in *extractedIntent, valueEntityName func(concept, property string) string) error {
	req := nlq.Request{Answer: in.answer, Distinct: true}
	// Relationship answers carry the relation's qualifying properties
	// (efficacy of treats) so the agent can group the result list.
	if in.intent.Kind == DirectRelationPattern {
		req.IncludeRelationProps = true
	}
	for _, f := range in.filters {
		param := f.concept
		req.Filters = append(req.Filters, nlq.Filter{
			Concept:  f.concept,
			Param:    param,
			PathHint: f.path,
		})
		spec := EntitySpec{
			Entity:      f.concept,
			Param:       param,
			Elicitation: elicitationFor(o, f.concept),
		}
		if f.required {
			in.intent.Required = append(in.intent.Required, spec)
		} else {
			in.intent.Optional = append(in.intent.Optional, spec)
		}
	}
	for _, vf := range in.valueFilters {
		entity := valueEntityName(vf.Concept, vf.Property)
		req.Filters = append(req.Filters, nlq.Filter{
			Concept:  vf.Concept,
			Property: vf.Property,
			Param:    entity,
		})
		spec := EntitySpec{
			Entity:      entity,
			Param:       entity,
			Elicitation: vf.Elicitation,
			Default:     vf.Default,
		}
		if vf.Required {
			in.intent.Required = append(in.intent.Required, spec)
		} else {
			in.intent.Optional = append(in.intent.Optional, spec)
		}
	}
	tpl, err := svc.BuildTemplate(req)
	if err != nil {
		return fmt.Errorf("core: template for intent %q: %w", in.intent.Name, err)
	}
	in.intent.Template = tpl
	return nil
}

// elicitationFor renders the agent prompt for a missing required concept
// entity: "For which drug?".
func elicitationFor(o *ontology.Ontology, concept string) string {
	c := o.Concept(concept)
	label := concept
	if c != nil && c.Label != "" {
		label = c.Label
	}
	return fmt.Sprintf("For which %s?", strings.ToLower(label))
}
