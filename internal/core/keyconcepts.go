package core

import (
	"sort"

	"ontoconv/internal/graph"
	"ontoconv/internal/kb"
	"ontoconv/internal/ontology"
)

// KeyConceptConfig tunes key/dependent-concept discovery (§4.2.1).
type KeyConceptConfig struct {
	// Metric selects the centrality measure run over the ontology graph.
	Metric graph.Metric
	// MinKeep/MaxKeep bound the statistical-segregation cut.
	MinKeep, MaxKeep int
	// DependentMaxDistinct qualifies a neighbor as a dependent concept
	// when its table has at most this many rows per key instance — i.e.
	// it reads like a complex attribute rather than an entity in its own
	// right — or when it has at least one categorical data property.
	DependentMaxRowsPerKey float64
	// UseSpecialEdges includes isA and unionOf edges in the centrality
	// graph. Off by default: subtype and union-member concepts are
	// alternative representations of their parent, and counting those
	// edges inflates the parent's centrality (the paper's Figure 2 marks
	// union/inheritance parents as *dependent* concepts with special
	// semantics, not key concepts).
	UseSpecialEdges bool
	// AllowSpecialParents lets union and isA parents become key
	// concepts. Off by default, for the same Figure 2 reason.
	AllowSpecialParents bool
}

// DefaultKeyConceptConfig mirrors the paper's setup: degree centrality
// with a small key set.
func DefaultKeyConceptConfig() KeyConceptConfig {
	return KeyConceptConfig{
		Metric:                 graph.MetricDegree,
		MinKeep:                2,
		MaxKeep:                6,
		DependentMaxRowsPerKey: 16,
	}
}

// ConceptAnalysis is the outcome of key/dependent discovery.
type ConceptAnalysis struct {
	KeyConcepts []string
	// Dependents maps each key concept to its dependent concepts, sorted.
	Dependents map[string][]string
	// AllDependents is the union of dependents, sorted.
	AllDependents []string
	// Centrality holds the raw scores for diagnostics/ablation.
	Centrality graph.Centrality
}

// AnalyzeConcepts runs centrality analysis plus statistical segregation to
// identify key concepts, then walks each key concept's immediate
// neighborhood, qualifying dependent concepts via KB data statistics.
func AnalyzeConcepts(o *ontology.Ontology, base *kb.KB, cfg KeyConceptConfig) ConceptAnalysis {
	g := o.RelationGraph()
	if cfg.UseSpecialEdges {
		g = o.Graph()
	}
	cent := graph.Compute(g, cfg.Metric)
	if !cfg.AllowSpecialParents {
		// Union and inheritance parents are dependent concepts with
		// special semantics (Figure 2), never key concepts.
		for _, u := range o.Unions {
			delete(cent, u.Parent)
		}
		for _, r := range o.IsARelations {
			delete(cent, r.Parent)
		}
	}
	keys := graph.Segregate(cent, cfg.MinKeep, cfg.MaxKeep)
	sort.Strings(keys)
	isKey := make(map[string]bool, len(keys))
	for _, k := range keys {
		isKey[k] = true
	}

	an := ConceptAnalysis{KeyConcepts: keys, Dependents: make(map[string][]string), Centrality: cent}
	allDeps := map[string]bool{}
	for _, key := range keys {
		var deps []string
		for _, nb := range o.Neighborhood(key) {
			if isKey[nb] {
				continue
			}
			if qualifiesAsDependent(o, base, key, nb, cfg) {
				deps = append(deps, nb)
				allDeps[nb] = true
			}
		}
		sort.Strings(deps)
		an.Dependents[key] = deps
	}
	for d := range allDeps {
		an.AllDependents = append(an.AllDependents, d)
	}
	sort.Strings(an.AllDependents)
	return an
}

// qualifiesAsDependent applies the data-statistics test of §4.2.1: the
// neighbor "can help describe the properties or attributes of the key
// concept" — it has a categorical data property, or its instances are few
// relative to the key concept's (a complex attribute, not a standalone
// entity).
func qualifiesAsDependent(o *ontology.Ontology, base *kb.KB, key, neighbor string, cfg KeyConceptConfig) bool {
	c := o.Concept(neighbor)
	if c == nil {
		return false
	}
	for _, dp := range c.DataProperties {
		if dp.Categorical {
			return true
		}
	}
	if base == nil || c.Table == "" {
		return false
	}
	nt := base.Table(c.Table)
	kc := o.Concept(key)
	if nt == nil || kc == nil || kc.Table == "" {
		return false
	}
	kt := base.Table(kc.Table)
	if kt == nil || kt.Len() == 0 {
		return false
	}
	ratio := float64(nt.Len()) / float64(kt.Len())
	return ratio <= cfg.DependentMaxRowsPerKey
}
