package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"ontoconv/internal/kb"
	"ontoconv/internal/ontology"
	"ontoconv/internal/par"
)

// Phrases holds the initial-phrase paraphrase lists per pattern kind
// (§4.3.1: "The initial phrases are provided to the training example
// generation process as a list, one for each type of query pattern").
type Phrases struct {
	Lookup   []string
	Relation []string
	Indirect []string
}

// DefaultPhrases returns the paraphrase lists used by the experiments,
// seeded with the paper's examples ("Show me", "Tell me about", "Give me").
func DefaultPhrases() Phrases {
	return Phrases{
		Lookup: []string{
			"Show me", "Tell me about", "Give me", "What are", "List",
			"Find", "I want to see", "Display", "Can you show me", "I need",
			"Look up", "Get me",
		},
		Relation: []string{
			"What", "Which", "Show me", "Tell me", "List", "Find", "Give me",
		},
		Indirect: []string{
			"Give me", "Show me", "What is", "Tell me", "Find", "I need",
		},
	}
}

// instanceSource provides KB instance values for a concept's display
// property, used to fill pattern slots.
type instanceSource struct {
	base *kb.KB
	onto *ontology.Ontology
	// cache concept -> distinct display values; mu makes the source safe
	// to share across the per-intent generation workers.
	mu    sync.Mutex
	cache map[string][]string
}

func newInstanceSource(base *kb.KB, o *ontology.Ontology) *instanceSource {
	return &instanceSource{base: base, onto: o, cache: map[string][]string{}}
}

// values returns the distinct display values of the concept's instances.
func (s *instanceSource) values(concept string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.cache[concept]; ok {
		return v
	}
	var out []string
	if c := s.onto.Concept(concept); c != nil && c.Table != "" && c.DisplayProperty != "" {
		if t := s.base.Table(c.Table); t != nil {
			out = t.DistinctStrings(c.DisplayProperty)
		}
	}
	s.cache[concept] = out
	return out
}

// GenerateExamples fills each intent's Examples list (§4.3.1): for every
// pattern, instance slots (<@Concept>) are replaced with KB instance
// values, concept-surface slots (<#Concept>) with the concept's label,
// plural, or a Table 2 synonym, and the pattern's lead-in with paraphrases
// from the kind's phrase list. perIntent bounds the examples generated per
// intent.
//
// Generation is deterministic given seed at any GOMAXPROCS: each intent
// draws from its own stream seeded by (seed, intent name), so intents fan
// out across cores without observing each other's draw counts, and every
// worker writes only its own intent's slot.
func GenerateExamples(intents []extractedIntent, base *kb.KB, o *ontology.Ontology, ph Phrases, surfaces map[string][]string, perIntent int, seed int64) {
	src := newInstanceSource(base, o)
	par.Do(len(intents), func(i int) {
		in := &intents[i]
		rng := rand.New(rand.NewSource(deriveSeed(seed, in.intent.Name)))
		gen := &exampleGen{src: src, surfaces: surfaces, rng: rng}
		var texts []string
		seen := map[string]bool{}
		add := func(t string) {
			t = strings.TrimSpace(t)
			if t != "" && !seen[t] {
				seen[t] = true
				texts = append(texts, t)
			}
		}
		budgetPerPattern := perIntent / len(in.intent.Patterns)
		if budgetPerPattern < 1 {
			budgetPerPattern = 1
		}
		for _, p := range in.intent.Patterns {
			phraseList := phrasesFor(ph, in.intent.Kind)
			for k := 0; k < budgetPerPattern; k++ {
				text, ok := gen.instantiate(p.Text)
				if !ok {
					break
				}
				add(rephrase(text, phraseList, rng))
			}
		}
		in.intent.Examples = append(in.intent.Examples, texts...)
	})
}

// deriveSeed decouples one intent's random stream from the shared seed by
// folding in an FNV-1a hash of the intent name. Intent names are unique
// within a space, so streams never collide, and the derivation depends on
// nothing but (seed, name) — not on generation order.
func deriveSeed(seed int64, name string) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return seed ^ int64(h)
}

// ConceptSurfaces builds the surface-form lists used to vary the concept
// wording of training examples: the concept's label, its plural, and the
// SME synonym dictionary entries.
func ConceptSurfaces(o *ontology.Ontology, synonyms map[string][]string) map[string][]string {
	out := make(map[string][]string, len(o.Concepts))
	for _, c := range o.Concepts {
		label := c.Label
		if label == "" {
			label = c.Name
		}
		list := []string{label}
		if pl := Pluralize(label); pl != label {
			list = append(list, pl)
		}
		list = append(list, synonyms[c.Name]...)
		out[c.Name] = list
	}
	return out
}

// exampleGen fills pattern placeholders.
type exampleGen struct {
	src      *instanceSource
	surfaces map[string][]string
	rng      *rand.Rand
}

// instantiate replaces every <@Concept> slot with a random instance value
// and every <#Concept> slot with a random concept surface form.
func (g *exampleGen) instantiate(pattern string) (string, bool) {
	out := pattern
	for {
		ai := strings.Index(out, "<@")
		ci := strings.Index(out, "<#")
		start, instance := ai, true
		if start < 0 || (ci >= 0 && ci < start) {
			start, instance = ci, false
		}
		if start < 0 {
			return out, true
		}
		end := strings.Index(out[start:], ">")
		if end < 0 {
			return out, false
		}
		concept := out[start+2 : start+end]
		var v string
		if instance {
			vals := g.src.values(concept)
			if len(vals) == 0 {
				return "", false
			}
			v = vals[g.rng.Intn(len(vals))]
		} else {
			ss := g.surfaces[concept]
			if len(ss) == 0 {
				v = concept
			} else {
				v = ss[g.rng.Intn(len(ss))]
			}
		}
		out = out[:start] + v + out[start+end+1:]
	}
}

func phrasesFor(ph Phrases, kind PatternKind) []string {
	switch kind {
	case DirectRelationPattern:
		return ph.Relation
	case IndirectRelationPattern:
		return ph.Indirect
	default:
		return ph.Lookup
	}
}

// rephrase swaps the pattern's lead-in phrase for a random paraphrase and
// applies small surface variations (question mark, "the" dropping).
func rephrase(text string, phrases []string, rng *rand.Rand) string {
	out := text
	// Replace a known lead-in with a random one.
	leads := []string{"Show me the", "Show me", "Give me the", "Give me", "What"}
	for _, lead := range leads {
		if strings.HasPrefix(out, lead+" ") {
			repl := phrases[rng.Intn(len(phrases))]
			rest := strings.TrimPrefix(out, lead+" ")
			// keep a "the" for lead-ins that read better with it
			if strings.HasSuffix(lead, "the") && !strings.HasPrefix(rest, "the ") {
				switch repl {
				case "What are", "List", "Find", "Look up", "Get me":
					out = repl + " the " + rest
				default:
					out = repl + " the " + rest
				}
			} else {
				out = repl + " " + rest
			}
			break
		}
	}
	// Randomly vary the trailing question mark.
	out = strings.TrimSuffix(out, "?")
	if rng.Intn(2) == 0 {
		out += "?"
	}
	// Occasionally drop a leading "the" after the phrase for keyword-ish
	// variants.
	if rng.Intn(4) == 0 {
		out = strings.Replace(out, " the ", " ", 1)
	}
	return out
}

// GenerateGeneralEntityExamples creates the examples for an entity-only
// intent such as DRUG_GENERAL (§6.1): bare instance names.
func GenerateGeneralEntityExamples(concept string, base *kb.KB, o *ontology.Ontology, n int, seed int64) []string {
	src := newInstanceSource(base, o)
	vals := src.values(concept)
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var out []string
	for len(out) < n && len(seen) < len(vals) {
		v := vals[rng.Intn(len(vals))]
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// AugmentFromPriorQueries appends SME-labelled prior user queries to an
// intent's training set (§4.3.2, Figure 8). Unknown intents are an error.
func AugmentFromPriorQueries(space *Space, byIntent map[string][]string) error {
	names := make([]string, 0, len(byIntent))
	for name := range byIntent {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		examples := byIntent[name]
		in := space.Intent(name)
		if in == nil {
			return fmt.Errorf("core: augment: unknown intent %q", name)
		}
		seen := map[string]bool{}
		for _, ex := range in.Examples {
			seen[ex] = true
		}
		for _, ex := range examples {
			if !seen[ex] {
				seen[ex] = true
				in.Examples = append(in.Examples, ex)
			}
		}
	}
	return nil
}
