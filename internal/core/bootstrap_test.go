package core

import (
	"strings"
	"testing"
)

func bootstrapped(t *testing.T) *Space {
	t.Helper()
	k, o := miniFixture(t)
	cfg := DefaultConfig()
	cfg.Entities.ConceptSynonyms = map[string][]string{
		"Precaution": {"caution", "safe to give"},
	}
	cfg.Feedback = Feedback{
		GeneralEntityConcepts: []string{"Drug"},
		ValueFilters: map[string][]ValueFilter{
			"Drug Dosage for Indication": {{
				Concept: "Dosage", Property: "age_group",
				Elicitation: "Adult or pediatric?", Required: true,
			}},
		},
	}
	space, err := Bootstrap(o, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

func TestBootstrapIntentInventory(t *testing.T) {
	space := bootstrapped(t)
	counts := space.CountByKind()
	if counts[LookupPattern] == 0 || counts[DirectRelationPattern] != 2 ||
		counts[IndirectRelationPattern] == 0 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[ConversationPattern] != 14 {
		t.Fatalf("conversation management = %d, want 14 (§6.1)", counts[ConversationPattern])
	}
	if counts[GeneralEntityPattern] != 1 {
		t.Fatalf("general intents = %d", counts[GeneralEntityPattern])
	}
	if space.Intent("DRUG_GENERAL") == nil {
		t.Fatal("DRUG_GENERAL missing")
	}
}

func TestBootstrapTrainingExamples(t *testing.T) {
	space := bootstrapped(t)
	in := space.Intent("Precautions of Drug")
	if in == nil {
		t.Fatal("intent missing")
	}
	if len(in.Examples) == 0 {
		t.Fatal("no training examples")
	}
	seen := map[string]bool{}
	hasSynonymVariant := false
	for _, ex := range in.Examples {
		if seen[ex] {
			t.Fatalf("duplicate example %q", ex)
		}
		seen[ex] = true
		if strings.Contains(ex, "<@") || strings.Contains(ex, "<#") {
			t.Fatalf("unexpanded placeholder in %q", ex)
		}
		low := strings.ToLower(ex)
		if strings.Contains(low, "caution") && !strings.Contains(low, "precaution") {
			hasSynonymVariant = true
		}
		// every example names a drug instance
		hasDrug := false
		for _, d := range []string{"Aspirin", "Ibuprofen", "Tazarotene", "Benazepril"} {
			if strings.Contains(ex, d) {
				hasDrug = true
			}
		}
		if !hasDrug {
			t.Fatalf("example %q lacks an instance value", ex)
		}
	}
	if !hasSynonymVariant {
		t.Error("no Table-2 synonym variant among examples; classifier robustness depends on them")
	}
}

func TestBootstrapTemplates(t *testing.T) {
	space := bootstrapped(t)
	for _, in := range space.Intents {
		switch in.Kind {
		case ConversationPattern, GeneralEntityPattern:
			if in.Template != nil {
				t.Errorf("%s should have no template", in.Name)
			}
			continue
		}
		if in.Template == nil {
			t.Errorf("%s has no template", in.Name)
			continue
		}
		// every required entity param appears in the template
		params := map[string]bool{}
		for _, p := range in.Template.Params {
			params[p] = true
		}
		for _, r := range in.Required {
			if !params[r.Param] {
				t.Errorf("%s: required param %q missing from template %s", in.Name, r.Param, in.Template.SQL)
			}
		}
	}
}

func TestBootstrapValueFilterBecomesRequiredEntity(t *testing.T) {
	space := bootstrapped(t)
	in := space.Intent("Drug Dosage for Indication")
	if in == nil {
		t.Fatal("indirect intent missing")
	}
	found := false
	for _, r := range in.Required {
		if r.Entity == "AgeGroup" && r.Elicitation == "Adult or pediatric?" {
			found = true
		}
	}
	if !found {
		t.Fatalf("AgeGroup requirement missing: %+v", in.Required)
	}
}

func TestBootstrapEntities(t *testing.T) {
	space := bootstrapped(t)
	concepts := space.Entity("Concepts")
	if concepts == nil || len(concepts.Values) == 0 {
		t.Fatal("Concepts entity missing")
	}
	// union grouping entity (Table 1 "Risk" row)
	risk := space.Entity("Risk")
	if risk == nil || len(risk.Values) != 2 {
		t.Fatalf("Risk grouping entity = %+v", risk)
	}
	// instance entity for the key concept
	drug := space.Entity("Drug")
	if drug == nil || drug.Kind != "instance" || len(drug.Values) != 4 {
		t.Fatalf("Drug entity = %+v", drug)
	}
	// value entity from the categorical age_group property
	ag := space.Entity("AgeGroup")
	if ag == nil || ag.Kind != "value" || len(ag.Values) != 2 {
		t.Fatalf("AgeGroup entity = %+v", ag)
	}
}

func TestBootstrapCompletionMeta(t *testing.T) {
	space := bootstrapped(t)
	deps := space.Completion.DependentsOfKey["Drug"]
	if len(deps) == 0 {
		t.Fatal("no dependents recorded for Drug")
	}
	keys := space.Completion.KeysOfDependent["Precaution"]
	if len(keys) != 1 || keys[0] != "Drug" {
		t.Fatalf("KeysOfDependent[Precaution] = %v", keys)
	}
}

func TestBootstrapGeneralEntityExamplesAreBareNames(t *testing.T) {
	space := bootstrapped(t)
	in := space.Intent("DRUG_GENERAL")
	for _, ex := range in.Examples {
		if strings.Contains(ex, " the ") || strings.Contains(ex, "?") {
			t.Fatalf("general example %q is not a bare entity", ex)
		}
	}
	if len(in.Examples) != 4 { // only 4 drugs exist
		t.Fatalf("examples = %v", in.Examples)
	}
}

func TestBootstrapErrors(t *testing.T) {
	k, o := miniFixture(t)
	cfg := DefaultConfig()
	cfg.Feedback.GeneralEntityConcepts = []string{"Ghost"}
	if _, err := Bootstrap(o, k, cfg); err == nil {
		t.Fatal("unknown general-entity concept must error")
	}
	cfg = DefaultConfig()
	cfg.Feedback.Prune = []string{"No Such Intent"}
	if _, err := Bootstrap(o, k, cfg); err == nil {
		t.Fatal("pruning unknown intent must error")
	}
	cfg = DefaultConfig()
	cfg.Feedback.Rename = map[string]string{"Ghost": "New"}
	if _, err := Bootstrap(o, k, cfg); err == nil {
		t.Fatal("renaming unknown intent must error")
	}
	cfg = DefaultConfig()
	cfg.Feedback.PriorQueries = map[string][]string{"Ghost": {"x"}}
	if _, err := Bootstrap(o, k, cfg); err == nil {
		t.Fatal("augmenting unknown intent must error")
	}
	cfg = DefaultConfig()
	cfg.Feedback.ValueFilters = map[string][]ValueFilter{"Ghost": {{Concept: "Dosage", Property: "age_group"}}}
	if _, err := Bootstrap(o, k, cfg); err == nil {
		t.Fatal("value filter on unknown intent must error")
	}
}

func TestSMEPruneAndRename(t *testing.T) {
	k, o := miniFixture(t)
	cfg := DefaultConfig()
	cfg.Feedback = Feedback{
		Prune:  []string{"Risks of Drug"},
		Rename: map[string]string{"Precautions of Drug": "Safety Lookup"},
	}
	space, err := Bootstrap(o, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if space.Intent("Risks of Drug") != nil {
		t.Fatal("pruned intent still present")
	}
	if space.Intent("Safety Lookup") == nil || space.Intent("Precautions of Drug") != nil {
		t.Fatal("rename not applied")
	}
}

func TestSMERenameCollision(t *testing.T) {
	k, o := miniFixture(t)
	cfg := DefaultConfig()
	cfg.Feedback.Rename = map[string]string{"Precautions of Drug": "Risks of Drug"}
	if _, err := Bootstrap(o, k, cfg); err == nil {
		t.Fatal("rename collision must error")
	}
}

func TestSMEPriorQueriesAugment(t *testing.T) {
	k, o := miniFixture(t)
	cfg := DefaultConfig()
	cfg.Feedback.PriorQueries = map[string][]string{
		"Precautions of Drug": {"is it safe to give aspirin", "is it safe to give aspirin"},
	}
	space, err := Bootstrap(o, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := space.Intent("Precautions of Drug")
	n := 0
	for _, ex := range in.Examples {
		if ex == "is it safe to give aspirin" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("augmented example appears %d times, want deduped 1", n)
	}
}

func TestSMEExpectedPattern(t *testing.T) {
	k, o := miniFixture(t)
	cfg := DefaultConfig()
	cfg.Feedback.ExpectedPatterns = []SMEPattern{
		{Intent: "Precautions of Drug", Text: "Is <@Drug> safe to give?"},
	}
	space, err := Bootstrap(o, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := space.Intent("Precautions of Drug")
	found := false
	for _, p := range in.Patterns {
		if p.FromSME {
			found = true
		}
	}
	if !found {
		t.Fatal("SME pattern not recorded")
	}
	// and it produced examples
	hasSafe := false
	for _, ex := range in.Examples {
		if strings.Contains(ex, "safe to give") {
			hasSafe = true
		}
	}
	if !hasSafe {
		t.Fatal("SME pattern generated no examples")
	}
}

func TestConceptSurfaces(t *testing.T) {
	_, o := miniFixture(t)
	surfaces := ConceptSurfaces(o, map[string][]string{"Precaution": {"caution"}})
	got := surfaces["Precaution"]
	want := map[string]bool{"Precaution": true, "Precautions": true, "caution": true}
	if len(got) != len(want) {
		t.Fatalf("surfaces = %v", got)
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("unexpected surface %q", s)
		}
	}
}

func TestSpaceHelpers(t *testing.T) {
	space := bootstrapped(t)
	names := space.IntentNames()
	if len(names) != len(space.Intents) {
		t.Fatal("IntentNames length")
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("IntentNames not sorted")
		}
	}
	if space.Intent("Ghost") != nil || space.Entity("Ghost") != nil {
		t.Fatal("missing lookups must be nil")
	}
	if len(space.AllExamples()) == 0 {
		t.Fatal("AllExamples empty")
	}
}
