// Package core implements the paper's primary contribution: bootstrapping
// a conversation space — intents, training examples, entities with
// synonyms, query-completion metadata, and structured query templates —
// from a domain ontology and the instance data of the underlying knowledge
// base (paper §4), refined by SME feedback (§4.2.2, §4.3.2).
package core

import (
	"sort"

	"ontoconv/internal/sqlx"
)

// PatternKind enumerates the query-pattern families of §4.2.1.
type PatternKind string

// The pattern kinds extracted from the ontology, plus the two intent
// classes added around them (conversation management, §5.2 step 3, and
// entity-only "general" intents, §6.1).
const (
	LookupPattern           PatternKind = "lookup"
	DirectRelationPattern   PatternKind = "relationship-direct"
	IndirectRelationPattern PatternKind = "relationship-indirect"
	GeneralEntityPattern    PatternKind = "general-entity"
	ConversationPattern     PatternKind = "conversation-management"
)

// QueryPattern is one extracted pattern: utterance text with <@Concept>
// slots plus the ontology elements it is grounded in.
type QueryPattern struct {
	// Text is the pattern with placeholders, e.g.
	// "Show me the Precautions for <@Drug>?".
	Text string `json:"text"`
	// KeyConcept is the key concept whose instance fills the slot.
	KeyConcept string `json:"keyConcept,omitempty"`
	// DependentConcept is the lookup target (lookup patterns).
	DependentConcept string `json:"dependentConcept,omitempty"`
	// Relation names the object property (relationship patterns).
	Relation string `json:"relation,omitempty"`
	// Inverse marks the inverse-direction variant of a relationship.
	Inverse bool `json:"inverse,omitempty"`
	// OtherConcept is the second key concept (relationship patterns).
	OtherConcept string `json:"otherConcept,omitempty"`
	// Intermediate is the in-between concept (indirect patterns).
	Intermediate string `json:"intermediate,omitempty"`
	// FromSME marks patterns contributed by SME annotations rather than
	// extracted from the ontology structure.
	FromSME bool `json:"fromSME,omitempty"`
}

// EntitySpec names an entity the dialogue needs for an intent and how to
// elicit it (paper Table 3 columns "Required Entities" / "Agent
// Elicitation").
type EntitySpec struct {
	// Entity is the entity type ("Drug", "Indication", "AgeGroup").
	Entity string `json:"entity"`
	// Param is the query-template parameter this entity binds.
	Param string `json:"param"`
	// Elicitation is the agent prompt used when the entity is missing.
	Elicitation string `json:"elicitation,omitempty"`
	// Default, when non-empty, is assumed instead of eliciting.
	Default string `json:"default,omitempty"`
}

// Intent is one conversation-space intent with its grounded patterns,
// generated training examples and structured query template (§4.2-§4.4).
type Intent struct {
	Name     string         `json:"name"`
	Kind     PatternKind    `json:"kind"`
	Patterns []QueryPattern `json:"patterns"`
	// Examples are the labelled training utterances, bootstrap-generated
	// plus SME-augmented.
	Examples []string `json:"examples"`
	// Template is the parameterized structured query (nil for
	// conversation-management intents).
	Template *sqlx.Template `json:"template,omitempty"`
	// Required and Optional entities drive slot filling (Table 3).
	Required []EntitySpec `json:"required,omitempty"`
	Optional []EntitySpec `json:"optional,omitempty"`
	// Response is the agent response template; {{entity:X}} interpolates
	// a bound entity, {{results}} the KB answer.
	Response string `json:"response,omitempty"`
	// AnswerConcept is the concept whose instances the answer lists.
	AnswerConcept string `json:"answerConcept,omitempty"`
}

// EntityValue is one dictionary value with its synonyms (Table 1/2).
type EntityValue struct {
	Value    string   `json:"value"`
	Synonyms []string `json:"synonyms,omitempty"`
}

// EntityDef defines one entity type for the conversation space.
type EntityDef struct {
	// Name is the entity type ("Drug", "Concepts", "AgeGroup", …).
	Name string `json:"name"`
	// Kind is "concept" (ontology concept names as values), "instance"
	// (KB instance data), or "value" (categorical property values).
	Kind string `json:"kind"`
	// Concept records the backing ontology concept, when applicable.
	Concept string `json:"concept,omitempty"`
	// Property records the backing data property for value entities.
	Property string        `json:"property,omitempty"`
	Values   []EntityValue `json:"values"`
}

// CompletionMeta is the query-completion metadata of §4.2.1: for each key
// concept the dependent concepts describing it, and for each dependent
// concept the key concepts it belongs to. The dialogue tree uses it to
// prompt completion of partial queries ("Show me Precautions" -> "For
// which drug?").
type CompletionMeta struct {
	DependentsOfKey map[string][]string `json:"dependentsOfKey"`
	KeysOfDependent map[string][]string `json:"keysOfDependent"`
}

// Space is the bootstrapped conversation space (§4): the finite set of all
// supported interactions, expressed as intents, entities and metadata.
// The dialogue structure is built over it by the dialogue package.
type Space struct {
	Intents     []Intent       `json:"intents"`
	Entities    []EntityDef    `json:"entities"`
	Completion  CompletionMeta `json:"completion"`
	KeyConcepts []string       `json:"keyConcepts"`
	// DependentConcepts maps each dependent concept to its qualification
	// note (categorical property or small domain) for diagnostics.
	DependentConcepts []string `json:"dependentConcepts"`
}

// Intent returns the named intent, or nil.
func (s *Space) Intent(name string) *Intent {
	for i := range s.Intents {
		if s.Intents[i].Name == name {
			return &s.Intents[i]
		}
	}
	return nil
}

// IntentNames returns all intent names, sorted.
func (s *Space) IntentNames() []string {
	out := make([]string, len(s.Intents))
	for i := range s.Intents {
		out[i] = s.Intents[i].Name
	}
	sort.Strings(out)
	return out
}

// Entity returns the named entity definition, or nil.
func (s *Space) Entity(name string) *EntityDef {
	for i := range s.Entities {
		if s.Entities[i].Name == name {
			return &s.Entities[i]
		}
	}
	return nil
}

// TrainingExamples flattens the space into labelled examples for the
// intent classifier.
type TrainingExample struct {
	Text   string `json:"text"`
	Intent string `json:"intent"`
}

// AllExamples returns every (utterance, intent) pair in the space.
func (s *Space) AllExamples() []TrainingExample {
	var out []TrainingExample
	for _, in := range s.Intents {
		for _, ex := range in.Examples {
			out = append(out, TrainingExample{Text: ex, Intent: in.Name})
		}
	}
	return out
}

// CountByKind tallies intents per pattern kind (the paper reports
// "22 intents ... including 14 lookup and 8 relationship patterns" plus
// 14 conversation-management intents, §6.1).
func (s *Space) CountByKind() map[PatternKind]int {
	out := make(map[PatternKind]int)
	for _, in := range s.Intents {
		out[in.Kind]++
	}
	return out
}
