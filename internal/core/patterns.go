package core

import (
	"fmt"
	"sort"

	"ontoconv/internal/ontology"
)

// relStep is one hop of a relationship path over object properties,
// traversed forward (From->To) or reversed.
type relStep struct {
	prop     ontology.ObjectProperty
	reversed bool
}

func (s relStep) other(node string) string {
	if s.prop.From == node {
		return s.prop.To
	}
	return s.prop.From
}

// verbLabel renders the relation in the traversal direction: forward uses
// the property name ("treats"); reversed uses the declared inverse
// ("is treated by") or a generic fallback.
func (s relStep) verbLabel() string {
	if !s.reversed {
		return s.prop.Name
	}
	if s.prop.Inverse != "" {
		return s.prop.Inverse
	}
	return "is " + s.prop.Name + " of"
}

// extractedIntent is an intent under construction: patterns plus the
// ontology grounding needed later for templates and entities.
type extractedIntent struct {
	intent Intent
	// answer concept and relationship path(s) for template generation
	answer  string
	filters []patternFilter
	// valueFilters are SME-added constraints on data properties of
	// concepts reachable from the answer ("Adult or pediatric?" on the
	// treatment request, Table 4).
	valueFilters []ValueFilter
}

// ValueFilter constrains a categorical data property of a concept and
// surfaces as a (usually required) value entity of the intent.
type ValueFilter struct {
	Concept     string
	Property    string
	Elicitation string
	Default     string
	Required    bool
}

// patternFilter records how a filter concept connects to the answer.
type patternFilter struct {
	concept string
	// path is the relation-name sequence from the answer concept; empty
	// means shortest path.
	path []string
	// required marks the filter as a required entity.
	required bool
}

// ExtractPatterns derives the query patterns and intents of §4.2.1 from
// the concept analysis: lookup patterns (with union and inheritance
// augmentation), direct relationship patterns (forward and inverse), and
// indirect (multi-hop) relationship patterns.
func ExtractPatterns(o *ontology.Ontology, an ConceptAnalysis) []extractedIntent {
	var out []extractedIntent
	out = append(out, lookupIntents(o, an)...)
	out = append(out, directRelationIntents(o, an)...)
	out = append(out, indirectRelationIntents(o, an)...)
	return out
}

// lookupIntents builds one intent per (key concept, dependent concept)
// pair (§4.2.1 "Lookup pattern"). Union and inheritance parents get their
// children's patterns folded into the same intent (Cases 1 and 2).
func lookupIntents(o *ontology.Ontology, an ConceptAnalysis) []extractedIntent {
	var out []extractedIntent
	keys := append([]string(nil), an.KeyConcepts...)
	sort.Strings(keys)
	for _, key := range keys {
		for _, dep := range an.Dependents[key] {
			depC := o.Concept(dep)
			if depC == nil {
				continue
			}
			depLabel := Pluralize(depC.Label)
			pattern := QueryPattern{
				Text:             fmt.Sprintf("Show me the <#%s> for %s?", dep, Slot(key)),
				KeyConcept:       key,
				DependentConcept: dep,
			}
			in := extractedIntent{
				intent: Intent{
					Name:          fmt.Sprintf("%s of %s", depLabel, o.Concept(key).Label),
					Kind:          LookupPattern,
					Patterns:      []QueryPattern{pattern},
					AnswerConcept: dep,
					Response:      fmt.Sprintf("Here are the %s for {{%s}}:", lowerLabel(depLabel), key),
				},
				answer:  dep,
				filters: []patternFilter{{concept: key, required: true}},
			}
			// Case 1: union — one extra pattern per constituent concept,
			// all under this single intent.
			if children := o.UnionOf(dep); children != nil {
				for _, ch := range children {
					in.intent.Patterns = append(in.intent.Patterns, QueryPattern{
						Text:             fmt.Sprintf("Show me the <#%s> associated with %s?", ch, Slot(key)),
						KeyConcept:       key,
						DependentConcept: ch,
					})
				}
			} else if children := o.Children(dep); len(children) > 0 {
				// Case 2: inheritance — one extra pattern per child.
				for _, ch := range children {
					in.intent.Patterns = append(in.intent.Patterns, QueryPattern{
						Text:             fmt.Sprintf("Show me the <#%s> for %s?", ch, Slot(key)),
						KeyConcept:       key,
						DependentConcept: ch,
					})
				}
			}
			out = append(out, in)
		}
	}
	return out
}

// directRelationIntents builds intents for pairs of key concepts joined by
// a one-hop relationship (§4.2.1 "Relationship pattern", Case 1): a
// forward-direction intent and an inverse-direction intent per relation.
func directRelationIntents(o *ontology.Ontology, an ConceptAnalysis) []extractedIntent {
	isKey := map[string]bool{}
	for _, k := range an.KeyConcepts {
		isKey[k] = true
	}
	var out []extractedIntent
	for _, p := range o.ObjectProperties {
		if !isKey[p.From] || !isKey[p.To] || p.From == p.To {
			continue
		}
		fromC, toC := o.Concept(p.From), o.Concept(p.To)
		// Forward: "What Drug treats <@Indication>?" — answer From,
		// filter To.
		fwd := extractedIntent{
			intent: Intent{
				Name: fmt.Sprintf("%s That %s %s", Pluralize(fromC.Label), titleCase(p.Name), toC.Label),
				Kind: DirectRelationPattern,
				Patterns: []QueryPattern{{
					Text:         fmt.Sprintf("What <#%s> %s %s?", p.From, p.Name, Slot(p.To)),
					KeyConcept:   p.To,
					OtherConcept: p.From,
					Relation:     p.Name,
				}},
				AnswerConcept: p.From,
				Response:      fmt.Sprintf("Here are the %s that %s {{%s}}:", lowerLabel(Pluralize(fromC.Label)), pluralVerb(p.Name), p.To),
			},
			answer:  p.From,
			filters: []patternFilter{{concept: p.To, path: []string{p.Name}, required: true}},
		}
		out = append(out, fwd)
		// Inverse: "What Indications are treated by <@Drug>?" — answer
		// To, filter From.
		inverse := p.Inverse
		if inverse == "" {
			inverse = "are related via " + p.Name + " to"
		}
		inv := extractedIntent{
			intent: Intent{
				Name: fmt.Sprintf("%s %s %s", Pluralize(toC.Label), titleCase(inverse), fromC.Label),
				Kind: DirectRelationPattern,
				Patterns: []QueryPattern{{
					Text:         fmt.Sprintf("What <#%s> %s %s?", p.To, inverse, Slot(p.From)),
					KeyConcept:   p.From,
					OtherConcept: p.To,
					Relation:     p.Name,
					Inverse:      true,
				}},
				AnswerConcept: p.To,
				Response:      fmt.Sprintf("Here are the %s %s {{%s}}:", lowerLabel(Pluralize(toC.Label)), inverse, p.From),
			},
			answer:  p.To,
			filters: []patternFilter{{concept: p.From, path: []string{p.Name}, required: true}},
		}
		out = append(out, inv)
	}
	return out
}

// indirectRelationIntents builds intents for pairs of key concepts joined
// through exactly one intermediate non-key concept (§4.2.1 Case 2,
// Figure 6: Drug—Dosage—Indication).
func indirectRelationIntents(o *ontology.Ontology, an ConceptAnalysis) []extractedIntent {
	isKey := map[string]bool{}
	for _, k := range an.KeyConcepts {
		isKey[k] = true
	}
	// adjacency over object properties, both directions
	adj := map[string][]relStep{}
	for _, p := range o.ObjectProperties {
		adj[p.From] = append(adj[p.From], relStep{prop: p})
		adj[p.To] = append(adj[p.To], relStep{prop: p, reversed: true})
	}
	seen := map[string]bool{}
	var out []extractedIntent
	keys := append([]string(nil), an.KeyConcepts...)
	sort.Strings(keys)
	for _, k1 := range keys {
		for _, s1 := range adj[k1] {
			mid := s1.other(k1)
			if isKey[mid] {
				continue
			}
			for _, s2 := range adj[mid] {
				k2 := s2.other(mid)
				if !isKey[k2] || k2 == k1 {
					continue
				}
				// A hop into mid via s1 then out via s2; dedupe the
				// unordered (k1, mid, k2) triple with its relations.
				r1, r2 := relPair(s1, s2, k1 < k2)
				sig := fmt.Sprintf("%s|%s|%s|%s|%s", min2(k1, k2), mid, max2(k1, k2), r1, r2)
				if seen[sig] {
					continue
				}
				seen[sig] = true
				midC, k1C, k2C := o.Concept(mid), o.Concept(k1), o.Concept(k2)
				midLabel := midC.Label
				in := extractedIntent{
					intent: Intent{
						Name: fmt.Sprintf("%s %s for %s", k1C.Label, midLabel, k2C.Label),
						Kind: IndirectRelationPattern,
						Patterns: []QueryPattern{
							{
								Text:         fmt.Sprintf("Give me the <#%s> and its <#%s> for %s", k1, mid, Slot(k2)),
								KeyConcept:   k2,
								OtherConcept: k1,
								Intermediate: mid,
								Relation:     s2.prop.Name,
							},
							{
								Text:         fmt.Sprintf("Give me the <#%s> for %s for %s", mid, Slot(k1), Slot(k2)),
								KeyConcept:   k1,
								OtherConcept: k2,
								Intermediate: mid,
								Relation:     s2.prop.Name,
							},
						},
						AnswerConcept: mid,
						Response:      fmt.Sprintf("Here is the {{%s}} %s for {{%s}}:", k1, lowerLabel(midLabel), k2),
					},
					answer: mid,
					filters: []patternFilter{
						{concept: k1, path: []string{s1.prop.Name}, required: true},
						{concept: k2, path: []string{s2.prop.Name}, required: true},
					},
				}
				out = append(out, in)
			}
		}
	}
	return out
}

func min2(a, b string) string {
	if a < b {
		return a
	}
	return b
}

func max2(a, b string) string {
	if a < b {
		return b
	}
	return a
}

func relPair(s1, s2 relStep, inOrder bool) (string, string) {
	if inOrder {
		return s1.prop.Name, s2.prop.Name
	}
	return s2.prop.Name, s1.prop.Name
}
