package core

import (
	"fmt"
	"sort"
)

// Feedback carries the SME refinements applied to the extracted
// conversation space (§4.2.2, §4.3.2, §6.1). Every field is optional.
type Feedback struct {
	// Rename maps generated intent names to the deployment names
	// ("Indication Dosage for Drug" -> "Drug Dosage for Condition").
	Rename map[string]string
	// Prune removes intents "unlikely to be part of a real world
	// workload" (§4.2.2), by generated name.
	Prune []string
	// ValueFilters adds categorical constraints (with elicitations) to
	// existing intents, keyed by generated intent name (pre-rename).
	ValueFilters map[string][]ValueFilter
	// GeneralEntityConcepts creates a <CONCEPT>_GENERAL intent per named
	// concept, capturing entity-only utterances (§6.1 DRUG_GENERAL).
	GeneralEntityConcepts []string
	// ExpectedPatterns adds SME-identified query patterns: mapped onto an
	// existing intent when Intent names one, otherwise a warning — new
	// standalone intents require templates and are added via code.
	ExpectedPatterns []SMEPattern
	// PriorQueries augments intent training sets with labelled real user
	// queries (§4.3.2), keyed by final (post-rename) intent name.
	PriorQueries map[string][]string
}

// SMEPattern is one annotation mapping a pattern onto an intent.
type SMEPattern struct {
	Intent string
	Text   string
}

// applyStructural applies the pre-template parts of the feedback: pruning,
// value filters and extra patterns. Returns an error for unknown intents
// so SME files stay in sync with the generated space.
func applyStructural(intents []extractedIntent, fb Feedback) ([]extractedIntent, error) {
	byName := map[string]*extractedIntent{}
	for i := range intents {
		byName[intents[i].intent.Name] = &intents[i]
	}
	vfNames := make([]string, 0, len(fb.ValueFilters))
	for name := range fb.ValueFilters {
		vfNames = append(vfNames, name)
	}
	sort.Strings(vfNames)
	for _, name := range vfNames {
		in, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("core: sme value filter for unknown intent %q", name)
		}
		in.valueFilters = append(in.valueFilters, fb.ValueFilters[name]...)
	}
	for _, p := range fb.ExpectedPatterns {
		in, ok := byName[p.Intent]
		if !ok {
			return nil, fmt.Errorf("core: sme pattern for unknown intent %q", p.Intent)
		}
		in.intent.Patterns = append(in.intent.Patterns, QueryPattern{Text: p.Text, FromSME: true})
	}
	if len(fb.Prune) > 0 {
		pruned := map[string]bool{}
		for _, n := range fb.Prune {
			if _, ok := byName[n]; !ok {
				return nil, fmt.Errorf("core: sme prune of unknown intent %q", n)
			}
			pruned[n] = true
		}
		var kept []extractedIntent
		for _, in := range intents {
			if !pruned[in.intent.Name] {
				kept = append(kept, in)
			}
		}
		intents = kept
	}
	return intents, nil
}

// applyRename renames intents per the feedback; collisions are errors.
func applyRename(space *Space, rename map[string]string) error {
	if len(rename) == 0 {
		return nil
	}
	names := map[string]bool{}
	for _, in := range space.Intents {
		names[in.Name] = true
	}
	keys := make([]string, 0, len(rename))
	for k := range rename {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, old := range keys {
		nw := rename[old]
		in := space.Intent(old)
		if in == nil {
			return fmt.Errorf("core: sme rename of unknown intent %q", old)
		}
		if names[nw] {
			return fmt.Errorf("core: sme rename collision on %q", nw)
		}
		delete(names, old)
		names[nw] = true
		in.Name = nw
	}
	return nil
}
