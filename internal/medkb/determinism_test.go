package medkb

import (
	"bytes"
	"fmt"
	"testing"

	"ontoconv/internal/bundle"
)

// TestBootstrapDeterminism asserts the whole offline pipeline is
// byte-reproducible: bootstrapping twice must serialize to identical
// ontology and workspace artifacts. This is the invariant the nondeterm
// analyzer (internal/lint) guards statically — artifact diffing, caching
// and golden files all depend on it.
func TestBootstrapDeterminism(t *testing.T) {
	var runs [2]*bytes.Buffer
	for i := range runs {
		_, onto, space, err := Bootstrap()
		if err != nil {
			t.Fatalf("bootstrap run %d: %v", i+1, err)
		}
		buf := &bytes.Buffer{}
		if err := onto.WriteJSON(buf); err != nil {
			t.Fatal(err)
		}
		if err := space.WriteJSON(buf); err != nil {
			t.Fatal(err)
		}
		runs[i] = buf
	}
	if !bytes.Equal(runs[0].Bytes(), runs[1].Bytes()) {
		t.Fatalf("bootstrap is not byte-reproducible:\n%s", firstDiff(runs[0].Bytes(), runs[1].Bytes()))
	}
}

// TestBundleCompilationDeterminism extends the invariant through the
// compiled-bundle stage: two independent bootstrap-and-compile runs —
// including classifier training — must produce byte-identical bundle
// files, so the manifest version is a trustworthy content-addressed
// release id.
func TestBundleCompilationDeterminism(t *testing.T) {
	var runs [2]*bytes.Buffer
	var versions [2]string
	for i := range runs {
		_, _, space, err := Bootstrap()
		if err != nil {
			t.Fatalf("bootstrap run %d: %v", i+1, err)
		}
		b, err := bundle.Compile(space, bundle.Options{})
		if err != nil {
			t.Fatalf("compile run %d: %v", i+1, err)
		}
		buf := &bytes.Buffer{}
		if err := b.Write(buf); err != nil {
			t.Fatal(err)
		}
		runs[i] = buf
		versions[i] = b.Version()
	}
	if versions[0] != versions[1] {
		t.Fatalf("versions differ across runs: %q vs %q", versions[0], versions[1])
	}
	if !bytes.Equal(runs[0].Bytes(), runs[1].Bytes()) {
		t.Fatalf("bundle compilation is not byte-reproducible:\n%s", firstDiff(runs[0].Bytes(), runs[1].Bytes()))
	}
}

// firstDiff locates the first differing line of two serialized artifacts.
func firstDiff(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  run1: %s\n  run2: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
