package medkb

import (
	"testing"

	"ontoconv/internal/kb"
)

// TestBuildIndexesCoversTemplates asserts the bootstrap-derived index set
// covers every column the generated templates push an equality filter
// down to: each plan's index hints must resolve to an actual index, so no
// template falls back to a sequential scan on its filter column.
func TestBuildIndexesCoversTemplates(t *testing.T) {
	base, _, space, err := Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	templates := 0
	for i := range space.Intents {
		tpl := space.Intents[i].Template
		if tpl == nil {
			continue
		}
		plan, err := tpl.Prepare(base)
		if err != nil {
			t.Fatalf("intent %q: Prepare: %v", space.Intents[i].Name, err)
		}
		templates++
		for _, h := range plan.IndexHints() {
			tab := base.Table(h.Table)
			if tab == nil {
				t.Fatalf("intent %q: hint names missing table %q", space.Intents[i].Name, h.Table)
			}
			if !tab.HasIndex(h.Column) {
				t.Errorf("intent %q: pushed-down equality column %s.%s is not indexed",
					space.Intents[i].Name, h.Table, h.Column)
			}
		}
	}
	if templates == 0 {
		t.Fatal("no templates in the bootstrapped space")
	}
}

// TestBuildIndexesCoversForeignKeys asserts every FK column and every
// referenced column carries an index (the hash-join fast path).
func TestBuildIndexesCoversForeignKeys(t *testing.T) {
	base, _, _, err := Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range base.TableNames() {
		tab := base.Table(name)
		for _, fk := range tab.Schema.ForeignKeys {
			if !tab.HasIndex(fk.Column) {
				t.Errorf("%s.%s (FK) not indexed", name, fk.Column)
			}
			ref := base.Table(fk.RefTable)
			if ref == nil || !ref.HasIndex(fk.RefColumn) {
				t.Errorf("%s.%s (FK target) not indexed", fk.RefTable, fk.RefColumn)
			}
		}
	}
}

// TestBuildIndexesDeterministic: building twice on fresh KBs yields the
// same count, and the per-table index sets are equal (sorted derivation).
func TestBuildIndexesDeterministic(t *testing.T) {
	build := func() (*kb.KB, int) {
		base, _, space, err := Bootstrap()
		if err != nil {
			t.Fatal(err)
		}
		// Bootstrap already indexed; rebuild is idempotent.
		n, err := BuildIndexes(base, space)
		if err != nil {
			t.Fatal(err)
		}
		return base, n
	}
	b1, n1 := build()
	b2, n2 := build()
	if n1 != n2 || n1 == 0 {
		t.Fatalf("index counts differ: %d vs %d", n1, n2)
	}
	for _, name := range b1.TableNames() {
		c1 := b1.Table(name).IndexedColumns()
		c2 := b2.Table(name).IndexedColumns()
		if len(c1) != len(c2) {
			t.Fatalf("table %s: %v vs %v", name, c1, c2)
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("table %s: %v vs %v", name, c1, c2)
			}
		}
	}
}

// TestBuildIndexesFreezesColumns: every serving bootstrap funnels through
// BuildIndexes, which must leave every table with a frozen columnar
// projection covering all rows — the planner's vectorized scans activate
// only on frozen tables.
func TestBuildIndexesFreezesColumns(t *testing.T) {
	base, _, space, err := Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildIndexes(base, space); err != nil {
		t.Fatal(err)
	}
	for _, name := range base.TableNames() {
		tab := base.Table(name)
		cs := tab.ColumnSet()
		if cs == nil {
			t.Fatalf("table %s not frozen", name)
		}
		if cs.Len() != tab.Len() {
			t.Fatalf("table %s frozen at %d rows, has %d", name, cs.Len(), tab.Len())
		}
	}
}
