package medkb

import (
	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/obs"
	"ontoconv/internal/ontology"
)

// BootstrapConfig returns the full bootstrap configuration for the MDX use
// case (§6): the generic pipeline plus the SME feedback the paper
// describes — renaming intents to their deployment names, pruning patterns
// unlikely in a real workload (§4.2.2), the age-group elicitation of
// Table 4, the DRUG_GENERAL keyword-entry intent (§6.1), the synonym
// dictionaries (Tables 1-2), and prior-user-query augmentation (§4.3.2,
// Figure 8).
func BootstrapConfig(base *kb.KB) core.Config {
	cfg := core.DefaultConfig()

	cfg.Entities = core.EntityConfig{
		ConceptSynonyms: ConceptSynonyms(),
		InstanceSynonyms: map[string]map[string][]string{
			"Drug":       DrugSynonyms(base),
			"Indication": IndicationSynonyms(),
		},
		ValueSynonyms: map[string]map[string][]string{
			"AgeGroup": AgeGroupSynonyms(),
		},
		ValueEntityMaxValues: 10,
	}

	cfg.Feedback = core.Feedback{
		Rename: map[string]string{
			"Administrations of Drug":       "Administration of Drug",
			"Iv Compatibilities of Drug":    "IV Compatibility of Drug",
			"Drugs That Treats Condition":   "Drugs That Treat Condition",
			"Conditions Is Treated By Drug": "Conditions Treated by Drug",
			"Drug Interactions of Drug":     "Drug-Drug Interactions",
			"Dose Adjustments of Drug":      "Dose Adjustments for Drug",
			"Regulatory Status of Drug":     "Regulatory Status for Drug",
			"Pharmacokinetics of Drug":      "Pharmacokinetics",
			"Mechanism Of Actions of Drug":  "Mechanism of Action of Drug",
			"Storages of Drug":              "Storage of Drug",
			"Monitorings of Drug":           "Monitoring of Drug",
			"Lactations of Drug":            "Lactation of Drug",
			"Toxicologies of Drug":          "Toxicology of Drug",
			"Pregnancies of Drug":           "Pregnancy of Drug",
			"Clinical Teachings of Drug":    "Clinical Teaching of Drug",
			"Patient Educations of Drug":    "Patient Education of Drug",
			"Geriatric Uses of Drug":        "Geriatric Use of Drug",
			"Pediatric Uses of Drug":        "Pediatric Use of Drug",
			"Drug Classes of Drug":          "Drug Class of Drug",
			"Availabilities of Drug":        "Availability of Drug",
			"Cyp Metabolisms of Drug":       "CYP Metabolism of Drug",
			"Dialyzabilities of Drug":       "Dialyzability of Drug",
			"Do Not Crushes of Drug":        "Do Not Crush Information for Drug",
			"Hepatic Dosings of Drug":       "Hepatic Dosing for Drug",
			"Renal Dosings of Drug":         "Renal Dosing for Drug",
			"Stabilities of Drug":           "Stability of Drug",
			"Alt Interactions of Drug":      "Alternative Medicine Interactions of Drug",
			"Drug Costs of Drug":            "Cost of Drug",
			"Pill Identifications of Drug":  "Pill Identification of Drug",
			"Age Dosing Bands of Drug":      "Age-Based Dosing for Drug",
		},
		Prune: []string{
			// ComparativeEfficacy crossed the key-concept cut on raw
			// centrality, but SMEs judge its standalone relationship
			// patterns unlikely in a real workload (§4.2.2).
			"Comparative Efficacies That HasDrug Drug",
			"Drugs Has Comparative Efficacy",
			"Comparative Efficacies That OtherDrug Drug",
			"Drugs Are Related Via OtherDrug To Comparative Efficacy",
			"Comparative Efficacies That HasIndication Condition",
			"Conditions Are Related Via HasIndication To Comparative Efficacy",
			// The drug-drug child lookup duplicates the inheritance-
			// augmented Drug Interaction intent.
			"Drug Drug Interactions of Drug",
			// Standalone dosage lookups are subsumed by the indirect
			// Drug-Dosage-Condition intent.
			"Dosages of Drug",
			"Dosages of Condition",
		},
		ValueFilters: map[string][]core.ValueFilter{
			// Table 4: both the treatment and the dosage request elicit
			// the intended age group ("Adult or pediatric?").
			"Drugs That Treats Condition": {{
				Concept: "Dosage", Property: "age_group",
				Elicitation: "Adult or pediatric?", Required: true,
			}},
			"Drug Dosage for Condition": {{
				Concept: "Dosage", Property: "age_group",
				Elicitation: "Adult or pediatric?", Required: true,
			}},
		},
		GeneralEntityConcepts: []string{"Drug"},
		PriorQueries: map[string][]string{
			// Figure 8's SME-labelled prior user queries.
			"Dose Adjustments for Drug": {
				"Find Dose Adjustment for Aspirin?",
				"Give me the increased dosage for Aspirin?",
				"How do I perform a Dose Adjustment for Aspirin?",
				"I want to see the modifications to dosing for Aspirin?",
			},
			// §6.3 user-log phrasings.
			"Adverse Effects of Drug": {
				"What are the side effects of cogentin",
				"cogentin adverse effects",
				"side effects of Ibuprofen",
				"adverse reactions to Aspirin",
				"does Sertraline have side effects",
			},
			"Drugs That Treat Condition": {
				"show me drugs that treat psoriasis",
				"what treats fever",
				"which medications treat hypertension",
				"treatment options for acne",
				"what can I give for pain",
			},
			// Dosage questions collide with the renal/hepatic/age-band
			// dosing intents (§4.6: intent separation); prior user
			// queries teach the classifier that an unqualified dosage
			// question means this intent.
			"Drug Dosage for Condition": {
				"dosage for Tazarotene",
				"Tazarotene dosing",
				"dosage for Tazarotene for acne",
				"what dose of Ibuprofen for fever",
				"how much Amoxicillin for bronchitis",
				"how should I dose Aspirin",
				"what is the dosage for Metformin",
				"usual dose of Lisinopril",
				"Ibuprofen dose",
				"dosing for Amoxicillin",
				"give me the dosage for Sertraline",
				"what dose of Gabapentin for epilepsy",
				"recommended dose of Omeprazole",
				"Warfarin dosing for atrial fibrillation",
				"dose for Acetaminophen for fever",
			},
			"Renal Dosing for Drug": {
				"renal dosing for Aspirin",
				"kidney dose adjustment for Metformin",
				"what dose in renal failure for Lisinopril",
				"CrCl based dosing for Gabapentin",
			},
			"Hepatic Dosing for Drug": {
				"hepatic dosing for Aspirin",
				"liver dose adjustment for Atorvastatin",
				"dose in cirrhosis for Sertraline",
			},
			"Age-Based Dosing for Drug": {
				"mg/kg dosing for Amoxicillin",
				"weight based dose for Ibuprofen",
				"dose per kilogram for Acetaminophen",
			},
			"Drug-Drug Interactions": {
				"What are the drug interactions for aspirin?",
				"does Warfarin interact with other drugs",
				"interactions between medications for Omeprazole",
			},
			"IV Compatibility of Drug": {
				"is Aspirin compatible with NS",
				"IV compatibility for Heparin",
				"can I run Azithromycin y-site",
			},
			"Risks of Drug": {
				"contraindications for Aspirin",
				"black box warnings for Warfarin",
				"is Sertraline contraindicated in pregnancy",
				"risks of Ibuprofen",
				"boxed warning for Adalimumab",
				"when is Metformin contraindicated",
			},
		},
	}
	return cfg
}

// Bootstrap generates the KB (default size), builds the ontology, and runs
// the full MDX bootstrap. It is the one-call entry point used by the
// examples and experiments.
func Bootstrap() (*kb.KB, *ontology.Ontology, *core.Space, error) {
	return BootstrapWithPhases(nil)
}

// BootstrapWithPhases is Bootstrap with per-phase timing recorded into pl
// (nil for none): KB generation, ontology curation, and every step of the
// conversation-space bootstrap.
func BootstrapWithPhases(pl *obs.PhaseLog) (*kb.KB, *ontology.Ontology, *core.Space, error) {
	return BootstrapAt(pl, 1)
}

// BootstrapAt is BootstrapWithPhases over a KB scaled by the given factor
// (see ScaledConfig; scale <= 1 is the default size). cmd/bootstrap's
// -scale flag uses it to produce deterministic hundreds-of-thousands-of-
// rows deployments for the columnar benchmarks.
func BootstrapAt(pl *obs.PhaseLog, scale int) (*kb.KB, *ontology.Ontology, *core.Space, error) {
	done := pl.Phase("medkb.generate")
	base, err := Generate(ScaledConfig(scale))
	if err != nil {
		return nil, nil, nil, err
	}
	rows := 0
	for _, name := range base.TableNames() {
		rows += base.Table(name).Len()
	}
	done(obs.C("tables", len(base.TableNames())), obs.C("rows", rows))

	done = pl.Phase("medkb.ontology")
	o, err := Ontology(base)
	if err != nil {
		return nil, nil, nil, err
	}
	done(obs.C("concepts", len(o.Concepts)), obs.C("object_properties", len(o.ObjectProperties)))

	cfg := BootstrapConfig(base)
	cfg.Phases = pl
	space, err := core.Bootstrap(o, base, cfg)
	if err != nil {
		return nil, nil, nil, err
	}

	done = pl.Phase("medkb.index")
	built, err := BuildIndexes(base, space)
	if err != nil {
		return nil, nil, nil, err
	}
	done(obs.C("indexes", built))
	return base, o, space, nil
}
