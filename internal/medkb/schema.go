// Package medkb is the Micromedex stand-in: a deterministic synthetic
// medical knowledge base (drugs, indications, dosages, interactions,
// risks, …) plus its curated domain ontology and synonym dictionaries.
//
// The paper's use case (§6) runs against IBM Micromedex content in Db2 on
// Cloud; that content is proprietary, so this package generates a KB with
// the same schema *shape* — the concepts, properties and special-semantics
// relationships of the paper's Figure 2 (treats, isA drug-interaction
// family, Risk = ContraIndication ∪ BlackBoxWarning) embedded in a
// realistically-sized satellite schema — and seeds it with the drug and
// condition names that appear in the paper's examples so the published
// transcripts replay verbatim.
package medkb

import "ontoconv/internal/kb"

// Schemas returns the full MDX table set in creation order: the core
// Figure-2 tier plus the second-tier clinical content families defined in
// schema_extra.go.
func Schemas() []kb.Schema {
	return append(coreSchemas(), extraSchemas()...)
}

func coreSchemas() []kb.Schema {
	text := func(name string) kb.Column { return kb.Column{Name: name, Type: kb.TextCol} }
	reqText := func(name string) kb.Column { return kb.Column{Name: name, Type: kb.TextCol, NotNull: true} }
	intc := func(name string) kb.Column { return kb.Column{Name: name, Type: kb.IntCol} }
	floatc := func(name string) kb.Column { return kb.Column{Name: name, Type: kb.FloatCol} }
	boolc := func(name string) kb.Column { return kb.Column{Name: name, Type: kb.BoolCol} }
	fk := func(col, table, refCol string) kb.ForeignKey {
		return kb.ForeignKey{Column: col, RefTable: table, RefColumn: refCol}
	}

	return []kb.Schema{
		// ------- core entity tables -------
		{
			Name:       "drug_class",
			Columns:    []kb.Column{reqText("class_id"), reqText("name"), text("description")},
			PrimaryKey: "class_id",
		},
		{
			Name:       "manufacturer",
			Columns:    []kb.Column{reqText("manufacturer_id"), reqText("name"), text("country")},
			PrimaryKey: "manufacturer_id",
		},
		{
			Name: "drug",
			Columns: []kb.Column{
				reqText("drug_id"), reqText("name"), text("base"), text("salt"),
				text("class_id"), text("route"), text("schedule"), text("status"),
			},
			PrimaryKey:  "drug_id",
			ForeignKeys: []kb.ForeignKey{fk("class_id", "drug_class", "class_id")},
		},
		{
			Name: "brand",
			Columns: []kb.Column{
				reqText("brand_id"), reqText("name"), reqText("drug_id"), text("manufacturer_id"),
			},
			PrimaryKey: "brand_id",
			ForeignKeys: []kb.ForeignKey{
				fk("drug_id", "drug", "drug_id"),
				fk("manufacturer_id", "manufacturer", "manufacturer_id"),
			},
		},
		{
			Name: "indication",
			Columns: []kb.Column{
				reqText("indication_id"), reqText("name"), text("icd_code"),
				text("body_system"), text("description"),
			},
			PrimaryKey: "indication_id",
		},
		{
			Name: "finding",
			Columns: []kb.Column{
				reqText("finding_id"), reqText("name"), text("body_system"), text("description"),
			},
			PrimaryKey: "finding_id",
		},
		{
			Name: "med_procedure",
			Columns: []kb.Column{
				reqText("procedure_id"), reqText("name"), text("category"), text("description"),
			},
			PrimaryKey: "procedure_id",
		},
		{
			Name:       "food",
			Columns:    []kb.Column{reqText("food_id"), reqText("name"), text("category")},
			PrimaryKey: "food_id",
		},
		{
			Name: "lab_test",
			Columns: []kb.Column{
				reqText("lab_test_id"), reqText("name"), text("specimen"), text("units"),
			},
			PrimaryKey: "lab_test_id",
		},

		// ------- treats: the Drug-treats-Indication junction -------
		{
			Name: "treats",
			Columns: []kb.Column{
				reqText("treat_id"), reqText("drug_id"), reqText("indication_id"),
				text("efficacy"), text("evidence"), text("recommendation"),
			},
			PrimaryKey: "treat_id",
			ForeignKeys: []kb.ForeignKey{
				fk("drug_id", "drug", "drug_id"),
				fk("indication_id", "indication", "indication_id"),
			},
		},

		// ------- dosing -------
		{
			Name: "dosage",
			Columns: []kb.Column{
				reqText("dosage_id"), reqText("drug_id"), reqText("indication_id"),
				reqText("age_group"), text("route"), text("amount"), text("frequency"),
				text("max_daily"), text("description"),
			},
			PrimaryKey: "dosage_id",
			ForeignKeys: []kb.ForeignKey{
				fk("drug_id", "drug", "drug_id"),
				fk("indication_id", "indication", "indication_id"),
			},
		},
		{
			Name: "dose_adjustment",
			Columns: []kb.Column{
				reqText("adjustment_id"), reqText("drug_id"), text("reason"),
				text("population"), text("description"),
			},
			PrimaryKey:  "adjustment_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},

		// ------- drug satellite content -------
		{
			Name: "precaution",
			Columns: []kb.Column{
				reqText("precaution_id"), reqText("drug_id"), text("category"), text("description"),
			},
			PrimaryKey:  "precaution_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "adverse_effect",
			Columns: []kb.Column{
				reqText("effect_id"), reqText("drug_id"), reqText("name"),
				text("severity"), text("frequency"), text("description"),
			},
			PrimaryKey:  "effect_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "administration",
			Columns: []kb.Column{
				reqText("admin_id"), reqText("drug_id"), text("route"),
				text("instructions"), text("timing"),
			},
			PrimaryKey:  "admin_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "pharmacokinetics",
			Columns: []kb.Column{
				reqText("pk_id"), reqText("drug_id"), text("absorption"),
				floatc("half_life_hours"), text("metabolism"), text("excretion"),
				floatc("protein_binding_pct"),
			},
			PrimaryKey:  "pk_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "regulatory_status",
			Columns: []kb.Column{
				reqText("reg_id"), reqText("drug_id"), text("region"), text("status"),
				intc("approval_year"),
			},
			PrimaryKey:  "reg_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "mechanism_of_action",
			Columns: []kb.Column{
				reqText("moa_id"), reqText("drug_id"), text("target"), text("description"),
			},
			PrimaryKey:  "moa_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "monitoring",
			Columns: []kb.Column{
				reqText("monitor_id"), reqText("drug_id"), text("parameter"),
				text("frequency"), text("rationale"),
			},
			PrimaryKey:  "monitor_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "overdose",
			Columns: []kb.Column{
				reqText("overdose_id"), reqText("drug_id"), text("symptoms"), text("management"),
			},
			PrimaryKey:  "overdose_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "toxicology",
			Columns: []kb.Column{
				reqText("tox_id"), reqText("drug_id"), text("toxic_dose"),
				text("effects"), text("antidote"),
			},
			PrimaryKey:  "tox_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "pregnancy",
			Columns: []kb.Column{
				reqText("preg_id"), reqText("drug_id"), text("category"), text("risk_summary"),
			},
			PrimaryKey:  "preg_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "lactation",
			Columns: []kb.Column{
				reqText("lact_id"), reqText("drug_id"), text("compatibility"), text("note"),
			},
			PrimaryKey:  "lact_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "pediatric_use",
			Columns: []kb.Column{
				reqText("ped_id"), reqText("drug_id"), text("min_age"), text("note"),
			},
			PrimaryKey:  "ped_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "geriatric_use",
			Columns: []kb.Column{
				reqText("ger_id"), reqText("drug_id"), text("consideration"),
			},
			PrimaryKey:  "ger_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "storage",
			Columns: []kb.Column{
				reqText("storage_id"), reqText("drug_id"), text("temperature"),
				boolc("light_protect"), text("note"),
			},
			PrimaryKey:  "storage_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "availability",
			Columns: []kb.Column{
				reqText("avail_id"), reqText("drug_id"), text("dosage_form"), text("strength"),
			},
			PrimaryKey:  "avail_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "patient_education",
			Columns: []kb.Column{
				reqText("edu_id"), reqText("drug_id"), text("topic"), text("instruction"),
			},
			PrimaryKey:  "edu_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "warning",
			Columns: []kb.Column{
				reqText("warning_id"), reqText("drug_id"), text("severity"), text("text"),
			},
			PrimaryKey:  "warning_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "allergy",
			Columns: []kb.Column{
				reqText("allergy_id"), reqText("drug_id"), text("cross_sensitivity_class"), text("note"),
			},
			PrimaryKey:  "allergy_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "clinical_teaching",
			Columns: []kb.Column{
				reqText("teach_id"), reqText("drug_id"), text("topic"), text("text"),
			},
			PrimaryKey:  "teach_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "drug_use",
			Columns: []kb.Column{
				reqText("use_id"), reqText("drug_id"), text("use_type"), text("description"),
			},
			PrimaryKey:  "use_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},

		// ------- interactions: inheritance family (Figure 2) -------
		{
			Name: "drug_interaction",
			Columns: []kb.Column{
				reqText("interaction_id"), reqText("drug_id"), text("severity"),
				text("documentation"), text("mechanism"), text("summary"),
			},
			PrimaryKey:  "interaction_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "drug_food_interaction",
			Columns: []kb.Column{
				reqText("interaction_id"), reqText("food_id"), text("onset"), text("note"),
			},
			PrimaryKey: "interaction_id",
			ForeignKeys: []kb.ForeignKey{
				fk("interaction_id", "drug_interaction", "interaction_id"),
				fk("food_id", "food", "food_id"),
			},
		},
		{
			Name: "drug_lab_interaction",
			Columns: []kb.Column{
				reqText("interaction_id"), reqText("lab_test_id"), text("effect_on_result"), text("note"),
			},
			PrimaryKey: "interaction_id",
			ForeignKeys: []kb.ForeignKey{
				fk("interaction_id", "drug_interaction", "interaction_id"),
				fk("lab_test_id", "lab_test", "lab_test_id"),
			},
		},
		{
			Name: "drug_drug_interaction",
			Columns: []kb.Column{
				reqText("interaction_id"), reqText("other_drug_id"), text("management"), text("note"),
			},
			PrimaryKey: "interaction_id",
			ForeignKeys: []kb.ForeignKey{
				fk("interaction_id", "drug_interaction", "interaction_id"),
				fk("other_drug_id", "drug", "drug_id"),
			},
		},

		// ------- risks: union family (Figure 2) -------
		{
			Name: "risk",
			Columns: []kb.Column{
				reqText("risk_id"), reqText("drug_id"), text("description"),
			},
			PrimaryKey:  "risk_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "contra_indication",
			Columns: []kb.Column{
				reqText("risk_id"), text("condition_name"), text("reason"),
			},
			PrimaryKey: "risk_id",
			ForeignKeys: []kb.ForeignKey{
				fk("risk_id", "risk", "risk_id"),
			},
		},
		{
			Name: "black_box_warning",
			Columns: []kb.Column{
				reqText("risk_id"), text("warning_text"), intc("issued_year"),
			},
			PrimaryKey: "risk_id",
			ForeignKeys: []kb.ForeignKey{
				fk("risk_id", "risk", "risk_id"),
			},
		},

		// ------- IV compatibility & comparisons -------
		{
			Name: "iv_compatibility",
			Columns: []kb.Column{
				reqText("compat_id"), reqText("drug_id"), reqText("other_drug_id"),
				text("solution"), text("compatibility"), text("note"),
			},
			PrimaryKey: "compat_id",
			ForeignKeys: []kb.ForeignKey{
				fk("drug_id", "drug", "drug_id"),
				fk("other_drug_id", "drug", "drug_id"),
			},
		},
		{
			Name: "comparative_efficacy",
			Columns: []kb.Column{
				reqText("comp_id"), reqText("drug_id"), reqText("other_drug_id"),
				reqText("indication_id"), text("result"),
			},
			PrimaryKey: "comp_id",
			ForeignKeys: []kb.ForeignKey{
				fk("drug_id", "drug", "drug_id"),
				fk("other_drug_id", "drug", "drug_id"),
				fk("indication_id", "indication", "indication_id"),
			},
		},
	}
}
