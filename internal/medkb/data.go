package medkb

import (
	"fmt"
	"math/rand"

	"ontoconv/internal/kb"
)

// Config controls the size of the generated knowledge base. All generation
// is deterministic given Seed.
type Config struct {
	Drugs       int
	Indications int
	Findings    int
	Procedures  int
	Seed        int64
}

// DefaultConfig is the size used by the experiments: large enough that
// data statistics are meaningful, small enough that the full pipeline runs
// in unit-test time.
func DefaultConfig() Config {
	return Config{Drugs: 200, Indications: 100, Findings: 60, Procedures: 30, Seed: 42}
}

// ScaledConfig is DefaultConfig with every entity family multiplied by
// scale (values below 2 return the default size). Generation stays fully
// deterministic — same seed, same row stream, just more of it — so two
// runs at the same scale are byte-identical; the per-drug satellite
// tables grow proportionally, putting scale 100 in the
// hundreds-of-thousands-of-rows range the columnar benchmarks measure.
func ScaledConfig(scale int) Config {
	cfg := DefaultConfig()
	if scale > 1 {
		cfg.Drugs *= scale
		cfg.Indications *= scale
		cfg.Findings *= scale
		cfg.Procedures *= scale
	}
	return cfg
}

// seedDrug is one of the drugs named in the paper; these always exist so
// the published transcripts replay verbatim.
type seedDrug struct {
	name, brand, base, salt, class string
}

var seedDrugs = []seedDrug{
	{"Aspirin", "Bayer Aspirin", "Acetylsalicylic Acid", "", "NSAID"},
	{"Ibuprofen", "Advil", "Ibuprofen", "", "NSAID"},
	{"Acetaminophen", "Tylenol", "Acetaminophen", "", "Analgesic"},
	{"Tazarotene", "Tazorac", "Tazarotene", "", "Retinoid"},
	{"Fluocinonide", "Vanos", "Fluocinonide", "", "Corticosteroid"},
	{"Benazepril", "Lotensin", "Benazepril", "Hydrochloride", "ACE Inhibitor"},
	{"Citicoline", "Cognizin", "Citicoline", "Sodium", "Nootropic"},
	{"Pancreatin", "Creon", "Pancreatin", "", "Enzyme"},
	{"Benztropine Mesylate", "Cogentin", "Benztropine", "Mesylate", "Anticholinergic"},
	{"Cyclopentolate Hydrochloride", "Cyclogel", "Cyclopentolate", "Hydrochloride", "Mydriatic"},
	{"Acitretin", "Soriatane", "Acitretin", "", "Retinoid"},
	{"Adalimumab", "Humira", "Adalimumab", "", "Biologic"},
	{"Salicylic Acid", "Compound W", "Salicylic Acid", "", "Keratolytic"},
	{"Calcium Carbonate", "Tums", "Calcium", "Carbonate", "Antacid"},
	{"Metformin", "Glucophage", "Metformin", "Hydrochloride", "Biguanide"},
	{"Lisinopril", "Zestril", "Lisinopril", "", "ACE Inhibitor"},
	{"Atorvastatin", "Lipitor", "Atorvastatin", "Calcium", "Statin"},
	{"Amoxicillin", "Amoxil", "Amoxicillin", "Trihydrate", "Penicillin"},
	{"Azithromycin", "Zithromax", "Azithromycin", "Dihydrate", "Macrolide"},
	{"Prednisone", "Deltasone", "Prednisone", "", "Corticosteroid"},
	{"Warfarin", "Coumadin", "Warfarin", "Sodium", "Anticoagulant"},
	{"Omeprazole", "Prilosec", "Omeprazole", "Magnesium", "PPI"},
	{"Sertraline", "Zoloft", "Sertraline", "Hydrochloride", "SSRI"},
	{"Gabapentin", "Neurontin", "Gabapentin", "", "Anticonvulsant"},
	{"Levothyroxine", "Synthroid", "Levothyroxine", "Sodium", "Thyroid Hormone"},
}

var seedIndications = []struct{ name, system string }{
	{"Psoriasis", "Dermatologic"},
	{"Plaque Psoriasis", "Dermatologic"},
	{"Acne", "Dermatologic"},
	{"Fever", "General"},
	{"Bronchitis", "Respiratory"},
	{"Hypertension", "Cardiovascular"},
	{"Diabetes Mellitus Type 2", "Endocrine"},
	{"Depression", "Psychiatric"},
	{"Anxiety", "Psychiatric"},
	{"Asthma", "Respiratory"},
	{"Pneumonia", "Respiratory"},
	{"Migraine", "Neurologic"},
	{"Epilepsy", "Neurologic"},
	{"Gout", "Musculoskeletal"},
	{"Eczema", "Dermatologic"},
	{"Rheumatoid Arthritis", "Musculoskeletal"},
	{"Hypothyroidism", "Endocrine"},
	{"Gastroesophageal Reflux Disease", "Gastrointestinal"},
	{"Hyperlipidemia", "Cardiovascular"},
	{"Atrial Fibrillation", "Cardiovascular"},
	{"Urinary Tract Infection", "Genitourinary"},
	{"Otitis Media", "ENT"},
	{"Conjunctivitis", "Ophthalmic"},
	{"Insomnia", "Neurologic"},
	{"Osteoporosis", "Musculoskeletal"},
	{"Parkinsonism", "Neurologic"},
	{"Pain", "General"},
}

var drugClasses = []string{
	"NSAID", "Analgesic", "Retinoid", "Corticosteroid", "ACE Inhibitor",
	"Nootropic", "Enzyme", "Anticholinergic", "Mydriatic", "Biologic",
	"Keratolytic", "Antacid", "Biguanide", "Statin", "Penicillin",
	"Macrolide", "Anticoagulant", "PPI", "SSRI", "Anticonvulsant",
	"Thyroid Hormone", "Beta Blocker", "Diuretic", "Antihistamine", "Antiviral",
}

var (
	drugPrefixes = []string{"alu", "bena", "cor", "dexa", "epi", "fluo", "gati", "halo", "iso", "keto", "lami", "meto", "nifed", "oxa", "predni", "quina", "rifa", "sulfa", "tetra", "vera", "zolo"}
	drugMiddles  = []string{"ben", "cil", "dro", "fen", "lix", "mab", "nex", "pra", "rel", "sta", "tri", "vap", "zol"}
	drugSuffixes = []string{"cillin", "dine", "fenac", "lol", "mide", "nazole", "pril", "ril", "sartan", "statin", "tide", "vir", "zepam"}

	condAdjs  = []string{"Acute", "Chronic", "Recurrent", "Idiopathic", "Secondary", "Allergic", "Atypical", "Severe", "Mild"}
	condNouns = []string{"Dermatitis", "Nephropathy", "Neuralgia", "Colitis", "Rhinitis", "Myalgia", "Anemia", "Cystitis", "Hepatitis", "Gastritis", "Sinusitis", "Tendinitis", "Neuropathy", "Arrhythmia"}

	routes       = []string{"ORAL", "TOPICAL", "INTRAVENOUS", "INTRAMUSCULAR", "OPHTHALMIC", "SUBCUTANEOUS"}
	schedules    = []string{"Unscheduled", "Schedule II", "Schedule III", "Schedule IV"}
	statuses     = []string{"Active", "Active", "Active", "Discontinued"}
	efficacies   = []string{"Effective", "Effective", "Possibly Effective", "Evidence Inconclusive"}
	evidences    = []string{"Category A", "Category B", "Category C"}
	recs         = []string{"Class I", "Class IIa", "Class IIb"}
	ageGroups    = []string{"adult", "pediatric"}
	severities   = []string{"Mild", "Moderate", "Severe", "Life-threatening"}
	frequencies  = []string{"Common", "Uncommon", "Rare", "Very rare"}
	documents    = []string{"Excellent", "Good", "Fair"}
	preCats      = []string{"Hepatic", "Renal", "Cardiac", "Hematologic", "Dermatologic", "Neurologic"}
	effectNames  = []string{"Nausea", "Headache", "Dizziness", "Rash", "Fatigue", "Dry mouth", "Constipation", "Diarrhea", "Insomnia", "Pruritus", "Edema", "Hypotension", "Tachycardia", "Blurred vision", "Somnolence"}
	foodNames    = []string{"Grapefruit juice", "Alcohol", "Dairy products", "High-fat meal", "Caffeine", "Leafy greens", "Aged cheese", "Cranberry juice", "Soy products", "Bananas", "Chocolate", "Licorice", "Salt substitutes", "Fiber supplements", "Green tea", "Tyramine-rich foods", "Iron-rich foods", "Citrus fruits", "Smoked meats", "Energy drinks", "Orange juice", "Garlic supplements", "Ginkgo", "St John's Wort", "Multivitamins", "Antacids with food", "Pickled vegetables", "Fermented foods", "Apple juice", "Milk"}
	labTestNames = []string{"Serum creatinine", "ALT", "AST", "INR", "Blood glucose", "Serum potassium", "TSH", "Hemoglobin A1c", "Platelet count", "White blood cell count", "Serum sodium", "Urine protein", "Lipid panel", "Serum digoxin", "Prothrombin time", "Uric acid", "Serum calcium", "Bilirubin", "Alkaline phosphatase", "Creatine kinase", "Serum magnesium", "Blood urea nitrogen", "Lactate", "Troponin", "C-reactive protein"}
	solutions    = []string{"NS", "D5W", "LR", "D5NS"}
	compats      = []string{"Compatible", "Compatible", "Incompatible", "Variable"}
	pregCats     = []string{"A", "B", "C", "D", "X"}
	lactCompat   = []string{"Compatible", "Use caution", "Avoid"}
	dosageForms  = []string{"Tablet", "Capsule", "Cream", "Gel", "Solution", "Suspension", "Injection", "Patch"}
	regions      = []string{"US", "EU", "CA", "JP"}
	regStatuses  = []string{"Approved", "Approved", "Approved", "Withdrawn", "Investigational"}
	useTypes     = []string{"FDA Labeled", "Non-FDA Labeled", "Off-label"}
)

// Generate builds and fills the MDX knowledge base.
func Generate(cfg Config) (*kb.KB, error) {
	base := kb.New()
	for _, s := range Schemas() {
		if _, err := base.CreateTable(s); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{base: base, rng: rng, cfg: cfg}
	g.fill()
	if g.err != nil {
		return nil, g.err
	}
	// Secondary indexes on the hot lookup columns the online path uses.
	for _, ix := range []struct{ table, col string }{
		{"drug", "name"}, {"indication", "name"}, {"treats", "drug_id"},
		{"treats", "indication_id"}, {"dosage", "drug_id"},
		{"precaution", "drug_id"}, {"adverse_effect", "drug_id"},
		{"drug_interaction", "drug_id"}, {"risk", "drug_id"},
	} {
		if err := base.Table(ix.table).BuildIndex(ix.col); err != nil {
			return nil, err
		}
	}
	if err := base.ValidateForeignKeys(); err != nil {
		return nil, err
	}
	return base, nil
}

// MustGenerate is Generate that panics on error; generation of the default
// configuration is exercised by tests and cannot fail at runtime.
func MustGenerate(cfg Config) *kb.KB {
	base, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return base
}

type generator struct {
	base *kb.KB
	rng  *rand.Rand
	cfg  Config
	err  error

	drugIDs       []string
	drugNames     []string
	indicationIDs []string
	foodIDs       []string
	labIDs        []string
	classIDs      map[string]string
	mfrIDs        []string
	nextID        map[string]int
}

func (g *generator) insert(table string, row kb.Row) {
	if g.err != nil {
		return
	}
	if err := g.base.Table(table).Insert(row); err != nil {
		g.err = fmt.Errorf("medkb: %s: %w", table, err)
	}
}

func (g *generator) id(prefix string) string {
	if g.nextID == nil {
		g.nextID = make(map[string]int)
	}
	g.nextID[prefix]++
	return fmt.Sprintf("%s%04d", prefix, g.nextID[prefix])
}

func (g *generator) pick(list []string) string { return list[g.rng.Intn(len(list))] }

func (g *generator) fill() {
	g.fillClasses()
	g.fillManufacturers()
	g.fillDrugs()
	g.fillIndications()
	g.fillFindings()
	g.fillProcedures()
	g.fillFoods()
	g.fillLabTests()
	g.fillTreats()
	g.fillDosage()
	g.fillDrugSatellites()
	g.fillInteractions()
	g.fillRisks()
	g.fillIVCompatibility()
	g.fillComparativeEfficacy()
	g.fillExtra()
}

func (g *generator) fillClasses() {
	g.classIDs = make(map[string]string)
	for _, c := range drugClasses {
		id := g.id("C")
		g.classIDs[c] = id
		g.insert("drug_class", kb.Row{id, c, c + " pharmacologic class"})
	}
}

func (g *generator) fillManufacturers() {
	names := []string{"Pfizer", "Novartis", "Roche", "Merck", "AbbVie", "Bayer", "Sanofi", "GSK", "AstraZeneca", "Lilly", "Amgen", "Teva", "Mylan", "Sandoz", "Apotex"}
	countries := []string{"US", "CH", "CH", "US", "US", "DE", "FR", "UK", "UK", "US", "US", "IL", "US", "CH", "CA"}
	for i, n := range names {
		id := g.id("M")
		g.mfrIDs = append(g.mfrIDs, id)
		g.insert("manufacturer", kb.Row{id, n, countries[i]})
	}
}

func (g *generator) syntheticDrugName(i int) string {
	p := drugPrefixes[i%len(drugPrefixes)]
	m := drugMiddles[(i/len(drugPrefixes))%len(drugMiddles)]
	s := drugSuffixes[(i/(len(drugPrefixes)*len(drugMiddles)))%len(drugSuffixes)]
	name := p + m + s
	return string(name[0]-'a'+'A') + name[1:]
}

func (g *generator) fillDrugs() {
	n := g.cfg.Drugs
	if n < len(seedDrugs) {
		n = len(seedDrugs)
	}
	for i := 0; i < n; i++ {
		id := g.id("D")
		g.drugIDs = append(g.drugIDs, id)
		var name, brand, base, salt, class string
		if i < len(seedDrugs) {
			sd := seedDrugs[i]
			name, brand, base, salt, class = sd.name, sd.brand, sd.base, sd.salt, sd.class
		} else {
			name = g.syntheticDrugName(i - len(seedDrugs))
			brand = name + " XR"
			base = name
			if g.rng.Intn(2) == 0 {
				salt = g.pick([]string{"Hydrochloride", "Sodium", "Sulfate", "Mesylate", "Citrate"})
			}
			class = drugClasses[g.rng.Intn(len(drugClasses))]
		}
		g.drugNames = append(g.drugNames, name)
		route := g.pick(routes)
		g.insert("drug", kb.Row{id, name, base, nullable(salt), g.classIDs[class], route, g.pick(schedules), g.pick(statuses)})
		g.insert("brand", kb.Row{g.id("B"), brand, id, g.pick(g.mfrIDs)})
		if g.rng.Intn(3) == 0 { // some drugs have a second brand
			g.insert("brand", kb.Row{g.id("B"), name + " Forte", id, g.pick(g.mfrIDs)})
		}
	}
}

func (g *generator) fillIndications() {
	n := g.cfg.Indications
	if n < len(seedIndications) {
		n = len(seedIndications)
	}
	for i := 0; i < n; i++ {
		id := g.id("I")
		g.indicationIDs = append(g.indicationIDs, id)
		var name, system string
		if i < len(seedIndications) {
			name, system = seedIndications[i].name, seedIndications[i].system
		} else {
			name = condAdjs[i%len(condAdjs)] + " " + condNouns[(i/len(condAdjs))%len(condNouns)]
			system = g.pick([]string{"Dermatologic", "Cardiovascular", "Respiratory", "Neurologic", "Gastrointestinal", "Musculoskeletal"})
		}
		icd := fmt.Sprintf("%c%02d.%d", 'A'+i%20, i%100, i%10)
		g.insert("indication", kb.Row{id, name, icd, system, "Clinical condition: " + name})
	}
}

func (g *generator) fillFindings() {
	base := []string{"Elevated blood pressure", "Tachycardia", "Bradycardia", "Fever", "Rash", "Jaundice", "Edema", "Wheezing", "Proteinuria", "Hyperglycemia", "Hypokalemia", "Anemia", "Leukocytosis", "Elevated transaminases", "Prolonged QT interval"}
	for i := 0; i < g.cfg.Findings; i++ {
		name := base[i%len(base)]
		if i >= len(base) {
			name = fmt.Sprintf("%s (grade %d)", name, i/len(base)+1)
		}
		g.insert("finding", kb.Row{g.id("F"), name, g.pick([]string{"Cardiovascular", "Dermatologic", "Hematologic", "Metabolic", "Hepatic"}), "Clinical finding: " + name})
	}
}

func (g *generator) fillProcedures() {
	base := []string{"Hemodialysis", "Gastric lavage", "Intubation", "Central line placement", "Lumbar puncture", "Skin biopsy", "Patch testing", "Echocardiography", "Spirometry", "Colonoscopy"}
	for i := 0; i < g.cfg.Procedures; i++ {
		name := base[i%len(base)]
		if i >= len(base) {
			name = fmt.Sprintf("%s (protocol %d)", name, i/len(base)+1)
		}
		g.insert("med_procedure", kb.Row{g.id("P"), name, g.pick([]string{"Diagnostic", "Therapeutic", "Supportive"}), "Procedure: " + name})
	}
}

func (g *generator) fillFoods() {
	for _, n := range foodNames {
		id := g.id("FD")
		g.foodIDs = append(g.foodIDs, id)
		g.insert("food", kb.Row{id, n, g.pick([]string{"Beverage", "Produce", "Dairy", "Supplement", "Prepared"})})
	}
}

func (g *generator) fillLabTests() {
	for _, n := range labTestNames {
		id := g.id("L")
		g.labIDs = append(g.labIDs, id)
		g.insert("lab_test", kb.Row{id, n, g.pick([]string{"Serum", "Whole blood", "Urine", "Plasma"}), g.pick([]string{"mg/dL", "U/L", "mmol/L", "ng/mL", "%"})})
	}
}

// pairSeed holds the hand-authored drug-indication pairs from the paper's
// transcript so the §6.3 conversation replays exactly.
var treatSeeds = []struct {
	drug, indication, efficacy string
}{
	{"Acitretin", "Psoriasis", "Effective"},
	{"Adalimumab", "Psoriasis", "Effective"},
	{"Fluocinonide", "Psoriasis", "Effective"},
	{"Salicylic Acid", "Psoriasis", "Effective"},
	{"Tazarotene", "Psoriasis", "Effective"},
	{"Tazarotene", "Plaque Psoriasis", "Effective"},
	{"Fluocinonide", "Plaque Psoriasis", "Effective"},
	{"Tazarotene", "Acne", "Effective"},
	{"Aspirin", "Fever", "Effective"},
	{"Ibuprofen", "Fever", "Effective"},
	{"Acetaminophen", "Fever", "Effective"},
	{"Aspirin", "Pain", "Effective"},
	{"Amoxicillin", "Bronchitis", "Possibly Effective"},
	{"Azithromycin", "Bronchitis", "Effective"},
	{"Azithromycin", "Pneumonia", "Effective"},
	{"Benazepril", "Hypertension", "Effective"},
	{"Lisinopril", "Hypertension", "Effective"},
	{"Metformin", "Diabetes Mellitus Type 2", "Effective"},
	{"Sertraline", "Depression", "Effective"},
	{"Sertraline", "Anxiety", "Effective"},
	{"Atorvastatin", "Hyperlipidemia", "Effective"},
	{"Warfarin", "Atrial Fibrillation", "Effective"},
	{"Levothyroxine", "Hypothyroidism", "Effective"},
	{"Omeprazole", "Gastroesophageal Reflux Disease", "Effective"},
	{"Benztropine Mesylate", "Parkinsonism", "Effective"},
	{"Gabapentin", "Epilepsy", "Effective"},
	{"Prednisone", "Rheumatoid Arthritis", "Effective"},
	{"Adalimumab", "Rheumatoid Arthritis", "Effective"},
}

func (g *generator) drugIDByName(name string) string {
	for i, n := range g.drugNames {
		if n == name {
			return g.drugIDs[i]
		}
	}
	return ""
}

func (g *generator) indicationIDByName(name string) string {
	t := g.base.Table("indication")
	ni := t.Schema.ColumnIndex("name")
	ii := t.Schema.ColumnIndex("indication_id")
	for _, row := range t.Rows {
		if row[ni] == name {
			return row[ii].(string)
		}
	}
	return ""
}

func (g *generator) fillTreats() {
	seen := make(map[[2]string]bool)
	add := func(drugID, indID, eff string) {
		key := [2]string{drugID, indID}
		if seen[key] {
			return
		}
		seen[key] = true
		g.insert("treats", kb.Row{g.id("T"), drugID, indID, eff, g.pick(evidences), g.pick(recs)})
	}
	for _, ts := range treatSeeds {
		d, i := g.drugIDByName(ts.drug), g.indicationIDByName(ts.indication)
		if d == "" || i == "" {
			g.err = fmt.Errorf("medkb: treat seed references missing %q / %q", ts.drug, ts.indication)
			return
		}
		add(d, i, ts.efficacy)
	}
	// Every remaining drug treats 1-3 random indications, drawn from
	// outside the seeded set so the paper-transcript answers (psoriasis,
	// fever, …) stay exactly the hand-authored ones.
	pool := g.indicationIDs
	if len(pool) > len(seedIndications) {
		pool = pool[len(seedIndications):]
	}
	for _, d := range g.drugIDs {
		n := 1 + g.rng.Intn(3)
		for j := 0; j < n; j++ {
			add(d, g.pick(pool), g.pick(efficacies))
		}
	}
}

// ageGroupsFor pins the age groups with dosing data for the transcript
// pairs: the §6.3 conversation shows different drug lists for adult vs
// pediatric psoriasis.
var ageGroupSeeds = map[[2]string][]string{
	{"Acitretin", "Psoriasis"}:      {"adult"},
	{"Adalimumab", "Psoriasis"}:     {"adult"},
	{"Fluocinonide", "Psoriasis"}:   {"pediatric"},
	{"Salicylic Acid", "Psoriasis"}: {"pediatric"},
	{"Tazarotene", "Psoriasis"}:     {"pediatric"},
}

// dosageSeeds reproduce the §6.3 transcript dosing answers.
var dosageSeeds = []struct {
	drug, indication, ageGroup, route, desc string
}{
	{"Tazarotene", "Plaque Psoriasis", "pediatric", "TOPICAL",
		"Plaque psoriasis Tazorac(R) gel (12 years and older); initial, apply 0.05% gel TOPICALLY every night to affected area; may increase to 0.1% gel or cream TOPICALLY every night if indicated and tolerated."},
	{"Tazarotene", "Plaque Psoriasis", "adult", "TOPICAL",
		"Plaque psoriasis; apply 0.1% cream TOPICALLY once daily in the evening to affected area."},
	{"Fluocinonide", "Plaque Psoriasis", "pediatric", "TOPICAL",
		"Plaque psoriasis 12 years or older; TOPICAL, apply 0.1% cream once or twice daily to the affected area for maximum of 2 consecutive weeks and 60 grams/week."},
	{"Fluocinonide", "Plaque Psoriasis", "adult", "TOPICAL",
		"Plaque psoriasis; TOPICAL, apply 0.1% cream once daily for up to 2 consecutive weeks."},
	{"Tazarotene", "Psoriasis", "pediatric", "TOPICAL",
		"Psoriasis (12 years and older); apply 0.05% gel TOPICALLY every night to affected area."},
	{"Fluocinonide", "Psoriasis", "pediatric", "TOPICAL",
		"Psoriasis 12 years or older; TOPICAL, apply 0.1% cream once or twice daily."},
}

func (g *generator) fillDosage() {
	for _, ds := range dosageSeeds {
		d, i := g.drugIDByName(ds.drug), g.indicationIDByName(ds.indication)
		if d == "" || i == "" {
			g.err = fmt.Errorf("medkb: dosage seed references missing %q / %q", ds.drug, ds.indication)
			return
		}
		g.insert("dosage", kb.Row{g.id("DS"), d, i, ds.ageGroup, ds.route, "see description", "daily", "see description", ds.desc})
	}
	// Generic dosing rows for every treats pair. Each pair doses one or
	// both age groups (pinned for the transcript pairs), so the set of
	// drugs treating a condition genuinely differs between adult and
	// pediatric — the behaviour the §6.3 conversation exhibits.
	names := make(map[string]string, len(g.drugIDs))
	for i, id := range g.drugIDs {
		names[id] = g.drugNames[i]
	}
	indNames := make(map[string]string)
	it := g.base.Table("indication")
	ini, iii := it.Schema.ColumnIndex("name"), it.Schema.ColumnIndex("indication_id")
	for _, row := range it.Rows {
		indNames[row[iii].(string)] = row[ini].(string)
	}
	tt := g.base.Table("treats")
	di := tt.Schema.ColumnIndex("drug_id")
	ii := tt.Schema.ColumnIndex("indication_id")
	for _, row := range tt.Rows {
		drugID, indID := row[di].(string), row[ii].(string)
		groups, pinned := ageGroupSeeds[[2]string{names[drugID], indNames[indID]}]
		if !pinned {
			switch g.rng.Intn(3) {
			case 0:
				groups = []string{"adult"}
			case 1:
				groups = []string{"pediatric"}
			default:
				groups = ageGroups
			}
		}
		for _, ag := range groups {
			amt := fmt.Sprintf("%d mg", 5*(1+g.rng.Intn(100)))
			freq := g.pick([]string{"once daily", "twice daily", "every 8 hours", "every 12 hours", "as needed"})
			maxd := fmt.Sprintf("%d mg/day", 50*(1+g.rng.Intn(40)))
			desc := fmt.Sprintf("%s %s, maximum %s (%s)", amt, freq, maxd, ag)
			g.insert("dosage", kb.Row{g.id("DS"), drugID, indID, ag, g.pick(routes), amt, freq, maxd, desc})
		}
	}
}

func (g *generator) fillDrugSatellites() {
	for di, d := range g.drugIDs {
		name := g.drugNames[di]
		// dose adjustments
		for j := 0; j < 1+g.rng.Intn(2); j++ {
			reason := g.pick([]string{"Renal impairment", "Hepatic impairment", "Geriatric", "Concomitant CYP3A4 inhibitor"})
			g.insert("dose_adjustment", kb.Row{g.id("DA"), d, reason, g.pick([]string{"adult", "pediatric", "geriatric"}),
				fmt.Sprintf("Reduce %s dose by %d%% for %s.", name, 25*(1+g.rng.Intn(3)), reason)})
		}
		// precautions
		for j := 0; j < 1+g.rng.Intn(3); j++ {
			cat := g.pick(preCats)
			g.insert("precaution", kb.Row{g.id("PR"), d, cat,
				fmt.Sprintf("Use %s with caution in patients with %s disease; monitor closely.", name, cat)})
		}
		// adverse effects
		used := map[string]bool{}
		for j := 0; j < 2+g.rng.Intn(4); j++ {
			en := g.pick(effectNames)
			if used[en] {
				continue
			}
			used[en] = true
			g.insert("adverse_effect", kb.Row{g.id("AE"), d, en, g.pick(severities), g.pick(frequencies),
				fmt.Sprintf("%s reported with %s.", en, name)})
		}
		// administration
		g.insert("administration", kb.Row{g.id("AD"), d, g.pick(routes),
			fmt.Sprintf("Administer %s %s.", name, g.pick([]string{"with food", "on an empty stomach", "with a full glass of water", "at bedtime"})),
			g.pick([]string{"morning", "evening", "with meals", "any time"})})
		// pharmacokinetics
		g.insert("pharmacokinetics", kb.Row{g.id("PK"), d, g.pick([]string{"Rapid", "Moderate", "Slow"}),
			0.5 + g.rng.Float64()*47.5, g.pick([]string{"Hepatic CYP3A4", "Hepatic CYP2D6", "Renal", "Plasma esterases"}),
			g.pick([]string{"Renal", "Biliary", "Fecal"}), 10 + g.rng.Float64()*89})
		// regulatory status
		for _, rgn := range regions[:1+g.rng.Intn(3)] {
			g.insert("regulatory_status", kb.Row{g.id("RG"), d, rgn, g.pick(regStatuses), int64(1960 + g.rng.Intn(60))})
		}
		// mechanism of action
		g.insert("mechanism_of_action", kb.Row{g.id("MA"), d,
			g.pick([]string{"COX-1/COX-2", "ACE", "HMG-CoA reductase", "Beta-adrenergic receptor", "Histamine H1 receptor", "Sodium channel", "TNF-alpha"}),
			fmt.Sprintf("%s acts by modulating its molecular target.", name)})
		// monitoring
		g.insert("monitoring", kb.Row{g.id("MO"), d, g.pick(labTestNames),
			g.pick([]string{"Baseline", "Monthly", "Quarterly", "Annually"}),
			"Monitor for therapeutic response and toxicity."})
		// overdose & toxicology
		g.insert("overdose", kb.Row{g.id("OD"), d,
			g.pick([]string{"Nausea, vomiting, drowsiness", "Hypotension, bradycardia", "Seizures, coma", "Respiratory depression"}),
			g.pick([]string{"Supportive care", "Activated charcoal", "Hemodialysis", "Specific antidote"})})
		g.insert("toxicology", kb.Row{g.id("TX"), d,
			fmt.Sprintf(">%d mg/kg", 10*(1+g.rng.Intn(20))),
			g.pick([]string{"Hepatotoxicity", "Nephrotoxicity", "Cardiotoxicity", "CNS depression"}),
			g.pick([]string{"None specific", "N-acetylcysteine", "Naloxone", "Vitamin K", "Flumazenil"})})
		// pregnancy / lactation / age extremes
		g.insert("pregnancy", kb.Row{g.id("PG"), d, g.pick(pregCats), "Weigh benefit against fetal risk."})
		g.insert("lactation", kb.Row{g.id("LC"), d, g.pick(lactCompat), "Consider infant exposure."})
		g.insert("pediatric_use", kb.Row{g.id("PU"), d, g.pick([]string{"Neonates", "1 month", "2 years", "6 years", "12 years"}),
			"Safety and efficacy established above the minimum age."})
		g.insert("geriatric_use", kb.Row{g.id("GU"), d, g.pick([]string{"Start low, go slow", "Renal dose adjustment advised", "No special precautions"})})
		// storage / availability
		g.insert("storage", kb.Row{g.id("ST"), d, g.pick([]string{"20-25C", "2-8C", "Below 30C"}), g.rng.Intn(2) == 0, "Keep out of reach of children."})
		for j := 0; j < 1+g.rng.Intn(2); j++ {
			g.insert("availability", kb.Row{g.id("AV"), d, g.pick(dosageForms), fmt.Sprintf("%d mg", 5*(1+g.rng.Intn(100)))})
		}
		// education / warnings / allergy / teaching / uses
		g.insert("patient_education", kb.Row{g.id("PE"), d, g.pick([]string{"Adherence", "Side effects", "Storage", "Missed dose"}),
			fmt.Sprintf("Take %s exactly as prescribed.", name)})
		g.insert("warning", kb.Row{g.id("WR"), d, g.pick(severities),
			fmt.Sprintf("Warning: discontinue %s if hypersensitivity occurs.", name)})
		g.insert("allergy", kb.Row{g.id("AL"), d, g.pick(drugClasses), "Cross-sensitivity possible within class."})
		g.insert("clinical_teaching", kb.Row{g.id("CT"), d, g.pick([]string{"Counseling", "Administration technique", "Interactions"}),
			fmt.Sprintf("Teach patients how to use %s safely.", name)})
		g.insert("drug_use", kb.Row{g.id("US"), d, g.pick(useTypes),
			fmt.Sprintf("%s is used for its labeled indications.", name)})
	}
}

func (g *generator) fillInteractions() {
	for di, d := range g.drugIDs {
		// Each drug gets 1-4 interactions, partitioned across the three
		// subtypes so the union/inheritance detection has real data.
		n := 1 + g.rng.Intn(4)
		for j := 0; j < n; j++ {
			iid := g.id("IX")
			g.insert("drug_interaction", kb.Row{iid, d, g.pick(severities), g.pick(documents),
				g.pick([]string{"CYP3A4 inhibition", "Additive effect", "Displaced protein binding", "Reduced absorption", "QT prolongation"}),
				fmt.Sprintf("Interaction involving %s.", g.drugNames[di])})
			// The subtype family is inheritance, not union (paper Figure 2):
			// some interactions stay generic with no subtype row, so the
			// children are NOT exhaustive and the ontology generator must
			// infer isA without promoting it to unionOf.
			switch g.rng.Intn(4) {
			case 0:
				g.insert("drug_food_interaction", kb.Row{iid, g.pick(g.foodIDs),
					g.pick([]string{"Rapid", "Delayed"}), "Separate administration from the food."})
			case 1:
				g.insert("drug_lab_interaction", kb.Row{iid, g.pick(g.labIDs),
					g.pick([]string{"Falsely elevated", "Falsely decreased", "No change"}), "Interpret the result with caution."})
			case 2:
				other := g.pick(g.drugIDs)
				g.insert("drug_drug_interaction", kb.Row{iid, other,
					g.pick([]string{"Avoid combination", "Monitor closely", "Adjust dose"}), "Clinically significant combination."})
			default:
				// generic interaction with no subtype row
			}
		}
	}
}

func (g *generator) fillRisks() {
	for di, d := range g.drugIDs {
		n := 1 + g.rng.Intn(2)
		for j := 0; j < n; j++ {
			rid := g.id("RK")
			g.insert("risk", kb.Row{rid, d, fmt.Sprintf("Risk associated with %s.", g.drugNames[di])})
			if g.rng.Intn(2) == 0 {
				g.insert("contra_indication", kb.Row{rid,
					g.pick([]string{"Severe hepatic impairment", "Pregnancy", "Active GI bleeding", "Hypersensitivity", "Severe renal impairment"}),
					"Documented contraindication."})
			} else {
				g.insert("black_box_warning", kb.Row{rid,
					g.pick([]string{"Serious cardiovascular events", "Hepatotoxicity", "Suicidality in young adults", "Severe infections", "QT prolongation"}),
					int64(1990 + g.rng.Intn(30))})
			}
		}
	}
}

func (g *generator) fillIVCompatibility() {
	for _, d := range g.drugIDs {
		n := 1 + g.rng.Intn(3)
		for j := 0; j < n; j++ {
			other := g.pick(g.drugIDs)
			if other == d {
				continue
			}
			g.insert("iv_compatibility", kb.Row{g.id("IV"), d, other, g.pick(solutions), g.pick(compats),
				"Y-site compatibility tested."})
		}
	}
}

func (g *generator) fillComparativeEfficacy() {
	tt := g.base.Table("treats")
	di := tt.Schema.ColumnIndex("drug_id")
	ii := tt.Schema.ColumnIndex("indication_id")
	for r := 0; r < len(tt.Rows); r += 7 { // sample of pairs
		row := tt.Rows[r]
		other := g.pick(g.drugIDs)
		if other == row[di] {
			continue
		}
		g.insert("comparative_efficacy", kb.Row{g.id("CE"), row[di], other, row[ii],
			g.pick([]string{"Superior", "Non-inferior", "Inferior", "Inconclusive"})})
	}
}

func nullable(s string) kb.Value {
	if s == "" {
		return nil
	}
	return s
}
