package medkb

import (
	"reflect"
	"sync"
	"testing"

	"ontoconv/internal/kb"
	"ontoconv/internal/ontology"
)

// The generated KB is deterministic and moderately large; share one
// instance across tests.
var (
	once     sync.Once
	sharedKB *kb.KB
	sharedO  *ontology.Ontology
	genErr   error
)

func fixture(t *testing.T) (*kb.KB, *ontology.Ontology) {
	t.Helper()
	once.Do(func() {
		sharedKB, genErr = Generate(DefaultConfig())
		if genErr != nil {
			return
		}
		sharedO, genErr = Ontology(sharedKB)
	})
	if genErr != nil {
		t.Fatal(genErr)
	}
	return sharedKB, sharedO
}

func TestGenerateTables(t *testing.T) {
	base, _ := fixture(t)
	if got := len(base.TableNames()); got != len(Schemas()) {
		t.Fatalf("tables = %d, want %d", got, len(Schemas()))
	}
	if base.Table("drug").Len() != DefaultConfig().Drugs {
		t.Fatalf("drugs = %d", base.Table("drug").Len())
	}
	if base.Table("indication").Len() != DefaultConfig().Indications {
		t.Fatalf("indications = %d", base.Table("indication").Len())
	}
}

func TestGenerateForeignKeysValid(t *testing.T) {
	base, _ := fixture(t)
	if err := base.ValidateForeignKeys(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range a.TableNames() {
		ta, tb := a.Table(name), b.Table(name)
		if ta.Len() != tb.Len() {
			t.Fatalf("table %s sizes differ: %d vs %d", name, ta.Len(), tb.Len())
		}
		if ta.Len() > 0 && !reflect.DeepEqual(ta.Rows[0], tb.Rows[0]) {
			t.Fatalf("table %s first rows differ:\n%v\n%v", name, ta.Rows[0], tb.Rows[0])
		}
	}
}

func TestSeedDrugsPresent(t *testing.T) {
	base, _ := fixture(t)
	drug := base.Table("drug")
	names := map[string]bool{}
	ni := drug.Schema.ColumnIndex("name")
	for _, row := range drug.Rows {
		names[row[ni].(string)] = true
	}
	for _, sd := range seedDrugs {
		if !names[sd.name] {
			t.Errorf("seed drug %q missing", sd.name)
		}
	}
}

func TestTranscriptTreatmentPairs(t *testing.T) {
	base, _ := fixture(t)
	// psoriasis drugs from the §6.3 transcript must exist with the seeded
	// efficacies
	treats := base.Table("treats")
	drug := base.Table("drug")
	ind := base.Table("indication")
	drugName := map[string]string{}
	for _, row := range drug.Rows {
		drugName[row[0].(string)] = row[1].(string)
	}
	indName := map[string]string{}
	for _, row := range ind.Rows {
		indName[row[0].(string)] = row[1].(string)
	}
	found := map[string]bool{}
	di := treats.Schema.ColumnIndex("drug_id")
	ii := treats.Schema.ColumnIndex("indication_id")
	for _, row := range treats.Rows {
		if indName[row[ii].(string)] == "Psoriasis" {
			found[drugName[row[di].(string)]] = true
		}
	}
	for _, want := range []string{"Acitretin", "Adalimumab", "Fluocinonide", "Salicylic Acid", "Tazarotene"} {
		if !found[want] {
			t.Errorf("psoriasis treatment %q missing", want)
		}
	}
}

func TestOntologyShapeMatchesFigure2(t *testing.T) {
	_, o := fixture(t)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	// Risk = union(ContraIndication, BlackBoxWarning)
	if got := o.UnionOf("Risk"); !reflect.DeepEqual(got, []string{"BlackBoxWarning", "ContraIndication"}) {
		t.Fatalf("Risk union = %v", got)
	}
	// the interaction family is inheritance, NOT union
	if o.UnionOf("DrugInteraction") != nil {
		t.Fatal("DrugInteraction must not be a union")
	}
	children := o.Children("DrugInteraction")
	if !reflect.DeepEqual(children, []string{"DrugDrugInteraction", "DrugFoodInteraction", "DrugLabInteraction"}) {
		t.Fatalf("interaction children = %v", children)
	}
	// treats collapsed to a direct Drug->Indication relation with a
	// junction
	var treats *ontology.ObjectProperty
	for i := range o.ObjectProperties {
		if o.ObjectProperties[i].Name == "treats" {
			treats = &o.ObjectProperties[i]
		}
	}
	if treats == nil || treats.From != "Drug" || treats.To != "Indication" || treats.Via == nil {
		t.Fatalf("treats relation = %+v", treats)
	}
	if treats.Inverse != "is treated by" {
		t.Fatalf("treats inverse = %q", treats.Inverse)
	}
	// the junction concept is gone
	if o.HasConcept("Treats") {
		t.Fatal("junction concept must be collapsed")
	}
	// label refinement
	if o.Concept("Indication").Label != "Condition" {
		t.Fatalf("Indication label = %q", o.Concept("Indication").Label)
	}
}

func TestOntologyScale(t *testing.T) {
	_, o := fixture(t)
	s := o.Stats()
	// paper §6.1 reports 59 concepts / 178 properties / 58 relationships;
	// the synthetic KB reproduces the same order of magnitude.
	if s.Concepts < 30 {
		t.Fatalf("concepts = %d, want a realistically sized ontology", s.Concepts)
	}
	if s.DataProperties < 80 {
		t.Fatalf("data properties = %d", s.DataProperties)
	}
	if s.ObjectProperties < 25 {
		t.Fatalf("object properties = %d", s.ObjectProperties)
	}
}

func TestDrugSynonyms(t *testing.T) {
	base, _ := fixture(t)
	syn := DrugSynonyms(base)
	// Cyclogel example from §6.1
	got := syn["Cyclopentolate Hydrochloride"]
	hasBrand := false
	for _, s := range got {
		if s == "Cyclogel" {
			hasBrand = true
		}
	}
	if !hasBrand {
		t.Fatalf("Cyclopentolate Hydrochloride synonyms = %v, want brand Cyclogel", got)
	}
	// Cogentin brand for benztropine
	found := false
	for _, s := range syn["Benztropine Mesylate"] {
		if s == "Cogentin" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Benztropine Mesylate synonyms = %v", syn["Benztropine Mesylate"])
	}
}

func TestConceptSynonymsTable2(t *testing.T) {
	syn := ConceptSynonyms()
	// the Table 2 rows
	checks := map[string]string{
		"AdverseEffect":  "side effect",
		"Indication":     "disease",
		"Drug":           "medication",
		"Precaution":     "caution",
		"DoseAdjustment": "dosing modification",
	}
	for concept, want := range checks {
		found := false
		for _, s := range syn[concept] {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s synonyms %v missing %q", concept, syn[concept], want)
		}
	}
}

func TestAgeGroupSynonyms(t *testing.T) {
	syn := AgeGroupSynonyms()
	found := false
	for _, s := range syn["pediatric"] {
		if s == "children" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pediatric synonyms = %v", syn["pediatric"])
	}
}

func TestDosageSeedTexts(t *testing.T) {
	base, _ := fixture(t)
	dosage := base.Table("dosage")
	di := dosage.Schema.ColumnIndex("description")
	found := false
	for _, row := range dosage.Rows {
		if s, ok := row[di].(string); ok && len(s) > 0 &&
			s == dosageSeeds[0].desc {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("transcript Tazarotene pediatric dosing text missing")
	}
}

func TestAgeGroupsDiffer(t *testing.T) {
	base, _ := fixture(t)
	// adult and pediatric psoriasis drug sets must differ (transcript)
	drugsFor := func(age string) map[string]bool {
		out := map[string]bool{}
		dosage := base.Table("dosage")
		ind := base.Table("indication")
		drug := base.Table("drug")
		indID := ""
		for _, row := range ind.Rows {
			if row[1] == "Psoriasis" {
				indID = row[0].(string)
			}
		}
		dI := dosage.Schema.ColumnIndex("drug_id")
		iI := dosage.Schema.ColumnIndex("indication_id")
		aI := dosage.Schema.ColumnIndex("age_group")
		name := map[string]string{}
		for _, row := range drug.Rows {
			name[row[0].(string)] = row[1].(string)
		}
		for _, row := range dosage.Rows {
			if row[iI] == indID && row[aI] == age {
				out[name[row[dI].(string)]] = true
			}
		}
		return out
	}
	adult, ped := drugsFor("adult"), drugsFor("pediatric")
	if adult["Fluocinonide"] || !ped["Fluocinonide"] {
		t.Fatalf("Fluocinonide should be pediatric-only: adult=%v ped=%v", adult, ped)
	}
	if !adult["Acitretin"] || ped["Acitretin"] {
		t.Fatalf("Acitretin should be adult-only")
	}
}

func TestBootstrapEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full bootstrap in -short mode")
	}
	base, o, space, err := Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if base == nil || o == nil || space == nil {
		t.Fatal("nil artifacts")
	}
	for _, name := range []string{
		"Drugs That Treat Condition", "Drug Dosage for Condition",
		"DRUG_GENERAL", "Precautions of Drug", "Adverse Effects of Drug",
		"Drug-Drug Interactions", "Risks of Drug",
	} {
		if space.Intent(name) == nil {
			t.Errorf("intent %q missing", name)
		}
	}
	// pruned intents stay gone
	if space.Intent("Dosages of Drug") != nil {
		t.Error("pruned intent resurfaced")
	}
}

// TestScaledGenerationDeterministic: -scale generation is as reproducible
// as the default size — two runs at the same scale are row-for-row equal,
// and scaling actually multiplies the entity counts.
func TestScaledGenerationDeterministic(t *testing.T) {
	a, err := Generate(ScaledConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(ScaledConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range a.TableNames() {
		ta, tb := a.Table(name), b.Table(name)
		if ta.Len() != tb.Len() {
			t.Fatalf("table %s sizes differ: %d vs %d", name, ta.Len(), tb.Len())
		}
		for i := 0; i < ta.Len(); i += 1 + ta.Len()/16 {
			if !reflect.DeepEqual(ta.Rows[i], tb.Rows[i]) {
				t.Fatalf("table %s row %d differs:\n%v\n%v", name, i, ta.Rows[i], tb.Rows[i])
			}
		}
	}
	base, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.Table("drug").Len(), 2*base.Table("drug").Len(); got != want {
		t.Fatalf("scale 2 drug count = %d, want %d", got, want)
	}
	if err := a.ValidateForeignKeys(); err != nil {
		t.Fatal(err)
	}
}
