package medkb

import (
	"ontoconv/internal/kb"
	"ontoconv/internal/ontogen"
	"ontoconv/internal/ontology"
)

// Ontology builds the MDX domain ontology the hybrid way the paper deploys
// (§3, approach 3): data-driven generation from the KB schema and
// statistics, followed by SME refinement — collapsing the treats junction
// into a direct Drug-treats-Indication object property, naming relationship
// inverses, and fixing display labels.
func Ontology(base *kb.KB) (*ontology.Ontology, error) {
	o, err := ontogen.Generate(base, ontogen.DefaultConfig("mdx"))
	if err != nil {
		return nil, err
	}
	if err := ontogen.CollapseJunction(o, "Treats", "treats", ontology.ObjectProperty{
		Name:    "treats",
		From:    "Drug",
		To:      "Indication",
		Inverse: "is treated by",
		Via: &ontology.JunctionTable{
			Table:      "treats",
			FromColumn: "drug_id",
			ToColumn:   "indication_id",
			Properties: []string{"efficacy"},
		},
		FromColumn: "drug_id",
		ToColumn:   "indication_id",
	}); err != nil {
		return nil, err
	}
	if err := ontogen.Refine(o, ontogen.Refinement{
		Inverses: map[string]string{
			"hasDrug": "has",
			"hasFood": "is involved in",
			"class":   "classifies",
		},
		Labels: map[string]string{
			"MedProcedure":     "Procedure",
			"DrugUse":          "Uses",
			"ContraIndication": "Contra Indication",
			// The deployment's surface vocabulary for Indication is
			// "Condition" (paper Tables 4-5).
			"Indication": "Condition",
		},
		DisplayProperties: map[string]string{
			"Precaution":        "description",
			"Dosage":            "description",
			"DoseAdjustment":    "description",
			"Risk":              "description",
			"ContraIndication":  "condition_name",
			"BlackBoxWarning":   "warning_text",
			"DrugInteraction":   "summary",
			"AdverseEffect":     "name",
			"Administration":    "instructions",
			"RegulatoryStatus":  "status",
			"Pharmacokinetics":  "absorption",
			"MechanismOfAction": "description",
			"IvCompatibility":   "compatibility",
			"DrugUse":           "description",
			"Warning":           "text",
		},
	}); err != nil {
		return nil, err
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}
