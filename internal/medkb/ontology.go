package medkb

import (
	"fmt"

	"ontoconv/internal/kb"
	"ontoconv/internal/ontogen"
	"ontoconv/internal/ontology"
)

// Ontology builds the MDX domain ontology the hybrid way the paper deploys
// (§3, approach 3): data-driven generation from the KB schema and
// statistics, followed by SME refinement — collapsing the treats junction
// into a direct Drug-treats-Indication object property, naming relationship
// inverses, and fixing display labels.
func Ontology(base *kb.KB) (*ontology.Ontology, error) {
	o, err := ontogen.Generate(base, ontogen.DefaultConfig("mdx"))
	if err != nil {
		return nil, err
	}
	if err := collapseJunction(o, "Treats", "treats", ontology.ObjectProperty{
		Name:    "treats",
		From:    "Drug",
		To:      "Indication",
		Inverse: "is treated by",
		Via: &ontology.JunctionTable{
			Table:      "treats",
			FromColumn: "drug_id",
			ToColumn:   "indication_id",
			Properties: []string{"efficacy"},
		},
		FromColumn: "drug_id",
		ToColumn:   "indication_id",
	}); err != nil {
		return nil, err
	}
	if err := ontogen.Refine(o, ontogen.Refinement{
		Inverses: map[string]string{
			"hasDrug": "has",
			"hasFood": "is involved in",
			"class":   "classifies",
		},
		Labels: map[string]string{
			"MedProcedure":     "Procedure",
			"DrugUse":          "Uses",
			"ContraIndication": "Contra Indication",
			// The deployment's surface vocabulary for Indication is
			// "Condition" (paper Tables 4-5).
			"Indication": "Condition",
		},
		DisplayProperties: map[string]string{
			"Precaution":        "description",
			"Dosage":            "description",
			"DoseAdjustment":    "description",
			"Risk":              "description",
			"ContraIndication":  "condition_name",
			"BlackBoxWarning":   "warning_text",
			"DrugInteraction":   "summary",
			"AdverseEffect":     "name",
			"Administration":    "instructions",
			"RegulatoryStatus":  "status",
			"Pharmacokinetics":  "absorption",
			"MechanismOfAction": "description",
			"IvCompatibility":   "compatibility",
			"DrugUse":           "description",
			"Warning":           "text",
		},
	}); err != nil {
		return nil, err
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// collapseJunction removes the concept generated for a pure many-to-many
// junction table and replaces it (and its two outgoing object properties)
// with one direct relationship between the endpoints. This is the kind of
// semantic correction the paper's SMEs apply to the generated ontology.
func collapseJunction(o *ontology.Ontology, conceptName, table string, direct ontology.ObjectProperty) error {
	found := false
	kept := o.Concepts[:0]
	for _, c := range o.Concepts {
		if c.Name == conceptName && c.Table == table {
			found = true
			continue
		}
		kept = append(kept, c)
	}
	if !found {
		return fmt.Errorf("medkb: junction concept %q not found", conceptName)
	}
	o.Concepts = kept
	rels := o.ObjectProperties[:0]
	for _, p := range o.ObjectProperties {
		if p.From == conceptName || p.To == conceptName {
			continue
		}
		rels = append(rels, p)
	}
	o.ObjectProperties = rels
	// Rebuild the concept index (we mutated the slice directly).
	rebuilt := ontology.New(o.Name)
	for _, c := range o.Concepts {
		if err := rebuilt.AddConcept(c); err != nil {
			return err
		}
	}
	for _, p := range o.ObjectProperties {
		if err := rebuilt.AddObjectProperty(p); err != nil {
			return err
		}
	}
	rebuilt.IsARelations = o.IsARelations
	rebuilt.Unions = o.Unions
	if err := rebuilt.AddObjectProperty(direct); err != nil {
		return err
	}
	*o = *rebuilt
	return nil
}
