package medkb

import (
	"strings"

	"ontoconv/internal/kb"
)

// ConceptSynonyms is the domain dictionary of Table 2: synonyms for
// ontology concept names, keyed by concept name. SMEs provide these; user
// testing grows them (§6.3: "side effects" had to be learned as a synonym
// of "adverse effects").
func ConceptSynonyms() map[string][]string {
	return map[string][]string{
		"AdverseEffect": {"side effect", "side effects", "adverse reaction", "adverse reactions", "AE"},
		// "finding" is NOT an Indication synonym: Finding is its own
		// concept, and one surface form must not name two values
		// (ontolint space rule synonym-collision).
		"Indication":          {"condition", "disease", "disorder", "illness"},
		"Drug":                {"medicine", "meds", "medication", "substance"},
		"Precaution":          {"caution", "cautions", "safe to give"},
		"DoseAdjustment":      {"dosing modification", "dose reduction", "dose modification", "modifications to dosing", "increased dosage"},
		"Dosage":              {"dose", "dosing", "dose amount"},
		"DrugInteraction":     {"interaction", "interactions"},
		"DrugDrugInteraction": {"drug-drug interaction", "drug drug interactions"},
		"DrugFoodInteraction": {"food interaction", "drug-food interaction"},
		"DrugLabInteraction":  {"lab interaction", "drug-lab interaction"},
		"ContraIndication":    {"contraindication", "contraindications", "contra-indication", "contra-indications"},
		"BlackBoxWarning":     {"black box warnings", "boxed warning", "boxed warnings"},
		"Risk":                {"risks", "hazards"},
		"IvCompatibility":     {"IV compatibility", "intravenous compatibility", "y-site compatibility"},
		"RegulatoryStatus":    {"regulatory status", "approval status", "FDA status"},
		"Pharmacokinetics":    {"PK", "kinetics", "pharmacokinetic profile"},
		"Administration":      {"how to give", "how to administer", "administration instructions"},
		"DrugUse":             {"uses", "usage", "used for", "what is it for"},
		"MechanismOfAction":   {"mechanism", "MOA", "how it works"},
		"Monitoring":          {"monitoring parameters", "what to monitor"},
		"Overdose":            {"overdosage", "OD"},
		"Toxicology":          {"toxicity", "poisoning"},
		"Pregnancy":           {"pregnancy category", "use in pregnancy"},
		"Lactation":           {"breastfeeding", "nursing"},
		"PediatricUse":        {"use in children", "pediatric considerations", "kids"},
		"GeriatricUse":        {"use in elderly", "geriatric considerations"},
		"Storage":             {"how to store", "storage conditions"},
		"Availability":        {"dosage forms", "formulations", "strengths"},
		"PatientEducation":    {"patient counseling", "patient instructions"},
		"Warning":             {"warnings", "alerts"},
		"Allergy":             {"allergies", "cross sensitivity", "cross-sensitivity"},
		"Brand":               {"brand name", "trade name"},
		"Finding":             {"clinical finding", "sign", "symptom"},
		"ComparativeEfficacy": {"comparison", "comparative effectiveness", "head to head"},
		"CypMetabolism":       {"CYP", "cytochrome", "metabolism enzymes", "CYP450"},
		"RenalDosing":         {"renal dose", "kidney dosing", "renal adjustment"},
		"HepaticDosing":       {"liver dosing", "hepatic adjustment"},
		"Dialyzability":       {"dialysis removal", "dialyzable"},
		"DoNotCrush":          {"can I crush", "crushable", "do not crush list"},
		"PillIdentification":  {"pill id", "what does it look like", "imprint"},
		"DrugCost":            {"price", "cost", "how much does it cost"},
		"Stability":           {"shelf life", "how long is it stable"},
		"ReferenceCitation":   {"references", "citations", "literature"},
		"TherapeuticClass":    {"AHFS class", "ATC code", "therapeutic category"},
		"AltInteraction":      {"herbal interactions", "supplement interactions", "alternative medicine interactions"},
		"ClinicalGuideline":   {"guidelines", "treatment guidelines", "practice guidelines"},
		"AgeDosingBand":       {"weight-based dosing", "mg/kg dosing", "age based dosing"},
		"AlternativeMedicine": {"herbal", "supplement", "natural remedy"},
		"EffectManagement":    {"managing side effects", "side effect management"},
		"ToxTreatment":        {"overdose treatment", "poisoning management"},
	}
}

// AgeGroupSynonyms maps the canonical age-group values to surface forms.
func AgeGroupSynonyms() map[string][]string {
	return map[string][]string{
		"adult":     {"adults", "grown-ups", "grownups"},
		"pediatric": {"pediatrics", "paediatric", "children", "child", "kids", "kid", "infants"},
	}
}

// DrugSynonyms extracts instance synonyms for every drug from the KB:
// its brand names and its base-with-salt description (§6.1: "Drug Cyclogel
// also has a brand name Cylate and a base and salt description
// Cyclopentolate Hydrochloride").
func DrugSynonyms(base *kb.KB) map[string][]string {
	out := make(map[string][]string)
	dt := base.Table("drug")
	idI := dt.Schema.ColumnIndex("drug_id")
	nameI := dt.Schema.ColumnIndex("name")
	baseI := dt.Schema.ColumnIndex("base")
	saltI := dt.Schema.ColumnIndex("salt")
	nameByID := make(map[string]string, dt.Len())
	for _, row := range dt.Rows {
		id := row[idI].(string)
		name := row[nameI].(string)
		nameByID[id] = name
		if b, ok := row[baseI].(string); ok && b != "" {
			full := b
			if s, ok := row[saltI].(string); ok && s != "" {
				full = b + " " + s
			}
			if !strings.EqualFold(full, name) {
				out[name] = append(out[name], full)
			}
			if !strings.EqualFold(b, name) && !strings.EqualFold(b, full) {
				out[name] = append(out[name], b)
			}
		}
	}
	bt := base.Table("brand")
	bNameI := bt.Schema.ColumnIndex("name")
	bDrugI := bt.Schema.ColumnIndex("drug_id")
	for _, row := range bt.Rows {
		drug := nameByID[row[bDrugI].(string)]
		brand := row[bNameI].(string)
		if drug != "" && !strings.EqualFold(brand, drug) {
			out[drug] = append(out[drug], brand)
		}
	}
	return out
}

// IndicationSynonyms provides surface variants for a few seeded
// conditions.
func IndicationSynonyms() map[string][]string {
	return map[string][]string{
		"Gastroesophageal Reflux Disease": {"GERD", "acid reflux"},
		"Diabetes Mellitus Type 2":        {"type 2 diabetes", "T2DM"},
		"Urinary Tract Infection":         {"UTI"},
		"Hypertension":                    {"high blood pressure"},
		"Fever":                           {"pyrexia", "high temperature"},
		"Atrial Fibrillation":             {"afib", "AF"},
	}
}
