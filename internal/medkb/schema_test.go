package medkb

import (
	"strings"
	"testing"
)

func TestSchemasWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Schemas() {
		if s.Name == "" {
			t.Fatal("schema with empty name")
		}
		if seen[s.Name] {
			t.Fatalf("duplicate table %q", s.Name)
		}
		seen[s.Name] = true
		if s.PrimaryKey == "" {
			t.Errorf("table %q has no primary key", s.Name)
		}
		if s.ColumnIndex(s.PrimaryKey) < 0 {
			t.Errorf("table %q primary key %q is not a column", s.Name, s.PrimaryKey)
		}
		for _, fk := range s.ForeignKeys {
			if s.ColumnIndex(fk.Column) < 0 {
				t.Errorf("table %q FK column %q missing", s.Name, fk.Column)
			}
			if !seen[fk.RefTable] && fk.RefTable != s.Name {
				// forward references break creation order
				t.Errorf("table %q references %q before it is created", s.Name, fk.RefTable)
			}
		}
	}
	if len(seen) < 50 {
		t.Fatalf("only %d tables; the MDX stand-in should be at ontology scale", len(seen))
	}
}

func TestFigure2TablesPresent(t *testing.T) {
	names := map[string]bool{}
	for _, s := range Schemas() {
		names[s.Name] = true
	}
	for _, want := range []string{
		"drug", "indication", "treats", "dosage", "precaution",
		"drug_interaction", "drug_food_interaction", "drug_lab_interaction",
		"risk", "contra_indication", "black_box_warning",
	} {
		if !names[want] {
			t.Errorf("Figure 2 table %q missing", want)
		}
	}
}

func TestBootstrapConfigConsistency(t *testing.T) {
	base := MustGenerate(DefaultConfig())
	cfg := BootstrapConfig(base)
	// every rename target is distinct
	targets := map[string]bool{}
	for _, to := range cfg.Feedback.Rename {
		if targets[to] {
			t.Errorf("duplicate rename target %q", to)
		}
		targets[to] = true
	}
	// prior-query keys must be post-rename names (they are applied after
	// renaming); none may appear among rename sources
	for intent := range cfg.Feedback.PriorQueries {
		if _, isSource := cfg.Feedback.Rename[intent]; isSource {
			t.Errorf("prior queries keyed by pre-rename name %q", intent)
		}
	}
	// value filters are keyed by pre-rename names
	for intent := range cfg.Feedback.ValueFilters {
		if targets[intent] {
			t.Errorf("value filter keyed by post-rename name %q", intent)
		}
	}
	// synonyms reference real concepts
	o, err := Ontology(base)
	if err != nil {
		t.Fatal(err)
	}
	for concept := range ConceptSynonyms() {
		if !o.HasConcept(concept) {
			t.Errorf("synonym entry for unknown concept %q", concept)
		}
	}
}

func TestSeedDrugNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, sd := range seedDrugs {
		key := strings.ToLower(sd.name)
		if seen[key] {
			t.Errorf("duplicate seed drug %q", sd.name)
		}
		seen[key] = true
	}
}
