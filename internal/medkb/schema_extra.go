package medkb

import "ontoconv/internal/kb"

// extraSchemas returns the second tier of Micromedex-style content
// families: metabolism, organ-impairment dosing, dialyzability,
// administration safety, identification, alternative medicine, guidelines,
// citations, cost, stability, and management satellites. Together with the
// core tier they bring the discovered ontology close to the scale the
// paper reports for the real MDX ontology (§6.1: 59 concepts, 178
// properties, 58 relationships).
func extraSchemas() []kb.Schema {
	text := func(name string) kb.Column { return kb.Column{Name: name, Type: kb.TextCol} }
	reqText := func(name string) kb.Column { return kb.Column{Name: name, Type: kb.TextCol, NotNull: true} }
	intc := func(name string) kb.Column { return kb.Column{Name: name, Type: kb.IntCol} }
	floatc := func(name string) kb.Column { return kb.Column{Name: name, Type: kb.FloatCol} }
	boolc := func(name string) kb.Column { return kb.Column{Name: name, Type: kb.BoolCol} }
	fk := func(col, table, refCol string) kb.ForeignKey {
		return kb.ForeignKey{Column: col, RefTable: table, RefColumn: refCol}
	}

	return []kb.Schema{
		{
			Name: "cyp_metabolism",
			Columns: []kb.Column{
				reqText("cyp_id"), reqText("drug_id"), text("enzyme"), text("role"),
				text("strength"),
			},
			PrimaryKey:  "cyp_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "renal_dosing",
			Columns: []kb.Column{
				reqText("renal_id"), reqText("drug_id"), text("crcl_range"),
				text("adjustment"), text("note"),
			},
			PrimaryKey:  "renal_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "hepatic_dosing",
			Columns: []kb.Column{
				reqText("hepatic_id"), reqText("drug_id"), text("severity_class"),
				text("adjustment"),
			},
			PrimaryKey:  "hepatic_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "dialyzability",
			Columns: []kb.Column{
				reqText("dial_id"), reqText("drug_id"), text("modality"),
				boolc("removed"), text("note"),
			},
			PrimaryKey:  "dial_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "do_not_crush",
			Columns: []kb.Column{
				reqText("dnc_id"), reqText("drug_id"), text("form"), text("reason"),
			},
			PrimaryKey:  "dnc_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "pill_identification",
			Columns: []kb.Column{
				reqText("pill_id"), reqText("drug_id"), text("shape"), text("color"),
				text("imprint"),
			},
			PrimaryKey:  "pill_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "alternative_medicine",
			Columns: []kb.Column{
				reqText("alt_id"), reqText("name"), text("category"), text("evidence"),
			},
			PrimaryKey: "alt_id",
		},
		{
			Name: "alt_interaction",
			Columns: []kb.Column{
				reqText("alt_ix_id"), reqText("drug_id"), reqText("alt_id"),
				text("severity"), text("note"),
			},
			PrimaryKey: "alt_ix_id",
			ForeignKeys: []kb.ForeignKey{
				fk("drug_id", "drug", "drug_id"),
				fk("alt_id", "alternative_medicine", "alt_id"),
			},
		},
		{
			Name: "clinical_guideline",
			Columns: []kb.Column{
				reqText("guideline_id"), reqText("indication_id"), text("organization"),
				intc("year"), text("summary"),
			},
			PrimaryKey:  "guideline_id",
			ForeignKeys: []kb.ForeignKey{fk("indication_id", "indication", "indication_id")},
		},
		{
			Name: "reference_citation",
			Columns: []kb.Column{
				reqText("ref_id"), reqText("drug_id"), text("source"), intc("year"),
				text("title"),
			},
			PrimaryKey:  "ref_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "drug_cost",
			Columns: []kb.Column{
				reqText("cost_id"), reqText("drug_id"), text("form"),
				floatc("price"), text("currency"),
			},
			PrimaryKey:  "cost_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "stability",
			Columns: []kb.Column{
				reqText("stab_id"), reqText("drug_id"), text("diluent"),
				floatc("duration_hours"), text("condition"),
			},
			PrimaryKey:  "stab_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "effect_management",
			Columns: []kb.Column{
				reqText("em_id"), reqText("effect_id"), text("recommendation"),
			},
			PrimaryKey:  "em_id",
			ForeignKeys: []kb.ForeignKey{fk("effect_id", "adverse_effect", "effect_id")},
		},
		{
			Name: "tox_treatment",
			Columns: []kb.Column{
				reqText("tt_id"), reqText("tox_id"), intc("step_order"), text("action"),
			},
			PrimaryKey:  "tt_id",
			ForeignKeys: []kb.ForeignKey{fk("tox_id", "toxicology", "tox_id")},
		},
		{
			Name: "age_dosing_band",
			Columns: []kb.Column{
				reqText("band_id"), reqText("drug_id"), text("band"), text("dose"),
				text("note"),
			},
			PrimaryKey:  "band_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
		{
			Name: "therapeutic_class",
			Columns: []kb.Column{
				reqText("tc_id"), reqText("drug_id"), text("ahfs_class"), text("atc_code"),
			},
			PrimaryKey:  "tc_id",
			ForeignKeys: []kb.ForeignKey{fk("drug_id", "drug", "drug_id")},
		},
	}
}

// fillExtra populates the second-tier tables.
func (g *generator) fillExtra() {
	altNames := []string{"St John's Wort extract", "Ginkgo biloba", "Echinacea", "Valerian root", "Fish oil", "Melatonin", "Turmeric", "Ginseng", "Garlic extract", "Saw palmetto", "Milk thistle", "Black cohosh"}
	var altIDs []string
	for _, n := range altNames {
		id := g.id("AM")
		altIDs = append(altIDs, id)
		g.insert("alternative_medicine", kb.Row{id, n,
			g.pick([]string{"Herbal", "Supplement", "Vitamin"}),
			g.pick([]string{"Good", "Fair", "Insufficient"})})
	}
	for _, indID := range g.indicationIDs {
		if g.rng.Intn(3) != 0 {
			continue
		}
		g.insert("clinical_guideline", kb.Row{g.id("GL"), indID,
			g.pick([]string{"AHA", "IDSA", "NICE", "WHO", "AAP"}),
			int64(2000 + g.rng.Intn(20)), "Consensus guideline summary."})
	}
	for di, d := range g.drugIDs {
		name := g.drugNames[di]
		g.insert("cyp_metabolism", kb.Row{g.id("CY"), d,
			g.pick([]string{"CYP3A4", "CYP2D6", "CYP2C9", "CYP1A2", "CYP2C19"}),
			g.pick([]string{"Substrate", "Inhibitor", "Inducer"}),
			g.pick([]string{"Strong", "Moderate", "Weak"})})
		g.insert("renal_dosing", kb.Row{g.id("RN"), d,
			g.pick([]string{"CrCl < 30", "CrCl 30-60", "CrCl < 15"}),
			g.pick([]string{"Reduce dose 50%", "Extend interval", "Avoid use", "No change"}),
			"Based on renal function."})
		g.insert("hepatic_dosing", kb.Row{g.id("HP"), d,
			g.pick([]string{"Child-Pugh A", "Child-Pugh B", "Child-Pugh C"}),
			g.pick([]string{"Reduce dose 25%", "Reduce dose 50%", "Avoid use", "No change"})})
		g.insert("dialyzability", kb.Row{g.id("DL"), d,
			g.pick([]string{"Hemodialysis", "Peritoneal dialysis", "CRRT"}),
			g.rng.Intn(2) == 0, "Supplement after dialysis if removed."})
		if g.rng.Intn(3) == 0 {
			g.insert("do_not_crush", kb.Row{g.id("DC"), d,
				g.pick([]string{"Extended-release tablet", "Enteric-coated tablet", "Capsule"}),
				g.pick([]string{"Modified release", "Irritant", "Taste"})})
		}
		g.insert("pill_identification", kb.Row{g.id("PI"), d,
			g.pick([]string{"Round", "Oval", "Capsule", "Oblong"}),
			g.pick([]string{"White", "Yellow", "Blue", "Pink", "Orange"}),
			fmt3Letters(name) + itoa2(g.rng.Intn(100))})
		if g.rng.Intn(2) == 0 {
			g.insert("alt_interaction", kb.Row{g.id("AX"), d, g.pick(altIDs),
				g.pick(severities), "Concurrent use may alter drug exposure."})
		}
		g.insert("reference_citation", kb.Row{g.id("RF"), d,
			g.pick([]string{"NEJM", "Lancet", "JAMA", "BMJ", "Cochrane"}),
			int64(1990 + g.rng.Intn(30)), "Pivotal study of " + name + "."})
		g.insert("drug_cost", kb.Row{g.id("CO"), d,
			g.pick(dosageForms), 1 + g.rng.Float64()*499, "USD"})
		g.insert("stability", kb.Row{g.id("SB"), d, g.pick(solutions),
			float64(4 * (1 + g.rng.Intn(18))), g.pick([]string{"Room temperature", "Refrigerated"})})
		for _, band := range []string{"neonate", "infant", "child", "adolescent"}[:1+g.rng.Intn(3)] {
			g.insert("age_dosing_band", kb.Row{g.id("AB"), d, band,
				itoa2(1+g.rng.Intn(50)) + " mg/kg/day", "Divided doses."})
		}
		g.insert("therapeutic_class", kb.Row{g.id("TH"), d,
			g.pick([]string{"08:12", "24:04", "28:08", "40:28", "56:22"}),
			g.pick([]string{"N02BA", "C09AA", "J01CA", "A02BC", "M01AE"})})
	}
	// management satellites keyed by existing rows
	ae := g.base.Table("adverse_effect")
	for i, row := range ae.Rows {
		if i%3 != 0 {
			continue
		}
		g.insert("effect_management", kb.Row{g.id("EM"), row[0],
			g.pick([]string{"Discontinue drug", "Reduce dose", "Symptomatic care", "Monitor only"})})
	}
	tox := g.base.Table("toxicology")
	for i, row := range tox.Rows {
		if i%2 != 0 {
			continue
		}
		for step := 1; step <= 1+g.rng.Intn(2); step++ {
			g.insert("tox_treatment", kb.Row{g.id("TT"), row[0], int64(step),
				g.pick([]string{"Secure airway", "Activated charcoal", "IV fluids", "Administer antidote", "Observe 24h"})})
		}
	}
}

func fmt3Letters(name string) string {
	out := make([]byte, 0, 3)
	for i := 0; i < len(name) && len(out) < 3; i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c >= 'A' && c <= 'Z' {
			out = append(out, c)
		}
	}
	return string(out)
}

func itoa2(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
