package medkb

import (
	"fmt"
	"sort"

	"ontoconv/internal/core"
	"ontoconv/internal/kb"
)

// BuildIndexes builds the secondary indexes the per-turn serving path
// needs, derived from the data rather than hard-coded:
//
//   - every foreign-key column and its referenced column (hash-join keys),
//   - every column a conversation-space template filters with an equality
//     pushdown, discovered by preparing each intent's template and reading
//     the resulting plan's index hints.
//
// It returns the number of indexes built. Indexes must be built before
// serving starts: the KB is only safe for concurrent readers, so the
// bootstrapper and the server's bundle cold-start both call this before
// the first turn, never on a live KB.
func BuildIndexes(base *kb.KB, space *core.Space) (int, error) {
	type tc struct{ table, column string }
	want := make(map[tc]bool)

	for _, name := range base.TableNames() {
		t := base.Table(name)
		for _, fk := range t.Schema.ForeignKeys {
			want[tc{t.Schema.Name, fk.Column}] = true
			want[tc{fk.RefTable, fk.RefColumn}] = true
		}
	}

	if space != nil {
		for i := range space.Intents {
			tpl := space.Intents[i].Template
			if tpl == nil {
				continue
			}
			plan, err := tpl.Prepare(base)
			if err != nil {
				// A template the planner cannot compile falls back to the
				// interpreter at serve time; it contributes no hints.
				continue
			}
			for _, h := range plan.IndexHints() {
				want[tc{h.Table, h.Column}] = true
			}
		}
	}

	cols := make([]tc, 0, len(want))
	for c := range want {
		cols = append(cols, c)
	}
	sort.Slice(cols, func(i, j int) bool {
		if cols[i].table != cols[j].table {
			return cols[i].table < cols[j].table
		}
		return cols[i].column < cols[j].column
	})

	built := 0
	for _, c := range cols {
		t := base.Table(c.table)
		if t == nil {
			return built, fmt.Errorf("medkb: index on missing table %q", c.table)
		}
		if err := t.BuildIndex(c.column); err != nil {
			return built, err
		}
		built++
	}
	return built, nil
}
