package medkb

import (
	"fmt"
	"sort"

	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/par"
)

// BuildIndexes builds the secondary indexes the per-turn serving path
// needs, derived from the data rather than hard-coded:
//
//   - every foreign-key column and its referenced column (hash-join keys),
//   - every column a conversation-space template filters with an equality
//     pushdown, discovered by preparing each intent's template and reading
//     the resulting plan's index hints.
//
// It returns the number of indexes built. Indexes must be built before
// serving starts: the KB is only safe for concurrent readers, so the
// bootstrapper and the server's bundle cold-start both call this before
// the first turn, never on a live KB.
func BuildIndexes(base *kb.KB, space *core.Space) (int, error) {
	type tc struct{ table, column string }
	want := make(map[tc]bool)

	for _, name := range base.TableNames() {
		t := base.Table(name)
		for _, fk := range t.Schema.ForeignKeys {
			want[tc{t.Schema.Name, fk.Column}] = true
			want[tc{fk.RefTable, fk.RefColumn}] = true
		}
	}

	if space != nil {
		// Template planning is read-only over the KB, so the hint
		// collection fans out per intent; the per-slot hint lists reduce
		// into the want set in intent order.
		hintLists := make([][]tc, len(space.Intents))
		par.Do(len(space.Intents), func(i int) {
			tpl := space.Intents[i].Template
			if tpl == nil {
				return
			}
			plan, err := tpl.Prepare(base)
			if err != nil {
				// A template the planner cannot compile falls back to the
				// interpreter at serve time; it contributes no hints.
				return
			}
			for _, h := range plan.IndexHints() {
				hintLists[i] = append(hintLists[i], tc{h.Table, h.Column})
			}
		})
		for _, hs := range hintLists {
			for _, c := range hs {
				want[c] = true
			}
		}
	}

	cols := make([]tc, 0, len(want))
	for c := range want {
		cols = append(cols, c)
	}
	sort.Slice(cols, func(i, j int) bool {
		if cols[i].table != cols[j].table {
			return cols[i].table < cols[j].table
		}
		return cols[i].column < cols[j].column
	})

	// A table's indexes share one map, so builds parallelize across
	// tables, never within one: each worker owns every column of its
	// table. Errors reduce in sorted table order, so the reported failure
	// is the same at any GOMAXPROCS.
	type group struct {
		table   string
		columns []string
	}
	var groups []group
	for _, c := range cols {
		if len(groups) == 0 || groups[len(groups)-1].table != c.table {
			groups = append(groups, group{table: c.table})
		}
		g := &groups[len(groups)-1]
		g.columns = append(g.columns, c.column)
	}
	errs := make([]error, len(groups))
	counts := make([]int, len(groups))
	par.Do(len(groups), func(gi int) {
		g := groups[gi]
		t := base.Table(g.table)
		if t == nil {
			errs[gi] = fmt.Errorf("medkb: index on missing table %q", g.table)
			return
		}
		for _, col := range g.columns {
			if err := t.BuildIndex(col); err != nil {
				errs[gi] = err
				return
			}
			counts[gi]++
		}
	})
	built := 0
	for gi := range groups {
		built += counts[gi]
		if errs[gi] != nil {
			return built, errs[gi]
		}
	}

	// Freeze every table's columnar projection now that loading and index
	// builds are done: the planner's vectorized scan path activates only
	// on frozen tables, and this is the single point every serving
	// bootstrap (space bootstrap and bundle cold start alike) funnels
	// through. Each task freezes only its own table — the par
	// ordered-merge shape.
	names := base.TableNames()
	par.Do(len(names), func(i int) {
		base.Table(names[i]).Freeze()
	})
	return built, nil
}
