package bundle_test

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ontoconv/internal/agent"
	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
	"ontoconv/internal/kb"
	"ontoconv/internal/medkb"
	"ontoconv/internal/nlu"
	"ontoconv/internal/sim"
)

var (
	once   sync.Once
	base   *kb.KB
	space  *core.Space
	b      *bundle.Bundle
	raw    []byte
	setupE error
)

// fixture bootstraps the MDX workspace and compiles it into a bundle once
// for the whole package.
func fixture(t testing.TB) (*bundle.Bundle, []byte) {
	t.Helper()
	once.Do(func() {
		var err error
		base, _, space, err = medkb.Bootstrap()
		if err != nil {
			setupE = err
			return
		}
		b, err = bundle.Compile(space, bundle.Options{})
		if err != nil {
			setupE = err
			return
		}
		var buf bytes.Buffer
		if err := b.Write(&buf); err != nil {
			setupE = err
			return
		}
		raw = buf.Bytes()
	})
	if setupE != nil {
		t.Fatal(setupE)
	}
	return b, raw
}

func TestWriteOpenRoundTrip(t *testing.T) {
	b, raw := fixture(t)
	got, err := bundle.Open(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Manifest, b.Manifest) {
		t.Fatalf("manifest round-trip mismatch:\n%+v\n%+v", got.Manifest, b.Manifest)
	}
	if got.Version() != b.Version() {
		t.Fatalf("version %q != %q", got.Version(), b.Version())
	}
	if len(got.Space.Intents) != len(b.Space.Intents) {
		t.Fatalf("space intents %d != %d", len(got.Space.Intents), len(b.Space.Intents))
	}
	// a reopened bundle must re-serialize to identical bytes
	var buf bytes.Buffer
	if err := got.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("reopened bundle does not re-serialize byte-identically")
	}
}

func TestCompileDeterministic(t *testing.T) {
	b, raw := fixture(t)
	again, err := bundle.Compile(space, bundle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Version() != b.Version() {
		t.Fatalf("recompilation changed version: %q != %q", again.Version(), b.Version())
	}
	var buf bytes.Buffer
	if err := again.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("compiling the same space twice is not byte-identical")
	}
}

func TestManifestInventory(t *testing.T) {
	b, _ := fixture(t)
	m := b.Manifest
	if m.FormatVersion != bundle.FormatVersion {
		t.Fatalf("format version %d", m.FormatVersion)
	}
	if m.Classifier != nlu.KindLogisticRegression {
		t.Fatalf("classifier kind %q", m.Classifier)
	}
	if m.Intents != len(space.Intents) || m.Entities != len(space.Entities) || m.Examples != len(space.AllExamples()) {
		t.Fatalf("inventory %d/%d/%d does not match space %d/%d/%d",
			m.Intents, m.Entities, m.Examples,
			len(space.Intents), len(space.Entities), len(space.AllExamples()))
	}
	for _, name := range []string{
		bundle.ArtifactSpace, bundle.ArtifactClassifier, bundle.ArtifactRecognizer,
		bundle.ArtifactLogicTable, bundle.ArtifactTree,
	} {
		a := m.Artifact(name)
		if a == nil {
			t.Fatalf("manifest missing artifact %q", name)
		}
		if a.Size <= 0 || len(a.SHA256) != 64 {
			t.Fatalf("artifact %q: size %d, sha %q", name, a.Size, a.SHA256)
		}
	}
	if len(b.Version()) != 12 {
		t.Fatalf("version %q is not 12 hex digits", b.Version())
	}
}

// TestOpenRejectsCorruption flips, truncates, and extends the valid bundle
// and asserts Open returns an error (and never panics) in every case.
func TestOpenRejectsCorruption(t *testing.T) {
	_, raw := fixture(t)

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			data := mutate(append([]byte(nil), raw...))
			if _, err := bundle.Open(bytes.NewReader(data)); err == nil {
				t.Fatalf("%s: Open accepted corrupt input", name)
			}
		})
	}

	corrupt("empty", func(d []byte) []byte { return nil })
	corrupt("bad magic", func(d []byte) []byte { d[0] = 'X'; return d })
	corrupt("bad format version", func(d []byte) []byte { d[5] = 99; return d })
	corrupt("truncated header", func(d []byte) []byte { return d[:3] })
	corrupt("truncated manifest", func(d []byte) []byte { return d[:20] })
	corrupt("truncated mid-payload", func(d []byte) []byte { return d[:len(d)/2] })
	corrupt("truncated last byte", func(d []byte) []byte { return d[:len(d)-1] })
	corrupt("trailing bytes", func(d []byte) []byte { return append(d, 0) })
	corrupt("flipped payload byte", func(d []byte) []byte { d[len(d)-10] ^= 0xff; return d })
	corrupt("oversized section length", func(d []byte) []byte {
		// manifest length prefix sits right after the 6-byte header
		d[6], d[7], d[8], d[9] = 0xff, 0xff, 0xff, 0xff
		return d
	})
	corrupt("corrupt manifest json", func(d []byte) []byte { d[10] = '}'; return d })
	corrupt("flipped manifest hash", func(d []byte) []byte {
		// find the first artifact hash in the manifest JSON and alter one
		// hex digit without changing lengths
		i := bytes.Index(d, []byte(`"sha256":"`))
		if i < 0 {
			t.Fatal("no sha256 field found")
		}
		p := i + len(`"sha256":"`)
		if d[p] == '0' {
			d[p] = '1'
		} else {
			d[p] = '0'
		}
		return d
	})
}

func TestVerify(t *testing.T) {
	b, raw := fixture(t)
	m, err := bundle.Verify(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m.Version() != b.Version() {
		t.Fatalf("Verify version %q != %q", m.Version(), b.Version())
	}
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 1
	if _, err := bundle.Verify(bytes.NewReader(bad)); err == nil {
		t.Fatal("Verify accepted corrupt bundle")
	}
}

func TestWriteFile(t *testing.T) {
	b, raw := fixture(t)
	path := t.TempDir() + "/mdx.bundle"
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := bundle.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != b.Version() {
		t.Fatalf("version %q != %q", got.Version(), b.Version())
	}
	var buf bytes.Buffer
	if err := got.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("file round-trip not byte-identical")
	}
}

func TestCompileRejects(t *testing.T) {
	if _, err := bundle.Compile(nil, bundle.Options{}); err == nil {
		t.Fatal("expected error for nil space")
	}
	if _, err := bundle.Compile(&core.Space{}, bundle.Options{}); err == nil {
		t.Fatal("expected error for empty space")
	}
}

// TestBundleAgentMatchesSpaceAgent is the offline/online split's core
// acceptance check: an agent served from a bundle must be behaviorally
// indistinguishable from one trained in-process from the same space. Both
// agents replay the full E3 simulated usage study and the logs must match
// interaction for interaction.
func TestBundleAgentMatchesSpaceAgent(t *testing.T) {
	b, raw := fixture(t)

	trained, err := agent.New(space, base, agent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// load through the serialized bytes, exactly like a server cold start
	loaded, err := bundle.Open(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	fromBundle, err := agent.NewFromBundle(loaded, base, agent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fromBundle.Version() != b.Version() {
		t.Fatalf("bundle agent version %q, want %q", fromBundle.Version(), b.Version())
	}
	if trained.Version() != agent.SpaceVersion {
		t.Fatalf("trained agent version %q, want %q", trained.Version(), agent.SpaceVersion)
	}
	if trained.Greeting() != fromBundle.Greeting() {
		t.Fatalf("greetings differ: %q vs %q", trained.Greeting(), fromBundle.Greeting())
	}

	cfg := sim.DefaultConfig()
	if testing.Short() {
		cfg.Interactions = 1500
	}
	want := sim.Run(trained, cfg)
	got := sim.Run(fromBundle, cfg)
	if len(want.Interactions) != len(got.Interactions) {
		t.Fatalf("log sizes differ: %d vs %d", len(want.Interactions), len(got.Interactions))
	}
	for i := range want.Interactions {
		if !reflect.DeepEqual(want.Interactions[i], got.Interactions[i]) {
			t.Fatalf("interaction %d diverges:\ntrained: %+v\nbundle:  %+v",
				i, want.Interactions[i], got.Interactions[i])
		}
	}
}

// TestTable5SplitRoundTrip trains both classifier kinds on the Table-5
// train split, round-trips them through serialization, and asserts
// bit-identical Predict output — intent, confidence, and the full score
// vector — across the whole held-out test set.
func TestTable5SplitRoundTrip(t *testing.T) {
	fixture(t)
	var examples []nlu.Example
	for _, te := range space.AllExamples() {
		examples = append(examples, nlu.Example{Text: te.Text, Intent: te.Intent})
	}
	train, test := nlu.TrainTestSplit(examples, 5)
	if len(train) == 0 || len(test) == 0 {
		t.Fatalf("degenerate split: %d train, %d test", len(train), len(test))
	}

	for _, clf := range []nlu.Classifier{nlu.NewNaiveBayes(1), nlu.NewLogisticRegression()} {
		kind := nlu.ClassifierKind(clf)
		if err := clf.Train(train); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		data, err := nlu.MarshalClassifier(clf)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		loaded, err := nlu.UnmarshalClassifier(data)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for _, ex := range test {
			pw, pg := clf.Predict(ex.Text), loaded.Predict(ex.Text)
			if pw.Intent != pg.Intent || pw.Confidence != pg.Confidence {
				t.Fatalf("%s: Predict(%q): (%q, %v) != (%q, %v)",
					kind, ex.Text, pg.Intent, pg.Confidence, pw.Intent, pw.Confidence)
			}
			if !reflect.DeepEqual(pw.Scores, pg.Scores) {
				t.Fatalf("%s: Predict(%q): score vectors differ", kind, ex.Text)
			}
		}
	}
}

// TestErrorsMentionBundle spot-checks that failures are reported with the
// package prefix so server logs are attributable.
func TestErrorsMentionBundle(t *testing.T) {
	_, err := bundle.Open(strings.NewReader("not a bundle at all"))
	if err == nil || !strings.Contains(err.Error(), "bundle:") {
		t.Fatalf("err = %v", err)
	}
}
