package bundle_test

import (
	"bytes"
	"io"
	"testing"

	"ontoconv/internal/bundle"
)

// BenchmarkOpen measures the verified read path on its own: header,
// manifest, hash checks, and artifact decoding.
func BenchmarkOpen(b *testing.B) {
	_, raw := fixture(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bundle.Open(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures offline compilation (classifier training
// included) for comparison with BenchmarkOpen.
func BenchmarkCompile(b *testing.B) {
	fixture(b)
	for i := 0; i < b.N; i++ {
		compiled, err := bundle.Compile(space, bundle.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := compiled.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
