package bundle_test

import (
	"bytes"
	"testing"

	"ontoconv/internal/bundle"
	"ontoconv/internal/core"
)

// FuzzOpenBundle throws arbitrary bytes at the bundle reader. The
// contract under test is the one the online server depends on: Open
// either succeeds on a well-formed, hash-verified bundle or returns an
// error — it must never panic, hang, or over-allocate on hostile input.
func FuzzOpenBundle(f *testing.F) {
	// Seed with a valid compiled bundle and characteristic corruptions.
	b, raw := fuzzSeed(f)
	f.Add(raw)
	f.Add(raw[:len(raw)/2])                         // truncated mid-payload
	f.Add(raw[:6])                                  // header only
	f.Add(append([]byte(nil), raw[:len(raw)-1]...)) // short one byte

	trailing := append(append([]byte(nil), raw...), 0xAA)
	f.Add(trailing)

	hashFlip := append([]byte(nil), raw...)
	if i := bytes.Index(hashFlip, []byte(`"sha256":"`)); i >= 0 {
		p := i + len(`"sha256":"`)
		hashFlip[p] ^= 1
	}
	f.Add(hashFlip)

	badJSON := append([]byte(nil), raw...)
	badJSON[10] = '}'
	f.Add(badJSON)

	f.Add([]byte("OCWB"))
	f.Add([]byte{})

	version := b.Version()
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := bundle.Open(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything Open accepts must be the intact seed bundle: the hash
		// chain makes silent mutation impossible.
		if got.Version() != version {
			t.Fatalf("accepted a mutated bundle: version %q, want %q", got.Version(), version)
		}
	})
}

// fuzzSeed compiles a minimal valid bundle for the corpus. The MDX
// bootstrap is too slow for fuzz startup, so it uses a tiny synthetic
// space instead.
func fuzzSeed(f *testing.F) (*bundle.Bundle, []byte) {
	f.Helper()
	space := tinySpace()
	b, err := bundle.Compile(space, bundle.Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		f.Fatal(err)
	}
	return b, buf.Bytes()
}

// tinySpace is a minimal valid conversation space: two classifiable
// intents and one entity dictionary.
func tinySpace() *core.Space {
	return &core.Space{
		Intents: []core.Intent{
			{
				Name: "Greeting", Kind: core.ConversationPattern,
				Examples: []string{"hello", "hi there", "good morning"},
				Response: "Hello.",
			},
			{
				Name: "Uses of Drug", Kind: core.LookupPattern,
				Examples:      []string{"what is aspirin used for", "uses of ibuprofen", "what does tylenol do"},
				AnswerConcept: "Use",
			},
		},
		Entities: []core.EntityDef{
			{Name: "Drug", Kind: "instance", Values: []core.EntityValue{
				{Value: "Aspirin", Synonyms: []string{"asa"}},
				{Value: "Ibuprofen"},
			}},
		},
		Completion: core.CompletionMeta{
			DependentsOfKey: map[string][]string{},
			KeysOfDependent: map[string][]string{},
		},
	}
}
