// Package bundle implements the compiled workspace bundle: the immutable,
// versioned artifact that is the sole hand-off between the offline
// bootstrap (paper §4, Figure 1a) and the online serving half (§2,
// Figure 1b). The paper's deployment uploads generated artifacts to the
// hosted assistant, which trains and serves them ("Uploading the
// artifacts ... triggers the natural language classifier to train the
// model", §7); here Compile performs the training offline and the bundle
// carries the *trained* model, so a server cold-starts by deserializing
// instead of retraining and can hot-swap a new bundle under live traffic.
//
// On-disk format (all integers big-endian):
//
//	magic "OCWB" | uint16 format version
//	uint32 manifest length | manifest JSON
//	for each artifact, in manifest order:
//	    uint32 payload length | payload bytes
//
// The manifest records the format version, the hash of the conversation
// space the bundle was compiled from, and a SHA-256 per artifact. Open
// verifies every hash and size and rejects truncated, corrupt, or
// tampered bundles with an error — never a panic. Compilation is
// deterministic: the same space yields byte-identical bundle files, so
// the manifest's Version() doubles as a content-addressed release id.
package bundle

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"ontoconv/internal/core"
	"ontoconv/internal/dialogue"
	"ontoconv/internal/nlu"
	"ontoconv/internal/par"
)

// FormatVersion is the container format version; Open rejects any other.
const FormatVersion = 1

// magic identifies a workspace bundle file.
var magic = []byte("OCWB")

// maxSectionLen bounds a single declared section so corrupt length
// prefixes cannot trigger huge allocations.
const maxSectionLen = 1 << 28 // 256 MiB

// Artifact section names, in their fixed bundle order.
const (
	ArtifactSpace      = "space"
	ArtifactClassifier = "classifier"
	ArtifactRecognizer = "recognizer"
	ArtifactLogicTable = "logictable"
	ArtifactTree       = "tree"
)

var artifactOrder = []string{
	ArtifactSpace, ArtifactClassifier, ArtifactRecognizer, ArtifactLogicTable, ArtifactTree,
}

// ArtifactInfo describes one serialized section.
type ArtifactInfo struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// Manifest is the bundle's self-description: enough to identify, verify,
// and display a bundle without decoding its payloads.
type Manifest struct {
	// FormatVersion is the container format version.
	FormatVersion int `json:"formatVersion"`
	// SpaceSHA256 is the hash of the serialized conversation space the
	// bundle was compiled from.
	SpaceSHA256 string `json:"spaceSha256"`
	// Classifier is the trained model kind (nlu envelope tag).
	Classifier string `json:"classifier"`
	// Inventory counts for quick display (ontolint, admin endpoints).
	Intents  int `json:"intents"`
	Entities int `json:"entities"`
	Examples int `json:"examples"`
	// Artifacts lists every section in bundle order with its hash.
	Artifacts []ArtifactInfo `json:"artifacts"`
}

// Version returns the bundle's content-addressed release id: the first 12
// hex digits of the SHA-256 over all artifact hashes. Two bundles share a
// version exactly when their compiled content is identical.
func (m *Manifest) Version() string {
	h := sha256.New()
	for _, a := range m.Artifacts {
		io.WriteString(h, a.Name)
		io.WriteString(h, "\x00")
		io.WriteString(h, a.SHA256)
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// Artifact returns the named section's info, or nil.
func (m *Manifest) Artifact(name string) *ArtifactInfo {
	for i := range m.Artifacts {
		if m.Artifacts[i].Name == name {
			return &m.Artifacts[i]
		}
	}
	return nil
}

// Bundle is a compiled workspace: the manifest plus the decoded artifacts
// the online agent serves from. A Bundle is immutable after Compile/Open.
type Bundle struct {
	Manifest   Manifest
	Space      *core.Space
	Classifier nlu.Classifier
	Recognizer *nlu.Recognizer
	LogicTable *dialogue.LogicTable
	Tree       *dialogue.Tree

	// sections holds the exact bytes each artifact serialized to, kept so
	// Write emits them without re-encoding (and therefore byte-identical
	// to what the hashes in the manifest cover).
	sections map[string][]byte
}

// Options tunes compilation.
type Options struct {
	// Classifier is the model to train; nil selects logistic regression
	// (the experiments' default).
	Classifier nlu.Classifier
}

// Compile trains the classifier on the space's examples, builds the
// recognizer dictionary, generates the logic table and dialogue tree, and
// packages everything into a verified in-memory bundle. The knowledge
// base itself is not part of the bundle: it is the database the serving
// half connects to separately.
func Compile(space *core.Space, opts Options) (*Bundle, error) {
	if space == nil {
		return nil, errors.New("bundle: compile: nil space")
	}
	if err := space.Validate(); err != nil {
		return nil, fmt.Errorf("bundle: compile: %w", err)
	}
	clf := opts.Classifier
	if clf == nil {
		clf = nlu.NewLogisticRegression()
	}
	if nlu.ClassifierKind(clf) == "" {
		return nil, fmt.Errorf("bundle: compile: classifier %T has no serialization support", clf)
	}
	all := space.AllExamples()
	examples := make([]nlu.Example, 0, len(all))
	for _, te := range all {
		examples = append(examples, nlu.Example{Text: te.Text, Intent: te.Intent})
	}

	// The three artifact builds only read the (immutable) space and write
	// disjoint results, so classifier training, recognizer construction,
	// and logic-table/tree generation run concurrently, each into its own
	// slot. Each build is itself deterministic, so the compiled bundle is
	// byte-identical at any GOMAXPROCS.
	type buildSlot struct {
		err   error
		rec   *nlu.Recognizer
		table *dialogue.LogicTable
		tree  *dialogue.Tree
	}
	slots := make([]buildSlot, 3)
	par.Do(len(slots), func(i int) {
		s := &slots[i]
		switch i {
		case 0:
			s.err = clf.Train(examples)
		case 1:
			s.rec = nlu.NewRecognizer()
			for _, def := range space.Entities {
				for _, v := range def.Values {
					s.rec.Add(def.Name, v.Value, v.Synonyms...)
				}
			}
		case 2:
			s.table = dialogue.BuildLogicTable(space)
			s.tree = dialogue.BuildTree(space, s.table)
		}
	})
	if err := slots[0].err; err != nil {
		return nil, fmt.Errorf("bundle: compile: train: %w", err)
	}

	b := &Bundle{
		Space: space, Classifier: clf, Recognizer: slots[1].rec,
		LogicTable: slots[2].table, Tree: slots[2].tree,
	}
	if err := b.seal(); err != nil {
		return nil, err
	}
	return b, nil
}

// seal serializes every artifact, computes hashes, and fills the manifest.
// The five serializations are independent, so they fan out over the worker
// pool into index-ordered slots; the manifest reduce below walks
// artifactOrder, so hashes and bytes come out identical at any GOMAXPROCS
// (errors too: the first failing artifact in bundle order is reported).
func (b *Bundle) seal() error {
	payloads := make([][]byte, len(artifactOrder))
	errs := make([]error, len(artifactOrder))
	par.Do(len(artifactOrder), func(i int) {
		var payload []byte
		var err error
		switch name := artifactOrder[i]; name {
		case ArtifactSpace:
			if payload, err = json.Marshal(b.Space); err != nil {
				err = fmt.Errorf("bundle: encode space: %w", err)
			}
		case ArtifactClassifier:
			if payload, err = nlu.MarshalClassifier(b.Classifier); err != nil {
				err = fmt.Errorf("bundle: encode classifier: %w", err)
			}
		case ArtifactRecognizer:
			if payload, err = nlu.MarshalRecognizer(b.Recognizer); err != nil {
				err = fmt.Errorf("bundle: encode recognizer: %w", err)
			}
		case ArtifactLogicTable:
			if payload, err = json.Marshal(b.LogicTable); err != nil {
				err = fmt.Errorf("bundle: encode logic table: %w", err)
			}
		case ArtifactTree:
			if payload, err = json.Marshal(b.Tree); err != nil {
				err = fmt.Errorf("bundle: encode tree: %w", err)
			}
		}
		payloads[i], errs[i] = payload, err
	})
	b.sections = make(map[string][]byte, len(artifactOrder))
	for i, name := range artifactOrder {
		if errs[i] != nil {
			return errs[i]
		}
		b.sections[name] = payloads[i]
	}
	spaceSum := sha256.Sum256(b.sections[ArtifactSpace])
	b.Manifest = Manifest{
		FormatVersion: FormatVersion,
		SpaceSHA256:   hex.EncodeToString(spaceSum[:]),
		Classifier:    nlu.ClassifierKind(b.Classifier),
		Intents:       len(b.Space.Intents),
		Entities:      len(b.Space.Entities),
		Examples:      len(b.Space.AllExamples()),
	}
	for _, name := range artifactOrder {
		payload := b.sections[name]
		sum := sha256.Sum256(payload)
		b.Manifest.Artifacts = append(b.Manifest.Artifacts, ArtifactInfo{
			Name: name, Size: int64(len(payload)), SHA256: hex.EncodeToString(sum[:]),
		})
	}
	return nil
}

// Version returns the bundle's content-addressed release id.
func (b *Bundle) Version() string { return b.Manifest.Version() }

// Write emits the bundle in the on-disk format. Output is deterministic:
// the same compiled content always produces identical bytes.
func (b *Bundle) Write(w io.Writer) error {
	if b.sections == nil {
		return errors.New("bundle: write: bundle was not compiled or opened")
	}
	manifestJSON, err := json.Marshal(&b.Manifest)
	if err != nil {
		return fmt.Errorf("bundle: encode manifest: %w", err)
	}
	if _, err := w.Write(magic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, uint16(FormatVersion)); err != nil {
		return err
	}
	writeSection := func(payload []byte) error {
		if err := binary.Write(w, binary.BigEndian, uint32(len(payload))); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	}
	if err := writeSection(manifestJSON); err != nil {
		return err
	}
	for _, a := range b.Manifest.Artifacts {
		if err := writeSection(b.sections[a.Name]); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the bundle to path via a temp file + rename, so a
// concurrently reloading server never observes a half-written bundle.
func (b *Bundle) WriteFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".bundle-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := b.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// Open reads, verifies, and decodes a bundle. Any structural problem —
// short file, unknown version, length overruns, hash or size mismatches,
// malformed payloads, dangling references inside the space — returns an
// error; Open never panics on hostile input.
func Open(r io.Reader) (*Bundle, error) {
	head := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("bundle: read header: %w", err)
	}
	if !bytes.Equal(head[:len(magic)], magic) {
		return nil, fmt.Errorf("bundle: bad magic %q", head[:len(magic)])
	}
	if v := binary.BigEndian.Uint16(head[len(magic):]); v != FormatVersion {
		return nil, fmt.Errorf("bundle: unsupported format version %d (want %d)", v, FormatVersion)
	}
	readSection := func(what string) ([]byte, error) {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("bundle: read %s length: %w", what, err)
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > maxSectionLen {
			return nil, fmt.Errorf("bundle: %s section of %d bytes exceeds limit", what, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("bundle: read %s (%d bytes): %w", what, n, err)
		}
		return payload, nil
	}

	manifestJSON, err := readSection("manifest")
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(manifestJSON, &m); err != nil {
		return nil, fmt.Errorf("bundle: decode manifest: %w", err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("bundle: manifest declares format version %d (want %d)", m.FormatVersion, FormatVersion)
	}
	if len(m.Artifacts) != len(artifactOrder) {
		return nil, fmt.Errorf("bundle: manifest lists %d artifacts (want %d)", len(m.Artifacts), len(artifactOrder))
	}
	sections := make(map[string][]byte, len(m.Artifacts))
	for i, a := range m.Artifacts {
		if a.Name != artifactOrder[i] {
			return nil, fmt.Errorf("bundle: artifact %d is %q (want %q)", i, a.Name, artifactOrder[i])
		}
		payload, err := readSection(a.Name)
		if err != nil {
			return nil, err
		}
		if int64(len(payload)) != a.Size {
			return nil, fmt.Errorf("bundle: artifact %q is %d bytes, manifest says %d", a.Name, len(payload), a.Size)
		}
		sum := sha256.Sum256(payload)
		if got := hex.EncodeToString(sum[:]); got != a.SHA256 {
			return nil, fmt.Errorf("bundle: artifact %q hash mismatch: have %s, manifest says %s", a.Name, got, a.SHA256)
		}
		sections[a.Name] = payload
	}
	if extra, err := io.ReadAll(io.LimitReader(r, 1)); err == nil && len(extra) > 0 {
		return nil, errors.New("bundle: trailing bytes after last artifact")
	}

	spaceSum := sha256.Sum256(sections[ArtifactSpace])
	if got := hex.EncodeToString(spaceSum[:]); got != m.SpaceSHA256 {
		return nil, fmt.Errorf("bundle: space hash mismatch: have %s, manifest says %s", got, m.SpaceSHA256)
	}

	var space core.Space
	if err := json.Unmarshal(sections[ArtifactSpace], &space); err != nil {
		return nil, fmt.Errorf("bundle: decode space: %w", err)
	}
	if err := space.Validate(); err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	clf, err := nlu.UnmarshalClassifier(sections[ArtifactClassifier])
	if err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	if kind := nlu.ClassifierKind(clf); kind != m.Classifier {
		return nil, fmt.Errorf("bundle: classifier kind %q does not match manifest %q", kind, m.Classifier)
	}
	rec, err := nlu.UnmarshalRecognizer(sections[ArtifactRecognizer])
	if err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	var table dialogue.LogicTable
	if err := json.Unmarshal(sections[ArtifactLogicTable], &table); err != nil {
		return nil, fmt.Errorf("bundle: decode logic table: %w", err)
	}
	var tree dialogue.Tree
	if err := json.Unmarshal(sections[ArtifactTree], &tree); err != nil {
		return nil, fmt.Errorf("bundle: decode tree: %w", err)
	}
	if tree.Fallback == nil {
		return nil, errors.New("bundle: dialogue tree has no fallback node")
	}
	return &Bundle{
		Manifest: m, Space: &space, Classifier: clf, Recognizer: rec,
		LogicTable: &table, Tree: &tree, sections: sections,
	}, nil
}

// OpenFile opens and verifies a bundle file.
func OpenFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Open(f)
}

// Verify reads a bundle and reports its manifest without keeping the
// decoded artifacts; it returns an error exactly when Open would.
func Verify(r io.Reader) (*Manifest, error) {
	b, err := Open(r)
	if err != nil {
		return nil, err
	}
	return &b.Manifest, nil
}
