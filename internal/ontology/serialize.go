package ontology

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// MarshalJSON ensures the index is not serialized and output is stable.
func (o *Ontology) MarshalJSON() ([]byte, error) {
	type plain Ontology // avoid recursion
	return json.Marshal((*plain)(o))
}

// UnmarshalJSON rebuilds the concept index after decoding.
func (o *Ontology) UnmarshalJSON(data []byte) error {
	type plain Ontology
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	*o = Ontology(p)
	o.conceptIndex = nil
	o.ensureIndex()
	return nil
}

// WriteJSON encodes the ontology as indented JSON.
func (o *Ontology) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o)
}

// ReadJSON decodes an ontology from JSON and validates it.
func ReadJSON(r io.Reader) (*Ontology, error) {
	var o Ontology
	if err := json.NewDecoder(r).Decode(&o); err != nil {
		return nil, fmt.Errorf("ontology: decode: %w", err)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return &o, nil
}

// Functional renders the ontology in a compact OWL-functional-syntax-like
// text form, useful for SME review tooling and golden tests.
func (o *Ontology) Functional() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ontology(<%s>\n", o.Name)
	names := make([]string, 0, len(o.Concepts))
	byName := make(map[string]Concept, len(o.Concepts))
	for _, c := range o.Concepts {
		names = append(names, c.Name)
		byName[c.Name] = c
	}
	sort.Strings(names)
	for _, n := range names {
		c := byName[n]
		fmt.Fprintf(&b, "  Declaration(Class(:%s))\n", c.Name)
		props := make([]DataProperty, len(c.DataProperties))
		copy(props, c.DataProperties)
		sort.Slice(props, func(i, j int) bool { return props[i].Name < props[j].Name })
		for _, p := range props {
			fmt.Fprintf(&b, "  DataPropertyDomain(:%s.%s :%s) DataPropertyRange(:%s.%s xsd:%s)\n",
				c.Name, p.Name, c.Name, c.Name, p.Name, p.Type)
		}
	}
	rels := make([]ObjectProperty, len(o.ObjectProperties))
	copy(rels, o.ObjectProperties)
	sort.Slice(rels, func(i, j int) bool {
		if rels[i].Name != rels[j].Name {
			return rels[i].Name < rels[j].Name
		}
		return rels[i].From < rels[j].From
	})
	for _, p := range rels {
		fmt.Fprintf(&b, "  ObjectPropertyDomain(:%s :%s) ObjectPropertyRange(:%s :%s)\n",
			p.Name, p.From, p.Name, p.To)
	}
	isas := make([]IsA, len(o.IsARelations))
	copy(isas, o.IsARelations)
	sort.Slice(isas, func(i, j int) bool {
		if isas[i].Child != isas[j].Child {
			return isas[i].Child < isas[j].Child
		}
		return isas[i].Parent < isas[j].Parent
	})
	for _, r := range isas {
		fmt.Fprintf(&b, "  SubClassOf(:%s :%s)\n", r.Child, r.Parent)
	}
	unions := make([]Union, len(o.Unions))
	copy(unions, o.Unions)
	sort.Slice(unions, func(i, j int) bool { return unions[i].Parent < unions[j].Parent })
	for _, u := range unions {
		ch := make([]string, len(u.Children))
		copy(ch, u.Children)
		sort.Strings(ch)
		fmt.Fprintf(&b, "  EquivalentClasses(:%s ObjectUnionOf(:%s))\n", u.Parent, strings.Join(ch, " :"))
	}
	b.WriteString(")\n")
	return b.String()
}

// Annotation is an SME annotation attached to the OWL description of a
// concept or relationship (paper §4.2.2). The bootstrapper consumes these
// to add, refine, or prune query patterns.
type Annotation struct {
	// Target identifies the annotated element: a concept name ("Drug"),
	// or "From.relation.To" for a relationship.
	Target string `json:"target"`
	// Kind is one of "expected-pattern", "prune-pattern", "synonym".
	Kind string `json:"kind"`
	// Value holds the pattern text, or the synonym, depending on Kind.
	Value string `json:"value"`
}

// AnnotationSet is a collection of SME annotations with lookup helpers.
type AnnotationSet struct {
	Annotations []Annotation `json:"annotations"`
}

// ByKind returns the annotations of the given kind.
func (s *AnnotationSet) ByKind(kind string) []Annotation {
	var out []Annotation
	for _, a := range s.Annotations {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

// Add appends an annotation.
func (s *AnnotationSet) Add(target, kind, value string) {
	s.Annotations = append(s.Annotations, Annotation{Target: target, Kind: kind, Value: value})
}
