// Package ontology implements the OWL-style domain-ontology model at the
// core of the conversation system (paper §3).
//
// An ontology has concepts (OWL classes), data properties attached to
// concepts, and object properties (relationships) between concepts.
// Subsumption (isA) and union relationships carry special semantics that
// the bootstrapper exploits when generating query patterns.
package ontology

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ontoconv/internal/graph"
)

// DataType enumerates the primitive types of data properties.
type DataType string

// Supported data property types.
const (
	String  DataType = "string"
	Integer DataType = "integer"
	Float   DataType = "float"
	Boolean DataType = "boolean"
)

// DataProperty is a property of a concept holding a literal value
// (e.g. Drug.name, Drug.brand).
type DataProperty struct {
	Name string   `json:"name"`
	Type DataType `json:"type"`
	// Categorical marks properties with few distinct values relative to
	// the instance count; set during ontology generation from KB
	// statistics and used by entity extraction.
	Categorical bool `json:"categorical,omitempty"`
	// Label is the human-readable surface form used in generated text;
	// defaults to a de-camel-cased Name.
	Label string `json:"label,omitempty"`
}

// Concept is an OWL class.
type Concept struct {
	Name string `json:"name"`
	// Label is the surface form used when generating utterances
	// ("DrugFoodInteraction" -> "Drug Food Interaction").
	Label          string         `json:"label,omitempty"`
	DataProperties []DataProperty `json:"dataProperties,omitempty"`
	// Table optionally records the KB table backing this concept; set by
	// the data-driven ontology generator and consumed by the NLQ service.
	Table string `json:"table,omitempty"`
	// TableKey records the primary-key column of Table, used by the NLQ
	// service to build joins.
	TableKey string `json:"tableKey,omitempty"`
	// DisplayProperty is the data property used to render an instance of
	// this concept in natural language (typically "name").
	DisplayProperty string `json:"displayProperty,omitempty"`
}

// ObjectProperty is a directed relationship between two concepts
// (e.g. Drug -treats-> Indication).
type ObjectProperty struct {
	Name    string `json:"name"`
	From    string `json:"from"`
	To      string `json:"to"`
	Inverse string `json:"inverse,omitempty"` // e.g. "is treated by"
	// Functional marks relationships where each From instance relates to
	// at most one To instance.
	Functional bool `json:"functional,omitempty"`
	// FromColumn/ToColumn record the KB join columns backing the
	// relationship; consumed by the NLQ service. For a direct FK
	// relationship, From.Table.FromColumn references To.Table.ToColumn.
	FromColumn string `json:"fromColumn,omitempty"`
	ToColumn   string `json:"toColumn,omitempty"`
	// Via backs many-to-many relationships with a junction table:
	// From.Table.(its PK) = Via.Table.Via.FromColumn and
	// Via.Table.Via.ToColumn = To.Table.(its PK). When Via is set,
	// FromColumn/ToColumn name the primary keys of the endpoint tables.
	Via *JunctionTable `json:"via,omitempty"`
}

// JunctionTable describes the junction backing a many-to-many object
// property.
type JunctionTable struct {
	Table      string `json:"table"`
	FromColumn string `json:"fromColumn"`
	ToColumn   string `json:"toColumn"`
	// Properties lists junction columns that qualify the relationship
	// itself (e.g. efficacy on Drug-treats-Indication); the NLQ service
	// can project them alongside the answer.
	Properties []string `json:"properties,omitempty"`
}

// IsA records that Child is a specialization of Parent.
type IsA struct {
	Child  string `json:"child"`
	Parent string `json:"parent"`
}

// Union records that Parent is the union of Children, mutually exclusive
// and exhaustive (paper §3: "Risk" is a union of "Contra Indication" and
// "Black Box Warning").
type Union struct {
	Parent   string   `json:"parent"`
	Children []string `json:"children"`
}

// Ontology is the full domain ontology.
type Ontology struct {
	Name             string           `json:"name"`
	Concepts         []Concept        `json:"concepts"`
	ObjectProperties []ObjectProperty `json:"objectProperties"`
	IsARelations     []IsA            `json:"isA,omitempty"`
	Unions           []Union          `json:"unions,omitempty"`

	conceptIndex map[string]*Concept
}

// New returns an empty named ontology.
func New(name string) *Ontology {
	return &Ontology{Name: name, conceptIndex: make(map[string]*Concept)}
}

// AddConcept appends a concept; a missing Label is derived from the name.
// It returns an error if the concept already exists.
func (o *Ontology) AddConcept(c Concept) error {
	o.ensureIndex()
	if _, ok := o.conceptIndex[c.Name]; ok {
		return fmt.Errorf("ontology: duplicate concept %q", c.Name)
	}
	if c.Label == "" {
		c.Label = Labelize(c.Name)
	}
	for i := range c.DataProperties {
		if c.DataProperties[i].Label == "" {
			c.DataProperties[i].Label = Labelize(c.DataProperties[i].Name)
		}
	}
	o.Concepts = append(o.Concepts, c)
	o.conceptIndex[c.Name] = &o.Concepts[len(o.Concepts)-1]
	return nil
}

// MustAddConcept is AddConcept that panics on error; for static ontologies.
func (o *Ontology) MustAddConcept(c Concept) {
	if err := o.AddConcept(c); err != nil {
		panic(err)
	}
}

// AddObjectProperty appends a relationship between existing concepts.
func (o *Ontology) AddObjectProperty(p ObjectProperty) error {
	o.ensureIndex()
	if _, ok := o.conceptIndex[p.From]; !ok {
		return fmt.Errorf("ontology: object property %q: unknown concept %q", p.Name, p.From)
	}
	if _, ok := o.conceptIndex[p.To]; !ok {
		return fmt.Errorf("ontology: object property %q: unknown concept %q", p.Name, p.To)
	}
	o.ObjectProperties = append(o.ObjectProperties, p)
	return nil
}

// MustAddObjectProperty is AddObjectProperty that panics on error.
func (o *Ontology) MustAddObjectProperty(p ObjectProperty) {
	if err := o.AddObjectProperty(p); err != nil {
		panic(err)
	}
}

// AddIsA records child isA parent.
func (o *Ontology) AddIsA(child, parent string) error {
	o.ensureIndex()
	if _, ok := o.conceptIndex[child]; !ok {
		return fmt.Errorf("ontology: isA: unknown concept %q", child)
	}
	if _, ok := o.conceptIndex[parent]; !ok {
		return fmt.Errorf("ontology: isA: unknown concept %q", parent)
	}
	o.IsARelations = append(o.IsARelations, IsA{Child: child, Parent: parent})
	return nil
}

// AddUnion records parent = union(children).
func (o *Ontology) AddUnion(parent string, children ...string) error {
	o.ensureIndex()
	if _, ok := o.conceptIndex[parent]; !ok {
		return fmt.Errorf("ontology: union: unknown concept %q", parent)
	}
	for _, ch := range children {
		if _, ok := o.conceptIndex[ch]; !ok {
			return fmt.Errorf("ontology: union: unknown concept %q", ch)
		}
	}
	o.Unions = append(o.Unions, Union{Parent: parent, Children: children})
	return nil
}

func (o *Ontology) ensureIndex() {
	if o.conceptIndex == nil {
		o.conceptIndex = make(map[string]*Concept, len(o.Concepts))
		for i := range o.Concepts {
			o.conceptIndex[o.Concepts[i].Name] = &o.Concepts[i]
		}
	}
}

// Concept returns the named concept, or nil.
func (o *Ontology) Concept(name string) *Concept {
	o.ensureIndex()
	return o.conceptIndex[name]
}

// HasConcept reports whether the named concept exists.
func (o *Ontology) HasConcept(name string) bool { return o.Concept(name) != nil }

// ConceptNames returns all concept names in declaration order.
func (o *Ontology) ConceptNames() []string {
	out := make([]string, len(o.Concepts))
	for i, c := range o.Concepts {
		out[i] = c.Name
	}
	return out
}

// Property returns the named data property of the named concept, or nil.
func (o *Ontology) Property(concept, property string) *DataProperty {
	c := o.Concept(concept)
	if c == nil {
		return nil
	}
	for i := range c.DataProperties {
		if c.DataProperties[i].Name == property {
			return &c.DataProperties[i]
		}
	}
	return nil
}

// RelationsFrom returns the object properties whose From is the concept.
func (o *Ontology) RelationsFrom(concept string) []ObjectProperty {
	var out []ObjectProperty
	for _, p := range o.ObjectProperties {
		if p.From == concept {
			out = append(out, p)
		}
	}
	return out
}

// RelationsTo returns the object properties whose To is the concept.
func (o *Ontology) RelationsTo(concept string) []ObjectProperty {
	var out []ObjectProperty
	for _, p := range o.ObjectProperties {
		if p.To == concept {
			out = append(out, p)
		}
	}
	return out
}

// RelationsOf returns all object properties touching the concept.
func (o *Ontology) RelationsOf(concept string) []ObjectProperty {
	var out []ObjectProperty
	for _, p := range o.ObjectProperties {
		if p.From == concept || p.To == concept {
			out = append(out, p)
		}
	}
	return out
}

// Children returns the concepts declared as isA-children of parent, sorted.
func (o *Ontology) Children(parent string) []string {
	var out []string
	for _, r := range o.IsARelations {
		if r.Parent == parent {
			out = append(out, r.Child)
		}
	}
	sort.Strings(out)
	return out
}

// Parents returns the isA-parents of child, sorted.
func (o *Ontology) Parents(child string) []string {
	var out []string
	for _, r := range o.IsARelations {
		if r.Child == child {
			out = append(out, r.Parent)
		}
	}
	sort.Strings(out)
	return out
}

// UnionOf returns the union children of parent, or nil if parent is not a
// union concept.
func (o *Ontology) UnionOf(parent string) []string {
	for _, u := range o.Unions {
		if u.Parent == parent {
			out := make([]string, len(u.Children))
			copy(out, u.Children)
			sort.Strings(out)
			return out
		}
	}
	return nil
}

// IsUnion reports whether the concept is declared as a union of others.
func (o *Ontology) IsUnion(name string) bool { return o.UnionOf(name) != nil }

// IsParent reports whether the concept has isA children.
func (o *Ontology) IsParent(name string) bool { return len(o.Children(name)) > 0 }

// Neighborhood returns the distinct concepts within one relationship hop of
// the given concept (object properties in either direction), sorted.
// isA and union edges are not traversed: the bootstrapper treats those
// through their dedicated augmentation rules instead.
func (o *Ontology) Neighborhood(concept string) []string {
	seen := make(map[string]bool)
	for _, p := range o.ObjectProperties {
		if p.From == concept {
			seen[p.To] = true
		}
		if p.To == concept {
			seen[p.From] = true
		}
	}
	delete(seen, concept)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Graph projects the ontology onto a directed graph: one node per concept,
// one edge per object property (labelled with the property name), one edge
// per isA (labelled "isA") and per union membership (labelled "unionOf").
// The graph is the input to centrality-based key-concept discovery.
func (o *Ontology) Graph() *graph.Graph {
	g := graph.New()
	for _, c := range o.Concepts {
		g.AddNode(c.Name)
	}
	for _, p := range o.ObjectProperties {
		g.AddEdge(p.From, p.To, p.Name)
	}
	for _, r := range o.IsARelations {
		g.AddEdge(r.Child, r.Parent, "isA")
	}
	for _, u := range o.Unions {
		for _, ch := range u.Children {
			g.AddEdge(ch, u.Parent, "unionOf")
		}
	}
	return g
}

// RelationGraph is like Graph but contains only object-property edges;
// used for relationship-pattern path discovery where isA/union edges must
// not create spurious join paths.
func (o *Ontology) RelationGraph() *graph.Graph {
	g := graph.New()
	for _, c := range o.Concepts {
		g.AddNode(c.Name)
	}
	for _, p := range o.ObjectProperties {
		g.AddEdge(p.From, p.To, p.Name)
	}
	return g
}

// Stats summarizes ontology size the way the paper reports it (§6.1:
// "59 concepts, 178 properties, and 58 relationships").
type Stats struct {
	Concepts         int `json:"concepts"`
	DataProperties   int `json:"dataProperties"`
	ObjectProperties int `json:"objectProperties"`
	IsA              int `json:"isA"`
	Unions           int `json:"unions"`
}

// Stats computes size statistics.
func (o *Ontology) Stats() Stats {
	s := Stats{
		Concepts:         len(o.Concepts),
		ObjectProperties: len(o.ObjectProperties),
		IsA:              len(o.IsARelations),
		Unions:           len(o.Unions),
	}
	for _, c := range o.Concepts {
		s.DataProperties += len(c.DataProperties)
	}
	return s
}

// Validate checks referential integrity: every relationship endpoint, isA
// member and union member must be a declared concept; unions must have at
// least two children; concept names must be unique.
func (o *Ontology) Validate() error {
	seen := make(map[string]bool, len(o.Concepts))
	var errs []string
	for _, c := range o.Concepts {
		if c.Name == "" {
			errs = append(errs, "concept with empty name")
			continue
		}
		if seen[c.Name] {
			errs = append(errs, fmt.Sprintf("duplicate concept %q", c.Name))
		}
		seen[c.Name] = true
	}
	for _, p := range o.ObjectProperties {
		if !seen[p.From] {
			errs = append(errs, fmt.Sprintf("object property %q references unknown concept %q", p.Name, p.From))
		}
		if !seen[p.To] {
			errs = append(errs, fmt.Sprintf("object property %q references unknown concept %q", p.Name, p.To))
		}
	}
	for _, r := range o.IsARelations {
		if !seen[r.Child] {
			errs = append(errs, fmt.Sprintf("isA references unknown concept %q", r.Child))
		}
		if !seen[r.Parent] {
			errs = append(errs, fmt.Sprintf("isA references unknown concept %q", r.Parent))
		}
	}
	for _, u := range o.Unions {
		if !seen[u.Parent] {
			errs = append(errs, fmt.Sprintf("union references unknown concept %q", u.Parent))
		}
		if len(u.Children) < 2 {
			errs = append(errs, fmt.Sprintf("union %q has fewer than two children", u.Parent))
		}
		for _, ch := range u.Children {
			if !seen[ch] {
				errs = append(errs, fmt.Sprintf("union %q references unknown concept %q", u.Parent, ch))
			}
		}
	}
	if len(errs) > 0 {
		return errors.New("ontology: invalid: " + strings.Join(errs, "; "))
	}
	return nil
}

// Labelize converts an identifier like "DrugFoodInteraction" or
// "dose_adjustment" into a human-readable label ("Drug Food Interaction",
// "Dose Adjustment").
func Labelize(name string) string {
	var b strings.Builder
	prevLower := false
	for _, r := range name {
		switch {
		case r == '_' || r == '-':
			b.WriteByte(' ')
			prevLower = false
			continue
		case r >= 'A' && r <= 'Z' && prevLower:
			b.WriteByte(' ')
		}
		prevLower = r >= 'a' && r <= 'z' || r >= '0' && r <= '9'
		b.WriteRune(r)
	}
	words := strings.Fields(b.String())
	for i, w := range words {
		if len(w) > 0 && w[0] >= 'a' && w[0] <= 'z' {
			words[i] = strings.ToUpper(w[:1]) + w[1:]
		}
	}
	return strings.Join(words, " ")
}
