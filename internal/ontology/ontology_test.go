package ontology

import (
	"reflect"
	"strings"
	"testing"
)

// figure2 builds the paper's Figure 2 snippet: Drug, Indication, Dosage,
// Precaution, Risk (union of ContraIndication and BlackBoxWarning),
// DrugInteraction (parent of food/lab subtypes).
func figure2(t *testing.T) *Ontology {
	t.Helper()
	o := New("figure2")
	for _, c := range []Concept{
		{Name: "Drug", DataProperties: []DataProperty{
			{Name: "name", Type: String}, {Name: "brand", Type: String},
		}, DisplayProperty: "name", Table: "drug", TableKey: "drug_id"},
		{Name: "Indication", DataProperties: []DataProperty{
			{Name: "name", Type: String}, {Name: "desc", Type: String},
		}, DisplayProperty: "name", Table: "indication", TableKey: "indication_id"},
		{Name: "Dosage", DataProperties: []DataProperty{
			{Name: "description", Type: String}, {Name: "route", Type: String, Categorical: true},
		}, DisplayProperty: "description", Table: "dosage", TableKey: "dosage_id"},
		{Name: "Precaution", DataProperties: []DataProperty{{Name: "description", Type: String}},
			DisplayProperty: "description", Table: "precaution", TableKey: "precaution_id"},
		{Name: "Risk", Table: "risk", TableKey: "risk_id"},
		{Name: "ContraIndication", Table: "contra_indication", TableKey: "risk_id"},
		{Name: "BlackBoxWarning", Table: "black_box_warning", TableKey: "risk_id"},
		{Name: "DrugInteraction", Table: "drug_interaction", TableKey: "interaction_id"},
		{Name: "DrugFoodInteraction", Table: "drug_food_interaction", TableKey: "interaction_id"},
		{Name: "DrugLabInteraction", Table: "drug_lab_interaction", TableKey: "interaction_id"},
	} {
		if err := o.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(o.AddObjectProperty(ObjectProperty{Name: "treats", From: "Drug", To: "Indication", Inverse: "is treated by"}))
	must(o.AddObjectProperty(ObjectProperty{Name: "hasDrug", From: "Dosage", To: "Drug", FromColumn: "drug_id", ToColumn: "drug_id"}))
	must(o.AddObjectProperty(ObjectProperty{Name: "hasIndication", From: "Dosage", To: "Indication", FromColumn: "indication_id", ToColumn: "indication_id"}))
	must(o.AddObjectProperty(ObjectProperty{Name: "for", From: "Precaution", To: "Drug", FromColumn: "drug_id", ToColumn: "drug_id"}))
	must(o.AddObjectProperty(ObjectProperty{Name: "hasRisk", From: "Risk", To: "Drug", FromColumn: "drug_id", ToColumn: "drug_id"}))
	must(o.AddObjectProperty(ObjectProperty{Name: "cause", From: "DrugInteraction", To: "Drug", FromColumn: "drug_id", ToColumn: "drug_id"}))
	must(o.AddIsA("DrugFoodInteraction", "DrugInteraction"))
	must(o.AddIsA("DrugLabInteraction", "DrugInteraction"))
	must(o.AddIsA("ContraIndication", "Risk"))
	must(o.AddIsA("BlackBoxWarning", "Risk"))
	must(o.AddUnion("Risk", "ContraIndication", "BlackBoxWarning"))
	return o
}

func TestAddConceptDuplicate(t *testing.T) {
	o := New("t")
	if err := o.AddConcept(Concept{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddConcept(Concept{Name: "A"}); err == nil {
		t.Fatal("duplicate concept must error")
	}
}

func TestLabelDefaults(t *testing.T) {
	o := New("t")
	o.MustAddConcept(Concept{Name: "DrugFoodInteraction", DataProperties: []DataProperty{{Name: "effect_on_result", Type: String}}})
	c := o.Concept("DrugFoodInteraction")
	if c.Label != "Drug Food Interaction" {
		t.Fatalf("Label = %q", c.Label)
	}
	if c.DataProperties[0].Label != "Effect On Result" {
		t.Fatalf("property label = %q", c.DataProperties[0].Label)
	}
}

func TestObjectPropertyValidation(t *testing.T) {
	o := New("t")
	o.MustAddConcept(Concept{Name: "A"})
	if err := o.AddObjectProperty(ObjectProperty{Name: "r", From: "A", To: "Nope"}); err == nil {
		t.Fatal("unknown To must error")
	}
	if err := o.AddObjectProperty(ObjectProperty{Name: "r", From: "Nope", To: "A"}); err == nil {
		t.Fatal("unknown From must error")
	}
}

func TestIsAUnionValidation(t *testing.T) {
	o := New("t")
	o.MustAddConcept(Concept{Name: "A"})
	o.MustAddConcept(Concept{Name: "B"})
	if err := o.AddIsA("A", "missing"); err == nil {
		t.Fatal("isA to missing parent must error")
	}
	if err := o.AddUnion("A", "B", "missing"); err == nil {
		t.Fatal("union with missing child must error")
	}
}

func TestRelationsQueries(t *testing.T) {
	o := figure2(t)
	if got := len(o.RelationsFrom("Dosage")); got != 2 {
		t.Fatalf("RelationsFrom(Dosage) = %d, want 2", got)
	}
	if got := len(o.RelationsTo("Drug")); got != 4 {
		t.Fatalf("RelationsTo(Drug) = %d, want 4", got)
	}
	if got := len(o.RelationsOf("Indication")); got != 2 {
		t.Fatalf("RelationsOf(Indication) = %d, want 2", got)
	}
}

func TestChildrenParentsUnions(t *testing.T) {
	o := figure2(t)
	if got := o.Children("Risk"); !reflect.DeepEqual(got, []string{"BlackBoxWarning", "ContraIndication"}) {
		t.Fatalf("Children(Risk) = %v", got)
	}
	if got := o.Parents("DrugFoodInteraction"); !reflect.DeepEqual(got, []string{"DrugInteraction"}) {
		t.Fatalf("Parents = %v", got)
	}
	if got := o.UnionOf("Risk"); !reflect.DeepEqual(got, []string{"BlackBoxWarning", "ContraIndication"}) {
		t.Fatalf("UnionOf(Risk) = %v", got)
	}
	if o.UnionOf("DrugInteraction") != nil {
		t.Fatal("DrugInteraction is inheritance, not union")
	}
	if !o.IsUnion("Risk") || o.IsUnion("Drug") {
		t.Fatal("IsUnion wrong")
	}
	if !o.IsParent("DrugInteraction") || o.IsParent("Drug") {
		t.Fatal("IsParent wrong")
	}
}

func TestNeighborhoodExcludesSpecialEdges(t *testing.T) {
	o := figure2(t)
	nb := o.Neighborhood("Drug")
	want := []string{"Dosage", "DrugInteraction", "Indication", "Precaution", "Risk"}
	if !reflect.DeepEqual(nb, want) {
		t.Fatalf("Neighborhood(Drug) = %v, want %v", nb, want)
	}
	// ContraIndication connects to Risk only via isA, which Neighborhood
	// must not traverse.
	if got := o.Neighborhood("ContraIndication"); len(got) != 0 {
		t.Fatalf("Neighborhood(ContraIndication) = %v, want empty", got)
	}
}

func TestGraphProjections(t *testing.T) {
	o := figure2(t)
	full := o.Graph()
	rel := o.RelationGraph()
	if full.NumEdges() <= rel.NumEdges() {
		t.Fatalf("full graph (%d edges) must include isA/union edges beyond relation graph (%d)",
			full.NumEdges(), rel.NumEdges())
	}
	// 6 object properties; +4 isA +2 unionOf = 12
	if rel.NumEdges() != 6 {
		t.Fatalf("relation graph edges = %d, want 6", rel.NumEdges())
	}
	if full.NumEdges() != 12 {
		t.Fatalf("full graph edges = %d, want 12", full.NumEdges())
	}
}

func TestStats(t *testing.T) {
	o := figure2(t)
	s := o.Stats()
	if s.Concepts != 10 || s.ObjectProperties != 6 || s.IsA != 4 || s.Unions != 1 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.DataProperties != 7 {
		t.Fatalf("DataProperties = %d, want 7", s.DataProperties)
	}
}

func TestValidate(t *testing.T) {
	o := figure2(t)
	if err := o.Validate(); err != nil {
		t.Fatalf("valid ontology rejected: %v", err)
	}
	// break it: dangling relationship
	o.ObjectProperties = append(o.ObjectProperties, ObjectProperty{Name: "bad", From: "Drug", To: "Ghost"})
	if err := o.Validate(); err == nil || !strings.Contains(err.Error(), "Ghost") {
		t.Fatalf("expected Ghost error, got %v", err)
	}
}

func TestValidateUnionTooSmall(t *testing.T) {
	o := New("t")
	o.MustAddConcept(Concept{Name: "P"})
	o.MustAddConcept(Concept{Name: "C"})
	o.Unions = append(o.Unions, Union{Parent: "P", Children: []string{"C"}})
	if err := o.Validate(); err == nil {
		t.Fatal("single-child union must be invalid")
	}
}

func TestProperty(t *testing.T) {
	o := figure2(t)
	if p := o.Property("Drug", "brand"); p == nil || p.Type != String {
		t.Fatalf("Property(Drug, brand) = %v", p)
	}
	if o.Property("Drug", "nope") != nil || o.Property("Nope", "name") != nil {
		t.Fatal("missing property lookups must be nil")
	}
}

func TestLabelize(t *testing.T) {
	cases := map[string]string{
		"DrugFoodInteraction": "Drug Food Interaction",
		"dose_adjustment":     "Dose Adjustment",
		"name":                "Name",
		"IVCompat":            "IVCompat",
		"risk-summary":        "Risk Summary",
		"":                    "",
		"a":                   "A",
	}
	for in, want := range cases {
		if got := Labelize(in); got != want {
			t.Errorf("Labelize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConceptNames(t *testing.T) {
	o := figure2(t)
	names := o.ConceptNames()
	if len(names) != 10 || names[0] != "Drug" {
		t.Fatalf("ConceptNames = %v", names)
	}
	if !o.HasConcept("Risk") || o.HasConcept("Ghost") {
		t.Fatal("HasConcept wrong")
	}
}
