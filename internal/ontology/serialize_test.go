package ontology

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	o := figure2(t)
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != o.Stats() {
		t.Fatalf("round-trip stats mismatch: %+v vs %+v", back.Stats(), o.Stats())
	}
	// index rebuilt after decode
	if back.Concept("Drug") == nil {
		t.Fatal("concept index not rebuilt after decode")
	}
	if got := back.UnionOf("Risk"); len(got) != 2 {
		t.Fatalf("union lost in round trip: %v", got)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	bad := `{"name":"x","concepts":[{"name":"A"}],"objectProperties":[{"name":"r","from":"A","to":"Ghost"}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid ontology must be rejected on read")
	}
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSON must error")
	}
}

func TestFunctionalRendering(t *testing.T) {
	o := figure2(t)
	text := o.Functional()
	for _, want := range []string{
		"Declaration(Class(:Drug))",
		"SubClassOf(:ContraIndication :Risk)",
		"EquivalentClasses(:Risk ObjectUnionOf(:BlackBoxWarning :ContraIndication))",
		"ObjectPropertyDomain(:treats :Drug) ObjectPropertyRange(:treats :Indication)",
		"DataPropertyRange(:Drug.brand xsd:string)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Functional() missing %q", want)
		}
	}
	// deterministic
	if o.Functional() != text {
		t.Fatal("Functional must be deterministic")
	}
}

func TestAnnotationSet(t *testing.T) {
	var s AnnotationSet
	s.Add("Drug", "expected-pattern", "what is <@Drug> used for")
	s.Add("Drug", "synonym", "medication")
	s.Add("Drug.treats.Indication", "prune-pattern", "")
	if got := s.ByKind("synonym"); len(got) != 1 || got[0].Value != "medication" {
		t.Fatalf("ByKind(synonym) = %v", got)
	}
	if got := s.ByKind("expected-pattern"); len(got) != 1 || got[0].Target != "Drug" {
		t.Fatalf("ByKind(expected-pattern) = %v", got)
	}
	if got := s.ByKind("none"); got != nil {
		t.Fatalf("ByKind(none) = %v", got)
	}
}
