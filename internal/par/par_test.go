package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDoCoversEveryIndexOnce is the pool's whole contract: fn(i) runs
// exactly once per index, at every fan-out width the chunking can take.
func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		hits := make([]int32, n)
		Do(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i := range hits {
			if hits[i] != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, hits[i])
			}
		}
	}
}

// TestDoNonPositive: n <= 0 never invokes fn.
func TestDoNonPositive(t *testing.T) {
	ran := false
	Do(0, func(int) { ran = true })
	Do(-3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

// TestDoSlotWritesAtWidths pins the ordered-merge shape the analyzers
// bless: plain (non-atomic) writes to index-disjoint slots are safe and
// produce identical output at every GOMAXPROCS. Run under -race this is
// also the pool's data-race proof for the pattern.
func TestDoSlotWritesAtWidths(t *testing.T) {
	for _, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		out := make([]int, 500)
		Do(len(out), func(i int) { out[i] = i * i })
		runtime.GOMAXPROCS(prev)
		for i, v := range out {
			if v != i*i {
				t.Fatalf("GOMAXPROCS=%d: slot %d = %d, want %d", procs, i, v, i*i)
			}
		}
	}
}

// TestWorkersBounds: min(GOMAXPROCS, n), never below 1.
func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d, want 1", w)
	}
	if max := runtime.GOMAXPROCS(0); Workers(1<<20) != max {
		t.Errorf("Workers(big) = %d, want GOMAXPROCS %d", Workers(1<<20), max)
	}
}

// TestStatsCountTasks: every index Do processes lands in the cumulative
// task counter, serial fallback included.
func TestStatsCountTasks(t *testing.T) {
	t0, _, _ := Stats()
	Do(10, func(int) {})
	t1, _, _ := Stats()
	if t1-t0 != 10 {
		t.Fatalf("task counter advanced %d, want 10", t1-t0)
	}
}

func TestDoChunksCoversEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, chunk, tasks int }{
		{10, 3, 4}, {16384, 16384, 1}, {16385, 16384, 2},
		{100, 1, 100}, {7, 100, 1},
	} {
		var mu sync.Mutex
		seen := make([]int, tc.n)
		maxTask := -1
		DoChunks(tc.n, tc.chunk, func(task, start, end int) {
			if end-start > tc.chunk || start >= end {
				t.Errorf("n=%d chunk=%d: bad range [%d,%d)", tc.n, tc.chunk, start, end)
			}
			if start != task*tc.chunk {
				t.Errorf("n=%d chunk=%d task=%d: start %d not deterministic", tc.n, tc.chunk, task, start)
			}
			mu.Lock()
			if task > maxTask {
				maxTask = task
			}
			for i := start; i < end; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		if maxTask+1 != tc.tasks {
			t.Errorf("n=%d chunk=%d: %d tasks, want %d", tc.n, tc.chunk, maxTask+1, tc.tasks)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d chunk=%d: index %d covered %d times", tc.n, tc.chunk, i, c)
			}
		}
	}
}

func TestDoChunksEdgeCases(t *testing.T) {
	ran := false
	DoChunks(0, 16, func(task, start, end int) { ran = true })
	DoChunks(-5, 16, func(task, start, end int) { ran = true })
	if ran {
		t.Fatal("DoChunks must be a no-op for n <= 0")
	}
	// chunk < 1 is clamped to 1, not a panic or an infinite loop.
	var n atomic.Int64
	DoChunks(5, 0, func(task, start, end int) { n.Add(int64(end - start)) })
	if n.Load() != 5 {
		t.Fatalf("chunk=0 covered %d indexes, want 5", n.Load())
	}
}
