// Package par is the deterministic-parallelism substrate of the offline
// pipeline: a chunked index-parallel worker pool whose only contract is
// that fn(i) runs exactly once for every index, with results merged by
// slot. Because every worker writes only the slots it was handed, the
// merged output is identical at any GOMAXPROCS — determinism by
// construction, the property TestBootstrapDeterminism and
// TestBundleCompilationDeterminism pin end to end.
//
// The pool deliberately has no futures, no error channels and no context:
// callers collect per-slot results (including per-slot errors) into
// preallocated slices and reduce them in fixed index order afterwards.
// That ordered-merge shape is what the paragoroutine analyzer
// (internal/lint) recognizes as safe.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// stats are cumulative package-level counters exposed through the obs
// registry as pool/worker gauges (see agent.NewMetricsOn).
var (
	statTasks   atomic.Uint64 // indexes processed by Do
	statWorkers atomic.Uint64 // worker goroutines spawned by Do
	statCalls   atomic.Uint64 // Do invocations that actually fanned out
)

// Stats reports cumulative pool activity: indexes processed, worker
// goroutines spawned, and parallel fan-outs performed. Serial fallbacks
// (one core, or n < 2) count tasks but no workers.
func Stats() (tasks, workers, fanouts uint64) {
	return statTasks.Load(), statWorkers.Load(), statCalls.Load()
}

// Workers returns the worker count Do would use for n independent tasks:
// min(GOMAXPROCS, n), never less than 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DoChunks partitions [0, n) into contiguous ranges of at most chunk
// indexes and runs fn(task, start, end) exactly once per range, fanning
// the ranges out through Do. Partition boundaries depend only on n and
// chunk — never on GOMAXPROCS or scheduling — so per-task results merged
// in task order are identical at any worker width. This is the shape the
// columnar scan and hash-join builds use: each task fills its own slot,
// the caller concatenates slots in ascending task order.
func DoChunks(n, chunk int, fn func(task, start, end int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	tasks := (n + chunk - 1) / chunk
	Do(tasks, func(t int) {
		start := t * chunk
		end := start + chunk
		if end > n {
			end = n
		}
		//ontolint:ignore paragoroutine fn is the pool's work callback, exactly like Do's; caller closures are analyzed at their DoChunks call sites, and each fn(task, ...) owns range [start, end) exclusively (ordered merge)
		fn(t, start, end)
	})
}

// Do runs fn(i) exactly once for every i in [0, n), fanning out over up
// to GOMAXPROCS worker goroutines, and returns when all calls have
// finished. Workers claim contiguous index chunks from an atomic cursor,
// so work stays cache-friendly and the scheduling order can never leak
// into results as long as fn writes only state keyed by its own index
// (the ordered-merge pattern). With one core or a single task it degrades
// to a plain serial loop.
func Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	statTasks.Add(uint64(n))
	workers := Workers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	statCalls.Add(1)
	statWorkers.Add(uint64(workers))
	// Chunks small enough to balance uneven task costs, large enough to
	// keep cursor contention negligible.
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					//ontolint:ignore paragoroutine fn is the pool's work callback; caller closures are analyzed at their par.Do call sites, and each fn(i) owns slot i exclusively (ordered merge)
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
