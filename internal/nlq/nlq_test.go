package nlq_test

import (
	"strings"
	"sync"
	"testing"

	"ontoconv/internal/kb"
	"ontoconv/internal/medkb"
	"ontoconv/internal/nlq"
	"ontoconv/internal/ontology"
	"ontoconv/internal/sqlx"
)

var (
	once  sync.Once
	mBase *kb.KB
	mOnto *ontology.Ontology
	mErr  error
)

func mdx(t *testing.T) (*kb.KB, *ontology.Ontology) {
	t.Helper()
	once.Do(func() {
		mBase, mErr = medkb.Generate(medkb.DefaultConfig())
		if mErr != nil {
			return
		}
		mOnto, mErr = medkb.Ontology(mBase)
	})
	if mErr != nil {
		t.Fatal(mErr)
	}
	return mBase, mOnto
}

func TestBuildSQLLookup(t *testing.T) {
	base, o := mdx(t)
	svc := nlq.New(o)
	sql, err := svc.BuildSQL(nlq.Request{
		Answer:   "Precaution",
		Distinct: true,
		Filters:  []nlq.Filter{{Concept: "Drug", Value: "Ibuprofen"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// shape of the paper's Figure 9
	for _, want := range []string{
		"SELECT DISTINCT oPrecaution.description",
		"FROM precaution oPrecaution",
		"INNER JOIN drug oDrug",
		"oDrug.name = 'Ibuprofen'",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
	res, err := sqlx.Exec(base, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no precautions for Ibuprofen")
	}
}

func TestBuildSQLViaJunction(t *testing.T) {
	base, o := mdx(t)
	svc := nlq.New(o)
	sql, err := svc.BuildSQL(nlq.Request{
		Answer:   "Drug",
		Distinct: true,
		Filters:  []nlq.Filter{{Concept: "Indication", Value: "Fever", PathHint: []string{"treats"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "treats") {
		t.Fatalf("junction not joined:\n%s", sql)
	}
	res, err := sqlx.Exec(base, sql)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Column("name")
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"Aspirin", "Ibuprofen", "Acetaminophen"} {
		if !found[want] {
			t.Errorf("fever drugs missing %q: %v", want, names)
		}
	}
}

func TestBuildSQLIsAPath(t *testing.T) {
	base, o := mdx(t)
	svc := nlq.New(o)
	sql, err := svc.BuildSQL(nlq.Request{
		Answer:   "BlackBoxWarning",
		Distinct: true,
		Filters:  []nlq.Filter{{Concept: "Drug", Param: "Drug"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// must traverse BlackBoxWarning -isA-> Risk -hasDrug-> Drug
	if !strings.Contains(sql, "risk oRisk") {
		t.Fatalf("isA join missing:\n%s", sql)
	}
	tpl, err := sqlx.NewTemplate(sql)
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := tpl.Instantiate(map[string]string{"Drug": "Warfarin"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sqlx.Execute(base, stmt); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSQLDensification(t *testing.T) {
	base, o := mdx(t)
	svc := nlq.New(o)
	// Drugs treating an indication with pediatric dosing: the Dosage
	// join must also be constrained to the SAME indication.
	sql, err := svc.BuildSQL(nlq.Request{
		Answer:   "Drug",
		Distinct: true,
		Filters: []nlq.Filter{
			{Concept: "Indication", Value: "Psoriasis", PathHint: []string{"treats"}},
			{Concept: "Dosage", Property: "age_group", Value: "pediatric"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "oDosage.indication_id = oIndication.indication_id") {
		t.Fatalf("densification equality missing:\n%s", sql)
	}
	res, err := sqlx.Exec(base, sql)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, n := range res.Column("name") {
		names[n] = true
	}
	if names["Acitretin"] || names["Adalimumab"] {
		t.Fatalf("adult-only drugs leaked into pediatric result: %v", names)
	}
	if !names["Tazarotene"] || !names["Fluocinonide"] {
		t.Fatalf("pediatric drugs missing: %v", names)
	}
}

func TestBuildSQLNoFalseDensifyOnMultiRelationPairs(t *testing.T) {
	base, o := mdx(t)
	svc := nlq.New(o)
	// IvCompatibility has two relations to Drug (hasDrug, otherDrug);
	// joining via one must NOT equate the other.
	sql, err := svc.BuildSQL(nlq.Request{
		Answer:   "IvCompatibility",
		Distinct: true,
		Filters:  []nlq.Filter{{Concept: "Drug", Value: "Aspirin", PathHint: []string{"hasDrug"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "other_drug_id = oDrug") {
		t.Fatalf("false densification:\n%s", sql)
	}
	if _, err := sqlx.Exec(base, sql); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSQLRelationProps(t *testing.T) {
	base, o := mdx(t)
	svc := nlq.New(o)
	sql, err := svc.BuildSQL(nlq.Request{
		Answer:               "Drug",
		Distinct:             true,
		IncludeRelationProps: true,
		Filters:              []nlq.Filter{{Concept: "Indication", Value: "Psoriasis", PathHint: []string{"treats"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, ".efficacy") {
		t.Fatalf("relation property not projected:\n%s", sql)
	}
	res, err := sqlx.Exec(base, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestBuildSQLErrors(t *testing.T) {
	_, o := mdx(t)
	svc := nlq.New(o)
	cases := []nlq.Request{
		{Answer: "Ghost"},
		{Answer: "Drug", Filters: []nlq.Filter{{Concept: "Ghost", Value: "x"}}},
		{Answer: "Drug", Properties: []string{"ghost"}},
		{Answer: "Drug", Filters: []nlq.Filter{{Concept: "Indication", Value: "x", Property: "ghost"}}},
		{Answer: "Drug", Filters: []nlq.Filter{{Concept: "Indication", Value: "x", PathHint: []string{"nope"}}}},
	}
	for i, req := range cases {
		if _, err := svc.BuildSQL(req); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestBuildTemplateParams(t *testing.T) {
	_, o := mdx(t)
	svc := nlq.New(o)
	tpl, err := svc.BuildTemplate(nlq.Request{
		Answer:   "Dosage",
		Distinct: true,
		Filters: []nlq.Filter{
			{Concept: "Drug", Param: "Drug"},
			{Concept: "Indication", Param: "Indication"},
			{Concept: "Dosage", Property: "age_group", Param: "AgeGroup"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tpl.Params) != 3 {
		t.Fatalf("params = %v", tpl.Params)
	}
}

func TestInterpret(t *testing.T) {
	_, o := mdx(t)
	svc := nlq.New(o)
	it := nlq.NewInterpreter(svc, medkb.ConceptSynonyms())
	it.AddInstances("Drug", map[string][]string{"Benazepril": nil, "Aspirin": {"Bayer Aspirin"}})
	it.AddInstanceList("Indication", []string{"Fever", "Psoriasis"})

	req, err := it.Interpret("Show me the Precautions for Benazepril?")
	if err != nil {
		t.Fatal(err)
	}
	if req.Answer != "Precaution" {
		t.Fatalf("answer = %q", req.Answer)
	}
	if len(req.Filters) != 1 || req.Filters[0].Concept != "Drug" || req.Filters[0].Value != "Benazepril" {
		t.Fatalf("filters = %+v", req.Filters)
	}

	// relationship question: "What Drug treats Fever?"
	req, err = it.Interpret("What Drug treats Fever?")
	if err != nil {
		t.Fatal(err)
	}
	if req.Answer != "Drug" || req.Filters[0].Concept != "Indication" {
		t.Fatalf("req = %+v", req)
	}

	// entity-only utterance has no answer concept
	if _, err := it.Interpret("Aspirin"); err == nil {
		t.Fatal("entity-only utterance must not interpret")
	}
}

func TestInterpretToSQLRoundTrip(t *testing.T) {
	base, o := mdx(t)
	svc := nlq.New(o)
	it := nlq.NewInterpreter(svc, medkb.ConceptSynonyms())
	it.AddInstanceList("Drug", []string{"Ibuprofen"})
	req, err := it.Interpret("Give me the Precautions for Ibuprofen?")
	if err != nil {
		t.Fatal(err)
	}
	sql, err := svc.BuildSQL(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sqlx.Exec(base, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("round trip returned nothing")
	}
}
