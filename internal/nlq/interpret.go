package nlq

import (
	"fmt"
	"sort"

	"ontoconv/internal/nlu"
	"ontoconv/internal/ontology"
)

// conceptMention is the recognizer entity type used for ontology concept
// names, to keep them apart from instance mentions (whose type is the
// concept they belong to).
const conceptMention = "@concept"

// Interpreter annotates utterances with ontology evidence and produces
// structured Requests (the "interprets it over the domain ontology" step
// of §2). It is used offline to turn one example utterance per intent
// into SQL.
type Interpreter struct {
	svc *Service
	rec *nlu.Recognizer
}

// NewInterpreter builds an interpreter over the service's ontology.
// conceptSynonyms maps concept name -> extra surface forms (the Table 2
// dictionary); concept labels themselves are always added.
func NewInterpreter(svc *Service, conceptSynonyms map[string][]string) *Interpreter {
	rec := nlu.NewRecognizer()
	for _, c := range svc.onto.Concepts {
		surfaces := []string{c.Name}
		if c.Label != "" && c.Label != c.Name {
			surfaces = append(surfaces, c.Label)
		}
		surfaces = append(surfaces, conceptSynonyms[c.Name]...)
		rec.Add(conceptMention, c.Name, surfaces...)
	}
	return &Interpreter{svc: svc, rec: rec}
}

// AddInstances registers instance values of a concept (value -> synonyms)
// so utterances mentioning them can be annotated.
func (it *Interpreter) AddInstances(concept string, values map[string][]string) {
	// Register in sorted order: dictionary insertion order decides which
	// value wins a colliding surface form.
	vals := make([]string, 0, len(values))
	for v := range values {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	for _, v := range vals {
		it.rec.Add(concept, v, values[v]...)
	}
}

// AddInstanceList registers instance values without synonyms.
func (it *Interpreter) AddInstanceList(concept string, values []string) {
	for _, v := range values {
		it.rec.Add(concept, v)
	}
}

// Interpret annotates the utterance and derives a Request: the first
// concept mention not explained by an instance becomes the answer concept;
// every instance mention becomes an equality filter on its concept's
// display property.
func (it *Interpreter) Interpret(text string) (Request, error) {
	mentions := it.rec.Recognize(text)
	var answer string
	var filters []Filter
	seenFilter := map[string]bool{}
	for _, m := range mentions {
		if m.Partial {
			continue // ambiguous; the dialogue layer resolves these
		}
		if m.Type == conceptMention {
			if answer == "" {
				answer = m.Value
			}
			continue
		}
		if seenFilter[m.Type] {
			continue
		}
		seenFilter[m.Type] = true
		filters = append(filters, Filter{Concept: m.Type, Value: m.Value})
	}
	if answer == "" {
		// Entity-only utterance ("cogentin"): no query pattern — the
		// conversation layer handles this as a DRUG_GENERAL-style flow.
		return Request{}, fmt.Errorf("nlq: no answer concept recognized in %q", text)
	}
	if answer != "" && len(filters) == 1 && filters[0].Concept == answer {
		// "tell me about drug Aspirin" — asking for the entity itself.
		return Request{Answer: answer, Distinct: true, Filters: filters}, nil
	}
	return Request{Answer: answer, Distinct: true, Filters: filters}, nil
}

// Ontology exposes the service's ontology (used by the bootstrapper).
func (s *Service) Ontology() *ontology.Ontology { return s.onto }
