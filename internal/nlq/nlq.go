// Package nlq implements the ontology-driven natural-language-query
// service (paper §2 and §4.4; the stand-in for ATHENA [29]). Its job in the
// system is to turn one representative utterance per intent into a
// structured SQL query over the knowledge base, which the bootstrapper then
// parameterizes into the intent's structured query template.
//
// The service works in two layers:
//
//   - BuildSQL compiles a structured Request (answer concept + filters)
//     into SQL by discovering a join tree over the ontology-to-schema
//     mapping (direct foreign keys, junction tables, isA PK-sharing).
//   - Interpret produces a Request from a natural-language utterance by
//     annotating it with ontology evidence (concept labels, synonyms, and
//     instance values) — the "interprets it over the domain ontology"
//     step of §2.
package nlq

import (
	"fmt"
	"sort"
	"strings"

	"ontoconv/internal/ontology"
	"ontoconv/internal/sqlx"
)

// Filter constrains the query: concept's property compared to a value or
// left open as a template parameter.
type Filter struct {
	Concept  string
	Property string // data property; empty means the concept's display property
	Value    string // literal; ignored when Param != ""
	Param    string // template parameter name, e.g. "Drug"
	// PathHint optionally names the object-property sequence from the
	// request's answer concept to this filter's concept. Without a hint
	// the shortest join path is used; with one, the named relations are
	// followed (the bootstrapper grounds each pattern in specific
	// relations, so its templates must join through exactly those).
	PathHint []string
}

// Request is a structured query request over the ontology.
type Request struct {
	// Answer is the concept whose information is requested.
	Answer string
	// Properties lists the answer's data properties to project; empty
	// means the concept's display property.
	Properties []string
	// Filters constrain the result.
	Filters []Filter
	// Distinct deduplicates the projection (default true for lookups).
	Distinct bool
	// IncludeRelationProps also projects the qualifying properties of
	// any junction relationship joined into the query (e.g. efficacy of
	// Drug-treats-Indication), so the agent can group the answer the way
	// the paper's transcript does ("Effective: Acitretin, …").
	IncludeRelationProps bool
}

// Service compiles requests against one ontology.
type Service struct {
	onto *ontology.Ontology
	// adjacency: concept -> join edges
	edges map[string][]joinEdge
}

// joinEdge is one traversable schema connection between two concepts.
type joinEdge struct {
	from, to string
	// build appends the SQL join chain and returns the alias of `to`.
	// aliases tracks concept -> alias; junction tables get their own.
	kind string // "fk", "fk-rev", "via", "via-rev", "isa-up", "isa-down"
	prop ontology.ObjectProperty
}

// New builds a service over the ontology. Concepts must carry Table
// metadata (set by the ontology generator).
func New(o *ontology.Ontology) *Service {
	s := &Service{onto: o, edges: make(map[string][]joinEdge)}
	for _, p := range o.ObjectProperties {
		s.edges[p.From] = append(s.edges[p.From], joinEdge{from: p.From, to: p.To, kind: edgeKind(p, false), prop: p})
		s.edges[p.To] = append(s.edges[p.To], joinEdge{from: p.To, to: p.From, kind: edgeKind(p, true), prop: p})
	}
	for _, r := range o.IsARelations {
		up := ontology.ObjectProperty{Name: "isA", From: r.Child, To: r.Parent}
		s.edges[r.Child] = append(s.edges[r.Child], joinEdge{from: r.Child, to: r.Parent, kind: "isa-up", prop: up})
		s.edges[r.Parent] = append(s.edges[r.Parent], joinEdge{from: r.Parent, to: r.Child, kind: "isa-down", prop: up})
	}
	return s
}

func edgeKind(p ontology.ObjectProperty, reverse bool) string {
	if p.Via != nil {
		if reverse {
			return "via-rev"
		}
		return "via"
	}
	if reverse {
		return "fk-rev"
	}
	return "fk"
}

// BuildSQL compiles the request into a SQL statement string (possibly with
// <@Param> markers) using shortest join paths from the answer concept to
// every filter concept.
func (s *Service) BuildSQL(req Request) (string, error) {
	ans := s.onto.Concept(req.Answer)
	if ans == nil {
		return "", fmt.Errorf("nlq: unknown concept %q", req.Answer)
	}
	if ans.Table == "" {
		return "", fmt.Errorf("nlq: concept %q has no backing table", req.Answer)
	}

	b := &builder{svc: s, aliases: map[string]string{}, usedRels: map[string]bool{}}
	b.from = b.alias(req.Answer, ans.Table)

	// Join every filter concept into the tree.
	for _, f := range req.Filters {
		if f.Concept == req.Answer {
			continue
		}
		if _, joined := b.aliases[f.Concept]; joined {
			continue
		}
		var path []joinEdge
		var err error
		if len(f.PathHint) > 0 {
			path, err = s.hintedPath(req.Answer, f.Concept, f.PathHint)
		} else {
			path, err = s.shortestPath(req.Answer, f.Concept, b.aliases)
		}
		if err != nil {
			return "", err
		}
		if err := b.joinPath(path); err != nil {
			return "", err
		}
	}
	// Densify: concepts brought in by different filters may also relate
	// to each other directly (Dosage has both a Drug and an Indication
	// FK); without the extra equalities the query would pair unrelated
	// rows. Every direct FK relation between two joined concepts becomes
	// an equality predicate, unless it already backs a join.
	b.densify()

	// Projection.
	props := req.Properties
	if len(props) == 0 {
		dp := ans.DisplayProperty
		if dp == "" {
			return "", fmt.Errorf("nlq: concept %q has no display property", req.Answer)
		}
		props = []string{dp}
	}
	var sel []string
	for _, pr := range props {
		if s.onto.Property(req.Answer, pr) == nil {
			return "", fmt.Errorf("nlq: concept %q has no property %q", req.Answer, pr)
		}
		sel = append(sel, b.aliases[req.Answer]+"."+pr)
	}
	if req.IncludeRelationProps {
		sel = append(sel, b.relProps...)
	}

	// WHERE clause.
	var conds []string
	for _, f := range req.Filters {
		c := s.onto.Concept(f.Concept)
		if c == nil {
			return "", fmt.Errorf("nlq: unknown filter concept %q", f.Concept)
		}
		prop := f.Property
		if prop == "" {
			prop = c.DisplayProperty
		}
		if s.onto.Property(f.Concept, prop) == nil {
			return "", fmt.Errorf("nlq: concept %q has no property %q", f.Concept, prop)
		}
		alias, joined := b.aliases[f.Concept]
		if !joined {
			return "", fmt.Errorf("nlq: filter concept %q not joined", f.Concept)
		}
		var rhs string
		if f.Param != "" {
			rhs = "<@" + f.Param + ">"
		} else {
			rhs = "'" + strings.ReplaceAll(f.Value, "'", "''") + "'"
		}
		conds = append(conds, fmt.Sprintf("%s.%s = %s", alias, prop, rhs))
	}
	conds = append(conds, b.extraConds...)

	var sb strings.Builder
	sb.WriteString("SELECT ")
	if req.Distinct {
		sb.WriteString("DISTINCT ")
	}
	sb.WriteString(strings.Join(sel, ", "))
	sb.WriteString(" FROM " + b.fromTable + " " + b.from)
	for _, j := range b.joins {
		sb.WriteString(" INNER JOIN " + j)
	}
	if len(conds) > 0 {
		sb.WriteString(" WHERE " + strings.Join(conds, " AND "))
	}
	return sb.String(), nil
}

// BuildTemplate compiles the request and parses the result into a reusable
// query template (filters using Param become template parameters).
func (s *Service) BuildTemplate(req Request) (*sqlx.Template, error) {
	sql, err := s.BuildSQL(req)
	if err != nil {
		return nil, err
	}
	return sqlx.NewTemplate(sql)
}

type builder struct {
	svc       *Service
	aliases   map[string]string // concept -> alias
	from      string
	fromTable string
	joins     []string
	nAlias    int
	// usedRels tracks FK/isA relations already backing a join, so
	// densify does not duplicate them. Keys are From+"\x00"+Name+"\x00"+To.
	usedRels map[string]bool
	// extraConds holds the densification equalities added to WHERE.
	extraConds []string
	// relProps holds qualified junction-property columns available for
	// projection (alias.column).
	relProps []string
}

func relKey(from, name, to string) string { return from + "\x00" + name + "\x00" + to }

// densify adds equality predicates for unused direct FK or isA relations
// whose two endpoint concepts are both joined — but only for concept pairs
// not already connected by any join (a pair may carry several independent
// relations, e.g. IV compatibility's hasDrug and otherDrug, and equating
// the unused one would wrongly force both to the same row).
func (b *builder) densify() {
	o := b.svc.onto
	connected := map[string]bool{}
	pairKey := func(a, c string) string {
		if a < c {
			return a + "\x00" + c
		}
		return c + "\x00" + a
	}
	for _, p := range o.ObjectProperties {
		if b.usedRels[relKey(p.From, p.Name, p.To)] {
			connected[pairKey(p.From, p.To)] = true
		}
	}
	for _, r := range o.IsARelations {
		if b.usedRels[relKey(r.Child, "isA", r.Parent)] {
			connected[pairKey(r.Child, r.Parent)] = true
		}
	}
	for _, p := range o.ObjectProperties {
		if p.Via != nil {
			continue
		}
		fa, okF := b.aliases[p.From]
		ta, okT := b.aliases[p.To]
		if !okF || !okT || connected[pairKey(p.From, p.To)] {
			continue
		}
		connected[pairKey(p.From, p.To)] = true
		b.extraConds = append(b.extraConds, fmt.Sprintf("%s.%s = %s.%s", fa, p.FromColumn, ta, p.ToColumn))
	}
	for _, r := range o.IsARelations {
		ca, okC := b.aliases[r.Child]
		pa, okP := b.aliases[r.Parent]
		if !okC || !okP || connected[pairKey(r.Child, r.Parent)] {
			continue
		}
		cpk, err1 := b.svc.tablePK(r.Child)
		ppk, err2 := b.svc.tablePK(r.Parent)
		if err1 != nil || err2 != nil {
			continue
		}
		connected[pairKey(r.Child, r.Parent)] = true
		b.extraConds = append(b.extraConds, fmt.Sprintf("%s.%s = %s.%s", ca, cpk, pa, ppk))
	}
}

func (b *builder) alias(concept, table string) string {
	a := "o" + concept
	b.aliases[concept] = a
	if b.from == "" {
		b.fromTable = table
	}
	return a
}

func (b *builder) junctionAlias(table string) string {
	b.nAlias++
	return fmt.Sprintf("j%d_%s", b.nAlias, table)
}

// joinPath adds the SQL joins for a path of edges whose first node is
// already aliased.
func (b *builder) joinPath(path []joinEdge) error {
	for _, e := range path {
		if _, done := b.aliases[e.to]; done {
			continue
		}
		fromAlias := b.aliases[e.from]
		toConcept := b.svc.onto.Concept(e.to)
		if toConcept == nil || toConcept.Table == "" {
			return fmt.Errorf("nlq: concept %q has no backing table", e.to)
		}
		toAlias := "o" + e.to
		p := e.prop
		switch e.kind {
		case "fk":
			// from-table has the FK column referencing to-table
			b.usedRels[relKey(p.From, p.Name, p.To)] = true
			b.joins = append(b.joins, fmt.Sprintf("%s %s ON %s.%s = %s.%s",
				toConcept.Table, toAlias, fromAlias, p.FromColumn, toAlias, p.ToColumn))
		case "fk-rev":
			// to-table has the FK column referencing from-table
			b.usedRels[relKey(p.From, p.Name, p.To)] = true
			b.joins = append(b.joins, fmt.Sprintf("%s %s ON %s.%s = %s.%s",
				toConcept.Table, toAlias, toAlias, p.FromColumn, fromAlias, p.ToColumn))
		case "via", "via-rev":
			j := b.junctionAlias(p.Via.Table)
			var nearCol, farCol string
			if e.kind == "via" {
				nearCol, farCol = p.Via.FromColumn, p.Via.ToColumn
			} else {
				nearCol, farCol = p.Via.ToColumn, p.Via.FromColumn
			}
			nearPK, err := b.svc.tablePK(e.from)
			if err != nil {
				return err
			}
			farPK, err := b.svc.tablePK(e.to)
			if err != nil {
				return err
			}
			b.joins = append(b.joins, fmt.Sprintf("%s %s ON %s.%s = %s.%s",
				p.Via.Table, j, j, nearCol, fromAlias, nearPK))
			b.joins = append(b.joins, fmt.Sprintf("%s %s ON %s.%s = %s.%s",
				toConcept.Table, toAlias, toAlias, farPK, j, farCol))
			for _, rp := range p.Via.Properties {
				b.relProps = append(b.relProps, j+"."+rp)
			}
		case "isa-up", "isa-down":
			fromPK, err := b.svc.tablePK(e.from)
			if err != nil {
				return err
			}
			toPK, err := b.svc.tablePK(e.to)
			if err != nil {
				return err
			}
			b.usedRels[relKey(p.From, "isA", p.To)] = true
			b.joins = append(b.joins, fmt.Sprintf("%s %s ON %s.%s = %s.%s",
				toConcept.Table, toAlias, toAlias, toPK, fromAlias, fromPK))
		default:
			return fmt.Errorf("nlq: unknown edge kind %q", e.kind)
		}
		b.aliases[e.to] = toAlias
	}
	return nil
}

// tablePK returns the primary-key column backing the concept.
func (s *Service) tablePK(concept string) (string, error) {
	c := s.onto.Concept(concept)
	if c == nil || c.TableKey == "" {
		return "", fmt.Errorf("nlq: cannot determine primary key of %q", concept)
	}
	return c.TableKey, nil
}

// shortestPath finds the shortest join path from src toward dst, allowed
// to start from ANY already-aliased concept (so later filters reuse the
// existing join tree).
func (s *Service) shortestPath(src, dst string, aliased map[string]string) ([]joinEdge, error) {
	type state struct {
		node string
		path []joinEdge
	}
	var queue []state
	visited := map[string]bool{}
	if len(aliased) == 0 {
		queue = append(queue, state{node: src})
		visited[src] = true
	} else {
		starts := make([]string, 0, len(aliased))
		for c := range aliased {
			starts = append(starts, c)
		}
		sort.Strings(starts)
		for _, c := range starts {
			queue = append(queue, state{node: c})
			visited[c] = true
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.node == dst {
			return cur.path, nil
		}
		for _, e := range s.edges[cur.node] {
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			np := make([]joinEdge, len(cur.path), len(cur.path)+1)
			copy(np, cur.path)
			np = append(np, e)
			queue = append(queue, state{node: e.to, path: np})
		}
	}
	return nil, fmt.Errorf("nlq: no join path from %q to %q", src, dst)
}

// hintedPath resolves a named relation sequence from src to dst. Relation
// names can repeat across the ontology (every satellite concept may have a
// "hasDrug"), so the resolution searches all name-matching edges and
// requires the full sequence to land on dst.
func (s *Service) hintedPath(src, dst string, names []string) ([]joinEdge, error) {
	var dfs func(node string, i int, acc []joinEdge) []joinEdge
	dfs = func(node string, i int, acc []joinEdge) []joinEdge {
		if i == len(names) {
			if node == dst {
				out := make([]joinEdge, len(acc))
				copy(out, acc)
				return out
			}
			return nil
		}
		for _, e := range s.edges[node] {
			if e.prop.Name != names[i] {
				continue
			}
			if found := dfs(e.to, i+1, append(acc, e)); found != nil {
				return found
			}
		}
		return nil
	}
	if found := dfs(src, 0, nil); found != nil {
		return found, nil
	}
	return nil, fmt.Errorf("nlq: relation path %v does not connect %q to %q", names, src, dst)
}
