// Package ring implements the consistent-hash ring cmd/mdxrouter uses to
// pin conversation sessions onto mdxserver replicas.
//
// Placement must satisfy two properties the dialogue tier depends on.
// First, stability: a session's turns must keep landing on the replica
// that holds its context, so the ring's answer for a key changes only
// when membership changes. Second, minimal disruption: when a replica
// joins or leaves, only the sessions it owned (or now captures) move —
// everyone else stays put, and the router migrates the moved sessions'
// state explicitly. Virtual nodes smooth the per-replica share; the
// bounded-load walk (Pick) keeps a hot replica from absorbing every new
// session that hashes near it.
package ring

import (
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member vnode count: enough that a
// three-member ring balances within a few percent, small enough that
// rebuilding the ring on a membership change is microseconds.
const DefaultVirtualNodes = 128

// point is one vnode position on the ring.
type point struct {
	hash   uint64
	member int // index into members
}

// Ring is an immutable consistent-hash ring. Membership changes build a
// new Ring; readers hold a pointer and are never locked out.
type Ring struct {
	members []string
	points  []point
}

// New builds a ring over the given members (deduplicated, order
// independent) with vnodes virtual nodes each; vnodes <= 0 picks
// DefaultVirtualNodes. An empty member list yields an empty ring whose
// lookups return "".
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]point, 0, len(uniq)*vnodes)}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash(m + "#" + strconv.Itoa(v)), member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// Members returns the ring's member names, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Empty reports whether the ring has no members.
func (r *Ring) Empty() bool { return len(r.members) == 0 }

// Owner returns the member owning the key: the first vnode clockwise from
// the key's hash. "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.at(key)].member]
}

// at returns the index of the key's successor vnode.
func (r *Ring) at(key string) int {
	h := hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest vnode
	}
	return i
}

// Pick returns the key's owner, skipping members the overloaded predicate
// rejects: it walks clockwise and returns the first distinct member that
// is not overloaded (the bounded-load variant of consistent hashing, cf.
// Mirrokni et al.). If every member is overloaded the plain owner wins —
// shedding is the caller's job, placement must still be deterministic. A
// nil predicate is plain Owner.
func (r *Ring) Pick(key string, overloaded func(member string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	if overloaded == nil {
		return r.Owner(key)
	}
	start := r.at(key)
	tried := make(map[int]bool, len(r.members))
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.member] {
			continue
		}
		tried[p.member] = true
		if !overloaded(r.members[p.member]) {
			return r.members[p.member]
		}
	}
	return r.members[r.points[start].member]
}

// hash is FNV-1a 64 with a splitmix64 finalizer — stable across processes
// and Go versions, so every router instance agrees on placement. Raw
// FNV-1a avalanches poorly on short, similar inputs ("b1#0", "b1#1", …),
// which clusters vnodes and skews member shares; the finalizer spreads
// them uniformly.
func hash(s string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}
