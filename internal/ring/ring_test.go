package ring

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("tenant\x00session-%d", i)
	}
	return ks
}

func TestOwnerDeterministicAndOrderIndependent(t *testing.T) {
	a := New([]string{"b1", "b2", "b3"}, 0)
	b := New([]string{"b3", "b1", "b2", "b1"}, 0) // shuffled + duplicate
	for _, k := range keys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q depends on construction order: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestDistributionBalanced(t *testing.T) {
	members := []string{"b1", "b2", "b3"}
	r := New(members, 0)
	counts := make(map[string]int)
	n := 30000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(n)
		if share < 0.20 || share > 0.47 {
			t.Fatalf("member %s owns %.1f%% of keys; want roughly a third (counts: %v)", m, 100*share, counts)
		}
	}
}

// TestMinimalDisruption: removing one member must move only that member's
// keys; every key owned by a surviving member keeps its owner.
func TestMinimalDisruption(t *testing.T) {
	before := New([]string{"b1", "b2", "b3", "b4"}, 0)
	after := New([]string{"b1", "b2", "b4"}, 0)
	moved, total := 0, 0
	for _, k := range keys(10000) {
		total++
		was, is := before.Owner(k), after.Owner(k)
		if was == "b3" {
			if is == "b3" {
				t.Fatalf("key %q still owned by removed member", k)
			}
			moved++
			continue
		}
		if was != is {
			t.Fatalf("key %q moved %s -> %s though its owner survived", k, was, is)
		}
	}
	// b3 owned roughly a quarter; all of it (and nothing else) moved.
	if moved < total/8 || moved > total/2 {
		t.Fatalf("%d/%d keys moved; want roughly a quarter", moved, total)
	}
}

func TestPickSkipsOverloaded(t *testing.T) {
	r := New([]string{"b1", "b2", "b3"}, 0)
	for _, k := range keys(200) {
		owner := r.Owner(k)
		got := r.Pick(k, func(m string) bool { return m == owner })
		if got == owner {
			t.Fatalf("Pick(%q) returned the overloaded owner %s", k, owner)
		}
		if got == "" {
			t.Fatalf("Pick(%q) returned no member", k)
		}
		// Everyone overloaded: deterministic fallback to the plain owner.
		if all := r.Pick(k, func(string) bool { return true }); all != owner {
			t.Fatalf("Pick(%q) with all overloaded = %s, want plain owner %s", k, all, owner)
		}
		// Nil predicate is plain Owner.
		if got := r.Pick(k, nil); got != owner {
			t.Fatalf("Pick(%q, nil) = %s, want %s", k, got, owner)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := New(nil, 0)
	if !r.Empty() || r.Owner("k") != "" || r.Pick("k", nil) != "" {
		t.Fatal("empty ring must report Empty and own nothing")
	}
	if len(New([]string{""}, 0).Members()) != 0 {
		t.Fatal("empty member names must be dropped")
	}
}

func TestStableAcrossVnodeCount(t *testing.T) {
	// Not a correctness property of consistent hashing, but a regression
	// tripwire: changing DefaultVirtualNodes re-maps sessions, which is a
	// handoff storm on deploy. Fail loudly if it drifts.
	if DefaultVirtualNodes != 128 {
		t.Fatalf("DefaultVirtualNodes changed to %d; this re-maps every live deployment's sessions", DefaultVirtualNodes)
	}
}
