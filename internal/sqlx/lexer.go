// Package sqlx implements the SQL-subset engine used to execute the
// structured queries that the conversation system generates against the
// knowledge base (paper §2: structured query templates are instantiated
// into SQL and "executed against the KB to retrieve the answers").
//
// The dialect covers what the NLQ service emits: SELECT with projections
// and COUNT, INNER JOIN chains with ON equality predicates, WHERE with
// AND/OR, =, !=, <, <=, >, >=, LIKE, IN, IS [NOT] NULL, DISTINCT,
// ORDER BY, and LIMIT.
package sqlx

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokSymbol // punctuation and operators
	tokParam  // <@Name> template parameter
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer turns SQL text into tokens. Keywords are returned as tokIdent and
// matched case-insensitively by the parser.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case c == '<' && strings.HasPrefix(l.src[l.pos:], "<@"):
			end := strings.IndexByte(l.src[l.pos:], '>')
			if end < 0 {
				return nil, fmt.Errorf("sqlx: unterminated parameter marker at %d", start)
			}
			name := l.src[l.pos+2 : l.pos+end]
			l.pos += end + 1
			l.toks = append(l.toks, token{kind: tokParam, text: name, pos: start})
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.lexNumber()
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case isIdentStart(c):
			l.lexIdent()
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		default:
			sym, err := l.lexSymbol()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: sym, pos: start})
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && strings.HasPrefix(l.src[l.pos:], "--") {
			nl := strings.IndexByte(l.src[l.pos:], '\n')
			if nl < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += nl + 1
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func (l *lexer) lexString() (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped quote
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sqlx: unterminated string literal at %d", start)
}

func (l *lexer) lexNumber() {
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
}

func (l *lexer) lexIdent() {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
}

func (l *lexer) lexSymbol() (string, error) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		l.pos += 2
		return two, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '*', '=', '<', '>', ';', '?':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("sqlx: unexpected character %q at %d", c, l.pos)
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
