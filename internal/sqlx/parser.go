package sqlx

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// optional trailing semicolon
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlx: unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// MustParse is Parse that panics on error; for static templates in tests.
func MustParse(src string) *SelectStmt {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// keyword reports whether the next token is the given keyword (case
// insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sqlx: expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) symbol(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.symbol(s) {
		return fmt.Errorf("sqlx: expected %q, got %s", s, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlx: expected identifier, got %s", t)
	}
	p.next()
	return t.text, nil
}

var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "inner": true, "join": true,
	"on": true, "and": true, "or": true, "order": true, "by": true,
	"limit": true, "distinct": true, "as": true, "in": true, "like": true,
	"is": true, "not": true, "null": true, "count": true, "asc": true,
	"desc": true, "true": true, "false": true,
}

func isReserved(s string) bool { return reserved[strings.ToLower(s)] }

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.keyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for {
		if p.keyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.keyword("JOIN") {
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, Join{Table: tr, On: on})
	}
	if p.keyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			o := OrderItem{Col: *col}
			if p.keyword("DESC") {
				o.Desc = true
			} else {
				p.keyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, o)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sqlx: expected number after LIMIT, got %s", t)
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlx: bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.symbol("*") {
		return SelectItem{Star: true}, nil
	}
	if p.keyword("COUNT") {
		if err := p.expectSymbol("("); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Count: true}
		if !p.symbol("*") {
			col, err := p.parseColRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.Expr = col
		}
		if err := p.expectSymbol(")"); err != nil {
			return SelectItem{}, err
		}
		if p.keyword("AS") {
			a, err := p.ident()
			if err != nil {
				return SelectItem{}, err
			}
			item.Alias = a
		}
		return item, nil
	}
	col, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: col}
	if p.keyword("AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	// optional alias: a bare identifier that is not a reserved keyword
	if t := p.peek(); t.kind == tokIdent && !isReserved(t.text) {
		p.next()
		tr.Alias = t.text
	}
	return tr, nil
}

func (p *parser) parseColRef() (*ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.symbol(".") {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ColRef{Table: first, Column: col}, nil
	}
	return &ColRef{Column: first}, nil
}

// parseExpr parses OR-combined expressions (lowest precedence).
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Logical{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parsePredicate()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		right, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		left = &Logical{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parsePredicate() (Expr, error) {
	if p.symbol("(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch {
	case t.kind == tokSymbol && isCmpOp(t.text):
		p.next()
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		op := t.text
		if op == "<>" {
			op = "!="
		}
		return &Cmp{Op: op, Left: left, Right: right}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "LIKE"):
		p.next()
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &Cmp{Op: "LIKE", Left: left, Right: right}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "IN"):
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var items []Expr
		for {
			it, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			items = append(items, it)
			if !p.symbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &In{Left: left, Items: items}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "IS"):
		p.next()
		not := p.keyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{Left: left, Not: not}, nil
	}
	return nil, fmt.Errorf("sqlx: expected comparison operator, got %s", t)
}

func isCmpOp(s string) bool {
	switch s {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseOperand() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.next()
		return &Lit{Value: t.text}, nil
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlx: bad number %q", t.text)
			}
			return &Lit{Value: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlx: bad number %q", t.text)
		}
		return &Lit{Value: n}, nil
	case tokParam:
		p.next()
		return &Param{Name: t.text}, nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "null":
			p.next()
			return &Lit{Value: nil}, nil
		case "true":
			p.next()
			return &Lit{Value: true}, nil
		case "false":
			p.next()
			return &Lit{Value: false}, nil
		}
		return p.parseColRef()
	}
	return nil, fmt.Errorf("sqlx: expected operand, got %s", t)
}
