package sqlx

import (
	"fmt"
	"strconv"
	"strings"
)

// SelectStmt is the root of a parsed query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []Join
	Where    Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// SelectItem is one projection: a column, COUNT aggregate, or *.
type SelectItem struct {
	Star  bool
	Count bool    // COUNT(expr) or COUNT(*)
	Expr  *ColRef // nil for * and COUNT(*)
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Binding returns the name the query text uses to refer to the table.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// Join is an INNER JOIN with an equality ON condition.
type Join struct {
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ColRef
	Desc bool
}

// Expr is a boolean or scalar expression node.
type Expr interface {
	exprString() string
}

// ColRef references a column, optionally qualified by a table binding.
type ColRef struct {
	Table  string // may be empty
	Column string
}

func (c *ColRef) exprString() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Lit is a literal value: string, float64, int64, bool, or nil (NULL).
type Lit struct {
	Value interface{}
}

func (l *Lit) exprString() string {
	switch v := l.Value.(type) {
	case nil:
		return "NULL"
	case string:
		return "'" + strings.ReplaceAll(v, "'", "''") + "'"
	case float64:
		// %v would render large/small magnitudes in exponent notation,
		// which the lexer does not read back; keep the canonical form
		// round-trippable.
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// Param is a template parameter marker <@Name>.
type Param struct {
	Name string
}

func (p *Param) exprString() string { return "<@" + p.Name + ">" }

// Cmp is a binary comparison: =, !=, <, <=, >, >=, LIKE.
type Cmp struct {
	Op    string
	Left  Expr
	Right Expr
}

func (c *Cmp) exprString() string {
	return c.Left.exprString() + " " + c.Op + " " + c.Right.exprString()
}

// In is "expr IN (lit, ...)".
type In struct {
	Left  Expr
	Items []Expr
}

func (i *In) exprString() string {
	parts := make([]string, len(i.Items))
	for j, it := range i.Items {
		parts[j] = it.exprString()
	}
	return i.Left.exprString() + " IN (" + strings.Join(parts, ", ") + ")"
}

// IsNull is "expr IS [NOT] NULL".
type IsNull struct {
	Left Expr
	Not  bool
}

func (n *IsNull) exprString() string {
	if n.Not {
		return n.Left.exprString() + " IS NOT NULL"
	}
	return n.Left.exprString() + " IS NULL"
}

// Logical combines subexpressions with AND or OR.
type Logical struct {
	Op    string // "AND" or "OR"
	Left  Expr
	Right Expr
}

func (l *Logical) exprString() string {
	return "(" + l.Left.exprString() + " " + l.Op + " " + l.Right.exprString() + ")"
}

// String renders the statement back to SQL text (canonical form).
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star:
			b.WriteString("*")
		case it.Count && it.Expr == nil:
			b.WriteString("COUNT(*)")
		case it.Count:
			b.WriteString("COUNT(" + it.Expr.exprString() + ")")
		default:
			b.WriteString(it.Expr.exprString())
		}
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM " + s.From.Table)
	if s.From.Alias != "" {
		b.WriteString(" " + s.From.Alias)
	}
	for _, j := range s.Joins {
		b.WriteString(" INNER JOIN " + j.Table.Table)
		if j.Table.Alias != "" {
			b.WriteString(" " + j.Table.Alias)
		}
		b.WriteString(" ON " + j.On.exprString())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.exprString())
	}
	for i, o := range s.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.Col.exprString())
		if o.Desc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// Params returns the distinct parameter names appearing in the statement,
// in first-appearance order.
func (s *SelectStmt) Params() []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Param:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case *Cmp:
			walk(x.Left)
			walk(x.Right)
		case *Logical:
			walk(x.Left)
			walk(x.Right)
		case *In:
			walk(x.Left)
			for _, it := range x.Items {
				walk(it)
			}
		case *IsNull:
			walk(x.Left)
		}
	}
	if s.Where != nil {
		walk(s.Where)
	}
	for _, j := range s.Joins {
		walk(j.On)
	}
	return out
}
