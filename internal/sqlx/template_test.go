package sqlx

import (
	"reflect"
	"strings"
	"testing"
)

func TestNewTemplate(t *testing.T) {
	tpl, err := NewTemplate("SELECT p.description FROM precaution p INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.name = <@Drug>")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tpl.Params, []string{"Drug"}) {
		t.Fatalf("Params = %v", tpl.Params)
	}
	if _, err := NewTemplate("not sql"); err == nil {
		t.Fatal("bad template must error")
	}
}

func TestTemplateInstantiate(t *testing.T) {
	k := fixtureKB(t)
	tpl := MustTemplate("SELECT d.name FROM drug d WHERE d.class = <@Class>")
	stmt, err := tpl.Instantiate(map[string]string{"Class": "NSAID"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(k, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("instantiated query returned %d rows", len(res.Rows))
	}
}

func TestTemplateInstantiateEscapesQuotes(t *testing.T) {
	tpl := MustTemplate("SELECT name FROM drug WHERE name = <@Drug>")
	stmt, err := tpl.Instantiate(map[string]string{"Drug": "O'Brien's"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt.String(), "'O''Brien''s'") {
		t.Fatalf("quoting: %s", stmt.String())
	}
	// The rendered form must re-parse.
	if _, err := Parse(stmt.String()); err != nil {
		t.Fatalf("instantiated SQL does not re-parse: %v", err)
	}
}

func TestTemplateInstantiateErrors(t *testing.T) {
	tpl := MustTemplate("SELECT name FROM drug WHERE name = <@Drug> AND class = <@Class>")
	if _, err := tpl.Instantiate(map[string]string{"Drug": "x"}); err == nil {
		t.Fatal("missing param must error")
	}
	if _, err := tpl.Instantiate(map[string]string{"Drug": "x", "Class": "y", "Ghost": "z"}); err == nil {
		t.Fatal("unknown param must error")
	}
}

func TestTemplateInstantiateInJoin(t *testing.T) {
	k := fixtureKB(t)
	tpl := MustTemplate("SELECT d.name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id WHERE b.name = <@Brand>")
	stmt, err := tpl.Instantiate(map[string]string{"Brand": "Bayer"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(k, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Column("name"); !reflect.DeepEqual(got, []string{"Aspirin"}) {
		t.Fatalf("join-template result = %v", got)
	}
}

func TestParameterize(t *testing.T) {
	// The §4.4 flow: NLQ produces concrete SQL for one example utterance;
	// Parameterize turns the example literal into a marker.
	stmt := MustParse("SELECT p.description FROM precaution p INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.name = 'Ibuprofen'")
	tpl := Parameterize(stmt, map[string]string{"Ibuprofen": "Drug"})
	if !reflect.DeepEqual(tpl.Params, []string{"Drug"}) {
		t.Fatalf("Params = %v", tpl.Params)
	}
	if !strings.Contains(tpl.SQL, "<@Drug>") || strings.Contains(tpl.SQL, "Ibuprofen") {
		t.Fatalf("SQL = %s", tpl.SQL)
	}
	// original untouched
	if strings.Contains(stmt.String(), "<@") {
		t.Fatal("Parameterize must not mutate the source statement")
	}
}

func TestParameterizeOnlyNamedLiterals(t *testing.T) {
	stmt := MustParse("SELECT name FROM drug WHERE class = 'NSAID' AND name = 'Aspirin'")
	tpl := Parameterize(stmt, map[string]string{"Aspirin": "Drug"})
	if !strings.Contains(tpl.SQL, "'NSAID'") {
		t.Fatalf("unrelated literal replaced: %s", tpl.SQL)
	}
	if !strings.Contains(tpl.SQL, "<@Drug>") {
		t.Fatalf("named literal not replaced: %s", tpl.SQL)
	}
}

// TestInstantiateDoesNotReparse is the regression test for the
// parse-per-turn bug: after NewTemplate, Instantiate must work from the
// cached AST, so corrupting the SQL text afterwards cannot affect it.
func TestInstantiateDoesNotReparse(t *testing.T) {
	k := fixtureKB(t)
	tpl := MustTemplate("SELECT d.name FROM drug d WHERE d.class = <@Class>")
	tpl.SQL = "this is no longer sql (("
	stmt, err := tpl.Instantiate(map[string]string{"Class": "NSAID"})
	if err != nil {
		t.Fatalf("Instantiate after SQL mutation: %v", err)
	}
	res, err := Execute(k, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
}

// TestInstantiateSharedASTUnmutated checks repeated instantiations see a
// pristine template: binding must go into a copy, never the cached AST.
func TestInstantiateSharedASTUnmutated(t *testing.T) {
	tpl := MustTemplate("SELECT d.name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id AND b.name = <@Brand> WHERE d.class = <@Class>")
	first, err := tpl.Instantiate(map[string]string{"Brand": "Bayer", "Class": "NSAID"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := tpl.Instantiate(map[string]string{"Brand": "Advil", "Class": "Retinoid"})
	if err != nil {
		t.Fatal(err)
	}
	if s := first.String(); !strings.Contains(s, "'Bayer'") || strings.Contains(s, "'Advil'") {
		t.Fatalf("first instantiation corrupted: %s", s)
	}
	if s := second.String(); !strings.Contains(s, "'Advil'") || strings.Contains(s, "<@") {
		t.Fatalf("second instantiation wrong: %s", s)
	}
	// The template itself must still carry its markers.
	if stmt, err := tpl.ast(); err != nil || len(stmt.Params()) != 2 {
		t.Fatalf("cached AST mutated: %v %v", err, stmt.Params())
	}
}

// TestLazyASTFromJSON covers templates that arrive via JSON decoding
// (workspace bundles) and so skip NewTemplate: the first Instantiate
// parses, later ones reuse the cache.
func TestLazyASTFromJSON(t *testing.T) {
	tpl := &Template{SQL: "SELECT name FROM drug WHERE class = <@Class>", Params: []string{"Class"}}
	if _, err := tpl.Instantiate(map[string]string{"Class": "NSAID"}); err != nil {
		t.Fatal(err)
	}
	tpl.SQL = "garbage" // proves the second call hits the cache
	if _, err := tpl.Instantiate(map[string]string{"Class": "NSAID"}); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteRejectsUnboundParams(t *testing.T) {
	k := fixtureKB(t)
	stmt := MustParse("SELECT name FROM drug WHERE name = <@Drug>")
	if _, err := Execute(k, stmt); err == nil {
		t.Fatal("executing with unbound params must error")
	}
}
