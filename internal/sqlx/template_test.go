package sqlx

import (
	"reflect"
	"strings"
	"testing"
)

func TestNewTemplate(t *testing.T) {
	tpl, err := NewTemplate("SELECT p.description FROM precaution p INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.name = <@Drug>")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tpl.Params, []string{"Drug"}) {
		t.Fatalf("Params = %v", tpl.Params)
	}
	if _, err := NewTemplate("not sql"); err == nil {
		t.Fatal("bad template must error")
	}
}

func TestTemplateInstantiate(t *testing.T) {
	k := fixtureKB(t)
	tpl := MustTemplate("SELECT d.name FROM drug d WHERE d.class = <@Class>")
	stmt, err := tpl.Instantiate(map[string]string{"Class": "NSAID"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(k, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("instantiated query returned %d rows", len(res.Rows))
	}
}

func TestTemplateInstantiateEscapesQuotes(t *testing.T) {
	tpl := MustTemplate("SELECT name FROM drug WHERE name = <@Drug>")
	stmt, err := tpl.Instantiate(map[string]string{"Drug": "O'Brien's"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt.String(), "'O''Brien''s'") {
		t.Fatalf("quoting: %s", stmt.String())
	}
	// The rendered form must re-parse.
	if _, err := Parse(stmt.String()); err != nil {
		t.Fatalf("instantiated SQL does not re-parse: %v", err)
	}
}

func TestTemplateInstantiateErrors(t *testing.T) {
	tpl := MustTemplate("SELECT name FROM drug WHERE name = <@Drug> AND class = <@Class>")
	if _, err := tpl.Instantiate(map[string]string{"Drug": "x"}); err == nil {
		t.Fatal("missing param must error")
	}
	if _, err := tpl.Instantiate(map[string]string{"Drug": "x", "Class": "y", "Ghost": "z"}); err == nil {
		t.Fatal("unknown param must error")
	}
}

func TestTemplateInstantiateInJoin(t *testing.T) {
	k := fixtureKB(t)
	tpl := MustTemplate("SELECT d.name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id WHERE b.name = <@Brand>")
	stmt, err := tpl.Instantiate(map[string]string{"Brand": "Bayer"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(k, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Column("name"); !reflect.DeepEqual(got, []string{"Aspirin"}) {
		t.Fatalf("join-template result = %v", got)
	}
}

func TestParameterize(t *testing.T) {
	// The §4.4 flow: NLQ produces concrete SQL for one example utterance;
	// Parameterize turns the example literal into a marker.
	stmt := MustParse("SELECT p.description FROM precaution p INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.name = 'Ibuprofen'")
	tpl := Parameterize(stmt, map[string]string{"Ibuprofen": "Drug"})
	if !reflect.DeepEqual(tpl.Params, []string{"Drug"}) {
		t.Fatalf("Params = %v", tpl.Params)
	}
	if !strings.Contains(tpl.SQL, "<@Drug>") || strings.Contains(tpl.SQL, "Ibuprofen") {
		t.Fatalf("SQL = %s", tpl.SQL)
	}
	// original untouched
	if strings.Contains(stmt.String(), "<@") {
		t.Fatal("Parameterize must not mutate the source statement")
	}
}

func TestParameterizeOnlyNamedLiterals(t *testing.T) {
	stmt := MustParse("SELECT name FROM drug WHERE class = 'NSAID' AND name = 'Aspirin'")
	tpl := Parameterize(stmt, map[string]string{"Aspirin": "Drug"})
	if !strings.Contains(tpl.SQL, "'NSAID'") {
		t.Fatalf("unrelated literal replaced: %s", tpl.SQL)
	}
	if !strings.Contains(tpl.SQL, "<@Drug>") {
		t.Fatalf("named literal not replaced: %s", tpl.SQL)
	}
}

func TestExecuteRejectsUnboundParams(t *testing.T) {
	k := fixtureKB(t)
	stmt := MustParse("SELECT name FROM drug WHERE name = <@Drug>")
	if _, err := Execute(k, stmt); err == nil {
		t.Fatal("executing with unbound params must error")
	}
}
