package sqlx

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ontoconv/internal/kb"
)

// fixtureKB builds drug / brand / treats / indication tables with known
// contents.
func fixtureKB(t *testing.T) *kb.KB {
	t.Helper()
	k := kb.New()
	mk := func(s kb.Schema) *kb.Table {
		tab, err := k.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	drug := mk(kb.Schema{
		Name: "drug",
		Columns: []kb.Column{
			{Name: "drug_id", Type: kb.TextCol, NotNull: true},
			{Name: "name", Type: kb.TextCol, NotNull: true},
			{Name: "class", Type: kb.TextCol},
			{Name: "year", Type: kb.IntCol},
		},
		PrimaryKey: "drug_id",
	})
	brand := mk(kb.Schema{
		Name: "brand",
		Columns: []kb.Column{
			{Name: "brand_id", Type: kb.TextCol, NotNull: true},
			{Name: "name", Type: kb.TextCol},
			{Name: "drug_id", Type: kb.TextCol},
		},
		PrimaryKey: "brand_id",
	})
	ind := mk(kb.Schema{
		Name: "indication",
		Columns: []kb.Column{
			{Name: "indication_id", Type: kb.TextCol, NotNull: true},
			{Name: "name", Type: kb.TextCol},
		},
		PrimaryKey: "indication_id",
	})
	treats := mk(kb.Schema{
		Name: "treats",
		Columns: []kb.Column{
			{Name: "t_id", Type: kb.TextCol, NotNull: true},
			{Name: "drug_id", Type: kb.TextCol},
			{Name: "indication_id", Type: kb.TextCol},
			{Name: "efficacy", Type: kb.TextCol},
		},
		PrimaryKey: "t_id",
	})
	drug.MustInsert(kb.Row{"D1", "Aspirin", "NSAID", int64(1899)})
	drug.MustInsert(kb.Row{"D2", "Ibuprofen", "NSAID", int64(1961)})
	drug.MustInsert(kb.Row{"D3", "Tazarotene", "Retinoid", int64(1997)})
	drug.MustInsert(kb.Row{"D4", "Mystery", nil, nil})
	brand.MustInsert(kb.Row{"B1", "Bayer", "D1"})
	brand.MustInsert(kb.Row{"B2", "Advil", "D2"})
	brand.MustInsert(kb.Row{"B3", "Tazorac", "D3"})
	brand.MustInsert(kb.Row{"B4", "Orphan", nil})
	ind.MustInsert(kb.Row{"I1", "Fever"})
	ind.MustInsert(kb.Row{"I2", "Psoriasis"})
	treats.MustInsert(kb.Row{"T1", "D1", "I1", "Effective"})
	treats.MustInsert(kb.Row{"T2", "D2", "I1", "Effective"})
	treats.MustInsert(kb.Row{"T3", "D3", "I2", "Effective"})
	return k
}

func mustExec(t *testing.T, k *kb.KB, sql string) *Result {
	t.Helper()
	res, err := Exec(k, sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestSelectAll(t *testing.T) {
	k := fixtureKB(t)
	res := mustExec(t, k, "SELECT * FROM drug")
	if len(res.Rows) != 4 || len(res.Columns) != 4 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
}

func TestProjectionAndAlias(t *testing.T) {
	k := fixtureKB(t)
	res := mustExec(t, k, "SELECT name AS drug_name FROM drug WHERE drug_id = 'D1'")
	if res.Columns[0] != "drug_name" || res.Rows[0][0] != "Aspirin" {
		t.Fatalf("res = %v %v", res.Columns, res.Rows)
	}
}

func TestWhereOperators(t *testing.T) {
	k := fixtureKB(t)
	cases := map[string]int{
		"SELECT name FROM drug WHERE class = 'NSAID'":                   2,
		"SELECT name FROM drug WHERE class != 'NSAID'":                  1, // NULL row excluded
		"SELECT name FROM drug WHERE year > 1900":                       2,
		"SELECT name FROM drug WHERE year >= 1899":                      3,
		"SELECT name FROM drug WHERE year < 1961":                       1,
		"SELECT name FROM drug WHERE year <= 1961":                      2,
		"SELECT name FROM drug WHERE name LIKE 'a%'":                    1, // case-insensitive
		"SELECT name FROM drug WHERE name LIKE '%en%'":                  2,
		"SELECT name FROM drug WHERE name LIKE '_spirin'":               1,
		"SELECT name FROM drug WHERE class IN ('NSAID', 'Statin')":      2,
		"SELECT name FROM drug WHERE class IS NULL":                     1,
		"SELECT name FROM drug WHERE class IS NOT NULL":                 3,
		"SELECT name FROM drug WHERE (class = 'NSAID' AND year > 1900)": 1,
		"SELECT name FROM drug WHERE (year < 1900 OR year > 1990)":      2,
	}
	for sql, want := range cases {
		if got := len(mustExec(t, k, sql).Rows); got != want {
			t.Errorf("%s: %d rows, want %d", sql, got, want)
		}
	}
}

func TestNullComparisons(t *testing.T) {
	k := fixtureKB(t)
	// NULL compares false under every operator (collapsed 3VL)
	if got := len(mustExec(t, k, "SELECT name FROM drug WHERE class = NULL").Rows); got != 0 {
		t.Fatalf("= NULL matched %d rows", got)
	}
	if got := len(mustExec(t, k, "SELECT name FROM drug WHERE year > 0").Rows); got != 3 {
		t.Fatalf("NULL year must not satisfy >: %d", got)
	}
}

func TestJoinTwoTables(t *testing.T) {
	k := fixtureKB(t)
	res := mustExec(t, k, "SELECT b.name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id WHERE d.name = 'Aspirin'")
	if got := res.Column("name"); !reflect.DeepEqual(got, []string{"Bayer"}) {
		t.Fatalf("join result = %v", got)
	}
}

func TestJoinNullNeverMatches(t *testing.T) {
	k := fixtureKB(t)
	res := mustExec(t, k, "SELECT b.brand_id FROM brand b INNER JOIN drug d ON b.drug_id = d.drug_id")
	if len(res.Rows) != 3 {
		t.Fatalf("NULL FK joined: %d rows, want 3", len(res.Rows))
	}
}

func TestThreeWayJoin(t *testing.T) {
	k := fixtureKB(t)
	res := mustExec(t, k, `SELECT DISTINCT d.name FROM drug d
		INNER JOIN treats t ON t.drug_id = d.drug_id
		INNER JOIN indication i ON i.indication_id = t.indication_id
		WHERE i.name = 'Fever'`)
	got := res.Column("name")
	if !reflect.DeepEqual(got, []string{"Aspirin", "Ibuprofen"}) {
		t.Fatalf("fever drugs = %v", got)
	}
}

func TestNestedLoopJoinFallback(t *testing.T) {
	k := fixtureKB(t)
	// Non-equality ON forces the nested-loop path.
	res := mustExec(t, k, "SELECT d.name, b.name FROM drug d INNER JOIN brand b ON d.year > 1950")
	// 2 drugs (>1950) x 4 brands
	if len(res.Rows) != 8 {
		t.Fatalf("cross-ish join rows = %d, want 8", len(res.Rows))
	}
}

func TestDistinct(t *testing.T) {
	k := fixtureKB(t)
	all := mustExec(t, k, "SELECT class FROM drug WHERE class IS NOT NULL")
	dis := mustExec(t, k, "SELECT DISTINCT class FROM drug WHERE class IS NOT NULL")
	if len(all.Rows) != 3 || len(dis.Rows) != 2 {
		t.Fatalf("all=%d distinct=%d", len(all.Rows), len(dis.Rows))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	k := fixtureKB(t)
	res := mustExec(t, k, "SELECT name FROM drug ORDER BY name DESC LIMIT 2")
	if got := res.Column("name"); !reflect.DeepEqual(got, []string{"Tazarotene", "Mystery"}) {
		t.Fatalf("ordered = %v", got)
	}
	res = mustExec(t, k, "SELECT name, year FROM drug ORDER BY year")
	// NULL year sorts first ascending
	if res.Rows[0][1] != nil {
		t.Fatalf("NULL should sort first: %v", res.Rows)
	}
	if _, err := Exec(k, "SELECT name FROM drug ORDER BY year"); err == nil {
		t.Fatal("ORDER BY on unprojected column must error")
	}
}

func TestCount(t *testing.T) {
	k := fixtureKB(t)
	res := mustExec(t, k, "SELECT COUNT(*) FROM drug")
	if res.Rows[0][0] != int64(4) {
		t.Fatalf("COUNT(*) = %v", res.Rows[0][0])
	}
	res = mustExec(t, k, "SELECT COUNT(class) AS n FROM drug")
	if res.Columns[0] != "n" || res.Rows[0][0] != int64(3) {
		t.Fatalf("COUNT(class) = %v %v", res.Columns, res.Rows)
	}
	if _, err := Exec(k, "SELECT COUNT(*), name FROM drug"); err == nil {
		t.Fatal("mixing COUNT with plain columns must error")
	}
}

func TestExecErrors(t *testing.T) {
	k := fixtureKB(t)
	cases := []string{
		"SELECT name FROM ghost",
		"SELECT ghost FROM drug",
		"SELECT g.name FROM drug d",
		"SELECT name FROM drug d INNER JOIN drug d ON d.drug_id = d.drug_id", // dup binding
		"SELECT name FROM drug WHERE name = <@P>",                            // unbound param
		"SELECT name FROM drug WHERE year LIKE 'x'",                          // LIKE on non-string
		"SELECT name FROM drug WHERE name = 5",                               // type mismatch in cmp
	}
	for _, sql := range cases {
		if _, err := Exec(k, sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	k := fixtureKB(t)
	// "name" exists in both drug and brand
	if _, err := Exec(k, "SELECT name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id"); err == nil {
		t.Fatal("ambiguous column must error")
	}
	// qualified is fine
	mustExec(t, k, "SELECT d.name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id")
}

func TestResultHelpers(t *testing.T) {
	k := fixtureKB(t)
	res := mustExec(t, k, "SELECT name, class FROM drug WHERE drug_id = 'D4'")
	rows := res.Strings()
	if rows[0][1] != "" {
		t.Fatalf("NULL should render empty: %v", rows)
	}
	if res.Column("ghost") != nil {
		t.Fatal("missing column should be nil")
	}
	if got := res.Column("NAME"); len(got) != 1 {
		t.Fatal("Column lookup should be case-insensitive")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"abc", "abc", true},
		{"ABC", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "%%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v", c.s, c.p, got)
		}
	}
}

// Property (quick): LIKE with no wildcards behaves as case-insensitive
// equality.
func TestLikeEqualsProperty(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return likeMatch(s, s) && likeMatch(strings.ToUpper(s), strings.ToLower(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): DISTINCT is idempotent over random literal filters.
func TestDistinctIdempotent(t *testing.T) {
	k := fixtureKB(t)
	res1 := mustExec(t, k, "SELECT DISTINCT class FROM drug")
	seen := map[string]bool{}
	for _, row := range res1.Rows {
		key := rowKey(row)
		if seen[key] {
			t.Fatal("DISTINCT produced duplicates")
		}
		seen[key] = true
	}
}

func TestCompareValues(t *testing.T) {
	if c, err := compareValues(int64(1), 1.5); err != nil || c >= 0 {
		t.Fatalf("int/float coercion: %d %v", c, err)
	}
	if c, err := compareValues(true, false); err != nil || c <= 0 {
		t.Fatalf("bool compare: %d %v", c, err)
	}
	if _, err := compareValues("x", int64(1)); err == nil {
		t.Fatal("string/int compare must error")
	}
	if _, err := compareValues(true, "x"); err == nil {
		t.Fatal("bool/string compare must error")
	}
}
