package sqlx

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"ontoconv/internal/kb"
)

// columnarFixture builds a synthetic table "t" of the given size with
// every column kind the vectorized kernels cover — nullable text, LIKE
// fodder, ints, floats, bools — and freezes its ColumnSet.
func columnarFixture(t testing.TB, rows int, seed int64) *kb.KB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	k := kb.New()
	tab, err := k.CreateTable(kb.Schema{
		Name: "t",
		Columns: []kb.Column{
			{Name: "id", Type: kb.TextCol, NotNull: true},
			{Name: "cat", Type: kb.TextCol},
			{Name: "name", Type: kb.TextCol, NotNull: true},
			{Name: "num", Type: kb.IntCol},
			{Name: "val", Type: kb.FloatCol},
			{Name: "flag", Type: kb.BoolCol},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"alpha", "beta", "gamma", ""}
	names := []string{"Aspirin", "Ibuprofen", "tazarotene", "WARFARIN", "x_y%z"}
	for i := 0; i < rows; i++ {
		var cat, num, val, flag kb.Value
		if c := cats[rng.Intn(len(cats))]; c != "" {
			cat = c
		}
		if rng.Intn(10) > 0 {
			num = int64(rng.Intn(100))
		}
		if rng.Intn(10) > 0 {
			val = float64(rng.Intn(400)) / 4 // exact quarters round-trip via ParseFloat
		}
		if rng.Intn(10) > 0 {
			flag = rng.Intn(2) == 0
		}
		tab.MustInsert(kb.Row{fmt.Sprintf("R%06d", i), cat, names[rng.Intn(len(names))], num, val, flag})
	}
	tab.Freeze()
	return k
}

// columnarAtoms yields random predicate atoms over the fixture,
// including ones the vectorizer must reject (cross-type comparisons that
// error at runtime) so the fallback path is exercised too.
func columnarAtoms(rng *rand.Rand) []string {
	cat := []string{"alpha", "beta", "gamma"}[rng.Intn(3)]
	n := rng.Intn(100)
	f := float64(rng.Intn(400)) / 4
	return []string{
		fmt.Sprintf("cat = '%s'", cat),
		fmt.Sprintf("cat != '%s'", cat),
		fmt.Sprintf("cat < '%s'", cat),
		fmt.Sprintf("cat >= '%s'", cat),
		"cat IS NULL",
		"cat IS NOT NULL",
		fmt.Sprintf("cat IN ('alpha', '%s')", cat),
		"cat IN (NULL)",
		fmt.Sprintf("'%s' = cat", cat),
		fmt.Sprintf("'%s' < cat", cat),
		"name LIKE 'a%'",
		"name LIKE '%arf%'",
		"name LIKE '_b%'",
		"name LIKE '%\\%%'",
		fmt.Sprintf("num > %d", n),
		fmt.Sprintf("num <= %d", n),
		fmt.Sprintf("num = %d", n),
		fmt.Sprintf("num != %d", n),
		fmt.Sprintf("%d >= num", n),
		fmt.Sprintf("num IN (%d, %d)", n, (n+17)%100),
		"num IS NULL",
		fmt.Sprintf("val >= %g", f),
		fmt.Sprintf("val < %g", f),
		"flag = TRUE",
		"flag != FALSE",
		"flag IS NOT NULL",
		// Not vectorizable; the whole scan must fall back to the row
		// path and agree with the interpreter (including errors).
		fmt.Sprintf("cat > %d", n),
		"num = 'oops'",
		"num = NULL",
	}
}

// assertColumnarMatches runs one statement through the interpreter, the
// default (columnar) plan and the forced row-path plan, requiring all
// three to agree — including on errors.
func assertColumnarMatches(t *testing.T, k *kb.KB, sql string) {
	t.Helper()
	stmt := MustParse(sql)
	want, werr := Execute(k, stmt)
	for _, cfg := range []PlanConfig{{}, {NoColumnar: true}, {NoParallel: true}} {
		plan, perr := PrepareConfig(k, MustParse(sql), cfg)
		if perr != nil {
			t.Fatalf("%q (%+v): Prepare: %v", sql, cfg, perr)
		}
		got, err := plan.Exec(nil)
		if werr != nil {
			if err == nil {
				t.Fatalf("%q (%+v): interpreter errored (%v), plan succeeded", sql, cfg, werr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%q (%+v): plan.Exec: %v", sql, cfg, err)
		}
		if !resultEqual(want, got) {
			t.Fatalf("%q (%+v):\ninterpreter: %v\nplan:        %v", sql, cfg, want.Rows, got.Rows)
		}
	}
}

// TestColumnarRandomPredicates is the columnar differential battery the
// roadmap asks for: 200+ random WHERE trees per scale, each executed by
// the interpreter oracle, the vectorized plan and the forced row plan.
// Scale 1 matches the classic property test; scale 100 (20k rows) pushes
// the vectorized path across batch and partition boundaries, so the
// parallel merge is differentially covered too.
func TestColumnarRandomPredicates(t *testing.T) {
	for _, tc := range []struct {
		name   string
		rows   int
		trials int
	}{
		{"scale1", 200, 220},
		{"scale100", 20000, 220},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			k := columnarFixture(t, tc.rows, 17)
			for trial := 0; trial < tc.trials; trial++ {
				as := columnarAtoms(rng)
				p1, p2, p3 := as[rng.Intn(len(as))], as[rng.Intn(len(as))], as[rng.Intn(len(as))]
				var where string
				switch rng.Intn(5) {
				case 0:
					where = p1
				case 1:
					where = fmt.Sprintf("(%s AND %s)", p1, p2)
				case 2:
					where = fmt.Sprintf("(%s OR %s)", p1, p2)
				case 3:
					where = fmt.Sprintf("((%s OR %s) AND %s)", p1, p2, p3)
				default:
					where = fmt.Sprintf("(%s OR (%s AND %s))", p1, p2, p3)
				}
				assertColumnarMatches(t, k, "SELECT id FROM t WHERE "+where)
			}
		})
	}
}

// TestColumnarParamsMatch covers parameterized vectorized scans: the
// same prepared plan executed with different bindings must match the
// interpreter per binding.
func TestColumnarParamsMatch(t *testing.T) {
	k := columnarFixture(t, 5000, 23)
	tpl := MustTemplate("SELECT id FROM t WHERE (cat = <@Cat> OR cat IS NULL) AND name LIKE <@Pat>")
	plan, err := tpl.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	if plan.scans[0].col == nil {
		t.Fatal("parameterized pushdown did not vectorize")
	}
	for _, args := range []map[string]string{
		{"Cat": "alpha", "Pat": "%arf%"},
		{"Cat": "beta", "Pat": "a%"},
		{"Cat": "nosuch", "Pat": "%"},
	} {
		stmt, err := tpl.Instantiate(args)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Execute(k, stmt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Exec(args)
		if err != nil {
			t.Fatal(err)
		}
		if !resultEqual(want, got) {
			t.Fatalf("%v: interpreter %v, plan %v", args, want.Rows, got.Rows)
		}
	}
}

// TestColumnarScanBitIdenticalAcrossWidths is the determinism property
// test for partition-parallel scans, in the PR 5 suite's shape: the same
// plans executed at GOMAXPROCS 1, 2 and 8 must produce results
// bit-identical to the forced-serial reference. 40k rows split into
// three fixed partitions regardless of width.
func TestColumnarScanBitIdenticalAcrossWidths(t *testing.T) {
	k := columnarFixture(t, 40000, 41)
	queries := []string{
		"SELECT id FROM t WHERE (cat = 'alpha' OR cat = 'gamma') AND num > 40",
		"SELECT id, num FROM t WHERE (cat = 'beta' OR cat IS NULL) AND val <= 60.25",
		"SELECT id FROM t WHERE name LIKE '%arf%' OR flag = TRUE",
		"SELECT COUNT(*) FROM t WHERE num IN (1, 2, 3, 5, 8, 13, 21)",
	}
	type ran struct {
		sql string
		res *Result
	}
	var want []ran
	for _, sql := range queries {
		plan, err := PrepareConfig(k, MustParse(sql), PlanConfig{NoParallel: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Exec(nil)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, ran{sql, res})
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, width := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(width)
		for _, w := range want {
			plan, err := PrepareConfig(k, MustParse(w.sql), PlanConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if plan.scans[0].col == nil {
				t.Fatalf("%q did not vectorize", w.sql)
			}
			got, err := plan.Exec(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !resultEqual(w.res, got) {
				t.Fatalf("width %d: %q diverged from serial reference", width, w.sql)
			}
		}
	}
}

// TestColumnarChoicePerScan pins Prepare's access-path choice: cold
// filtered scans vectorize, indexed equality probes stay row-oriented,
// and the row fallback engages when the table was never frozen.
func TestColumnarChoicePerScan(t *testing.T) {
	k := columnarFixture(t, 500, 53)
	tab := k.Table("t")

	plan, err := PrepareConfig(k, MustParse("SELECT id FROM t WHERE num > 10"), PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.scans[0].col == nil {
		t.Fatal("cold filtered scan must vectorize")
	}

	// A text equality on an UNindexed column must not claim the scan as
	// an index probe (Lookup would degrade to a linear scan): it stays a
	// filter and the scan vectorizes.
	plan, err = PrepareConfig(k, MustParse("SELECT id FROM t WHERE cat = 'alpha'"), PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.scans[0].eq != nil {
		t.Fatal("unindexed text equality must not become an index probe")
	}
	if plan.scans[0].col == nil {
		t.Fatal("unindexed text equality must vectorize")
	}

	if err := tab.BuildIndex("cat"); err != nil {
		t.Fatal(err)
	}
	plan, err = PrepareConfig(k, MustParse("SELECT id FROM t WHERE cat = 'alpha'"), PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.scans[0].eq == nil || plan.scans[0].col != nil {
		t.Fatal("indexed equality probe must keep the row path")
	}

	plan, err = PrepareConfig(k, MustParse("SELECT id FROM t WHERE num > 10"), PlanConfig{NoColumnar: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.scans[0].col != nil {
		t.Fatal("NoColumnar must disable vectorization")
	}

	// Mutating the table invalidates the frozen set: the vectorized plan
	// must fall back to the row path (and still be correct) until the
	// next Freeze.
	plan, err = PrepareConfig(k, MustParse("SELECT id FROM t WHERE num > 90"), PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := plan.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	tab.MustInsert(kb.Row{"R999999", "alpha", "Aspirin", int64(99), nil, nil})
	if tab.ColumnSet() != nil {
		t.Fatal("Insert must invalidate the frozen ColumnSet")
	}
	after, err := plan.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(before.Rows)+1 {
		t.Fatalf("stale columnar data served after mutation: %d -> %d rows", len(before.Rows), len(after.Rows))
	}
}

// TestHashJoinBuildSidesIdentical is the build-side differential: every
// hash join executed with the full build, the probe-key-restricted build
// and the estimate-driven default must return byte-identical results,
// all equal to the interpreter oracle.
func TestHashJoinBuildSidesIdentical(t *testing.T) {
	k := fixtureKB(t)
	for _, spec := range [][2]string{
		{"drug", "class"}, {"drug", "name"}, {"brand", "drug_id"},
		{"treats", "drug_id"}, {"treats", "indication_id"}, {"indication", "name"},
	} {
		if err := k.Table(spec[0]).BuildIndex(spec[1]); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		"SELECT d.name, b.name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id",
		"SELECT d.name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id WHERE d.class = 'NSAID'",
		"SELECT DISTINCT d.name FROM drug d INNER JOIN treats t ON t.drug_id = d.drug_id INNER JOIN indication i ON i.indication_id = t.indication_id WHERE i.name = 'Fever'",
		"SELECT COUNT(*) FROM drug d INNER JOIN treats t ON t.drug_id = d.drug_id WHERE t.efficacy = 'Effective'",
	}
	for _, sql := range queries {
		want, err := Execute(k, MustParse(sql))
		if err != nil {
			t.Fatal(err)
		}
		for _, side := range []BuildSide{BuildAuto, BuildFull, BuildProbeKeys} {
			plan, err := PrepareConfig(k, MustParse(sql), PlanConfig{BuildSide: side})
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.Exec(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !resultEqual(want, got) {
				t.Fatalf("%q side=%d:\ninterpreter: %v\nplan:        %v", sql, side, want.Rows, got.Rows)
			}
		}
	}
}

// TestBuildSideEstimates pins the estimate-driven choice itself: a
// selective probe side joining into a much larger table picks the
// probe-key build, an unselective one keeps the full build.
func TestBuildSideEstimates(t *testing.T) {
	k := kb.New()
	small, err := k.CreateTable(kb.Schema{
		Name: "s",
		Columns: []kb.Column{
			{Name: "sid", Type: kb.TextCol, NotNull: true},
			{Name: "kind", Type: kb.TextCol},
		},
		PrimaryKey: "sid",
	})
	if err != nil {
		t.Fatal(err)
	}
	big, err := k.CreateTable(kb.Schema{
		Name: "b",
		Columns: []kb.Column{
			{Name: "bid", Type: kb.TextCol, NotNull: true},
			{Name: "sid", Type: kb.TextCol},
		},
		PrimaryKey: "bid",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		small.MustInsert(kb.Row{fmt.Sprintf("S%03d", i), fmt.Sprintf("k%02d", i%50)})
	}
	for i := 0; i < 3000; i++ {
		big.MustInsert(kb.Row{fmt.Sprintf("B%04d", i), fmt.Sprintf("S%03d", i%100)})
	}
	if err := small.BuildIndex("kind"); err != nil {
		t.Fatal(err)
	}

	// kind = 'k00' probes ~2 of 100 rows into 3000: probe-key build.
	plan, err := PrepareConfig(k, MustParse(
		"SELECT b.bid FROM s INNER JOIN b ON b.sid = s.sid WHERE s.kind = 'k00'"), PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.joins[0].probeKeys {
		t.Fatal("selective probe side must restrict the hash build to probe keys")
	}

	// Unfiltered s (100 rows) vs b (3000): 100*4 <= 3000 still favors
	// the probe-key build; flip the direction to get the full build.
	plan, err = PrepareConfig(k, MustParse(
		"SELECT s.sid FROM b INNER JOIN s ON s.sid = b.sid"), PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.joins[0].probeKeys {
		t.Fatal("probe side larger than the build side must keep the full build")
	}
	res, err := plan.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3000 {
		t.Fatalf("join returned %d rows, want 3000", len(res.Rows))
	}
}
