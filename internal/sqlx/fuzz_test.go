package sqlx

import (
	"testing"
)

// FuzzParse drives the SQL lexer and parser with arbitrary input. Beyond
// not panicking, it checks the printer invariant the template layer
// depends on: String() is a canonical form, so whatever Parse accepts must
// reprint to something Parse accepts again, and printing must be a fixed
// point (NewTemplate stores stmt.String() and later re-parses it in
// Instantiate — a non-round-tripping statement would brick its intent).
//
// testdata/fuzz/FuzzParse holds the checked-in seed corpus; CI runs a
// short -fuzztime smoke over it.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT name FROM drug",
		"SELECT DISTINCT d.name FROM drug d WHERE d.class = 'NSAID'",
		"SELECT p.description FROM precaution p INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.name = <@Drug>",
		"SELECT COUNT(*) FROM dosage WHERE age_group = <@AgeGroup> AND amount >= 0.5",
		"SELECT name AS n FROM drug WHERE salt IS NOT NULL ORDER BY name DESC LIMIT 10",
		"SELECT name FROM drug WHERE name IN ('Aspirin', 'Tylenol') OR (base = 'ibuprofen' AND salt != 'sodium')",
		"SELECT name FROM drug WHERE note LIKE 'don''t%' -- trailing comment\n",
		"SELECT amount FROM dosage WHERE amount = 1000000.5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return // rejected input is fine; crashing or mis-printing is not
		}
		printed := stmt.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("canonical form does not reparse\n  input:   %q\n  printed: %q\n  error:   %v", src, printed, err)
		}
		if reprinted := again.String(); reprinted != printed {
			t.Fatalf("printing is not a fixed point\n  input: %q\n  first: %q\n  second: %q", src, printed, reprinted)
		}
		// Params must survive the round trip: instantiation binds against
		// the reparsed canonical text.
		a, b := stmt.Params(), again.Params()
		if len(a) != len(b) {
			t.Fatalf("params changed across round trip: %v vs %v (input %q)", a, b, src)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("params changed across round trip: %v vs %v (input %q)", a, b, src)
			}
		}
	})
}
