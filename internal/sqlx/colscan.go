package sqlx

// Vectorized scan path: pushed-down single-table filters compiled into
// selection-vector programs over a table's frozen kb.ColumnSet, run in
// batches of colBatch rows instead of per-tuple closure calls, and fanned
// out over fixed-size partitions through par.DoChunks on large tables.
//
// Equivalence to the row interpreter is by construction, on three legs:
//
//   - Kernels are statically total. compileColPred rejects anything that
//     could error at runtime (cross-type comparisons, parameters on
//     numeric columns), so a compiled program can only drop rows the
//     interpreter would drop — never surface an error, and therefore
//     never surface one in a different row order than the interpreter's
//     first-failing-row semantics.
//   - Values compare identically. Numeric vectors hold the float64
//     coercion compareValues applies (see kb.ColVec); string and bool
//     kernels reproduce compareValues' orderings; LIKE calls the same
//     likeIter after the same lowercasing.
//   - Merge order is fixed. Partition boundaries depend only on the row
//     count (par.DoChunks), every partition emits ascending positions,
//     and partitions concatenate in partition order — so the final
//     position list is the ascending order a serial scan produces, at
//     any GOMAXPROCS.
//
// Projection never reads the vectors: surviving positions index back
// into Table.Rows, so result cells carry exactly the boxed values the
// row paths produce.

import (
	"strings"
	"sync"

	"ontoconv/internal/kb"
	"ontoconv/internal/par"
)

const (
	// colBatch is the selection-vector batch size. 1024 positions keep
	// the batch's int32 selection and the touched column region inside
	// L1/L2 while amortizing per-batch setup to noise; larger batches
	// stop helping once the working set spills, smaller ones pay the
	// refinement-loop overhead more often.
	colBatch = 1024
	// colPartitionRows is the fixed partition size of parallel scans.
	// A table splits into ceil(n/colPartitionRows) tasks regardless of
	// GOMAXPROCS, so the partition layout — and with it the merged
	// output — is identical at any worker width.
	colPartitionRows = 16384
	// hashBuildParallelMin is the scanned-row count above which a
	// per-execution hash-join build fans out over partitions.
	hashBuildParallelMin = 65536
)

// colOp is a compiled comparison operator.
type colOp uint8

const (
	colEQ colOp = iota
	colNE
	colLT
	colLE
	colGT
	colGE
)

func colOpOf(op string) (colOp, bool) {
	switch op {
	case "=":
		return colEQ, true
	case "!=":
		return colNE, true
	case "<":
		return colLT, true
	case "<=":
		return colLE, true
	case ">":
		return colGT, true
	case ">=":
		return colGE, true
	}
	return 0, false
}

// flip mirrors the operator for a swapped operand order: lit OP col is
// col flip(OP) lit.
func (o colOp) flip() colOp {
	switch o {
	case colLT:
		return colGT
	case colLE:
		return colGE
	case colGT:
		return colLT
	case colGE:
		return colLE
	}
	return o
}

// match applies the operator to a three-way comparison result, exactly
// as the row path applies it to compareValues.
func (o colOp) match(c int) bool {
	switch o {
	case colEQ:
		return c == 0
	case colNE:
		return c != 0
	case colLT:
		return c < 0
	case colLE:
		return c <= 0
	case colGT:
		return c > 0
	default:
		return c >= 0
	}
}

// colScratch holds the per-execution selection buffers of one batch
// walk. Every program node owns a distinct buffer slot (assigned at
// compile time), so nested AND/OR refinements never clobber each other.
// Scratch is pooled; a batch result never outgrows colBatch, so buffers
// are allocated once and reused across batches and executions.
type colScratch struct {
	sel  []int32
	bufs [][]int32
}

var colScratchPool = sync.Pool{New: func() interface{} { return new(colScratch) }}

func (sc *colScratch) buf(slot int) []int32 {
	for len(sc.bufs) <= slot {
		sc.bufs = append(sc.bufs, nil)
	}
	if cap(sc.bufs[slot]) < colBatch {
		sc.bufs[slot] = make([]int32, 0, colBatch)
	}
	return sc.bufs[slot][:0]
}

// colPred refines an ascending selection vector over a frozen column
// set: it returns the subset of sel whose rows satisfy the predicate,
// still ascending. Kernels never error — see the file comment.
type colPred interface {
	filter(cs *kb.ColumnSet, sel []int32, params []kb.Value, sc *colScratch) []int32
}

// colProg is the compiled vectorized form of one scan's pushed-down
// filter conjuncts.
type colProg struct {
	preds []colPred
	slots int // scratch buffers needed (one per node)
	refs  []int
}

func (pr *colProg) newSlot() int {
	pr.slots++
	return pr.slots - 1
}

// runnable reports whether the kernels may run for this parameter
// vector: every parameter the program reads must be a string. bindArgs
// always produces strings, so this never fails today; the guard keeps
// the row path as the semantics holder if that ever changes.
func (pr *colProg) runnable(params []kb.Value) bool {
	for _, s := range pr.refs {
		if _, ok := params[s].(string); !ok {
			return false
		}
	}
	return true
}

// scanRange runs the program over rows [lo, hi) in colBatch batches and
// appends surviving positions to dst, ascending.
func (pr *colProg) scanRange(cs *kb.ColumnSet, lo, hi int, params []kb.Value, dst []int32) []int32 {
	sc := colScratchPool.Get().(*colScratch)
	if cap(sc.sel) < colBatch {
		sc.sel = make([]int32, colBatch)
	}
	for base := lo; base < hi; base += colBatch {
		end := base + colBatch
		if end > hi {
			end = hi
		}
		sel := sc.sel[:end-base]
		for k := range sel {
			sel[k] = int32(base + k)
		}
		cur := sel
		for _, p := range pr.preds {
			if len(cur) == 0 {
				break
			}
			cur = p.filter(cs, cur, params, sc)
		}
		dst = append(dst, cur...)
	}
	colScratchPool.Put(sc)
	return dst
}

// runColumnar executes the scan's vectorized program over the frozen
// column set and returns the surviving row positions in ascending order —
// exactly the rows, and the order, the row-at-a-time path produces. The
// caller iterates positions like a posting list, so no intermediate row
// slice is materialized. Large tables fan out over fixed partitions;
// per-partition results land in their own slot and concatenate in
// partition order (the par ordered-merge shape), so output is identical
// at any width.
func runColumnar(cs *kb.ColumnSet, prog *colProg, params []kb.Value, parallel bool) []int {
	n := cs.Len()
	if !parallel || n <= colPartitionRows {
		sel := prog.scanRange(cs, 0, n, params, nil)
		pos := make([]int, len(sel))
		for k, i := range sel {
			pos[k] = int(i)
		}
		return pos
	}
	tasks := (n + colPartitionRows - 1) / colPartitionRows
	parts := make([][]int32, tasks)
	par.DoChunks(n, colPartitionRows, func(task, start, end int) {
		parts[task] = prog.scanRange(cs, start, end, params, nil)
	})
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	pos := make([]int, 0, total)
	for _, part := range parts {
		for _, i := range part {
			pos = append(pos, int(i))
		}
	}
	return pos
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

// colStrCmp compares a text column against a string literal/parameter.
type colStrCmp struct {
	col  int
	op   colOp
	val  valueRef
	slot int
}

func (c *colStrCmp) filter(cs *kb.ColumnSet, sel []int32, params []kb.Value, sc *colScratch) []int32 {
	v := cs.Col(c.col)
	s := c.val.value(params).(string)
	out := sc.buf(c.slot)
	strs := v.Strs
	if c.op == colEQ && (!v.HasNulls() || s != "") {
		// NULL cells store ""; when s is non-empty they can never
		// match, so the equality loop needs no bitmap probes.
		for _, i := range sel {
			if strs[i] == s {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range sel {
		if v.Null(int(i)) {
			continue
		}
		if c.op.match(strings.Compare(strs[i], s)) {
			out = append(out, i)
		}
	}
	return out
}

// colNumCmp compares a numeric column against a numeric literal. The
// per-op loops spell out compareValues' three-way rule (<, then >, else
// equal) so exotic values order identically to the row path.
type colNumCmp struct {
	col  int
	op   colOp
	lit  float64
	slot int
}

func (c *colNumCmp) filter(cs *kb.ColumnSet, sel []int32, params []kb.Value, sc *colScratch) []int32 {
	v := cs.Col(c.col)
	out := sc.buf(c.slot)
	nums := v.Nums
	lit := c.lit
	if !v.HasNulls() {
		switch c.op {
		case colEQ:
			for _, i := range sel {
				if !(nums[i] < lit) && !(nums[i] > lit) {
					out = append(out, i)
				}
			}
		case colNE:
			for _, i := range sel {
				if nums[i] < lit || nums[i] > lit {
					out = append(out, i)
				}
			}
		case colLT:
			for _, i := range sel {
				if nums[i] < lit {
					out = append(out, i)
				}
			}
		case colLE:
			for _, i := range sel {
				if !(nums[i] > lit) {
					out = append(out, i)
				}
			}
		case colGT:
			for _, i := range sel {
				if nums[i] > lit {
					out = append(out, i)
				}
			}
		default: // colGE
			for _, i := range sel {
				if !(nums[i] < lit) {
					out = append(out, i)
				}
			}
		}
		return out
	}
	for _, i := range sel {
		if v.Null(int(i)) {
			continue
		}
		cmp := 0
		switch {
		case nums[i] < lit:
			cmp = -1
		case nums[i] > lit:
			cmp = 1
		}
		if c.op.match(cmp) {
			out = append(out, i)
		}
	}
	return out
}

// colBoolCmp compares a bool column against a bool literal under
// compareValues' false < true ordering.
type colBoolCmp struct {
	col  int
	op   colOp
	lit  bool
	slot int
}

func (c *colBoolCmp) filter(cs *kb.ColumnSet, sel []int32, params []kb.Value, sc *colScratch) []int32 {
	v := cs.Col(c.col)
	out := sc.buf(c.slot)
	lit := 0
	if c.lit {
		lit = 1
	}
	for _, i := range sel {
		if v.Null(int(i)) {
			continue
		}
		av := 0
		if v.Bools[i] {
			av = 1
		}
		if c.op.match(av - lit) {
			out = append(out, i)
		}
	}
	return out
}

// colLike matches a text column against a LIKE pattern. The pattern is
// lowered once per batch walk; values lower per row, exactly as
// likeMatch does, so matches are identical.
type colLike struct {
	col  int
	val  valueRef
	slot int
}

func (c *colLike) filter(cs *kb.ColumnSet, sel []int32, params []kb.Value, sc *colScratch) []int32 {
	v := cs.Col(c.col)
	pat := strings.ToLower(c.val.value(params).(string))
	out := sc.buf(c.slot)
	for _, i := range sel {
		if v.Null(int(i)) {
			continue
		}
		if likeIter(strings.ToLower(v.Strs[i]), pat) {
			out = append(out, i)
		}
	}
	return out
}

// colInStr keeps rows whose text value equals any of the (string)
// items. Item order cannot matter — string equality never errors — so
// the short-circuiting row loop and this one agree.
type colInStr struct {
	col   int
	items []valueRef
	slot  int
}

func (c *colInStr) filter(cs *kb.ColumnSet, sel []int32, params []kb.Value, sc *colScratch) []int32 {
	v := cs.Col(c.col)
	out := sc.buf(c.slot)
	var local [8]string
	items := local[:0]
	for _, it := range c.items {
		items = append(items, it.value(params).(string))
	}
	for _, i := range sel {
		if v.Null(int(i)) {
			continue
		}
		s := v.Strs[i]
		for _, item := range items {
			if s == item {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// colInNum keeps rows whose numeric value equals any of the items under
// the three-way rule.
type colInNum struct {
	col   int
	items []float64
	slot  int
}

func (c *colInNum) filter(cs *kb.ColumnSet, sel []int32, params []kb.Value, sc *colScratch) []int32 {
	v := cs.Col(c.col)
	out := sc.buf(c.slot)
	for _, i := range sel {
		if v.Null(int(i)) {
			continue
		}
		a := v.Nums[i]
		for _, item := range c.items {
			if !(a < item) && !(a > item) {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// colIsNull keeps NULL (or, negated, non-NULL) rows via the bitmap.
type colIsNull struct {
	col  int
	not  bool
	slot int
}

func (c *colIsNull) filter(cs *kb.ColumnSet, sel []int32, params []kb.Value, sc *colScratch) []int32 {
	v := cs.Col(c.col)
	out := sc.buf(c.slot)
	for _, i := range sel {
		if v.Null(int(i)) != c.not {
			out = append(out, i)
		}
	}
	return out
}

// colNone matches nothing (a comparison whose operand is the NULL
// literal, or an IN list with only NULL items: always false).
type colNone struct{}

func (colNone) filter(*kb.ColumnSet, []int32, []kb.Value, *colScratch) []int32 { return nil }

// colAnd refines left then right: plain selection intersection, same
// result as the short-circuiting row AND because neither side errors.
type colAnd struct {
	l, r colPred
}

func (c *colAnd) filter(cs *kb.ColumnSet, sel []int32, params []kb.Value, sc *colScratch) []int32 {
	return c.r.filter(cs, c.l.filter(cs, sel, params, sc), params, sc)
}

// colOr evaluates both sides over the incoming selection and merges the
// two ascending subsets, ascending and deduplicated — the vectorized
// equivalent of the row OR (which short-circuits, but with total kernels
// the result set is the union either way).
type colOr struct {
	l, r colPred
	slot int
}

func (c *colOr) filter(cs *kb.ColumnSet, sel []int32, params []kb.Value, sc *colScratch) []int32 {
	a := c.l.filter(cs, sel, params, sc)
	b := c.r.filter(cs, sel, params, sc)
	out := sc.buf(c.slot)
	ai, bi := 0, 0
	for ai < len(a) && bi < len(b) {
		switch {
		case a[ai] < b[bi]:
			out = append(out, a[ai])
			ai++
		case a[ai] > b[bi]:
			out = append(out, b[bi])
			bi++
		default:
			out = append(out, a[ai])
			ai++
			bi++
		}
	}
	out = append(out, a[ai:]...)
	out = append(out, b[bi:]...)
	return out
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

// compileColProg compiles the scan's pushdown conjuncts into a
// vectorized program. It returns nil when any conjunct is not statically
// vectorizable — wrong operand shapes, a comparison that could error at
// runtime — in which case the whole scan stays on the row path, keeping
// error behavior and predicate evaluation order untouched.
func (p *Plan) compileColProg(b int, exprs []Expr, slots map[string]int) *colProg {
	pr := &colProg{}
	for _, e := range exprs {
		cp := p.compileColPred(e, b, slots, pr)
		if cp == nil {
			return nil
		}
		pr.preds = append(pr.preds, cp)
	}
	return pr
}

func (p *Plan) compileColPred(e Expr, b int, slots map[string]int, pr *colProg) colPred {
	switch x := e.(type) {
	case *Logical:
		l := p.compileColPred(x.Left, b, slots, pr)
		if l == nil {
			return nil
		}
		r := p.compileColPred(x.Right, b, slots, pr)
		if r == nil {
			return nil
		}
		if x.Op == "AND" {
			return &colAnd{l: l, r: r}
		}
		if x.Op == "OR" {
			return &colOr{l: l, r: r, slot: pr.newSlot()}
		}
		return nil
	case *Cmp:
		return p.compileColCmp(x, b, slots, pr)
	case *In:
		return p.compileColIn(x, b, slots, pr)
	case *IsNull:
		cr, ok := x.Left.(*ColRef)
		if !ok {
			return nil
		}
		cb, ci, err := p.resolveCol(cr, len(p.bindings))
		if err != nil || cb != b {
			return nil
		}
		return &colIsNull{col: ci, not: x.Not, slot: pr.newSlot()}
	}
	return nil
}

// colOperand resolves a comparison operand that must be a literal or a
// parameter. Parameters register in the program's string guard.
func (pr *colProg) colOperand(e Expr, slots map[string]int) (valueRef, bool) {
	switch v := e.(type) {
	case *Lit:
		return valueRef{lit: v.Value, param: -1}, true
	case *Param:
		slot, ok := slots[v.Name]
		if !ok {
			return valueRef{}, false
		}
		pr.refs = append(pr.refs, slot)
		return valueRef{param: slot}, true
	}
	return valueRef{}, false
}

func (p *Plan) compileColCmp(x *Cmp, b int, slots map[string]int, pr *colProg) colPred {
	col, val := x.Left, x.Right
	flipped := false
	if _, ok := col.(*ColRef); !ok {
		col, val, flipped = x.Right, x.Left, true
	}
	cr, ok := col.(*ColRef)
	if !ok {
		return nil
	}
	cb, ci, err := p.resolveCol(cr, len(p.bindings))
	if err != nil || cb != b {
		return nil
	}
	ctype := p.bindings[b].table.Schema.Columns[ci].Type

	if x.Op == "LIKE" {
		// Only `col LIKE pattern` vectorizes: a column used as the
		// pattern, or a non-string operand, stays on the row path.
		if flipped || ctype != kb.TextCol {
			return nil
		}
		ref, ok := pr.colOperand(val, slots)
		if !ok {
			return nil
		}
		if ref.param < 0 {
			if _, isStr := ref.lit.(string); !isStr {
				return nil
			}
		}
		return &colLike{col: ci, val: ref, slot: pr.newSlot()}
	}

	op, ok := colOpOf(x.Op)
	if !ok {
		return nil
	}
	if flipped {
		op = op.flip()
	}
	ref, ok := pr.colOperand(val, slots)
	if !ok {
		return nil
	}
	switch ctype {
	case kb.TextCol:
		if ref.param < 0 {
			if ref.lit == nil {
				return colNone{} // `col OP NULL` is always false
			}
			if _, isStr := ref.lit.(string); !isStr {
				return nil // would error in compareValues
			}
		}
		return &colStrCmp{col: ci, op: op, val: ref, slot: pr.newSlot()}
	case kb.IntCol, kb.FloatCol:
		if ref.param >= 0 {
			return nil // string param vs numeric column errors at runtime
		}
		if ref.lit == nil {
			return colNone{}
		}
		f, isNum := asFloat(ref.lit)
		if !isNum {
			return nil
		}
		return &colNumCmp{col: ci, op: op, lit: f, slot: pr.newSlot()}
	case kb.BoolCol:
		if ref.param >= 0 {
			return nil
		}
		if ref.lit == nil {
			return colNone{}
		}
		bv, isBool := ref.lit.(bool)
		if !isBool {
			return nil
		}
		return &colBoolCmp{col: ci, op: op, lit: bv, slot: pr.newSlot()}
	}
	return nil
}

func (p *Plan) compileColIn(x *In, b int, slots map[string]int, pr *colProg) colPred {
	cr, ok := x.Left.(*ColRef)
	if !ok {
		return nil
	}
	cb, ci, err := p.resolveCol(cr, len(p.bindings))
	if err != nil || cb != b {
		return nil
	}
	switch p.bindings[b].table.Schema.Columns[ci].Type {
	case kb.TextCol:
		var items []valueRef
		for _, it := range x.Items {
			if lit, isLit := it.(*Lit); isLit && lit.Value == nil {
				continue // NULL items never match; the row path skips them too
			}
			ref, ok := pr.colOperand(it, slots)
			if !ok {
				return nil
			}
			if ref.param < 0 {
				if _, isStr := ref.lit.(string); !isStr {
					return nil
				}
			}
			items = append(items, ref)
		}
		if len(items) == 0 {
			return colNone{}
		}
		return &colInStr{col: ci, items: items, slot: pr.newSlot()}
	case kb.IntCol, kb.FloatCol:
		var items []float64
		for _, it := range x.Items {
			lit, isLit := it.(*Lit)
			if !isLit {
				return nil
			}
			if lit.Value == nil {
				continue
			}
			f, isNum := asFloat(lit.Value)
			if !isNum {
				return nil
			}
			items = append(items, f)
		}
		if len(items) == 0 {
			return colNone{}
		}
		return &colInNum{col: ci, items: items, slot: pr.newSlot()}
	}
	return nil // bool IN stays on the row path
}
