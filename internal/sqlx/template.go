package sqlx

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"ontoconv/internal/kb"
)

// Template is a parameterized structured query (paper §4.4, Figure 9):
// a SQL statement whose filter literals have been replaced by <@Entity>
// parameter markers. Templates are generated offline per intent and
// instantiated online with the entities recognized in a user utterance.
//
// Templates are always handled by pointer: the cached AST below is an
// atomic and must not be copied by value.
type Template struct {
	// SQL is the template text, containing <@Name> markers.
	SQL string `json:"sql"`
	// Params lists the distinct marker names in first-appearance order.
	Params []string `json:"params"`

	// prep caches the parsed AST so Instantiate does not re-parse per
	// turn. The pointed-to statement is shared and read-only; Instantiate
	// binds into a copy. Populated eagerly by NewTemplate/Parameterize and
	// lazily (benign-race CAS) for templates decoded from JSON bundles.
	prep atomic.Pointer[templateAST]
}

type templateAST struct {
	stmt *SelectStmt
	err  error
}

// ast returns the template's parsed statement, parsing at most once per
// populated cache. The returned statement is shared: callers must not
// mutate it.
func (t *Template) ast() (*SelectStmt, error) {
	if p := t.prep.Load(); p != nil {
		return p.stmt, p.err
	}
	stmt, err := Parse(t.SQL)
	p := &templateAST{stmt: stmt, err: err}
	t.prep.CompareAndSwap(nil, p)
	return p.stmt, p.err
}

// NewTemplate parses the template text (validating syntax) and records its
// parameters.
func NewTemplate(sql string) (*Template, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("sqlx: template: %w", err)
	}
	t := &Template{SQL: stmt.String(), Params: stmt.Params()}
	t.prep.Store(&templateAST{stmt: stmt})
	return t, nil
}

// MustTemplate is NewTemplate that panics on error.
func MustTemplate(sql string) *Template {
	t, err := NewTemplate(sql)
	if err != nil {
		panic(err)
	}
	return t
}

// Instantiate binds every parameter to a string value and returns the
// executable statement. Unbound or unknown parameters are errors. The
// template's AST is parsed once and reused; the returned statement is a
// copy with fresh filter trees, so callers may mutate it freely.
func (t *Template) Instantiate(args map[string]string) (*SelectStmt, error) {
	src, err := t.ast()
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool, len(t.Params))
	for _, p := range t.Params {
		known[p] = true
	}
	var unknown []string
	for name := range args {
		if !known[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("sqlx: template has no parameter %q", unknown[0])
	}
	var missing []string
	var bind func(e Expr) Expr
	bind = func(e Expr) Expr {
		switch x := e.(type) {
		case *Param:
			v, ok := args[x.Name]
			if !ok {
				missing = append(missing, x.Name)
				return x
			}
			return &Lit{Value: v}
		case *Cmp:
			return &Cmp{Op: x.Op, Left: bind(x.Left), Right: bind(x.Right)}
		case *Logical:
			return &Logical{Op: x.Op, Left: bind(x.Left), Right: bind(x.Right)}
		case *In:
			items := make([]Expr, len(x.Items))
			for i, it := range x.Items {
				items[i] = bind(it)
			}
			return &In{Left: bind(x.Left), Items: items}
		case *IsNull:
			return &IsNull{Left: bind(x.Left), Not: x.Not}
		}
		return e
	}
	cp := *src
	cp.Joins = append([]Join(nil), src.Joins...)
	if cp.Where != nil {
		cp.Where = bind(cp.Where)
	}
	for i := range cp.Joins {
		cp.Joins[i].On = bind(cp.Joins[i].On)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("sqlx: template parameters not bound: %s", strings.Join(missing, ", "))
	}
	return &cp, nil
}

// Prepare compiles the template into an executable query plan over the
// knowledge base: parameters stay as slots, so one plan serves every
// instantiation (see Plan).
func (t *Template) Prepare(base *kb.KB) (*Plan, error) {
	stmt, err := t.ast()
	if err != nil {
		return nil, err
	}
	return Prepare(base, stmt)
}

// Parameterize converts a concrete statement into a template by replacing
// the string literals given in byValue with parameter markers. byValue maps
// literal text -> parameter name. It is how the bootstrapper turns the NLQ
// service's SQL for one example utterance into a reusable template
// (paper §4.4: "We parameterize this SQL query to generate a structured
// query template").
func Parameterize(stmt *SelectStmt, byValue map[string]string) *Template {
	var sub func(e Expr) Expr
	sub = func(e Expr) Expr {
		switch x := e.(type) {
		case *Lit:
			if s, ok := x.Value.(string); ok {
				if name, hit := byValue[s]; hit {
					return &Param{Name: name}
				}
			}
			return x
		case *Cmp:
			return &Cmp{Op: x.Op, Left: sub(x.Left), Right: sub(x.Right)}
		case *Logical:
			return &Logical{Op: x.Op, Left: sub(x.Left), Right: sub(x.Right)}
		case *In:
			items := make([]Expr, len(x.Items))
			for i, it := range x.Items {
				items[i] = sub(it)
			}
			return &In{Left: sub(x.Left), Items: items}
		case *IsNull:
			return &IsNull{Left: sub(x.Left), Not: x.Not}
		}
		return e
	}
	cp := *stmt
	if cp.Where != nil {
		cp.Where = sub(cp.Where)
	}
	cp.Joins = append([]Join(nil), stmt.Joins...)
	for i := range cp.Joins {
		cp.Joins[i].On = sub(cp.Joins[i].On)
	}
	return &Template{SQL: cp.String(), Params: cp.Params()}
}
