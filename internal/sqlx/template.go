package sqlx

import (
	"fmt"
	"sort"
	"strings"
)

// Template is a parameterized structured query (paper §4.4, Figure 9):
// a SQL statement whose filter literals have been replaced by <@Entity>
// parameter markers. Templates are generated offline per intent and
// instantiated online with the entities recognized in a user utterance.
type Template struct {
	// SQL is the template text, containing <@Name> markers.
	SQL string `json:"sql"`
	// Params lists the distinct marker names in first-appearance order.
	Params []string `json:"params"`
}

// NewTemplate parses the template text (validating syntax) and records its
// parameters.
func NewTemplate(sql string) (*Template, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("sqlx: template: %w", err)
	}
	return &Template{SQL: stmt.String(), Params: stmt.Params()}, nil
}

// MustTemplate is NewTemplate that panics on error.
func MustTemplate(sql string) *Template {
	t, err := NewTemplate(sql)
	if err != nil {
		panic(err)
	}
	return t
}

// Instantiate binds every parameter to a string value and returns the
// executable statement. Unbound or unknown parameters are errors.
func (t *Template) Instantiate(args map[string]string) (*SelectStmt, error) {
	stmt, err := Parse(t.SQL)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool, len(t.Params))
	for _, p := range t.Params {
		known[p] = true
	}
	var unknown []string
	for name := range args {
		if !known[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("sqlx: template has no parameter %q", unknown[0])
	}
	var missing []string
	var bind func(e Expr) Expr
	bind = func(e Expr) Expr {
		switch x := e.(type) {
		case *Param:
			v, ok := args[x.Name]
			if !ok {
				missing = append(missing, x.Name)
				return x
			}
			return &Lit{Value: v}
		case *Cmp:
			return &Cmp{Op: x.Op, Left: bind(x.Left), Right: bind(x.Right)}
		case *Logical:
			return &Logical{Op: x.Op, Left: bind(x.Left), Right: bind(x.Right)}
		case *In:
			items := make([]Expr, len(x.Items))
			for i, it := range x.Items {
				items[i] = bind(it)
			}
			return &In{Left: bind(x.Left), Items: items}
		case *IsNull:
			return &IsNull{Left: bind(x.Left), Not: x.Not}
		}
		return e
	}
	if stmt.Where != nil {
		stmt.Where = bind(stmt.Where)
	}
	for i := range stmt.Joins {
		stmt.Joins[i].On = bind(stmt.Joins[i].On)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("sqlx: template parameters not bound: %s", strings.Join(missing, ", "))
	}
	return stmt, nil
}

// Parameterize converts a concrete statement into a template by replacing
// the string literals given in byValue with parameter markers. byValue maps
// literal text -> parameter name. It is how the bootstrapper turns the NLQ
// service's SQL for one example utterance into a reusable template
// (paper §4.4: "We parameterize this SQL query to generate a structured
// query template").
func Parameterize(stmt *SelectStmt, byValue map[string]string) *Template {
	var sub func(e Expr) Expr
	sub = func(e Expr) Expr {
		switch x := e.(type) {
		case *Lit:
			if s, ok := x.Value.(string); ok {
				if name, hit := byValue[s]; hit {
					return &Param{Name: name}
				}
			}
			return x
		case *Cmp:
			return &Cmp{Op: x.Op, Left: sub(x.Left), Right: sub(x.Right)}
		case *Logical:
			return &Logical{Op: x.Op, Left: sub(x.Left), Right: sub(x.Right)}
		case *In:
			items := make([]Expr, len(x.Items))
			for i, it := range x.Items {
				items[i] = sub(it)
			}
			return &In{Left: sub(x.Left), Items: items}
		case *IsNull:
			return &IsNull{Left: sub(x.Left), Not: x.Not}
		}
		return e
	}
	cp := *stmt
	if cp.Where != nil {
		cp.Where = sub(cp.Where)
	}
	cp.Joins = append([]Join(nil), stmt.Joins...)
	for i := range cp.Joins {
		cp.Joins[i].On = sub(cp.Joins[i].On)
	}
	return &Template{SQL: cp.String(), Params: cp.Params()}
}
