package sqlx

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ontoconv/internal/kb"
)

// TestWhereAgainstReference cross-checks the executor's WHERE handling
// against a naive reference evaluation over randomly generated predicates
// and data.
func TestWhereAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	k := kb.New()
	tab, err := k.CreateTable(kb.Schema{
		Name: "t",
		Columns: []kb.Column{
			{Name: "id", Type: kb.TextCol, NotNull: true},
			{Name: "cat", Type: kb.TextCol},
			{Name: "num", Type: kb.IntCol},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"a", "b", "c", ""} // "" means NULL
	type rowData struct {
		id  string
		cat string // "" = NULL
		num int64
	}
	var data []rowData
	for i := 0; i < 200; i++ {
		r := rowData{id: fmt.Sprintf("R%03d", i), cat: cats[rng.Intn(len(cats))], num: int64(rng.Intn(50))}
		data = append(data, r)
		var catV kb.Value
		if r.cat != "" {
			catV = r.cat
		}
		tab.MustInsert(kb.Row{r.id, catV, r.num})
	}

	type pred struct {
		sql string
		ok  func(rowData) bool
	}
	mkPreds := func() []pred {
		catLit := cats[rng.Intn(3)]
		n := int64(rng.Intn(50))
		return []pred{
			{fmt.Sprintf("cat = '%s'", catLit), func(r rowData) bool { return r.cat == catLit }},
			{fmt.Sprintf("cat != '%s'", catLit), func(r rowData) bool { return r.cat != "" && r.cat != catLit }},
			{fmt.Sprintf("num > %d", n), func(r rowData) bool { return r.num > n }},
			{fmt.Sprintf("num <= %d", n), func(r rowData) bool { return r.num <= n }},
			{"cat IS NULL", func(r rowData) bool { return r.cat == "" }},
			{"cat IS NOT NULL", func(r rowData) bool { return r.cat != "" }},
			{fmt.Sprintf("cat IN ('a', '%s')", catLit), func(r rowData) bool { return r.cat == "a" || r.cat == catLit }},
		}
	}

	for trial := 0; trial < 60; trial++ {
		preds := mkPreds()
		p1 := preds[rng.Intn(len(preds))]
		p2 := preds[rng.Intn(len(preds))]
		var sql string
		var want func(rowData) bool
		switch rng.Intn(3) {
		case 0:
			sql = p1.sql
			want = p1.ok
		case 1:
			sql = fmt.Sprintf("(%s AND %s)", p1.sql, p2.sql)
			want = func(r rowData) bool { return p1.ok(r) && p2.ok(r) }
		default:
			sql = fmt.Sprintf("(%s OR %s)", p1.sql, p2.sql)
			want = func(r rowData) bool { return p1.ok(r) || p2.ok(r) }
		}
		res, err := Exec(k, "SELECT id FROM t WHERE "+sql)
		if err != nil {
			t.Fatalf("trial %d: %q: %v", trial, sql, err)
		}
		got := map[string]bool{}
		for _, id := range res.Column("id") {
			got[id] = true
		}
		for _, r := range data {
			if want(r) != got[r.id] {
				t.Fatalf("trial %d: %q disagrees on row %+v (reference=%v engine=%v)",
					trial, sql, r, want(r), got[r.id])
			}
		}
	}
}

// TestLikeIterMatchesRecursive cross-checks the iterative LIKE matcher
// against the original recursive implementation (kept as the oracle) on
// random strings and patterns.
func TestLikeIterMatchesRecursive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	alphabet := []byte("ab%_")
	randStr := func(chars []byte, n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = chars[rng.Intn(len(chars))]
		}
		return string(b)
	}
	for trial := 0; trial < 5000; trial++ {
		s := randStr([]byte("ab"), rng.Intn(9))
		p := randStr(alphabet, rng.Intn(9))
		if got, want := likeIter(s, p), likeRec(s, p); got != want {
			t.Fatalf("likeIter(%q, %q) = %v, recursive oracle = %v", s, p, got, want)
		}
	}
	// Adversarial pattern that is exponential for the recursive matcher at
	// larger sizes: the iterative matcher must agree (and stay fast).
	s := strings.Repeat("a", 60)
	for _, p := range []string{"%a%a%a%a%b", "%a%a%a%a%a", "a%a%a%b", "%_%_%_%"} {
		if got, want := likeIter(s, p), likeRec(s, p); got != want {
			t.Fatalf("likeIter(%q, %q) = %v, want %v", s, p, got, want)
		}
	}
}

// TestLimitNeverExceeds checks LIMIT over random values.
func TestLimitNeverExceeds(t *testing.T) {
	k := fixtureKB(t)
	for n := 0; n < 8; n++ {
		res := mustExec(t, k, fmt.Sprintf("SELECT name FROM drug LIMIT %d", n))
		if len(res.Rows) > n {
			t.Fatalf("LIMIT %d returned %d rows", n, len(res.Rows))
		}
	}
}
