package sqlx

import (
	"fmt"
	"sort"
	"strings"

	"ontoconv/internal/kb"
)

// Result is a query result set.
type Result struct {
	Columns []string
	Rows    [][]kb.Value
}

// Strings renders every row as a slice of display strings (NULL -> "").
func (r *Result) Strings() [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		s := make([]string, len(row))
		for j, v := range row {
			if v == nil {
				s[j] = ""
			} else {
				s[j] = fmt.Sprint(v)
			}
		}
		out[i] = s
	}
	return out
}

// Column returns the values of the named result column as strings.
func (r *Result) Column(name string) []string {
	idx := -1
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		if row[idx] == nil {
			out = append(out, "")
		} else {
			out = append(out, fmt.Sprint(row[idx]))
		}
	}
	return out
}

// Exec parses and executes src against the knowledge base.
func Exec(base *kb.KB, src string) (*Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Execute(base, stmt)
}

// Execute runs a parsed statement. Statements containing parameter markers
// must be instantiated first (see Template).
func Execute(base *kb.KB, stmt *SelectStmt) (*Result, error) {
	if ps := stmt.Params(); len(ps) > 0 {
		return nil, fmt.Errorf("sqlx: statement has unbound parameters: %s", strings.Join(ps, ", "))
	}
	ex := &executor{base: base, stmt: stmt, bindings: make(map[string]*kb.Table)}
	if err := ex.bind(); err != nil {
		return nil, err
	}
	tuples, err := ex.joinAll()
	if err != nil {
		return nil, err
	}
	if stmt.Where != nil {
		var kept []env
		for _, t := range tuples {
			ok, err := ex.evalBool(t, stmt.Where)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, t)
			}
		}
		tuples = kept
	}
	return ex.project(tuples)
}

// env maps a table binding name (lowercased) to the current row.
type env map[string]kb.Row

type executor struct {
	base     *kb.KB
	stmt     *SelectStmt
	bindings map[string]*kb.Table // lowercased binding -> table
	order    []string             // binding order
}

func (ex *executor) bind() error {
	add := func(tr TableRef) error {
		t := ex.base.Table(tr.Table)
		if t == nil {
			return fmt.Errorf("sqlx: unknown table %q", tr.Table)
		}
		b := strings.ToLower(tr.Binding())
		if _, dup := ex.bindings[b]; dup {
			return fmt.Errorf("sqlx: duplicate table binding %q", tr.Binding())
		}
		ex.bindings[b] = t
		ex.order = append(ex.order, b)
		return nil
	}
	if err := add(ex.stmt.From); err != nil {
		return err
	}
	for _, j := range ex.stmt.Joins {
		if err := add(j.Table); err != nil {
			return err
		}
	}
	return nil
}

// resolve finds the binding and column index for a column reference given
// the set of bindings visible so far.
func (ex *executor) resolve(c *ColRef, visible []string) (string, int, error) {
	if c.Table != "" {
		b := strings.ToLower(c.Table)
		t, ok := ex.bindings[b]
		if !ok {
			return "", 0, fmt.Errorf("sqlx: unknown table binding %q", c.Table)
		}
		ci := t.Schema.ColumnIndex(c.Column)
		if ci < 0 {
			return "", 0, fmt.Errorf("sqlx: table %q has no column %q", c.Table, c.Column)
		}
		return b, ci, nil
	}
	found := ""
	fi := -1
	for _, b := range visible {
		if ci := ex.bindings[b].Schema.ColumnIndex(c.Column); ci >= 0 {
			if found != "" {
				return "", 0, fmt.Errorf("sqlx: ambiguous column %q", c.Column)
			}
			found, fi = b, ci
		}
	}
	if found == "" {
		return "", 0, fmt.Errorf("sqlx: unknown column %q", c.Column)
	}
	return found, fi, nil
}

// joinAll materializes the joined tuples, using hash joins for equality ON
// conditions between one already-joined binding and the new binding.
func (ex *executor) joinAll() ([]env, error) {
	fromB := ex.order[0]
	fromT := ex.bindings[fromB]
	tuples := make([]env, 0, fromT.Len())
	for _, row := range fromT.Rows {
		tuples = append(tuples, env{fromB: row})
	}
	visible := []string{fromB}
	for i, j := range ex.stmt.Joins {
		newB := ex.order[i+1]
		newT := ex.bindings[newB]
		joined, err := ex.joinOne(tuples, visible, newB, newT, j.On)
		if err != nil {
			return nil, err
		}
		tuples = joined
		visible = append(visible, newB)
	}
	return tuples, nil
}

func (ex *executor) joinOne(tuples []env, visible []string, newB string, newT *kb.Table, on Expr) ([]env, error) {
	// Try hash join: ON must be a single equality between a visible
	// column and a new-binding column.
	if cmp, ok := on.(*Cmp); ok && cmp.Op == "=" {
		lc, lok := cmp.Left.(*ColRef)
		rc, rok := cmp.Right.(*ColRef)
		if lok && rok {
			lb, li, lerr := ex.resolve(lc, append(visible, newB))
			rb, ri, rerr := ex.resolve(rc, append(visible, newB))
			if lerr == nil && rerr == nil {
				var oldB string
				var oldI, newI int
				switch {
				case lb == newB && rb != newB:
					oldB, oldI, newI = rb, ri, li
				case rb == newB && lb != newB:
					oldB, oldI, newI = lb, li, ri
				default:
					oldB = ""
				}
				if oldB != "" {
					return hashJoin(tuples, oldB, oldI, newB, newT, newI), nil
				}
			}
		}
	}
	// Fall back to nested loop with full predicate evaluation.
	var out []env
	for _, t := range tuples {
		for _, row := range newT.Rows {
			cand := cloneEnv(t)
			cand[newB] = row
			ok, err := ex.evalBool(cand, on)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, cand)
			}
		}
	}
	return out, nil
}

func hashJoin(tuples []env, oldB string, oldI int, newB string, newT *kb.Table, newI int) []env {
	index := make(map[kb.Value][]kb.Row)
	for _, row := range newT.Rows {
		v := row[newI]
		if v == nil {
			continue // NULL never joins
		}
		index[v] = append(index[v], row)
	}
	var out []env
	for _, t := range tuples {
		v := t[oldB][oldI]
		if v == nil {
			continue
		}
		for _, row := range index[v] {
			cand := cloneEnv(t)
			cand[newB] = row
			out = append(out, cand)
		}
	}
	return out
}

func cloneEnv(e env) env {
	out := make(env, len(e)+1)
	for k, v := range e {
		out[k] = v
	}
	return out
}

func (ex *executor) eval(t env, e Expr) (kb.Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Value, nil
	case *ColRef:
		b, ci, err := ex.resolve(x, ex.order)
		if err != nil {
			return nil, err
		}
		row, ok := t[b]
		if !ok {
			return nil, fmt.Errorf("sqlx: binding %q not in scope", b)
		}
		return row[ci], nil
	case *Param:
		return nil, fmt.Errorf("sqlx: unbound parameter <@%s>", x.Name)
	}
	return nil, fmt.Errorf("sqlx: cannot evaluate %T as a value", e)
}

func (ex *executor) evalBool(t env, e Expr) (bool, error) {
	switch x := e.(type) {
	case *Logical:
		l, err := ex.evalBool(t, x.Left)
		if err != nil {
			return false, err
		}
		if x.Op == "AND" && !l {
			return false, nil
		}
		if x.Op == "OR" && l {
			return true, nil
		}
		return ex.evalBool(t, x.Right)
	case *Cmp:
		l, err := ex.eval(t, x.Left)
		if err != nil {
			return false, err
		}
		r, err := ex.eval(t, x.Right)
		if err != nil {
			return false, err
		}
		if l == nil || r == nil {
			return false, nil // SQL three-valued logic collapsed to false
		}
		if x.Op == "LIKE" {
			ls, lok := l.(string)
			rs, rok := r.(string)
			if !lok || !rok {
				return false, fmt.Errorf("sqlx: LIKE requires strings")
			}
			return likeMatch(ls, rs), nil
		}
		c, err := compareValues(l, r)
		if err != nil {
			return false, err
		}
		switch x.Op {
		case "=":
			return c == 0, nil
		case "!=":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		}
		return false, fmt.Errorf("sqlx: unknown operator %q", x.Op)
	case *In:
		l, err := ex.eval(t, x.Left)
		if err != nil {
			return false, err
		}
		if l == nil {
			return false, nil
		}
		for _, item := range x.Items {
			r, err := ex.eval(t, item)
			if err != nil {
				return false, err
			}
			if r == nil {
				continue
			}
			c, err := compareValues(l, r)
			if err != nil {
				return false, err
			}
			if c == 0 {
				return true, nil
			}
		}
		return false, nil
	case *IsNull:
		l, err := ex.eval(t, x.Left)
		if err != nil {
			return false, err
		}
		return (l == nil) != x.Not, nil
	}
	return false, fmt.Errorf("sqlx: expression %T is not a predicate", e)
}

// compareValues orders two non-nil values, coercing numerics.
func compareValues(a, b kb.Value) (int, error) {
	if af, aok := asFloat(a); aok {
		if bf, bok := asFloat(b); bok {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			}
			return 0, nil
		}
	}
	switch av := a.(type) {
	case string:
		bv, ok := b.(string)
		if !ok {
			return 0, fmt.Errorf("sqlx: cannot compare string with %T", b)
		}
		return strings.Compare(av, bv), nil
	case bool:
		bv, ok := b.(bool)
		if !ok {
			return 0, fmt.Errorf("sqlx: cannot compare bool with %T", b)
		}
		switch {
		case av == bv:
			return 0, nil
		case !av:
			return -1, nil
		}
		return 1, nil
	}
	return 0, fmt.Errorf("sqlx: cannot compare %T with %T", a, b)
}

func asFloat(v kb.Value) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

// likeMatch implements SQL LIKE with % (any run) and _ (one char),
// case-insensitively. The matcher is iterative with greedy %-backtracking:
// linear in len(s)*len(p) worst case, where the naive recursive form is
// exponential on patterns like "%a%a%a%a".
func likeMatch(s, pattern string) bool {
	return likeIter(strings.ToLower(s), strings.ToLower(pattern))
}

func likeIter(s, p string) bool {
	si, pi := 0, 0
	star, mark := -1, 0 // position after the last %, and the s index it consumed up to
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, mark = pi, si
			pi++
		case star >= 0:
			// mismatch after a %: widen what the % consumed and retry
			mark++
			si, pi = mark, star+1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// likeRec is the original recursive matcher, kept as the reference oracle
// for property tests of likeIter.
func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// collapse consecutive %
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func (ex *executor) project(tuples []env) (*Result, error) {
	stmt := ex.stmt
	res := &Result{}

	// Aggregate path: any COUNT item makes the whole projection aggregate.
	hasCount := false
	for _, it := range stmt.Items {
		if it.Count {
			hasCount = true
		}
	}
	if hasCount {
		row := make([]kb.Value, len(stmt.Items))
		for i, it := range stmt.Items {
			if !it.Count {
				return nil, fmt.Errorf("sqlx: cannot mix COUNT with plain columns (no GROUP BY support)")
			}
			name := it.Alias
			if name == "" {
				name = "count"
			}
			res.Columns = append(res.Columns, name)
			if it.Expr == nil {
				row[i] = int64(len(tuples))
				continue
			}
			n := int64(0)
			for _, t := range tuples {
				v, err := ex.eval(t, it.Expr)
				if err != nil {
					return nil, err
				}
				if v != nil {
					n++
				}
			}
			row[i] = n
		}
		res.Rows = [][]kb.Value{row}
		return res, nil
	}

	// Column projection.
	type proj struct {
		binding string
		col     int
	}
	var projs []proj
	for _, it := range stmt.Items {
		if it.Star {
			for _, b := range ex.order {
				t := ex.bindings[b]
				for ci, c := range t.Schema.Columns {
					projs = append(projs, proj{b, ci})
					res.Columns = append(res.Columns, c.Name)
				}
			}
			continue
		}
		b, ci, err := ex.resolve(it.Expr, ex.order)
		if err != nil {
			return nil, err
		}
		projs = append(projs, proj{b, ci})
		name := it.Alias
		if name == "" {
			name = it.Expr.Column
		}
		res.Columns = append(res.Columns, name)
	}
	for _, t := range tuples {
		row := make([]kb.Value, len(projs))
		for i, p := range projs {
			row[i] = t[p.binding][p.col]
		}
		res.Rows = append(res.Rows, row)
	}

	if stmt.Distinct {
		seen := make(map[string]bool, len(res.Rows))
		var kept [][]kb.Value
		for _, row := range res.Rows {
			key := rowKey(row)
			if !seen[key] {
				seen[key] = true
				kept = append(kept, row)
			}
		}
		res.Rows = kept
	}

	if len(stmt.OrderBy) > 0 {
		// ORDER BY columns must appear in the projection: we sort the
		// projected result (DISTINCT may already have dropped the source
		// envs by this point).
		keyIdx := make([]int, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			keyIdx[i] = -1
			for j, c := range res.Columns {
				if strings.EqualFold(c, o.Col.Column) {
					keyIdx[i] = j
					break
				}
			}
			if keyIdx[i] < 0 {
				return nil, fmt.Errorf("sqlx: ORDER BY column %q must appear in the projection", o.Col.Column)
			}
		}
		var sortErr error
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for i, o := range stmt.OrderBy {
				va, vb := res.Rows[a][keyIdx[i]], res.Rows[b][keyIdx[i]]
				if va == nil && vb == nil {
					continue
				}
				if va == nil {
					return !o.Desc
				}
				if vb == nil {
					return o.Desc
				}
				c, err := compareValues(va, vb)
				if err != nil {
					sortErr = err
					return false
				}
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	if stmt.Limit >= 0 && len(res.Rows) > stmt.Limit {
		res.Rows = res.Rows[:stmt.Limit]
	}
	return res, nil
}

func rowKey(row []kb.Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		if v == nil {
			parts[i] = "\x00"
		} else {
			parts[i] = fmt.Sprintf("%T:%v", v, v)
		}
	}
	return strings.Join(parts, "\x1f")
}
