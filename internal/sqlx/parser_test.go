package sqlx

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseRoundTrips(t *testing.T) {
	// canonical form -> must parse and re-render identically
	cases := []string{
		"SELECT * FROM drug",
		"SELECT name FROM drug",
		"SELECT d.name AS drug_name FROM drug d",
		"SELECT DISTINCT name FROM drug",
		"SELECT COUNT(*) FROM drug",
		"SELECT COUNT(name) AS n FROM drug",
		"SELECT name FROM drug WHERE name = 'Aspirin'",
		"SELECT name FROM drug WHERE (year > 1900 AND otc = true)",
		"SELECT name FROM drug WHERE (class = 'NSAID' OR class = 'Statin')",
		"SELECT name FROM drug WHERE name LIKE 'A%'",
		"SELECT name FROM drug WHERE class IN ('NSAID', 'Statin')",
		"SELECT name FROM drug WHERE class IS NULL",
		"SELECT name FROM drug WHERE class IS NOT NULL",
		"SELECT name FROM drug ORDER BY name LIMIT 10",
		"SELECT name FROM drug ORDER BY name DESC, year",
		"SELECT d.name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id",
		"SELECT name FROM drug WHERE name = <@Drug>",
		"SELECT name FROM drug WHERE half_life < 2.5",
		"SELECT name FROM drug WHERE year != 2000",
	}
	for _, src := range cases {
		stmt, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := stmt.String(); got != src {
			t.Errorf("round trip:\n in:  %s\n out: %s", src, got)
		}
	}
}

func TestParseNormalizations(t *testing.T) {
	cases := map[string]string{
		"select name from drug;":                                          "SELECT name FROM drug",
		"SELECT name FROM drug WHERE year <> 2000":                        "SELECT name FROM drug WHERE year != 2000",
		"SELECT name FROM drug ORDER BY name ASC":                         "SELECT name FROM drug ORDER BY name",
		"SELECT d.name FROM drug d JOIN brand b ON b.drug_id = d.drug_id": "SELECT d.name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id",
		"SELECT name FROM drug WHERE name = 'O''Brien'":                   "SELECT name FROM drug WHERE name = 'O''Brien'",
		"SELECT name FROM drug -- trailing comment":                       "SELECT name FROM drug",
	}
	for src, want := range cases {
		stmt, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := stmt.String(); got != want {
			t.Errorf("normalize %q:\n got  %s\n want %s", src, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"DELETE FROM drug",
		"SELECT FROM drug",
		"SELECT name",
		"SELECT name FROM",
		"SELECT name FROM drug WHERE",
		"SELECT name FROM drug WHERE name =",
		"SELECT name FROM drug WHERE name 'x'",
		"SELECT name FROM drug LIMIT -1",
		"SELECT name FROM drug LIMIT x",
		"SELECT name FROM drug extra garbage ,",
		"SELECT name FROM drug WHERE name = 'unterminated",
		"SELECT name FROM drug WHERE name = <@unclosed",
		"SELECT COUNT( FROM drug",
		"SELECT name FROM drug WHERE class IN ()",
		"SELECT name FROM drug INNER JOIN ON x = y",
		"SELECT name FROM drug WHERE name = 'x' AND",
		"SELECT name FROM drug WHERE @bad",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParamsExtraction(t *testing.T) {
	stmt := MustParse("SELECT d.name FROM drug d INNER JOIN treats t ON t.drug_id = d.drug_id WHERE t.efficacy = <@Eff> AND d.name = <@Drug> AND d.base = <@Drug>")
	if got := stmt.Params(); !reflect.DeepEqual(got, []string{"Eff", "Drug"}) {
		t.Fatalf("Params = %v, want first-appearance dedup", got)
	}
}

func TestParamsInJoinCondition(t *testing.T) {
	stmt := MustParse("SELECT d.name FROM drug d INNER JOIN brand b ON b.name = <@Brand>")
	if got := stmt.Params(); !reflect.DeepEqual(got, []string{"Brand"}) {
		t.Fatalf("join params = %v", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("not sql")
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex("SELECT a.b, 'it''s', 1.5, <@P> <= >= != <>")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	wantTexts := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "1.5", ",", "P", "<=", ">=", "!=", "<>", ""}
	if !reflect.DeepEqual(texts, wantTexts) {
		t.Fatalf("lexed %v, want %v", texts, wantTexts)
	}
	if kinds[5] != tokString || kinds[7] != tokNumber || kinds[9] != tokParam {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'open", "<@open", "SELECT ~"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestExprStringQuotesLiterals(t *testing.T) {
	stmt := MustParse("SELECT name FROM t WHERE a = 'x''y' AND b = NULL")
	if !strings.Contains(stmt.String(), "'x''y'") {
		t.Fatalf("literal quoting lost: %s", stmt.String())
	}
	if !strings.Contains(stmt.String(), "NULL") {
		t.Fatalf("NULL literal lost: %s", stmt.String())
	}
}
