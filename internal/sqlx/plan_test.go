package sqlx

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ontoconv/internal/kb"
)

// resultEqual compares two results structurally (column names, row order,
// cell values).
func resultEqual(a, b *Result) bool {
	return reflect.DeepEqual(a.Columns, b.Columns) && reflect.DeepEqual(a.Rows, b.Rows)
}

// assertPlanMatchesInterpreter runs the same statement through the
// compiled plan and the tree-walking interpreter and requires identical
// results (including row order).
func assertPlanMatchesInterpreter(t *testing.T, k *kb.KB, sql string) {
	t.Helper()
	stmt := MustParse(sql)
	want, werr := Execute(k, stmt)
	plan, perr := Prepare(k, MustParse(sql))
	if werr != nil {
		if perr == nil {
			if _, err := plan.Exec(nil); err == nil {
				t.Fatalf("%q: interpreter errored (%v), plan succeeded", sql, werr)
			}
		}
		return
	}
	if perr != nil {
		t.Fatalf("%q: Prepare: %v", sql, perr)
	}
	got, err := plan.Exec(nil)
	if err != nil {
		t.Fatalf("%q: plan.Exec: %v", sql, err)
	}
	if !resultEqual(want, got) {
		t.Fatalf("%q:\ninterpreter: %v %v\nplan:        %v %v",
			sql, want.Columns, want.Rows, got.Columns, got.Rows)
	}
}

var planEquivalenceQueries = []string{
	"SELECT * FROM drug",
	"SELECT name FROM drug WHERE class = 'NSAID'",
	"SELECT name FROM drug WHERE class = 'NSAID' AND year > 1900",
	"SELECT name FROM drug WHERE class = 'NSAID' OR class = 'Retinoid'",
	"SELECT name FROM drug WHERE class IS NULL",
	"SELECT name FROM drug WHERE class IS NOT NULL AND name LIKE 'A%'",
	"SELECT name FROM drug WHERE name LIKE '%e%'",
	"SELECT name FROM drug WHERE class IN ('NSAID', 'Retinoid')",
	"SELECT d.name, b.name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id",
	"SELECT d.name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id WHERE b.name = 'Bayer'",
	"SELECT DISTINCT d.name FROM drug d INNER JOIN treats t ON t.drug_id = d.drug_id INNER JOIN indication i ON i.indication_id = t.indication_id WHERE i.name = 'Fever'",
	"SELECT DISTINCT class FROM drug",
	"SELECT name FROM drug ORDER BY name",
	"SELECT name, year FROM drug ORDER BY year DESC LIMIT 2",
	"SELECT class FROM drug ORDER BY class",
	"SELECT COUNT(*) FROM drug",
	"SELECT COUNT(class) FROM drug",
	"SELECT COUNT(*) AS n FROM drug WHERE class = 'NSAID'",
	"SELECT COUNT(*) FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id",
	"SELECT name FROM drug LIMIT 0",
	"SELECT d.name FROM drug d INNER JOIN brand b ON b.drug_id = d.drug_id AND b.name = 'Bayer'",
	"SELECT name FROM drug WHERE year < 1990 AND class = 'NSAID'",
	"SELECT d.name FROM drug d INNER JOIN treats t ON t.drug_id = d.drug_id WHERE t.efficacy = 'Effective' AND d.class = 'NSAID'",
}

func TestPlanMatchesInterpreter(t *testing.T) {
	k := fixtureKB(t)
	for _, sql := range planEquivalenceQueries {
		assertPlanMatchesInterpreter(t, k, sql)
	}
}

func TestPlanMatchesInterpreterWithIndexes(t *testing.T) {
	k := fixtureKB(t)
	for _, spec := range [][2]string{
		{"drug", "class"}, {"drug", "name"}, {"brand", "drug_id"},
		{"brand", "name"}, {"treats", "drug_id"}, {"treats", "indication_id"},
		{"indication", "name"}, {"indication", "indication_id"},
	} {
		if err := k.Table(spec[0]).BuildIndex(spec[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, sql := range planEquivalenceQueries {
		assertPlanMatchesInterpreter(t, k, sql)
	}
}

// TestPlanRandomPredicates extends the property-test oracle to the plan
// path: random WHERE trees must produce identical results planned and
// interpreted, with and without an index on the filter column.
func TestPlanRandomPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := kb.New()
	tab, err := k.CreateTable(kb.Schema{
		Name: "t",
		Columns: []kb.Column{
			{Name: "id", Type: kb.TextCol, NotNull: true},
			{Name: "cat", Type: kb.TextCol},
			{Name: "num", Type: kb.IntCol},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"a", "b", "c", ""}
	for i := 0; i < 200; i++ {
		var catV kb.Value
		if c := cats[rng.Intn(len(cats))]; c != "" {
			catV = c
		}
		tab.MustInsert(kb.Row{fmt.Sprintf("R%03d", i), catV, int64(rng.Intn(50))})
	}

	atoms := func() []string {
		c := cats[rng.Intn(3)]
		n := rng.Intn(50)
		return []string{
			fmt.Sprintf("cat = '%s'", c),
			fmt.Sprintf("cat != '%s'", c),
			fmt.Sprintf("num > %d", n),
			fmt.Sprintf("num <= %d", n),
			"cat IS NULL",
			"cat IS NOT NULL",
			fmt.Sprintf("cat IN ('a', '%s')", c),
			fmt.Sprintf("cat LIKE '%%%s%%'", c),
		}
	}
	run := func(t *testing.T) {
		for trial := 0; trial < 80; trial++ {
			as := atoms()
			p1, p2 := as[rng.Intn(len(as))], as[rng.Intn(len(as))]
			var sql string
			switch rng.Intn(3) {
			case 0:
				sql = p1
			case 1:
				sql = fmt.Sprintf("(%s AND %s)", p1, p2)
			default:
				sql = fmt.Sprintf("(%s OR %s)", p1, p2)
			}
			assertPlanMatchesInterpreter(t, k, "SELECT id FROM t WHERE "+sql)
		}
	}
	t.Run("unindexed", run)
	if err := tab.BuildIndex("cat"); err != nil {
		t.Fatal(err)
	}
	t.Run("indexed", run)
}

func TestPlanParamsMatchInstantiate(t *testing.T) {
	k := fixtureKB(t)
	tpl := MustTemplate("SELECT d.name FROM drug d INNER JOIN treats tr ON tr.drug_id = d.drug_id INNER JOIN indication i ON i.indication_id = tr.indication_id WHERE i.name = <@Indication>")
	plan, err := tpl.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, ind := range []string{"Fever", "Psoriasis", "Nothing"} {
		args := map[string]string{"Indication": ind}
		stmt, err := tpl.Instantiate(args)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Execute(k, stmt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Exec(args)
		if err != nil {
			t.Fatal(err)
		}
		if !resultEqual(want, got) {
			t.Fatalf("%s: interpreter %v, plan %v", ind, want.Rows, got.Rows)
		}
	}
}

func TestPlanParamErrors(t *testing.T) {
	k := fixtureKB(t)
	tpl := MustTemplate("SELECT name FROM drug WHERE name = <@Drug> AND class = <@Class>")
	plan, err := tpl.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Exec(map[string]string{"Drug": "x"}); err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Fatalf("missing param: err = %v", err)
	}
	if _, err := plan.Exec(map[string]string{"Drug": "x", "Class": "y", "Ghost": "z"}); err == nil || !strings.Contains(err.Error(), "Ghost") {
		t.Fatalf("unknown param: err = %v", err)
	}
}

func TestPlanPrepareErrors(t *testing.T) {
	k := fixtureKB(t)
	for _, sql := range []string{
		"SELECT name FROM nosuch",
		"SELECT nosuch FROM drug",
		"SELECT d.name FROM drug d INNER JOIN drug d ON d.drug_id = d.drug_id",
		"SELECT name FROM drug ORDER BY year",
		"SELECT COUNT(*), name FROM drug",
	} {
		if _, err := Prepare(k, MustParse(sql)); err == nil {
			t.Fatalf("%q: Prepare must error", sql)
		}
	}
}

func TestPlanIndexHints(t *testing.T) {
	k := fixtureKB(t)
	tpl := MustTemplate("SELECT d.name FROM drug d INNER JOIN treats tr ON tr.drug_id = d.drug_id INNER JOIN indication i ON i.indication_id = tr.indication_id WHERE i.name = <@Indication> AND tr.efficacy = 'Effective'")
	plan, err := tpl.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	hints := plan.IndexHints()
	want := map[TableColumn]bool{
		{Table: "indication", Column: "name"}: true,
		{Table: "treats", Column: "efficacy"}: true,
	}
	if len(hints) != len(want) {
		t.Fatalf("hints = %v", hints)
	}
	for _, h := range hints {
		if !want[h] {
			t.Fatalf("unexpected hint %v in %v", h, hints)
		}
	}
}

// TestPlanIndexProbeUsed pins the pushdown behavior: with an index on the
// filter column the planned scan must touch only the posting list, which
// we observe indirectly by result equality plus the hint being indexable.
func TestPlanIndexProbeUsed(t *testing.T) {
	k := fixtureKB(t)
	if err := k.Table("drug").BuildIndex("class"); err != nil {
		t.Fatal(err)
	}
	plan, err := PrepareSQL(k, "SELECT name FROM drug WHERE class = 'NSAID'")
	if err != nil {
		t.Fatal(err)
	}
	hints := plan.IndexHints()
	if len(hints) != 1 || !k.Table(hints[0].Table).HasIndex(hints[0].Column) {
		t.Fatalf("hints = %v", hints)
	}
	res, err := plan.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Column("name"); !reflect.DeepEqual(got, []string{"Aspirin", "Ibuprofen"}) {
		t.Fatalf("res = %v", got)
	}
}

// TestPlanNoTextIndexOnNumeric ensures numeric equality predicates are
// never pushed into a Lookup probe: interface equality on numbers would
// diverge from compareValues coercion (2 = 2.0).
func TestPlanNoTextIndexOnNumeric(t *testing.T) {
	k := fixtureKB(t)
	plan, err := PrepareSQL(k, "SELECT name FROM drug WHERE year = 1899")
	if err != nil {
		t.Fatal(err)
	}
	if hints := plan.IndexHints(); len(hints) != 0 {
		t.Fatalf("numeric predicate produced index hints: %v", hints)
	}
	res, err := plan.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Column("name"); !reflect.DeepEqual(got, []string{"Aspirin"}) {
		t.Fatalf("res = %v", got)
	}
}

func TestPlanConcurrentExec(t *testing.T) {
	k := fixtureKB(t)
	tpl := MustTemplate("SELECT d.name FROM drug d WHERE d.class = <@Class>")
	plan, err := tpl.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				res, err := plan.Exec(map[string]string{"Class": "NSAID"})
				if err == nil && len(res.Rows) != 2 {
					err = fmt.Errorf("got %d rows", len(res.Rows))
				}
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
